#include "collective/sim_channel.h"

#include <cassert>

#include "core/metrics.h"

namespace trimgrad::collective {

namespace {
/// Transfers refused because an endpoint is not live in the current view.
const core::Counter& stale_transfer_counter() {
  static const core::Counter c =
      core::MetricsRegistry::global().counter("net.membership.stale_transfers");
  return c;
}
}  // namespace

SimChannel::SimChannel(net::Simulator& sim,
                       std::vector<net::NodeId> rank_hosts, Config cfg)
    : sim_(sim), rank_hosts_(std::move(rank_hosts)), cfg_(std::move(cfg)) {
  assert(rank_hosts_.size() >= 2);
  net::TransportRegistry::global().at(cfg_.transport);  // fail fast
}

std::vector<Delivery> SimChannel::transfer(std::vector<TransferRequest> batch) {
  struct Live {
    std::unique_ptr<net::Flow> flow;
    Delivery delivery;
    bool done = false;
  };
  std::vector<std::unique_ptr<Live>> live;
  live.reserve(batch.size());

  const net::Transport& transport =
      net::TransportRegistry::global().at(cfg_.transport);

  const net::SimTime t0 = sim_.now();

  for (auto& req : batch) {
    auto lv = std::make_unique<Live>();
    lv->delivery.src = req.src;
    lv->delivery.dst = req.dst;
    lv->delivery.meta = req.message.meta;

    if (view_ != nullptr &&
        (!view_->is_live(req.src) || !view_->is_live(req.dst))) {
      // Stale request from an old view: fail it without touching the
      // fabric, so no frame of an evicted rank mixes into the new view.
      lv->delivery.flow_failed = true;
      lv->done = true;
      stale_transfer_counter().add();
      live.push_back(std::move(lv));
      continue;
    }

    const net::NodeId src_host =
        rank_hosts_.at(static_cast<std::size_t>(req.src));
    const net::NodeId dst_host =
        rank_hosts_.at(static_cast<std::size_t>(req.dst));
    const std::uint32_t flow_id = next_flow_id_++;

    // Items: one frame per gradient packet (trimmable), plus one
    // untrimmable metadata frame at the front.
    std::vector<net::SendItem> items;
    items.reserve(req.message.packets.size() + 1);
    net::SendItem meta_item;
    meta_item.size_bytes = req.message.meta.wire_bytes();
    meta_item.trim_size_bytes = 0;  // the reliable side channel
    items.push_back(meta_item);
    for (auto& pkt : req.message.packets) {
      net::SendItem it;
      it.size_bytes = pkt.wire_bytes();
      it.trim_size_bytes = pkt.trimmed_wire_bytes();
      it.cargo = std::make_shared<core::GradientPacket>(std::move(pkt));
      items.push_back(std::move(it));
    }

    Live* lp = lv.get();
    net::FlowOptions options;
    options.expected_packets = items.size();
    options.on_data = [lp](const net::Frame& f) {
      if (!f.cargo) return;  // the metadata frame
      lp->delivery.packets.push_back(*f.cargo);
      if (f.trimmed) ++lp->delivery.trimmed_packets;
    };
    lv->flow = transport.make_flow(sim_, src_host, dst_host, flow_id,
                                   cfg_.tuning, std::move(options));
    lv->flow->send_message(
        std::move(items), [lp, t0](const net::FlowStats& st) {
          lp->done = true;
          lp->delivery.comm_time = st.end_time - t0;
          lp->delivery.wire_bytes = st.bytes_sent;
          lp->delivery.retransmits = st.retransmits;
          lp->delivery.flow_failed = st.failed;
        });
    live.push_back(std::move(lv));
  }

  if (cfg_.round_deadline > 0) {
    // Let the fabric run until the deadline, then abort whatever is still
    // in flight and drain the queue (aborted senders stop re-arming their
    // RTO timers, so the drain terminates).
    sim_.run_until(t0 + cfg_.round_deadline);
    for (auto& lv : live) {
      if (lv->flow) lv->flow->abort();
    }
    sim_.run();
  } else {
    sim_.run();
  }

  std::vector<Delivery> out;
  out.reserve(live.size());
  for (auto& lv : live) {
    // Flows either complete or fail (budget / deadline / abort); both paths
    // fire on_complete, so `done` holds unless the transport is
    // misconfigured with no give-up knob against a dead fabric.
    assert(lv->done && "flow neither completed nor failed");
    out.push_back(std::move(lv->delivery));
  }
  note_batch(out);
  return out;
}

core::NetFeedback SimChannel::take_feedback() {
  core::NetFeedback fb = Channel::take_feedback();
  // Enrich with fabric telemetry. snapshot() is a sequential-phase call;
  // the trainer drains feedback once per round, between collectives.
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& g : snap.gauges) {
    if (g.name == "net.ecn.alpha") fb.dctcp_alpha = g.value;
  }
  for (const auto& c : snap.counters) {
    if (c.name == "net.fault.corrupt_detected") {
      fb.corrupt_nacks = c.value - seen_corrupt_;
      seen_corrupt_ = c.value;
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name != "net.queue.depth_bytes") continue;
    std::uint64_t hot = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b >= h.bounds.size() || h.bounds[b] >= 65536.0) hot += h.counts[b];
    }
    const std::uint64_t d_total = h.total - seen_depth_total_;
    const std::uint64_t d_hot = hot - seen_depth_hot_;
    seen_depth_total_ = h.total;
    seen_depth_hot_ = hot;
    if (d_total > 0) {
      fb.queue_depth_frac =
          static_cast<double>(d_hot) / static_cast<double>(d_total);
    }
  }
  return fb;
}

}  // namespace trimgrad::collective
