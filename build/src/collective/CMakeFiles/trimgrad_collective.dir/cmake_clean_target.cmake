file(REMOVE_RECURSE
  "libtrimgrad_collective.a"
)
