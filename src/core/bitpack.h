// Bit-level packing for trimmable packet payloads.
//
// §2 of the paper lays out each packet as a run of P-bit "heads" followed by
// a run of Q-bit "tails". Heads and tails are therefore not byte aligned:
// with P = 1 and n = 365 coordinates, the head region is 365 bits (46 bytes
// with padding). BitWriter/BitReader provide MSB-first bit streams over a
// byte buffer so the head region of a packet is exactly ceil(P*n/8) bytes —
// the quantity the switch's trim point is configured from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace trimgrad::core {

/// Number of bytes needed to hold `bits` bits.
constexpr std::size_t bytes_for_bits(std::size_t bits) noexcept {
  return (bits + 7) / 8;
}

/// Appends values of arbitrary bit width (1..64) to a byte vector,
/// MSB-first within each value and within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `width` bits of `value`. width must be in [1, 64].
  void put(std::uint64_t value, unsigned width);

  /// Append a single bit.
  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  /// Append n values of the same width (1..32) — the bit stream n put()
  /// calls would produce, via a 64-bit accumulator flushing 8 bytes at a
  /// time. The codec tail-region hot path.
  void put_run(const std::uint32_t* values, std::size_t n, unsigned width);

  /// Append n single bits from bool bytes (0 => 0, nonzero => 1) — the bit
  /// stream n put_bit() calls would produce, packed 8 bits per store. The
  /// codec head-region hot path.
  void put_bits8(const std::uint8_t* bits, std::size_t n);

  /// Total number of bits written so far.
  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Pad to a byte boundary with zero bits and return the buffer.
  std::vector<std::uint8_t> finish() &&;

  /// Current buffer size in bytes (including the partially filled byte).
  std::size_t byte_count() const noexcept { return bytes_for_bits(bit_count_); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t bit_count_ = 0;
};

/// Reads values of arbitrary bit width from a byte span, MSB-first.
/// Reading past the end is a programming error (checked via assert in
/// debug builds; callers size-check with bits_remaining()).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Read `width` bits (1..64) as an unsigned value.
  std::uint64_t get(unsigned width) noexcept;

  /// Read a single bit.
  bool get_bit() noexcept { return get(1) != 0; }

  /// Read n values of the same width (1..32); inverse of put_run.
  void get_run(std::uint32_t* out, std::size_t n, unsigned width) noexcept;

  /// Read n single bits into bool bytes (0/1); inverse of put_bits8.
  void get_bits8(std::uint8_t* out, std::size_t n) noexcept;

  /// Bits not yet consumed.
  std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - cursor_;
  }

  /// Skip ahead `bits` bits.
  void skip(std::size_t bits) noexcept { cursor_ += bits; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t cursor_ = 0;  // bit offset from the start of data_
};

/// Reinterpret a float's bit pattern as uint32 (bit_cast wrapper).
std::uint32_t float_bits(float v) noexcept;

/// Reinterpret a uint32 bit pattern as a float.
float bits_float(std::uint32_t b) noexcept;

}  // namespace trimgrad::core
