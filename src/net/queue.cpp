#include "net/queue.h"

#include "core/metrics.h"
#include "core/trace.h"

namespace trimgrad::net {
namespace {

// Registry handles, resolved once. Queues run inside the (single-threaded)
// simulator loop, so these also serve as the aggregate across every queue
// in a fabric; per-queue counts stay in QueueCounters.
struct QueueTelemetry {
  core::Counter enqueued, dequeued, dropped, trimmed, ecn_marked;
  core::Histogram depth_bytes;

  static const QueueTelemetry& get() {
    static const QueueTelemetry t{
        core::MetricsRegistry::global().counter("net.queue.enqueued"),
        core::MetricsRegistry::global().counter("net.queue.dequeued"),
        core::MetricsRegistry::global().counter("net.queue.dropped"),
        core::MetricsRegistry::global().counter("net.queue.trimmed"),
        core::MetricsRegistry::global().counter("net.queue.ecn_marked"),
        core::MetricsRegistry::global().histogram(
            "net.queue.depth_bytes",
            {0.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0}),
    };
    return t;
  }
};

}  // namespace

const char* to_string(QueuePolicy p) noexcept {
  switch (p) {
    case QueuePolicy::kDropTail: return "droptail";
    case QueuePolicy::kTrim: return "trim";
    case QueuePolicy::kEcn: return "ecn";
  }
  return "?";
}

bool EgressQueue::enqueue_header(Frame frame) {
  if (header_bytes_ + frame.size_bytes > cfg_.header_capacity_bytes) {
    ++counters_.dropped;
    QueueTelemetry::get().dropped.add();
    core::TraceLog::global().instant("drop", "net.queue");
    return false;
  }
  header_bytes_ += frame.size_bytes;
  header_q_.push_back(std::move(frame));
  ++counters_.enqueued;
  QueueTelemetry::get().enqueued.add();
  return true;
}

bool EgressQueue::enqueue(Frame frame) {
  occupancy_.add(static_cast<double>(data_bytes_));
  QueueTelemetry::get().depth_bytes.observe(static_cast<double>(data_bytes_));

  // Control frames and already-trimmed frames ride the header queue
  // whenever the policy has one (NDP forwards headers with priority).
  const bool control = frame.kind != FrameKind::kData || frame.trimmed;
  if (control && cfg_.policy == QueuePolicy::kTrim) {
    return enqueue_header(std::move(frame));
  }

  if (data_bytes_ + frame.size_bytes <= cfg_.capacity_bytes) {
    if (cfg_.policy == QueuePolicy::kEcn &&
        data_bytes_ >= cfg_.ecn_threshold_bytes) {
      frame.ecn = true;
      ++counters_.ecn_marked;
      QueueTelemetry::get().ecn_marked.add();
    }
    data_bytes_ += frame.size_bytes;
    if (data_bytes_ > counters_.max_data_bytes)
      counters_.max_data_bytes = data_bytes_;
    data_q_.push_back(std::move(frame));
    ++counters_.enqueued;
    QueueTelemetry::get().enqueued.add();
    return true;
  }

  // Overflow.
  if (cfg_.policy == QueuePolicy::kTrim && frame.trimmable()) {
    frame.trim();
    ++counters_.trimmed;
    QueueTelemetry::get().trimmed.add();
    core::TraceLog::global().instant("trim", "net.queue");
    return enqueue_header(std::move(frame));
  }
  ++counters_.dropped;
  QueueTelemetry::get().dropped.add();
  core::TraceLog::global().instant("drop", "net.queue");
  return false;
}

std::optional<Frame> EgressQueue::dequeue() {
  if (!header_q_.empty()) {
    Frame f = std::move(header_q_.front());
    header_q_.pop_front();
    header_bytes_ -= f.size_bytes;
    ++counters_.dequeued;
    QueueTelemetry::get().dequeued.add();
    return f;
  }
  if (!data_q_.empty()) {
    Frame f = std::move(data_q_.front());
    data_q_.pop_front();
    data_bytes_ -= f.size_bytes;
    ++counters_.dequeued;
    QueueTelemetry::get().dequeued.add();
    return f;
  }
  return std::nullopt;
}

}  // namespace trimgrad::net
