#include "ml/model.h"

namespace trimgrad::ml {

std::unique_ptr<Sequential> make_mini_vgg(const ModelConfig& cfg,
                                          std::size_t base_width) {
  core::Xoshiro256 rng(cfg.init_seed);
  auto net = std::make_unique<Sequential>();
  const std::size_t w1 = base_width;
  const std::size_t w2 = base_width * 2;
  const std::size_t w3 = base_width * 4;

  net->emplace<Conv2d>(cfg.channels, w1, rng);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(w1, w1, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>();  // H/2

  net->emplace<Conv2d>(w1, w2, rng);
  net->emplace<ReLU>();
  net->emplace<Conv2d>(w2, w2, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>();  // H/4

  net->emplace<Conv2d>(w2, w3, rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>();  // H/8

  net->emplace<Flatten>();
  const std::size_t feat = w3 * (cfg.height / 8) * (cfg.width / 8);
  net->emplace<Linear>(feat, w3 * 2, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(w3 * 2, cfg.classes, rng);
  return net;
}

std::unique_ptr<Sequential> make_mlp(const ModelConfig& cfg,
                                     std::size_t hidden) {
  core::Xoshiro256 rng(cfg.init_seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  const std::size_t in = cfg.channels * cfg.height * cfg.width;
  net->emplace<Linear>(in, hidden, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(hidden, hidden / 2, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(hidden / 2, cfg.classes, rng);
  return net;
}

}  // namespace trimgrad::ml
