// Fast Walsh–Hadamard Transform and the Randomized Hadamard Transform (RHT).
//
// §3.2: the RHT-based encoding rotates each gradient row with R_s(V) = H·D_s·V
// where H is the (orthonormal) Hadamard matrix and D_s a diagonal of random
// ±1 signs derived from a shared seed s. After rotation the coordinates are
// symmetrically concentrated around zero, which is what makes a 1-bit sign
// head an accurate standalone compression (DRIVE). The paper splits each
// collective message into rows of 2^15 entries so each row fits in GPU L1
// shared memory; we keep the same row size as the default so the scale
// metadata volume and numerical behaviour match.
//
// This is the CPU substitute for the `fast-hadamard-transform` CUDA library
// the paper's prototype uses (see DESIGN.md, substitutions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.h"

namespace trimgrad::core {

/// Default RHT row length (2^15 entries), following the paper's choice.
inline constexpr std::size_t kDefaultRhtRow = std::size_t{1} << 15;

/// True iff n is a nonzero power of two.
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n must be >= 1).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// In-place unnormalized fast Walsh–Hadamard transform. data.size() must be
/// a power of two. O(n log n) adds/subs, no allocation.
void fwht_inplace(std::span<float> data) noexcept;

/// In-place *orthonormal* FWHT: fwht_inplace followed by scaling with
/// 1/sqrt(n), so the transform is its own inverse and preserves L2 norms.
void fwht_orthonormal_inplace(std::span<float> data) noexcept;

/// Randomized Hadamard Transform of one row, in place:
///   data <- H_norm · D · data
/// where D is the ±1 diagonal generated from `rng` (one sign per entry,
/// consumed in index order). data.size() must be a power of two.
void rht_inplace(std::span<float> data, Xoshiro256& rng) noexcept;

/// Inverse RHT, in place: data <- D · H_norm · data, with D regenerated
/// from an identically-seeded rng. Exact inverse of rht_inplace up to
/// floating-point rounding.
void irht_inplace(std::span<float> data, Xoshiro256& rng) noexcept;

/// Splits a flat buffer into power-of-two rows for RHT processing:
/// full rows of `row_len` entries, and (if the tail is shorter) one final
/// row zero-padded up to the next power of two. Mirrors the paper's
/// row-splitting of the 25 MB DDP bucket into 2^15-entry rows.
struct RowSplit {
  std::size_t row_len;      ///< nominal full-row length (power of two)
  std::size_t total;        ///< original element count
  std::size_t n_rows;       ///< number of rows including the padded tail row
  std::size_t tail_padded;  ///< padded length of the final row (0 if none)

  /// Length of row r after padding.
  std::size_t padded_len(std::size_t r) const noexcept {
    return (tail_padded != 0 && r + 1 == n_rows) ? tail_padded : row_len;
  }
  /// Number of *real* (unpadded) elements in row r.
  std::size_t real_len(std::size_t r) const noexcept {
    if (r + 1 < n_rows || total % row_len == 0) return row_len;
    return total % row_len;
  }
  /// Offset of row r in the original buffer.
  std::size_t offset(std::size_t r) const noexcept { return r * row_len; }
};

/// Compute the row split for `total` elements with nominal rows of
/// `row_len` (must be a power of two, defaults to 2^15).
RowSplit make_row_split(std::size_t total, std::size_t row_len = kDefaultRhtRow) noexcept;

/// Copy one row out of a flat buffer, zero-padding to its power-of-two
/// padded length.
std::vector<float> extract_padded_row(std::span<const float> flat,
                                      const RowSplit& split, std::size_t row);

/// Scratch-buffer variant for hot row loops: resizes `out` to the padded
/// length and overwrites it, reusing its capacity across calls instead of
/// allocating a fresh vector per row.
void extract_padded_row_into(std::span<const float> flat, const RowSplit& split,
                             std::size_t row, std::vector<float>& out);

}  // namespace trimgrad::core
