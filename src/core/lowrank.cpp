#include "core/lowrank.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace trimgrad::core {

namespace {

/// Modified Gram-Schmidt on the r columns of a (len×r, column-major)
/// matrix. Near-zero columns are replaced by zero (rank deficiency).
void orthonormalize(std::vector<float>& a, std::size_t len, std::size_t r) {
  for (std::size_t k = 0; k < r; ++k) {
    float* col = a.data() + k * len;
    for (std::size_t j = 0; j < k; ++j) {
      const float* prev = a.data() + j * len;
      double dot = 0;
      for (std::size_t i = 0; i < len; ++i) dot += double(col[i]) * prev[i];
      for (std::size_t i = 0; i < len; ++i)
        col[i] -= static_cast<float>(dot) * prev[i];
    }
    double norm_sq = 0;
    for (std::size_t i = 0; i < len; ++i) norm_sq += double(col[i]) * col[i];
    const double norm = std::sqrt(norm_sq);
    if (norm < 1e-20) {
      std::fill(col, col + len, 0.0f);
      continue;
    }
    for (std::size_t i = 0; i < len; ++i)
      col[i] = static_cast<float>(col[i] / norm);
  }
}

/// dst(len×r) = op(M)·src where op(M) is M (rows×cols) or Mᵀ.
void mat_apply(std::span<const float> m, std::size_t rows, std::size_t cols,
               bool transpose, const std::vector<float>& src,
               std::size_t src_len, std::vector<float>& dst,
               std::size_t dst_len, std::size_t r) {
  assert(src.size() >= src_len * r);
  dst.assign(dst_len * r, 0.0f);
  for (std::size_t k = 0; k < r; ++k) {
    const float* s = src.data() + k * src_len;
    float* d = dst.data() + k * dst_len;
    if (!transpose) {
      // d(rows) = M·s(cols)
      for (std::size_t i = 0; i < rows; ++i) {
        const float* row = m.data() + i * cols;
        double acc = 0;
        for (std::size_t j = 0; j < cols; ++j) acc += double(row[j]) * s[j];
        d[i] = static_cast<float>(acc);
      }
    } else {
      // d(cols) = Mᵀ·s(rows)
      for (std::size_t i = 0; i < rows; ++i) {
        const float* row = m.data() + i * cols;
        const float si = s[i];
        if (si == 0.0f) continue;
        for (std::size_t j = 0; j < cols; ++j) d[j] += row[j] * si;
      }
    }
  }
}

}  // namespace

std::vector<float> LowRankFactors::reconstruct(std::size_t use_rank) const {
  const std::size_t r = std::min(use_rank, rank);
  std::vector<float> m(rows * cols, 0.0f);
  for (std::size_t k = 0; k < r; ++k) {
    const float* pk = p.data() + k * rows;
    const float* qk = q.data() + k * cols;
    for (std::size_t i = 0; i < rows; ++i) {
      if (pk[i] == 0.0f) continue;
      float* row = m.data() + i * cols;
      for (std::size_t j = 0; j < cols; ++j) row[j] += pk[i] * qk[j];
    }
  }
  return m;
}

LowRankFactors power_factorize(std::span<const float> m, std::size_t rows,
                               std::size_t cols, std::size_t rank,
                               unsigned iters, std::uint64_t seed) {
  assert(m.size() == rows * cols);
  const std::size_t r = std::min({rank, rows, cols});
  LowRankFactors f;
  f.rows = rows;
  f.cols = cols;
  f.rank = r;

  // Random init of Q (m×r), then alternate P = M·Q / orth, Q = Mᵀ·P / orth.
  Xoshiro256 rng(seed);
  f.q.assign(cols * r, 0.0f);
  for (auto& x : f.q) x = static_cast<float>(rng.gaussian());
  orthonormalize(f.q, cols, r);

  for (unsigned it = 0; it < iters; ++it) {
    mat_apply(m, rows, cols, false, f.q, cols, f.p, rows, r);
    orthonormalize(f.p, rows, r);
    mat_apply(m, rows, cols, true, f.p, rows, f.q, cols, r);
    orthonormalize(f.q, cols, r);
  }
  // Final P = M·Q against the orthonormal Q: M ≈ P·Qᵀ with ‖p_k‖ as the
  // singular-value proxy.
  mat_apply(m, rows, cols, false, f.q, cols, f.p, rows, r);

  // Sort components by descending ‖p_k‖.
  std::vector<double> norms(r, 0.0);
  for (std::size_t k = 0; k < r; ++k) {
    const float* pk = f.p.data() + k * rows;
    for (std::size_t i = 0; i < rows; ++i)
      norms[k] += double(pk[i]) * pk[i];
  }
  std::vector<std::size_t> order(r);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return norms[a] > norms[b];
                   });
  std::vector<float> p_sorted(f.p.size()), q_sorted(f.q.size());
  f.importance.resize(r);
  for (std::size_t k = 0; k < r; ++k) {
    const std::size_t src = order[k];
    std::copy_n(f.p.data() + src * rows, rows, p_sorted.data() + k * rows);
    std::copy_n(f.q.data() + src * cols, cols, q_sorted.data() + k * cols);
    f.importance[k] = static_cast<float>(std::sqrt(norms[src]));
  }
  f.p = std::move(p_sorted);
  f.q = std::move(q_sorted);
  return f;
}

void LowRankPacket::trim_to_rank(std::uint16_t keep) noexcept {
  if (keep >= kept) return;
  kept = keep;
  values.resize(static_cast<std::size_t>(kept) * n_rows);
  values.shrink_to_fit();
}

std::size_t LowRankCodec::rows_per_packet() const noexcept {
  const std::size_t bytes_per_row = cfg_.rank * sizeof(float);
  const std::size_t n = cfg_.layout.payload_bytes() / bytes_per_row;
  return n > 0 ? n : 1;
}

LowRankEncoded LowRankCodec::encode(std::span<const float> m,
                                    std::size_t rows, std::size_t cols,
                                    std::uint32_t msg_id) const {
  const LowRankFactors f =
      power_factorize(m, rows, cols, cfg_.rank, cfg_.power_iters, cfg_.seed);
  LowRankEncoded out;
  out.meta.msg_id = msg_id;
  out.meta.rows = static_cast<std::uint32_t>(rows);
  out.meta.cols = static_cast<std::uint32_t>(cols);
  out.meta.rank = static_cast<std::uint16_t>(f.rank);
  out.meta.q = f.q;

  const std::size_t per_pkt = rows_per_packet();
  std::uint16_t seq = 0;
  for (std::size_t base = 0; base < rows; base += per_pkt) {
    const std::size_t n_rows = std::min(per_pkt, rows - base);
    LowRankPacket pkt;
    pkt.msg_id = msg_id;
    pkt.row_base = static_cast<std::uint32_t>(base);
    pkt.n_rows = static_cast<std::uint16_t>(n_rows);
    pkt.rank = static_cast<std::uint16_t>(f.rank);
    pkt.kept = pkt.rank;
    pkt.seq = seq++;
    // Component-major within the slice: trimming cuts whole trailing
    // components — the least-important ranks — first.
    pkt.values.reserve(f.rank * n_rows);
    for (std::size_t k = 0; k < f.rank; ++k) {
      const float* pk = f.p.data() + k * rows;
      pkt.values.insert(pkt.values.end(), pk + base, pk + base + n_rows);
    }
    out.packets.push_back(std::move(pkt));
  }
  return out;
}

std::vector<float> LowRankCodec::decode(std::span<const LowRankPacket> packets,
                                        const LowRankMeta& meta) const {
  const std::size_t rows = meta.rows;
  const std::size_t cols = meta.cols;
  std::vector<float> m(rows * cols, 0.0f);
  for (const auto& pkt : packets) {
    for (std::size_t k = 0; k < pkt.kept; ++k) {
      const float* qk = meta.q.data() + k * cols;
      const float* slice = pkt.values.data() + k * pkt.n_rows;
      for (std::size_t i = 0; i < pkt.n_rows; ++i) {
        const std::size_t row = pkt.row_base + i;
        if (row >= rows || slice[i] == 0.0f) continue;
        float* mrow = m.data() + row * cols;
        for (std::size_t j = 0; j < cols; ++j) mrow[j] += slice[i] * qk[j];
      }
    }
  }
  return m;
}

}  // namespace trimgrad::core
