// Compression control plane: the policy registry, the three built-in
// policies' decision semantics, state round-trips, and the NetFeedback
// wire format. Decisions must be pure functions of (state, round, prev
// feedback) — the trainer's bit-identical-across-threads guarantee rests
// on that.
#include "core/policy.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace trimgrad::core {
namespace {

NetFeedback feedback(std::uint64_t packets, std::uint64_t trimmed,
                     std::uint64_t retransmits = 0) {
  NetFeedback fb;
  fb.packets = packets;
  fb.trimmed = trimmed;
  fb.retransmits = retransmits;
  return fb;
}

TEST(PolicyRegistry, NamesAreSortedAndComplete) {
  const auto names = PolicyRegistry::global().names();
  const std::vector<std::string> expected = {"aimd-trim", "fixed",
                                             "schedule"};
  EXPECT_EQ(names, expected);
}

TEST(PolicyRegistry, UnknownNameListsRegisteredPolicies) {
  PolicyConfig cfg;
  cfg.policy = "oracle";
  try {
    (void)PolicyRegistry::global().make(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("oracle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("aimd-trim"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fixed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("schedule"), std::string::npos) << msg;
  }
}

TEST(PolicyRegistry, NonPacketTrainCodecIsRejected) {
  // eden registers as a codec but has no trimmable packet train, so no
  // policy may select it for the round loop.
  PolicyConfig cfg;
  cfg.codec = "eden";
  for (const char* policy : {"fixed", "aimd-trim"}) {
    cfg.policy = policy;
    EXPECT_THROW((void)PolicyRegistry::global().make(cfg),
                 std::invalid_argument)
        << policy;
  }
}

TEST(FixedPolicy, ReturnsTheConfiguredDecisionForever) {
  PolicyConfig cfg;
  cfg.policy = "fixed";
  cfg.codec = "sq";
  cfg.q_bits = 15;
  auto policy = PolicyRegistry::global().make(cfg);
  EXPECT_STREQ(policy->name(), "fixed");
  const PolicyDecision want{"sq", 15};
  EXPECT_EQ(policy->decide(0, feedback(0, 0)), want);
  // Feedback, however hostile, never moves a fixed policy.
  EXPECT_EQ(policy->decide(7, feedback(100, 100)), want);
  EXPECT_TRUE(policy->state().empty());
}

TEST(FixedPolicy, RestoreRejectsNonEmptyState) {
  PolicyConfig cfg;
  auto policy = PolicyRegistry::global().make(cfg);
  const std::vector<std::uint8_t> junk(8, 0xab);
  EXPECT_NO_THROW(policy->restore({}));
  EXPECT_THROW(policy->restore(junk), std::runtime_error);
}

TEST(AimdTrimPolicy, CutsQUnderPressureAndRecoversAdditively) {
  PolicyConfig cfg;
  cfg.policy = "aimd-trim";
  cfg.aimd.min_q = 7;
  cfg.aimd.max_q = 31;
  cfg.aimd.initial_q = 31;
  cfg.aimd.target_trim = 0.05;
  cfg.aimd.hot_factor = 3.0;
  cfg.aimd.additive_step = 2;
  auto policy = PolicyRegistry::global().make(cfg);

  // Round 0 has no previous feedback: the initial Q goes out untouched.
  EXPECT_EQ(policy->decide(0, {}).q_bits, 31u);
  // Hot trimming (80% >> 15% hot threshold): multiplicative halving.
  EXPECT_EQ(policy->decide(1, feedback(100, 80)).q_bits, 15u);
  EXPECT_EQ(policy->decide(2, feedback(100, 80)).q_bits, 7u);
  // Clamped at the floor.
  EXPECT_EQ(policy->decide(3, feedback(100, 80)).q_bits, 7u);
  // Quiet fabric: additive recovery, clamped at max_q.
  unsigned q = 7;
  for (std::uint64_t round = 4; round < 20; ++round) {
    q = std::min(31u, q + 2);
    EXPECT_EQ(policy->decide(round, feedback(100, 0)).q_bits, q);
  }
  EXPECT_EQ(q, 31u);
}

TEST(AimdTrimPolicy, RetransmitsCountAsPressure) {
  // The reliable transport never trims, but its retransmissions must feed
  // the same controller (that is what the bench's congestion phase emits).
  PolicyConfig cfg;
  cfg.policy = "aimd-trim";
  auto policy = PolicyRegistry::global().make(cfg);
  EXPECT_EQ(policy->decide(0, {}).q_bits, 31u);
  EXPECT_EQ(policy->decide(1, feedback(100, 0, 80)).q_bits, 15u);
}

TEST(AimdTrimPolicy, StateRoundTripReplaysIdenticalDecisions) {
  PolicyConfig cfg;
  cfg.policy = "aimd-trim";
  auto a = PolicyRegistry::global().make(cfg);
  (void)a->decide(0, {});
  (void)a->decide(1, feedback(100, 60));  // cut toward the floor
  const auto blob = a->state();

  auto b = PolicyRegistry::global().make(cfg);
  b->restore(blob);
  // From the same state and feedback stream, decisions must match exactly.
  for (std::uint64_t round = 2; round < 12; ++round) {
    const NetFeedback fb = feedback(100, round % 3 == 0 ? 50 : 0);
    EXPECT_EQ(a->decide(round, fb), b->decide(round, fb)) << round;
  }
}

TEST(AimdTrimPolicy, RestoreRejectsMalformedBlobs) {
  PolicyConfig cfg;
  cfg.policy = "aimd-trim";
  auto policy = PolicyRegistry::global().make(cfg);
  EXPECT_THROW(policy->restore(std::vector<std::uint8_t>(3, 0)),
               std::runtime_error);  // truncated
  std::vector<std::uint8_t> zero_q(8, 0);
  EXPECT_THROW(policy->restore(zero_q), std::runtime_error);  // q = 0
  std::vector<std::uint8_t> trailing(9, 1);
  EXPECT_THROW(policy->restore(trailing), std::runtime_error);
}

TEST(SchedulePolicy, AppliesEntriesFromTheirRoundOnward) {
  PolicyConfig cfg;
  cfg.policy = "schedule";
  cfg.codec = "rht";
  cfg.q_bits = 31;
  cfg.schedule = "8:sparsify@15;4:sq@23";  // out of order on purpose
  auto policy = PolicyRegistry::global().make(cfg);
  EXPECT_STREQ(policy->name(), "schedule");
  const PolicyDecision base{"rht", 31};
  const PolicyDecision mid{"sq", 23};
  const PolicyDecision late{"sparsify", 15};
  EXPECT_EQ(policy->decide(0, {}), base);
  EXPECT_EQ(policy->decide(3, {}), base);
  EXPECT_EQ(policy->decide(4, {}), mid);
  EXPECT_EQ(policy->decide(7, {}), mid);
  EXPECT_EQ(policy->decide(8, {}), late);
  EXPECT_EQ(policy->decide(1000, {}), late);
  EXPECT_TRUE(policy->state().empty());
}

TEST(SchedulePolicy, MalformedScriptsFailFast) {
  PolicyConfig cfg;
  cfg.policy = "schedule";
  const auto make = [&cfg](const std::string& script) {
    cfg.schedule = script;
    return PolicyRegistry::global().make(cfg);
  };
  EXPECT_THROW((void)make("8"), std::invalid_argument);
  EXPECT_THROW((void)make("8:rht"), std::invalid_argument);
  EXPECT_THROW((void)make("x:rht@15"), std::invalid_argument);
  EXPECT_THROW((void)make("8:rht@0"), std::invalid_argument);
  EXPECT_THROW((void)make("8:rht@32"), std::invalid_argument);
  EXPECT_THROW((void)make("8:warp@15"), std::invalid_argument);
  EXPECT_NO_THROW((void)make("0:magnitude@31;;8:lowrank@15"));
}

TEST(PolicyDecision, ToStringRendersCodecAtQ) {
  EXPECT_EQ(to_string(PolicyDecision{"rht", 31}), "rht@31");
  EXPECT_EQ(to_string(PolicyDecision{"sparsify", 7}), "sparsify@7");
}

TEST(NetFeedback, PressureSaturatesAndWeighsEverySignal) {
  NetFeedback fb;
  EXPECT_DOUBLE_EQ(fb.pressure(), 0.0);  // zero packets -> zero rates
  fb.packets = 100;
  fb.trimmed = 10;
  fb.dropped = 5;
  fb.retransmits = 5;
  fb.dctcp_alpha = 0.2;
  fb.queue_depth_frac = 0.4;
  EXPECT_DOUBLE_EQ(fb.pressure(), 0.10 + 0.05 + 0.05 + 0.1 + 0.2);
  fb.trimmed = 100;
  fb.retransmits = 100;
  EXPECT_DOUBLE_EQ(fb.pressure(), 1.0);  // saturated
}

TEST(NetFeedback, SerializationRoundTripsByteExactly) {
  NetFeedback fb;
  fb.round = 42;
  fb.packets = 1000;
  fb.trimmed = 31;
  fb.dropped = 2;
  fb.retransmits = 17;
  fb.corrupt_nacks = 3;
  fb.flow_failures = 1;
  fb.wire_bytes = 123456789;
  fb.comm_s = 1.5e-3;
  fb.dctcp_alpha = 0.375;
  fb.queue_depth_frac = 0.0625;

  std::vector<std::uint8_t> blob;
  append_feedback(blob, fb);
  EXPECT_EQ(parse_feedback(blob), fb);

  // A second append lands behind the first; both truncation and trailing
  // garbage are loud.
  std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 1);
  EXPECT_THROW((void)parse_feedback(truncated), std::runtime_error);
  blob.push_back(0);
  EXPECT_THROW((void)parse_feedback(blob), std::runtime_error);
}

}  // namespace
}  // namespace trimgrad::core
