// Chaos sweep: DDP training over the simulated fabric with the fault plane
// on — link flaps on the fan-in port, 1% Bernoulli frame corruption, and a
// seed-chosen straggler rank per epoch — across fault seeds, trim-aware vs
// the reliable baseline. The robustness counterpart of the Fig. 3/4
// benches: the question here is not accuracy-vs-time but whether training
// completes, how many recoveries each transport pays, and how often a
// round has to proceed degraded.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "collective/sim_channel.h"
#include "core/metrics.h"
#include "core/metrics_export.h"
#include "ddp/experiment.h"
#include "ddp/trainer.h"
#include "net/fault_plane.h"
#include "net/topology.h"

using namespace trimgrad;

namespace {

struct CellResult {
  std::vector<ddp::EpochRecord> records;
  std::uint64_t fault_events = 0;
  std::uint64_t corrupt_detected = 0;
  bool queue_drained = false;
  std::string label;
};

/// The declarative description of one sweep cell; run_cell projects it
/// onto the fabric, the fault plane, and the trainer.
ddp::ExperimentSpec cell_spec(std::uint64_t fault_seed, bool reliable,
                              std::size_t epochs) {
  ddp::ExperimentSpec spec;
  spec.transport = reliable ? "reliable" : "trim";
  spec.scheme = "rht";
  spec.topology = "fabric";
  spec.faults = "chaos";
  spec.trim = 0;  // fabric trimming is emergent, not coin-injected
  spec.deadline = 10e-3;
  spec.world = 4;
  spec.epochs = epochs;
  spec.batch = 32;
  spec.lr = 0.05;
  spec.fault_seed = fault_seed;
  return spec;
}

std::uint64_t counter_value(const std::string& name) {
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

CellResult run_cell(const ddp::ExperimentSpec& spec) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  // Partitioned k=8 fat-tree (128 hosts, 12 domains), ranks spread across
  // the first four pods so every collective crosses the core layer — the
  // chaos cells now soak the same sharded engine the scale bench measures.
  constexpr std::size_t kFatTreeK = 8;
  const net::FatTree topo = net::build_fat_tree(sim, kFatTreeK, fcfg);
  net::partition_fat_tree(sim, topo);
  sim.seal_partition();
  sim.set_parallel_execution(true);
  const std::vector<net::NodeId> ranks = {
      topo.pod_hosts[0][0], topo.pod_hosts[1][0], topo.pod_hosts[2][0],
      topo.pod_hosts[3][0]};

  net::FaultPlaneConfig pcfg;  // spec.faults == "chaos": corrupt + flap
  pcfg.seed = spec.fault_seed;
  pcfg.corrupt_rate = 0.01;
  net::LinkFault flap;  // flap the fan-in: pod 0's agg 0 first core uplink
  flap.node = topo.aggs[0][0];
  flap.port = kFatTreeK / 2;  // uplinks sit after the k/2 edge downlinks
  flap.start = 50e-6;
  flap.duration = 20e-6;
  flap.period = 500e-6;
  flap.repeats = std::size_t{1} << 30;
  pcfg.link_faults.push_back(flap);
  net::FaultPlane plane(pcfg);
  sim.set_fault_plane(&plane);

  collective::SimChannel::Config ccfg = spec.sim_channel_config();
  ccfg.tuning.rto = 100e-6;
  ccfg.tuning.rto_cap = 1e-3;
  ccfg.tuning.retransmit_budget = 400;
  collective::SimChannel channel(sim, ranks, ccfg);

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  dcfg.proto_grid = 3;
  ml::SynthCifar data(dcfg);

  ddp::TrainerConfig tcfg = spec.trainer_config();
  tcfg.eval_every = spec.epochs;  // one final evaluation
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  tcfg.straggler_factor = 3.0;
  ddp::DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  });

  CellResult out;
  out.label = spec.label();
  const std::uint64_t det0 = counter_value("net.fault.corrupt_detected");
  out.records = trainer.train();
  out.corrupt_detected = counter_value("net.fault.corrupt_detected") - det0;
  out.fault_events = plane.log().size();
  const net::SimTime t_end = sim.now();
  out.queue_drained = sim.run() == t_end;
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  const std::size_t epochs = smoke ? 3 : 8;
  const std::vector<std::uint64_t> seeds = {7, 21, 1017};

  std::printf("# chaos sweep on a partitioned k=8 fat-tree: link flap + 1%% "
              "corruption + straggler/epoch (%zu epochs)\n", epochs);
  std::printf("%6s %10s %8s %8s %10s %10s %8s %8s %10s %8s\n", "seed", "mode",
              "epochs", "top1", "retx", "faults", "corrupt", "degr",
              "missing", "drain");

  std::string doc = "{\"cells\":[";
  bool first = true;
  for (const std::uint64_t seed : seeds) {
    for (const bool reliable : {false, true}) {
      core::MetricsRegistry::global().reset_values();
      const CellResult cell = run_cell(cell_spec(seed, reliable, epochs));

      std::uint64_t retx = 0;
      std::size_t degraded = 0, missing = 0;
      for (const auto& r : cell.records) {
        retx += r.retransmits;
        degraded += r.degraded_rounds;
        missing += r.missing_ranks;
      }
      const char* mode = reliable ? "reliable" : "trim";
      std::printf("%6llu %10s %8zu %8.3f %10llu %10llu %8llu %8zu %10zu %8s\n",
                  static_cast<unsigned long long>(seed), mode,
                  cell.records.size(), cell.records.back().top1,
                  static_cast<unsigned long long>(retx),
                  static_cast<unsigned long long>(cell.fault_events),
                  static_cast<unsigned long long>(cell.corrupt_detected),
                  degraded, missing, cell.queue_drained ? "yes" : "NO");
      std::fflush(stdout);

      if (!first) doc += ',';
      first = false;
      char head[256];
      std::snprintf(head, sizeof(head),
                    "{\"seed\":%llu,\"mode\":\"%s\",\"label\":\"%s\","
                    "\"top1\":%.4f,"
                    "\"retransmits\":%llu,\"degraded_rounds\":%zu,"
                    "\"missing_ranks\":%zu,\"drained\":%s,\"metrics\":",
                    static_cast<unsigned long long>(seed), mode,
                    cell.label.c_str(), cell.records.back().top1,
                    static_cast<unsigned long long>(retx), degraded, missing,
                    cell.queue_drained ? "true" : "false");
      doc += head;
      doc += core::metrics_to_json(core::MetricsRegistry::global());
      doc += '}';
    }
  }
  doc += "]}";
  {
    std::ofstream out("BENCH_chaos_metrics.json", std::ios::binary);
    out << doc << '\n';
    if (out) std::printf("wrote BENCH_chaos_metrics.json\n");
  }
  std::printf("# (expected: every cell completes all epochs and drains; "
              "reliable pays more retransmits at the same seed)\n");
  return 0;
}
