// Chaos search end to end: clean cells stay clean, a seeded mutation is
// caught by the conservation invariant, the shrinker delta-debugs it to a
// <= 3-event repro, and the repro replays bit-identically at 1/2/8 threads.
#include "ddp/chaos_search.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <string>
#include <vector>

#include "core/threadpool.h"
#include "net/flow_core.h"

namespace trimgrad::ddp {
namespace {

ExperimentSpec tiny_spec(const std::string& transport,
                         const std::string& scheme) {
  ExperimentSpec spec;
  spec.transport = transport;
  spec.scheme = scheme;
  spec.topology = "fabric";
  spec.faults = "none";
  spec.trim = 0;
  spec.deadline = 10e-3;
  spec.world = 4;
  spec.epochs = 1;
  spec.batch = 16;
  spec.lr = 0.05;
  return spec;
}

/// Restores the mutation flag even when an assertion bails out early.
struct SwallowGuard {
  explicit SwallowGuard(bool on) { net::test_set_swallow_corrupt_frames(on); }
  ~SwallowGuard() { net::test_set_swallow_corrupt_frames(false); }
};

/// The seeded script the mutation test starts from: three events (a global
/// corrupt rate, one brown-out window, a straggler) so the shrinker has
/// something real to delta-debug away.
net::FaultScript mutation_script() {
  net::FaultScript script;
  script.plane.seed = 13;
  script.plane.corrupt_rate = 0.05;
  script.straggler_factor = 2.0;
  net::LinkFault brown;
  brown.node = 0;  // edge switch p0-e0 of the k=4 fat-tree
  brown.port = 0;  // its first agg uplink
  brown.start = 100e-6;
  brown.duration = 300e-6;
  brown.bandwidth_scale = 0.5;
  brown.latency_scale = 2.0;
  script.plane.link_faults.push_back(brown);
  return script;
}

TEST(ChaosSearch, CleanCellRunIsViolationFree) {
  net::FaultScript quiet;
  quiet.plane.seed = 3;
  const ChaosCellResult r = run_chaos_cell(tiny_spec("trim", "rht"), quiet);
  EXPECT_EQ(r.total_violations, 0u);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.drained) << "events left in the simulator after training";
  EXPECT_GT(r.checks, 0u) << "the monitor was not wired into the cell";
  EXPECT_EQ(r.epochs, 1u);
  EXPECT_EQ(r.fault_events, 0u);
}

TEST(ChaosSearch, GeneratedFaultsWithWorkingRecoveryStayClean) {
  const net::ScriptGenConfig gen = chaos_candidates(4, /*seed=*/21,
                                                    /*intensity=*/0.6);
  const net::FaultScript script = generate_fault_script(gen);
  ASSERT_GT(script.event_count(), 0u);
  const ChaosCellResult r = run_chaos_cell(tiny_spec("reliable", "rht"),
                                           script);
  EXPECT_EQ(r.total_violations, 0u)
      << "recovery paths must absorb generated faults without violations";
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.epochs, 1u);
}

TEST(ChaosSearch, CandidatesComeFromTheFabric) {
  const net::ScriptGenConfig gen = chaos_candidates(4, 9, 0.4);
  EXPECT_EQ(gen.seed, 9u);
  EXPECT_DOUBLE_EQ(gen.intensity, 0.4);
  // k=4 fat-tree: 8 edge + 8 agg switches with 4 ports, 4 cores with 4
  // ports; all are link candidates, only switches are kill candidates.
  EXPECT_EQ(gen.links.size(), 80u);
  EXPECT_EQ(gen.nodes.size(), 20u);
  // The builder creates switches first (ids 0..19), hosts after (20..35).
  for (const auto n : gen.nodes) {
    EXPECT_LT(n, 20u) << "hosts must not be kill candidates";
  }
}

TEST(ChaosSearch, MutationIsCaughtShrunkAndReplaysAcrossThreadCounts) {
  // The seeded bug: the receiver swallows corrupt data frames without
  // NACKing them. Every per-rank counter still adds up — only the frame
  // conservation property notices.
  SwallowGuard guard(true);
  const ExperimentSpec spec = tiny_spec("reliable", "rht");
  const net::FaultScript script = mutation_script();
  ASSERT_EQ(script.event_count(), 3u);

  const ChaosCellResult broken = run_chaos_cell(spec, script);
  ASSERT_GT(broken.total_violations, 0u)
      << "the mutation must be observable before shrinking";
  bool saw_conservation = false;
  for (const auto& v : broken.violations) {
    saw_conservation |= v.rule == "frame_conservation";
  }
  EXPECT_TRUE(saw_conservation);

  const ChaosRepro repro = shrink_repro(spec, script);
  EXPECT_LE(repro.script.event_count(), 3u);
  EXPECT_GT(repro.probes, 0u);
  ASSERT_FALSE(repro.violations.empty())
      << "the shrunk pair must still violate";
  EXPECT_LE(repro.spec.epochs, spec.epochs);
  EXPECT_LE(repro.spec.world, spec.world);

  // 1-minimality: dropping any remaining event makes the run pass... is
  // guaranteed by construction; what we verify here is the replay contract:
  // the minimal repro is bit-identical for any worker count.
  std::vector<std::vector<net::InvariantViolation>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::ThreadPool::set_global_threads(threads);
    runs.push_back(run_chaos_cell(repro.spec, repro.script).violations);
  }
  core::ThreadPool::set_global_threads(std::thread::hardware_concurrency());
  ASSERT_FALSE(runs[0].empty());
  EXPECT_EQ(runs[0], runs[1]) << "1 vs 2 threads diverged";
  EXPECT_EQ(runs[0], runs[2]) << "1 vs 8 threads diverged";
  EXPECT_EQ(runs[0], repro.violations)
      << "replay diverged from the shrinker's own final run";
}

TEST(ChaosSearch, ReproScriptReplaysViaFaultsFileSpec) {
  // The artifact contract: a repro is a FaultScript file plus a spec whose
  // faults=file:<path> points at it.
  const net::FaultScript script = mutation_script();
  const std::string path = ::testing::TempDir() + "chaos_repro_rt.txt";
  {
    std::ofstream os(path);
    script.save(os);
  }
  const net::FaultScript loaded = net::FaultScript::load_file(path);
  EXPECT_EQ(loaded, script);

  ExperimentSpec spec = tiny_spec("trim", "rht");
  spec.faults = "file:" + path;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_TRUE(spec.faults_is_file());
  EXPECT_EQ(spec.faults_path(), path);
  const ExperimentSpec reparsed = ExperimentSpec::parse(spec.serialize());
  EXPECT_EQ(reparsed.faults_path(), path)
      << "faults=file:<path> must survive the spec round-trip";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trimgrad::ddp
