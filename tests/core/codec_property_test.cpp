// Property sweeps over the full (scheme × message-size × trim-rate) grid —
// the invariants every configuration must satisfy regardless of parameters.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/codec.h"
#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

using Grid = std::tuple<Scheme, std::size_t /*n*/, double /*trim rate*/>;

class CodecGrid : public ::testing::TestWithParam<Grid> {
 protected:
  CodecConfig make_cfg() const {
    CodecConfig cfg;
    cfg.scheme = std::get<0>(GetParam());
    cfg.rht_row_len = 1 << 10;
    cfg.shared_seed = 4242;
    return cfg;
  }
};

TEST_P(CodecGrid, StatsPartitionTheCoordinateSpace) {
  const auto [scheme, n, rate] = GetParam();
  const auto v = gaussian_vec(n, n + 1);
  TrimmableEncoder enc(make_cfg());
  TrimmableDecoder dec(make_cfg());
  EncodedMessage msg = enc.encode(v, 3, 9);
  Xoshiro256 coin(n * 31 + static_cast<std::uint64_t>(rate * 1000));
  for (auto& p : msg.packets) {
    if (coin.bernoulli(rate)) p.trim();
  }
  const DecodeResult out = dec.decode(msg.packets, msg.meta);
  EXPECT_EQ(out.values.size(), n);
  EXPECT_EQ(out.stats.total_coords, n);
  EXPECT_EQ(out.stats.full_coords + out.stats.trimmed_coords +
                out.stats.lost_coords,
            n);
}

TEST_P(CodecGrid, WireSizeNeverGrowsUnderTrimming) {
  const auto [scheme, n, rate] = GetParam();
  const auto v = gaussian_vec(n, n + 2);
  TrimmableEncoder enc(make_cfg());
  EncodedMessage msg = enc.encode(v, 1, 1);
  for (auto& p : msg.packets) {
    const std::size_t before = p.wire_bytes();
    const std::size_t predicted = p.trimmed_wire_bytes();
    p.trim();
    EXPECT_EQ(p.wire_bytes(), predicted);
    EXPECT_LE(p.wire_bytes(), before);
  }
}

TEST_P(CodecGrid, DecodeIsDeterministic) {
  const auto [scheme, n, rate] = GetParam();
  const auto v = gaussian_vec(n, n + 3);
  TrimmableEncoder enc(make_cfg());
  TrimmableDecoder dec(make_cfg());
  EncodedMessage msg = enc.encode(v, 2, 4);
  Xoshiro256 coin(n * 17);
  for (auto& p : msg.packets) {
    if (coin.bernoulli(rate)) p.trim();
  }
  const auto a = dec.decode(msg.packets, msg.meta);
  const auto b = dec.decode(msg.packets, msg.meta);
  EXPECT_EQ(a.values, b.values);
}

TEST_P(CodecGrid, PacketSizesRespectTheMtu) {
  const auto [scheme, n, rate] = GetParam();
  const auto v = gaussian_vec(n, n + 4);
  TrimmableEncoder enc(make_cfg());
  const EncodedMessage msg = enc.encode(v, 1, 1);
  for (const auto& p : msg.packets) {
    EXPECT_LE(p.wire_bytes(), make_cfg().layout.mtu_bytes + 8)
        << "packet exceeds MTU";
    EXPECT_GT(p.n_coords, 0u);
  }
}

TEST_P(CodecGrid, TrimmedDecodeErrorIsBounded) {
  const auto [scheme, n, rate] = GetParam();
  if (scheme == Scheme::kBaseline) {
    GTEST_SKIP() << "baseline loses trimmed coords by design";
  }
  const auto v = gaussian_vec(n, n + 5);
  TrimmableEncoder enc(make_cfg());
  TrimmableDecoder dec(make_cfg());
  EncodedMessage msg = enc.encode(v, 5, 6);
  Xoshiro256 coin(n * 13 + 1);
  for (auto& p : msg.packets) {
    if (coin.bernoulli(rate)) p.trim();
  }
  const auto out = dec.decode(msg.packets, msg.meta);
  // Loosest cross-scheme bound: SQ's full-trim NMSE ≈ L²−σ² ≈ 5.25σ².
  EXPECT_LT(nmse(out.values, v), 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecGrid,
    ::testing::Combine(
        ::testing::Values(Scheme::kBaseline, Scheme::kSign, Scheme::kSQ,
                          Scheme::kSD, Scheme::kRHT, Scheme::kTopK,
                          Scheme::kMagnitude, Scheme::kLowRank),
        ::testing::Values<std::size_t>(1, 363, 364, 365, 1024, 5000),
        ::testing::Values(0.0, 0.3, 1.0)),
    [](const ::testing::TestParamInfo<Grid>& info) {
      // NOTE: no structured bindings here — the brackets don't group for
      // the preprocessor and the commas would split the macro arguments.
      return std::string(to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace trimgrad::core
