# Empty compiler generated dependencies file for trimgrad_core.
# This may be replaced when dependencies are built.
