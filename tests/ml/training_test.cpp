// Loss, optimizer, data, and single-process end-to-end learning tests.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/data.h"
#include "ml/loss.h"
#include "ml/model.h"
#include "ml/optim.h"

namespace trimgrad::ml {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});  // all zeros -> uniform distribution
  std::vector<std::uint32_t> labels = {0, 3};
  const auto r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<std::uint32_t> labels = {0};
  EXPECT_LT(softmax_cross_entropy(logits, labels).loss, 1e-3);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1});
  std::vector<std::uint32_t> labels = {2, 0};
  const auto r = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (std::size_t c = 0; c < 5; ++c) s += r.grad.data[i * 5 + c];
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, GradientMatchesNumerical) {
  Tensor logits({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  std::vector<std::uint32_t> labels = {1};
  const auto r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 4; ++c) {
    Tensor lp = logits;
    lp.data[c] += eps;
    Tensor lm = logits;
    lm.data[c] -= eps;
    const double numeric = (softmax_cross_entropy(lp, labels).loss -
                            softmax_cross_entropy(lm, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad.data[c], numeric, 1e-4) << c;
  }
}

TEST(TopK, RanksCorrectly) {
  Tensor logits({2, 4}, {0.1f, 0.9f, 0.3f, 0.2f, 5.0f, 1.0f, 2.0f, 3.0f});
  std::vector<std::uint32_t> labels = {1, 2};  // row0 correct, row1 rank-3
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 1), 0.5);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 3), 1.0);
}

TEST(Sgd, GradientDescentReducesQuadratic) {
  // Minimize f(w) = ||w||^2 / 2 with gradients g = w.
  std::vector<float> w = {5.0f, -3.0f};
  std::vector<float> g(2);
  ParamView view{&w, &g};
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  SgdMomentum opt(cfg);
  for (int i = 0; i < 100; ++i) {
    g = w;
    opt.step({view});
  }
  EXPECT_NEAR(w[0], 0.0f, 1e-3f);
  EXPECT_NEAR(w[1], 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesOnConsistentGradient) {
  std::vector<float> w_plain = {0.0f}, g_plain = {1.0f};
  std::vector<float> w_mom = {0.0f}, g_mom = {1.0f};
  SgdConfig plain_cfg;
  plain_cfg.lr = 0.01f;
  plain_cfg.momentum = 0.0f;
  SgdConfig mom_cfg = plain_cfg;
  mom_cfg.momentum = 0.9f;
  SgdMomentum plain(plain_cfg), mom(mom_cfg);
  for (int i = 0; i < 20; ++i) {
    plain.step({{&w_plain, &g_plain}});
    mom.step({{&w_mom, &g_mom}});
  }
  EXPECT_LT(w_mom[0], w_plain[0]);  // moved further (both negative direction)
}

TEST(Sgd, StepLrDecaysOnSchedule) {
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.step_epochs = 2;
  cfg.gamma = 0.5f;
  SgdMomentum opt(cfg);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  opt.end_epoch();
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.lr(), 0.25f);
}

TEST(Sgd, StepFlatMatchesPerBufferStep) {
  std::vector<float> w1 = {1, 2}, g1 = {0.1f, 0.2f};
  std::vector<float> w2 = {3}, g2 = {0.3f};
  std::vector<float> w1b = w1, g1b = g1, w2b = w2, g2b = g2;
  SgdConfig cfg;
  SgdMomentum a(cfg), b(cfg);
  a.step({{&w1, &g1}, {&w2, &g2}});
  std::vector<float> flat = {0.1f, 0.2f, 0.3f};
  b.step_flat({{&w1b, &g1b}, {&w2b, &g2b}}, flat);
  EXPECT_EQ(w1, w1b);
  EXPECT_EQ(w2, w2b);
}

SynthCifarConfig tiny_data_cfg() {
  SynthCifarConfig cfg;
  cfg.classes = 10;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 20;
  cfg.test_per_class = 10;
  cfg.proto_grid = 3;
  return cfg;
}

TEST(SynthCifar, DeterministicInSeed) {
  SynthCifar a(tiny_data_cfg()), b(tiny_data_cfg());
  std::vector<std::uint32_t> la, lb;
  const Tensor ta = a.test_batch(0, 16, la);
  const Tensor tb = b.test_batch(0, 16, lb);
  EXPECT_EQ(ta.data, tb.data);
  EXPECT_EQ(la, lb);
}

TEST(SynthCifar, SizesMatchConfig) {
  SynthCifar data(tiny_data_cfg());
  EXPECT_EQ(data.train_size(), 200u);
  EXPECT_EQ(data.test_size(), 100u);
  EXPECT_EQ(data.sample_floats(), 3u * 8 * 8);
}

TEST(SynthCifar, LabelsCoverAllClasses) {
  SynthCifar data(tiny_data_cfg());
  std::vector<std::uint32_t> labels;
  data.test_batch(0, data.test_size(), labels);
  std::vector<int> seen(10, 0);
  for (auto l : labels) ++seen[l];
  for (int c = 0; c < 10; ++c) EXPECT_EQ(seen[c], 10) << c;
}

TEST(SynthCifar, AugmentationChangesPixelsNotLabels) {
  SynthCifar data(tiny_data_cfg());
  std::vector<std::uint32_t> idx = {0, 1};
  std::vector<std::uint32_t> l1, l2;
  core::Xoshiro256 rng1(1), rng2(2);
  const Tensor b1 = data.train_batch(idx, l1, rng1);
  const Tensor b2 = data.train_batch(idx, l2, rng2);
  EXPECT_EQ(l1, l2);
  EXPECT_NE(b1.data, b2.data);  // different augmentation draws
}

TEST(Batcher, CoversEachIndexOncePerEpoch) {
  Batcher batcher(100, 10, 5);
  EXPECT_EQ(batcher.batches_per_epoch(), 10u);
  std::vector<int> seen(100, 0);
  for (std::size_t b = 0; b < 10; ++b) {
    for (auto i : batcher.batch(3, b)) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Batcher, DifferentEpochsShuffleDifferently) {
  Batcher batcher(64, 64, 5);
  EXPECT_NE(batcher.batch(0, 0), batcher.batch(1, 0));
}

TEST(Batcher, WorkerShardsPartitionTheBatch) {
  Batcher batcher(64, 16, 5);
  const auto full = batcher.batch(2, 1);
  std::vector<std::uint32_t> joined;
  for (std::size_t w = 0; w < 4; ++w) {
    const auto shard = batcher.worker_shard(2, 1, w, 4);
    EXPECT_EQ(shard.size(), 4u);
    joined.insert(joined.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(joined, full);
}

TEST(EndToEnd, SingleProcessTrainingLearnsSynthCifar) {
  // The substrate sanity check behind every figure: an MLP must beat random
  // guessing (10 %) by a wide margin after a few epochs of plain SGD.
  SynthCifar data(tiny_data_cfg());
  ModelConfig mcfg;
  mcfg.classes = 10;
  mcfg.height = mcfg.width = 8;
  auto net = make_mlp(mcfg, 64);
  SgdConfig scfg;
  scfg.lr = 0.05f;
  SgdMomentum opt(scfg);
  Batcher batcher(data.train_size(), 20, 1);
  core::Xoshiro256 aug_rng(3);

  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t b = 0; b < batcher.batches_per_epoch(); ++b) {
      std::vector<std::uint32_t> labels;
      const Tensor x = data.train_batch(batcher.batch(epoch, b), labels, aug_rng);
      net->zero_grads();
      const Tensor logits = net->forward(x);
      const auto lr = softmax_cross_entropy(logits, labels);
      net->backward(lr.grad);
      opt.step(net->params());
    }
    opt.end_epoch();
  }
  std::vector<std::uint32_t> labels;
  const Tensor x = data.test_batch(0, data.test_size(), labels);
  const double top1 = top_k_accuracy(net->forward(x), labels, 1);
  EXPECT_GT(top1, 0.5) << "substrate failed to learn an easy dataset";
}

}  // namespace
}  // namespace trimgrad::ml
