// Scalar 1-bit trimmable quantizers (paper §3.1).
//
// Every gradient coordinate v is encoded into a P = 1 bit "head" plus a
// Q = 31 bit "tail". The head must be a usable standalone compression when
// the tail is trimmed away by a congested switch; the tail restores (nearly)
// full precision when it survives. Three schemes from the paper:
//
//  * Sign-magnitude — head = sign(v); tail = the remaining 31 bits of the
//    IEEE-754 float (exponent + mantissa). Untrimmed decode is bit-exact.
//    Trimmed decode maps the sign to {−σ, +σ} using the message standard
//    deviation σ, which rides in a reliable metadata packet.
//  * Stochastic Quantization (SQ) — clip v to [−L, L] with L = 2.5σ
//    (TernGrad's choice); head = +1 with probability (L+v)/2L, giving an
//    unbiased estimator for unclipped coordinates. Trimmed decode: ±L.
//  * Subtractive Dithering (SD) — head = sign(v + ε) with shared-randomness
//    dither ε; trimmed decode: L·sign − ε. Sender and receiver regenerate
//    identical ε from a SharedRng, so the dither costs no bandwidth. SD's
//    error is input-independent and better in the worst case than SQ's.
//    NOTE: the paper's text says ε ~ U(−L/2, L/2), but that range makes the
//    estimator biased (E[x̃] = 2x for |x| ≤ L/2), contradicting the paper's
//    own unbiasedness and input-independence claims. Classic subtractive
//    dithering for a two-level ±L quantizer (step Δ = 2L) needs a dither
//    spanning the full step: ε ~ U(−L, L). We implement the corrected
//    range; see DESIGN.md.
//
// Tail format. For sign-magnitude the head already carries the sign, so the
// 31-bit tail is exactly the float's exponent+mantissa and untrimmed decode
// is lossless ("precise encoding of the original 32-bit number, without any
// additional space overhead", §3.2). For SQ/SD the head bit is stochastic —
// it does NOT determine the sign — so the tail must carry the sign itself:
// we store sign(1) + exponent(8) + the top 22 mantissa bits, dropping the
// least-significant mantissa bit (relative error ≤ 2⁻²³, far below gradient
// noise). This keeps Q = 31 for every scheme so the packet layout and trim
// arithmetic are scheme-independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.h"

namespace trimgrad::core {

/// The three scalar head encodings of §3.1.
enum class ScalarScheme : std::uint8_t { kSign = 0, kSQ = 1, kSD = 2 };

/// Human-readable scheme name ("sign", "sq", "sd").
const char* to_string(ScalarScheme s) noexcept;

/// Decode scale carried in reliable metadata: σ for kSign, L = 2.5σ for
/// kSQ/kSD. Computed over the whole message (paper sends "the standard
/// deviation of the original gradient").
float scalar_scale(ScalarScheme scheme, std::span<const float> values) noexcept;

/// TernGrad clip multiplier: L = 2.5σ.
inline constexpr float kClipSigmas = 2.5f;

/// Generate the n shared dithers ε_i ~ U(−L, L) for SD, one per coordinate
/// in index order. Both sides call this with equal keys. (Full-step dither;
/// see the SD note above on the paper's U(−L/2, L/2) typo.)
std::vector<float> make_dithers(std::size_t n, float scale_l, SharedRng rng);

/// Result of encoding one coordinate: 1 head bit + 31-bit tail.
struct HeadTail {
  bool head;
  std::uint32_t tail;  ///< low 31 bits valid
};

/// Encode one coordinate.
///  - `scale` is σ (kSign) or L (kSQ/kSD).
///  - `private_rng` supplies SQ's stochastic rounding (sender-only).
///  - `dither` is ε_i for kSD (ignored otherwise).
HeadTail scalar_encode(ScalarScheme scheme, float v, float scale,
                       Xoshiro256& private_rng, float dither) noexcept;

/// Decode a coordinate whose tail survived (untrimmed packet).
float scalar_decode_full(ScalarScheme scheme, bool head, std::uint32_t tail) noexcept;

/// Decode a coordinate whose tail was trimmed: only the head bit and the
/// reliable metadata scale (plus, for SD, the regenerated dither) remain.
float scalar_decode_trimmed(ScalarScheme scheme, bool head, float scale,
                            float dither) noexcept;

/// Vector convenience: encode all of `values`, appending to heads/tails.
/// For kSD, `dithers` must have values.size() entries; may be empty for
/// the other schemes.
void scalar_encode_all(ScalarScheme scheme, std::span<const float> values,
                       float scale, Xoshiro256& private_rng,
                       std::span<const float> dithers,
                       std::vector<std::uint8_t>& heads,
                       std::vector<std::uint32_t>& tails);

}  // namespace trimgrad::core
