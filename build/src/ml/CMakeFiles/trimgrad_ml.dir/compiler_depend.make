# Empty compiler generated dependencies file for trimgrad_ml.
# This may be replaced when dependencies are built.
