#include "ml/optim.h"

#include <cassert>

namespace trimgrad::ml {

void SgdMomentum::update_buffer(std::vector<float>& values,
                                std::span<const float> grads,
                                std::vector<float>& velocity) {
  if (velocity.size() != values.size()) velocity.assign(values.size(), 0.0f);
  for (std::size_t i = 0; i < values.size(); ++i) {
    float g = grads[i];
    if (cfg_.weight_decay != 0.0f) g += cfg_.weight_decay * values[i];
    velocity[i] = cfg_.momentum * velocity[i] + g;
    values[i] -= lr_ * velocity[i];
  }
}

void SgdMomentum::step(const std::vector<ParamView>& params) {
  if (velocity_.size() < params.size()) velocity_.resize(params.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    update_buffer(*params[p].values, *params[p].grads, velocity_[p]);
  }
}

void SgdMomentum::step_flat(const std::vector<ParamView>& params,
                            std::span<const float> flat_grads) {
  if (velocity_.size() < params.size()) velocity_.resize(params.size());
  std::size_t off = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const std::size_t n = params[p].values->size();
    assert(off + n <= flat_grads.size());
    update_buffer(*params[p].values, flat_grads.subspan(off, n),
                  velocity_[p]);
    off += n;
  }
}

void SgdMomentum::restore(float lr, std::size_t epoch,
                          std::vector<std::vector<float>> velocity) {
  lr_ = lr;
  epoch_ = epoch;
  velocity_ = std::move(velocity);
}

void SgdMomentum::end_epoch() {
  ++epoch_;
  if (cfg_.step_epochs > 0 && epoch_ % cfg_.step_epochs == 0) {
    lr_ *= cfg_.gamma;
  }
}

}  // namespace trimgrad::ml
