#include "core/metrics.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace trimgrad::core {
namespace {

// Registries are identified by a process-unique id, not their address, so a
// thread's cached shard pointer can never alias a new registry that happens
// to be allocated where a destroyed one used to live.
std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

void Counter::add(std::uint64_t delta) const noexcept {
  if (reg_ == nullptr) return;
  MetricsRegistry::Shard& shard = reg_->local_shard();
  shard.counters[id_] += delta;
}

void Gauge::set(double value) const noexcept {
  if (reg_ == nullptr) return;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  reg_->gauge_values_[id_] = value;
}

void Histogram::observe(double value) const noexcept {
  if (reg_ == nullptr) return;
  // "le" semantics: first bucket whose upper bound is >= value; anything
  // beyond the last bound lands in the overflow bucket at bounds.size().
  const std::vector<double>& bounds = *bounds_;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  MetricsRegistry::Shard& shard = reg_->local_shard();
  shard.hists[id_][bucket] += 1;
}

MetricsRegistry::MetricsRegistry()
    : instance_id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() noexcept {
  // Each thread caches one shard pointer per registry instance id. The map
  // is tiny (one or two registries per process in practice) and only grows;
  // shards themselves are owned by the registry and survive thread exit.
  static thread_local std::unordered_map<std::uint64_t, Shard*> tl_shards;
  Shard*& cached = tl_shards[instance_id_];
  if (cached == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    Shard* shard = shards_.back().get();
    shard->counters.assign(counter_names_.size(), 0);
    shard->hists.resize(hists_.size());
    for (std::size_t h = 0; h < hists_.size(); ++h) {
      shard->hists[h].assign(hists_[h]->bounds.size() + 1, 0);
    }
    cached = shard;
  } else {
    // Registrations may have happened since this shard was created; grow it
    // under the lock so concurrent snapshot() never sees a torn resize.
    if (cached->counters.size() != counter_names_.size() ||
        cached->hists.size() != hists_.size()) {
      std::lock_guard<std::mutex> lock(mu_);
      cached->counters.resize(counter_names_.size(), 0);
      cached->hists.resize(hists_.size());
      for (std::size_t h = 0; h < hists_.size(); ++h) {
        if (cached->hists[h].empty()) {
          cached->hists[h].assign(hists_[h]->bounds.size() + 1, 0);
        }
      }
    }
  }
  return *cached;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return Counter(this, i);
  }
  counter_names_.emplace_back(name);
  const std::size_t id = counter_names_.size() - 1;
  for (auto& shard : shards_) shard->counters.resize(counter_names_.size(), 0);
  return Counter(this, id);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return Gauge(this, i);
  }
  gauge_names_.emplace_back(name);
  gauge_values_.push_back(0.0);
  return Gauge(this, gauge_names_.size() - 1);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i]->name == name) {
      return Histogram(this, i, &hists_[i]->bounds);
    }
  }
  std::sort(upper_bounds.begin(), upper_bounds.end());
  auto info = std::make_unique<HistInfo>();
  info->name = std::string(name);
  info->bounds = std::move(upper_bounds);
  hists_.push_back(std::move(info));
  const std::size_t id = hists_.size() - 1;
  for (auto& shard : shards_) {
    shard->hists.resize(hists_.size());
    shard->hists[id].assign(hists_[id]->bounds.size() + 1, 0);
  }
  return Histogram(this, id, &hists_[id]->bounds);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
  }
  snap.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges[i].name = gauge_names_[i];
    snap.gauges[i].value = gauge_values_[i];
  }
  snap.histograms.resize(hists_.size());
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    snap.histograms[i].name = hists_[i]->name;
    snap.histograms[i].bounds = hists_[i]->bounds;
    snap.histograms[i].counts.assign(hists_[i]->bounds.size() + 1, 0);
  }
  // Integer sums over shards: associative + commutative, so the result does
  // not depend on how many shards (threads) contributed.
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      snap.counters[i].value += shard->counters[i];
    }
    for (std::size_t h = 0; h < shard->hists.size(); ++h) {
      for (std::size_t b = 0; b < shard->hists[h].size(); ++b) {
        snap.histograms[h].counts[b] += shard->hists[h][b];
      }
    }
  }
  for (auto& hist : snap.histograms) {
    for (std::uint64_t c : hist.counts) hist.total += c;
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard : shards_) {
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    for (auto& hist : shard->hists) std::fill(hist.begin(), hist.end(), 0);
  }
  std::fill(gauge_values_.begin(), gauge_values_.end(), 0.0);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so instrumentation in static destructors can never touch a dead
  // registry.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

}  // namespace trimgrad::core
