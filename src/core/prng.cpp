#include "core/prng.h"

#include <cmath>

namespace trimgrad::core {

double Xoshiro256::gaussian() noexcept {
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace trimgrad::core
