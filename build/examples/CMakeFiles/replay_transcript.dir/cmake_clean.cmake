file(REMOVE_RECURSE
  "CMakeFiles/replay_transcript.dir/replay_transcript.cpp.o"
  "CMakeFiles/replay_transcript.dir/replay_transcript.cpp.o.d"
  "replay_transcript"
  "replay_transcript.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_transcript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
