// Deterministic fault injection for the simulated fabric.
//
// The paper's claim is that trim-aware training degrades gracefully where
// reliable transports collapse (§1, §4); queue overflow is only one of the
// adversities that argument has to survive. The fault plane adds the rest:
// link failures and degradations, per-link Bernoulli frame corruption, and
// whole-node (switch) failures — all scripted against the simulated clock
// and keyed off a single seed, so a chaos run is bit-replayable.
//
// Determinism contract: every random decision is a *stateless* coin,
//
//   u01(mix64(mix64(seed, frame_id), mix64(node, port))) < rate
//
// so the outcome for a given frame on a given hop does not depend on how
// many other frames were examined first. Combined with the single-threaded
// event queue (FIFO tiebreak on equal times), two runs with the same seed
// and schedule make identical decisions — the FaultLog of one run compares
// equal to the other's, the same way TrimTranscript replays trims.
//
// Scheduled faults are intervals on the sim clock, evaluated statelessly at
// each hop (no toggle events), so attaching the plane never perturbs event
// ordering of the fault-free portions of a run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "core/prng.h"
#include "net/sim.h"

namespace trimgrad::net {

/// One link outage or degradation window on a directed port.
/// `bandwidth_scale == 0` takes the link hard down for the window: frames
/// queued behind it are flushed (lost with the link), new transmissions are
/// refused. A positive scale keeps the link up but multiplies bandwidth by
/// `bandwidth_scale` and latency by `latency_scale` (brown-out).
/// `period > 0` repeats the window `repeats` times, `period` apart — the
/// classic link flap.
struct LinkFault {
  NodeId node = kInvalidNode;
  std::size_t port = 0;
  SimTime start = 0;
  SimTime duration = 0;
  double bandwidth_scale = 0.0;
  double latency_scale = 1.0;
  SimTime period = 0;
  std::size_t repeats = 1;

  friend bool operator==(const LinkFault&, const LinkFault&) = default;

  /// True when `now` falls inside one of the fault's windows.
  bool active_at(SimTime now) const noexcept;
};

/// A node (host or switch) is dead for the window: frames addressed to it
/// are lost in flight, and it originates nothing.
struct NodeFault {
  NodeId node = kInvalidNode;
  SimTime start = 0;
  SimTime duration = 0;
  SimTime period = 0;
  std::size_t repeats = 1;

  friend bool operator==(const NodeFault&, const NodeFault&) = default;

  bool active_at(SimTime now) const noexcept;
};

/// Per-port corruption-rate override (takes precedence over the global
/// rate for frames leaving this port).
struct CorruptRule {
  NodeId node = kInvalidNode;
  std::size_t port = 0;
  double rate = 0.0;

  friend bool operator==(const CorruptRule&, const CorruptRule&) = default;
};

struct FaultPlaneConfig {
  std::uint64_t seed = 1;
  /// Global Bernoulli corruption probability per data frame per hop.
  double corrupt_rate = 0.0;
  std::vector<CorruptRule> corrupt_overrides;
  std::vector<LinkFault> link_faults;
  std::vector<NodeFault> node_faults;

  friend bool operator==(const FaultPlaneConfig&,
                         const FaultPlaneConfig&) = default;
};

/// One fault decision, recorded as it is made. The log is the fault-plane
/// analogue of TrimTranscript: two runs with identical seeds and schedules
/// produce identical logs, which is how the chaos tests pin replayability.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkRefused = 0,  ///< transmit refused: origin link down
    kQueueFlushed = 1, ///< frame flushed from a queue behind a dead link
    kNodeDrop = 2,     ///< frame lost: origin or destination node dead
    kCorrupt = 3,      ///< frame payload mangled on a hop
  };
  Kind kind = Kind::kLinkRefused;
  SimTime time = 0;
  NodeId node = kInvalidNode;
  std::size_t port = 0;
  std::uint64_t frame_id = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

const char* to_string(FaultEvent::Kind k) noexcept;

class FaultLog {
 public:
  void record(FaultEvent ev) { events_.push_back(ev); }

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Text form: one "kind time node port frame_id" line per event.
  void save(std::ostream& os) const;
  static FaultLog load(std::istream& is);

  /// Copy with events in canonical (time, frame_id, kind, node, port) order.
  /// On a sharded simulator the *append* order of the log follows worker
  /// interleaving even though the *set* of decisions is deterministic;
  /// cross-mode comparisons go through this normal form.
  FaultLog sorted() const;

  friend bool operator==(const FaultLog& a, const FaultLog& b) {
    return a.events_ == b.events_;
  }

 private:
  std::vector<FaultEvent> events_;
};

/// The fault plane itself. Attach to a Simulator with set_fault_plane();
/// the simulator consults it at transmit, dequeue, and delivery time. Must
/// outlive the simulator runs it is attached to.
class FaultPlane {
 public:
  explicit FaultPlane(FaultPlaneConfig cfg);

  /// False while a hard-down LinkFault window covers (node, port).
  bool link_up(NodeId node, std::size_t port, SimTime now) const noexcept;

  /// False while a NodeFault window covers the node.
  bool node_up(NodeId node, SimTime now) const noexcept;

  /// The link spec after any active degradation windows are applied.
  LinkSpec effective_link(NodeId node, std::size_t port, SimTime now,
                          const LinkSpec& base) const noexcept;

  /// Flip the stateless corruption coin for a data frame leaving (node,
  /// port). On a hit the frame is marked corrupted — and, when it carries
  /// cargo, one payload byte is actually flipped so a receiver that ignored
  /// the checksum would aggregate garbage. Returns true on a hit.
  bool maybe_corrupt(NodeId node, std::size_t port, SimTime now, Frame& frame);

  /// Bookkeeping hooks the simulator calls when it drops on our behalf.
  void note_link_refused(NodeId node, std::size_t port, SimTime now,
                         std::uint64_t frame_id);
  void note_queue_flushed(NodeId node, std::size_t port, SimTime now,
                          std::uint64_t frame_id);
  void note_node_drop(NodeId node, SimTime now, std::uint64_t frame_id);

  const FaultLog& log() const noexcept { return log_; }
  const FaultPlaneConfig& config() const noexcept { return cfg_; }

 private:
  double corrupt_rate_for(NodeId node, std::size_t port) const noexcept;

  FaultPlaneConfig cfg_;
  FaultLog log_;
  /// Guards log_ appends: on a sharded simulator fault decisions are made
  /// concurrently from domain workers. Decisions themselves are stateless
  /// coins, so the lock only serializes bookkeeping, never outcomes.
  std::mutex log_mu_;
};

/// Receivers call this when a checksum mismatch (frame.corrupted) stops a
/// mangled frame from being delivered; counted as net.fault.corrupt_detected.
void count_corrupt_detected();

/// Deterministic straggler schedule for the DDP layer: one slow rank per
/// epoch, chosen by a stateless mix of (seed, epoch). `factor` multiplies
/// the straggler's compute time; 1.0 disables the schedule.
struct StragglerSchedule {
  std::uint64_t seed = 0;
  double factor = 1.0;

  int straggler_rank(std::uint64_t epoch, int world) const noexcept {
    return static_cast<int>(core::mix64(seed, epoch) %
                            static_cast<std::uint64_t>(world));
  }
  bool enabled() const noexcept { return factor > 1.0; }
  double compute_scale(std::uint64_t epoch, int rank,
                       int world) const noexcept {
    return enabled() && rank == straggler_rank(epoch, world) ? factor : 1.0;
  }
};

}  // namespace trimgrad::net
