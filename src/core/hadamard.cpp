#include "core/hadamard.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace trimgrad::core {

void fwht_inplace(std::span<float> data) noexcept {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const float a = data[j];
        const float b = data[j + len];
        data[j] = a + b;
        data[j + len] = a - b;
      }
    }
  }
}

void fwht_orthonormal_inplace(std::span<float> data) noexcept {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  if (n == 1) return;  // H is identity and scale is exactly 1
  // All but the final butterfly stage, unscaled.
  for (std::size_t len = 1; len < n >> 1; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const float a = data[j];
        const float b = data[j + len];
        data[j] = a + b;
        data[j + len] = a - b;
      }
    }
  }
  // Final stage with the 1/√n scale fused into the butterfly outputs —
  // same multiply the separate scaling pass would do, one fewer sweep
  // over the row, bit-identical results.
  const std::size_t half = n >> 1;
  for (std::size_t j = 0; j < half; ++j) {
    const float a = data[j];
    const float b = data[j + half];
    data[j] = (a + b) * scale;
    data[j + half] = (a - b) * scale;
  }
}

void rht_inplace(std::span<float> data, Xoshiro256& rng) noexcept {
  for (float& x : data) x *= rng.random_sign();
  fwht_orthonormal_inplace(data);
}

void irht_inplace(std::span<float> data, Xoshiro256& rng) noexcept {
  // (H·D)⁻¹ = D⁻¹·H⁻¹ = D·H for orthonormal H and ±1 diagonal D.
  fwht_orthonormal_inplace(data);
  for (float& x : data) x *= rng.random_sign();
}

RowSplit make_row_split(std::size_t total, std::size_t row_len) noexcept {
  assert(is_pow2(row_len));
  RowSplit s{};
  s.row_len = row_len;
  s.total = total;
  if (total == 0) {
    s.n_rows = 0;
    s.tail_padded = 0;
    return s;
  }
  const std::size_t full = total / row_len;
  const std::size_t rem = total % row_len;
  s.n_rows = full + (rem != 0 ? 1 : 0);
  s.tail_padded = rem != 0 ? next_pow2(rem) : 0;
  return s;
}

std::vector<float> extract_padded_row(std::span<const float> flat,
                                      const RowSplit& split, std::size_t row) {
  assert(row < split.n_rows);
  const std::size_t off = split.offset(row);
  const std::size_t real = split.real_len(row);
  std::vector<float> out(split.padded_len(row), 0.0f);
  std::copy(flat.begin() + off, flat.begin() + off + real, out.begin());
  return out;
}

}  // namespace trimgrad::core
