// Experiment X6: low-rank vs RHT trimmable compression (paper §5.2).
//
// The paper asks which compression family suits just-in-time trimming. We
// compare the rank-ordered trimmable low-rank codec against 1-bit RHT on
// two gradient populations at matched surviving-byte budgets:
//   (a) structured gradients (planted low-rank + small noise — the regime
//       PowerSGD exploits in real layers), and
//   (b) unstructured full-rank gaussian noise.
// Expectation: low-rank dominates on (a) — even its fully-trimmed rank-1
// form retains the signal — while on (b) its best case is bounded by the
// discarded spectrum and RHT wins.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/lowrank.h"
#include "core/prng.h"
#include "core/stats.h"

using namespace trimgrad;

namespace {

std::vector<float> structured_matrix(std::size_t rows, std::size_t cols,
                                     std::size_t true_rank, float noise,
                                     std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> m(rows * cols, 0.0f);
  for (std::size_t k = 0; k < true_rank; ++k) {
    const float strength = std::pow(0.5f, static_cast<float>(k));
    std::vector<float> u(rows), v(cols);
    for (auto& x : u) x = static_cast<float>(rng.gaussian());
    for (auto& x : v) x = static_cast<float>(rng.gaussian());
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        m[i * cols + j] += strength * u[i] * v[j] /
                           std::sqrt(static_cast<float>(rows));
      }
    }
  }
  for (auto& x : m) x += noise * static_cast<float>(rng.gaussian());
  return m;
}

std::vector<float> noise_matrix(std::size_t rows, std::size_t cols,
                                std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> m(rows * cols);
  for (auto& x : m) x = static_cast<float>(rng.gaussian());
  return m;
}

double lowrank_nmse_at_budget(const std::vector<float>& m, std::size_t rows,
                              std::size_t cols, double budget_frac) {
  core::LowRankCodec codec({8, 2, 17, core::PacketLayout{}});
  auto enc = codec.encode(m, rows, cols, 1);
  std::size_t total = 0;
  for (const auto& p : enc.packets) total += p.wire_bytes();
  const auto budget = static_cast<std::size_t>(
      budget_frac * static_cast<double>(m.size() * 4));
  // Uniformly reduce per-packet rank depth until the budget is met.
  for (std::uint16_t keep = 8; keep >= 1 && total > budget; --keep) {
    total = 0;
    for (auto& p : enc.packets) {
      p.trim_to_rank(keep);
      total += p.wire_bytes();
    }
  }
  return core::nmse(codec.decode(enc.packets, enc.meta), m);
}

double rht_nmse_at_budget(const std::vector<float>& m, double budget_frac) {
  core::CodecConfig cfg;
  cfg.scheme = core::Scheme::kRHT;
  cfg.rht_row_len = std::size_t{1} << 12;
  core::TrimmableEncoder enc(cfg);
  core::TrimmableDecoder dec(cfg);
  auto msg = enc.encode(m, 1, 1);
  std::size_t total = 0;
  for (const auto& p : msg.packets) total += p.wire_bytes();
  const auto budget = static_cast<std::size_t>(
      budget_frac * static_cast<double>(m.size() * 4));
  for (auto& p : msg.packets) {
    if (total <= budget) break;
    const std::size_t before = p.wire_bytes();
    p.trim();
    total -= before - p.wire_bytes();
  }
  return core::nmse(dec.decode(msg.packets, msg.meta).values, m);
}

}  // namespace

int main() {
  const std::size_t rows = 512, cols = 256;

  std::printf("# Sec 5.2 ablation: rank-ordered low-rank vs 1-bit RHT at "
              "matched byte budgets (%zux%zu gradient matrix)\n",
              rows, cols);
  std::printf("%9s | %14s %11s | %14s %11s\n", "budget%", "lowrank(struct)",
              "rht(struct)", "lowrank(noise)", "rht(noise)");

  const auto structured = structured_matrix(rows, cols, 4, 0.02f, 1);
  const auto unstructured = noise_matrix(rows, cols, 2);

  for (double budget : {1.0, 0.5, 0.25, 0.1, 0.05, 0.02}) {
    std::printf("%8.0f%% | %14.4f %11.4f | %14.4f %11.4f\n", budget * 100,
                lowrank_nmse_at_budget(structured, rows, cols, budget),
                rht_nmse_at_budget(structured, budget),
                lowrank_nmse_at_budget(unstructured, rows, cols, budget),
                rht_nmse_at_budget(unstructured, budget));
    std::fflush(stdout);
  }
  std::printf("# (expected: low-rank wins on structured gradients at every "
              "budget; RHT wins on full-rank noise — the Sec 5.2 'which "
              "family' question answered per regime)\n");
  return 0;
}
