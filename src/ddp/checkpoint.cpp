#include "ddp/checkpoint.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/wire.h"

namespace trimgrad::ddp {

namespace {

// "TGCK" little-endian: TrimGrad ChecKpoint.
constexpr std::uint32_t kMagic = 0x4b434754;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_floats(std::vector<std::uint8_t>& out, const std::vector<float>& v) {
  put_u64(out, v.size());
  for (float f : v) put_f32(out, f);
}

/// Bounds-checked little-endian reader over the blob.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[noreturn]] void fail_truncated() const {
    throw std::runtime_error("Checkpoint: blob truncated at byte " +
                             std::to_string(pos));
  }

  std::uint32_t u32() {
    if (data.size() - pos < 4) fail_truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (data.size() - pos < 8) fail_truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  float f32() { return std::bit_cast<float>(u32()); }

  std::vector<float> floats() {
    const std::uint64_t n = u64();
    // A length that cannot fit in the remaining bytes is truncation (or a
    // corrupted length field); reject before allocating.
    if ((data.size() - pos) / 4 < n) fail_truncated();
    std::vector<float> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f32());
    return v;
  }
};

}  // namespace

std::vector<std::uint8_t> Checkpoint::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + 4 * (params.size() + residual.size()));
  put_u32(out, kMagic);
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(rank));
  put_u64(out, epoch);
  put_u64(out, round);
  put_u64(out, view_version);
  put_f32(out, lr);
  put_u64(out, opt_epoch);
  for (std::uint64_t w : augment_rng) put_u64(out, w);
  put_floats(out, params);
  put_u64(out, velocity.size());
  for (const auto& buf : velocity) put_floats(out, buf);
  put_floats(out, residual);
  put_u64(out, policy_state.size());
  out.insert(out.end(), policy_state.begin(), policy_state.end());
  put_u32(out, core::crc32c({out.data(), out.size()}));
  return out;
}

Checkpoint Checkpoint::from_bytes(std::span<const std::uint8_t> blob) {
  if (blob.size() < 8) throw std::runtime_error("Checkpoint: blob too short");
  Reader rd{blob.first(blob.size() - 4)};  // body; trailing 4 bytes are CRC

  if (rd.u32() != kMagic)
    throw std::runtime_error("Checkpoint: bad magic (not a checkpoint blob)");
  const std::uint32_t version = rd.u32();
  if (version < 1 || version > kFormatVersion)
    throw std::runtime_error("Checkpoint: unsupported format version " +
                             std::to_string(version));

  // Verify the trailing CRC before trusting any length-prefixed section.
  const std::uint32_t want = core::crc32c(blob.first(blob.size() - 4));
  std::uint32_t got = 0;
  for (int i = 0; i < 4; ++i)
    got |= static_cast<std::uint32_t>(blob[blob.size() - 4 + i]) << (8 * i);
  if (want != got)
    throw std::runtime_error("Checkpoint: CRC mismatch (blob damaged)");

  Checkpoint ck;
  ck.rank = static_cast<int>(rd.u32());
  ck.epoch = rd.u64();
  ck.round = rd.u64();
  ck.view_version = rd.u64();
  ck.lr = rd.f32();
  ck.opt_epoch = rd.u64();
  for (auto& w : ck.augment_rng) w = rd.u64();
  ck.params = rd.floats();
  const std::uint64_t nbufs = rd.u64();
  if ((rd.data.size() - rd.pos) / 8 < nbufs) rd.fail_truncated();
  ck.velocity.reserve(static_cast<std::size_t>(nbufs));
  for (std::uint64_t i = 0; i < nbufs; ++i) ck.velocity.push_back(rd.floats());
  ck.residual = rd.floats();
  if (version >= 2) {
    const std::uint64_t nb = rd.u64();
    if (rd.data.size() - rd.pos < nb) rd.fail_truncated();
    ck.policy_state.assign(rd.data.begin() + static_cast<std::ptrdiff_t>(rd.pos),
                           rd.data.begin() +
                               static_cast<std::ptrdiff_t>(rd.pos + nb));
    rd.pos += static_cast<std::size_t>(nb);
  }
  if (rd.pos != rd.data.size())
    throw std::runtime_error("Checkpoint: trailing garbage after payload");
  return ck;
}

void Checkpoint::save(std::ostream& os) const {
  const auto bytes = to_bytes();
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

Checkpoint Checkpoint::load(std::istream& is) {
  std::vector<std::uint8_t> bytes;
  char c;
  while (is.get(c)) bytes.push_back(static_cast<std::uint8_t>(c));
  return from_bytes(bytes);
}

}  // namespace trimgrad::ddp
