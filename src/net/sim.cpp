#include "net/sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "core/threadpool.h"
#include "core/trace.h"
#include "net/fault_plane.h"
#include "net/invariants.h"

namespace trimgrad::net {

namespace {

/// Execution context of the event currently running on this thread. Lets
/// now()/schedule()/next_frame_id() route to the executing domain without
/// passing the simulator through every handler signature — and makes those
/// calls race-free in parallel windows (each domain is owned by one worker).
struct ExecCtx {
  Simulator* sim = nullptr;
  std::uint32_t domain = 0;
  NodeId node = kInvalidNode;
};

thread_local ExecCtx g_ctx;

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

}  // namespace

Simulator::Simulator() : domains_(1) {
  // While a simulator is alive, trace timestamps read the simulated clock
  // (the executing domain's clock inside an event, the high-water mark
  // outside — see now()).
  core::TraceLog::global().set_time_source([this] { return now(); });
}

Simulator::~Simulator() {
  // Never leave a dangling clock behind; fall back to the logical ticker.
  core::TraceLog::global().set_time_source({});
}

SimTime Simulator::now() const noexcept {
  if (g_ctx.sim == this) return domains_[g_ctx.domain].now;
  return now_;
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  const NodeId ctx_node = (g_ctx.sim == this) ? g_ctx.node : kInvalidNode;
  schedule_event(ctx_node, delay, std::move(fn));
}

void Simulator::schedule_at(NodeId node_id, SimTime delay,
                            std::function<void()> fn) {
  if (node_id >= nodes_.size()) throw std::out_of_range("bad node id");
  schedule_event(node_id, delay, std::move(fn));
}

void Simulator::schedule_event(NodeId exec_node, SimTime delay,
                               std::function<void()> fn) {
  assert(delay >= 0.0);
  const bool in_exec = (g_ctx.sim == this);
  // The event key is assigned by the *scheduling* domain: its id plus the
  // next value of its private sequence counter. Each domain executes its
  // events in the same order under every execution mode, so the keys it
  // hands out are mode-independent — the heart of the determinism argument.
  // Outside any event the scheduler is domain 0, which makes an
  // unpartitioned simulator's key exactly the classic (time, FIFO counter).
  const std::uint32_t sched = in_exec ? g_ctx.domain : 0u;
  Domain& sd = domains_[sched];
  const SimTime base = in_exec ? sd.now : now_;
  push_event(Event{base + delay, sched, ++sd.seq, exec_node, std::move(fn)});
}

std::uint32_t Simulator::exec_domain_of(NodeId node_id) const noexcept {
  if (node_id == kInvalidNode || node_id >= node_domain_.size()) return 0;
  return node_domain_[node_id];
}

void Simulator::push_event(Event ev) {
  const std::uint32_t dest = exec_domain_of(ev.exec_node);
  if (in_window_ && g_ctx.sim == this && dest != g_ctx.domain) {
    // Cross-domain events born inside a parallel window go to the
    // scheduler's private outbox (the destination heap belongs to another
    // worker right now); the barrier merges them. Conservative lookahead
    // guarantees their time is at or beyond the window horizon.
    domains_[g_ctx.domain].outbox.push_back(std::move(ev));
    return;
  }
  auto& heap = domains_[dest].heap;
  heap.push_back(std::move(ev));
  std::push_heap(heap.begin(), heap.end(), EventLater{});
}

void Simulator::run_domain(std::uint32_t d, SimTime bound, SimTime until) {
  Domain& dom = domains_[d];
  const ExecCtx saved = g_ctx;
  g_ctx.sim = this;
  g_ctx.domain = d;
  while (!dom.heap.empty()) {
    if (dom.heap.front().time >= bound || dom.heap.front().time > until) break;
    std::pop_heap(dom.heap.begin(), dom.heap.end(), EventLater{});
    Event ev = std::move(dom.heap.back());
    dom.heap.pop_back();
    assert(ev.time >= dom.now);
    dom.now = ev.time;
    g_ctx.node = ev.exec_node;
    ++dom.executed;
    ev.fn();
  }
  g_ctx = saved;
}

void Simulator::run_sequential(SimTime until) {
  if (domains_.size() == 1) {
    run_domain(0, kInf, until);
    return;
  }
  // K-way merge across domain heaps in global key order: the sequential
  // reference execution the parallel mode is pinned against. One event at a
  // time so cross-domain causality is exact (no lookahead needed here).
  const ExecCtx saved = g_ctx;
  for (;;) {
    std::size_t best = domains_.size();
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      auto& heap = domains_[d].heap;
      if (heap.empty() || heap.front().time > until) continue;
      if (best == domains_.size() ||
          EventLater{}(domains_[best].heap.front(), heap.front())) {
        best = d;
      }
    }
    if (best == domains_.size()) break;
    Domain& dom = domains_[best];
    std::pop_heap(dom.heap.begin(), dom.heap.end(), EventLater{});
    Event ev = std::move(dom.heap.back());
    dom.heap.pop_back();
    assert(ev.time >= dom.now);
    dom.now = ev.time;
    g_ctx.sim = this;
    g_ctx.domain = static_cast<std::uint32_t>(best);
    g_ctx.node = ev.exec_node;
    ++dom.executed;
    ev.fn();
  }
  g_ctx = saved;
}

bool Simulator::next_event_time(SimTime* t) const noexcept {
  SimTime best = kInf;
  bool found = false;
  for (const Domain& d : domains_) {
    if (!d.heap.empty() && d.heap.front().time < best) {
      best = d.heap.front().time;
      found = true;
    }
  }
  *t = best;
  return found;
}

void Simulator::run_parallel(SimTime until) {
  if (domains_.size() == 1) {
    run_sequential(until);
    return;
  }
  auto& pool = core::ThreadPool::global();
  for (;;) {
    SimTime t_min = 0;
    if (!next_event_time(&t_min) || t_min > until) break;
    // Conservative window [t_min, t_min + lookahead): no event executed in
    // it can schedule a cross-domain event landing inside it, so every
    // domain may drain its share independently.
    const SimTime horizon = t_min + lookahead_;
    in_window_ = true;
    pool.parallel_for(domains_.size(), 1,
                      [&](std::size_t b, std::size_t e) {
                        for (std::size_t d = b; d < e; ++d) {
                          run_domain(static_cast<std::uint32_t>(d), horizon,
                                     until);
                        }
                      });
    in_window_ = false;
    // Barrier: merge the windows' cross-domain traffic into the destination
    // heaps. Order of insertion is irrelevant — pop order is defined by the
    // event keys, which were fixed at schedule time.
    for (Domain& d : domains_) {
      for (Event& ev : d.outbox) push_event(std::move(ev));
      d.outbox.clear();
    }
  }
}

SimTime Simulator::run() {
  if (parallel_) {
    run_parallel(kInf);
  } else {
    run_sequential(kInf);
  }
  for (const Domain& d : domains_) now_ = std::max(now_, d.now);
  return now_;
}

void Simulator::run_until(SimTime t) {
  if (parallel_) {
    run_parallel(t);
  } else {
    run_sequential(t);
  }
  for (const Domain& d : domains_) now_ = std::max(now_, d.now);
  now_ = std::max(now_, t);
}

void Simulator::set_node_domain(NodeId node_id, std::uint32_t domain) {
  if (node_id >= nodes_.size()) throw std::out_of_range("bad node id");
  if (sealed_) throw std::logic_error("partition already sealed");
  if (node_domain_.size() < nodes_.size()) {
    node_domain_.resize(nodes_.size(), 0);
  }
  node_domain_[node_id] = domain;
}

std::uint32_t Simulator::node_domain(NodeId node_id) const noexcept {
  return exec_domain_of(node_id);
}

void Simulator::seal_partition() {
  if (sealed_) throw std::logic_error("partition already sealed");
  for (const Domain& d : domains_) {
    if (!d.heap.empty()) {
      throw std::logic_error("seal_partition: events already queued");
    }
  }
  if (now_ != 0.0) throw std::logic_error("seal_partition: clock has run");
  node_domain_.resize(nodes_.size(), 0);
  std::uint32_t max_domain = 0;
  for (std::uint32_t d : node_domain_) max_domain = std::max(max_domain, d);
  if (!node_domain_.empty()) {
    std::vector<bool> used(max_domain + 1, false);
    for (std::uint32_t d : node_domain_) used[d] = true;
    for (std::size_t d = 0; d <= max_domain; ++d) {
      if (!used[d]) {
        throw std::invalid_argument("seal_partition: domain ids not dense");
      }
    }
  }
  // Conservative lookahead: minimum propagation latency over links whose
  // endpoints live in different domains. A zero-latency inter-domain link
  // admits no safe window at all, so it is a partition error.
  SimTime lookahead = kInf;
  for (const auto& n : nodes_) {
    const std::uint32_t dn = node_domain_[n->id()];
    for (std::size_t p = 0; p < n->port_count(); ++p) {
      const Port& port = n->port(p);
      if (node_domain_[port.peer()] == dn) continue;
      if (port.link().latency_s <= 0.0) {
        throw std::invalid_argument(
            "seal_partition: zero-latency inter-domain link (no lookahead)");
      }
      lookahead = std::min(lookahead, port.link().latency_s);
    }
  }
  lookahead_ = (max_domain == 0) ? 0.0 : lookahead;
  // Keep domain 0's counters (frame ids may have been handed out already);
  // grow per-domain state for the rest of the partition.
  domains_.resize(static_cast<std::size_t>(max_domain) + 1);
  sealed_ = true;
}

void Simulator::set_parallel_execution(bool on) {
  if (on && !sealed_) {
    throw std::logic_error("set_parallel_execution: partition not sealed");
  }
  parallel_ = on;
}

std::uint64_t Simulator::executed_events() const noexcept {
  std::uint64_t total = 0;
  for (const Domain& d : domains_) total += d.executed;
  return total;
}

std::uint64_t Simulator::delivered_frames() const noexcept {
  std::uint64_t total = 0;
  for (const Domain& d : domains_) total += d.delivered;
  return total;
}

std::uint64_t Simulator::next_frame_id() noexcept {
  const std::uint32_t dom = (g_ctx.sim == this) ? g_ctx.domain : 0u;
  Domain& d = domains_[dom];
  const std::uint64_t seq = ++d.frame_seq;
  const std::uint64_t id =
      dom == 0 ? seq  // unpartitioned runs match the classic counter
               : (static_cast<std::uint64_t>(dom + 1) << 40) | seq;
  if (monitor_ != nullptr) monitor_->on_frame_id(id);
  return id;
}

Node& Simulator::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return *nodes_[id];
}

std::size_t Simulator::node_count() const noexcept { return nodes_.size(); }

void Simulator::register_node(std::unique_ptr<Node> node) {
  if (sealed_) throw std::logic_error("add_node: partition already sealed");
  nodes_.push_back(std::move(node));
}

std::pair<std::size_t, std::size_t> Simulator::connect(NodeId a, NodeId b,
                                                       LinkSpec link,
                                                       QueueConfig qcfg_a,
                                                       QueueConfig qcfg_b) {
  if (sealed_) throw std::logic_error("connect: partition already sealed");
  Node& na = node(a);
  Node& nb = node(b);
  na.ports_.push_back(std::make_unique<Port>(link, qcfg_a, b));
  nb.ports_.push_back(std::make_unique<Port>(link, qcfg_b, a));
  return {na.ports_.size() - 1, nb.ports_.size() - 1};
}

bool Simulator::transmit(NodeId from, std::size_t port_idx, Frame frame) {
  Node& n = node(from);
  Port& p = n.port(port_idx);
  const std::uint64_t frame_id = frame.id;
  const FrameKind kind = frame.kind;
  if (fault_plane_ != nullptr) {
    // A dead origin node originates nothing; a dead link refuses new
    // frames (the NIC sees carrier loss and drops at the source).
    if (!fault_plane_->node_up(from, now())) {
      fault_plane_->note_node_drop(from, now(), frame.id);
      if (monitor_ != nullptr) {
        monitor_->on_transmit(from, frame_id, kind, false, now());
      }
      return false;
    }
    if (!fault_plane_->link_up(from, port_idx, now())) {
      fault_plane_->note_link_refused(from, port_idx, now(), frame.id);
      if (monitor_ != nullptr) {
        monitor_->on_transmit(from, frame_id, kind, false, now());
      }
      return false;
    }
  }
  const bool accepted = p.queue().enqueue(std::move(frame));
  if (monitor_ != nullptr) {
    monitor_->on_transmit(from, frame_id, kind, accepted, now());
  }
  if (accepted && !p.transmitting_) drain_port(from, port_idx);
  return accepted;
}

void Simulator::drain_port(NodeId node_id, std::size_t port_idx) {
  Node& n = node(node_id);
  Port& p = n.port(port_idx);
  if (fault_plane_ != nullptr &&
      !fault_plane_->link_up(node_id, port_idx, now())) {
    // The link went down with frames still queued: they are lost with it.
    // transmit() refuses new frames for the rest of the window, so the
    // queue stays empty and the first post-recovery transmit re-kicks us.
    while (auto queued = p.queue().dequeue()) {
      fault_plane_->note_queue_flushed(node_id, port_idx, now(), queued->id);
      if (monitor_ != nullptr) {
        monitor_->on_queue_flushed(node_id, queued->id, now());
      }
    }
    p.transmitting_ = false;
    return;
  }
  auto next = p.queue().dequeue();
  if (!next) {
    p.transmitting_ = false;
    return;
  }
  p.transmitting_ = true;
  Frame frame = std::move(*next);
  LinkSpec link = p.link();
  if (fault_plane_ != nullptr) {
    link = fault_plane_->effective_link(node_id, port_idx, now(), p.link());
    fault_plane_->maybe_corrupt(node_id, port_idx, now(), frame);
  }
  const SimTime tx = link.tx_time(frame.size_bytes);
  const SimTime prop = link.latency_s;
  const NodeId peer = p.peer();
  // Link is busy for the serialization time, then pulls the next frame.
  // Anchored at this node: the next-drain event stays in our domain.
  schedule_event(node_id, tx,
                 [this, node_id, port_idx] { drain_port(node_id, port_idx); });
  // The frame lands at the peer after serialization + propagation — in the
  // peer's domain, which for an inter-domain link is at least `lookahead`
  // away (prop >= lookahead by construction). Frames already on the wire
  // when a *link* fails still land (they left the queue); frames addressed
  // to a dead *node* are lost on arrival.
  schedule_event(peer, tx + prop, [this, peer, f = std::move(frame)]() mutable {
    if (fault_plane_ != nullptr && !fault_plane_->node_up(peer, now())) {
      fault_plane_->note_node_drop(peer, now(), f.id);
      if (monitor_ != nullptr) monitor_->on_arrival_drop(peer, f.id, now());
      return;
    }
    ++domains_[exec_domain_of(peer)].delivered;
    if (monitor_ == nullptr) {
      node(peer).on_frame(std::move(f));
    } else {
      // Bracket the dispatch: the monitor requires every data frame to be
      // resolved by exactly one outcome before the handler returns.
      monitor_->begin_delivery(peer, f, now());
      node(peer).on_frame(std::move(f));
      monitor_->end_delivery();
    }
  });
}

std::size_t Node::port_to(NodeId peer) const noexcept {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i]->peer() == peer) return i;
  }
  return ports_.size();
}

}  // namespace trimgrad::net
