// Experiment X4 (DESIGN.md): closed-loop study the paper defers in §5.1 —
// how the *emergent* trim fraction depends on offered load when trimming is
// driven by real queue occupancy rather than a preset coin.
//
// Leaf-spine fabric; a 4-worker gradient all-reduce-style incast shares the
// core with Poisson background traffic of increasing intensity. We report
// the switch-measured trim fraction and the gradient flows' completion
// times: the feedback data a §5.1 trim-level policy would consume.
//
// Usage: bench_closedloop_trimrate [experiment-spec]
//   e.g. bench_closedloop_trimrate "transport=trim,topology=fabric"
// Only the window transports apply — the incast pattern is ACK-clocked —
// so transport must be "trim" or "reliable".
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/trace.h"
#include "ddp/experiment.h"
#include "net/topology.h"
#include "net/traffic.h"

using namespace trimgrad::net;

int main(int argc, char** argv) {
  trimgrad::ddp::ExperimentSpec spec;
  try {
    spec = trimgrad::ddp::ExperimentSpec::parse(
        argc > 1 ? argv[1] : "transport=trim,topology=fabric");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (spec.transport != "trim" && spec.transport != "reliable") {
    std::fprintf(stderr,
                 "transport '%s' is not ACK-clocked; the incast pattern "
                 "needs transport=trim or transport=reliable\n",
                 spec.transport.c_str());
    return 1;
  }
  const TransportConfig base_transport = spec.transport == "reliable"
                                             ? TransportConfig::reliable()
                                             : TransportConfig::trim_aware();

  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  const std::vector<double> loads =
      smoke ? std::vector<double>{0.0, 3e5}
            : std::vector<double>{0.0, 1e5, 3e5, 6e5, 1e6, 2e6};

  std::printf("# closed-loop emergent trimming: background load sweep\n");
  std::printf("# spec: %s\n", spec.serialize().c_str());
  std::printf("%12s %10s %10s %10s %12s %12s %8s\n", "bg_flows/s", "bg_flows",
              "grad_trim%", "fab_trim%", "grad_fct_us", "bg_p99_us", "drops");

  // Per-load registry snapshots, accumulated into one JSON document; the
  // final load's trace is written as a loadable Chrome-trace file.
  std::string metrics_doc = "{\"loads\":[";
  bool first_load = true;

  for (double load : loads) {
    trimgrad::core::MetricsRegistry::global().reset_values();
    trimgrad::core::TraceLog::global().clear();
    Simulator sim;
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {40e9, 2e-6};  // oversubscribed second tier (Sec 1)
    cfg.switch_queue.policy = QueuePolicy::kTrim;
    cfg.switch_queue.capacity_bytes = 60 * 1024;
    cfg.switch_queue.header_capacity_bytes = 24 * 1024;
    const LeafSpine fabric = build_leaf_spine(sim, 3, 2, 4, cfg);

    // Gradient senders on two leaves -> aggregator on leaf 2. Windows are
    // sized so the collective does NOT self-congest: with no background
    // the fabric barely trims, and the sweep isolates the trimming induced
    // by cross traffic.
    std::vector<NodeId> workers = {fabric.hosts[0][0], fabric.hosts[1][0]};
    IncastPattern::Config icfg;
    icfg.packets_per_sender = 512;
    icfg.trim_size = 88;
    icfg.transport = base_transport;
    icfg.transport.window = 12;
    icfg.start = 0.2e-3;  // let background traffic build up first
    IncastPattern incast(sim, workers, fabric.hosts[2][0], icfg);

    PoissonTraffic* bg = nullptr;
    std::unique_ptr<PoissonTraffic> bg_holder;
    if (load > 0) {
      PoissonTraffic::Config pcfg;
      pcfg.flows_per_sec = load;
      pcfg.stop = 1.5e-3;
      pcfg.packets_per_flow = 16;
      pcfg.trim_size = 88;  // background is also trim-capable
      pcfg.transport = base_transport;
      bg_holder = std::make_unique<PoissonTraffic>(sim, fabric.all_hosts(),
                                                   pcfg);
      bg = bg_holder.get();
    }

    sim.run();

    std::uint64_t enq = 0, trimmed = 0, dropped = 0;
    auto count = [&](NodeId id) {
      auto& node = sim.node(id);
      for (std::size_t p = 0; p < node.port_count(); ++p) {
        const auto& c = node.port(p).queue().counters();
        enq += c.enqueued;
        trimmed += c.trimmed;
        dropped += c.dropped;
      }
    };
    for (NodeId id : fabric.leaves) count(id);
    for (NodeId id : fabric.spines) count(id);

    double bg_p99_us = 0;
    std::size_t launched = 0;
    if (bg != nullptr) {
      auto fcts = bg->fcts();
      launched = bg->launched();
      if (!fcts.empty()) {
        std::sort(fcts.begin(), fcts.end());
        bg_p99_us = fcts[fcts.size() * 99 / 100] * 1e6;
      }
    }
    // Trim share of the *gradient* traffic itself — the quantity a §5.1
    // trim-level policy would steer on.
    std::uint64_t grad_trimmed = 0, grad_pkts = 0;
    for (const auto& st : incast.flow_stats()) {
      grad_trimmed += st.acked_trimmed;
      grad_pkts += st.packets;
    }
    const double offered = static_cast<double>(enq + dropped);
    std::printf("%12.0f %10zu %9.2f%% %9.2f%% %12.1f %12.1f %8llu\n", load,
                launched,
                grad_pkts > 0 ? 100.0 * grad_trimmed / grad_pkts : 0.0,
                offered > 0 ? 100.0 * trimmed / offered : 0.0,
                incast.max_fct() * 1e6, bg_p99_us,
                static_cast<unsigned long long>(dropped));
    std::fflush(stdout);

    if (!first_load) metrics_doc += ',';
    first_load = false;
    char head[64];
    std::snprintf(head, sizeof(head), "{\"load\":%.0f,\"metrics\":", load);
    metrics_doc += head;
    metrics_doc += trimgrad::core::metrics_to_json(
        trimgrad::core::MetricsRegistry::global());
    metrics_doc += '}';
  }
  metrics_doc += "]}";
  {
    std::ofstream out("BENCH_closedloop_metrics.json", std::ios::binary);
    out << metrics_doc << '\n';
    if (out) std::printf("wrote BENCH_closedloop_metrics.json\n");
  }
  if (trimgrad::core::TraceLog::global().write_json(
          "BENCH_closedloop_trace.json")) {
    std::printf("wrote BENCH_closedloop_trace.json (final load)\n");
  }
  std::printf("# (expected: trim%% rises with load; gradient FCT grows "
              "gracefully, never collapses)\n");
  return 0;
}
