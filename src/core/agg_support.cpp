#include "core/agg_support.h"

#include <cassert>

#include "core/bitpack.h"
#include "core/rht_codec.h"

namespace trimgrad::core {

bool is_aggregatable(Scheme scheme) noexcept {
  return scheme == Scheme::kBaseline || scheme == Scheme::kSign ||
         scheme == Scheme::kRHT;
}

std::optional<std::vector<float>> packet_values(const GradientPacket& pkt) {
  if (pkt.trimmed || !is_aggregatable(pkt.scheme)) return std::nullopt;
  std::vector<float> out;
  out.reserve(pkt.n_coords);
  if (pkt.scheme == Scheme::kBaseline) {
    BitReader r(pkt.tail_region);
    for (std::size_t i = 0; i < pkt.n_coords; ++i) {
      out.push_back(bits_float(static_cast<std::uint32_t>(r.get(32))));
    }
    return out;
  }
  // kSign / kRHT: head = sign, tail = exponent+mantissa (q_bits wide; only
  // full-width tails reassemble exactly, and INA requires exactness).
  if (pkt.q_bits != 31) return std::nullopt;
  BitReader heads(pkt.head_region);
  BitReader tails(pkt.tail_region);
  for (std::size_t i = 0; i < pkt.n_coords; ++i) {
    const bool h = heads.get_bit();
    out.push_back(rht_coord_from_parts(
        h, static_cast<std::uint32_t>(tails.get(31))));
  }
  return out;
}

GradientPacket rebuild_packet(const GradientPacket& tmpl,
                              std::span<const float> values) {
  assert(values.size() == tmpl.n_coords);
  assert(is_aggregatable(tmpl.scheme));
  GradientPacket pkt = tmpl;
  pkt.head_region.clear();
  pkt.tail_region.clear();
  if (tmpl.scheme == Scheme::kBaseline) {
    BitWriter w;
    for (float v : values) w.put(float_bits(v), 32);
    pkt.tail_region = std::move(w).finish();
    return pkt;
  }
  BitWriter heads, tails;
  for (float v : values) {
    const std::uint32_t b = float_bits(v);
    heads.put_bit((b & 0x80000000u) == 0);
    tails.put(b & 0x7fffffffu, 31);
  }
  pkt.head_region = std::move(heads).finish();
  pkt.tail_region = std::move(tails).finish();
  return pkt;
}

}  // namespace trimgrad::core
