file(REMOVE_RECURSE
  "CMakeFiles/bench_closedloop_trimrate.dir/bench_closedloop_trimrate.cpp.o"
  "CMakeFiles/bench_closedloop_trimrate.dir/bench_closedloop_trimrate.cpp.o.d"
  "bench_closedloop_trimrate"
  "bench_closedloop_trimrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closedloop_trimrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
