# Empty dependencies file for test_net_pull.
# This may be replaced when dependencies are built.
