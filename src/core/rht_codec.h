// RHT-based 1-bit trimmable encoding (paper §3.2, adapted from DRIVE).
//
// Encoding of one row V (power-of-two padded, default 2^15 entries):
//   1. rotate: R = H·D_s·V (randomized Hadamard transform, shared seed s);
//   2. head bit i  = sign(r_i) — after rotation the coordinates are
//      symmetrically distributed around zero, so the sign is an efficient
//      standalone 1-bit code;
//   3. tail i      = the remaining 31 bits (exponent + mantissa) of r_i, so
//      an untrimmed packet reconstructs r_i bit-exactly — zero overhead;
//   4. scale f     = ‖V‖₂² / ‖R‖₁, sent in a small reliable packet, makes
//      the trimmed decode unbiased.
//
// Decoding of a row: r̂_i = r_i where the tail survived, f·sign(r_i) where
// trimmed; then V̂ = IRHT(r̂).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.h"

namespace trimgrad::core {

/// One RHT-encoded row ready for packetization.
struct RhtEncodedRow {
  std::vector<std::uint8_t> heads;   ///< sign bits, 0/1 per coordinate
  std::vector<std::uint32_t> tails;  ///< 31-bit exponent+mantissa per coord
  float scale_f = 0.0f;              ///< unbiased decode scale f
};

/// Encode one padded row. `row.size()` must be a power of two. The rotation
/// signs are derived from `key`, which both sides construct from
/// (seed, epoch, message, row) — see prng.h.
RhtEncodedRow rht_encode_row(std::span<const float> row, const StreamKey& key);

/// Scratch variant for hot row loops: rotates `row` in place (clobbering
/// it) and overwrites `out`, reusing its vectors' capacity across calls.
/// Bit-identical to rht_encode_row on the same input.
void rht_encode_row_inplace(std::span<float> row, const StreamKey& key,
                            RhtEncodedRow& out);

/// Decode one row. `trimmed[i] != 0` marks coordinates whose 31-bit tail was
/// trimmed away; for those only the sign head is used, scaled by f. Returns
/// the reconstructed row of heads.size() coordinates (caller slices away any
/// padding).
std::vector<float> rht_decode_row(std::span<const std::uint8_t> heads,
                                  std::span<const std::uint32_t> tails,
                                  std::span<const std::uint8_t> trimmed,
                                  float scale_f, const StreamKey& key);

/// Scratch variant of rht_decode_row: overwrites `r_hat`, reusing its
/// capacity across calls. Bit-identical results.
void rht_decode_row_into(std::span<const std::uint8_t> heads,
                         std::span<const std::uint32_t> tails,
                         std::span<const std::uint8_t> trimmed, float scale_f,
                         const StreamKey& key, std::vector<float>& r_hat);

/// Destination-span variant: decodes straight into caller-owned storage
/// (`r_hat.size()` must equal `heads.size()`), letting full rows land in the
/// output tensor without a bounce through scratch. Bit-identical results.
void rht_decode_row_to(std::span<const std::uint8_t> heads,
                       std::span<const std::uint32_t> tails,
                       std::span<const std::uint8_t> trimmed, float scale_f,
                       const StreamKey& key, std::span<float> r_hat);

/// Reassemble the rotated coordinate r_i from its head/tail split
/// (bit-exact inverse of the encoder's split).
float rht_coord_from_parts(bool head, std::uint32_t tail) noexcept;

/// The trimmed-decode estimate f·sign for a single coordinate.
float rht_coord_trimmed(bool head, float scale_f) noexcept;

}  // namespace trimgrad::core
