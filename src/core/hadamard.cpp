#include "core/hadamard.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

#include "core/simd.h"

namespace trimgrad::core {

namespace {

/// Keeps a 0/1 bit opaque to the optimizer. Without this, GCC traces the
/// bit back through the generator, proves the stored sign word can only be
/// one of two constants, and if-converts the branchless store below into a
/// conditional store — one 50%-random branch per draw, which mispredicts
/// its way to ~4 ns/coordinate.
inline std::uint32_t opaque_bit(std::uint32_t x) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __asm__("" : "+r"(x));
#endif
  return x;
}

/// data[i] *= random_sign(), in blocks: the RNG draws stay strictly
/// sequential (one 64-bit draw per coordinate — the exact stream the
/// per-element loop consumes), but the ±1.0f factors are materialized
/// branchlessly into a block and applied in a separate elementwise multiply
/// loop, which predicts perfectly and auto-vectorizes. Multiplying by the
/// composed ±1.0f bit pattern is the same IEEE multiply the ternary
/// `x *= d ? 1.0f : -1.0f` performs, so results are bit-identical.
void scale_by_random_signs(std::span<float> data, Xoshiro256& rng) noexcept {
  constexpr std::size_t kBlock = 256;
  std::uint32_t signs[kBlock];
  float* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    const std::size_t m = n < kBlock ? n : kBlock;
    for (std::size_t i = 0; i < m; ++i) {
      // draw & 1 set => +1.0f (0x3f800000), clear => -1.0f (sign bit on).
      const std::uint32_t neg = opaque_bit(static_cast<std::uint32_t>(~rng()) & 1u);
      signs[i] = 0x3f800000u | (neg << 31);
    }
    for (std::size_t i = 0; i < m; ++i) {
      p[i] *= std::bit_cast<float>(signs[i]);
    }
    p += m;
    n -= m;
  }
}

}  // namespace

void fwht_inplace(std::span<float> data) noexcept {
  assert(is_pow2(data.size()));
  simd::fwht(data.data(), data.size());
}

void fwht_orthonormal_inplace(std::span<float> data) noexcept {
  assert(is_pow2(data.size()));
  if (data.size() == 1) return;  // H is identity and scale is exactly 1
  // The 1/√n scale is fused into the final butterfly stage inside the
  // kernel — same multiply a separate scaling pass would do, one fewer
  // sweep over the row, bit-identical results.
  simd::fwht_orthonormal(data.data(), data.size());
}

void rht_inplace(std::span<float> data, Xoshiro256& rng) noexcept {
  scale_by_random_signs(data, rng);
  fwht_orthonormal_inplace(data);
}

void irht_inplace(std::span<float> data, Xoshiro256& rng) noexcept {
  // (H·D)⁻¹ = D⁻¹·H⁻¹ = D·H for orthonormal H and ±1 diagonal D.
  fwht_orthonormal_inplace(data);
  scale_by_random_signs(data, rng);
}

RowSplit make_row_split(std::size_t total, std::size_t row_len) noexcept {
  assert(is_pow2(row_len));
  RowSplit s{};
  s.row_len = row_len;
  s.total = total;
  if (total == 0) {
    s.n_rows = 0;
    s.tail_padded = 0;
    return s;
  }
  const std::size_t full = total / row_len;
  const std::size_t rem = total % row_len;
  s.n_rows = full + (rem != 0 ? 1 : 0);
  s.tail_padded = rem != 0 ? next_pow2(rem) : 0;
  return s;
}

std::vector<float> extract_padded_row(std::span<const float> flat,
                                      const RowSplit& split, std::size_t row) {
  std::vector<float> out;
  extract_padded_row_into(flat, split, row, out);
  return out;
}

void extract_padded_row_into(std::span<const float> flat,
                             const RowSplit& split, std::size_t row,
                             std::vector<float>& out) {
  assert(row < split.n_rows);
  const std::size_t off = split.offset(row);
  const std::size_t real = split.real_len(row);
  const std::size_t padded = split.padded_len(row);
  out.resize(padded);
  std::copy(flat.begin() + off, flat.begin() + off + real, out.begin());
  std::fill(out.begin() + real, out.end(), 0.0f);
}

}  // namespace trimgrad::core
