file(REMOVE_RECURSE
  "CMakeFiles/test_net_queue.dir/net/queue_test.cpp.o"
  "CMakeFiles/test_net_queue.dir/net/queue_test.cpp.o.d"
  "test_net_queue"
  "test_net_queue.pdb"
  "test_net_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
