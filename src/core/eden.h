// EDEN-style multi-bit rotated quantization (paper §5.1 / footnote 2).
//
// DRIVE's 1-bit sign head generalizes to any bit budget (EDEN): after the
// randomized Hadamard rotation the coordinates are near-gaussian, so a
// b-bit quantizer with the Lloyd-Max-optimal codebook for N(0,1) — scaled
// by the row RMS — is near-optimal per coordinate. This module supplies the
// versatile head encodings the paper's multi-level trimming needs: a switch
// that can trim to different levels wants heads of 1, 2, or 4 bits, each as
// accurate as that budget allows.
//
// Codebooks are derived at first use by Lloyd iteration on the exact
// gaussian density (erf/exp closed forms), not samples, so they are
// deterministic and match the published Max (1960) tables to ~1e-4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.h"

namespace trimgrad::core {

/// Lloyd-Max-optimal b-bit quantizer for the standard normal (2^b levels,
/// symmetric). Cached per b; thread-compatible (first call per b computes).
struct GaussianCodebook {
  unsigned bits;
  std::vector<float> centroids;   ///< 2^b values, ascending
  std::vector<float> boundaries;  ///< 2^b − 1 thresholds, ascending

  /// Index of the centroid whose cell contains x.
  std::uint32_t quantize(float x) const noexcept;

  /// Expected distortion E[(X − Q(X))²] for X ~ N(0,1) — the analytic NMSE
  /// of this codebook before any unbiasedness scaling.
  double distortion() const noexcept { return distortion_; }

  static const GaussianCodebook& get(unsigned bits);

 private:
  double distortion_ = 0.0;
  friend GaussianCodebook make_codebook(unsigned bits);
};

/// One EDEN-encoded row: b-bit head codes + the unbiased decode scale.
struct EdenEncodedRow {
  unsigned bits = 1;
  std::vector<std::uint32_t> codes;  ///< one 2^b-level index per coordinate
  float scale = 0.0f;                ///< unbiased scale (rides metadata)
};

/// Encode a power-of-two row at `bits` ∈ [1, 8]: rotate with the shared
/// key, normalize by row RMS, quantize against the gaussian codebook, and
/// compute the unbiased scale f = ‖R‖² / ⟨R, C⟩ (DRIVE's f generalized).
EdenEncodedRow eden_encode_row(std::span<const float> row,
                               const StreamKey& key, unsigned bits);

/// Decode: r̂ = scale · centroid · rms, then inverse-rotate.
std::vector<float> eden_decode_row(const EdenEncodedRow& enc,
                                   std::size_t n, const StreamKey& key);

/// A whole gradient message EDEN-encoded row by row (same row split as the
/// trimmable codecs; row r uses StreamKey{seed, epoch, msg_id, r}).
struct EdenEncodedMessage {
  std::size_t total_coords = 0;
  std::size_t row_len = 0;
  std::vector<EdenEncodedRow> rows;
};

/// Encode a flat gradient buffer row by row. Rows are encoded in parallel
/// on the global ThreadPool; results are bit-identical for any thread
/// count because each row's key and output slot are independent.
EdenEncodedMessage eden_encode_message(std::span<const float> grad,
                                       std::uint64_t seed, std::uint64_t epoch,
                                       std::uint32_t msg_id, unsigned bits,
                                       std::size_t row_len = std::size_t{1}
                                                             << 15);

/// Inverse of eden_encode_message (rows decoded in parallel).
std::vector<float> eden_decode_message(const EdenEncodedMessage& msg,
                                       std::uint64_t seed, std::uint64_t epoch,
                                       std::uint32_t msg_id);

}  // namespace trimgrad::core
