// Experiment X3 (DESIGN.md): microbenchmarks of the codec hot paths
// (google-benchmark). These quantify the "low computational overhead" claim
// at the primitive level: FWHT throughput, per-scheme encode/decode rates,
// bit packing.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/bitpack.h"
#include "core/codec.h"
#include "core/hadamard.h"
#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/quantizer.h"
#include "core/rht_codec.h"
#include "core/trace.h"

using namespace trimgrad::core;

namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

void BM_Fwht(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto v = gaussian_vec(n, 1);
  for (auto _ : state) {
    fwht_orthonormal_inplace(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fwht)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_RhtEncodeRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto v = gaussian_vec(n, 2);
  const StreamKey key{1, 2, 3, 0};
  for (auto _ : state) {
    auto enc = rht_encode_row(v, key);
    benchmark::DoNotOptimize(enc.scale_f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RhtEncodeRow)->Arg(1 << 12)->Arg(1 << 15);

void BM_ScalarEncode(benchmark::State& state) {
  const auto scheme = static_cast<ScalarScheme>(state.range(0));
  const std::size_t n = 1 << 15;
  const auto v = gaussian_vec(n, 3);
  const float scale = scalar_scale(scheme, v);
  const auto dithers =
      make_dithers(n, scale, SharedRng(StreamKey{1, 1, 1, 0}));
  Xoshiro256 rng(9);
  for (auto _ : state) {
    std::vector<std::uint8_t> heads;
    std::vector<std::uint32_t> tails;
    scalar_encode_all(scheme, v, scale, rng, dithers, heads, tails);
    benchmark::DoNotOptimize(heads.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScalarEncode)
    ->Arg(static_cast<int>(ScalarScheme::kSign))
    ->Arg(static_cast<int>(ScalarScheme::kSQ))
    ->Arg(static_cast<int>(ScalarScheme::kSD));

void BM_BitWriter31(benchmark::State& state) {
  const std::size_t n = 1 << 15;
  std::vector<std::uint32_t> vals(n, 0x2aaaaaaa);
  for (auto _ : state) {
    BitWriter w;
    for (auto v : vals) w.put(v, 31);
    auto buf = std::move(w).finish();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitWriter31);

void BM_MessageEncode(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  const std::size_t n = 1 << 17;
  const auto v = gaussian_vec(n, 4);
  CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = 1 << 15;
  TrimmableEncoder enc(cfg);
  std::uint32_t id = 0;
  for (auto _ : state) {
    auto msg = enc.encode(v, ++id, 1);
    benchmark::DoNotOptimize(msg.packets.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MessageEncode)
    ->Arg(static_cast<int>(Scheme::kBaseline))
    ->Arg(static_cast<int>(Scheme::kSign))
    ->Arg(static_cast<int>(Scheme::kSQ))
    ->Arg(static_cast<int>(Scheme::kSD))
    ->Arg(static_cast<int>(Scheme::kRHT));

void BM_MessageDecode(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  const bool trimmed = state.range(1) != 0;
  const std::size_t n = 1 << 17;
  const auto v = gaussian_vec(n, 5);
  CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = 1 << 15;
  TrimmableEncoder enc(cfg);
  TrimmableDecoder dec(cfg);
  auto msg = enc.encode(v, 1, 1);
  if (trimmed) {
    for (auto& p : msg.packets) p.trim();
  }
  for (auto _ : state) {
    auto out = dec.decode(msg.packets, msg.meta);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MessageDecode)
    ->Args({static_cast<int>(Scheme::kSign), 0})
    ->Args({static_cast<int>(Scheme::kSign), 1})
    ->Args({static_cast<int>(Scheme::kRHT), 0})
    ->Args({static_cast<int>(Scheme::kRHT), 1});

}  // namespace

int main(int argc, char** argv) {
  // Per-event tracing would dominate the hot loops being measured; the
  // registry's shard-local counters are cheap enough to leave on.
  trimgrad::core::TraceLog::global().set_enabled(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* path = "BENCH_micro_codec_metrics.json";
  if (trimgrad::core::write_metrics_json(
          path, trimgrad::core::MetricsRegistry::global())) {
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  return 0;
}
