file(REMOVE_RECURSE
  "CMakeFiles/test_core_rht.dir/core/rht_codec_test.cpp.o"
  "CMakeFiles/test_core_rht.dir/core/rht_codec_test.cpp.o.d"
  "test_core_rht"
  "test_core_rht.pdb"
  "test_core_rht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
