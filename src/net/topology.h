// Topology builders: dumbbell and two-tier leaf-spine fabrics.
//
// The dumbbell isolates one bottleneck link (baseline-vs-trimming FCT
// studies, §4.4's in-text numbers). The leaf-spine models the shared,
// oversubscribable fabric of the paper's motivating scenarios (§1): GPU
// hosts scattered across racks behind an oversubscribed second tier.
#pragma once

#include <cstddef>
#include <vector>

#include "net/host.h"
#include "net/sim.h"
#include "net/switch_node.h"

namespace trimgrad::net {

struct FabricConfig {
  LinkSpec edge_link{};              ///< host <-> first switch
  LinkSpec core_link{};              ///< switch <-> switch
  QueueConfig switch_queue{};        ///< applied to every switch egress port
  QueueConfig host_queue{
      QueuePolicy::kDropTail,
      // Hosts get deep NIC queues: the fabric, not the NIC, is under test.
      static_cast<std::size_t>(16) * 1024 * 1024,
      64 * 1024,
      8 * 1024 * 1024,
  };
};

/// Dumbbell: `n_left` hosts — switch L — bottleneck — switch R — `n_right`
/// hosts. Routes installed both ways.
struct Dumbbell {
  std::vector<NodeId> left_hosts;
  std::vector<NodeId> right_hosts;
  NodeId left_switch = kInvalidNode;
  NodeId right_switch = kInvalidNode;
};

Dumbbell build_dumbbell(Simulator& sim, std::size_t n_left,
                        std::size_t n_right, const FabricConfig& cfg);

/// Two-tier leaf-spine: `hosts_per_leaf` hosts under each of `n_leaves`
/// leaves, all leaves connected to every one of `n_spines` spines; per-flow
/// ECMP across spines. Oversubscription = (hosts_per_leaf·edge_bw) /
/// (n_spines·core_bw), controlled via FabricConfig link specs.
struct LeafSpine {
  std::vector<std::vector<NodeId>> hosts;  ///< [leaf][i]
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;

  /// Flattened host list.
  std::vector<NodeId> all_hosts() const;
};

LeafSpine build_leaf_spine(Simulator& sim, std::size_t n_leaves,
                           std::size_t n_spines, std::size_t hosts_per_leaf,
                           const FabricConfig& cfg);

/// Three-tier k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge + k/2
/// aggregation switches, (k/2)^2 cores in k/2 groups, k^3/4 hosts. k = 16
/// is the 1024-host default large topology. Agg j of every pod connects to
/// all k/2 cores of group j, so the only inter-pod links are agg <-> core —
/// which is what makes the pod-per-domain partition (below) legal.
struct FatTree {
  std::size_t k = 0;
  std::vector<std::vector<NodeId>> pod_hosts;  ///< [pod][i], (k/2)^2 per pod
  std::vector<std::vector<NodeId>> edges;      ///< [pod][e], k/2 per pod
  std::vector<std::vector<NodeId>> aggs;       ///< [pod][a], k/2 per pod
  std::vector<std::vector<NodeId>> cores;      ///< [group][i], k/2 per group

  std::size_t host_count() const noexcept { return k * k * k / 4; }
  /// Domains of the canonical partition: one per pod + one per core group.
  std::size_t domain_count() const noexcept { return k + k / 2; }

  /// Flattened host list, pod-major.
  std::vector<NodeId> all_hosts() const;
};

/// Build the fabric with full routing: edge/agg switches ECMP unmatched
/// traffic up (default group = uplinks), cores route every host down via
/// its pod's aggregation layer. `k` must be even and >= 2.
FatTree build_fat_tree(Simulator& sim, std::size_t k, const FabricConfig& cfg);

/// Canonical sharding partition: pod p -> domain p, core group g -> domain
/// k + g. Every inter-domain link is an agg <-> core link, so the
/// conservative lookahead after seal_partition() is cfg.core_link.latency_s.
/// Assigns domains only; the caller seals when the fabric is complete.
void partition_fat_tree(Simulator& sim, const FatTree& ft);

}  // namespace trimgrad::net
