// Simulated link-layer frames.
//
// A Frame is what traverses the simulated fabric: a size, addressing, and an
// optional pointer to the gradient packet it carries (the "cargo"). The
// simulator moves and mutates frames; the cargo is only touched when a
// switch trims (copy-on-trim, so the sender's retransmit copy stays intact)
// and when the receiver decodes.
#pragma once

#include <cstdint>
#include <memory>

#include "core/packet.h"

namespace trimgrad::net {

using SimTime = double;  ///< seconds
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Frame kinds. Control frames (ACK/NACK/META/PULL) are small and ride the
/// high-priority header queue on trimming switches, like NDP headers.
enum class FrameKind : std::uint8_t {
  kData = 0,
  kAck = 1,
  kNack = 2,
  kMeta = 3,  ///< reliable metadata (codec scales) — never trimmed
  kPull = 4,  ///< receiver-driven pacing credit (NDP-style), optional
  kHeartbeat = 5,  ///< membership liveness probe (ddp/membership.h)
};

const char* to_string(FrameKind k) noexcept;

/// Size of a modeled control frame (minimum Ethernet frame).
inline constexpr std::size_t kControlFrameBytes = 64;

struct Frame {
  std::uint64_t id = 0;        ///< unique per simulation, for tracing
  NodeId src = kInvalidNode;   ///< originating host
  NodeId dst = kInvalidNode;   ///< destination host
  std::uint32_t flow_id = 0;
  std::uint32_t seq = 0;       ///< transport sequence number
  FrameKind kind = FrameKind::kData;
  std::size_t size_bytes = 0;
  /// Size the frame shrinks to if a switch trims it; 0 = not trimmable
  /// (control frames, baseline flows on drop-tail fabrics).
  std::size_t trim_size_bytes = 0;
  bool trimmed = false;
  bool ecn = false;            ///< congestion-experienced mark
  /// Payload mangled in flight (fault plane). Models what a wire checksum
  /// mismatch detects — see core/wire.* head_crc/tail_crc; receivers NACK
  /// instead of delivering.
  bool corrupted = false;

  /// ACK bookkeeping (valid when kind == kAck):
  std::uint32_t ack_seq = 0;       ///< cumulative ack (next expected seq)
  std::uint32_t ack_echo = 0;      ///< seq this ACK acknowledges
  bool ack_was_trimmed = false;    ///< echoed trim flag

  /// Heartbeat bookkeeping (valid when kind == kHeartbeat): the sending
  /// rank and the membership view version it believes is current. A
  /// heartbeat carrying a stale view id is rejected by the coordinator's
  /// liveness count — the sender is told to rejoin instead.
  std::uint32_t hb_rank = 0;
  std::uint64_t hb_view = 0;

  /// Gradient packet carried by data frames (optional; timing-only
  /// experiments leave it null). Shared: switches copy-on-trim.
  std::shared_ptr<const core::GradientPacket> cargo;

  /// True if this frame may be trimmed by a congested switch.
  bool trimmable() const noexcept {
    return kind == FrameKind::kData && !trimmed && trim_size_bytes > 0 &&
           trim_size_bytes < size_bytes;
  }

  /// Apply the trim: shrink to trim_size_bytes, flag, and (if cargo is
  /// attached) replace it with a trimmed copy.
  void trim();
};

}  // namespace trimgrad::net
