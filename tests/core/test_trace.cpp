// TraceLog: span/instant recording, time-source injection, Chrome-trace
// JSON well-formedness (checked with a minimal JSON parser, no external
// deps), and bit-identical output across pool sizes.
#include "core/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/prng.h"
#include "core/threadpool.h"

namespace trimgrad::core {
namespace {

// --- Minimal JSON validator ------------------------------------------------
// Recursive-descent parse that accepts exactly the JSON grammar (objects,
// arrays, strings with escapes, numbers, true/false/null). Returns true iff
// the whole input is one valid value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, RecordsCompleteAndInstantEvents) {
  TraceLog log;
  log.complete("work", "test", 1.0, 0.5, 3, {{"n", 7.0}});
  log.instant("mark", "test");
  EXPECT_EQ(log.event_count(), 2u);
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":500000.000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"n\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
}

TEST(Trace, SpanRecordsOnDestruction) {
  TraceLog log;
  {
    TraceLog::Span s = log.span("scoped", "test");
    s.arg("k", 2.0);
    EXPECT_EQ(log.event_count(), 0u);  // nothing until the span closes
  }
  EXPECT_EQ(log.event_count(), 1u);
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"name\":\"scoped\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"k\":2}"), std::string::npos) << json;
}

TEST(Trace, LogicalClockTicksDeterministically) {
  TraceLog log;
  EXPECT_EQ(log.now_seconds(), 0.0);
  EXPECT_EQ(log.now_seconds(), 1e-6);
  log.clear();
  EXPECT_EQ(log.now_seconds(), 0.0);  // clear() resets the tick
}

TEST(Trace, TimeSourceInjection) {
  TraceLog log;
  double now = 4.0;
  log.set_time_source([&now] { return now; });
  EXPECT_EQ(log.now_seconds(), 4.0);
  log.instant("at4", "test");
  now = 5.0;
  log.instant("at5", "test");
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"ts\":4000000.000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":5000000.000000"), std::string::npos) << json;
  log.set_time_source({});
  EXPECT_EQ(log.now_seconds(), 0.0);  // back to the logical ticker
}

TEST(Trace, DisabledLogDropsEvents) {
  TraceLog log;
  log.set_enabled(false);
  log.instant("dropped", "test");
  EXPECT_EQ(log.event_count(), 0u);
  log.set_enabled(true);
  log.instant("kept", "test");
  EXPECT_EQ(log.event_count(), 1u);
}

TEST(Trace, MaxEventsCapStopsRecording) {
  TraceLog log;
  log.set_max_events(3);
  for (int i = 0; i < 10; ++i) log.instant("e", "test");
  EXPECT_EQ(log.event_count(), 3u);
  log.clear();
  log.instant("e", "test");
  EXPECT_EQ(log.event_count(), 1u);  // cap applies to the live buffer
}

TEST(Trace, JsonIsWellFormed) {
  TraceLog log;
  log.complete("na\"me with \\ and\nnewline", "cat", 0.0, 1.0, 0,
               {{"quo\"te", -1.5}});
  log.instant("i", "c");
  const std::string json = log.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Trace, EmptyLogIsWellFormed) {
  TraceLog log;
  EXPECT_TRUE(JsonChecker(log.to_json()).valid()) << log.to_json();
}

// --- Determinism across pool sizes ----------------------------------------
// Drive the real instrumented codec path (sequential spans + worker-side
// counters) at pool sizes 1/2/8 and require both telemetry surfaces to
// serialize byte-identically. This is the ISSUE 3 acceptance gate.
std::pair<std::string, std::string> run_codec_telemetry(std::size_t threads) {
  ThreadPool::set_global_threads(threads);
  TraceLog::global().clear();
  MetricsRegistry::global().reset_values();

  Xoshiro256 rng(42);
  std::vector<float> grad(8192);
  for (auto& g : grad) g = static_cast<float>(rng.gaussian());
  CodecConfig cfg;
  cfg.scheme = Scheme::kRHT;
  cfg.rht_row_len = 1 << 10;  // 8 rows -> real parallel fan-out
  TrimmableEncoder enc(cfg);
  TrimmableDecoder dec(cfg);
  auto msg = enc.encode(grad, /*msg_id=*/1, /*epoch=*/1);
  for (std::size_t i = 0; i < msg.packets.size(); i += 3) {
    msg.packets[i].trim();
  }
  auto out = dec.decode(msg.packets, msg.meta);
  EXPECT_GT(out.stats.trimmed_coords, 0u);

  return {TraceLog::global().to_json(),
          metrics_to_json(MetricsRegistry::global())};
}

TEST(TraceDeterminism, TelemetryBitIdenticalAcrossThreadCounts) {
  const auto t1 = run_codec_telemetry(1);
  const auto t2 = run_codec_telemetry(2);
  const auto t8 = run_codec_telemetry(8);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(t1.first, t2.first);   // trace JSON
  EXPECT_EQ(t1.first, t8.first);
  EXPECT_EQ(t1.second, t2.second); // metrics JSON
  EXPECT_EQ(t1.second, t8.second);
  EXPECT_TRUE(JsonChecker(t1.first).valid());
  EXPECT_TRUE(JsonChecker(t1.second).valid());
  // The run actually exercised the instrumented paths.
  EXPECT_NE(t1.second.find("\"codec.rht.rows_encoded\":8"), std::string::npos)
      << t1.second;
  EXPECT_NE(t1.first.find("codec.encode"), std::string::npos) << t1.first;
}

}  // namespace
}  // namespace trimgrad::core
