// Multi-level trimmable encoding (paper §5.1, built out as a working
// extension rather than future work).
//
// A switch may face different congestion severities and want matching trim
// strengths: the paper suggests trimming 32-bit coordinates to either 8 bits
// (mild congestion, ~25 % of full size) or 1 bit (severe, ~3 %). That needs
// a *prefix-decodable* three-part encoding:
//
//   region A — 1 bit/coord:  sign of the (RHT-rotated) coordinate
//   region B — 7 bits/coord: the LOW 6 exponent bits + the top mantissa
//               bit of the IEEE-754 value
//   region C — 24 bits/coord: the 2 HIGH exponent bits + the low 22
//               mantissa bits
//
// A + B + C reassemble the exact 32-bit float. A + B decode by inferring
// the two missing high exponent bits from the row's reliable scale f —
// RHT-rotated coordinates concentrate within a few octaves of f, so among
// the four exponent candidates (64 octaves apart) the one nearest f's
// exponent is unambiguous; the unknown low mantissa bits take their bucket
// midpoint, giving ≈1 % NMSE at 8 bits/coordinate. A alone decodes to ±f
// like the 1-bit RHT scheme (NMSE ≈ π/2 − 1). The packet layout places A,
// then B, then C, so a switch implements the three congestion responses
// purely as two different trim points on the same packet.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/packet.h"
#include "core/prng.h"

namespace trimgrad::core {

/// How much of a multi-level packet survived.
enum class TrimLevel : std::uint8_t {
  kFull = 0,  ///< A+B+C: exact
  kMid = 1,   ///< A+B: 8 bits/coordinate
  kHead = 2,  ///< A: 1 bit/coordinate
};

const char* to_string(TrimLevel lv) noexcept;

/// Split / reassemble one rotated coordinate.
struct MlParts {
  bool sign;          ///< region A bit (1 = non-negative)
  std::uint8_t mid;   ///< region B: low-6 exponent bits + top mantissa bit
  std::uint32_t low;  ///< region C: high-2 exponent bits + low 22 mantissa bits
};
MlParts ml_split(float r) noexcept;
float ml_join_full(const MlParts& p) noexcept;  ///< exact float
/// 8-bit decode: exponent high bits inferred from the row scale f;
/// mid == 0 decodes to 0 (reserved for exact zeros).
float ml_join_mid(bool sign, std::uint8_t mid, float scale_f) noexcept;
float ml_join_head(bool sign, float scale_f) noexcept;  ///< ±f

/// One multi-level trimmable packet: three payload regions + header model.
struct MlPacket {
  std::uint32_t msg_id = 0;
  std::uint32_t row_id = 0;
  std::uint32_t coord_base = 0;
  std::uint16_t n_coords = 0;
  std::uint16_t seq = 0;
  TrimLevel level = TrimLevel::kFull;

  std::vector<std::uint8_t> region_a;  ///< ceil(n/8) bytes of sign bits
  std::vector<std::uint8_t> region_b;  ///< ceil(7n/8) bytes of mid codes
  std::vector<std::uint8_t> region_c;  ///< 3n bytes of low bits

  std::size_t wire_bytes() const noexcept {
    return kTransportHeaderBytes + region_a.size() + region_b.size() +
           region_c.size();
  }
  /// Wire size this packet would have at a given trim level.
  std::size_t wire_bytes_at(TrimLevel lv) const noexcept;

  /// Apply a trim. Trimming is monotone: a packet already at kHead stays
  /// there even if asked for kMid.
  void trim_to(TrimLevel lv) noexcept;
};

/// Per-message metadata (reliable channel): per-row unbiased scales.
struct MlMessageMeta {
  std::uint32_t msg_id = 0;
  std::uint64_t epoch = 0;
  std::uint32_t total_coords = 0;
  std::uint32_t row_len = 0;
  std::vector<float> row_scales;
};

struct MlEncodedMessage {
  std::vector<MlPacket> packets;
  MlMessageMeta meta;
};

/// RHT-rotated multi-level encoder/decoder. Shares the row-splitting and
/// shared-seed conventions of the 1-bit RHT codec.
class MultilevelCodec {
 public:
  struct Config {
    PacketLayout layout{};  ///< only mtu/header used; P/Q implied by regions
    std::size_t row_len = std::size_t{1} << 15;
    std::uint64_t shared_seed = 1;
  };

  explicit MultilevelCodec(Config cfg);

  MlEncodedMessage encode(std::span<const float> grad, std::uint32_t msg_id,
                          std::uint64_t epoch) const;

  /// Decode; packets may be at any mix of trim levels or missing.
  std::vector<float> decode(std::span<const MlPacket> packets,
                            const MlMessageMeta& meta) const;

  /// Coordinates per packet for the 32-bit three-region layout.
  std::size_t coords_per_packet() const noexcept;

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace trimgrad::core
