file(REMOVE_RECURSE
  "libtrimgrad_core.a"
)
