#include "core/wire.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

CodecConfig cfg_of(Scheme s) {
  CodecConfig cfg;
  cfg.scheme = s;
  cfg.rht_row_len = 1 << 10;
  return cfg;
}

bool packets_equal(const GradientPacket& a, const GradientPacket& b) {
  return a.msg_id == b.msg_id && a.row_id == b.row_id &&
         a.coord_base == b.coord_base && a.n_coords == b.n_coords &&
         a.seq == b.seq && a.scheme == b.scheme && a.p_bits == b.p_bits &&
         a.q_bits == b.q_bits && a.trimmed == b.trimmed &&
         a.head_region == b.head_region && a.tail_region == b.tail_region;
}

class WireSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(WireSchemes, SerializeParseRoundTrip) {
  TrimmableEncoder enc(cfg_of(GetParam()));
  const auto msg = enc.encode(gaussian_vec(3000, 1), 7, 3);
  for (const auto& pkt : msg.packets) {
    const auto bytes = serialize_packet(pkt);
    const auto back = parse_packet(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(packets_equal(pkt, *back));
  }
}

TEST_P(WireSchemes, TrimmedPacketRoundTrips) {
  TrimmableEncoder enc(cfg_of(GetParam()));
  auto msg = enc.encode(gaussian_vec(1500, 2), 1, 1);
  msg.packets[0].trim();
  const auto bytes = serialize_packet(msg.packets[0]);
  const auto back = parse_packet(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->trimmed);
  EXPECT_TRUE(packets_equal(msg.packets[0], *back));
}

TEST_P(WireSchemes, ByteTruncationAtTrimPointEqualsTrim) {
  // The design's defining property, tested on literal bytes: a switch that
  // cuts the buffer at the trim point produces exactly trim().
  TrimmableEncoder enc(cfg_of(GetParam()));
  auto msg = enc.encode(gaussian_vec(2000, 3), 2, 5);
  for (auto& pkt : msg.packets) {
    auto bytes = serialize_packet(pkt);
    bytes.resize(wire_trim_point(pkt));  // the switch's cut
    const auto parsed = parse_packet(bytes);
    ASSERT_TRUE(parsed.has_value());
    pkt.trim();  // the in-memory model of the same action
    EXPECT_TRUE(packets_equal(pkt, *parsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, WireSchemes,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSign,
                                           Scheme::kSQ, Scheme::kSD,
                                           Scheme::kRHT),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return to_string(info.param);
                         });

TEST(Wire, TruncationInsideTailStillParsesAsTrimmed) {
  TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(gaussian_vec(1000, 4), 1, 1);
  auto bytes = serialize_packet(msg.packets[0]);
  bytes.resize(wire_trim_point(msg.packets[0]) + 7);  // mid-tail cut
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->trimmed);
  EXPECT_TRUE(parsed->tail_region.empty());
}

TEST(Wire, TruncationInsideHeadIsMalformed) {
  TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(gaussian_vec(1000, 5), 1, 1);
  auto bytes = serialize_packet(msg.packets[0]);
  bytes.resize(wire_trim_point(msg.packets[0]) - 3);
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Wire, BadMagicRejected) {
  TrimmableEncoder enc(cfg_of(Scheme::kSign));
  const auto msg = enc.encode(gaussian_vec(100, 6), 1, 1);
  auto bytes = serialize_packet(msg.packets[0]);
  bytes[0] ^= 0xff;
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Wire, TrailingGarbageRejected) {
  TrimmableEncoder enc(cfg_of(Scheme::kSign));
  const auto msg = enc.encode(gaussian_vec(100, 7), 1, 1);
  auto bytes = serialize_packet(msg.packets[0]);
  bytes.push_back(0xde);
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Wire, EmptyAndTinyBuffersRejected) {
  EXPECT_FALSE(parse_packet({}).has_value());
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(parse_packet(tiny).has_value());
}

TEST(Wire, Crc32cMatchesKnownVectorAndChains) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xE3069283.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32c(digits), 0xE3069283u);
  // Chaining: crc(a || b) == crc(b, seed = crc(a)).
  const auto whole = crc32c(digits);
  const auto chained =
      crc32c(std::span(digits).subspan(4), crc32c(std::span(digits).first(4)));
  EXPECT_EQ(whole, chained);
}

TEST(Wire, Crc32cRfc3720VectorsOnEveryImplementation) {
  // The full RFC 3720 §B.4 test vector set, run against the bitwise
  // reference, the slice-by-8 tables, the hardware path, and the dispatcher.
  std::vector<std::uint8_t> zeros(32, 0x00);
  std::vector<std::uint8_t> ones(32, 0xff);
  std::vector<std::uint8_t> inc(32), dec(32);
  for (std::size_t i = 0; i < 32; ++i) {
    inc[i] = static_cast<std::uint8_t>(i);
    dec[i] = static_cast<std::uint8_t>(31 - i);
  }
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const struct {
    std::span<const std::uint8_t> data;
    std::uint32_t expect;
  } vectors[] = {
      {digits, 0xE3069283u}, {zeros, 0x8A9136AAu}, {ones, 0x62A8AB43u},
      {inc, 0x46DD794Eu},    {dec, 0x113FDB5Cu},
  };
  for (const auto& v : vectors) {
    EXPECT_EQ(crc32c_reference(v.data), v.expect);
    EXPECT_EQ(crc32c_table(v.data), v.expect);
    EXPECT_EQ(crc32c_hw(v.data), v.expect);
    EXPECT_EQ(crc32c(v.data), v.expect);
  }
}

TEST(Wire, Crc32cImplementationsAgreeOnRandomLengthsAndSeeds) {
  Xoshiro256 rng(0xc4c);
  for (std::size_t n = 0; n <= 70; ++n) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::uint32_t seed = static_cast<std::uint32_t>(rng());
    const std::uint32_t ref = crc32c_reference(data, seed);
    EXPECT_EQ(crc32c_table(data, seed), ref) << "n=" << n;
    EXPECT_EQ(crc32c_hw(data, seed), ref) << "n=" << n;
    EXPECT_EQ(crc32c(data, seed), ref) << "n=" << n;
  }
}

TEST(Wire, VerdictsDistinguishFullTrimmedCorruptMalformed) {
  TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(gaussian_vec(1200, 11), 1, 1);
  const auto& pkt = msg.packets[0];
  const auto bytes = serialize_packet(pkt);

  EXPECT_EQ(parse_packet_verified(bytes).verdict, WireVerdict::kFull);

  auto cut = bytes;
  cut.resize(wire_trim_point(pkt));
  EXPECT_EQ(parse_packet_verified(cut).verdict, WireVerdict::kTrimmed);

  auto mangled_head = bytes;
  mangled_head[kWireHeaderBytes + 3] ^= 0x40;  // inside the head region
  const auto ph = parse_packet_verified(mangled_head);
  EXPECT_EQ(ph.verdict, WireVerdict::kCorrupt);
  EXPECT_FALSE(ph.packet.has_value());

  ASSERT_FALSE(pkt.tail_region.empty());
  auto mangled_tail = bytes;
  mangled_tail.back() ^= 0x01;  // inside a fully present tail
  const auto pt = parse_packet_verified(mangled_tail);
  EXPECT_EQ(pt.verdict, WireVerdict::kCorrupt);
  EXPECT_FALSE(pt.packet.has_value());

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(parse_packet_verified(bad_magic).verdict,
            WireVerdict::kMalformed);
}

TEST(Wire, EveryHeaderByteFlipIsDetected) {
  // Exhaustive single-byte flips over the header prefix: each must yield
  // kCorrupt or kMalformed — never a quietly wrong packet. (A flip in the
  // length fields usually breaks framing; a flip elsewhere breaks a CRC.)
  TrimmableEncoder enc(cfg_of(Scheme::kSQ));
  const auto msg = enc.encode(gaussian_vec(900, 12), 3, 9);
  const auto bytes = serialize_packet(msg.packets[0]);
  for (std::size_t i = 0; i < kWireHeaderBytes; ++i) {
    auto flipped = bytes;
    flipped[i] ^= 0x10;
    const auto parsed = parse_packet_verified(flipped);
    EXPECT_TRUE(parsed.verdict == WireVerdict::kCorrupt ||
                parsed.verdict == WireVerdict::kMalformed)
        << "flip at header byte " << i << " parsed as "
        << to_string(parsed.verdict);
    EXPECT_FALSE(parsed.packet.has_value()) << "byte " << i;
  }
}

TEST(Wire, TrimmedBufferWithMangledHeadIsCorruptNotTrimmed) {
  // The checksum split's whole point: a cut is distinguishable from a cut
  // *plus* damage. Trim the buffer, then flip one surviving head byte.
  TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(gaussian_vec(1000, 13), 1, 1);
  auto bytes = serialize_packet(msg.packets[0]);
  bytes.resize(wire_trim_point(msg.packets[0]));
  bytes[kWireHeaderBytes] ^= 0x80;
  const auto parsed = parse_packet_verified(bytes);
  EXPECT_EQ(parsed.verdict, WireVerdict::kCorrupt);
  EXPECT_FALSE(parsed.packet.has_value());
}

TEST(WireMeta, ByteFlipAnywhereRejectsMeta) {
  MessageMeta meta;
  meta.msg_id = 5;
  meta.scheme = Scheme::kRHT;
  meta.total_coords = 4096;
  meta.row_len = 1 << 10;
  meta.row_scales = {0.5f, 1.5f};
  const auto bytes = serialize_meta(meta);
  ASSERT_TRUE(parse_meta(bytes).has_value());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto flipped = bytes;
    flipped[i] ^= 0x04;
    EXPECT_FALSE(parse_meta(flipped).has_value()) << "flip at byte " << i;
  }
}

TEST(Wire, EndToEndThroughBytesDecodesCorrectly) {
  // Full pipeline over literal bytes: encode -> serialize -> trim half the
  // buffers by truncation -> parse -> decode.
  const auto v = gaussian_vec(8192, 8);
  TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  TrimmableDecoder dec(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(v, 9, 2);

  std::vector<GradientPacket> received;
  for (std::size_t i = 0; i < msg.packets.size(); ++i) {
    auto bytes = serialize_packet(msg.packets[i]);
    if (i % 2 == 0) bytes.resize(wire_trim_point(msg.packets[i]));
    auto parsed = parse_packet(bytes);
    ASSERT_TRUE(parsed.has_value());
    received.push_back(std::move(*parsed));
  }
  const auto meta_bytes = serialize_meta(msg.meta);
  const auto meta = parse_meta(meta_bytes);
  ASSERT_TRUE(meta.has_value());
  const auto out = dec.decode(received, *meta);
  EXPECT_GT(out.stats.trimmed_coords, 0u);
  EXPECT_LT(nmse(out.values, v), 0.4);
}

TEST(WireMeta, RoundTripsAllFields) {
  MessageMeta meta;
  meta.msg_id = 42;
  meta.epoch = 0x1234567890abcdefULL;
  meta.scheme = Scheme::kRHT;
  meta.total_coords = 100000;
  meta.row_len = 1 << 15;
  meta.scalar_scale = 0.0f;
  meta.row_scales = {1.5f, -2.25f, 0.001f, 3e10f};
  const auto bytes = serialize_meta(meta);
  const auto back = parse_meta(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->msg_id, meta.msg_id);
  EXPECT_EQ(back->epoch, meta.epoch);
  EXPECT_EQ(back->scheme, meta.scheme);
  EXPECT_EQ(back->total_coords, meta.total_coords);
  EXPECT_EQ(back->row_len, meta.row_len);
  EXPECT_EQ(back->row_scales, meta.row_scales);
}

TEST(WireMeta, TruncatedMetaRejected) {
  MessageMeta meta;
  meta.row_scales = {1.0f, 2.0f};
  auto bytes = serialize_meta(meta);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(parse_meta(bytes).has_value());
}

TEST(WireMeta, MetaMagicDistinctFromPacketMagic) {
  MessageMeta meta;
  const auto bytes = serialize_meta(meta);
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

}  // namespace
}  // namespace trimgrad::core
