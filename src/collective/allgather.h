// Trimmable all-gather for FSDP-style sharded weights (paper §5.5).
//
// In fully-sharded data parallelism each rank owns one shard of a weight
// matrix and must gather the other shards before a matmul. §5.5 argues a
// small fraction of imperfection in *copied weights* is tolerable, so the
// gather can use trimmable packets too and dodge stragglers. Ring
// all-gather: W−1 steps, each rank forwarding the newest shard it holds.
// Forwarded shards are re-encoded, so a shard trimmed at step s keeps its
// (decoded) approximation for the remaining hops — error does not compound
// multiplicatively.
#pragma once

#include <vector>

#include "collective/channel.h"
#include "core/codec.h"

namespace trimgrad::collective {

struct AllGatherResult {
  /// outputs[r] = rank r's assembled full vector (shards concatenated in
  /// rank order).
  std::vector<std::vector<float>> outputs;
  net::SimTime comm_time = 0;
  std::uint64_t wire_bytes = 0;
  std::size_t trimmed_packets = 0;
  std::size_t dropped_packets = 0;
};

class AllGatherer {
 public:
  AllGatherer(Channel& channel, core::CodecConfig codec);

  /// shards[r] = rank r's owned shard. Shards may differ in length.
  AllGatherResult run(const std::vector<std::vector<float>>& shards,
                      std::uint32_t msg_id, std::uint64_t epoch);

 private:
  Channel& channel_;
  core::TrimmableEncoder encoder_;
  core::TrimmableDecoder decoder_;
};

}  // namespace trimgrad::collective
