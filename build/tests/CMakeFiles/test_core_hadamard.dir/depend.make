# Empty dependencies file for test_core_hadamard.
# This may be replaced when dependencies are built.
