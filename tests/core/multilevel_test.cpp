#include "core/multilevel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

MultilevelCodec::Config small_cfg() {
  MultilevelCodec::Config cfg;
  cfg.row_len = 1 << 10;
  cfg.shared_seed = 7;
  return cfg;
}

TEST(MlParts, SplitJoinIsBitExact) {
  for (float r : {0.0f, -0.0f, 1.0f, -1.0f, 0.123f, -4.5e-20f, 7.7e18f}) {
    const MlParts p = ml_split(r);
    EXPECT_EQ(ml_join_full(p), r) << r;
  }
}

TEST(MlParts, MidDecodeWithinHalfMantissaBucket) {
  // With the high exponent bits inferred from f, the 8-bit decode is exact
  // in exponent and half-mantissa: relative error < 25 %.
  for (float r : {0.001f, 0.5f, 1.0f, 3.7f, 123.0f, -0.02f, -999.0f}) {
    const MlParts p = ml_split(r);
    // f within a few octaves of |r|, as for rotated rows.
    const float f = 0.7f * std::fabs(r);
    const float mid = ml_join_mid(p.sign, p.mid, f);
    EXPECT_EQ(std::signbit(mid), std::signbit(r)) << r;
    const double ratio = std::fabs(mid / r);
    EXPECT_GT(ratio, 0.75) << r;
    EXPECT_LT(ratio, 1.33) << r;
  }
}

TEST(MlParts, ZeroRowDecodesToNearZero) {
  // All-zero input => f = 0 => the exponent inference picks the denormal
  // candidate, so the 8-bit decode of a true zero is ≈ 0.
  const MlParts p = ml_split(0.0f);
  EXPECT_EQ(p.mid, 0);
  EXPECT_LT(std::fabs(ml_join_mid(p.sign, p.mid, 0.0f)), 1e-30f);
}

TEST(MlParts, PowerOfTwoOctaveBucketsDoNotCollapseToZero) {
  // Regression: exponents ≡ 0 (mod 64) (e.g. |r| in [2,4), exp = 128) share
  // mid codes with zeros and must still decode near their magnitude.
  for (float r : {2.5f, -3.9f, 2.0f}) {
    const MlParts p = ml_split(r);
    const float mid = ml_join_mid(p.sign, p.mid, 1.0f);
    EXPECT_NEAR(std::fabs(mid / r), 1.0, 0.3) << r;
  }
}

TEST(MlParts, ExponentInferenceRobustAcrossOctaves) {
  // The candidate exponents are 64 octaves apart; any f within ±31 octaves
  // of the truth selects correctly.
  const float r = 3.0f;
  const MlParts p = ml_split(r);
  for (float f : {3.0f * 1e-9f, 3.0f, 3.0f * 1e9f}) {
    const float mid = ml_join_mid(p.sign, p.mid, f);
    EXPECT_NEAR(std::fabs(mid / r), 1.0, 0.25) << "f=" << f;
  }
}

TEST(MlParts, HeadDecodeIsSignTimesF) {
  EXPECT_FLOAT_EQ(ml_join_head(true, 0.3f), 0.3f);
  EXPECT_FLOAT_EQ(ml_join_head(false, 0.3f), -0.3f);
}

TEST(MlPacket, TrimLevelsShrinkMonotonically) {
  MlPacket pkt;
  pkt.n_coords = 100;
  pkt.region_a.assign(13, 0);
  pkt.region_b.assign(88, 0);
  pkt.region_c.assign(300, 0);
  const auto full = pkt.wire_bytes();
  const auto mid = pkt.wire_bytes_at(TrimLevel::kMid);
  const auto head = pkt.wire_bytes_at(TrimLevel::kHead);
  EXPECT_GT(full, mid);
  EXPECT_GT(mid, head);
  EXPECT_EQ(head, kTransportHeaderBytes + 13u);
}

TEST(MlPacket, TrimToMidDropsOnlyRegionC) {
  MlPacket pkt;
  pkt.region_a.assign(2, 0);
  pkt.region_b.assign(14, 0);
  pkt.region_c.assign(48, 0);
  pkt.trim_to(TrimLevel::kMid);
  EXPECT_EQ(pkt.level, TrimLevel::kMid);
  EXPECT_FALSE(pkt.region_b.empty());
  EXPECT_TRUE(pkt.region_c.empty());
}

TEST(MlPacket, TrimIsMonotone) {
  MlPacket pkt;
  pkt.region_a.assign(2, 0);
  pkt.region_b.assign(14, 0);
  pkt.region_c.assign(48, 0);
  pkt.trim_to(TrimLevel::kHead);
  pkt.trim_to(TrimLevel::kMid);  // must not "untrim"
  EXPECT_EQ(pkt.level, TrimLevel::kHead);
  EXPECT_TRUE(pkt.region_b.empty());
}

TEST(MlCodec, FullLevelRoundTripsExactly) {
  const auto v = gaussian_vec(5000, 1);
  MultilevelCodec codec(small_cfg());
  const MlEncodedMessage msg = codec.encode(v, 3, 5);
  const auto dec = codec.decode(msg.packets, msg.meta);
  EXPECT_LT(nmse(dec, v), 1e-10);
}

TEST(MlCodec, MidLevelBeatsHeadLevel) {
  const auto v = gaussian_vec(8192, 2);
  MultilevelCodec codec(small_cfg());

  MlEncodedMessage mid_msg = codec.encode(v, 1, 1);
  for (auto& p : mid_msg.packets) p.trim_to(TrimLevel::kMid);
  const double mid_err = nmse(codec.decode(mid_msg.packets, mid_msg.meta), v);

  MlEncodedMessage head_msg = codec.encode(v, 1, 1);
  for (auto& p : head_msg.packets) p.trim_to(TrimLevel::kHead);
  const double head_err = nmse(codec.decode(head_msg.packets, head_msg.meta), v);

  EXPECT_LT(mid_err, head_err * 0.1);  // 8 bits should be much better
  EXPECT_LT(mid_err, 0.03);
  EXPECT_LT(head_err, 0.65);  // same regime as 1-bit RHT (π/2−1)
}

TEST(MlCodec, MixedLevelsDecodeTogether) {
  const auto v = gaussian_vec(4096, 3);
  MultilevelCodec codec(small_cfg());
  MlEncodedMessage msg = codec.encode(v, 1, 1);
  Xoshiro256 rng(44);
  for (auto& p : msg.packets) {
    const double u = rng.uniform();
    if (u < 0.33) p.trim_to(TrimLevel::kHead);
    else if (u < 0.66) p.trim_to(TrimLevel::kMid);
  }
  const double e = nmse(codec.decode(msg.packets, msg.meta), v);
  EXPECT_LT(e, 0.35);
  EXPECT_GT(e, 0.0);
}

TEST(MlCodec, MissingPacketsDecodeToZeroContribution) {
  const auto v = gaussian_vec(2048, 4);
  MultilevelCodec codec(small_cfg());
  MlEncodedMessage msg = codec.encode(v, 1, 1);
  std::vector<MlPacket> half(msg.packets.begin(),
                             msg.packets.begin() + msg.packets.size() / 2);
  const auto dec = codec.decode(half, msg.meta);
  EXPECT_LT(nmse(dec, v), 1.1);  // never worse than losing the whole signal
}

TEST(MlCodec, SizeLevelsMatchPaperTargets) {
  // §5.1: trim to ~25 % (8-bit) or ~3 % (1-bit) of the original size.
  const auto v = gaussian_vec(1 << 14, 5);
  MultilevelCodec codec(small_cfg());
  const MlEncodedMessage msg = codec.encode(v, 1, 1);
  std::size_t full = 0, mid = 0, head = 0;
  for (const auto& p : msg.packets) {
    full += p.wire_bytes();
    mid += p.wire_bytes_at(TrimLevel::kMid);
    head += p.wire_bytes_at(TrimLevel::kHead);
  }
  EXPECT_NEAR(static_cast<double>(mid) / full, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(head) / full, 0.06, 0.04);
}

TEST(MlCodec, LevelNames) {
  EXPECT_STREQ(to_string(TrimLevel::kFull), "full");
  EXPECT_STREQ(to_string(TrimLevel::kMid), "mid");
  EXPECT_STREQ(to_string(TrimLevel::kHead), "head");
}

}  // namespace
}  // namespace trimgrad::core
