#include "net/queue.h"

#include <gtest/gtest.h>

namespace trimgrad::net {
namespace {

Frame data_frame(std::size_t size, std::size_t trim_size = 88) {
  Frame f;
  f.kind = FrameKind::kData;
  f.size_bytes = size;
  f.trim_size_bytes = trim_size;
  return f;
}

Frame ack_frame() {
  Frame f;
  f.kind = FrameKind::kAck;
  f.size_bytes = kControlFrameBytes;
  return f;
}

QueueConfig small_cfg(QueuePolicy policy) {
  QueueConfig cfg;
  cfg.policy = policy;
  cfg.capacity_bytes = 3000;  // two full MTUs
  cfg.header_capacity_bytes = 512;
  cfg.ecn_threshold_bytes = 1500;
  return cfg;
}

TEST(DropTail, AcceptsUntilFullThenDrops) {
  EgressQueue q(small_cfg(QueuePolicy::kDropTail));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));
  EXPECT_FALSE(q.enqueue(data_frame(1500)));  // 4500 > 3000
  EXPECT_EQ(q.counters().dropped, 1u);
  EXPECT_EQ(q.counters().enqueued, 2u);
}

TEST(DropTail, DequeueIsFifo) {
  EgressQueue q(small_cfg(QueuePolicy::kDropTail));
  Frame a = data_frame(100);
  a.seq = 1;
  Frame b = data_frame(100);
  b.seq = 2;
  q.enqueue(std::move(a));
  q.enqueue(std::move(b));
  EXPECT_EQ(q.dequeue()->seq, 1u);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTail, ByteAccountingBalances) {
  EgressQueue q(small_cfg(QueuePolicy::kDropTail));
  q.enqueue(data_frame(1000));
  q.enqueue(data_frame(500));
  EXPECT_EQ(q.data_bytes(), 1500u);
  q.dequeue();
  EXPECT_EQ(q.data_bytes(), 500u);
  q.dequeue();
  EXPECT_EQ(q.data_bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(Trim, OverflowTrimsInsteadOfDropping) {
  EgressQueue q(small_cfg(QueuePolicy::kTrim));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));  // trimmed, not dropped
  EXPECT_EQ(q.counters().trimmed, 1u);
  EXPECT_EQ(q.counters().dropped, 0u);
}

TEST(Trim, TrimmedFrameShrinksToTrimPoint) {
  EgressQueue q(small_cfg(QueuePolicy::kTrim));
  q.enqueue(data_frame(1500));
  q.enqueue(data_frame(1500));
  q.enqueue(data_frame(1500, 88));
  // Header queue has strict priority: the trimmed frame pops first.
  const auto f = q.dequeue();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->trimmed);
  EXPECT_EQ(f->size_bytes, 88u);
}

TEST(Trim, UntrimmableFrameIsDroppedOnOverflow) {
  EgressQueue q(small_cfg(QueuePolicy::kTrim));
  q.enqueue(data_frame(1500));
  q.enqueue(data_frame(1500));
  EXPECT_FALSE(q.enqueue(data_frame(1500, /*trim_size=*/0)));
  EXPECT_EQ(q.counters().dropped, 1u);
}

TEST(Trim, HeaderQueueOverflowDrops) {
  QueueConfig cfg = small_cfg(QueuePolicy::kTrim);
  cfg.header_capacity_bytes = 100;  // fits one 88-byte header
  EgressQueue q(cfg);
  q.enqueue(data_frame(1500));
  q.enqueue(data_frame(1500));
  EXPECT_TRUE(q.enqueue(data_frame(1500)));   // trim -> header queue
  EXPECT_FALSE(q.enqueue(data_frame(1500)));  // header queue full -> drop
  EXPECT_EQ(q.counters().trimmed, 2u);  // second was trimmed then dropped
  EXPECT_EQ(q.counters().dropped, 1u);
}

TEST(Trim, ControlFramesUseHeaderQueue) {
  EgressQueue q(small_cfg(QueuePolicy::kTrim));
  q.enqueue(data_frame(1500));
  q.enqueue(ack_frame());
  EXPECT_EQ(q.header_bytes(), kControlFrameBytes);
  // Strict priority: the ACK overtakes the queued data frame.
  EXPECT_EQ(q.dequeue()->kind, FrameKind::kAck);
  EXPECT_EQ(q.dequeue()->kind, FrameKind::kData);
}

TEST(Trim, AlreadyTrimmedFramesJoinHeaderQueue) {
  EgressQueue q(small_cfg(QueuePolicy::kTrim));
  Frame f = data_frame(1500);
  f.trim();
  EXPECT_TRUE(f.trimmed);
  q.enqueue(std::move(f));
  EXPECT_EQ(q.data_bytes(), 0u);
  EXPECT_GT(q.header_bytes(), 0u);
}

TEST(Ecn, MarksAboveThreshold) {
  EgressQueue q(small_cfg(QueuePolicy::kEcn));
  q.enqueue(data_frame(1500));  // below threshold: no mark
  q.enqueue(data_frame(1500));  // occupancy 1500 >= threshold: marked
  auto a = q.dequeue();
  auto b = q.dequeue();
  EXPECT_FALSE(a->ecn);
  EXPECT_TRUE(b->ecn);
  EXPECT_EQ(q.counters().ecn_marked, 1u);
}

TEST(Ecn, StillDropsOnOverflow) {
  EgressQueue q(small_cfg(QueuePolicy::kEcn));
  q.enqueue(data_frame(1500));
  q.enqueue(data_frame(1500));
  EXPECT_FALSE(q.enqueue(data_frame(1500)));
  EXPECT_EQ(q.counters().dropped, 1u);
}

TEST(Counters, MaxDataBytesHighWaterMark) {
  EgressQueue q(small_cfg(QueuePolicy::kDropTail));
  q.enqueue(data_frame(1000));
  q.enqueue(data_frame(1000));
  q.dequeue();
  q.enqueue(data_frame(500));
  EXPECT_EQ(q.counters().max_data_bytes, 2000u);
}

TEST(Counters, OccupancySampledOnEnqueue) {
  EgressQueue q(small_cfg(QueuePolicy::kDropTail));
  q.enqueue(data_frame(1000));
  q.enqueue(data_frame(1000));
  EXPECT_EQ(q.occupancy().count(), 2u);
  EXPECT_DOUBLE_EQ(q.occupancy().max(), 1000.0);  // sampled before enqueue
}

TEST(FrameTrim, CopyOnTrimPreservesOriginalCargo) {
  auto pkt = std::make_shared<core::GradientPacket>();
  pkt->scheme = core::Scheme::kRHT;
  pkt->head_region.assign(46, 1);
  pkt->tail_region.assign(1412, 2);
  Frame f = data_frame(1500);
  f.cargo = pkt;
  f.trim();
  EXPECT_TRUE(f.cargo->trimmed);
  EXPECT_TRUE(f.cargo->tail_region.empty());
  // The sender's copy is untouched.
  EXPECT_FALSE(pkt->trimmed);
  EXPECT_EQ(pkt->tail_region.size(), 1412u);
}

TEST(FrameTrim, NotTrimmableWithoutTrimSize) {
  Frame f = data_frame(1500, 0);
  EXPECT_FALSE(f.trimmable());
  f.trim();
  EXPECT_FALSE(f.trimmed);
  EXPECT_EQ(f.size_bytes, 1500u);
}

TEST(FrameTrim, TrimIsIdempotentOnFrame) {
  Frame f = data_frame(1500, 88);
  f.trim();
  EXPECT_EQ(f.size_bytes, 88u);
  f.trim();
  EXPECT_EQ(f.size_bytes, 88u);
}

}  // namespace
}  // namespace trimgrad::net
