# Empty dependencies file for test_net_transport.
# This may be replaced when dependencies are built.
