# Empty compiler generated dependencies file for bench_ablation_lowrank.
# This may be replaced when dependencies are built.
