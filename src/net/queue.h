// Switch egress queues: drop-tail, ECN, and packet trimming.
//
// The trimming queue is the paper's enabling mechanism (§1, citing NDP/EODS/
// Ultra Ethernet): when the shallow data queue would overflow, the switch
// cuts the frame down to its trim point and forwards the remainder on a
// small high-priority "header" queue instead of dropping it. Control frames
// always use the header queue, mirroring NDP's priority for headers/ACKs.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "core/stats.h"
#include "net/frame.h"

namespace trimgrad::net {

enum class QueuePolicy : std::uint8_t {
  kDropTail = 0,  ///< classic shallow buffer: overflow drops the frame
  kTrim = 1,      ///< NDP-style: overflow trims, header queue forwards
  kEcn = 2,       ///< drop-tail + ECN marking above a threshold
};

const char* to_string(QueuePolicy p) noexcept;

struct QueueConfig {
  QueuePolicy policy = QueuePolicy::kTrim;
  std::size_t capacity_bytes = 100 * 1024;       ///< shallow data queue
  std::size_t header_capacity_bytes = 32 * 1024; ///< trimmed/control queue
  std::size_t ecn_threshold_bytes = 30 * 1024;   ///< marking threshold (kEcn)
};

struct QueueCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  std::uint64_t ecn_marked = 0;
  std::size_t max_data_bytes = 0;  ///< high-water mark of the data queue
};

/// Two-level egress queue with a congestion policy. Not thread-safe — the
/// simulator is single-threaded by design.
class EgressQueue {
 public:
  explicit EgressQueue(QueueConfig cfg) : cfg_(cfg) {}

  /// Offer a frame. Returns false if the frame was dropped. A true return
  /// means the frame was accepted (possibly trimmed in place first).
  bool enqueue(Frame frame);

  /// Pop the next frame to transmit: strict priority to the header queue
  /// (trimmed frames + control), then the data queue.
  std::optional<Frame> dequeue();

  bool empty() const noexcept {
    return header_q_.empty() && data_q_.empty();
  }
  std::size_t data_bytes() const noexcept { return data_bytes_; }
  std::size_t header_bytes() const noexcept { return header_bytes_; }
  const QueueCounters& counters() const noexcept { return counters_; }
  const QueueConfig& config() const noexcept { return cfg_; }
  /// Streaming occupancy statistics, sampled at every enqueue.
  const core::RunningStats& occupancy() const noexcept { return occupancy_; }

 private:
  bool enqueue_header(Frame frame);

  QueueConfig cfg_;
  std::deque<Frame> data_q_;
  std::deque<Frame> header_q_;
  std::size_t data_bytes_ = 0;
  std::size_t header_bytes_ = 0;
  QueueCounters counters_;
  core::RunningStats occupancy_;
};

}  // namespace trimgrad::net
