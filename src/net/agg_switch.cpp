#include "net/agg_switch.h"

#include <cassert>

namespace trimgrad::net {

void AggSwitchNode::register_group(std::vector<std::uint32_t> worker_flows,
                                   std::uint32_t output_flow, NodeId server) {
  Group g;
  g.flows = std::move(worker_flows);
  g.output_flow = output_flow;
  g.server = server;
  for (std::uint32_t f : g.flows) flow_to_group_[f] = groups_.size();
  groups_.push_back(std::move(g));
}

void AggSwitchNode::emit_aggregate(Group& group, std::uint32_t seq,
                                   PendingSeq& slot) {
  Frame agg = slot.exemplar;  // copies addressing/sizing of a constituent
  agg.id = sim_.next_frame_id();
  agg.flow_id = group.output_flow;
  agg.dst = group.server;
  agg.seq = seq;
  agg.cargo = std::make_shared<core::GradientPacket>(
      core::rebuild_packet(*slot.exemplar.cargo, slot.sum));
  agg.size_bytes = agg.cargo->wire_bytes();
  agg.trim_size_bytes = agg.cargo->trimmed_wire_bytes();
  ++counters_.aggregated_frames;
  SwitchNode::on_frame(std::move(agg));
}

void AggSwitchNode::on_frame(Frame frame) {
  const auto it = frame.kind == FrameKind::kData
                      ? flow_to_group_.find(frame.flow_id)
                      : flow_to_group_.end();
  if (it == flow_to_group_.end()) {
    SwitchNode::on_frame(std::move(frame));
    return;
  }
  Group& group = groups_[it->second];
  auto& slot = group.pending[frame.seq];

  auto values = frame.cargo ? core::packet_values(*frame.cargo)
                            : std::nullopt;
  if (!values.has_value() || slot.poisoned) {
    // Trimmed or unsupported: this seq can no longer aggregate exactly.
    // Forward the constituent (and any buffered sum stays dropped — the
    // server's transport recovers via the flow's own delivery semantics).
    slot.poisoned = true;
    ++counters_.bypassed_frames;
    SwitchNode::on_frame(std::move(frame));
    return;
  }

  if (slot.arrived == 0) {
    slot.sum = std::move(*values);
    slot.exemplar = frame;  // keep a template (shares cargo pointer)
  } else {
    assert(values->size() == slot.sum.size());
    for (std::size_t i = 0; i < slot.sum.size(); ++i) {
      slot.sum[i] += (*values)[i];
    }
  }
  ++slot.arrived;
  ++counters_.absorbed_frames;

  if (slot.arrived == group.flows.size()) {
    emit_aggregate(group, frame.seq, slot);
    group.pending.erase(frame.seq);
  }
}

}  // namespace trimgrad::net
