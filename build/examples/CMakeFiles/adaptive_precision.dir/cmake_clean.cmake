file(REMOVE_RECURSE
  "CMakeFiles/adaptive_precision.dir/adaptive_precision.cpp.o"
  "CMakeFiles/adaptive_precision.dir/adaptive_precision.cpp.o.d"
  "adaptive_precision"
  "adaptive_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
