#include "net/fault_plane.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <tuple>

#include "core/metrics.h"

namespace trimgrad::net {

namespace {

struct FaultTelemetry {
  core::Counter link_refused, queue_flushed, node_drops, corrupted,
      corrupt_detected;

  static const FaultTelemetry& get() {
    auto& reg = core::MetricsRegistry::global();
    static const FaultTelemetry t{
        reg.counter("net.fault.link_refused"),
        reg.counter("net.fault.queue_flushed"),
        reg.counter("net.fault.node_drops"),
        reg.counter("net.fault.corrupted"),
        reg.counter("net.fault.corrupt_detected"),
    };
    return t;
  }
};

/// Interval membership shared by LinkFault/NodeFault: window k covers
/// [start + k*period, start + k*period + duration) for k in [0, repeats).
bool window_covers(SimTime start, SimTime duration, SimTime period,
                   std::size_t repeats, SimTime now) noexcept {
  const SimTime t = now - start;
  if (t < 0 || duration <= 0) return false;
  if (period <= 0) return t < duration;
  const auto k = static_cast<std::size_t>(t / period);
  if (k >= repeats) return false;
  return t - static_cast<double>(k) * period < duration;
}

/// Stateless coin: the same (seed, frame, hop) triple always lands the same
/// way, independent of evaluation order.
double hop_u01(std::uint64_t seed, std::uint64_t frame_id, NodeId node,
               std::size_t port) noexcept {
  const std::uint64_t h = core::mix64(core::mix64(seed, frame_id),
                                      core::mix64(node, port));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool LinkFault::active_at(SimTime now) const noexcept {
  return window_covers(start, duration, period, repeats, now);
}

bool NodeFault::active_at(SimTime now) const noexcept {
  return window_covers(start, duration, period, repeats, now);
}

const char* to_string(FaultEvent::Kind k) noexcept {
  switch (k) {
    case FaultEvent::Kind::kLinkRefused: return "link_refused";
    case FaultEvent::Kind::kQueueFlushed: return "queue_flushed";
    case FaultEvent::Kind::kNodeDrop: return "node_drop";
    case FaultEvent::Kind::kCorrupt: return "corrupt";
  }
  return "?";
}

void FaultLog::save(std::ostream& os) const {
  // max_digits10 so SimTime round-trips bit-exactly through the text form.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& e : events_) {
    os << static_cast<unsigned>(e.kind) << ' ' << e.time << ' ' << e.node
       << ' ' << e.port << ' ' << e.frame_id << '\n';
  }
  os.precision(old_precision);
}

FaultLog FaultLog::load(std::istream& is) {
  FaultLog log;
  unsigned kind;
  FaultEvent ev;
  while (is >> kind >> ev.time >> ev.node >> ev.port >> ev.frame_id) {
    ev.kind = static_cast<FaultEvent::Kind>(kind);
    log.record(ev);
  }
  return log;
}

FaultLog FaultLog::sorted() const {
  FaultLog out = *this;
  std::sort(out.events_.begin(), out.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.time, a.frame_id, a.kind, a.node, a.port) <
                     std::tie(b.time, b.frame_id, b.kind, b.node, b.port);
            });
  return out;
}

FaultPlane::FaultPlane(FaultPlaneConfig cfg) : cfg_(std::move(cfg)) {}

bool FaultPlane::link_up(NodeId node, std::size_t port,
                         SimTime now) const noexcept {
  for (const auto& f : cfg_.link_faults) {
    if (f.node == node && f.port == port && f.bandwidth_scale <= 0.0 &&
        f.active_at(now)) {
      return false;
    }
  }
  return true;
}

bool FaultPlane::node_up(NodeId node, SimTime now) const noexcept {
  for (const auto& f : cfg_.node_faults) {
    if (f.node == node && f.active_at(now)) return false;
  }
  return true;
}

LinkSpec FaultPlane::effective_link(NodeId node, std::size_t port, SimTime now,
                                    const LinkSpec& base) const noexcept {
  LinkSpec spec = base;
  for (const auto& f : cfg_.link_faults) {
    if (f.node == node && f.port == port && f.bandwidth_scale > 0.0 &&
        f.active_at(now)) {
      spec.bandwidth_bps *= f.bandwidth_scale;
      spec.latency_s *= f.latency_scale;
    }
  }
  return spec;
}

double FaultPlane::corrupt_rate_for(NodeId node,
                                    std::size_t port) const noexcept {
  for (const auto& r : cfg_.corrupt_overrides) {
    if (r.node == node && r.port == port) return r.rate;
  }
  return cfg_.corrupt_rate;
}

bool FaultPlane::maybe_corrupt(NodeId node, std::size_t port, SimTime now,
                               Frame& frame) {
  if (frame.kind != FrameKind::kData || frame.corrupted) return false;
  const double rate = corrupt_rate_for(node, port);
  if (rate <= 0.0) return false;
  if (hop_u01(cfg_.seed, frame.id, node, port) >= rate) return false;
  frame.corrupted = true;
  if (frame.cargo) {
    // Actually mangle the payload (copy-on-write, like trim()) so a
    // receiver that skipped the checksum would aggregate a wrong gradient —
    // the failure mode the corruption tests assert never happens.
    auto mangled = std::make_shared<core::GradientPacket>(*frame.cargo);
    auto& region = mangled->head_region.empty() ? mangled->tail_region
                                                : mangled->head_region;
    if (!region.empty()) {
      const std::uint64_t pos =
          core::mix64(cfg_.seed ^ 0x5bd1e995u, frame.id) % region.size();
      region[pos] ^= 0xff;
    }
    frame.cargo = std::move(mangled);
  }
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.record({FaultEvent::Kind::kCorrupt, now, node, port, frame.id});
  }
  FaultTelemetry::get().corrupted.add();
  return true;
}

void FaultPlane::note_link_refused(NodeId node, std::size_t port, SimTime now,
                                   std::uint64_t frame_id) {
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.record({FaultEvent::Kind::kLinkRefused, now, node, port, frame_id});
  }
  FaultTelemetry::get().link_refused.add();
}

void FaultPlane::note_queue_flushed(NodeId node, std::size_t port, SimTime now,
                                    std::uint64_t frame_id) {
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.record({FaultEvent::Kind::kQueueFlushed, now, node, port, frame_id});
  }
  FaultTelemetry::get().queue_flushed.add();
}

void FaultPlane::note_node_drop(NodeId node, SimTime now,
                                std::uint64_t frame_id) {
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.record({FaultEvent::Kind::kNodeDrop, now, node, 0, frame_id});
  }
  FaultTelemetry::get().node_drops.add();
}

void count_corrupt_detected() { FaultTelemetry::get().corrupt_detected.add(); }

}  // namespace trimgrad::net
