file(REMOVE_RECURSE
  "CMakeFiles/test_core_codec.dir/core/codec_test.cpp.o"
  "CMakeFiles/test_core_codec.dir/core/codec_test.cpp.o.d"
  "test_core_codec"
  "test_core_codec.pdb"
  "test_core_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
