# Empty dependencies file for bench_fig4_ttba.
# This may be replaced when dependencies are built.
