file(REMOVE_RECURSE
  "CMakeFiles/trimgrad_net.dir/agg_switch.cpp.o"
  "CMakeFiles/trimgrad_net.dir/agg_switch.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/ecn_transport.cpp.o"
  "CMakeFiles/trimgrad_net.dir/ecn_transport.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/frame.cpp.o"
  "CMakeFiles/trimgrad_net.dir/frame.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/injector.cpp.o"
  "CMakeFiles/trimgrad_net.dir/injector.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/pull_transport.cpp.o"
  "CMakeFiles/trimgrad_net.dir/pull_transport.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/queue.cpp.o"
  "CMakeFiles/trimgrad_net.dir/queue.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/sim.cpp.o"
  "CMakeFiles/trimgrad_net.dir/sim.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/switch_node.cpp.o"
  "CMakeFiles/trimgrad_net.dir/switch_node.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/topology.cpp.o"
  "CMakeFiles/trimgrad_net.dir/topology.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/traffic.cpp.o"
  "CMakeFiles/trimgrad_net.dir/traffic.cpp.o.d"
  "CMakeFiles/trimgrad_net.dir/transport.cpp.o"
  "CMakeFiles/trimgrad_net.dir/transport.cpp.o.d"
  "libtrimgrad_net.a"
  "libtrimgrad_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trimgrad_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
