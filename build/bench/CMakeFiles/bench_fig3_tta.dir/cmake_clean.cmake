file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tta.dir/bench_fig3_tta.cpp.o"
  "CMakeFiles/bench_fig3_tta.dir/bench_fig3_tta.cpp.o.d"
  "bench_fig3_tta"
  "bench_fig3_tta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
