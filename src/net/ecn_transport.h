// DCTCP-style ECN-reactive transport (paper §5.3's congestion-control
// feedback loop).
//
// §5.3: a coarse congestion-control signal should drive *ahead-of-time*
// compression (the sender's Q), while trimming handles what the control
// loop cannot predict. This sender provides that loop: receivers echo ECN
// marks on their ACKs; the sender maintains the DCTCP EWMA of the marked
// fraction (alpha) and scales its window down by alpha/2 per marked round,
// growing additively otherwise. The smoothed mark fraction is exported so
// an AdaptiveQController (core/adaptive.h) can consume it as the §5.3
// signal — see the EcnAwareTrainingLoop test.
//
// Reliability (RTO backoff, retransmit budget, flow deadline, abort) comes
// from the shared FlowCore (net/flow_core.h), so the ECN transport has the
// same give-up semantics as the window and pull transports.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow_core.h"
#include "net/host.h"

namespace trimgrad::net {

struct EcnConfig {
  std::size_t initial_window = 16;
  std::size_t min_window = 2;
  std::size_t max_window = 256;
  double gain = 1.0 / 16.0;  ///< DCTCP alpha EWMA gain g
  SimTime rto = 500e-6;
  SimTime rto_cap = 5e-3;
  bool trimmed_is_delivered = true;
  /// Give-up knobs (see TransportConfig): 0 disables each.
  std::size_t retransmit_budget = 0;
  SimTime flow_deadline = 0;
};

class EcnSender : public FlowEndpoint {
 public:
  EcnSender(Host& host, NodeId dst, std::uint32_t flow_id, EcnConfig cfg);
  ~EcnSender() override;

  /// `on_complete` fires exactly once: on full acknowledgement or on
  /// failure (stats().failed — budget/deadline exhausted, or abort()ed).
  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete);

  /// Give up on the in-flight message now. No-op when not active.
  void abort();

  void on_frame(Frame frame) override;

  const FlowStats& stats() const noexcept { return core_.stats(); }
  /// DCTCP alpha: EWMA of the per-window ECN-marked fraction in [0, 1].
  double alpha() const noexcept { return alpha_; }
  std::size_t window() const noexcept { return window_; }
  bool active() const noexcept { return core_.active(); }
  /// Current backed-off RTO (tests pin the rto_cap ceiling through this).
  SimTime current_rto() const noexcept { return core_.current_rto(); }

 private:
  void try_send_new();
  void end_of_window_round();

  Host& host_;
  std::uint32_t flow_id_;
  EcnConfig cfg_;
  FlowCore core_;

  std::size_t sent_unacked_ = 0;
  std::size_t window_ = 0;
  // Per-round mark accounting (a "round" = one window's worth of ACKs).
  std::size_t round_acks_ = 0;
  std::size_t round_marks_ = 0;
  double alpha_ = 0.0;
};

/// Receiver: the trim-aware Receiver already echoes delivery; ECN needs the
/// mark echoed too, which the base Receiver's ACKs do not carry. Same
/// ReceiverCore, echo_ecn policy.
class EcnReceiver : public FlowEndpoint {
 public:
  EcnReceiver(Host& host, NodeId peer, std::uint32_t flow_id,
              std::size_t expected_packets, EcnConfig cfg,
              std::function<void(const Frame&)> on_data = {},
              std::function<void(const ReceiverStats&)> on_complete = {});
  ~EcnReceiver() override;

  void on_frame(Frame frame) override;
  const ReceiverStats& stats() const noexcept { return core_.stats(); }
  bool complete() const noexcept { return core_.complete(); }

 private:
  Host& host_;
  std::uint32_t flow_id_;
  ReceiverCore core_;
};

/// ManagedFlow-style wiring for the ECN transport.
class EcnFlow {
 public:
  EcnFlow(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
          EcnConfig cfg, std::size_t n_packets,
          std::function<void(const Frame&)> on_data = {});

  void start_at(SimTime when, std::vector<SendItem> items,
                std::function<void(const FlowStats&)> on_complete = {});

  const FlowStats& stats() const noexcept { return sender_->stats(); }
  const EcnSender& sender() const noexcept { return *sender_; }
  EcnSender& sender() noexcept { return *sender_; }
  const ReceiverStats& receiver_stats() const noexcept {
    return receiver_->stats();
  }
  bool done() const noexcept { return done_; }

 private:
  Simulator& sim_;
  std::unique_ptr<EcnSender> sender_;
  std::unique_ptr<EcnReceiver> receiver_;
  bool done_ = false;
};

}  // namespace trimgrad::net
