// Trimmable weight all-gather for FSDP-style sharded training (paper §5.5).
//
//   $ ./examples/fsdp_allgather
//
// Four ranks each own one shard of a layer's weights. Before the matmul,
// every rank gathers the other shards through a congested (trimming)
// channel. We verify the gathered weights are close enough that the layer's
// *outputs* barely move — §5.5's "a small fraction of imperfection in copied
// weights has limited impact" claim, measured.
#include <cstdio>
#include <vector>

#include "collective/allgather.h"
#include "collective/inject_channel.h"
#include "core/stats.h"
#include "ml/layers.h"

int main() {
  using namespace trimgrad;

  // A Linear layer whose weight matrix will be sharded across 4 ranks.
  core::Xoshiro256 rng(11);
  ml::Linear layer(256, 128, rng);
  const std::vector<float> weights = *layer.params()[0].values;

  // Shard row-blocks across ranks.
  const int world = 4;
  std::vector<std::vector<float>> shards(world);
  const std::size_t per = weights.size() / world;
  for (int r = 0; r < world; ++r) {
    shards[r].assign(weights.begin() + r * per,
                     r + 1 == world ? weights.end()
                                    : weights.begin() + (r + 1) * per);
  }

  core::CodecConfig codec;
  codec.scheme = core::Scheme::kRHT;
  codec.rht_row_len = std::size_t{1} << 12;

  for (double trim_rate : {0.0, 0.1, 0.3, 0.5}) {
    collective::InjectChannel::Config ccfg;
    ccfg.world = world;
    ccfg.injector.trim_rate = trim_rate;
    collective::InjectChannel channel(ccfg);
    collective::AllGatherer gatherer(channel, codec);

    const auto result = gatherer.run(shards, /*msg_id=*/1, /*epoch=*/1);

    // Weight error and, more importantly, layer-output error.
    double worst_out_nmse = 0;
    for (int r = 0; r < world; ++r) {
      ml::Linear approx(256, 128, rng);
      *approx.params()[0].values = result.outputs[r];
      *approx.params()[1].values = *layer.params()[1].values;
      ml::Tensor x({8, 256});
      core::Xoshiro256 xr(5);
      for (auto& v : x.data) v = static_cast<float>(xr.gaussian());
      const ml::Tensor y_ref = layer.forward(x);
      const ml::Tensor y_est = approx.forward(x);
      worst_out_nmse =
          std::max(worst_out_nmse, core::nmse(y_est.data, y_ref.data));
    }
    std::printf(
        "trim %4.0f%%: weight NMSE %.5f, worst layer-output NMSE %.5f, "
        "%4zu trimmed pkts, comm %.1f us\n",
        trim_rate * 100, core::nmse(result.outputs[0], weights),
        worst_out_nmse, result.trimmed_packets, result.comm_time * 1e6);
  }
  return 0;
}
