// Output-queued switch with static routing and optional ECMP groups.
//
// Forwarding is a destination-indexed table built by the topology helpers.
// Each egress port owns its queue (drop-tail / trim / ECN per QueueConfig),
// so trimming is a purely local decision at the congested hop — exactly the
// deployment model of §1 (Tofino / Trident 4 / Spectrum 2 support it today).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/sim.h"

namespace trimgrad::net {

class SwitchNode : public Node {
 public:
  SwitchNode(Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, std::move(name)) {}

  /// Route frames for `dst` out of `port_idx`.
  void set_route(NodeId dst, std::size_t port_idx) {
    routes_[dst] = {port_idx};
  }

  /// ECMP: frames for `dst` hash (by flow id) across `port_idxs`.
  void set_ecmp_route(NodeId dst, std::vector<std::size_t> port_idxs) {
    routes_[dst] = std::move(port_idxs);
  }

  /// Fallback port when no table entry matches (e.g. leaf uplink).
  void set_default_route(std::size_t port_idx) {
    default_port_ = static_cast<std::ptrdiff_t>(port_idx);
  }

  void on_frame(Frame frame) override;

  /// Frames that arrived with no usable route (counted, then dropped).
  std::uint64_t unroutable() const noexcept { return unroutable_; }

 private:
  std::unordered_map<NodeId, std::vector<std::size_t>> routes_;
  std::ptrdiff_t default_port_ = -1;
  std::uint64_t unroutable_ = 0;
};

}  // namespace trimgrad::net
