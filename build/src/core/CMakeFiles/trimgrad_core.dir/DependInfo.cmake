
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agg_support.cpp" "src/core/CMakeFiles/trimgrad_core.dir/agg_support.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/agg_support.cpp.o.d"
  "/root/repo/src/core/bitpack.cpp" "src/core/CMakeFiles/trimgrad_core.dir/bitpack.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/bitpack.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/trimgrad_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/eden.cpp" "src/core/CMakeFiles/trimgrad_core.dir/eden.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/eden.cpp.o.d"
  "/root/repo/src/core/hadamard.cpp" "src/core/CMakeFiles/trimgrad_core.dir/hadamard.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/hadamard.cpp.o.d"
  "/root/repo/src/core/lowrank.cpp" "src/core/CMakeFiles/trimgrad_core.dir/lowrank.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/lowrank.cpp.o.d"
  "/root/repo/src/core/magnitude.cpp" "src/core/CMakeFiles/trimgrad_core.dir/magnitude.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/magnitude.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/core/CMakeFiles/trimgrad_core.dir/multilevel.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/multilevel.cpp.o.d"
  "/root/repo/src/core/packet.cpp" "src/core/CMakeFiles/trimgrad_core.dir/packet.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/packet.cpp.o.d"
  "/root/repo/src/core/prng.cpp" "src/core/CMakeFiles/trimgrad_core.dir/prng.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/prng.cpp.o.d"
  "/root/repo/src/core/quantizer.cpp" "src/core/CMakeFiles/trimgrad_core.dir/quantizer.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/quantizer.cpp.o.d"
  "/root/repo/src/core/rht_codec.cpp" "src/core/CMakeFiles/trimgrad_core.dir/rht_codec.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/rht_codec.cpp.o.d"
  "/root/repo/src/core/sparsify.cpp" "src/core/CMakeFiles/trimgrad_core.dir/sparsify.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/sparsify.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/trimgrad_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/transcript.cpp" "src/core/CMakeFiles/trimgrad_core.dir/transcript.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/transcript.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/trimgrad_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/trimgrad_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
