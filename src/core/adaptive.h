// Ahead-of-time compression control (paper §5.3).
//
// Trimming handles *unpredictable* congestion; a coarser-grained congestion
// feedback loop can additionally adjust the tail length Q before sending.
// The paper's guidance: conventional congestion control would over-compress
// and under-send (wasting link capacity), so the sender should "always
// slightly under-compress and over-send so that the gradient traffic always
// saturates the link", letting the switch trim the excess.
//
// `AdaptiveQController` implements that policy as AIMD on the observed trim
// fraction: it *targets a small positive trim rate* rather than zero. If
// trimming runs hot (heavy congestion), it cuts Q multiplicatively — the
// sender ships shorter tails, shrinking its own footprint; when trimming
// falls below target (spare capacity), it grows Q additively back toward
// full precision. Footnote 1 of the paper applies: with Q < 31 even
// untrimmed packets decode at reduced precision, which the codec handles by
// midpoint-expanding the dropped tail bits.
#pragma once

#include <algorithm>

namespace trimgrad::core {

struct AdaptiveQConfig {
  unsigned min_q = 7;    ///< floor: 1-bit head + 7-bit tail = fp8-ish
  unsigned max_q = 31;   ///< full precision tails
  unsigned initial_q = 31;
  /// The deliberately positive trim-rate target ("slightly over-send").
  double target_trim = 0.05;
  /// Hot threshold: trim rate above target*hot_factor cuts Q by half.
  double hot_factor = 3.0;
  unsigned additive_step = 2;  ///< Q recovery per quiet observation
};

class AdaptiveQController {
 public:
  explicit AdaptiveQController(AdaptiveQConfig cfg = {})
      : cfg_(cfg), q_(std::clamp(cfg.initial_q, cfg.min_q, cfg.max_q)) {}

  /// Tail bits the next message should use.
  unsigned q() const noexcept { return q_; }

  /// Feed back the trim fraction observed for the last message.
  void observe(double trim_fraction) noexcept {
    if (trim_fraction > cfg_.target_trim * cfg_.hot_factor) {
      // Far over target: multiplicative decrease.
      q_ = std::max(cfg_.min_q, q_ / 2);
    } else if (trim_fraction > cfg_.target_trim) {
      // Mildly over: gentle decrease.
      q_ = std::max(cfg_.min_q, q_ - cfg_.additive_step);
    } else {
      // At or under target: additive increase back toward full precision.
      q_ = std::min(cfg_.max_q, q_ + cfg_.additive_step);
    }
  }

  const AdaptiveQConfig& config() const noexcept { return cfg_; }

 private:
  AdaptiveQConfig cfg_;
  unsigned q_;
};

}  // namespace trimgrad::core
