// Layer correctness, including numerical gradient checks — the training
// substrate must backpropagate exactly or the figure reproductions measure
// noise, not trimming effects.
#include "ml/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/loss.h"
#include "ml/model.h"

namespace trimgrad::ml {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  core::Xoshiro256 rng(seed);
  for (auto& x : t.data) x = static_cast<float>(rng.gaussian());
  return t;
}

/// Central-difference check of d loss / d input for an arbitrary layer
/// stack, where loss = sum(output * probe) for a fixed random probe.
void check_input_gradient(Sequential& net, Tensor x, double tol,
                          std::uint64_t seed) {
  const Tensor out0 = net.forward(x);
  Tensor probe = random_tensor(out0.shape, seed);
  net.zero_grads();
  Tensor analytic = net.backward(probe);

  core::Xoshiro256 pick(seed + 1);
  const float eps = 1e-3f;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t i = pick.below(x.size());
    Tensor xp = x;
    xp.data[i] += eps;
    Tensor xm = x;
    xm.data[i] -= eps;
    double lp = 0, lm = 0;
    const Tensor op = net.forward(xp);
    for (std::size_t j = 0; j < op.size(); ++j) lp += op.data[j] * probe.data[j];
    const Tensor om = net.forward(xm);
    for (std::size_t j = 0; j < om.size(); ++j) lm += om.data[j] * probe.data[j];
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic.data[i], numeric,
                tol * (1.0 + std::fabs(numeric)))
        << "input coordinate " << i;
  }
  // Restore caches for any later use.
  net.forward(x);
}

/// Central-difference check of d loss / d params.
void check_param_gradient(Sequential& net, Tensor x, double tol,
                          std::uint64_t seed) {
  const Tensor out0 = net.forward(x);
  Tensor probe = random_tensor(out0.shape, seed);
  net.zero_grads();
  net.backward(probe);
  const auto analytic = net.flat_grads();
  auto params = net.flat_params();

  core::Xoshiro256 pick(seed + 2);
  const float eps = 1e-3f;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t i = pick.below(params.size());
    auto perturbed = params;
    perturbed[i] += eps;
    net.set_flat_params(perturbed);
    double lp = 0;
    {
      const Tensor o = net.forward(x);
      for (std::size_t j = 0; j < o.size(); ++j) lp += o.data[j] * probe.data[j];
    }
    perturbed[i] = params[i] - eps;
    net.set_flat_params(perturbed);
    double lm = 0;
    {
      const Tensor o = net.forward(x);
      for (std::size_t j = 0; j < o.size(); ++j) lm += o.data[j] * probe.data[j];
    }
    net.set_flat_params(params);
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * (1.0 + std::fabs(numeric)))
        << "param " << i;
  }
}

TEST(Linear, ForwardMatchesManualComputation) {
  core::Xoshiro256 rng(1);
  Linear lin(2, 3, rng);
  // Overwrite with known weights: W[o][i], b[o].
  auto params = lin.params();
  *params[0].values = {1, 2, 3, 4, 5, 6};  // W = [[1,2],[3,4],[5,6]]
  *params[1].values = {0.5f, -0.5f, 0.0f};
  Tensor x({1, 2}, {10, 20});
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.data[0], 1 * 10 + 2 * 20 + 0.5f);
  EXPECT_FLOAT_EQ(y.data[1], 3 * 10 + 4 * 20 - 0.5f);
  EXPECT_FLOAT_EQ(y.data[2], 5 * 10 + 6 * 20 + 0.0f);
}

TEST(Linear, GradientsPassNumericalCheck) {
  Sequential net;
  core::Xoshiro256 rng(2);
  net.emplace<Linear>(6, 4, rng);
  check_input_gradient(net, random_tensor({3, 6}, 10), 1e-2, 100);
  check_param_gradient(net, random_tensor({3, 6}, 11), 1e-2, 101);
}

TEST(ReLU, ZeroesNegativesForwardAndBackward) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 2, -3, 4});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y.data[0], 0);
  EXPECT_FLOAT_EQ(y.data[1], 2);
  Tensor g({1, 4}, {10, 10, 10, 10});
  const Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx.data[0], 0);
  EXPECT_FLOAT_EQ(dx.data[1], 10);
  EXPECT_FLOAT_EQ(dx.data[2], 0);
  EXPECT_FLOAT_EQ(dx.data[3], 10);
}

TEST(Conv2d, PreservesSpatialSize) {
  core::Xoshiro256 rng(3);
  Conv2d conv(3, 8, rng);
  const Tensor y = conv.forward(random_tensor({2, 3, 8, 8}, 12));
  EXPECT_EQ(y.shape, (std::vector<std::size_t>{2, 8, 8, 8}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  core::Xoshiro256 rng(4);
  Conv2d conv(1, 1, rng);
  auto params = conv.params();
  // 3x3 kernel with center 1: identity convolution.
  *params[0].values = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  *params[1].values = {0};
  Tensor x = random_tensor({1, 1, 5, 5}, 13);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_FLOAT_EQ(y.data[i], x.data[i]);
}

TEST(Conv2d, ZeroPaddingAtBorders) {
  core::Xoshiro256 rng(5);
  Conv2d conv(1, 1, rng);
  auto params = conv.params();
  // Kernel that picks the top-left neighbour.
  *params[0].values = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  *params[1].values = {0};
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.data[0], 0.0f);  // top-left output: neighbour off-grid
  EXPECT_FLOAT_EQ(y.data[4], 1.0f);  // center output: top-left is x[0][0]
}

TEST(Conv2d, GradientsPassNumericalCheck) {
  Sequential net;
  core::Xoshiro256 rng(6);
  net.emplace<Conv2d>(2, 3, rng);
  check_input_gradient(net, random_tensor({2, 2, 4, 4}, 14), 2e-2, 102);
  check_param_gradient(net, random_tensor({2, 2, 4, 4}, 15), 2e-2, 103);
}

TEST(MaxPool2d, SelectsMaxAndRoutesGradient) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y.data[0], 5);
  Tensor g({1, 1, 1, 1}, {7});
  const Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx.data[0], 0);
  EXPECT_FLOAT_EQ(dx.data[1], 7);
  EXPECT_FLOAT_EQ(dx.data[2], 0);
  EXPECT_FLOAT_EQ(dx.data[3], 0);
}

TEST(Flatten, ReshapesWithoutTouchingData) {
  Flatten fl;
  Tensor x = random_tensor({2, 3, 4, 4}, 16);
  const Tensor y = fl.forward(x);
  EXPECT_EQ(y.shape, (std::vector<std::size_t>{2, 48}));
  EXPECT_EQ(y.data, x.data);
  const Tensor back = fl.backward(y);
  EXPECT_EQ(back.shape, x.shape);
}

TEST(Sequential, FullStackGradientCheck) {
  Sequential net;
  core::Xoshiro256 rng(7);
  net.emplace<Conv2d>(1, 2, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>();
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 2 * 2, 3, rng);
  check_param_gradient(net, random_tensor({2, 1, 4, 4}, 17), 3e-2, 104);
}

TEST(Sequential, FlatGradsRoundTrip) {
  Sequential net;
  core::Xoshiro256 rng(8);
  net.emplace<Linear>(4, 3, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(3, 2, rng);
  EXPECT_EQ(net.param_count(), 4u * 3 + 3 + 3 * 2 + 2);
  net.forward(random_tensor({2, 4}, 18));
  net.zero_grads();
  net.backward(random_tensor({2, 2}, 19));
  const auto flat = net.flat_grads();
  EXPECT_EQ(flat.size(), net.param_count());
  // Scatter a modified bucket back and read it again.
  auto modified = flat;
  for (auto& g : modified) g *= 2.0f;
  net.set_flat_grads(modified);
  EXPECT_EQ(net.flat_grads(), modified);
}

TEST(Sequential, FlatParamsReplicateModelsExactly) {
  ModelConfig cfg;
  cfg.classes = 10;
  cfg.height = cfg.width = 8;
  auto a = make_mlp(cfg, 32);
  ModelConfig cfg_b = cfg;
  cfg_b.init_seed = 999;  // different init...
  auto b = make_mlp(cfg_b, 32);
  b->set_flat_params(a->flat_params());  // ...then cloned
  Tensor x = random_tensor({4, 3, 8, 8}, 20);
  const Tensor ya = a->forward(x);
  const Tensor yb = b->forward(x);
  EXPECT_EQ(ya.data, yb.data);
}

TEST(Models, MiniVggShapesComposeOnCifarSize) {
  ModelConfig cfg;
  auto net = make_mini_vgg(cfg, 8);
  const Tensor y = net->forward(random_tensor({2, 3, 32, 32}, 21));
  EXPECT_EQ(y.shape, (std::vector<std::size_t>{2, 100}));
  EXPECT_GT(net->param_count(), 10000u);
}

TEST(Models, MlpOutputsLogitsPerClass) {
  ModelConfig cfg;
  cfg.classes = 17;
  auto net = make_mlp(cfg);
  const Tensor y = net->forward(random_tensor({3, 3, 32, 32}, 22));
  EXPECT_EQ(y.shape, (std::vector<std::size_t>{3, 17}));
}

TEST(Models, InitIsDeterministicInSeed) {
  ModelConfig cfg;
  auto a = make_mini_vgg(cfg, 8);
  auto b = make_mini_vgg(cfg, 8);
  EXPECT_EQ(a->flat_params(), b->flat_params());
}

}  // namespace
}  // namespace trimgrad::ml
