// Fixed-size thread pool with a deterministic, statically chunked
// parallel_for — the substrate behind the row-parallel codecs, the blocked
// GEMM kernels, and the parallel DDP worker loop.
//
// Determinism contract: parallel_for partitions [0, n) into contiguous
// chunks whose boundaries depend only on (n, grain, thread_count) — never on
// scheduling — and callers arrange the work so every output slot is written
// by exactly one chunk with a fixed intra-chunk order. Under that
// discipline the results are bit-identical for any thread count, which is
// what lets the RHT/multilevel codecs (whose rows are keyed independently by
// `StreamKey`) and the GEMM kernels (one output row per chunk) parallelize
// without changing a single numeric result. Tests enforce the contract for
// pool sizes 1, 2, and 8.
//
// The pool is intentionally small: static chunking over an atomic chunk
// cursor, no work stealing, no futures. The calling thread participates in
// the work, so a pool of size T uses T-1 background workers. Nested
// parallel_for calls from inside a worker run inline (sequentially) on that
// worker — the DDP trainer parallelizes over model replicas while each
// replica's GEMMs still call parallel_for.
//
// Dispatch overhead: jobs are passed as a FunctionRef (no per-call heap
// allocation), published through an atomic sequence number, and completion
// is a plain atomic countdown latch — workers and the caller spin briefly
// before falling back to a condition variable, so short jobs never pay a
// futex round trip.
#pragma once

#include <cstddef>

#include "core/function_ref.h"

namespace trimgrad::core {

/// Chunk callback: fn(begin, end) over a contiguous index range.
using ParallelForFn = FunctionRef<void(std::size_t, std::size_t)>;

class ThreadPool {
 public:
  /// A pool of `threads` total workers, *including* the calling thread;
  /// `threads <= 1` creates no background threads and parallel_for runs
  /// everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the caller.
  std::size_t thread_count() const noexcept;

  /// Run fn(begin, end) over a static partition of [0, n) into contiguous
  /// chunks of at least `grain` indices each. Blocks until all chunks are
  /// done (so fn only has to outlive this call). Safe to call from inside a
  /// pool worker (runs inline there).
  void parallel_for(std::size_t n, std::size_t grain, ParallelForFn fn);

  /// Process-wide pool used by the codec/GEMM/trainer hot paths. Sized on
  /// first use from the TRIMGRAD_THREADS environment variable, falling back
  /// to std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Replace the global pool with one of `threads` workers. Callers must
  /// ensure no parallel work is in flight (intended for test/bench setup).
  static void set_global_threads(std::size_t threads);

 private:
  struct Impl;
  Impl* impl_;
};

/// Shorthand for ThreadPool::global().parallel_for(...).
void parallel_for(std::size_t n, std::size_t grain, ParallelForFn fn);

}  // namespace trimgrad::core
