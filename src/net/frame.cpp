#include "net/frame.h"

namespace trimgrad::net {

const char* to_string(FrameKind k) noexcept {
  switch (k) {
    case FrameKind::kData: return "data";
    case FrameKind::kAck: return "ack";
    case FrameKind::kNack: return "nack";
    case FrameKind::kMeta: return "meta";
    case FrameKind::kPull: return "pull";
    case FrameKind::kHeartbeat: return "heartbeat";
  }
  return "?";
}

void Frame::trim() {
  if (!trimmable()) return;
  size_bytes = trim_size_bytes;
  trimmed = true;
  if (cargo) {
    // Copy-on-trim: the sender may hold the same packet for retransmission.
    auto copy = std::make_shared<core::GradientPacket>(*cargo);
    copy->trim();
    cargo = std::move(copy);
  }
}

}  // namespace trimgrad::net
