// Versioned membership view of the training world.
//
// Elastic membership (ddp/membership.h) evicts ranks the failure detector
// suspects and re-admits them after recovery. Every change bumps `version`,
// and the data plane consults the view so collectives never mix views: the
// AllReducer builds each round's participant set from the view it sees at
// round start, and SimChannel refuses transfers whose endpoints are not
// live in the current view (a stale request from an old view fails instead
// of leaking frames into the new one).
//
// The view is plain data owned by the control plane; the data plane holds a
// const pointer and only reads it between rounds (single-threaded phases),
// so no synchronization is needed.
#pragma once

#include <cstdint>
#include <vector>

namespace trimgrad::collective {

struct WorldView {
  std::uint64_t version = 0;       ///< bumped on every evict/admit
  std::vector<std::uint8_t> live;  ///< live[r] != 0: rank r participates

  static WorldView full(int world) {
    WorldView v;
    v.live.assign(static_cast<std::size_t>(world), 1);
    return v;
  }

  int world() const noexcept { return static_cast<int>(live.size()); }

  bool is_live(int rank) const noexcept {
    return rank >= 0 && static_cast<std::size_t>(rank) < live.size() &&
           live[static_cast<std::size_t>(rank)] != 0;
  }

  int live_count() const noexcept {
    int n = 0;
    for (const auto l : live) n += l != 0 ? 1 : 0;
    return n;
  }

  /// Live ranks in ascending order — the participant set of a collective.
  std::vector<int> live_ranks() const {
    std::vector<int> out;
    out.reserve(live.size());
    for (std::size_t r = 0; r < live.size(); ++r) {
      if (live[r] != 0) out.push_back(static_cast<int>(r));
    }
    return out;
  }

  /// Remove `rank` from the view; no-op (no version bump) if already out.
  void evict(int rank) {
    if (!is_live(rank)) return;
    live[static_cast<std::size_t>(rank)] = 0;
    ++version;
  }

  /// Re-admit `rank`; no-op (no version bump) if already live.
  void admit(int rank) {
    if (rank < 0 || static_cast<std::size_t>(rank) >= live.size() ||
        is_live(rank)) {
      return;
    }
    live[static_cast<std::size_t>(rank)] = 1;
    ++version;
  }

  friend bool operator==(const WorldView&, const WorldView&) = default;
};

}  // namespace trimgrad::collective
