#include "net/sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/host.h"

namespace trimgrad::net {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3e-6, [&] { order.push_back(3); });
  sim.schedule(1e-6, [&] { order.push_back(1); });
  sim.schedule(2e-6, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1e-6, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesMonotonically) {
  Simulator sim;
  SimTime last = -1;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(1e-6 * (100 - i), [&, i] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 100e-6);
}

TEST(EventQueue, NestedSchedulingWorks) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1e-6, [&] {
    ++fired;
    sim.schedule(1e-6, [&] {
      ++fired;
      EXPECT_DOUBLE_EQ(sim.now(), 2e-6);
    });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1e-6, [&] { ++fired; });
  sim.schedule(5e-6, [&] { ++fired; });
  sim.run_until(2e-6);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2e-6);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(LinkSpec, SerializationTime) {
  LinkSpec link;
  link.bandwidth_bps = 100e9;
  EXPECT_DOUBLE_EQ(link.tx_time(1500), 1500 * 8.0 / 100e9);  // 120 ns
  link.bandwidth_bps = 10e9;
  EXPECT_DOUBLE_EQ(link.tx_time(1500), 1.2e-6);
}

/// Sink node that records arrivals.
class SinkNode : public Node {
 public:
  SinkNode(Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, std::move(name)) {}
  void on_frame(Frame frame) override {
    arrivals.push_back(sim_.now());
    frames.push_back(std::move(frame));
  }
  std::vector<SimTime> arrivals;
  std::vector<Frame> frames;
};

/// Two nodes, one link: delivery time = tx + propagation.
TEST(Wiring, SingleFrameDeliveryTiming) {
  Simulator sim;
  auto& a = sim.add_node<SinkNode>("a");
  auto& b = sim.add_node<SinkNode>("b");
  LinkSpec link{10e9, 5e-6};
  sim.connect(a.id(), b.id(), link, QueueConfig{});
  Frame f;
  f.dst = b.id();
  f.size_bytes = 1500;
  sim.transmit(a.id(), 0, std::move(f));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_NEAR(b.arrivals[0], 1500 * 8.0 / 10e9 + 5e-6, 1e-12);
}

TEST(Wiring, BackToBackFramesSerializeOnTheLink) {
  Simulator sim;
  auto& a = sim.add_node<SinkNode>("a");
  auto& b = sim.add_node<SinkNode>("b");
  LinkSpec link{10e9, 0.0};
  sim.connect(a.id(), b.id(), link, QueueConfig{});
  for (int i = 0; i < 3; ++i) {
    Frame f;
    f.dst = b.id();
    f.size_bytes = 1250;  // 1 us at 10 Gbps
    sim.transmit(a.id(), 0, std::move(f));
  }
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 3u);
  EXPECT_NEAR(b.arrivals[0], 1e-6, 1e-12);
  EXPECT_NEAR(b.arrivals[1], 2e-6, 1e-12);
  EXPECT_NEAR(b.arrivals[2], 3e-6, 1e-12);
}

TEST(Wiring, BidirectionalPortsIndependent) {
  Simulator sim;
  auto& a = sim.add_node<SinkNode>("a");
  auto& b = sim.add_node<SinkNode>("b");
  sim.connect(a.id(), b.id(), LinkSpec{10e9, 1e-6}, QueueConfig{});
  Frame fa;
  fa.dst = b.id();
  fa.size_bytes = 100;
  Frame fb;
  fb.dst = a.id();
  fb.size_bytes = 100;
  sim.transmit(a.id(), 0, std::move(fa));
  sim.transmit(b.id(), 0, std::move(fb));
  sim.run();
  EXPECT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(sim.delivered_frames(), 2u);
}

TEST(Wiring, PortToFindsPeer) {
  Simulator sim;
  auto& a = sim.add_node<SinkNode>("a");
  auto& b = sim.add_node<SinkNode>("b");
  auto& c = sim.add_node<SinkNode>("c");
  sim.connect(a.id(), b.id(), LinkSpec{}, QueueConfig{});
  sim.connect(a.id(), c.id(), LinkSpec{}, QueueConfig{});
  EXPECT_EQ(a.port_to(b.id()), 0u);
  EXPECT_EQ(a.port_to(c.id()), 1u);
  EXPECT_EQ(b.port_to(c.id()), b.port_count());  // no such port
}

TEST(Wiring, FrameIdsAreUnique) {
  Simulator sim;
  EXPECT_NE(sim.next_frame_id(), sim.next_frame_id());
}

}  // namespace
}  // namespace trimgrad::net
