// ExperimentSpec: one declarative description of a training experiment —
// every layer selects its component by name.
//
// A spec names the transport (net::TransportRegistry), the codec
// (core::CodecRegistry), the topology regime, the trim regime, the fault
// script, the seeds, and the thread count, and parses from / serializes to
// a canonical `key=value,key=value` string:
//
//   transport=trim,scheme=rht,topology=inject,trim=0.25,world=4,epochs=10
//
// parse(serialize()) is the identity; unknown keys and unregistered
// transport/scheme names raise std::invalid_argument messages that list
// what *is* registered. The helpers at the bottom project a validated spec
// onto the concrete configs the rest of the stack consumes (ddp::Trainer,
// collective::InjectChannel, collective::SimChannel), so bench drivers and
// examples construct experiments from one string instead of hand-wiring
// four config structs.
#pragma once

#include <cstdint>
#include <string>

#include "collective/inject_channel.h"
#include "collective/sim_channel.h"
#include "ddp/membership.h"
#include "ddp/trainer.h"

namespace trimgrad::ddp {

struct ExperimentSpec {
  // --- components by registry name -----------------------------------
  std::string transport = "trim";  ///< net::TransportRegistry name
  std::string scheme = "rht";      ///< core::CodecRegistry name
  /// "inject": analytic InjectChannel (per-packet trim/drop coins, time
  /// model). "fabric": SimChannel flows on the discrete-event fabric where
  /// trimming happens only when switch queues actually overflow.
  std::string topology = "inject";
  /// Fault script: "none", "corrupt" (bit-flips at corrupt_rate),
  /// "flap" (periodic link flaps), "chaos" (corrupt + flap + straggler),
  /// "elastic" (node kill/restart windows healed by membership — see
  /// bench/bench_soak_elastic.cpp), or "file:<path>" — load a serialized
  /// net::FaultScript and replay it verbatim (the chaos-search shrinker
  /// writes minimal repros in exactly this form).
  std::string faults = "none";

  // --- trim regime ----------------------------------------------------
  double trim = 0.25;     ///< injected trim probability (inject topology)
  double drop = 0.0;      ///< injected outright-loss probability
  double deadline = 0.0;  ///< per-round flow deadline in seconds; 0 = none

  // --- training shape -------------------------------------------------
  int world = 4;
  std::uint64_t epochs = 10;
  std::uint64_t batch = 64;
  double lr = 0.02;

  // --- seeds & parallelism -------------------------------------------
  std::uint64_t seed = 2024;      ///< injector / data seed
  std::uint64_t fault_seed = 1;   ///< keys fault plane + straggler choice
  std::uint64_t threads = 0;      ///< 0 = TRIMGRAD_THREADS / hardware

  // --- elastic membership (ddp/membership.h) -------------------------
  /// Heartbeat window per round, in milliseconds. 0 = membership off
  /// (the default: no control plane, no view, exactly the old behavior).
  double heartbeat_ms = 0.0;
  /// Consecutive missed heartbeats before eviction.
  std::uint64_t evict_after = 3;
  /// Rounds between per-rank checkpoints; 0 = never checkpoint.
  std::uint64_t ckpt_every = 8;

  // --- compression control plane (core/policy.h) ----------------------
  /// core::PolicyRegistry name: "fixed" (default; the pinned-codec path),
  /// "aimd-trim" (AIMD on congestion pressure), "schedule" (scripted).
  std::string policy = "fixed";
  /// aimd-trim: target trim fraction ("slightly under-compress").
  double policy_target = 0.05;
  /// aimd-trim: tail-depth bounds, both in [1, 31].
  std::uint64_t policy_min_q = 7;
  std::uint64_t policy_max_q = 31;
  /// schedule policy script: ';'-separated "round:codec@q" entries.
  std::string schedule;
  /// inject topology: per-batch data-byte budget; packets past it are
  /// trimmed deterministically from the back of the burst (retransmitted
  /// under transport=reliable). 0 = unlimited — no capacity congestion.
  std::uint64_t capacity = 0;

  bool operator==(const ExperimentSpec&) const = default;

  /// Parse `key=value` pairs separated by commas and/or whitespace.
  /// Missing keys keep their defaults; the result is validate()d.
  /// Throws std::invalid_argument on unknown keys, malformed values, or
  /// unregistered component names (message lists the registered names).
  static ExperimentSpec parse(const std::string& text);

  /// Canonical form: every key, fixed order. parse(serialize()) == *this.
  std::string serialize() const;

  /// Short cell label for sweep tables: "transport=trim,scheme=rht,trim=0.25".
  std::string label() const;

  /// Registry + range checks; throws std::invalid_argument with the list
  /// of registered names when a component name is unknown.
  void validate() const;

  /// True when `faults` is a "file:<path>" reference.
  bool faults_is_file() const noexcept;
  /// The path part of a "file:<path>" faults value ("" otherwise). Load it
  /// with net::FaultScript::load_file; validate() does not touch the disk.
  std::string faults_path() const;

  /// Project onto TrainerConfig (world/batch/epochs/lr/scheme/fault_seed;
  /// codec details beyond the scheme keep TrainerConfig defaults). Throws
  /// if the named codec does not encode packet trains ("eden",
  /// "multilevel" register for micro-benches only).
  TrainerConfig trainer_config() const;

  /// topology == "inject": the analytic channel. Reliable-baseline
  /// semantics are keyed by the transport name ("reliable" retransmits
  /// trim/drop coins, charging time but not fidelity). Throws for "pull" /
  /// "ecn", which only exist on the fabric.
  collective::InjectChannel::Config inject_channel_config() const;

  /// topology == "fabric": flows via the TransportRegistry.
  collective::SimChannel::Config sim_channel_config() const;

  /// Membership control-plane knobs (heartbeat_ms/evict_after/ckpt_every).
  /// Meaningful when heartbeat_ms > 0; callers construct the Membership
  /// themselves (it needs the fabric's hosts).
  MembershipConfig membership_config() const;

  /// Compression-policy knobs (policy/policy_target/policy_*_q/schedule);
  /// the base codec comes from `scheme`. trainer_config() embeds this, so
  /// most callers never touch it directly.
  core::PolicyConfig policy_config() const;

  /// Resize the global ThreadPool when threads > 0 (no-op otherwise).
  void apply_threads() const;
};

}  // namespace trimgrad::ddp
