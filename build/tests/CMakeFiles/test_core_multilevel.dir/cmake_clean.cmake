file(REMOVE_RECURSE
  "CMakeFiles/test_core_multilevel.dir/core/multilevel_test.cpp.o"
  "CMakeFiles/test_core_multilevel.dir/core/multilevel_test.cpp.o.d"
  "test_core_multilevel"
  "test_core_multilevel.pdb"
  "test_core_multilevel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
