#include "net/flow_core.h"

#include <algorithm>

#include <atomic>

#include "core/metrics.h"
#include "core/trace.h"
#include "net/fault_plane.h"
#include "net/invariants.h"

namespace trimgrad::net {
namespace {

std::atomic<bool> g_swallow_corrupt{false};

/// The monitor attached to this core's simulator, or nullptr.
InvariantMonitor* monitor_of(Host& host) noexcept {
  return host.sim().invariant_monitor();
}

struct TransportTelemetry {
  core::Counter flows_completed, flows_failed, frames_sent, bytes_sent,
      retransmits, acked_full, acked_trimmed;

  static const TransportTelemetry& get() {
    auto& reg = core::MetricsRegistry::global();
    static const TransportTelemetry t{
        reg.counter("net.transport.flows_completed"),
        reg.counter("net.transport.flows_failed"),
        reg.counter("net.transport.frames_sent"),
        reg.counter("net.transport.bytes_sent"),
        reg.counter("net.transport.retransmits"),
        reg.counter("net.transport.acked_full"),
        reg.counter("net.transport.acked_trimmed"),
    };
    return t;
  }
};

}  // namespace

void test_set_swallow_corrupt_frames(bool on) noexcept {
  g_swallow_corrupt.store(on, std::memory_order_relaxed);
}

bool test_swallow_corrupt_frames() noexcept {
  return g_swallow_corrupt.load(std::memory_order_relaxed);
}

void record_flow_telemetry(const FlowStats& stats) {
  const TransportTelemetry& t = TransportTelemetry::get();
  if (stats.failed) t.flows_failed.add();
  else t.flows_completed.add();
  t.frames_sent.add(stats.frames_sent);
  t.bytes_sent.add(stats.bytes_sent);
  t.retransmits.add(stats.retransmits);
  t.acked_full.add(stats.acked_full);
  t.acked_trimmed.add(stats.acked_trimmed);
  core::TraceLog::global().complete(
      "flow", "net.transport", stats.start_time, stats.fct(), /*tid=*/0,
      {{"packets", static_cast<double>(stats.packets)},
       {"retransmits", static_cast<double>(stats.retransmits)},
       {"acked_trimmed", static_cast<double>(stats.acked_trimmed)}});
}

// ---------------------------------------------------------------- FlowCore --

bool FlowCore::begin(std::vector<SendItem> items, const Limits& limits,
                     std::function<void(const FlowStats&)> on_complete,
                     std::function<void()> timeout_extra) {
  limits_ = limits;
  items_ = std::move(items);
  acked_.assign(items_.size(), 0);
  last_sent_.assign(items_.size(), -1.0);
  next_new_ = 0;
  acked_count_ = 0;
  rto_cur_ = limits_.rto;
  active_ = true;
  stats_ = FlowStats{};
  stats_.start_time = host_.sim().now();
  stats_.packets = items_.size();
  on_complete_ = std::move(on_complete);
  timeout_extra_ = std::move(timeout_extra);
  ++msg_epoch_;
  if (auto* m = monitor_of(host_)) {
    m->on_flow_begin(this, flow_id_, host_.sim().now());
  }
  if (items_.empty()) {
    complete();
    return true;
  }
  if (limits_.flow_deadline > 0) {
    // A dedicated one-shot timer makes the deadline exact instead of
    // quantized to the (backed-off) RTO grid.
    host_.sim().schedule(limits_.flow_deadline, [this, me = msg_epoch_] {
      if (active_ && me == msg_epoch_) fail();
    });
  }
  return false;
}

void FlowCore::abort() {
  if (active_) fail();
}

bool FlowCore::emit_data(std::uint32_t seq, bool is_retransmit) {
  const SendItem& item = items_[seq];
  Frame f;
  f.id = host_.sim().next_frame_id();
  f.src = host_.id();
  f.dst = dst_;
  f.flow_id = flow_id_;
  f.seq = seq;
  f.kind = FrameKind::kData;
  f.size_bytes = item.size_bytes;
  f.trim_size_bytes = item.trim_size_bytes;
  f.cargo = item.cargo;
  const bool first_send = last_sent_[seq] < 0;
  last_sent_[seq] = host_.sim().now();
  ++stats_.frames_sent;
  stats_.bytes_sent += f.size_bytes;
  if (is_retransmit) ++stats_.retransmits;
  host_.send(std::move(f));
  return first_send;
}

void FlowCore::send_next_new() {
  if (next_new_ >= items_.size()) return;
  emit_data(static_cast<std::uint32_t>(next_new_), false);
  ++next_new_;
}

void FlowCore::retransmit_oldest() {
  for (std::size_t seq = 0; seq < next_new_; ++seq) {
    if (acked_[seq] == 0) {
      emit_data(static_cast<std::uint32_t>(seq), true);
      break;
    }
  }
}

bool FlowCore::mark_acked(std::uint32_t seq, bool was_trimmed) {
  if (seq >= items_.size() || acked_[seq] != 0) return false;
  acked_[seq] = 1;
  ++acked_count_;
  if (was_trimmed) ++stats_.acked_trimmed;
  else ++stats_.acked_full;
  // Forward progress: reset the RTO clock.
  rto_cur_ = limits_.rto;
  if (auto* m = monitor_of(host_)) {
    m->on_flow_progress(this, flow_id_, host_.sim().now());
  }
  return true;
}

void FlowCore::handle_nack(std::uint32_t seq) {
  if (seq < items_.size() && acked_[seq] == 0 &&
      host_.sim().now() - last_sent_[seq] >= limits_.rto * 0.5) {
    if (budget_exhausted()) {
      fail();
      return;
    }
    emit_data(seq, true);
  }
}

void FlowCore::fast_retransmit(std::uint32_t seq) {
  if (seq < next_new_ && seq < items_.size() && acked_[seq] == 0 &&
      host_.sim().now() - last_sent_[seq] >= limits_.rto * 0.5) {
    emit_data(seq, true);
  }
}

void FlowCore::arm_timer() {
  const std::uint64_t epoch = ++timer_epoch_;
  host_.sim().schedule(rto_cur_, [this, epoch] { on_timeout(epoch); });
}

void FlowCore::on_timeout(std::uint64_t epoch) {
  if (!active_ || epoch != timer_epoch_) return;
  if (budget_exhausted()) {
    // The path is not recovering (dead link, black hole): report failure
    // instead of re-arming forever — the event queue must drain.
    fail();
    return;
  }
  retransmit_oldest();
  if (timeout_extra_) timeout_extra_();
  rto_cur_ = std::min(rto_cur_ * 2.0, limits_.rto_cap);
  arm_timer();
}

void FlowCore::complete() {
  active_ = false;
  ++timer_epoch_;  // cancel pending timers
  stats_.completed = true;
  stats_.end_time = host_.sim().now();
  if (auto* m = monitor_of(host_)) {
    m->on_flow_complete(this, flow_id_, false, stats_.end_time);
  }
  record_flow_telemetry(stats_);
  if (on_complete_) on_complete_(stats_);
}

void FlowCore::fail() {
  active_ = false;
  ++timer_epoch_;  // cancel pending timers
  stats_.completed = false;
  stats_.failed = true;
  stats_.end_time = host_.sim().now();
  if (auto* m = monitor_of(host_)) {
    m->on_flow_complete(this, flow_id_, true, stats_.end_time);
  }
  record_flow_telemetry(stats_);
  if (on_complete_) on_complete_(stats_);
}

// ------------------------------------------------------------ ReceiverCore --

ReceiverCore::ReceiverCore(Host& host, std::uint32_t flow_id,
                           std::size_t expected_packets, Policy policy,
                           std::function<void(const Frame&)> on_data,
                           std::function<void(const ReceiverStats&)> on_complete)
    : host_(host),
      flow_id_(flow_id),
      policy_(policy),
      delivered_(expected_packets, 0),
      on_data_(std::move(on_data)),
      on_complete_(std::move(on_complete)) {
  stats_.expected = expected_packets;
}

std::uint32_t ReceiverCore::cumulative_ack() const noexcept {
  while (cum_cache_ < delivered_.size() && delivered_[cum_cache_] != 0) {
    ++cum_cache_;
  }
  return static_cast<std::uint32_t>(cum_cache_);
}

void ReceiverCore::send_ack(const Frame& data, bool was_trimmed) {
  Frame ack;
  ack.id = host_.sim().next_frame_id();
  ack.src = host_.id();
  ack.dst = data.src;
  ack.flow_id = flow_id_;
  ack.kind = FrameKind::kAck;
  ack.size_bytes = kControlFrameBytes;
  ack.ack_echo = data.seq;
  if (policy_.cumulative_ack) ack.ack_seq = cumulative_ack();
  ack.ack_was_trimmed = was_trimmed;
  if (policy_.echo_ecn) ack.ecn = data.ecn;  // echo the CE mark (DCTCP)
  host_.send(std::move(ack));
}

void ReceiverCore::send_nack(const Frame& data) {
  Frame nack;
  nack.id = host_.sim().next_frame_id();
  nack.src = host_.id();
  nack.dst = data.src;
  nack.flow_id = flow_id_;
  nack.kind = FrameKind::kNack;
  nack.size_bytes = kControlFrameBytes;
  nack.ack_echo = data.seq;
  ++stats_.nacks_sent;
  host_.send(std::move(nack));
}

bool ReceiverCore::pre_deliver(const Frame& frame) {
  if (frame.kind != FrameKind::kData) return false;
  InvariantMonitor* monitor = monitor_of(host_);
  if (frame.seq >= delivered_.size()) {  // malformed
    if (monitor != nullptr) {
      monitor->resolve_delivery(InvariantMonitor::Outcome::kMalformed);
    }
    return false;
  }
  if (stats_.delivered_full + stats_.delivered_trimmed == 0) {
    stats_.first_frame_time = host_.sim().now();
  }

  if (delivered_[frame.seq] != 0) {
    // Duplicate (retransmission after a lost ACK): re-ACK, don't re-deliver.
    ++stats_.duplicate_frames;
    send_ack(frame, delivered_[frame.seq] == 2);
    if (monitor != nullptr) {
      monitor->resolve_delivery(InvariantMonitor::Outcome::kDuplicate);
    }
    return false;
  }

  if (frame.corrupted) {
    // Checksum mismatch (core/wire.* head_crc/tail_crc): the payload is
    // mangled, not trimmed — never deliver it as a gradient; NACK it.
    ++stats_.corrupt_frames;
    count_corrupt_detected();
    if (test_swallow_corrupt_frames()) {
      // Mutation under test: the NACK (and its delivery-outcome report) is
      // skipped, so the monitor sees the frame vanish.
      return false;
    }
    send_nack(frame);
    if (monitor != nullptr) {
      monitor->resolve_delivery(InvariantMonitor::Outcome::kCorruptNacked);
    }
    return false;
  }

  if (frame.trimmed && !policy_.trimmed_is_delivered) {
    // Reliable semantics: the payload is gone; demand a retransmission.
    send_nack(frame);
    if (monitor != nullptr) {
      monitor->resolve_delivery(InvariantMonitor::Outcome::kTrimRejected);
    }
    return false;
  }
  return true;
}

void ReceiverCore::deliver(const Frame& frame) {
  delivered_[frame.seq] = frame.trimmed ? 2 : 1;
  ++delivered_count_;
  if (frame.trimmed) ++stats_.delivered_trimmed;
  else ++stats_.delivered_full;
  if (auto* m = monitor_of(host_)) {
    m->resolve_delivery(InvariantMonitor::Outcome::kDelivered);
  }
  if (on_data_) on_data_(frame);
  send_ack(frame, frame.trimmed);
}

void ReceiverCore::maybe_complete() {
  if (complete()) {
    stats_.complete_time = host_.sim().now();
    if (on_complete_) on_complete_(stats_);
  }
}

}  // namespace trimgrad::net
