#include "net/injector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace trimgrad::net {

namespace {
constexpr std::uint8_t kDropLevel = 0xff;
}

InjectionStats TrimInjector::apply(std::vector<core::GradientPacket>& packets,
                                   std::uint64_t epoch,
                                   core::TrimTranscript* record) {
  InjectionStats st;
  st.packets = packets.size();
  std::vector<core::GradientPacket> kept;
  kept.reserve(packets.size());
  for (auto& pkt : packets) {
    if (rng_.bernoulli(cfg_.drop_rate)) {
      ++st.dropped;
      if (record) record->record(epoch, pkt.msg_id, pkt.seq, kDropLevel);
      continue;
    }
    if (rng_.bernoulli(cfg_.trim_rate)) {
      pkt.trim();
      ++st.trimmed;
      if (record) record->record(epoch, pkt.msg_id, pkt.seq, 1);
    }
    kept.push_back(std::move(pkt));
  }
  packets = std::move(kept);
  return st;
}

InjectionStats TrimInjector::apply_multilevel(
    std::vector<core::MlPacket>& packets, std::uint64_t epoch,
    double mid_fraction, core::TrimTranscript* record) {
  InjectionStats st;
  st.packets = packets.size();
  std::vector<core::MlPacket> kept;
  kept.reserve(packets.size());
  for (auto& pkt : packets) {
    if (rng_.bernoulli(cfg_.drop_rate)) {
      ++st.dropped;
      if (record) record->record(epoch, pkt.msg_id, pkt.seq, kDropLevel);
      continue;
    }
    if (rng_.bernoulli(cfg_.trim_rate)) {
      const bool mild = rng_.bernoulli(mid_fraction);
      pkt.trim_to(mild ? core::TrimLevel::kMid : core::TrimLevel::kHead);
      ++st.trimmed;
      if (record)
        record->record(epoch, pkt.msg_id, pkt.seq,
                       static_cast<std::uint8_t>(pkt.level));
    }
    kept.push_back(std::move(pkt));
  }
  packets = std::move(kept);
  return st;
}

InjectionStats TrimInjector::replay(std::vector<core::GradientPacket>& packets,
                                    std::uint64_t epoch,
                                    const core::TrimTranscript& transcript) {
  if (transcript.size() > 0 && !transcript.contains_epoch(epoch)) {
    throw std::invalid_argument(
        "TrimInjector::replay: transcript has no events for epoch " +
        std::to_string(epoch) + " — wrong transcript for this run?");
  }
  InjectionStats st;
  st.packets = packets.size();
  std::vector<core::GradientPacket> kept;
  kept.reserve(packets.size());
  for (auto& pkt : packets) {
    const auto level = transcript.lookup(epoch, pkt.msg_id, pkt.seq);
    if (level.has_value() && *level == kDropLevel) {
      ++st.dropped;
      continue;
    }
    if (level.has_value()) {
      pkt.trim();
      ++st.trimmed;
    }
    kept.push_back(std::move(pkt));
  }
  packets = std::move(kept);
  return st;
}

}  // namespace trimgrad::net
