# Empty compiler generated dependencies file for congestion_fabric.
# This may be replaced when dependencies are built.
