// Experiment F5 (DESIGN.md): Figure 5 — per-round time breakdown, encoding
// overhead, and the baseline's drop intolerance (§4.4 in-text numbers).
//
// Part 1: compute / encode / comm / decode per training round for every
// scheme over a clean network. Paper shape: trimmable encoding adds
// measurable overhead, RHT ~18 % slower than the scalar schemes.
//
// Part 2: the reliable baseline's round time vs drop rate at paper-scale
// message sizes (25 MB buckets, 100 Gbps, fast-retransmit recovery).
// Paper: 0.15-0.25 % drops tolerable, 1-2 % => 5-10x slowdown.
#include <cstdio>

#include "collective/inject_channel.h"
#include "ddp_sweep.h"

int main() {
  using namespace trimgrad;
  bench::SweepConfig cfg = bench::scaled_sweep();
  cfg.epochs = 3;  // breakdown stabilizes quickly

  std::printf("# Figure 5 reproduction, part 1: round breakdown (no trim)\n");
  std::printf("%-9s %11s %11s %11s %11s %8s %9s\n", "scheme", "compute_ms",
              "encode_ms", "comm_ms", "decode_ms", "total", "vs_base");
  double base_total = 0;
  double scalar_encode_ms = 0;
  int scalar_count = 0;
  double rht_encode_ms = 0;
  for (core::Scheme scheme : bench::all_schemes()) {
    const auto cell = bench::run_cell(cfg, scheme, 0.0);
    const auto& rb = cell.records.back().mean_round;
    const double total = rb.total() * 1e3;
    if (scheme == core::Scheme::kBaseline) base_total = total;
    if (core::is_scalar(scheme)) {
      scalar_encode_ms += rb.encode_s * 1e3;
      ++scalar_count;
    }
    if (scheme == core::Scheme::kRHT) rht_encode_ms = rb.encode_s * 1e3;
    std::printf("%-9s %11.3f %11.3f %11.3f %11.3f %8.3f %8.2fx\n",
                core::to_string(scheme), rb.compute_s * 1e3, rb.encode_s * 1e3,
                rb.comm_s * 1e3, rb.decode_s * 1e3, total,
                base_total > 0 ? total / base_total : 0.0);
    std::fflush(stdout);
  }
  if (scalar_count > 0 && scalar_encode_ms > 0) {
    std::printf("# RHT encode vs scalar mean encode: %.2fx "
                "(paper: ~1.18x)\n\n",
                rht_encode_ms / (scalar_encode_ms / scalar_count));
  }

  std::printf("# Figure 5 part 2 / Sec 4.4: reliable baseline vs drop rate\n");
  std::printf("# paper-scale message: 25 MB bucket, 100 Gbps, 60 us "
              "recovery penalty per drop\n");
  std::printf("%8s %14s %10s %12s\n", "drop%", "comm_ms", "slowdown",
              "retransmits");
  const std::size_t n = 25ull * 1024 * 1024 / 4;  // 25 MB of float32
  std::vector<float> grad(n, 0.125f);
  double clean_ms = 0;
  for (double drop : {0.0, 0.0005, 0.0015, 0.0025, 0.01, 0.02, 0.05}) {
    collective::InjectChannel::Config ccfg;
    ccfg.world = 2;
    ccfg.reliable = true;
    ccfg.injector.drop_rate = drop;
    ccfg.time.drop_penalty = 60e-6;
    collective::InjectChannel channel(ccfg);
    collective::AllReducer reducer(channel,
                                   core::CodecConfig{core::Scheme::kBaseline});
    const auto result = reducer.run({grad, grad}, 1, 1);
    const double ms = result.stats.comm_time * 1e3;
    if (drop == 0.0) clean_ms = ms;
    std::printf("%7.2f%% %14.3f %9.2fx %12llu\n", drop * 100, ms,
                clean_ms > 0 ? ms / clean_ms : 1.0,
                static_cast<unsigned long long>(result.stats.retransmits));
    std::fflush(stdout);
  }
  std::printf("# (expected: <=0.25%% drops ~1x; 1-2%% drops => 5-10x)\n");
  std::printf("# note: comm-only inflation. Against a ~10 ms compute round "
              "the <=0.25%% rows are a ~1.05x round slowdown (tolerable, "
              "per the paper), while 1-2%% dominate the round.\n");
  return 0;
}
