# Empty compiler generated dependencies file for test_core_eden.
# This may be replaced when dependencies are built.
