// Experiment F4 (DESIGN.md): Figure 4 — time-to-baseline-accuracy vs trim
// rate, with the no-congestion NCCL-baseline as the horizontal reference.
//
// For each scheme and trim rate, we report the first simulated time at
// which top-1 accuracy reaches 95 % of the uncongested baseline's final
// accuracy ("-" = never reached within the budget). The paper's shape:
//  * below ~0.5 % trim every encoding is slower than the plain baseline;
//  * at mid rates the cheap scalar schemes (sq/sd) win;
//  * at 25-50 % only RHT still gets there.
#include <algorithm>
#include <cstdio>

#include "ddp_sweep.h"

namespace {

/// First sim time reaching the target top-1; negative if never.
double time_to_accuracy(const std::vector<trimgrad::ddp::EpochRecord>& recs,
                        double target) {
  for (const auto& r : recs) {
    if (r.top1 >= target) return r.sim_time_s;
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace trimgrad;
  const bench::SweepConfig cfg = bench::scaled_sweep();

  // The grey line: baseline scheme over a clean network.
  const auto clean = bench::run_cell(cfg, core::Scheme::kBaseline, 0.0);
  // Best epoch, not last: the small test set makes per-epoch accuracy
  // noisy, and "baseline accuracy" means the level the baseline attains.
  double base_acc = 0;
  for (const auto& r : clean.records) base_acc = std::max(base_acc, r.top1);
  const double target = base_acc * 0.8;
  const double base_time = time_to_accuracy(clean.records, target);
  std::printf("# Figure 4 reproduction: time-to-baseline-accuracy\n");
  std::printf("# baseline final top1=%.3f target=%.3f baseline_time=%.4fs\n",
              base_acc, target, base_time);
  std::printf("%-9s", "rate%");
  for (core::Scheme s : bench::all_schemes())
    std::printf(" %10s", core::to_string(s));
  std::printf("\n");

  for (double rate : bench::paper_trim_rates()) {
    std::printf("%8.1f%%", rate * 100);
    for (core::Scheme scheme : bench::all_schemes()) {
      const auto cell =
          bench::run_cell(cfg, bench::sweep_spec(cfg, scheme, rate));
      const double t = time_to_accuracy(cell.records, target);
      if (t < 0) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.4f", t);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("# ('-' = target accuracy never reached within %zu epochs)\n",
              cfg.epochs);
  return 0;
}
