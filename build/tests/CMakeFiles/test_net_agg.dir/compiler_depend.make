# Empty compiler generated dependencies file for test_net_agg.
# This may be replaced when dependencies are built.
