file(REMOVE_RECURSE
  "CMakeFiles/fsdp_allgather.dir/fsdp_allgather.cpp.o"
  "CMakeFiles/fsdp_allgather.dir/fsdp_allgather.cpp.o.d"
  "fsdp_allgather"
  "fsdp_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdp_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
