#include "net/pull_transport.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

struct Bench {
  Simulator sim;
  Dumbbell topo;

  explicit Bench(QueuePolicy policy, double core_gbps = 10.0,
                 std::size_t queue_kb = 15) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {core_gbps * 1e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = queue_kb * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 6, 2, cfg);
  }
};

PullConfig cfg_for(double bottleneck_gbps) {
  PullConfig cfg;
  cfg.initial_burst = 8;
  cfg.access_bandwidth_bps = bottleneck_gbps * 1e9;
  return cfg;
}

TEST(PullTransport, SingleFlowCompletes) {
  Bench b(QueuePolicy::kTrim, 10.0, 2048);
  PullFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                cfg_for(10.0), 64);
  flow.start_at(0.0, make_bulk_items(64, 1500, 88));
  b.sim.run();
  EXPECT_TRUE(flow.done());
  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(flow.stats().acked_full + flow.stats().acked_trimmed, 64u);
}

TEST(PullTransport, PacingBoundsThroughputToPullRate) {
  // One flow, deep buffers: FCT ~ n_packets x pull_interval (plus the
  // initial burst), i.e. the receiver's pacer is the clock.
  Bench b(QueuePolicy::kTrim, 10.0, 2048);
  PullConfig cfg = cfg_for(10.0);
  PullFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                100);
  flow.start_at(0.0, make_bulk_items(100, 1500, 88));
  b.sim.run();
  const double interval = cfg.effective_pull_interval();
  EXPECT_GE(flow.stats().fct(), (100 - cfg.initial_burst - 1) * interval);
  EXPECT_LT(flow.stats().fct(), 100 * interval * 1.5 + 1e-4);
}

TEST(PullTransport, IncastTrimsFarLessThanWindowTransport) {
  // The NDP claim: receiver pacing confines congestion to the first-RTT
  // burst, so a 6-to-1 incast trims an order of magnitude less than
  // window-clocked senders pushing the same bytes.
  const std::size_t pkts = 128;
  std::uint64_t window_trims = 0, pull_trims = 0;
  {
    Bench b(QueuePolicy::kTrim);
    IncastPattern::Config icfg;
    icfg.packets_per_sender = pkts;
    icfg.trim_size = 88;
    icfg.transport = TransportConfig::trim_aware();
    IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0],
                         icfg);
    b.sim.run();
    for (const auto& st : incast.flow_stats()) window_trims += st.acked_trimmed;
    EXPECT_EQ(incast.completed_count(), 6u);
  }
  {
    Bench b(QueuePolicy::kTrim);
    auto& rx_host = static_cast<Host&>(b.sim.node(b.topo.right_hosts[0]));
    // One pacer per receiving host, shared across the fan-in (NDP model).
    PullPacer pacer(rx_host, cfg_for(10.0).effective_pull_interval());
    std::vector<std::unique_ptr<PullFlow>> flows;
    std::uint32_t id = 1;
    for (NodeId src : b.topo.left_hosts) {
      auto f = std::make_unique<PullFlow>(b.sim, src, b.topo.right_hosts[0],
                                          id++, cfg_for(10.0), pkts, nullptr,
                                          &pacer);
      f->start_at(0.0, make_bulk_items(pkts, 1500, 88));
      flows.push_back(std::move(f));
    }
    b.sim.run();
    EXPECT_GT(pacer.emitted(), 0u);
    for (const auto& f : flows) {
      EXPECT_TRUE(f->done());
      pull_trims += f->stats().acked_trimmed;
    }
  }
  EXPECT_GT(window_trims, 0u);
  EXPECT_LT(pull_trims * 5, window_trims)
      << "pull pacing should cut trims at least 5x";
}

TEST(PullTransport, SurvivesDropTailFabric) {
  // Pulls/ACKs can be lost on a drop-tail fabric; the RTO path must still
  // finish the flow.
  Bench b(QueuePolicy::kDropTail, 10.0, 10);
  std::vector<std::unique_ptr<PullFlow>> flows;
  std::uint32_t id = 1;
  for (NodeId src : b.topo.left_hosts) {
    auto f = std::make_unique<PullFlow>(b.sim, src, b.topo.right_hosts[0],
                                        id++, cfg_for(10.0), 48);
    f->start_at(0.0, make_bulk_items(48, 1500, 0));
    flows.push_back(std::move(f));
  }
  b.sim.run();
  for (const auto& f : flows) {
    EXPECT_TRUE(f->done());
    EXPECT_EQ(f->stats().acked_full, 48u);
  }
}

TEST(PullTransport, TrimmedArrivalsAreNotRetransmitted) {
  Bench b(QueuePolicy::kTrim, 10.0, 10);
  std::vector<std::unique_ptr<PullFlow>> flows;
  std::uint32_t id = 1;
  for (NodeId src : b.topo.left_hosts) {
    PullConfig cfg = cfg_for(10.0);
    cfg.initial_burst = 32;  // provoke first-burst trimming
    auto f = std::make_unique<PullFlow>(b.sim, src, b.topo.right_hosts[0],
                                        id++, cfg, 64);
    f->start_at(0.0, make_bulk_items(64, 1500, 88));
    flows.push_back(std::move(f));
  }
  b.sim.run();
  std::uint64_t trims = 0, retx = 0;
  for (const auto& f : flows) {
    trims += f->stats().acked_trimmed;
    retx += f->stats().retransmits;
  }
  EXPECT_GT(trims, 0u);
  EXPECT_EQ(retx, 0u);
}

// RTO-backoff/budget, deadline, and empty-message semantics are covered for
// every registry transport at once in transport_conformance_test.cpp.

TEST(PullTransport, ReceiverOnCompleteFiresOnceWithFinalStats) {
  // Satellite symmetry with Receiver: the pull receiver reports completion
  // through a callback so chaos harnesses can watch both transports the
  // same way.
  Bench b(QueuePolicy::kTrim, 10.0, 2048);
  auto& src = static_cast<Host&>(b.sim.node(b.topo.left_hosts[0]));
  auto& dst = static_cast<Host&>(b.sim.node(b.topo.right_hosts[0]));
  const std::size_t n = 24;
  PullConfig cfg = cfg_for(10.0);
  int fires = 0;
  ReceiverStats final_stats;
  PullReceiver receiver(dst, src.id(), 890, n, cfg, /*on_data=*/{},
                        [&](const ReceiverStats& st) {
                          ++fires;
                          final_stats = st;
                        });
  PullSender sender(src, dst.id(), 890, cfg);
  sender.send_message(make_bulk_items(n, 1500, 88), {});
  b.sim.run();
  EXPECT_TRUE(receiver.complete());
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(final_stats.delivered_full + final_stats.delivered_trimmed, n);
  EXPECT_GT(final_stats.complete_time, 0.0);
}

}  // namespace
}  // namespace trimgrad::net
