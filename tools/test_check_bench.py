#!/usr/bin/env python3
"""Unit tests for check_bench.py exit codes and error messages.

Runs the script as a subprocess (the way CI invokes it) so the tests pin the
actual contract: exit 0 on pass, 1 on malformed input, 2 on regression, and
a clear one-line message -- never a traceback -- on section mismatches.

Stdlib only; executable both as `python3 tools/test_check_bench.py` and
under pytest (the classes are plain unittest.TestCase).
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_bench.py")

PARALLEL_DOC = {
    "hardware_threads": 8,
    "isa": "avx2",
    "smoke": False,
    "deterministic": True,
    "thread_counts": [1, 2],
    "sections": {
        "rht_encode_decode": {"seconds": [1.0, 0.5], "items": 100,
                              "throughput": 100.0},
        "eden_encode_decode": {"seconds": [1.0, 0.5], "items": 100,
                               "throughput": 100.0},
    },
}

SIMSCALE_DOC = {
    "hardware_threads": 8,
    "isa": "avx2",
    "smoke": False,
    "deterministic": True,
    "k": 16,
    "hosts": 1024,
    "events": 2000000,
    "sim_seconds": 0.012,
    "sequential": {"seconds": 1.0, "events_per_sec": 2000000.0},
    "thread_counts": [1, 2, 4, 8],
    "seconds": [1.0, 0.55, 0.3, 0.25],
    "events_per_sec": [2000000.0, 3636363.0, 6666666.0, 8000000.0],
    "speedup": [1.0, 1.818, 3.333, 4.0],
    "hosts_realtime": [24.0, 43.6, 80.0, 96.0],
}


def chaos_cell(transport, scheme, queue, scripts=50):
    return {"transport": transport, "scheme": scheme, "queue": queue,
            "scripts": scripts, "violations": 0, "checks": 250000,
            "repros": 0, "drained": True}


CHAOS_DOC = {
    "smoke": True,
    "k": 4,
    "scripts_total": 200,
    "violations_total": 0,
    "unshrunk_violations": 0,
    "checks_total": 1000000,
    "drained_all": True,
    "search_completed": True,
    "repros": [],
    "cells": [
        chaos_cell("trim", "rht", "trim"),
        chaos_cell("reliable", "rht", "trim"),
        chaos_cell("pull", "sq", "trim"),
        chaos_cell("ecn", "sign", "ecn"),
    ],
}


ADAPTIVE_DOC = {
    "label": "transport=reliable,scheme=rht,trim=0,policy=aimd-trim",
    "smoke": True,
    "target_loss": 0.5285,
    "adaptive": {"name": "aimd-trim", "tta_s": 0.2044, "final_top1": 0.91,
                 "mean_q": 21.0, "switches": 26},
    "beats_all_fixed": True,
    "deterministic": True,
    "decision_digest": "a9eea140fb5db185",
    "violations": 0,
    "loss_finite": True,
    "fixed": [
        {"name": "rht@31", "tta_s": 0.5997, "final_top1": 0.92},
        {"name": "rht@15", "tta_s": 0.4325, "final_top1": 0.92},
        {"name": "rht@7", "tta_s": -1.0, "final_top1": 0.94},
    ],
}


class CheckBenchHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_check(self, *argv):
        return subprocess.run(
            [sys.executable, CHECK_BENCH, *argv],
            capture_output=True, text=True, check=False)

    def assert_clean_failure(self, proc, code, needle):
        self.assertEqual(proc.returncode, code,
                         f"stdout={proc.stdout!r} stderr={proc.stderr!r}")
        self.assertIn(needle, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)


class ParallelModeTest(CheckBenchHarness):
    def test_well_formed_passes(self):
        cand = self.write("cand.json", PARALLEL_DOC)
        base = self.write("base.json", PARALLEL_DOC)
        proc = self.run_check(cand, "--baseline", base)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_baseline_missing_section_fails_cleanly(self):
        # A fresh run grew a section the committed baseline lacks: must be
        # a clear "regenerate the baseline" failure, not a KeyError.
        stale = copy.deepcopy(PARALLEL_DOC)
        del stale["sections"]["eden_encode_decode"]
        cand = self.write("cand.json", PARALLEL_DOC)
        base = self.write("base.json", stale)
        proc = self.run_check(cand, "--baseline", base)
        self.assert_clean_failure(proc, 1, "regenerate")
        self.assertIn("eden_encode_decode", proc.stderr)

    def test_candidate_missing_section_fails_cleanly(self):
        shrunk = copy.deepcopy(PARALLEL_DOC)
        del shrunk["sections"]["eden_encode_decode"]
        cand = self.write("cand.json", shrunk)
        base = self.write("base.json", PARALLEL_DOC)
        proc = self.run_check(cand, "--baseline", base)
        self.assert_clean_failure(proc, 1, "missing sections")

    def test_regression_exits_two(self):
        slow = copy.deepcopy(PARALLEL_DOC)
        for sec in slow["sections"].values():
            sec["throughput"] = 10.0
        cand = self.write("cand.json", slow)
        base = self.write("base.json", PARALLEL_DOC)
        proc = self.run_check(cand, "--baseline", base,
                              "--max-slowdown", "2.0")
        self.assert_clean_failure(proc, 2, "regressed")

    def test_unparseable_json_exits_one(self):
        cand = self.write("cand.json", "{not json")
        proc = self.run_check(cand)
        self.assert_clean_failure(proc, 1, "cannot parse")


class SimscaleModeTest(CheckBenchHarness):
    def test_well_formed_passes_with_gates(self):
        cand = self.write("cand.json", SIMSCALE_DOC)
        base = self.write("base.json", SIMSCALE_DOC)
        proc = self.run_check("--simscale", cand, "--baseline", base,
                              "--min-speedup", "3.0")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("scaling gate", proc.stdout)

    def test_nondeterministic_run_exits_one(self):
        bad = copy.deepcopy(SIMSCALE_DOC)
        bad["deterministic"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--simscale", cand)
        self.assert_clean_failure(proc, 1, "deterministic")

    def test_missing_key_fails_cleanly(self):
        bad = copy.deepcopy(SIMSCALE_DOC)
        del bad["events_per_sec"]
        cand = self.write("cand.json", bad)
        proc = self.run_check("--simscale", cand)
        self.assert_clean_failure(proc, 1, "events_per_sec")

    def test_speedup_floor_capped_by_hardware(self):
        # Flat scaling on a 1-core machine passes a 3x request: the floor
        # degrades to max(0.8, 0.4*1) = 0.8 and speedup[0] is 1.0.
        flat = copy.deepcopy(SIMSCALE_DOC)
        flat["hardware_threads"] = 1
        flat["seconds"] = [1.0, 1.1, 1.2, 1.3]
        flat["events_per_sec"] = [2e6, 1.8e6, 1.6e6, 1.5e6]
        flat["speedup"] = [1.0, 0.909, 0.833, 0.769]
        cand = self.write("cand.json", flat)
        proc = self.run_check("--simscale", cand, "--min-speedup", "3.0")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("floor 0.80x", proc.stdout)

    def test_speedup_below_floor_exits_two(self):
        flat = copy.deepcopy(SIMSCALE_DOC)
        flat["speedup"] = [1.0, 1.1, 1.2, 1.2]  # 8 cores but no scaling
        cand = self.write("cand.json", flat)
        proc = self.run_check("--simscale", cand, "--min-speedup", "3.0")
        self.assert_clean_failure(proc, 2, "below")

    def test_smoke_run_skips_scaling_gate(self):
        smoke = copy.deepcopy(SIMSCALE_DOC)
        smoke["smoke"] = True
        smoke["speedup"] = [1.0, 1.0, 1.0, 1.0]
        cand = self.write("cand.json", smoke)
        proc = self.run_check("--simscale", cand, "--min-speedup", "3.0")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("scaling gate skipped", proc.stdout)

    def test_events_per_sec_regression_exits_two(self):
        slow = copy.deepcopy(SIMSCALE_DOC)
        slow["events_per_sec"] = [v / 10 for v in slow["events_per_sec"]]
        cand = self.write("cand.json", slow)
        base = self.write("base.json", SIMSCALE_DOC)
        proc = self.run_check("--simscale", cand, "--baseline", base)
        self.assert_clean_failure(proc, 2, "events/sec regressed")


class ChaosSearchModeTest(CheckBenchHarness):
    def test_clean_search_passes(self):
        cand = self.write("cand.json", CHAOS_DOC)
        proc = self.run_check("--chaos-search", cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("0 violations", proc.stdout)

    def test_violation_exits_two_and_names_repros(self):
        bad = copy.deepcopy(CHAOS_DOC)
        bad["violations_total"] = 3
        bad["repros"] = ["REPRO_chaos_trim_rht_7.txt"]
        bad["cells"][0]["violations"] = 3
        bad["cells"][0]["repros"] = 1
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 2, "REPRO_chaos_trim_rht_7.txt")

    def test_unshrunk_violation_exits_two(self):
        bad = copy.deepcopy(CHAOS_DOC)
        bad["unshrunk_violations"] = 1
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 2, "unshrunk")

    def test_too_few_scripts_exits_two(self):
        thin = copy.deepcopy(CHAOS_DOC)
        thin["scripts_total"] = 40
        for cell in thin["cells"]:
            cell["scripts"] = 10
        cand = self.write("cand.json", thin)
        proc = self.run_check("--chaos-search", cand, "--min-scripts", "200")
        self.assert_clean_failure(proc, 2, "below the 200")

    def test_too_few_cells_exits_two(self):
        thin = copy.deepcopy(CHAOS_DOC)
        thin["cells"] = thin["cells"][:2]
        for cell in thin["cells"]:
            cell["scripts"] = 100  # coverage floor met, cell floor not
        cand = self.write("cand.json", thin)
        proc = self.run_check("--chaos-search", cand, "--min-cells", "4")
        self.assert_clean_failure(proc, 2, "cells")

    def test_incomplete_search_exits_two(self):
        bad = copy.deepcopy(CHAOS_DOC)
        bad["search_completed"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 2, "completion")

    def test_undrained_cell_exits_two(self):
        bad = copy.deepcopy(CHAOS_DOC)
        bad["drained_all"] = False
        bad["cells"][2]["drained"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 2, "pull/sq/trim")

    def test_zero_checks_is_malformed(self):
        # A search that never invoked the monitor proves nothing; that is
        # a wiring bug (exit 1), not a property failure (exit 2).
        bad = copy.deepcopy(CHAOS_DOC)
        bad["cells"][1]["checks"] = 0
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 1, "zero invariant checks")

    def test_script_count_mismatch_is_malformed(self):
        bad = copy.deepcopy(CHAOS_DOC)
        bad["scripts_total"] = 300
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 1, "sum to")

    def test_missing_key_fails_cleanly(self):
        bad = copy.deepcopy(CHAOS_DOC)
        del bad["unshrunk_violations"]
        cand = self.write("cand.json", bad)
        proc = self.run_check("--chaos-search", cand)
        self.assert_clean_failure(proc, 1, "unshrunk_violations")


class AdaptiveModeTest(CheckBenchHarness):
    def test_winning_run_passes(self):
        cand = self.write("cand.json", ADAPTIVE_DOC)
        proc = self.run_check("--adaptive", cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("beating all 3 fixed cells", proc.stdout)

    def test_losing_to_a_fixed_cell_exits_two(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["adaptive"]["tta_s"] = 0.50  # slower than rht@15's 0.4325
        bad["beats_all_fixed"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 2, "rht@15")

    def test_never_reaching_target_exits_two(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["adaptive"]["tta_s"] = -1.0
        bad["beats_all_fixed"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 2, "never reached the target")

    def test_nondeterministic_exits_two(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["deterministic"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 2, "diverged across thread counts")

    def test_violations_exit_two(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["violations"] = 2
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 2, "invariant violations")

    def test_zero_switches_exits_two(self):
        # A policy that never changed its decision under phased congestion
        # is not wired into the round loop; the win would be vacuous.
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["adaptive"]["switches"] = 0
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 2, "never switched")

    def test_flag_vs_cells_mismatch_is_malformed(self):
        # beats_all_fixed must agree with the per-cell numbers; disagreement
        # means the producer and the gate diverged (exit 1, not 2).
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["beats_all_fixed"] = False
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 1, "does not match")

    def test_missing_key_fails_cleanly(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        del bad["decision_digest"]
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 1, "decision_digest")

    def test_empty_fixed_grid_is_malformed(self):
        bad = copy.deepcopy(ADAPTIVE_DOC)
        bad["fixed"] = []
        cand = self.write("cand.json", bad)
        proc = self.run_check("--adaptive", cand)
        self.assert_clean_failure(proc, 1, "non-empty array")


if __name__ == "__main__":
    unittest.main(verbosity=2)
