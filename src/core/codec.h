// End-to-end trimmable gradient message codec.
//
// `TrimmableEncoder` turns a flat gradient buffer into a train of
// `GradientPacket`s (plus a small reliable `MessageMeta` carrying the decode
// scales — the paper's "small packets that will not be trimmed").
// `TrimmableDecoder` reconstructs the gradient from whatever arrives: any
// subset of the packets may have been trimmed by switches (tails gone) or
// lost entirely; the decoder degrades gracefully per coordinate.
//
// Scheme-specific behaviour:
//  * kBaseline — raw float32 payload (Fig. 2a). Trimming/losing a packet
//    loses its coordinates outright; the reliable-transport baseline in
//    src/net retransmits instead.
//  * kSign/kSQ/kSD — §3.1 scalar heads with a message-level scale (σ or L).
//  * kRHT — §3.2: the message is split into power-of-two rows (default
//    2^15 entries, the paper's GPU-L1-sized rows), each row independently
//    rotated; packets never span rows, and each row's unbiased scale f is
//    carried in the metadata.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/packet.h"
#include "core/prng.h"

namespace trimgrad::core {

/// Encoder/decoder configuration. Both sides must agree on everything here
/// except `private_seed` (sender-only stochastic-rounding randomness).
struct CodecConfig {
  Scheme scheme = Scheme::kRHT;
  PacketLayout layout{};                     ///< MTU / header / P / Q split
  std::size_t rht_row_len = std::size_t{1} << 15;  ///< RHT row length (pow2)
  std::uint64_t shared_seed = 1;             ///< base seed for SharedRng keys
  std::uint64_t private_seed = 0x5eed;       ///< SQ stochastic rounding
  /// kTopK: fraction of coordinates kept before encoding (clamped to
  /// (0, 1]); the MLT observation puts the near-free share at ~0.8 dropped.
  double topk_keep = 0.25;
  std::size_t lowrank_rank = 4;    ///< kLowRank: target rank r
  unsigned lowrank_iters = 2;      ///< kLowRank: power iterations
  std::size_t lowrank_cols = 64;   ///< kLowRank: reshape width cap

  /// Layout adjusted for the scheme (baseline has no head region).
  PacketLayout effective_layout() const noexcept;
};

/// Reliable side-channel metadata for one encoded message.
struct MessageMeta {
  std::uint32_t msg_id = 0;
  std::uint64_t epoch = 0;
  Scheme scheme = Scheme::kBaseline;
  std::uint32_t total_coords = 0;
  std::uint32_t row_len = 0;        ///< RHT row length; 0 for non-RHT
  float scalar_scale = 0.0f;        ///< σ (sign) or L (SQ/SD); 0 for RHT
  std::vector<float> row_scales;    ///< per-row f for RHT; empty otherwise
  /// kMagnitude: placement permutation (placed[i] = grad[perm[i]]); rides
  /// the reliable channel at ceil(log2 n) bits per entry.
  std::vector<std::uint32_t> perm;
  // kLowRank: matrix shape, component split, and the reliable Q factor.
  std::uint32_t lr_rows = 0, lr_cols = 0;
  std::uint16_t lr_rank = 0;   ///< components encoded per packet
  std::uint16_t lr_head = 0;   ///< components in the untrimmable head region
  std::vector<float> lr_q;     ///< m×r column-major, orthonormal

  /// Modeled wire size of the metadata packet(s): header + fixed fields +
  /// one float per row scale (+ the magnitude permutation / low-rank Q
  /// factor when present). Counted against the reliable channel.
  std::size_t wire_bytes() const noexcept;
};

/// Result of encoding one message.
struct EncodedMessage {
  std::vector<GradientPacket> packets;
  MessageMeta meta;

  std::size_t total_wire_bytes() const noexcept;  ///< packets + metadata
};

/// How each coordinate was recovered, for accounting/tests.
struct DecodeStats {
  std::size_t total_coords = 0;
  std::size_t full_coords = 0;     ///< tail survived: (near-)exact decode
  std::size_t trimmed_coords = 0;  ///< head-only decode
  std::size_t lost_coords = 0;     ///< packet never arrived: zero-filled
};

struct DecodeResult {
  std::vector<float> values;
  DecodeStats stats;
};

/// Gradient → trimmable packets.
class TrimmableEncoder {
 public:
  explicit TrimmableEncoder(CodecConfig cfg);

  /// Encode a gradient buffer as message `msg_id` of `epoch`. Deterministic
  /// given the config and inputs, except for SQ's stochastic rounding which
  /// draws from the encoder's private RNG stream.
  EncodedMessage encode(std::span<const float> grad, std::uint32_t msg_id,
                        std::uint64_t epoch);

  const CodecConfig& config() const noexcept { return cfg_; }

 private:
  CodecConfig cfg_;
  Xoshiro256 private_rng_;
};

/// Trimmable packets (any subset trimmed or missing) → gradient estimate.
class TrimmableDecoder {
 public:
  explicit TrimmableDecoder(CodecConfig cfg) : cfg_(std::move(cfg)) {}

  /// Decode from received packets + reliable metadata. Packets may arrive
  /// in any order; missing coordinates decode to 0.
  DecodeResult decode(std::span<const GradientPacket> packets,
                      const MessageMeta& meta) const;

  const CodecConfig& config() const noexcept { return cfg_; }

 private:
  CodecConfig cfg_;
};

}  // namespace trimgrad::core
