file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptiveq.dir/bench_ablation_adaptiveq.cpp.o"
  "CMakeFiles/bench_ablation_adaptiveq.dir/bench_ablation_adaptiveq.cpp.o.d"
  "bench_ablation_adaptiveq"
  "bench_ablation_adaptiveq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptiveq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
