// Reproducible training runs via trim transcripts (paper §5.4).
//
//   $ ./examples/replay_transcript
//
// Run 1 trains under live probabilistic trimming while recording every trim
// decision into a transcript. Run 2 replays the transcript over a clean
// channel — and reproduces run 1's decoded gradients, and therefore its
// model, bit for bit.
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/codec.h"
#include "core/stats.h"
#include "core/transcript.h"
#include "net/injector.h"

int main() {
  using namespace trimgrad;

  core::CodecConfig cfg;
  cfg.scheme = core::Scheme::kRHT;
  cfg.rht_row_len = std::size_t{1} << 12;
  core::TrimmableEncoder encoder(cfg);
  core::TrimmableDecoder decoder(cfg);

  // --- Run 1: live congestion, recording. -------------------------------
  net::TrimInjector injector({/*trim_rate=*/0.3, /*drop_rate=*/0.02, 2024});
  core::TrimTranscript transcript;
  core::Xoshiro256 rng(7);

  std::vector<std::vector<float>> run1_decodes;
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    std::vector<float> grad(50'000);
    for (auto& g : grad) g = static_cast<float>(rng.gaussian());
    auto msg = encoder.encode(grad, /*msg_id=*/epoch, epoch);
    const auto st = injector.apply(msg.packets, epoch, &transcript);
    run1_decodes.push_back(decoder.decode(msg.packets, msg.meta).values);
    std::printf("run1 epoch %llu: %zu trimmed, %zu dropped of %zu packets\n",
                static_cast<unsigned long long>(epoch), st.trimmed, st.dropped,
                st.packets);
  }

  // Persist the transcript like a training framework would.
  std::stringstream storage;
  transcript.save(storage);
  std::printf("transcript: %zu events, %zu bytes serialized\n\n",
              transcript.size(), storage.str().size());

  // --- Run 2: clean network, replay from the loaded transcript. ----------
  const core::TrimTranscript loaded = core::TrimTranscript::load(storage);
  core::Xoshiro256 rng2(7);  // same data order as run 1
  bool all_identical = true;
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    std::vector<float> grad(50'000);
    for (auto& g : grad) g = static_cast<float>(rng2.gaussian());
    auto msg = encoder.encode(grad, epoch, epoch);
    net::TrimInjector::replay(msg.packets, epoch, loaded);
    const auto values = decoder.decode(msg.packets, msg.meta).values;
    const bool identical = values == run1_decodes[epoch];
    all_identical = all_identical && identical;
    std::printf("run2 epoch %llu: decoded gradient %s run 1's\n",
                static_cast<unsigned long long>(epoch),
                identical ? "IDENTICAL to" : "DIFFERS from");
  }
  std::printf("\nreproducibility: %s\n", all_identical ? "PASS" : "FAIL");
  return all_identical ? 0 : 1;
}
