// Wire-format serialization of trimmable packets and metadata.
//
// Everything else in the library models packets as structs; this module
// pins down the actual byte layout, so that (a) a real implementation could
// interoperate, and (b) the defining property of the design can be tested
// literally: *truncating the serialized bytes at the trim point and parsing
// what remains yields exactly the trimmed packet*.
//
// Packet layout (application header; rides inside the paper's modeled
// 42-byte Ethernet/IP/UDP envelope, which is accounted separately):
//
//   offset  size  field
//   0       4     magic "TGP1"
//   4       4     msg_id        (little-endian u32)
//   8       4     row_id
//   12      4     coord_base
//   16      2     n_coords      (u16)
//   18      2     seq
//   20      1     scheme
//   21      1     p_bits
//   22      1     q_bits
//   23      1     flags         (bit 0: trimmed)
//   24      2     head_bytes    (u16; length of the head region)
//   26      2     tail_bytes    (u16; length of the tail region AS SENT)
//   28      —     head region bytes, then tail region bytes
//
// The trim point of a serialized packet is 28 + head_bytes: a switch that
// cuts the buffer there produces a shorter, still-parsable packet (the
// parser infers trimming from the missing tail; it does not trust flags).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/codec.h"

namespace trimgrad::core {

inline constexpr std::size_t kWireHeaderBytes = 28;
inline constexpr std::uint32_t kWireMagic = 0x31504754;  // "TGP1" LE

/// Serialize a packet to its exact wire bytes (application layer).
std::vector<std::uint8_t> serialize_packet(const GradientPacket& pkt);

/// Trim point of a serialized packet: keep this many bytes to keep the
/// whole head region.
std::size_t wire_trim_point(const GradientPacket& pkt) noexcept;

/// Parse a (possibly byte-truncated) buffer. Returns nullopt on malformed
/// input: bad magic, header truncated mid-field, a cut inside the head
/// region, or trailing garbage. A buffer cut anywhere in the tail region
/// parses as a trimmed packet with the tail dropped (what a trimming switch
/// produces); bit-exact tails require the full buffer.
std::optional<GradientPacket> parse_packet(std::span<const std::uint8_t> data);

/// Serialize / parse the reliable metadata (never trimmed, so symmetric).
std::vector<std::uint8_t> serialize_meta(const MessageMeta& meta);
std::optional<MessageMeta> parse_meta(std::span<const std::uint8_t> data);

}  // namespace trimgrad::core
