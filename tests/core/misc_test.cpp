// Tests for sparsify (§5.2), transcript (§5.4) and magnitude layout (§2).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/magnitude.h"
#include "core/prng.h"
#include "core/sparsify.h"
#include "core/stats.h"
#include "core/transcript.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

// ---- sparsify ----

TEST(Sparsify, KeepsExactlyTopK) {
  std::vector<float> v = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f};
  topk_sparsify_inplace(v, 0.5);  // keep ceil(3) = 3
  std::size_t nonzero = 0;
  for (float x : v) nonzero += x != 0.0f ? 1 : 0;
  EXPECT_EQ(nonzero, 3u);
  EXPECT_FLOAT_EQ(v[1], -5.0f);
  EXPECT_FLOAT_EQ(v[3], 3.0f);
  EXPECT_FLOAT_EQ(v[5], 1.0f);
}

TEST(Sparsify, KeepAllIsNoOp) {
  auto v = gaussian_vec(100, 1);
  auto orig = v;
  topk_sparsify_inplace(v, 1.0);
  EXPECT_EQ(v, orig);
}

TEST(Sparsify, KeepNoneZerosEverything) {
  auto v = gaussian_vec(100, 2);
  topk_sparsify_inplace(v, 0.0);
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(Sparsify, HandlesTiesDeterministically) {
  std::vector<float> v = {1.0f, 1.0f, 1.0f, 1.0f};
  topk_sparsify_inplace(v, 0.5);
  std::size_t nonzero = 0;
  for (float x : v) nonzero += x != 0.0f ? 1 : 0;
  EXPECT_EQ(nonzero, 2u);
}

TEST(Sparsify, TopkIndicesAreTheLargest) {
  std::vector<float> v = {0.1f, -5.0f, 0.2f, 3.0f};
  auto idx = topk_indices(v, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_TRUE((idx[0] == 1 && idx[1] == 3) || (idx[0] == 3 && idx[1] == 1));
}

TEST(Sparsify, EnergyFractionMatchesMltObservation) {
  // MLT/§2: dropping the smallest 20 % of gaussian-like gradients loses very
  // little L2 mass — the top 80 % keep the overwhelming share.
  auto v = gaussian_vec(100000, 3);
  const double kept = topk_energy_fraction(v, 0.8);
  EXPECT_GT(kept, 0.97);
  // ... but the top 20 % alone already hold most of the energy.
  EXPECT_GT(topk_energy_fraction(v, 0.2), 0.5);
}

TEST(Sparsify, EnergyFractionIsMonotone) {
  auto v = gaussian_vec(10000, 4);
  double prev = 0;
  for (double r : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    const double e = topk_energy_fraction(v, r);
    EXPECT_GE(e, prev);
    prev = e;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

// ---- transcript ----

TEST(Transcript, RecordAndLookup) {
  TrimTranscript t;
  t.record(3, 14, 7, 1);
  t.record(3, 14, 9, 2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup(3, 14, 7).value(), 1);
  EXPECT_EQ(t.lookup(3, 14, 9).value(), 2);
  EXPECT_FALSE(t.lookup(3, 14, 8).has_value());
  EXPECT_FALSE(t.lookup(4, 14, 7).has_value());
}

TEST(Transcript, SaveLoadRoundTrip) {
  TrimTranscript t;
  for (int i = 0; i < 100; ++i)
    t.record(i % 5, i % 11, static_cast<std::uint16_t>(i),
             static_cast<std::uint8_t>(1 + i % 2));
  std::stringstream ss;
  t.save(ss);
  const TrimTranscript back = TrimTranscript::load(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.lookup(2, 7, 7), t.lookup(2, 7, 7));
}

TEST(Transcript, EmptyTranscriptSavesNothing) {
  TrimTranscript t;
  std::stringstream ss;
  t.save(ss);
  EXPECT_TRUE(ss.str().empty());
  EXPECT_EQ(TrimTranscript::load(ss).size(), 0u);
}

TEST(Transcript, EventsPreserveOrder) {
  TrimTranscript t;
  t.record(1, 1, 5);
  t.record(1, 1, 2);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].seq, 5);
  EXPECT_EQ(t.events()[1].seq, 2);
}

// ---- magnitude layout ----

TEST(Magnitude, OrderSortsByAbsDescending) {
  std::vector<float> v = {0.5f, -3.0f, 2.0f, -0.1f};
  auto perm = magnitude_order(v);
  EXPECT_EQ(perm, (std::vector<std::uint32_t>{1, 2, 0, 3}));
}

TEST(Magnitude, StableForTies) {
  std::vector<float> v = {1.0f, -1.0f, 1.0f};
  auto perm = magnitude_order(v);
  EXPECT_EQ(perm, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Magnitude, ApplyInvertRoundTrip) {
  auto v = gaussian_vec(1000, 5);
  auto perm = magnitude_order(v);
  auto placed = apply_permutation(v, perm);
  std::vector<std::uint8_t> all_survive(v.size(), 1);
  auto back = invert_permutation(placed, perm, all_survive);
  EXPECT_EQ(back, v);
}

TEST(Magnitude, PlacedValuesAreSorted) {
  auto v = gaussian_vec(500, 6);
  auto placed = apply_permutation(v, magnitude_order(v));
  for (std::size_t i = 1; i < placed.size(); ++i)
    EXPECT_GE(std::fabs(placed[i - 1]), std::fabs(placed[i]));
}

TEST(Magnitude, TrimmingTailLosesOnlySmallCoordinates) {
  // The §2 strawman's selling point: losing the last 20 % of the placement
  // order costs almost no L2 mass.
  auto v = gaussian_vec(10000, 7);
  auto perm = magnitude_order(v);
  auto placed = apply_permutation(v, perm);
  std::vector<std::uint8_t> survived(v.size(), 1);
  for (std::size_t i = v.size() * 8 / 10; i < v.size(); ++i) survived[i] = 0;
  auto back = invert_permutation(placed, perm, survived);
  EXPECT_LT(nmse(back, v), 0.03);
}

TEST(Magnitude, PermutationOverheadFormula) {
  EXPECT_EQ(permutation_overhead_bytes(0), 0u);
  EXPECT_EQ(permutation_overhead_bytes(1), 0u);
  EXPECT_EQ(permutation_overhead_bytes(2), 1u);      // 1 bit × 2 → 1 byte
  EXPECT_EQ(permutation_overhead_bytes(256), 256u);  // 8 bits × 256
  // The overhead is real: ~2 bytes/coord at 2^16 coords — why the paper
  // moved past this layout.
  EXPECT_EQ(permutation_overhead_bytes(1 << 16), (16u << 16) / 8);
}

}  // namespace
}  // namespace trimgrad::core
