#include "ddp/experiment.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/codec_registry.h"
#include "core/threadpool.h"
#include "net/transport_registry.h"

namespace trimgrad::ddp {

namespace {

constexpr const char* kKeys[] = {
    "transport", "scheme",     "topology", "faults",       "trim",
    "drop",      "deadline",   "world",    "epochs",       "batch",
    "lr",        "seed",       "fault_seed", "threads",    "heartbeat_ms",
    "evict_after", "ckpt_every", "policy", "policy_target", "policy_min_q",
    "policy_max_q", "schedule", "capacity"};

[[noreturn]] void bad_key(const std::string& key) {
  std::string msg = "unknown ExperimentSpec key '" + key + "'; known:";
  for (const char* k : kKeys) msg += std::string(" ") + k;
  throw std::invalid_argument(msg);
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("ExperimentSpec: bad number for '" + key +
                                "': '" + value + "'");
  }
  return v;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("ExperimentSpec: bad integer for '" + key +
                                "': '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace

ExperimentSpec ExperimentSpec::parse(const std::string& text) {
  ExperimentSpec spec;
  std::size_t i = 0;
  while (i < text.size()) {
    // Tokens are separated by commas and/or whitespace.
    while (i < text.size() &&
           (text[i] == ',' || std::isspace(static_cast<unsigned char>(text[i])))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() && text[j] != ',' &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j == i) break;
    const std::string token = text.substr(i, j - i);
    i = j;

    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "ExperimentSpec: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "transport") {
      spec.transport = value;
    } else if (key == "scheme") {
      spec.scheme = value;
    } else if (key == "topology") {
      spec.topology = value;
    } else if (key == "faults") {
      spec.faults = value;
    } else if (key == "trim") {
      spec.trim = parse_double(key, value);
    } else if (key == "drop") {
      spec.drop = parse_double(key, value);
    } else if (key == "deadline") {
      spec.deadline = parse_double(key, value);
    } else if (key == "world") {
      spec.world = static_cast<int>(parse_uint(key, value));
    } else if (key == "epochs") {
      spec.epochs = parse_uint(key, value);
    } else if (key == "batch") {
      spec.batch = parse_uint(key, value);
    } else if (key == "lr") {
      spec.lr = parse_double(key, value);
    } else if (key == "seed") {
      spec.seed = parse_uint(key, value);
    } else if (key == "fault_seed") {
      spec.fault_seed = parse_uint(key, value);
    } else if (key == "threads") {
      spec.threads = parse_uint(key, value);
    } else if (key == "heartbeat_ms") {
      spec.heartbeat_ms = parse_double(key, value);
    } else if (key == "evict_after") {
      spec.evict_after = parse_uint(key, value);
    } else if (key == "ckpt_every") {
      spec.ckpt_every = parse_uint(key, value);
    } else if (key == "policy") {
      spec.policy = value;
    } else if (key == "policy_target") {
      spec.policy_target = parse_double(key, value);
    } else if (key == "policy_min_q") {
      spec.policy_min_q = parse_uint(key, value);
    } else if (key == "policy_max_q") {
      spec.policy_max_q = parse_uint(key, value);
    } else if (key == "schedule") {
      spec.schedule = value;
    } else if (key == "capacity") {
      spec.capacity = parse_uint(key, value);
    } else {
      bad_key(key);
    }
  }
  spec.validate();
  return spec;
}

std::string ExperimentSpec::serialize() const {
  std::string out;
  out += "transport=" + transport;
  out += ",scheme=" + scheme;
  out += ",topology=" + topology;
  out += ",faults=" + faults;
  out += ",trim=" + format_double(trim);
  out += ",drop=" + format_double(drop);
  out += ",deadline=" + format_double(deadline);
  out += ",world=" + std::to_string(world);
  out += ",epochs=" + std::to_string(epochs);
  out += ",batch=" + std::to_string(batch);
  out += ",lr=" + format_double(lr);
  out += ",seed=" + std::to_string(seed);
  out += ",fault_seed=" + std::to_string(fault_seed);
  out += ",threads=" + std::to_string(threads);
  out += ",heartbeat_ms=" + format_double(heartbeat_ms);
  out += ",evict_after=" + std::to_string(evict_after);
  out += ",ckpt_every=" + std::to_string(ckpt_every);
  out += ",policy=" + policy;
  out += ",policy_target=" + format_double(policy_target);
  out += ",policy_min_q=" + std::to_string(policy_min_q);
  out += ",policy_max_q=" + std::to_string(policy_max_q);
  out += ",schedule=" + schedule;
  out += ",capacity=" + std::to_string(capacity);
  return out;
}

std::string ExperimentSpec::label() const {
  std::string out = "transport=" + transport + ",scheme=" + scheme +
                    ",trim=" + format_double(trim);
  if (policy != "fixed") out += ",policy=" + policy;
  return out;
}

bool ExperimentSpec::faults_is_file() const noexcept {
  return faults.rfind("file:", 0) == 0;
}

std::string ExperimentSpec::faults_path() const {
  return faults_is_file() ? faults.substr(5) : std::string{};
}

void ExperimentSpec::validate() const {
  net::TransportRegistry::global().at(transport);  // throws, lists names
  core::CodecRegistry::global().at(scheme);        // throws, lists names
  if (topology != "inject" && topology != "fabric") {
    throw std::invalid_argument("ExperimentSpec: unknown topology '" +
                                topology + "'; known: fabric inject");
  }
  if (faults != "none" && faults != "corrupt" && faults != "flap" &&
      faults != "chaos" && faults != "elastic" && !faults_is_file()) {
    throw std::invalid_argument(
        "ExperimentSpec: unknown fault script '" + faults +
        "'; known: chaos corrupt elastic flap none file:<path>");
  }
  if (faults_is_file() && faults_path().empty()) {
    throw std::invalid_argument(
        "ExperimentSpec: faults=file: needs a path (faults=file:<path>)");
  }
  if (world < 2) {
    throw std::invalid_argument("ExperimentSpec: world must be >= 2");
  }
  if (batch == 0 || epochs == 0) {
    throw std::invalid_argument(
        "ExperimentSpec: batch and epochs must be positive");
  }
  if (trim < 0 || trim > 1 || drop < 0 || drop > 1) {
    throw std::invalid_argument(
        "ExperimentSpec: trim/drop must be probabilities in [0, 1]");
  }
  if (heartbeat_ms < 0 || heartbeat_ms > 10000) {
    throw std::invalid_argument(
        "ExperimentSpec: heartbeat_ms must be in [0, 10000] "
        "(0 disables membership)");
  }
  if (evict_after < 1 || evict_after > 1024) {
    throw std::invalid_argument(
        "ExperimentSpec: evict_after must be in [1, 1024]");
  }
  if (ckpt_every > (std::uint64_t{1} << 20)) {
    throw std::invalid_argument(
        "ExperimentSpec: ckpt_every must be in [0, 1048576] "
        "(0 disables checkpoints)");
  }
  if (faults == "elastic" && heartbeat_ms == 0) {
    throw std::invalid_argument(
        "ExperimentSpec: faults=elastic needs heartbeat_ms > 0 "
        "(without a detector nothing heals)");
  }
  if (policy_min_q < 1 || policy_max_q > 31 || policy_min_q > policy_max_q) {
    throw std::invalid_argument(
        "ExperimentSpec: need 1 <= policy_min_q <= policy_max_q <= 31");
  }
  if (policy_target <= 0 || policy_target >= 1) {
    throw std::invalid_argument(
        "ExperimentSpec: policy_target must be in (0, 1)");
  }
  // Fail fast on unregistered policy names (the error lists what is
  // registered) and on schedule scripts naming unregistered codecs. The
  // policy is only constructible over a packet-train base codec; specs
  // naming a micro-bench codec (eden/multilevel) stay parseable here and
  // are rejected by trainer_config() when someone tries to train with one.
  core::PolicyRegistry::global().at(policy);
  if (core::CodecRegistry::global().at(scheme).packet_train) {
    core::PolicyRegistry::global().make(policy_config());
  }
}

TrainerConfig ExperimentSpec::trainer_config() const {
  const core::CodecInfo& codec = core::CodecRegistry::global().at(scheme);
  if (!codec.packet_train) {
    throw std::invalid_argument(
        "ExperimentSpec: codec '" + scheme +
        "' does not encode packet trains and cannot drive training");
  }
  TrainerConfig cfg;
  cfg.world = world;
  cfg.global_batch = batch;
  cfg.epochs = epochs;
  cfg.sgd.lr = static_cast<float>(lr);
  cfg.codec.scheme = codec.scheme;
  cfg.fault_seed = fault_seed;
  cfg.policy = policy_config();
  return cfg;
}

core::PolicyConfig ExperimentSpec::policy_config() const {
  core::PolicyConfig pc;
  pc.policy = policy;
  pc.codec = scheme;
  pc.aimd.target_trim = policy_target;
  pc.aimd.min_q = static_cast<unsigned>(policy_min_q);
  pc.aimd.max_q = static_cast<unsigned>(policy_max_q);
  pc.aimd.initial_q = static_cast<unsigned>(policy_max_q);
  pc.schedule = schedule;
  return pc;
}

collective::InjectChannel::Config ExperimentSpec::inject_channel_config()
    const {
  if (transport != "trim" && transport != "reliable") {
    throw std::invalid_argument(
        "ExperimentSpec: transport '" + transport +
        "' needs topology=fabric (the inject channel models only the "
        "trim/reliable pair)");
  }
  collective::InjectChannel::Config cfg;
  cfg.world = world;
  cfg.injector.trim_rate = trim;
  cfg.injector.drop_rate = drop;
  cfg.injector.seed = seed;
  cfg.reliable = transport == "reliable";
  cfg.capacity_bytes = capacity;
  return cfg;
}

collective::SimChannel::Config ExperimentSpec::sim_channel_config() const {
  collective::SimChannel::Config cfg;
  cfg.transport = transport;
  cfg.round_deadline = deadline;
  return cfg;
}

MembershipConfig ExperimentSpec::membership_config() const {
  MembershipConfig cfg;
  cfg.heartbeat_s = heartbeat_ms * 1e-3;
  cfg.evict_after = static_cast<unsigned>(evict_after);
  cfg.ckpt_every = static_cast<unsigned>(ckpt_every);
  return cfg;
}

void ExperimentSpec::apply_threads() const {
  if (threads > 0) {
    core::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
  }
}

}  // namespace trimgrad::ddp
