// String-keyed codec registry: compression schemes selected by name.
//
// The packet-train codecs ("baseline", "sign", "sq", "sd", "rht") map onto
// core::Scheme and ride the wire format in core/packet.h — these are what
// ddp::Trainer and the sweep grids can put on the fabric. "eden" and
// "multilevel" are standalone codecs (core/eden.h, core/multilevel.h) that
// do not emit packet trains; they register for discoverability and for
// micro-benches, and `packet_train == false` tells consumers that a
// training run cannot select them.
//
// Mirrors net::TransportRegistry so an ExperimentSpec can validate both of
// its names against one mechanism and error with the registered lists.
#pragma once

#include <string>
#include <vector>

#include "core/packet.h"

namespace trimgrad::core {

struct CodecInfo {
  std::string name;
  Scheme scheme = Scheme::kBaseline;  ///< meaningful iff packet_train
  bool packet_train = false;  ///< encodes to GradientPacket trains
  const char* summary = "";
};

class CodecRegistry {
 public:
  /// The process-wide registry with the built-in codecs.
  static const CodecRegistry& global();

  /// nullptr when `name` is not registered.
  const CodecInfo* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the registered names.
  const CodecInfo& at(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// The registered name of a wire scheme ("rht" for Scheme::kRHT, ...).
  const std::string& name_of(Scheme scheme) const;

  void add(CodecInfo info);

 private:
  std::vector<CodecInfo> codecs_;
};

}  // namespace trimgrad::core
