// Elastic membership closed loop: kill a rank's host mid-training on the
// discrete-event fabric, watch the heartbeat detector evict it, keep
// training over the surviving view, and — when the fault window ends —
// restore it from its checkpoint, refill its parameters from a live peer,
// and re-admit it. The whole event history must be bit-identical across
// TRIMGRAD_THREADS for a fixed (seed, fault_seed).
#include "ddp/membership.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "collective/sim_channel.h"
#include "core/metrics.h"
#include "core/threadpool.h"
#include "ddp/trainer.h"
#include "net/fault_plane.h"
#include "net/topology.h"

namespace trimgrad::ddp {
namespace {

std::uint64_t counter_value(const std::string& name) {
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

struct ElasticOptions {
  std::uint64_t fault_seed = 7;
  std::size_t epochs = 4;
  /// Kill rank 3's host once, for this long, starting at 30 ms. 0 = no
  /// fault (the baseline the recovered run must converge back to).
  net::SimTime dead_window = 100e-3;
  unsigned evict_after = 2;
  unsigned ckpt_every = 2;
};

struct ElasticResult {
  std::vector<EpochRecord> records;
  std::vector<MembershipEvent> events;
  net::FaultLog fault_log;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t heartbeat_misses = 0;
  double recovery_s = 0;
  std::uint64_t final_view = 0;
  std::size_t recovered_ranks = 0;
  bool queue_drained = false;
};

ElasticResult run_elastic(const ElasticOptions& opt) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  const std::vector<net::NodeId> ranks = {
      topo.left_hosts[0], topo.left_hosts[1], topo.right_hosts[0],
      topo.right_hosts[1]};

  net::FaultPlaneConfig pcfg;
  pcfg.seed = opt.fault_seed;
  if (opt.dead_window > 0) {
    net::NodeFault dead;  // rank 3: never the coordinator or PS server
    dead.node = topo.right_hosts[1];
    dead.start = 30e-3;
    dead.duration = opt.dead_window;
    dead.period = 1000.0;
    dead.repeats = 1;
    pcfg.node_faults.push_back(dead);
  }
  net::FaultPlane plane(pcfg);
  sim.set_fault_plane(&plane);

  collective::SimChannel::Config ccfg;
  ccfg.transport = "trim";
  ccfg.tuning.rto = 100e-6;
  ccfg.tuning.rto_cap = 1e-3;
  ccfg.tuning.retransmit_budget = 400;
  ccfg.round_deadline = 10e-3;
  collective::SimChannel channel(sim, ranks, ccfg);

  std::vector<net::Host*> hosts;
  for (const auto id : ranks) {
    hosts.push_back(static_cast<net::Host*>(&sim.node(id)));
  }
  MembershipConfig mcfg;
  mcfg.heartbeat_s = 0.5e-3;
  mcfg.evict_after = opt.evict_after;
  mcfg.ckpt_every = opt.ckpt_every;
  mcfg.fetch_tuning = ccfg.tuning;
  Membership membership(sim, hosts, mcfg);
  channel.set_view(&membership.view());

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  dcfg.proto_grid = 3;
  ml::SynthCifar data(dcfg);

  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 32;
  tcfg.epochs = opt.epochs;
  tcfg.eval_every = 0;
  tcfg.sgd.lr = 0.05f;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = 1 << 10;
  tcfg.fault_seed = opt.fault_seed;
  DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg2;
    mcfg2.classes = 10;
    mcfg2.height = mcfg2.width = 8;
    return ml::make_mlp(mcfg2, 48);
  });
  trainer.attach_membership(&membership);

  ElasticResult out;
  out.records = trainer.train();
  out.events = membership.events();
  out.fault_log = plane.log();
  out.evictions = membership.evictions();
  out.rejoins = membership.rejoins();
  out.heartbeat_misses = membership.heartbeat_misses();
  out.recovery_s = membership.total_recovery_s();
  out.final_view = membership.view().version;
  for (const auto& r : out.records) out.recovered_ranks += r.recovered_ranks;
  const net::SimTime t_end = sim.now();
  out.queue_drained = sim.run() == t_end;
  return out;
}

TEST(Membership, DeadRankIsEvictedThenRejoinsAndRunConverges) {
  ElasticOptions opt;
  const ElasticResult res = run_elastic(opt);

  ASSERT_EQ(res.records.size(), opt.epochs);
  EXPECT_TRUE(res.queue_drained) << "events left in the queue after train()";
  EXPECT_GE(res.heartbeat_misses, opt.evict_after);
  ASSERT_GE(res.evictions, 1u) << "the dead host was never detected";
  ASSERT_GE(res.rejoins, 1u) << "the recovered host never rejoined";
  EXPECT_EQ(res.recovered_ranks, res.rejoins);
  EXPECT_GT(res.recovery_s, 0.0);

  // Event discipline: rank 3 only, evict strictly before its rejoin, and
  // view versions only ever advance.
  ASSERT_FALSE(res.events.empty());
  std::uint64_t prev_view = 0;
  for (const auto& e : res.events) {
    EXPECT_EQ(e.rank, 3);
    EXPECT_GT(e.view, prev_view) << "views must be monotone";
    prev_view = e.view;
  }
  EXPECT_EQ(res.events.front().kind, MembershipEvent::Kind::kEvict);
  EXPECT_EQ(res.final_view, res.events.back().view);

  // Degradation is visible while the rank was dead-but-not-yet-evicted,
  // and every epoch still finishes with a finite loss.
  for (const auto& r : res.records) {
    EXPECT_TRUE(std::isfinite(r.train_loss));
    EXPECT_GT(r.sim_time_s, 0.0);
  }

  // The healed run must converge back to the fault-free baseline.
  ElasticOptions base_opt;
  base_opt.dead_window = 0;
  const ElasticResult base = run_elastic(base_opt);
  EXPECT_EQ(base.evictions, 0u);
  EXPECT_EQ(base.final_view, 0u);
  const double gap = std::fabs(res.records.back().train_loss -
                               base.records.back().train_loss);
  EXPECT_LT(gap, 0.35) << "recovered run did not converge near baseline: "
                       << res.records.back().train_loss << " vs "
                       << base.records.back().train_loss;
}

TEST(Membership, ElasticRunIsBitIdenticalAcrossThreadCounts) {
  ElasticOptions opt;
  opt.epochs = 3;
  core::ThreadPool::set_global_threads(1);
  const ElasticResult ref = run_elastic(opt);
  ASSERT_GE(ref.evictions, 1u);
  for (const std::size_t threads : {2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    const ElasticResult got = run_elastic(opt);
    ASSERT_EQ(ref.records.size(), got.records.size());
    for (std::size_t i = 0; i < ref.records.size(); ++i) {
      const auto& x = ref.records[i];
      const auto& y = got.records[i];
      EXPECT_EQ(x.sim_time_s, y.sim_time_s) << "epoch " << i << " @" << threads;
      EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i << " @" << threads;
      EXPECT_EQ(x.wire_bytes, y.wire_bytes) << "epoch " << i;
      EXPECT_EQ(x.missing_ranks, y.missing_ranks) << "epoch " << i;
      EXPECT_EQ(x.degraded_rounds, y.degraded_rounds) << "epoch " << i;
      EXPECT_EQ(x.recovered_ranks, y.recovered_ranks) << "epoch " << i;
      EXPECT_EQ(x.view_version, y.view_version) << "epoch " << i;
      EXPECT_EQ(x.replica_divergence, y.replica_divergence) << "epoch " << i;
    }
    EXPECT_EQ(ref.events, got.events)
        << "membership events differ at " << threads << " threads";
    EXPECT_EQ(ref.fault_log, got.fault_log);
    EXPECT_EQ(ref.recovery_s, got.recovery_s);
  }
  core::ThreadPool::set_global_threads(1);
}

TEST(Membership, QuietFabricNeverEvicts) {
  ElasticOptions opt;
  opt.dead_window = 0;
  opt.epochs = 2;
  const ElasticResult res = run_elastic(opt);
  EXPECT_EQ(res.evictions, 0u);
  EXPECT_EQ(res.rejoins, 0u);
  EXPECT_EQ(res.heartbeat_misses, 0u)
      << "heartbeats must survive a healthy fabric";
  EXPECT_TRUE(res.events.empty());
  for (const auto& r : res.records) {
    EXPECT_EQ(r.recovered_ranks, 0u);
    EXPECT_EQ(r.view_version, 0u);
  }
}

TEST(Membership, StaleTransfersAreRefusedWithoutTouchingTheFabric) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  const std::vector<net::NodeId> ranks = {
      topo.left_hosts[0], topo.left_hosts[1], topo.right_hosts[0],
      topo.right_hosts[1]};
  collective::SimChannel channel(sim, ranks, {});

  collective::WorldView view = collective::WorldView::full(4);
  view.evict(3);
  channel.set_view(&view);

  const std::uint64_t stale0 =
      counter_value("net.membership.stale_transfers");
  const std::uint64_t frames0 = sim.delivered_frames();

  collective::TransferRequest req;
  req.src = 0;
  req.dst = 3;  // not live in the current view
  const auto deliveries = channel.transfer({req});
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_TRUE(deliveries[0].flow_failed)
      << "a transfer into an evicted rank must fail, not deliver";
  EXPECT_TRUE(deliveries[0].packets.empty());
  EXPECT_EQ(sim.delivered_frames(), frames0)
      << "a refused transfer must not put frames on the fabric";
  EXPECT_EQ(counter_value("net.membership.stale_transfers"), stale0 + 1);
}

TEST(Membership, CheckpointCustodyRoundTripsThroughBlobStore) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  std::vector<net::Host*> hosts;
  for (const auto id : {topo.left_hosts[0], topo.left_hosts[1],
                        topo.right_hosts[0], topo.right_hosts[1]}) {
    hosts.push_back(static_cast<net::Host*>(&sim.node(id)));
  }
  Membership membership(sim, hosts, {});

  EXPECT_FALSE(membership.has_checkpoint(2));
  EXPECT_THROW(membership.restore_checkpoint(2), std::runtime_error);

  Checkpoint ck;
  ck.rank = 2;
  ck.epoch = 5;
  ck.params = {1.0f, 2.0f, 3.0f};
  ck.velocity = {{0.5f}};
  membership.store_checkpoint(ck);
  EXPECT_TRUE(membership.has_checkpoint(2));
  EXPECT_EQ(membership.checkpoint_saves(), 1u);
  EXPECT_GT(membership.checkpoint_bytes(), 0u);
  EXPECT_EQ(membership.restore_checkpoint(2), ck);
}

}  // namespace
}  // namespace trimgrad::ddp
