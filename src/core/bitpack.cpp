#include "core/bitpack.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace trimgrad::core {

namespace {

// Multiply-based 8-bool-bytes <-> 8-bits converters. The multiplier places a
// shifted copy of each input byte so that the wanted bit of each lands in a
// distinct output position (8*di = 9*dj with |di|,|dj| < 8 forces di=dj=0,
// so no two terms collide and no carries occur).
constexpr std::uint64_t kByteOnes = 0x0101010101010101ull;
constexpr std::uint64_t kGatherMsbFirst = 0x8040201008040201ull;
constexpr std::uint64_t kSpreadMsbFirst = 0x0102040810204080ull;

inline std::uint64_t to_be(std::uint64_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap64(v);
  } else {
    return v;
  }
}

}  // namespace

void BitWriter::put(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  // Bulk fast path: a byte-aligned write of a whole number of bytes stores
  // them in one shot — top-align the value so a byte swap yields the
  // MSB-first byte order, then memcpy the leading width/8 bytes. This covers
  // the head/tail packetization hot cases (32-bit baseline floats, 24-bit
  // multilevel low regions, 8/16-bit tails).
  if (bit_count_ % 8 == 0 && width % 8 == 0) {
    const unsigned nbytes = width / 8;
    const std::size_t at = buf_.size();
    buf_.resize(at + nbytes);
    const std::uint64_t be = to_be(value << (64 - width));
    std::memcpy(buf_.data() + at, &be, nbytes);
    bit_count_ += width;
    return;
  }
  // Write bits from the most significant end of the value.
  unsigned remaining = width;
  while (remaining > 0) {
    const unsigned bit_in_byte = bit_count_ % 8;
    if (bit_in_byte == 0) buf_.push_back(0);
    const unsigned space = 8 - bit_in_byte;
    const unsigned take = remaining < space ? remaining : space;
    const std::uint64_t chunk = (value >> (remaining - take)) &
                                ((std::uint64_t{1} << take) - 1);
    buf_.back() |= static_cast<std::uint8_t>(chunk << (space - take));
    bit_count_ += take;
    remaining -= take;
  }
}

void BitWriter::put_run(const std::uint32_t* values, std::size_t n,
                        unsigned width) {
  assert(width >= 1 && width <= 32);
  if (n == 0) return;
  if (bit_count_ % 8 != 0) {
    for (std::size_t i = 0; i < n; ++i) put(values[i], width);
    return;
  }
  // Top-aligned 64-bit accumulator: values are ORed in below the bits
  // already filled; full accumulators flush as one 8-byte store. Emits the
  // exact MSB-first bit stream n individual put() calls would. The whole
  // output region is sized once up front so the flush path is a bare
  // pointer store, not a resize per accumulator.
  const std::size_t at = buf_.size();
  buf_.resize(at + bytes_for_bits(n * width));
  std::uint8_t* p = buf_.data() + at;
  const std::uint32_t mask =
      width < 32 ? (std::uint32_t{1} << width) - 1 : ~std::uint32_t{0};
  std::uint64_t acc = 0;
  unsigned filled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = values[i] & mask;
    if (filled + width <= 64) {
      acc |= v << (64 - filled - width);
      filled += width;
      if (filled == 64) {
        const std::uint64_t be = to_be(acc);
        std::memcpy(p, &be, 8);
        p += 8;
        acc = 0;
        filled = 0;
      }
    } else {
      const unsigned hi = 64 - filled;  // bits that still fit
      acc |= v >> (width - hi);
      const std::uint64_t be = to_be(acc);
      std::memcpy(p, &be, 8);
      p += 8;
      filled = width - hi;  // > 0: width == hi lands in the branch above
      acc = v << (64 - filled);
    }
  }
  if (filled) {
    // Trailing partial accumulator: the low bits of the last byte stay zero,
    // exactly like a partially filled BitWriter byte.
    const std::uint64_t be = to_be(acc);
    std::memcpy(p, &be, bytes_for_bits(filled));
  }
  bit_count_ += n * width;
}

void BitWriter::put_bits8(const std::uint8_t* bits, std::size_t n) {
  std::size_t i = 0;
  if (bit_count_ % 8 == 0) {
    buf_.reserve(buf_.size() + bytes_for_bits(n));
    for (; i + 8 <= n; i += 8) {
      std::uint64_t x;
      std::memcpy(&x, bits + i, 8);
      // Normalize nonzero bytes to 1 (the gather multiply needs clean 0/1
      // lanes): bit 0 of each byte becomes the OR of that byte's bits —
      // offsets 1+2+4 compose to cover all 7, and cross-byte leakage only
      // reaches bits the kByteOnes mask discards.
      x |= x >> 1;
      x |= x >> 2;
      x |= x >> 4;
      x &= kByteOnes;
      buf_.push_back(static_cast<std::uint8_t>((x * kGatherMsbFirst) >> 56));
    }
    bit_count_ += i;
  }
  for (; i < n; ++i) put_bit(bits[i] != 0);
}

std::vector<std::uint8_t> BitWriter::finish() && {
  return std::move(buf_);
}

std::uint64_t BitReader::get(unsigned width) noexcept {
  assert(width >= 1 && width <= 64);
  assert(bits_remaining() >= width);
  // Bulk fast path mirroring BitWriter::put: byte-aligned whole-byte reads
  // load up to 8 bytes at once and byte-swap into value order.
  if (cursor_ % 8 == 0 && width % 8 == 0) {
    const unsigned nbytes = width / 8;
    std::uint64_t word = 0;
    std::memcpy(&word, data_.data() + cursor_ / 8, nbytes);
    cursor_ += width;
    return to_be(word) >> (64 - width);
  }
  std::uint64_t out = 0;
  unsigned remaining = width;
  while (remaining > 0) {
    const std::size_t byte_idx = cursor_ / 8;
    const unsigned bit_in_byte = cursor_ % 8;
    const unsigned avail = 8 - bit_in_byte;
    const unsigned take = remaining < avail ? remaining : avail;
    const std::uint8_t byte = data_[byte_idx];
    const std::uint64_t chunk =
        (byte >> (avail - take)) & ((std::uint64_t{1} << take) - 1);
    out = (out << take) | chunk;
    cursor_ += take;
    remaining -= take;
  }
  return out;
}

void BitReader::get_run(std::uint32_t* out, std::size_t n,
                        unsigned width) noexcept {
  assert(width >= 1 && width <= 32);
  assert(bits_remaining() >= n * width);
  if (n == 0) return;
  if (cursor_ % 8 != 0) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = static_cast<std::uint32_t>(get(width));
    return;
  }
  // Top-aligned accumulator. Refills top up with as many whole bytes of an
  // 8-byte load as fit (filled < width <= 32 at refill time, so one load
  // always reaches width); near the end of the buffer it falls back to one
  // byte at a time.
  std::size_t byte_idx = cursor_ / 8;
  std::uint64_t acc = 0;
  unsigned filled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (filled < width) {
      if (byte_idx + 8 <= data_.size()) {
        std::uint64_t word;
        std::memcpy(&word, data_.data() + byte_idx, 8);
        word = to_be(word);
        // Consume only whole bytes: the load's tail bits belong to bytes a
        // later refill will read again, so mask them out of the merge.
        const unsigned add = (64 - filled) & ~7u;
        acc |= (word >> filled) & (~std::uint64_t{0} << (64 - filled - add));
        byte_idx += add / 8;
        filled += add;
      } else {
        do {
          acc |= static_cast<std::uint64_t>(data_[byte_idx++]) << (56 - filled);
          filled += 8;
        } while (filled < width);
      }
    }
    out[i] = static_cast<std::uint32_t>(acc >> (64 - width));
    acc <<= width;
    filled -= width;
  }
  cursor_ = byte_idx * 8 - filled;
}

void BitReader::get_bits8(std::uint8_t* out, std::size_t n) noexcept {
  assert(bits_remaining() >= n);
  std::size_t i = 0;
  if (cursor_ % 8 == 0) {
    std::size_t byte_idx = cursor_ / 8;
    for (; i + 8 <= n; i += 8) {
      const std::uint64_t spread =
          (data_[byte_idx++] * kByteOnes) & kSpreadMsbFirst;
      const std::uint64_t bytes =
          ((spread + 0x7f7f7f7f7f7f7f7full) >> 7) & kByteOnes;
      std::memcpy(out + i, &bytes, 8);
    }
    cursor_ += i;
  }
  for (; i < n; ++i) out[i] = get_bit() ? 1 : 0;
}

std::uint32_t float_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

float bits_float(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}

}  // namespace trimgrad::core
