#include "core/packet.h"

namespace trimgrad::core {

const char* to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kBaseline: return "baseline";
    case Scheme::kSign: return "sign";
    case Scheme::kSQ: return "sq";
    case Scheme::kSD: return "sd";
    case Scheme::kRHT: return "rht";
    case Scheme::kTopK: return "sparsify";
    case Scheme::kMagnitude: return "magnitude";
    case Scheme::kLowRank: return "lowrank";
  }
  return "?";
}

bool is_scalar(Scheme s) noexcept {
  return s == Scheme::kSign || s == Scheme::kSQ || s == Scheme::kSD;
}

double PacketLayout::trim_ratio() const noexcept {
  const std::size_t n = coords_per_packet();
  const double full = static_cast<double>(full_packet_bytes(n));
  const double trimmed = static_cast<double>(header_bytes + head_region_bytes(n));
  return full > 0.0 ? 1.0 - trimmed / full : 0.0;
}

}  // namespace trimgrad::core
