// Trim transcripts for reproducible training runs (paper §5.4).
//
// With trimming, which packets get compressed depends on live congestion,
// making every run unique. The paper's remedy: record the indices (and
// levels) of trimmed packets during a run, then replay the transcript in a
// later run where the network is reliable and the trimming effect is
// re-applied at the receiver. `TrimTranscript` is that record, with a
// line-oriented text serialization for storage, and a lookup interface the
// replay channel uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace trimgrad::core {

/// One trim decision observed on the wire.
struct TrimEvent {
  std::uint64_t epoch = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t seq = 0;      ///< packet sequence within the message
  std::uint8_t level = 1;     ///< 1 = tail trimmed; multi-level codes 1/2

  friend bool operator==(const TrimEvent&, const TrimEvent&) = default;
};

class TrimTranscript {
 public:
  /// Record that packet (epoch, msg, seq) was trimmed to `level`.
  void record(std::uint64_t epoch, std::uint32_t msg_id, std::uint16_t seq,
              std::uint8_t level = 1);

  /// Level this packet was trimmed to during the recorded run, if any.
  std::optional<std::uint8_t> lookup(std::uint64_t epoch, std::uint32_t msg_id,
                                     std::uint16_t seq) const;

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<TrimEvent>& events() const noexcept { return events_; }

  /// True when at least one event was recorded for `epoch`. Replay uses
  /// this to reject an epoch the transcript never saw (a silent no-op
  /// there would mean replaying the *wrong run* without noticing).
  bool contains_epoch(std::uint64_t epoch) const noexcept {
    return epochs_.count(epoch) != 0;
  }

  /// Text form: one "epoch msg seq level" line per event.
  void save(std::ostream& os) const;
  static TrimTranscript load(std::istream& is);

  friend bool operator==(const TrimTranscript& a, const TrimTranscript& b) {
    return a.events_ == b.events_;
  }

 private:
  static std::uint64_t key(std::uint64_t epoch, std::uint32_t msg_id,
                           std::uint16_t seq) noexcept;
  std::vector<TrimEvent> events_;
  std::unordered_map<std::uint64_t, std::uint8_t> index_;
  std::unordered_set<std::uint64_t> epochs_;
};

}  // namespace trimgrad::core
