#include "core/lowrank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

/// Matrix with planted low-rank structure: sum of `true_rank` decaying
/// outer products plus optional noise.
std::vector<float> planted_matrix(std::size_t rows, std::size_t cols,
                                  std::size_t true_rank, float noise,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> m(rows * cols, 0.0f);
  for (std::size_t k = 0; k < true_rank; ++k) {
    const float strength = std::pow(0.4f, static_cast<float>(k));
    std::vector<float> u(rows), v(cols);
    for (auto& x : u) x = static_cast<float>(rng.gaussian());
    for (auto& x : v) x = static_cast<float>(rng.gaussian());
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        m[i * cols + j] += strength * u[i] * v[j];
      }
    }
  }
  for (auto& x : m) x += noise * static_cast<float>(rng.gaussian());
  return m;
}

TEST(PowerFactorize, ExactlyRecoversTrueRankMatrix) {
  const std::size_t rows = 48, cols = 32;
  const auto m = planted_matrix(rows, cols, 3, 0.0f, 1);
  const auto f = power_factorize(m, rows, cols, 3, 3, 7);
  const auto rec = f.reconstruct(3);
  EXPECT_LT(nmse(rec, m), 1e-6);
}

TEST(PowerFactorize, HigherRankNeverHurts) {
  const std::size_t rows = 40, cols = 24;
  const auto m = planted_matrix(rows, cols, 6, 0.05f, 2);
  double prev = 1e9;
  for (std::size_t r : {1u, 2u, 4u, 8u}) {
    const auto f = power_factorize(m, rows, cols, r, 3, 7);
    const double e = nmse(f.reconstruct(r), m);
    EXPECT_LE(e, prev + 1e-9) << r;
    prev = e;
  }
}

TEST(PowerFactorize, ImportanceIsDescending) {
  const auto m = planted_matrix(30, 20, 5, 0.1f, 3);
  const auto f = power_factorize(m, 30, 20, 5, 3, 7);
  for (std::size_t k = 1; k < f.importance.size(); ++k) {
    EXPECT_GE(f.importance[k - 1], f.importance[k]);
  }
}

TEST(PowerFactorize, PrefixReconstructionDegradesGracefully) {
  // Using only the top components must track the planted decay.
  const auto m = planted_matrix(64, 32, 4, 0.0f, 4);
  const auto f = power_factorize(m, 64, 32, 4, 3, 7);
  double prev = -1.0;
  for (std::size_t use = 4; use >= 1; --use) {
    const double e = nmse(f.reconstruct(use), m);
    EXPECT_GE(e, prev - 1e-9) << use;  // error grows as components drop
    prev = e;
    if (use == 1) {
      // Top component of a 0.4-decay spectrum keeps >=80 % of the energy.
      EXPECT_LT(e, 0.25);
    }
  }
}

TEST(PowerFactorize, QIsOrthonormal) {
  const auto m = planted_matrix(32, 24, 4, 0.2f, 5);
  const auto f = power_factorize(m, 32, 24, 4, 2, 7);
  for (std::size_t a = 0; a < f.rank; ++a) {
    for (std::size_t b = 0; b <= a; ++b) {
      double dot = 0;
      for (std::size_t j = 0; j < f.cols; ++j) {
        dot += double(f.q[a * f.cols + j]) * f.q[b * f.cols + j];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-4) << a << "," << b;
    }
  }
}

TEST(PowerFactorize, DeterministicInSeed) {
  const auto m = planted_matrix(20, 16, 2, 0.1f, 6);
  const auto a = power_factorize(m, 20, 16, 2, 2, 99);
  const auto b = power_factorize(m, 20, 16, 2, 2, 99);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.q, b.q);
}

// ---- trimmable codec ----

LowRankCodec::Config codec_cfg(std::size_t rank) {
  LowRankCodec::Config cfg;
  cfg.rank = rank;
  cfg.power_iters = 3;
  return cfg;
}

TEST(LowRankCodecTest, UntrimmedDecodeMatchesFactorization) {
  const std::size_t rows = 128, cols = 64;
  const auto m = planted_matrix(rows, cols, 4, 0.0f, 7);
  LowRankCodec codec(codec_cfg(4));
  const auto enc = codec.encode(m, rows, cols, 1);
  const auto dec = codec.decode(enc.packets, enc.meta);
  EXPECT_LT(nmse(dec, m), 1e-5);
}

TEST(LowRankCodecTest, PacketsCoverAllRowsOnce) {
  const std::size_t rows = 500, cols = 32;
  const auto m = planted_matrix(rows, cols, 2, 0.1f, 8);
  LowRankCodec codec(codec_cfg(4));
  const auto enc = codec.encode(m, rows, cols, 1);
  std::vector<int> cover(rows, 0);
  for (const auto& p : enc.packets) {
    for (std::size_t i = 0; i < p.n_rows; ++i) ++cover[p.row_base + i];
    EXPECT_LE(p.wire_bytes(), codec.config().layout.mtu_bytes + 64);
  }
  for (int c : cover) EXPECT_EQ(c, 1);
}

TEST(LowRankCodecTest, TrimAffectsOnlyLeastImportantRanks) {
  // The §5.3 desideratum: trim ANY subset of packets to depth k — the
  // result must equal the rank-k reconstruction on those slices, i.e. the
  // damage is confined to components k..r−1.
  const std::size_t rows = 96, cols = 48;
  const auto m = planted_matrix(rows, cols, 4, 0.0f, 9);
  LowRankCodec codec(codec_cfg(4));

  auto enc = codec.encode(m, rows, cols, 1);
  // Trim alternating packets to rank 1.
  for (std::size_t i = 0; i < enc.packets.size(); i += 2) {
    enc.packets[i].trim_to_rank(1);
  }
  const auto dec = codec.decode(enc.packets, enc.meta);

  const auto f = power_factorize(m, rows, cols, 4, 3, codec.config().seed);
  const auto full = f.reconstruct(4);
  const auto rank1 = f.reconstruct(1);
  for (const auto& pkt : enc.packets) {
    const auto& expect = pkt.kept == 1 ? rank1 : full;
    for (std::size_t i = 0; i < pkt.n_rows; ++i) {
      const std::size_t row = pkt.row_base + i;
      for (std::size_t j = 0; j < cols; ++j) {
        EXPECT_NEAR(dec[row * cols + j], expect[row * cols + j], 1e-4);
      }
    }
  }
}

TEST(LowRankCodecTest, TrimDepthErrorIsMonotone) {
  const std::size_t rows = 128, cols = 64;
  const auto m = planted_matrix(rows, cols, 6, 0.02f, 10);
  LowRankCodec codec(codec_cfg(6));
  double prev = -1;
  for (std::uint16_t keep : {6, 4, 2, 1}) {
    auto enc = codec.encode(m, rows, cols, 1);
    for (auto& p : enc.packets) p.trim_to_rank(keep);
    const double e = nmse(codec.decode(enc.packets, enc.meta), m);
    EXPECT_GT(e, prev) << keep;
    prev = e;
  }
}

TEST(LowRankCodecTest, TrimIsMonotoneOnPacket) {
  const auto m = planted_matrix(64, 32, 3, 0.1f, 11);
  LowRankCodec codec(codec_cfg(3));
  auto enc = codec.encode(m, 64, 32, 1);
  auto& pkt = enc.packets[0];
  const auto bytes_full = pkt.wire_bytes();
  pkt.trim_to_rank(1);
  const auto bytes_r1 = pkt.wire_bytes();
  EXPECT_LT(bytes_r1, bytes_full);
  pkt.trim_to_rank(2);  // must not grow back
  EXPECT_EQ(pkt.kept, 1);
  EXPECT_EQ(pkt.wire_bytes(), bytes_r1);
}

TEST(LowRankCodecTest, LostPacketsZeroTheirRows) {
  const std::size_t rows = 200, cols = 16;
  const auto m = planted_matrix(rows, cols, 2, 0.0f, 12);
  LowRankCodec codec(codec_cfg(2));
  auto enc = codec.encode(m, rows, cols, 1);
  std::vector<LowRankPacket> kept(enc.packets.begin() + 1,
                                  enc.packets.end());
  const auto dec = codec.decode(kept, enc.meta);
  const std::size_t lost_rows = enc.packets[0].n_rows;
  for (std::size_t i = 0; i < lost_rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      EXPECT_FLOAT_EQ(dec[(enc.packets[0].row_base + i) * cols + j], 0.0f);
    }
  }
}

TEST(LowRankCodecTest, CompressionRatioMatchesRankFraction) {
  const std::size_t rows = 1024, cols = 512;
  const auto m = planted_matrix(rows, cols, 2, 0.1f, 13);
  LowRankCodec codec(codec_cfg(4));
  const auto enc = codec.encode(m, rows, cols, 1);
  std::size_t bytes = enc.meta.wire_bytes();
  for (const auto& p : enc.packets) bytes += p.wire_bytes();
  // (rows+cols)·rank floats vs rows·cols — a big win for real layers.
  const double expected =
      static_cast<double>((rows + cols) * 4) / (rows * cols);
  EXPECT_LT(static_cast<double>(bytes) / (m.size() * 4), expected * 1.5);
}

}  // namespace
}  // namespace trimgrad::core
