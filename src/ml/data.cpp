#include "ml/data.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace trimgrad::ml {

SynthCifar::SynthCifar(SynthCifarConfig cfg) : cfg_(cfg) {
  core::Xoshiro256 rng(cfg_.seed);
  std::vector<std::vector<float>> protos;
  protos.reserve(cfg_.classes);
  for (std::size_t c = 0; c < cfg_.classes; ++c) {
    protos.push_back(make_prototype(rng));
  }
  for (std::size_t c = 0; c < cfg_.classes; ++c) {
    for (std::size_t i = 0; i < cfg_.train_per_class; ++i) {
      train_images_.push_back(make_sample(protos[c], rng));
      train_labels_.push_back(static_cast<std::uint32_t>(c));
    }
    for (std::size_t i = 0; i < cfg_.test_per_class; ++i) {
      test_images_.push_back(make_sample(protos[c], rng));
      test_labels_.push_back(static_cast<std::uint32_t>(c));
    }
  }
}

std::vector<float> SynthCifar::make_prototype(core::Xoshiro256& rng) const {
  const std::size_t g = cfg_.proto_grid;
  const std::size_t h = cfg_.height;
  const std::size_t w = cfg_.width;
  std::vector<float> proto(cfg_.channels * h * w);
  std::vector<float> grid(g * g);
  for (std::size_t c = 0; c < cfg_.channels; ++c) {
    for (auto& x : grid) x = static_cast<float>(rng.gaussian());
    // Bilinear upsample grid (g×g) to (h×w).
    for (std::size_t y = 0; y < h; ++y) {
      const float fy = static_cast<float>(y) * (g - 1) / (h - 1);
      const std::size_t y0 = static_cast<std::size_t>(fy);
      const std::size_t y1 = std::min(y0 + 1, g - 1);
      const float ty = fy - static_cast<float>(y0);
      for (std::size_t x = 0; x < w; ++x) {
        const float fx = static_cast<float>(x) * (g - 1) / (w - 1);
        const std::size_t x0 = static_cast<std::size_t>(fx);
        const std::size_t x1 = std::min(x0 + 1, g - 1);
        const float tx = fx - static_cast<float>(x0);
        const float top = grid[y0 * g + x0] * (1 - tx) + grid[y0 * g + x1] * tx;
        const float bot = grid[y1 * g + x0] * (1 - tx) + grid[y1 * g + x1] * tx;
        proto[c * h * w + y * w + x] = top * (1 - ty) + bot * ty;
      }
    }
  }
  return proto;
}

std::vector<float> SynthCifar::make_sample(const std::vector<float>& proto,
                                           core::Xoshiro256& rng) const {
  std::vector<float> img(proto.size());
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = proto[i] + cfg_.noise * static_cast<float>(rng.gaussian());
  }
  return img;
}

void SynthCifar::augment_into(std::span<const float> src, float* dst,
                              core::Xoshiro256& rng) const {
  const std::size_t h = cfg_.height;
  const std::size_t w = cfg_.width;
  if (!cfg_.augment) {
    std::copy(src.begin(), src.end(), dst);
    return;
  }
  const bool flip = rng.bernoulli(0.5);
  const int sy = static_cast<int>(rng.below(5)) - 2;  // shift in [-2, 2]
  const int sx = static_cast<int>(rng.below(5)) - 2;
  for (std::size_t c = 0; c < cfg_.channels; ++c) {
    const float* in = src.data() + c * h * w;
    float* out = dst + c * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      const int src_y = static_cast<int>(y) + sy;
      for (std::size_t x = 0; x < w; ++x) {
        std::size_t xx = flip ? (w - 1 - x) : x;
        const int src_x = static_cast<int>(xx) + sx;
        out[y * w + x] =
            (src_y < 0 || src_y >= static_cast<int>(h) || src_x < 0 ||
             src_x >= static_cast<int>(w))
                ? 0.0f
                : in[static_cast<std::size_t>(src_y) * w +
                     static_cast<std::size_t>(src_x)];
      }
    }
  }
}

Tensor SynthCifar::train_batch(std::span<const std::uint32_t> indices,
                               std::vector<std::uint32_t>& labels,
                               core::Xoshiro256& rng) const {
  const std::size_t n = indices.size();
  Tensor out({n, cfg_.channels, cfg_.height, cfg_.width});
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t idx = indices[i];
    assert(idx < train_images_.size());
    augment_into(train_images_[idx], out.ptr() + i * sample_floats(), rng);
    labels[i] = train_labels_[idx];
  }
  return out;
}

Tensor SynthCifar::test_batch(std::size_t offset, std::size_t count,
                              std::vector<std::uint32_t>& labels) const {
  assert(offset + count <= test_images_.size());
  Tensor out({count, cfg_.channels, cfg_.height, cfg_.width});
  labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& img = test_images_[offset + i];
    std::copy(img.begin(), img.end(), out.ptr() + i * sample_floats());
    labels[i] = test_labels_[offset + i];
  }
  return out;
}

Batcher::Batcher(std::size_t dataset_size, std::size_t batch_size,
                 std::uint64_t seed)
    : n_(dataset_size), batch_size_(batch_size), seed_(seed) {
  assert(batch_size_ > 0 && batch_size_ <= n_);
}

std::size_t Batcher::batches_per_epoch() const noexcept {
  return n_ / batch_size_;
}

std::vector<std::uint32_t> Batcher::batch(std::size_t epoch,
                                          std::size_t b) const {
  assert(b < batches_per_epoch());
  // Fisher–Yates with an epoch-keyed stream; regenerating the permutation
  // per call keeps the Batcher stateless (any worker can ask for any batch).
  std::vector<std::uint32_t> perm(n_);
  for (std::size_t i = 0; i < n_; ++i) perm[i] = static_cast<std::uint32_t>(i);
  core::SharedRng rng(core::StreamKey{seed_, epoch, 0, 0});
  for (std::size_t i = n_ - 1; i > 0; --i) {
    const std::size_t j = rng.below(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return std::vector<std::uint32_t>(perm.begin() + b * batch_size_,
                                    perm.begin() + (b + 1) * batch_size_);
}

std::vector<std::uint32_t> Batcher::worker_shard(std::size_t epoch,
                                                 std::size_t b,
                                                 std::size_t worker,
                                                 std::size_t world) const {
  const auto full = batch(epoch, b);
  const std::size_t per = full.size() / world;
  const std::size_t lo = worker * per;
  const std::size_t hi = worker + 1 == world ? full.size() : lo + per;
  return std::vector<std::uint32_t>(full.begin() + lo, full.begin() + hi);
}

}  // namespace trimgrad::ml
