#include "core/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define TRIMGRAD_SIMD_X86 1
#include <immintrin.h>
// Per-function target attribute so the vector kernels are compiled even in
// builds without -mavx2; they are only called after the runtime cpuid check.
#if defined(__AVX2__)
#define TG_AVX2
#else
#define TG_AVX2 __attribute__((target("avx2")))
#endif
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define TRIMGRAD_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace trimgrad::core::simd {

namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kMagMask = 0x7fffffffu;

// Spread masks for the 8-bool-bytes <-> 8-bits tricks (see bitpack.cpp for
// the derivation; the multiply sums non-colliding shifted copies).
constexpr std::uint64_t kLsbSpread = 0x8040201008040201ull;
constexpr std::uint64_t kByteOnes = 0x0101010101010101ull;

inline std::uint32_t f2b(float v) noexcept {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}

inline float b2f(std::uint32_t b) noexcept {
  float v;
  std::memcpy(&v, &b, 4);
  return v;
}

// ---- scalar reference kernels --------------------------------------------

void fwht_scalar(float* d, std::size_t n) noexcept {
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const float a = d[j];
        const float b = d[j + len];
        d[j] = a + b;
        d[j + len] = a - b;
      }
    }
  }
}

void fwht_orthonormal_scalar(float* d, std::size_t n) noexcept {
  if (n <= 1) return;  // H is identity and the scale is exactly 1
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  for (std::size_t len = 1; len < n >> 1; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const float a = d[j];
        const float b = d[j + len];
        d[j] = a + b;
        d[j + len] = a - b;
      }
    }
  }
  const std::size_t half = n >> 1;
  for (std::size_t j = 0; j < half; ++j) {
    const float a = d[j];
    const float b = d[j + half];
    d[j] = (a + b) * scale;
    d[j + half] = (a - b) * scale;
  }
}

void split_scalar(const float* r, std::size_t n, std::uint8_t* heads,
                  std::uint32_t* mags) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = f2b(r[i]);
    heads[i] = (b & kSignMask) == 0 ? 1 : 0;
    mags[i] = b & kMagMask;
  }
}

void join_scalar(const std::uint8_t* heads, const std::uint32_t* tails,
                 const std::uint8_t* trimmed, float scale, float* out,
                 std::size_t n) noexcept {
  const std::uint32_t scale_mag = f2b(scale) & kMagMask;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t sign = heads[i] != 0 ? 0u : kSignMask;
    const std::uint32_t mag =
        trimmed[i] != 0 ? scale_mag : (tails[i] & kMagMask);
    out[i] = b2f(sign | mag);
  }
}

void encode_sd_scalar(const float* v, const float* dither, std::size_t n,
                      std::uint8_t* heads, std::uint32_t* tails) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    heads[i] = v[i] + dither[i] >= 0.0f ? 1 : 0;
    const std::uint32_t b = f2b(v[i]);
    tails[i] = ((b >> 31) << 30) | ((b & kMagMask) >> 1);
  }
}

void eden_quantize_scalar(const float* r, std::size_t n, double rms,
                          const float* boundaries, std::size_t nb,
                          std::uint32_t* codes) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(static_cast<double>(r[i]) / rms);
    codes[i] = static_cast<std::uint32_t>(
        std::upper_bound(boundaries, boundaries + nb, x) - boundaries);
  }
}

// ---- AVX2 kernels --------------------------------------------------------

#if TRIMGRAD_SIMD_X86

// In-register butterflies for stage lengths 1/2/4: partners live inside one
// 8-float vector, so three stages cost one load/store sweep. Each is the
// exact elementwise (a+b, a-b) the scalar loops perform — the blend only
// routes results, it never changes an operation.
TG_AVX2 inline __m256 stage_len1(__m256 v) noexcept {
  const __m256 sw = _mm256_permute_ps(v, 0xB1);  // swap adjacent elements
  return _mm256_blend_ps(_mm256_add_ps(v, sw), _mm256_sub_ps(sw, v), 0xAA);
}

TG_AVX2 inline __m256 stage_len2(__m256 v) noexcept {
  const __m256 sw = _mm256_permute_ps(v, 0x4E);  // swap 2-element halves
  return _mm256_blend_ps(_mm256_add_ps(v, sw), _mm256_sub_ps(sw, v), 0xCC);
}

TG_AVX2 inline __m256 stage_len4(__m256 v) noexcept {
  const __m256 sw = _mm256_permute2f128_ps(v, v, 0x01);  // swap 128-bit lanes
  return _mm256_blend_ps(_mm256_add_ps(v, sw), _mm256_sub_ps(sw, v), 0xF0);
}

TG_AVX2 void fwht_avx2(float* d, std::size_t n, bool orthonormal) noexcept {
  if (n < 8) {
    orthonormal ? fwht_orthonormal_scalar(d, n) : fwht_scalar(d, n);
    return;
  }
  const float scale =
      orthonormal ? 1.0f / std::sqrt(static_cast<float>(n)) : 1.0f;
  // Stages len=1,2,4 in one sweep (len=4 is the final stage when n == 8).
  const bool fuse_here = orthonormal && n == 8;
  const __m256 vscale = _mm256_set1_ps(scale);
  for (std::size_t i = 0; i < n; i += 8) {
    __m256 v = _mm256_loadu_ps(d + i);
    v = stage_len4(stage_len2(stage_len1(v)));
    if (fuse_here) v = _mm256_mul_ps(v, vscale);
    _mm256_storeu_ps(d + i, v);
  }
  // Stages len >= 8: plain paired add/sub sweeps; the 1/sqrt(n) scale is
  // fused into the final stage exactly like the scalar reference.
  for (std::size_t len = 8; len < n; len <<= 1) {
    const bool fuse = orthonormal && (len << 1) == n;
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; j += 8) {
        const __m256 a = _mm256_loadu_ps(d + j);
        const __m256 b = _mm256_loadu_ps(d + j + len);
        __m256 sum = _mm256_add_ps(a, b);
        __m256 diff = _mm256_sub_ps(a, b);
        if (fuse) {
          sum = _mm256_mul_ps(sum, vscale);
          diff = _mm256_mul_ps(diff, vscale);
        }
        _mm256_storeu_ps(d + j, sum);
        _mm256_storeu_ps(d + j + len, diff);
      }
    }
  }
}

TG_AVX2 void split_avx2(const float* r, std::size_t n, std::uint8_t* heads,
                        std::uint32_t* mags) noexcept {
  const __m256i magmask = _mm256_set1_epi32(static_cast<int>(kMagMask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(r + i);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(mags + i),
        _mm256_and_si256(_mm256_castps_si256(v), magmask));
    // movemask bit k = sign of lane k; heads want 1 where the sign is clear.
    const std::uint64_t m = static_cast<unsigned>(_mm256_movemask_ps(v));
    const std::uint64_t spread = ((~m & 0xffu) * kByteOnes) & kLsbSpread;
    const std::uint64_t bytes =
        ((spread + 0x7f7f7f7f7f7f7f7full) >> 7) & kByteOnes;
    std::memcpy(heads + i, &bytes, 8);
  }
  if (i < n) split_scalar(r + i, n - i, heads + i, mags + i);
}

TG_AVX2 void join_avx2(const std::uint8_t* heads, const std::uint32_t* tails,
                       const std::uint8_t* trimmed, float scale, float* out,
                       std::size_t n) noexcept {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(kSignMask));
  const __m256i mag = _mm256_set1_epi32(static_cast<int>(kMagMask));
  const __m256i scale_mag =
      _mm256_set1_epi32(static_cast<int>(f2b(scale) & kMagMask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i h = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(heads + i)));
    const __m256i tr = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(trimmed + i)));
    const __m256i t = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(tails + i));
    const __m256i signbits =
        _mm256_and_si256(_mm256_cmpeq_epi32(h, zero), sign);
    const __m256i full = _mm256_or_si256(signbits, _mm256_and_si256(t, mag));
    const __m256i trimv = _mm256_or_si256(signbits, scale_mag);
    const __m256i keep_full = _mm256_cmpeq_epi32(tr, zero);
    const __m256i bits = _mm256_blendv_epi8(trimv, full, keep_full);
    _mm256_storeu_ps(out + i, _mm256_castsi256_ps(bits));
  }
  if (i < n) join_scalar(heads + i, tails + i, trimmed + i, scale, out + i,
                         n - i);
}

TG_AVX2 void encode_sd_avx2(const float* v, const float* dither,
                            std::size_t n, std::uint8_t* heads,
                            std::uint32_t* tails) noexcept {
  const __m256i mag = _mm256_set1_epi32(static_cast<int>(kMagMask));
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 s = _mm256_add_ps(x, _mm256_loadu_ps(dither + i));
    const std::uint64_t ge = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(s, zero, _CMP_GE_OQ)));
    const std::uint64_t spread = ((ge & 0xffu) * kByteOnes) & kLsbSpread;
    const std::uint64_t bytes =
        ((spread + 0x7f7f7f7f7f7f7f7full) >> 7) & kByteOnes;
    std::memcpy(heads + i, &bytes, 8);
    const __m256i b = _mm256_castps_si256(x);
    const __m256i sgn = _mm256_slli_epi32(_mm256_srli_epi32(b, 31), 30);
    const __m256i em = _mm256_srli_epi32(_mm256_and_si256(b, mag), 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tails + i),
                        _mm256_or_si256(sgn, em));
  }
  if (i < n) encode_sd_scalar(v + i, dither + i, n - i, heads + i, tails + i);
}

TG_AVX2 void eden_quantize_avx2(const float* r, std::size_t n, double rms,
                                const float* boundaries, std::size_t nb,
                                std::uint32_t* codes) noexcept {
  // Normalization replicates the scalar encoder exactly: promote to double,
  // divide, round back to float, then count boundaries <= x (== the
  // upper_bound index over an ascending array).
  const __m256d vrms = _mm256_set1_pd(rms);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(r + i);
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    const __m128 flo =
        _mm256_cvtpd_ps(_mm256_div_pd(_mm256_cvtps_pd(lo), vrms));
    const __m128 fhi =
        _mm256_cvtpd_ps(_mm256_div_pd(_mm256_cvtps_pd(hi), vrms));
    const __m256 x =
        _mm256_insertf128_ps(_mm256_castps128_ps256(flo), fhi, 1);
    __m256i code = _mm256_setzero_si256();
    for (std::size_t j = 0; j < nb; ++j) {
      const __m256 b = _mm256_set1_ps(boundaries[j]);
      code = _mm256_sub_epi32(
          code, _mm256_castps_si256(_mm256_cmp_ps(x, b, _CMP_GE_OQ)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i), code);
  }
  if (i < n)
    eden_quantize_scalar(r + i, n - i, rms, boundaries, nb, codes + i);
}

bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2"); }

#endif  // TRIMGRAD_SIMD_X86

// ---- NEON kernels --------------------------------------------------------

#if TRIMGRAD_SIMD_NEON

inline float32x4_t neon_stage_len1(float32x4_t v) noexcept {
  const float32x4_t sw = vrev64q_f32(v);  // swap adjacent pairs
  const uint32x4_t mask = {0u, ~0u, 0u, ~0u};
  return vbslq_f32(mask, vsubq_f32(sw, v), vaddq_f32(v, sw));
}

inline float32x4_t neon_stage_len2(float32x4_t v) noexcept {
  const float32x4_t sw = vextq_f32(v, v, 2);  // swap 2-element halves
  const uint32x4_t mask = {0u, 0u, ~0u, ~0u};
  return vbslq_f32(mask, vsubq_f32(sw, v), vaddq_f32(v, sw));
}

void fwht_neon(float* d, std::size_t n, bool orthonormal) noexcept {
  if (n < 8) {
    orthonormal ? fwht_orthonormal_scalar(d, n) : fwht_scalar(d, n);
    return;
  }
  const float scale =
      orthonormal ? 1.0f / std::sqrt(static_cast<float>(n)) : 1.0f;
  const float32x4_t vscale = vdupq_n_f32(scale);
  for (std::size_t i = 0; i < n; i += 4) {
    float32x4_t v = vld1q_f32(d + i);
    v = neon_stage_len2(neon_stage_len1(v));
    vst1q_f32(d + i, v);
  }
  for (std::size_t len = 4; len < n; len <<= 1) {
    const bool fuse = orthonormal && (len << 1) == n;
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; j += 4) {
        const float32x4_t a = vld1q_f32(d + j);
        const float32x4_t b = vld1q_f32(d + j + len);
        float32x4_t sum = vaddq_f32(a, b);
        float32x4_t diff = vsubq_f32(a, b);
        if (fuse) {
          sum = vmulq_f32(sum, vscale);
          diff = vmulq_f32(diff, vscale);
        }
        vst1q_f32(d + j, sum);
        vst1q_f32(d + j + len, diff);
      }
    }
  }
}

void split_neon(const float* r, std::size_t n, std::uint8_t* heads,
                std::uint32_t* mags) noexcept {
  const uint32x4_t magmask = vdupq_n_u32(kMagMask);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t b = vreinterpretq_u32_f32(vld1q_f32(r + i));
    vst1q_u32(mags + i, vandq_u32(b, magmask));
    // head = 1 where the sign bit is clear.
    const uint32x4_t h = veorq_u32(vshrq_n_u32(b, 31), vdupq_n_u32(1));
    heads[i] = static_cast<std::uint8_t>(vgetq_lane_u32(h, 0));
    heads[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u32(h, 1));
    heads[i + 2] = static_cast<std::uint8_t>(vgetq_lane_u32(h, 2));
    heads[i + 3] = static_cast<std::uint8_t>(vgetq_lane_u32(h, 3));
  }
  if (i < n) split_scalar(r + i, n - i, heads + i, mags + i);
}

#endif  // TRIMGRAD_SIMD_NEON

// ---- dispatch ------------------------------------------------------------

Isa best_available() noexcept {
#if TRIMGRAD_SIMD_X86
  if (cpu_has_avx2()) return Isa::kAvx2;
#endif
#if TRIMGRAD_SIMD_NEON
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

Isa clamp_to_available(Isa want) noexcept {
  const Isa avail = best_available();
  return static_cast<std::uint8_t>(want) <= static_cast<std::uint8_t>(avail)
             ? want
             : avail;
}

Isa resolve_initial() noexcept {
  if (const char* env = std::getenv("TRIMGRAD_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(env, "avx2") == 0) return clamp_to_available(Isa::kAvx2);
    if (std::strcmp(env, "neon") == 0) return clamp_to_available(Isa::kNeon);
    // Unrecognized values fall through to auto-detection.
  }
  return best_available();
}

std::atomic<int> g_isa{-1};

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kNeon: return "neon";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

Isa compiled_isa() noexcept {
#if TRIMGRAD_SIMD_X86
  return Isa::kAvx2;
#elif TRIMGRAD_SIMD_NEON
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

Isa active_isa() noexcept {
  const int v = g_isa.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  const Isa resolved = resolve_initial();
  g_isa.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

Isa set_isa(Isa isa) noexcept {
  const Isa clamped = clamp_to_available(isa);
  g_isa.store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

void fwht(float* data, std::size_t n) noexcept {
#if TRIMGRAD_SIMD_X86
  if (active_isa() == Isa::kAvx2) return fwht_avx2(data, n, false);
#endif
#if TRIMGRAD_SIMD_NEON
  if (active_isa() == Isa::kNeon) return fwht_neon(data, n, false);
#endif
  fwht_scalar(data, n);
}

void fwht_orthonormal(float* data, std::size_t n) noexcept {
#if TRIMGRAD_SIMD_X86
  if (active_isa() == Isa::kAvx2) return fwht_avx2(data, n, true);
#endif
#if TRIMGRAD_SIMD_NEON
  if (active_isa() == Isa::kNeon) return fwht_neon(data, n, true);
#endif
  fwht_orthonormal_scalar(data, n);
}

void split_sign_mag(const float* r, std::size_t n, std::uint8_t* heads,
                    std::uint32_t* mags) noexcept {
#if TRIMGRAD_SIMD_X86
  if (active_isa() == Isa::kAvx2) return split_avx2(r, n, heads, mags);
#endif
#if TRIMGRAD_SIMD_NEON
  if (active_isa() == Isa::kNeon) return split_neon(r, n, heads, mags);
#endif
  split_scalar(r, n, heads, mags);
}

void join_sign_mag(const std::uint8_t* heads, const std::uint32_t* tails,
                   const std::uint8_t* trimmed, float scale, float* out,
                   std::size_t n) noexcept {
#if TRIMGRAD_SIMD_X86
  if (active_isa() == Isa::kAvx2)
    return join_avx2(heads, tails, trimmed, scale, out, n);
#endif
  join_scalar(heads, tails, trimmed, scale, out, n);
}

void encode_sd(const float* v, const float* dither, std::size_t n,
               std::uint8_t* heads, std::uint32_t* tails) noexcept {
#if TRIMGRAD_SIMD_X86
  if (active_isa() == Isa::kAvx2)
    return encode_sd_avx2(v, dither, n, heads, tails);
#endif
  encode_sd_scalar(v, dither, n, heads, tails);
}

void eden_quantize(const float* r, std::size_t n, double rms,
                   const float* boundaries, std::size_t n_boundaries,
                   std::uint32_t* codes) noexcept {
  assert(rms > 0.0);
#if TRIMGRAD_SIMD_X86
  // The compare-count form is linear in the boundary count; past ~32
  // thresholds the scalar binary search wins.
  if (active_isa() == Isa::kAvx2 && n_boundaries <= 32)
    return eden_quantize_avx2(r, n, rms, boundaries, n_boundaries, codes);
#endif
  eden_quantize_scalar(r, n, rms, boundaries, n_boundaries, codes);
}

}  // namespace trimgrad::core::simd
