// String-keyed transport registry: every layer selects a transport by name.
//
// The repo grew three sender/receiver families (window, pull, ECN) with two
// delivery policies (trim-aware, reliable). Sweeps and experiment specs
// want to pick between them declaratively — "transport=pull" in a spec
// string — without each bench hand-wiring the concrete classes. The
// registry exposes each as a named `Transport` that can stamp out abstract
// `Flow`s (sender + receiver pair wired onto the fabric):
//
//   "trim"     — window/ACK-clocked, trimmed arrivals delivered (the paper)
//   "reliable" — window/ACK-clocked, trimmed arrivals NACKed (NCCL stand-in)
//   "pull"     — NDP-style receiver-paced, trim-aware
//   "ecn"      — DCTCP ECN-reactive window, trim-aware
//
// Adding a fourth transport is: implement the Flow interface over your
// sender/receiver pair, register it in transport_registry.cpp, done — the
// conformance suite (tests/net/transport_conformance_test.cpp) and every
// spec-driven bench pick it up by name.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/flow_core.h"
#include "net/sim.h"

namespace trimgrad::net {

/// Transport-agnostic tuning overrides. 0 keeps the transport's native
/// default (window 64 / burst 12 / initial_window 16; rto 200 µs window,
/// 500 µs pull+ECN; rto_cap 5 ms; budget and deadline disabled). Whether
/// trimmed arrivals are deliveries is the *transport's* identity ("trim"
/// vs "reliable"), not a tuning knob.
struct FlowTuning {
  std::size_t window = 0;  ///< in-flight cap / initial burst / initial window
  SimTime rto = 0;
  SimTime rto_cap = 0;
  std::size_t retransmit_budget = 0;
  SimTime flow_deadline = 0;
};

/// Receiver-side wiring for a flow built through the registry.
struct FlowOptions {
  std::size_t expected_packets = 0;
  std::function<void(const Frame&)> on_data;
  std::function<void(const ReceiverStats&)> on_receiver_complete;
};

/// A sender/receiver pair wired onto the fabric, driven uniformly.
class Flow {
 public:
  virtual ~Flow() = default;

  /// One message per flow; `on_complete` fires exactly once (complete or
  /// failed — see FlowCore).
  virtual void send_message(
      std::vector<SendItem> items,
      std::function<void(const FlowStats&)> on_complete) = 0;
  virtual void abort() = 0;

  virtual bool sender_active() const = 0;
  virtual SimTime current_rto() const = 0;
  virtual const FlowStats& stats() const = 0;
  virtual const ReceiverStats& receiver_stats() const = 0;
};

/// A named transport: a factory for Flows plus its delivery policy.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual const std::string& name() const = 0;
  virtual const char* summary() const = 0;
  /// Whether a trimmed arrival counts as delivered (false: it is NACKed).
  virtual bool delivers_trimmed() const = 0;

  /// Wire a flow between two Host nodes. The receiver is constructed
  /// before the sender (the flow is quiescent until send_message).
  virtual std::unique_ptr<Flow> make_flow(Simulator& sim, NodeId src,
                                          NodeId dst, std::uint32_t flow_id,
                                          const FlowTuning& tuning,
                                          FlowOptions options) const = 0;
};

class TransportRegistry {
 public:
  /// The process-wide registry with the four built-in transports.
  static const TransportRegistry& global();

  /// nullptr when `name` is not registered.
  const Transport* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the registered names.
  const Transport& at(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  void add(std::unique_ptr<Transport> transport);

 private:
  std::vector<std::unique_ptr<Transport>> transports_;
};

}  // namespace trimgrad::net
