file(REMOVE_RECURSE
  "CMakeFiles/congestion_fabric.dir/congestion_fabric.cpp.o"
  "CMakeFiles/congestion_fabric.dir/congestion_fabric.cpp.o.d"
  "congestion_fabric"
  "congestion_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
