// Serialize a MetricsRegistry snapshot as JSON, in registration order:
//   {"counters":{name:value,...},
//    "gauges":{name:value,...},
//    "histograms":{name:{"bounds":[...],"counts":[...],"total":n},...}}
// Formatting is deterministic (fixed printf formats), so two snapshots are
// byte-equal iff their values are.
#pragma once

#include <string>

#include "core/metrics.h"

namespace trimgrad::core {

std::string metrics_to_json(const MetricsRegistry::Snapshot& snap);
std::string metrics_to_json(const MetricsRegistry& registry);

/// Snapshot `registry` and write it to `path`; false on I/O failure.
bool write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry);

}  // namespace trimgrad::core
