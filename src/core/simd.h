// SIMD kernel dispatch for the codec hot paths.
//
// Every inner loop that moves a gradient coordinate — FWHT butterflies,
// sign/magnitude splits, EDEN codebook quantization — funnels through this
// header so there is exactly one place where instruction sets are chosen.
// Three implementations exist per kernel:
//
//   * AVX2 (x86-64)  — compiled with per-function target attributes, so the
//     default build carries the vector code even without -mavx2; it is only
//     *executed* after a runtime cpuid check.
//   * NEON (aarch64) — compiled when __ARM_NEON is available.
//   * scalar         — the reference; always compiled, always available.
//
// Dispatch policy: at first use the active ISA is resolved as
// min(best compiled, best the CPU supports, TRIMGRAD_SIMD override). The
// TRIMGRAD_SIMD environment variable ("scalar", "avx2", "neon") exists so
// tests can run the same binary down both paths and assert bit-identity,
// and so a misbehaving vector path can be disabled in the field without a
// rebuild. set_isa() does the same programmatically (tests/benches).
//
// Determinism contract: every kernel here is *lane-parallel over
// independent elements* — element i of the output depends only on element i
// of the inputs, through the exact same IEEE-754 operations the scalar
// reference performs (adds/subs/divides/compares/bit twiddles; never a
// reassociated reduction). Vector and scalar paths therefore produce
// bit-identical results, which is what lets SIMD-vs-scalar builds (and any
// TRIMGRAD_THREADS) decode each other's packets exactly. Reductions with
// order-sensitive rounding (row norms, EDEN's ⟨R,C⟩) deliberately stay
// scalar in their callers. tests/core/simd_test.cpp enforces the contract
// kernel by kernel.
#pragma once

#include <cstddef>
#include <cstdint>

namespace trimgrad::core::simd {

enum class Isa : std::uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2 };

const char* to_string(Isa isa) noexcept;

/// Best ISA this binary was compiled with kernels for.
Isa compiled_isa() noexcept;

/// ISA the kernels will actually use (compiled ∧ CPU-supported ∧ override).
Isa active_isa() noexcept;

/// Force an ISA at or below what compiled/CPU support allows (requests are
/// clamped). Intended for tests and benches; returns the ISA now active.
Isa set_isa(Isa isa) noexcept;

// ---- FWHT ----------------------------------------------------------------

/// In-place unnormalized fast Walsh–Hadamard transform over n = 2^k floats.
/// Bit-identical to the textbook nested-loop form.
void fwht(float* data, std::size_t n) noexcept;

/// fwht with the 1/sqrt(n) scale fused into the final butterfly stage
/// (same multiply a separate scaling pass would do — one fewer sweep).
/// n must be >= 2; n == 1 is the identity with scale exactly 1.
void fwht_orthonormal(float* data, std::size_t n) noexcept;

// ---- sign/magnitude split & join (RHT and sign-scheme heads) -------------

/// heads[i] = (sign bit of r[i] clear) ? 1 : 0; mags[i] = bits & 0x7fffffff.
void split_sign_mag(const float* r, std::size_t n, std::uint8_t* heads,
                    std::uint32_t* mags) noexcept;

/// Inverse of split_sign_mag with per-coordinate trim fallback:
///   out[i] = trimmed[i] ? ±scale (sign from head) : float(head|tail bits).
void join_sign_mag(const std::uint8_t* heads, const std::uint32_t* tails,
                   const std::uint8_t* trimmed, float scale, float* out,
                   std::size_t n) noexcept;

// ---- scalar-scheme bulk encodes ------------------------------------------

/// Subtractive-dithering encode: heads[i] = (v[i] + dither[i] >= 0),
/// tails[i] = sign(1) | exponent(8) | mantissa[22..1] of v[i] (31 bits).
void encode_sd(const float* v, const float* dither, std::size_t n,
               std::uint8_t* heads, std::uint32_t* tails) noexcept;

// ---- EDEN codebook quantization ------------------------------------------

/// codes[i] = #{ j : boundaries[j] <= float(double(r[i]) / rms) } — exactly
/// the scalar upper_bound search over the codebook thresholds, with the
/// normalization performed in double precision like the scalar encoder.
/// boundaries must be ascending; rms must be > 0 and finite.
void eden_quantize(const float* r, std::size_t n, double rms,
                   const float* boundaries, std::size_t n_boundaries,
                   std::uint32_t* codes) noexcept;

}  // namespace trimgrad::core::simd
