#include "net/transport.h"

#include <cassert>

namespace trimgrad::net {

// ---------------------------------------------------------------- Sender --

Sender::Sender(Host& host, NodeId dst, std::uint32_t flow_id,
               TransportConfig cfg)
    : host_(host), flow_id_(flow_id), cfg_(cfg), core_(host, dst, flow_id) {
  host_.bind(flow_id_, this);
}

Sender::~Sender() { host_.unbind(flow_id_); }

void Sender::send_message(std::vector<SendItem> items,
                          std::function<void(const FlowStats&)> on_complete) {
  assert(!core_.active() && "one message at a time per Sender");
  sent_unacked_ = 0;
  last_cum_ = 0;
  dup_cum_ = 0;
  const FlowCore::Limits limits{cfg_.rto, cfg_.rto_cap, cfg_.retransmit_budget,
                                cfg_.flow_deadline};
  if (core_.begin(std::move(items), limits, std::move(on_complete))) return;
  try_send_new();
  core_.arm_timer();
}

void Sender::abort() { core_.abort(); }

void Sender::try_send_new() {
  while (sent_unacked_ < cfg_.window && core_.has_unsent()) {
    core_.send_next_new();
    ++sent_unacked_;
  }
}

void Sender::on_frame(Frame frame) {
  if (!core_.active()) return;
  if (frame.kind == FrameKind::kNack) {
    core_.handle_nack(frame.ack_echo);
    return;
  }
  if (frame.kind != FrameKind::kAck) return;

  if (core_.mark_acked(frame.ack_echo, frame.ack_was_trimmed)) {
    assert(sent_unacked_ > 0);
    --sent_unacked_;
    core_.arm_timer();
  }

  // Triple-duplicate cumulative ACK => fast retransmit of the hole.
  if (frame.ack_seq == last_cum_) {
    if (++dup_cum_ == 3) {
      dup_cum_ = 0;
      core_.fast_retransmit(frame.ack_seq);
    }
  } else {
    last_cum_ = frame.ack_seq;
    dup_cum_ = 0;
  }

  if (core_.all_acked()) {
    core_.complete();
  } else {
    try_send_new();
  }
}

// -------------------------------------------------------------- Receiver --

Receiver::Receiver(Host& host, NodeId peer, std::uint32_t flow_id,
                   std::size_t expected_packets, TransportConfig cfg,
                   std::function<void(const Frame&)> on_data,
                   std::function<void(const ReceiverStats&)> on_complete)
    : host_(host),
      flow_id_(flow_id),
      core_(host, flow_id, expected_packets,
            ReceiverCore::Policy{cfg.trimmed_is_delivered,
                                 /*cumulative_ack=*/true,
                                 /*echo_ecn=*/false},
            std::move(on_data), std::move(on_complete)) {
  (void)peer;
  host_.bind(flow_id_, this);
}

Receiver::~Receiver() { host_.unbind(flow_id_); }

void Receiver::on_frame(Frame frame) {
  if (!core_.pre_deliver(frame)) return;
  core_.deliver(frame);
  core_.maybe_complete();
}

}  // namespace trimgrad::net
