// Elastic chaos soak: DDP training on the discrete-event fabric while a
// seed-chosen rank's host is killed and later restarted. The membership
// control plane must detect the death by missed heartbeats, evict the rank,
// keep training over the surviving view, and — once the host returns —
// restore it from its checkpoint, refill parameters from a live peer, and
// re-admit it under a new view.
//
// Invariants checked every run (and gated in CI via tools/check_bench.py
// --elastic): the event queue drains, every epoch's loss is finite, view
// versions only ever advance, at least one full evict→rejoin cycle
// completes, and the healed run's final loss lands within tolerance of an
// uninterrupted baseline with the same spec.
//
// Usage: bench_soak_elastic [spec-string]
//   default spec: transport=trim,scheme=rht,topology=fabric,faults=elastic,
//                 heartbeat_ms=0.5,evict_after=2,ckpt_every=2,...
//   TRIMGRAD_SMOKE=1 shrinks epochs and runs one kill/restart cycle.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "collective/sim_channel.h"
#include "core/prng.h"
#include "ddp/experiment.h"
#include "ddp/membership.h"
#include "ddp/trainer.h"
#include "net/fault_plane.h"
#include "net/topology.h"

using namespace trimgrad;

namespace {

struct SoakResult {
  std::vector<ddp::EpochRecord> records;
  std::vector<ddp::MembershipEvent> events;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t heartbeat_misses = 0;
  std::size_t recovered_ranks = 0;
  std::size_t degraded_rounds = 0;
  double recovery_s = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t checkpoint_saves = 0;
  double checkpoint_save_wall_s = 0;
  bool drained = false;
  int victim = -1;
};

/// One soak cell. `with_faults` false runs the identical spec with no kill
/// windows — the baseline the healed run must converge back to.
SoakResult run_soak(const ddp::ExperimentSpec& spec, bool with_faults,
                    bool smoke) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  const std::vector<net::NodeId> ranks = {
      topo.left_hosts[0], topo.left_hosts[1], topo.right_hosts[0],
      topo.right_hosts[1]};

  // Kill/restart script, derived from the spec's fault seed: a non-
  // coordinator victim rank, dead from 30 ms for 80–100 ms, once in smoke
  // mode and twice (150 ms apart) in the full soak.
  const int victim =
      1 + static_cast<int>(core::mix64(spec.fault_seed, 0xe1a5) %
                           static_cast<std::uint64_t>(spec.world - 1));
  net::FaultPlaneConfig pcfg;
  pcfg.seed = spec.fault_seed;
  if (with_faults) {
    net::NodeFault dead;
    dead.node = ranks[static_cast<std::size_t>(victim)];
    dead.start = 30e-3;
    dead.duration = smoke ? 80e-3 : 100e-3;
    dead.period = 150e-3;
    dead.repeats = smoke ? 1 : 2;
    pcfg.node_faults.push_back(dead);
  }
  net::FaultPlane plane(pcfg);
  sim.set_fault_plane(&plane);

  collective::SimChannel::Config ccfg = spec.sim_channel_config();
  ccfg.tuning.rto = 100e-6;
  ccfg.tuning.rto_cap = 1e-3;
  ccfg.tuning.retransmit_budget = 400;
  collective::SimChannel channel(sim, ranks, ccfg);

  std::vector<net::Host*> hosts;
  for (const auto id : ranks) {
    hosts.push_back(static_cast<net::Host*>(&sim.node(id)));
  }
  ddp::MembershipConfig mcfg = spec.membership_config();
  mcfg.fetch_tuning = ccfg.tuning;
  ddp::Membership membership(sim, hosts, mcfg);
  channel.set_view(&membership.view());

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  dcfg.proto_grid = 3;
  ml::SynthCifar data(dcfg);

  ddp::TrainerConfig tcfg = spec.trainer_config();
  tcfg.eval_every = 0;
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  ddp::DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg2;
    mcfg2.classes = 10;
    mcfg2.height = mcfg2.width = 8;
    return ml::make_mlp(mcfg2, 48);
  });
  trainer.attach_membership(&membership);

  SoakResult out;
  out.victim = victim;
  out.records = trainer.train();
  out.events = membership.events();
  out.evictions = membership.evictions();
  out.rejoins = membership.rejoins();
  out.heartbeat_misses = membership.heartbeat_misses();
  out.recovery_s = membership.total_recovery_s();
  out.checkpoint_bytes = membership.checkpoint_bytes();
  out.checkpoint_saves = membership.checkpoint_saves();
  out.checkpoint_save_wall_s = membership.checkpoint_save_wall_s();
  for (const auto& r : out.records) {
    out.recovered_ranks += r.recovered_ranks;
    out.degraded_rounds += r.degraded_rounds;
  }
  const net::SimTime t_end = sim.now();
  out.drained = sim.run() == t_end;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  std::string spec_text =
      "transport=trim,scheme=rht,topology=fabric,faults=elastic,"
      "deadline=0.01,world=4,batch=32,lr=0.05,fault_seed=7,"
      "heartbeat_ms=0.5,evict_after=2,ckpt_every=2";
  spec_text += smoke ? ",epochs=3" : ",epochs=6";
  if (argc > 1) spec_text = argv[1];

  ddp::ExperimentSpec spec;
  try {
    spec = ddp::ExperimentSpec::parse(spec_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad spec: %s\n", e.what());
    return 1;
  }
  if (spec.world != 4) {
    std::fprintf(stderr, "this soak pins world=4 (dumbbell 2x2)\n");
    return 1;
  }

  std::printf("# elastic soak: %s\n", spec.serialize().c_str());
  const SoakResult elastic = run_soak(spec, /*with_faults=*/true, smoke);
  const SoakResult baseline = run_soak(spec, /*with_faults=*/false, smoke);

  bool loss_finite = true;
  for (const auto& r : elastic.records) {
    loss_finite = loss_finite && std::isfinite(r.train_loss);
  }
  bool views_monotone = true;
  std::uint64_t prev_view = 0;
  for (const auto& e : elastic.events) {
    views_monotone = views_monotone && e.view > prev_view;
    prev_view = e.view;
  }
  const double final_loss = elastic.records.back().train_loss;
  const double base_loss = baseline.records.back().train_loss;
  const double loss_gap = std::fabs(final_loss - base_loss);
  const double loss_tolerance = 0.5;

  std::printf("%8s %8s %8s %8s %10s %10s %8s %8s\n", "victim", "evict",
              "rejoin", "misses", "recover_s", "loss_gap", "degr", "drain");
  std::printf("%8d %8llu %8llu %8llu %10.4f %10.4f %8zu %8s\n",
              elastic.victim,
              static_cast<unsigned long long>(elastic.evictions),
              static_cast<unsigned long long>(elastic.rejoins),
              static_cast<unsigned long long>(elastic.heartbeat_misses),
              elastic.recovery_s, loss_gap, elastic.degraded_rounds,
              elastic.drained ? "yes" : "NO");

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"%s\",\"smoke\":%s,\"victim\":%d,"
      "\"final_loss\":%.6f,\"baseline_loss\":%.6f,"
      "\"loss_gap\":%.6f,\"loss_tolerance\":%.3f,"
      "\"evictions\":%llu,\"rejoins\":%llu,\"recovered_ranks\":%zu,"
      "\"heartbeat_misses\":%llu,\"time_to_recover_s\":%.6f,"
      "\"rounds_degraded\":%zu,"
      "\"checkpoint_bytes\":%llu,\"checkpoint_saves\":%llu,"
      "\"checkpoint_save_wall_s\":%.6f,"
      "\"views_monotone\":%s,\"drained\":%s,\"loss_finite\":%s}",
      spec.label().c_str(), smoke ? "true" : "false", elastic.victim,
      final_loss, base_loss, loss_gap, loss_tolerance,
      static_cast<unsigned long long>(elastic.evictions),
      static_cast<unsigned long long>(elastic.rejoins),
      elastic.recovered_ranks,
      static_cast<unsigned long long>(elastic.heartbeat_misses),
      elastic.recovery_s, elastic.degraded_rounds,
      static_cast<unsigned long long>(elastic.checkpoint_bytes),
      static_cast<unsigned long long>(elastic.checkpoint_saves),
      elastic.checkpoint_save_wall_s, views_monotone ? "true" : "false",
      elastic.drained ? "true" : "false", loss_finite ? "true" : "false");
  {
    std::ofstream out("BENCH_elastic.json", std::ios::binary);
    out << buf << '\n';
    if (out) std::printf("wrote BENCH_elastic.json\n");
  }
  std::printf("# (expected: >=1 evict->rejoin cycle, monotone views, drained "
              "queue, final loss within %.2f of the uninterrupted baseline)\n",
              loss_tolerance);
  return 0;
}
