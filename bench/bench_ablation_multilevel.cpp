// Experiment X1 (DESIGN.md): multi-level trimming ablation (paper §5.1).
//
// The paper's open question: under a fixed byte budget, is it better to
// trim MANY packets mildly (to the 8-bit level, ~25 % size) or FEW packets
// severely (to the 1-bit level, ~3 % size)? We sweep the surviving-byte
// budget, construct both strategies (plus mixtures) to meet it, and report
// decode NMSE — the data a switch trim policy needs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/multilevel.h"
#include "core/prng.h"
#include "core/stats.h"

using namespace trimgrad;

namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

struct Strategy {
  const char* name;
  core::TrimLevel level;
};

/// Trim packets (in index order) to `level` until total size <= budget;
/// returns achieved bytes. If trimming every packet to `level` still
/// exceeds the budget, that's the floor for this strategy.
std::size_t trim_to_budget(std::vector<core::MlPacket>& pkts,
                           core::TrimLevel level, std::size_t budget) {
  std::size_t total = 0;
  for (const auto& p : pkts) total += p.wire_bytes();
  for (auto& p : pkts) {
    if (total <= budget) break;
    const std::size_t before = p.wire_bytes();
    p.trim_to(level);
    total -= before - p.wire_bytes();
  }
  return total;
}

}  // namespace

int main() {
  const std::size_t n = 1 << 16;
  const auto v = gaussian_vec(n, 21);

  core::MultilevelCodec codec({core::PacketLayout{}, std::size_t{1} << 12, 5});
  const auto reference = codec.encode(v, 1, 1);
  std::size_t full_bytes = 0;
  for (const auto& p : reference.packets) full_bytes += p.wire_bytes();

  std::printf("# multilevel trimming under a byte budget (n=%zu, full=%zu "
              "bytes)\n",
              n, full_bytes);
  std::printf("%9s %14s %14s %12s %12s\n", "budget%", "mid_only_NMSE",
              "head_only_NMSE", "mid_bytes%", "head_bytes%");

  for (double budget_frac : {0.9, 0.7, 0.5, 0.3, 0.25, 0.1, 0.06, 0.03}) {
    const std::size_t budget =
        static_cast<std::size_t>(budget_frac * full_bytes);

    auto mid_msg = codec.encode(v, 1, 1);
    const std::size_t mid_achieved =
        trim_to_budget(mid_msg.packets, core::TrimLevel::kMid, budget);
    const double mid_nmse =
        core::nmse(codec.decode(mid_msg.packets, mid_msg.meta), v);

    auto head_msg = codec.encode(v, 1, 1);
    const std::size_t head_achieved =
        trim_to_budget(head_msg.packets, core::TrimLevel::kHead, budget);
    const double head_nmse =
        core::nmse(codec.decode(head_msg.packets, head_msg.meta), v);

    std::printf("%8.0f%% %14.4f %14.4f %11.1f%% %11.1f%%\n",
                budget_frac * 100, mid_nmse, head_nmse,
                100.0 * mid_achieved / full_bytes,
                100.0 * head_achieved / full_bytes);
  }
  std::printf(
      "# (expected: above ~25%% budget, trimming many packets to 8-bit "
      "beats trimming fewer to 1-bit; below the 25%% floor only the 1-bit "
      "level can meet the budget — the Sec 5.1 trade-off quantified)\n\n");

  std::printf("# level sanity: NMSE at uniform levels\n");
  for (auto [label, level] :
       {std::pair{"full", core::TrimLevel::kFull},
        std::pair{"mid(8b)", core::TrimLevel::kMid},
        std::pair{"head(1b)", core::TrimLevel::kHead}}) {
    auto msg = codec.encode(v, 1, 1);
    for (auto& p : msg.packets) p.trim_to(level);
    std::printf("  %-9s NMSE %.6f\n", label,
                core::nmse(codec.decode(msg.packets, msg.meta), v));
  }
  return 0;
}
