// Runtime invariant monitors: clean runs stay clean, faulted-but-recovered
// runs stay clean, and each property's violation path actually fires.
#include "net/invariants.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/fault_plane.h"
#include "net/flow_core.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

struct Bench {
  Simulator sim;
  Dumbbell topo;

  explicit Bench(QueuePolicy policy = QueuePolicy::kDropTail) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {10e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = 2048 * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 4, 4, cfg);
  }
};

/// Restores the mutation flag even when an assertion bails out early.
struct SwallowGuard {
  explicit SwallowGuard(bool on) { test_set_swallow_corrupt_frames(on); }
  ~SwallowGuard() { test_set_swallow_corrupt_frames(false); }
};

TEST(InvariantMonitor, CleanRunReportsNoViolations) {
  Bench b;
  InvariantMonitor monitor;
  monitor.attach(b.sim);

  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::reliable(), 16);
  flow.start_at(0.0, make_bulk_items(16, 1500, 0));
  b.sim.run();
  monitor.finalize();

  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(monitor.total_violations(), 0u) << "clean run must be clean";
  EXPECT_GT(monitor.checks(), 0u) << "monitor was not actually wired up";
  EXPECT_EQ(monitor.frames_in_flight(), 0u);
}

TEST(InvariantMonitor, FaultedRunWithWorkingRecoveryStaysClean) {
  // Corruption + a link flap + a brief dead node: the recovery paths (NACK,
  // RTO retransmit) route around all of it, so no property is violated.
  Bench b;
  FaultPlaneConfig fcfg;
  fcfg.seed = 11;
  fcfg.corrupt_rate = 0.1;
  LinkFault flap;
  flap.node = b.topo.left_switch;
  flap.port = 0;
  flap.start = 10e-6;
  flap.duration = 20e-6;
  flap.period = 200e-6;
  flap.repeats = 3;
  fcfg.link_faults.push_back(flap);
  NodeFault dead;
  dead.node = b.topo.right_hosts[1];
  dead.start = 0.0;
  dead.duration = 100e-6;
  fcfg.node_faults.push_back(dead);
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  InvariantMonitor monitor;
  monitor.attach(b.sim);

  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 50e-6;
  cfg.rto_cap = 200e-6;
  ManagedFlow f1(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                 24);
  ManagedFlow f2(b.sim, b.topo.left_hosts[1], b.topo.right_hosts[1], 2, cfg,
                 24);
  f1.start_at(0.0, make_bulk_items(24, 1500, 0));
  f2.start_at(0.0, make_bulk_items(24, 1500, 0));
  b.sim.run();
  monitor.finalize();

  EXPECT_TRUE(f1.stats().completed);
  EXPECT_TRUE(f2.stats().completed);
  ASSERT_GT(plane.log().size(), 0u) << "faults must actually have fired";
  EXPECT_EQ(monitor.total_violations(), 0u)
      << "working recovery paths preserve every invariant";
}

TEST(InvariantMonitor, SwallowedCorruptFrameViolatesConservation) {
  // The seeded mutation: the receiver detects the corrupt frame but skips
  // the NACK (and with it the delivery-outcome report). No counter goes
  // wrong — only the per-dispatch accounting notices the frame vanished.
  Bench b;
  FaultPlaneConfig fcfg;
  fcfg.seed = 7;
  fcfg.corrupt_rate = 0.25;
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  InvariantMonitor monitor;
  monitor.attach(b.sim);

  SwallowGuard guard(true);
  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 50e-6;
  cfg.rto_cap = 200e-6;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   32);
  flow.start_at(0.0, make_bulk_items(32, 1500, 0));
  b.sim.run();
  monitor.finalize();

  EXPECT_TRUE(flow.stats().completed)
      << "RTO retransmits still finish the flow — the bug is silent";
  ASSERT_GT(monitor.total_violations(), 0u);
  bool saw_conservation = false;
  for (const auto& v : monitor.violations()) {
    saw_conservation |= v.rule == "frame_conservation";
  }
  EXPECT_TRUE(saw_conservation)
      << "the swallowed frame must surface as a conservation violation";
}

TEST(InvariantMonitor, StuckFlowWatchdogFires) {
  // An absurdly tight progress deadline turns ordinary ACK gaps into
  // violations — proving the watchdog measures simulated-time progress.
  Bench b;
  InvariantMonitor::Config mcfg;
  mcfg.flow_progress_deadline = 1e-9;
  InvariantMonitor monitor(mcfg);
  monitor.attach(b.sim);

  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::reliable(), 8);
  flow.start_at(0.0, make_bulk_items(8, 1500, 0));
  b.sim.run();
  monitor.finalize();

  EXPECT_TRUE(flow.stats().completed);
  bool saw_stuck = false;
  for (const auto& v : monitor.violations()) saw_stuck |= v.rule == "stuck_flow";
  EXPECT_TRUE(saw_stuck);
}

TEST(InvariantMonitor, FlowLeftBehindIsReportedAtFinalize) {
  Bench b;
  InvariantMonitor monitor;
  monitor.attach(b.sim);

  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::reliable(), 64);
  flow.start_at(0.0, make_bulk_items(64, 1500, 0));
  b.sim.run_until(3e-6);  // stop long before the flow can finish
  monitor.finalize();

  bool saw_stuck = false;
  for (const auto& v : monitor.violations()) saw_stuck |= v.rule == "stuck_flow";
  EXPECT_TRUE(saw_stuck) << "a live flow at sim end is a stuck flow";
  EXPECT_GT(monitor.frames_in_flight(), 0u)
      << "frames were still queued or in flight when the run was cut";
}

TEST(InvariantMonitor, DirectHooksCoverControlPlaneRules) {
  InvariantMonitor m;

  // frame_id_unique: same id handed out twice.
  m.on_frame_id(42);
  m.on_frame_id(42);

  // on_complete_once: terminal state without a live flow.
  int flow_marker = 0;
  m.on_flow_complete(&flow_marker, 9, false, 1.0);

  // view_monotonic: version goes backwards.
  m.on_view_version(5, 2.0);
  m.on_view_version(3, 2.5);

  // checkpoint_custody: a CRC-dirty blob.
  m.on_checkpoint_custody(2, false, 3.0);

  // epoch_clock: the simulated clock fails to advance.
  m.on_epoch_time(0, 1.5);
  m.on_epoch_time(1, 1.5);

  std::vector<std::string> rules;
  for (const auto& v : m.violations()) rules.push_back(v.rule);
  EXPECT_EQ(rules, (std::vector<std::string>{
                       "frame_id_unique", "on_complete_once", "view_monotonic",
                       "checkpoint_custody", "epoch_clock"}));
}

TEST(InvariantMonitor, DuplicateDeliveryDrivesCustodyNegative) {
  InvariantMonitor m;
  Frame f;
  f.id = 77;
  f.flow_id = 5;
  f.kind = FrameKind::kData;

  m.on_transmit(0, f.id, f.kind, /*accepted=*/true, 0.0);
  m.begin_delivery(1, f, 1e-6);
  m.resolve_delivery(InvariantMonitor::Outcome::kDelivered);
  m.end_delivery();
  EXPECT_EQ(m.total_violations(), 0u);

  m.begin_delivery(1, f, 2e-6);  // same frame delivered again
  m.resolve_delivery(InvariantMonitor::Outcome::kDelivered);
  m.end_delivery();
  ASSERT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.violations()[0].rule, "frame_conservation");
  EXPECT_EQ(m.violations()[0].frame_id, 77u);
}

TEST(InvariantMonitor, UnresolvedDataDeliveryIsReported) {
  InvariantMonitor m;
  Frame f;
  f.id = 13;
  f.flow_id = 2;
  f.kind = FrameKind::kData;
  m.on_transmit(0, f.id, f.kind, true, 0.0);
  m.begin_delivery(1, f, 1e-6);
  m.end_delivery();  // no resolve_delivery in between
  ASSERT_EQ(m.total_violations(), 1u);
  EXPECT_EQ(m.violations()[0].rule, "frame_conservation");

  // Control frames need no outcome.
  Frame ack;
  ack.id = 14;
  ack.kind = FrameKind::kAck;
  m.on_transmit(0, ack.id, ack.kind, true, 0.0);
  m.begin_delivery(1, ack, 2e-6);
  m.end_delivery();
  EXPECT_EQ(m.total_violations(), 1u);
}

TEST(InvariantMonitor, SortedViolationsAreCanonicallyOrdered) {
  InvariantMonitor m;
  m.on_view_version(5, 9.0);
  m.on_view_version(4, 9.5);   // t=9.5 view_monotonic
  m.on_frame_id(1);
  m.on_frame_id(1);            // t=0 frame_id_unique (no sim: time 0)
  m.on_checkpoint_custody(0, false, 4.0);  // t=4 checkpoint_custody

  const auto sorted = m.sorted_violations();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].rule, "frame_id_unique");
  EXPECT_EQ(sorted[1].rule, "checkpoint_custody");
  EXPECT_EQ(sorted[2].rule, "view_monotonic");
}

}  // namespace
}  // namespace trimgrad::net
