#include "core/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace trimgrad::core {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4097u}) {
    std::vector<int> hits(n, 0);
    pool.parallel_for(n, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " of n=" << n;
    }
  }
}

TEST(ThreadPool, ChunksAreContiguousAndOrderedWithinChunk) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  // Record the chunk bounds each invocation saw; they must tile [0, n).
  std::vector<std::pair<std::size_t, std::size_t>> spans(n, {n, n});
  pool.parallel_for(n, 16, [&](std::size_t b, std::size_t e) {
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) spans[i] = {b, e};
  });
  std::size_t next = 0;
  while (next < n) {
    const auto [b, e] = spans[next];
    ASSERT_EQ(b, next);
    ASSERT_GT(e, b);
    next = e;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.parallel_for(100, 1, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, GrainCollapsesSmallRangesToOneCall) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(10, 100, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ZeroNIsANoop) {
  ThreadPool pool(4);
  pool.parallel_for(0, 1,
                    [&](std::size_t, std::size_t) { FAIL() << "called"; });
}

// The caller participates in its own job but is not a pool worker, so a
// nested parallel_for from the caller's chunk (e.g. a GEMM inside a
// parallelized trainer round) must fall back to inline execution instead of
// publishing a second job over the in-flight one. Regression test for the
// nested-dispatch race.
TEST(ThreadPool, NestedCallsFromCallerAndWorkersRunInline) {
  ThreadPool pool(4);
  const std::size_t outer_n = 8, inner_n = 1000;
  std::vector<std::vector<int>> hits(outer_n, std::vector<int>(inner_n, 0));
  for (int round = 0; round < 50; ++round) {
    for (auto& h : hits) std::fill(h.begin(), h.end(), 0);
    pool.parallel_for(outer_n, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t o = b; o < e; ++o) {
        pool.parallel_for(inner_n, 1, [&, o](std::size_t ib, std::size_t ie) {
          for (std::size_t i = ib; i < ie; ++i) ++hits[o][i];
        });
      }
    });
    for (std::size_t o = 0; o < outer_n; ++o) {
      for (std::size_t i = 0; i < inner_n; ++i) {
        ASSERT_EQ(hits[o][i], 1) << "outer " << o << " inner " << i;
      }
    }
  }
}

TEST(ThreadPool, SetGlobalThreadsResizesGlobalPool) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
}

TEST(ThreadPool, FreeFunctionUsesGlobalPool) {
  ThreadPool::set_global_threads(2);
  std::vector<int> hits(257, 0);
  parallel_for(hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  ThreadPool::set_global_threads(1);
}

TEST(FunctionRef, CallsThroughWithoutCopyingTheCallable) {
  int calls = 0;
  auto counter = [&](std::size_t b, std::size_t e) {
    calls += static_cast<int>(e - b);
  };
  FunctionRef<void(std::size_t, std::size_t)> ref = counter;
  ref(0, 3);
  ref(3, 10);
  EXPECT_EQ(calls, 10);
  // Null by default, truthy once bound.
  FunctionRef<void(std::size_t, std::size_t)> null_ref;
  EXPECT_FALSE(static_cast<bool>(null_ref));
  EXPECT_TRUE(static_cast<bool>(ref));
}

TEST(FunctionRef, MutableAndConstCallablesBothBind) {
  int state = 0;
  auto mut = [state](std::size_t, std::size_t) mutable { ++state; };
  const auto cst = [&state](std::size_t, std::size_t) { ++state; };
  FunctionRef<void(std::size_t, std::size_t)> a = mut;
  FunctionRef<void(std::size_t, std::size_t)> b = cst;
  a(0, 1);  // mutates the lambda's copy, not `state`
  b(0, 1);
  EXPECT_EQ(state, 1);
}

TEST(ThreadPool, BackToBackJobsReuseTheLatchCorrectly) {
  // Thousands of tiny jobs in a tight loop: if the completion latch or the
  // job sequence number ever let a worker run a stale job (or the caller
  // return early), some index would be missed or double-counted.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  for (int round = 0; round < 2000; ++round) {
    pool.parallel_for(hits.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2000);
}

TEST(ThreadPool, StackLocalStateIsSafeAcrossDispatch) {
  // The job is passed by reference (FunctionRef): parallel_for blocks until
  // every chunk ran, so capturing stack locals by reference is sound even
  // though nothing is copied into the pool.
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint64_t> acc(97, 0);
    const std::uint64_t salt = 0x9e3779b97f4a7c15ull * (round + 1);
    pool.parallel_for(acc.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) acc[i] = salt ^ i;
    });
    for (std::size_t i = 0; i < acc.size(); ++i) {
      ASSERT_EQ(acc[i], salt ^ i);
    }
  }
}

}  // namespace
}  // namespace trimgrad::core
