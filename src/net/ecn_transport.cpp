#include "net/ecn_transport.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/metrics.h"
#include "net/fault_plane.h"

namespace trimgrad::net {
namespace {

struct EcnTelemetry {
  core::Counter marked_acks;
  core::Gauge alpha;

  static const EcnTelemetry& get() {
    static const EcnTelemetry t{
        core::MetricsRegistry::global().counter("net.ecn.marked_acks"),
        core::MetricsRegistry::global().gauge("net.ecn.alpha"),
    };
    return t;
  }
};

}  // namespace

// ------------------------------------------------------------- EcnSender --

EcnSender::EcnSender(Host& host, NodeId dst, std::uint32_t flow_id,
                     EcnConfig cfg)
    : host_(host), dst_(dst), flow_id_(flow_id), cfg_(cfg) {
  host_.bind(flow_id_, this);
}

EcnSender::~EcnSender() { host_.unbind(flow_id_); }

void EcnSender::send_message(
    std::vector<SendItem> items,
    std::function<void(const FlowStats&)> on_complete) {
  assert(!active_);
  items_ = std::move(items);
  acked_.assign(items_.size(), 0);
  last_sent_.assign(items_.size(), -1.0);
  next_new_ = 0;
  acked_count_ = 0;
  sent_unacked_ = 0;
  window_ = cfg_.initial_window;
  round_acks_ = 0;
  round_marks_ = 0;
  rto_cur_ = cfg_.rto;
  active_ = true;
  stats_ = FlowStats{};
  stats_.start_time = host_.sim().now();
  stats_.packets = items_.size();
  on_complete_ = std::move(on_complete);
  if (items_.empty()) {
    complete();
    return;
  }
  try_send_new();
  arm_timer();
}

void EcnSender::try_send_new() {
  while (in_flight() < window_ && next_new_ < items_.size()) {
    send_packet(static_cast<std::uint32_t>(next_new_), false);
    ++next_new_;
  }
}

void EcnSender::send_packet(std::uint32_t seq, bool is_retransmit) {
  const SendItem& item = items_[seq];
  Frame f;
  f.id = host_.sim().next_frame_id();
  f.src = host_.id();
  f.dst = dst_;
  f.flow_id = flow_id_;
  f.seq = seq;
  f.kind = FrameKind::kData;
  f.size_bytes = item.size_bytes;
  f.trim_size_bytes = item.trim_size_bytes;
  f.cargo = item.cargo;
  if (acked_[seq] == 0 && last_sent_[seq] < 0) ++sent_unacked_;
  last_sent_[seq] = host_.sim().now();
  ++stats_.frames_sent;
  stats_.bytes_sent += f.size_bytes;
  if (is_retransmit) ++stats_.retransmits;
  host_.send(std::move(f));
}

void EcnSender::end_of_window_round() {
  // DCTCP: alpha <- (1-g)·alpha + g·F, window scaled by (1 − alpha/2) when
  // any marks arrived this round, +1 otherwise.
  const double fraction =
      round_acks_ > 0
          ? static_cast<double>(round_marks_) / static_cast<double>(round_acks_)
          : 0.0;
  alpha_ = (1.0 - cfg_.gain) * alpha_ + cfg_.gain * fraction;
  EcnTelemetry::get().alpha.set(alpha_);
  if (round_marks_ > 0) {
    const auto cut = static_cast<std::size_t>(
        std::floor(static_cast<double>(window_) * (1.0 - alpha_ / 2.0)));
    window_ = std::max(cfg_.min_window, cut);
  } else {
    window_ = std::min(cfg_.max_window, window_ + 1);
  }
  round_acks_ = 0;
  round_marks_ = 0;
}

void EcnSender::on_frame(Frame frame) {
  if (!active_) return;
  if (frame.kind == FrameKind::kNack) {
    const std::uint32_t seq = frame.ack_echo;
    if (seq < items_.size() && acked_[seq] == 0 &&
        host_.sim().now() - last_sent_[seq] >= cfg_.rto * 0.5) {
      send_packet(seq, true);
    }
    return;
  }
  if (frame.kind != FrameKind::kAck) return;

  const std::uint32_t seq = frame.ack_echo;
  if (seq < items_.size() && acked_[seq] == 0) {
    acked_[seq] = 1;
    ++acked_count_;
    assert(sent_unacked_ > 0);
    --sent_unacked_;
    if (frame.ack_was_trimmed) ++stats_.acked_trimmed;
    else ++stats_.acked_full;
    ++round_acks_;
    if (frame.ecn) {
      ++round_marks_;
      EcnTelemetry::get().marked_acks.add();
    }
    if (round_acks_ >= window_) end_of_window_round();
    rto_cur_ = cfg_.rto;
    arm_timer();
  }
  if (acked_count_ == items_.size()) {
    complete();
  } else {
    try_send_new();
  }
}

void EcnSender::arm_timer() {
  const std::uint64_t epoch = ++timer_epoch_;
  host_.sim().schedule(rto_cur_, [this, epoch] { on_timeout(epoch); });
}

void EcnSender::on_timeout(std::uint64_t epoch) {
  if (!active_ || epoch != timer_epoch_) return;
  for (std::size_t seq = 0; seq < next_new_; ++seq) {
    if (acked_[seq] == 0) {
      send_packet(static_cast<std::uint32_t>(seq), true);
      break;
    }
  }
  rto_cur_ = std::min(rto_cur_ * 2.0, cfg_.rto_cap);
  arm_timer();
}

void EcnSender::complete() {
  active_ = false;
  ++timer_epoch_;
  stats_.completed = true;
  stats_.end_time = host_.sim().now();
  record_flow_telemetry(stats_);
  if (on_complete_) on_complete_(stats_);
}

// ----------------------------------------------------------- EcnReceiver --

EcnReceiver::EcnReceiver(Host& host, NodeId peer, std::uint32_t flow_id,
                         std::size_t expected_packets, EcnConfig cfg,
                         std::function<void(const Frame&)> on_data)
    : host_(host),
      peer_(peer),
      flow_id_(flow_id),
      cfg_(cfg),
      delivered_(expected_packets, 0),
      on_data_(std::move(on_data)) {
  stats_.expected = expected_packets;
  host_.bind(flow_id_, this);
}

EcnReceiver::~EcnReceiver() { host_.unbind(flow_id_); }

void EcnReceiver::send_ack(const Frame& data, bool was_trimmed) {
  Frame ack;
  ack.id = host_.sim().next_frame_id();
  ack.src = host_.id();
  ack.dst = data.src;
  ack.flow_id = flow_id_;
  ack.kind = FrameKind::kAck;
  ack.size_bytes = kControlFrameBytes;
  ack.ack_echo = data.seq;
  ack.ack_was_trimmed = was_trimmed;
  ack.ecn = data.ecn;  // echo the congestion-experienced mark (DCTCP)
  host_.send(std::move(ack));
}

void EcnReceiver::on_frame(Frame frame) {
  if (frame.kind != FrameKind::kData) return;
  if (frame.seq >= delivered_.size()) return;
  if (stats_.delivered_full + stats_.delivered_trimmed == 0) {
    stats_.first_frame_time = host_.sim().now();
  }
  if (delivered_[frame.seq] != 0) {
    ++stats_.duplicate_frames;
    send_ack(frame, delivered_[frame.seq] == 2);
    return;
  }
  if (frame.corrupted) {
    // Checksum mismatch (core/wire.* head_crc/tail_crc): mangled, not
    // trimmed — never deliver it; NACK for a retransmission.
    ++stats_.corrupt_frames;
    count_corrupt_detected();
    ++stats_.nacks_sent;
    Frame nack;
    nack.id = host_.sim().next_frame_id();
    nack.src = host_.id();
    nack.dst = frame.src;
    nack.flow_id = flow_id_;
    nack.kind = FrameKind::kNack;
    nack.size_bytes = kControlFrameBytes;
    nack.ack_echo = frame.seq;
    host_.send(std::move(nack));
    return;
  }
  if (frame.trimmed && !cfg_.trimmed_is_delivered) {
    ++stats_.nacks_sent;
    Frame nack;
    nack.id = host_.sim().next_frame_id();
    nack.src = host_.id();
    nack.dst = frame.src;
    nack.flow_id = flow_id_;
    nack.kind = FrameKind::kNack;
    nack.size_bytes = kControlFrameBytes;
    nack.ack_echo = frame.seq;
    host_.send(std::move(nack));
    return;
  }
  delivered_[frame.seq] = frame.trimmed ? 2 : 1;
  ++delivered_count_;
  if (frame.trimmed) ++stats_.delivered_trimmed;
  else ++stats_.delivered_full;
  if (on_data_) on_data_(frame);
  send_ack(frame, frame.trimmed);
  if (complete()) stats_.complete_time = host_.sim().now();
}

// ---------------------------------------------------------------- EcnFlow --

EcnFlow::EcnFlow(Simulator& sim, NodeId src, NodeId dst,
                 std::uint32_t flow_id, EcnConfig cfg, std::size_t n_packets,
                 std::function<void(const Frame&)> on_data)
    : sim_(sim) {
  auto& src_host = static_cast<Host&>(sim.node(src));
  auto& dst_host = static_cast<Host&>(sim.node(dst));
  sender_ = std::make_unique<EcnSender>(src_host, dst, flow_id, cfg);
  receiver_ = std::make_unique<EcnReceiver>(dst_host, src, flow_id,
                                            n_packets, cfg,
                                            std::move(on_data));
}

void EcnFlow::start_at(SimTime when, std::vector<SendItem> items,
                       std::function<void(const FlowStats&)> on_complete) {
  assert(when >= sim_.now());
  sim_.schedule(when - sim_.now(), [this, items = std::move(items),
                                    cb = std::move(on_complete)]() mutable {
    sender_->send_message(std::move(items), [this, cb = std::move(cb)](
                                                const FlowStats& st) {
      done_ = true;
      if (cb) cb(st);
    });
  });
}

}  // namespace trimgrad::net
