# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core_prng[1]_include.cmake")
include("/root/repo/build/tests/test_core_bitpack[1]_include.cmake")
include("/root/repo/build/tests/test_core_stats[1]_include.cmake")
include("/root/repo/build/tests/test_core_hadamard[1]_include.cmake")
include("/root/repo/build/tests/test_core_quantizer[1]_include.cmake")
include("/root/repo/build/tests/test_core_rht[1]_include.cmake")
include("/root/repo/build/tests/test_core_packet[1]_include.cmake")
include("/root/repo/build/tests/test_core_codec[1]_include.cmake")
include("/root/repo/build/tests/test_core_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_core_misc[1]_include.cmake")
include("/root/repo/build/tests/test_core_codec_property[1]_include.cmake")
include("/root/repo/build/tests/test_core_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_core_eden[1]_include.cmake")
include("/root/repo/build/tests/test_core_lowrank[1]_include.cmake")
include("/root/repo/build/tests/test_core_wire[1]_include.cmake")
include("/root/repo/build/tests/test_net_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net_queue[1]_include.cmake")
include("/root/repo/build/tests/test_net_transport[1]_include.cmake")
include("/root/repo/build/tests/test_net_topology[1]_include.cmake")
include("/root/repo/build/tests/test_net_injector[1]_include.cmake")
include("/root/repo/build/tests/test_net_conservation[1]_include.cmake")
include("/root/repo/build/tests/test_net_pull[1]_include.cmake")
include("/root/repo/build/tests/test_net_agg[1]_include.cmake")
include("/root/repo/build/tests/test_net_ecn[1]_include.cmake")
include("/root/repo/build/tests/test_ml_layers[1]_include.cmake")
include("/root/repo/build/tests/test_ml_training[1]_include.cmake")
include("/root/repo/build/tests/test_collective_allreduce[1]_include.cmake")
include("/root/repo/build/tests/test_ddp_trainer[1]_include.cmake")
