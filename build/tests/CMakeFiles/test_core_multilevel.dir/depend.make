# Empty dependencies file for test_core_multilevel.
# This may be replaced when dependencies are built.
