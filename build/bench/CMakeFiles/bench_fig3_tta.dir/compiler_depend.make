# Empty compiler generated dependencies file for bench_fig3_tta.
# This may be replaced when dependencies are built.
