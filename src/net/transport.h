// Transport endpoints over the simulated fabric.
//
// Two senders implement the paper's comparison:
//
//  * Reliable (the NCCL-stand-in baseline): strict delivery semantics.
//    Every packet must arrive in full. Drops are recovered by timeout and
//    triple-duplicate-ACK fast retransmit; a trimmed arrival is useless to
//    this transport (the payload is gone), so the receiver NACKs it for
//    immediate retransmission. Under congestion this is the transport whose
//    retransmission storms create the stragglers of §1.
//
//  * TrimAware: a trimmed arrival is an *acceptable delivery* — the decoder
//    will reconstruct the coordinate from the 1-bit head (§2/§3). The
//    receiver ACKs it like a full arrival and the sender never retransmits.
//    Only outright drops (header-queue overflow, rare) are retransmitted.
//
// Both use a fixed window (BDP-sized by the caller) — congestion response
// is the switch's trim decision, which is the paper's architectural point.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host.h"
#include "net/sim.h"

namespace trimgrad::net {

struct TransportConfig {
  std::size_t window = 64;       ///< max packets in flight
  SimTime rto = 200e-6;          ///< initial retransmission timeout
  SimTime rto_cap = 5e-3;        ///< exponential backoff ceiling
  bool trimmed_is_delivered = true;  ///< TrimAware: true; Reliable: false
  /// Give-up knobs: without them a flow crossing a dead link re-arms its
  /// RTO timer forever and the event queue never drains. 0 disables each.
  std::size_t retransmit_budget = 0;  ///< max retransmissions before failing
  SimTime flow_deadline = 0;          ///< max flow age before failing

  static TransportConfig reliable() {
    TransportConfig cfg;
    cfg.trimmed_is_delivered = false;
    return cfg;
  }
  static TransportConfig trim_aware() { return TransportConfig{}; }
};

struct FlowStats {
  SimTime start_time = 0;
  SimTime end_time = 0;
  std::size_t packets = 0;         ///< message size in packets
  std::uint64_t frames_sent = 0;   ///< data frames incl. retransmissions
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acked_full = 0;    ///< packets delivered with tails intact
  std::uint64_t acked_trimmed = 0; ///< packets delivered trimmed
  bool completed = false;
  bool failed = false;  ///< gave up: budget/deadline exhausted or aborted

  SimTime fct() const noexcept { return end_time - start_time; }
};

/// Fold a completed flow's stats into the global MetricsRegistry
/// (net.transport.* counters) and record a "flow" complete event spanning
/// start_time..end_time on the global trace. Every sender variant (base,
/// ECN, pull) calls this from its complete() path.
void record_flow_telemetry(const FlowStats& stats);

/// One packet of an outgoing message.
struct SendItem {
  std::size_t size_bytes = 1500;
  std::size_t trim_size_bytes = 0;  ///< 0 = never trimmable (e.g. metadata)
  std::shared_ptr<const core::GradientPacket> cargo;  ///< optional data plane
};

/// Sender endpoint for one flow. Lives at the source host; receives the
/// flow's ACK/NACK frames through the host's demux.
class Sender : public FlowEndpoint {
 public:
  Sender(Host& host, NodeId dst, std::uint32_t flow_id, TransportConfig cfg);
  ~Sender() override;

  /// Begin transmitting. One message at a time per Sender; `on_complete`
  /// fires exactly once: when every packet has been acknowledged (full or
  /// trimmed), or when the flow *fails* (stats().failed — retransmit budget
  /// or flow deadline exhausted, or abort()ed).
  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete);

  /// Give up on the in-flight message now (deadline enforcement by an
  /// owning layer, e.g. a collective round). No-op when not active.
  void abort();

  void on_frame(Frame frame) override;

  const FlowStats& stats() const noexcept { return stats_; }
  bool active() const noexcept { return active_; }
  std::uint32_t flow_id() const noexcept { return flow_id_; }
  /// Current backed-off RTO (tests pin the rto_cap ceiling through this).
  SimTime current_rto() const noexcept { return rto_cur_; }

 private:
  void try_send_new();
  void send_packet(std::uint32_t seq, bool is_retransmit);
  void arm_timer();
  void on_timeout(std::uint64_t epoch);
  void complete();
  void fail();
  bool budget_exhausted() const noexcept {
    return cfg_.retransmit_budget > 0 &&
           stats_.retransmits >= cfg_.retransmit_budget;
  }
  std::size_t in_flight() const noexcept { return sent_unacked_; }

  Host& host_;
  NodeId dst_;
  std::uint32_t flow_id_;
  TransportConfig cfg_;

  std::vector<SendItem> items_;
  std::vector<std::uint8_t> acked_;
  std::vector<std::uint16_t> send_count_;
  std::vector<SimTime> last_sent_;
  std::size_t next_new_ = 0;
  std::size_t acked_count_ = 0;
  std::size_t sent_unacked_ = 0;
  std::uint32_t last_cum_ = 0;
  int dup_cum_ = 0;
  SimTime rto_cur_ = 0;
  std::uint64_t timer_epoch_ = 0;
  std::uint64_t msg_epoch_ = 0;  ///< guards the per-message deadline timer
  bool active_ = false;
  FlowStats stats_;
  std::function<void(const FlowStats&)> on_complete_;
};

struct ReceiverStats {
  std::size_t expected = 0;
  std::size_t delivered_full = 0;
  std::size_t delivered_trimmed = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t corrupt_frames = 0;  ///< checksum-mismatch arrivals, NACKed
  SimTime first_frame_time = 0;
  SimTime complete_time = 0;
};

/// Receiver endpoint for one flow. Lives at the destination host.
class Receiver : public FlowEndpoint {
 public:
  /// `on_data` fires once per newly delivered packet (full or trimmed) with
  /// the arriving frame — the collective layer harvests cargo here.
  Receiver(Host& host, NodeId peer, std::uint32_t flow_id,
           std::size_t expected_packets, TransportConfig cfg,
           std::function<void(const Frame&)> on_data = {},
           std::function<void(const ReceiverStats&)> on_complete = {});
  ~Receiver() override;

  void on_frame(Frame frame) override;

  const ReceiverStats& stats() const noexcept { return stats_; }
  bool complete() const noexcept {
    return delivered_count_ == stats_.expected;
  }

 private:
  void send_ack(const Frame& data, bool was_trimmed);
  void send_nack(const Frame& data);
  std::uint32_t cumulative_ack() const noexcept;

  Host& host_;
  NodeId peer_;
  std::uint32_t flow_id_;
  TransportConfig cfg_;
  std::vector<std::uint8_t> delivered_;  ///< 0 = no, 1 = full, 2 = trimmed
  std::size_t delivered_count_ = 0;
  mutable std::size_t cum_cache_ = 0;
  ReceiverStats stats_;
  std::function<void(const Frame&)> on_data_;
  std::function<void(const ReceiverStats&)> on_complete_;
};

}  // namespace trimgrad::net
