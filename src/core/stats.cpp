#include "core/stats.h"

#include <cmath>

namespace trimgrad::core {

double sum(std::span<const float> v) noexcept {
  double s = 0.0;
  for (float x : v) s += x;
  return s;
}

double mean(std::span<const float> v) noexcept {
  return v.empty() ? 0.0 : sum(v) / static_cast<double>(v.size());
}

double stddev(std::span<const float> v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (float x : v) {
    const double d = x - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double l1_norm(std::span<const float> v) noexcept {
  double s = 0.0;
  for (float x : v) s += std::fabs(x);
  return s;
}

double l2_norm_sq(std::span<const float> v) noexcept {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return s;
}

double l2_norm(std::span<const float> v) noexcept {
  return std::sqrt(l2_norm_sq(v));
}

double nmse(std::span<const float> estimate,
            std::span<const float> reference) noexcept {
  double err = 0.0;
  const std::size_t n =
      estimate.size() < reference.size() ? estimate.size() : reference.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(estimate[i]) - reference[i];
    err += d * d;
  }
  const double ref = l2_norm_sq(reference);
  if (ref == 0.0) return err == 0.0 ? 0.0 : err;
  return err / ref;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace trimgrad::core
