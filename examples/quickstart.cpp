// Quickstart: encode a gradient into trimmable packets, let a "switch" trim
// half of them, decode, and see how little accuracy was lost.
//
//   $ ./examples/quickstart
//
// This is the 30-line tour of the public API: CodecConfig -> TrimmableEncoder
// -> GradientPacket::trim() -> TrimmableDecoder.
#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/prng.h"
#include "core/stats.h"

int main() {
  using namespace trimgrad;

  // A synthetic 100k-coordinate "gradient".
  core::Xoshiro256 rng(42);
  std::vector<float> grad(100'000);
  for (auto& g : grad) g = 0.01f * static_cast<float>(rng.gaussian());

  // RHT-based 1-bit trimmable encoding (the paper's §3.2 scheme).
  core::CodecConfig cfg;
  cfg.scheme = core::Scheme::kRHT;

  core::TrimmableEncoder encoder(cfg);
  core::EncodedMessage msg = encoder.encode(grad, /*msg_id=*/1, /*epoch=*/0);
  std::printf("encoded %zu coords into %zu packets (%zu bytes on the wire)\n",
              grad.size(), msg.packets.size(), msg.total_wire_bytes());

  // A congested switch trims every second packet to its 88-byte trim point.
  std::size_t trimmed = 0;
  for (std::size_t i = 0; i < msg.packets.size(); i += 2) {
    msg.packets[i].trim();
    ++trimmed;
  }
  std::printf("switch trimmed %zu/%zu packets -> %zu bytes on the wire\n",
              trimmed, msg.packets.size(), msg.total_wire_bytes());

  // The receiver decodes what survived — no retransmissions needed.
  core::TrimmableDecoder decoder(cfg);
  core::DecodeResult out = decoder.decode(msg.packets, msg.meta);
  std::printf("decoded: %zu full coords, %zu from 1-bit heads\n",
              out.stats.full_coords, out.stats.trimmed_coords);
  std::printf("NMSE vs original gradient: %.4f (0 = perfect)\n",
              core::nmse(out.values, grad));
  return 0;
}
