file(REMOVE_RECURSE
  "CMakeFiles/test_core_packet.dir/core/packet_test.cpp.o"
  "CMakeFiles/test_core_packet.dir/core/packet_test.cpp.o.d"
  "test_core_packet"
  "test_core_packet.pdb"
  "test_core_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
