// Elastic membership: heartbeat failure detection, versioned world views,
// checkpoint custody, and the rank rejoin protocol.
//
// The control plane the chaos experiments were missing: until now a
// NodeFault window silently cost the collective a contribution every round
// (EpochRecord.missing_ranks) and nothing ever recovered. Membership closes
// the loop:
//
//   detect  — once per round the trainer calls poll(): every rank's host
//             sends one kHeartbeat frame (64 B, control-priority, never
//             trimmed or corrupted) to the coordinator's host, and the
//             simulator runs for one heartbeat window. Heartbeats from a
//             dead host are dropped by the fault plane at transmit — the
//             missing frame IS the detection signal. A live rank not heard
//             accrues a miss; `evict_after` consecutive misses evicts it.
//   evict   — eviction bumps the versioned WorldView that AllReducer and
//             SimChannel consult, so the next round's collective runs over
//             exactly the surviving ranks and stale frames cannot mix in.
//   ckpt    — the trainer hands each live rank's Checkpoint (ddp/
//             checkpoint.h) to the membership every ckpt_every rounds; the
//             blob is held serialized, CRC and all, like a real checkpoint
//             store would.
//   rejoin  — when the fault window ends the host's heartbeats get through
//             again, but still stamped with the view version the rank last
//             saw — stale, which is how the coordinator tells "recovered,
//             wants back in" from "never left". The trainer then restores
//             the rank's state from its checkpoint, fetches current
//             parameters from a live peer over a real transport flow, and
//             complete_rejoin() re-admits it at the round boundary under a
//             new view version.
//
// Everything is driven by simulated time and seed-deterministic inputs, so
// the whole event history (evictions, rejoins, view versions, recovery
// times) is bit-identical across TRIMGRAD_THREADS.
//
// Scope: the coordinator rank itself is assumed stable (the usual rank-0
// assumption); electing a new coordinator is out of scope.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collective/world_view.h"
#include "ddp/checkpoint.h"
#include "net/host.h"
#include "net/sim.h"
#include "net/transport_registry.h"

namespace trimgrad::ddp {

struct MembershipConfig {
  /// Length of one heartbeat window in simulated seconds. Must exceed the
  /// one-way host→coordinator latency or every heartbeat arrives late.
  double heartbeat_s = 0.5e-3;
  /// Consecutive missed heartbeats before a live rank is evicted.
  unsigned evict_after = 3;
  /// Rounds between checkpoints (the trainer consults this; 0 = every
  /// round would be ckpt_every=1, 0 means "never checkpoint").
  unsigned ckpt_every = 8;
  /// Rank whose host terminates heartbeats and arbitrates the view.
  int coordinator = 0;
  /// Transport for rejoin parameter fetches (reliable by default: a model
  /// snapshot must arrive bit-exact, so trimming it makes no sense).
  std::string fetch_transport = "reliable";
  net::FlowTuning fetch_tuning;
  /// Frame payload size used when chunking a parameter fetch.
  std::size_t fetch_frame_bytes = 1500;
};

/// One control-plane transition, on the simulated clock. The event log is
/// part of the determinism contract: tests compare it bit-for-bit across
/// thread counts.
struct MembershipEvent {
  enum class Kind : std::uint8_t { kEvict = 0, kRejoin = 1 };
  Kind kind = Kind::kEvict;
  double time_s = 0;            ///< simulated time of the transition
  int rank = -1;
  std::uint64_t view = 0;       ///< view version AFTER the transition
  std::uint64_t round = 0;      ///< trainer round that polled

  friend bool operator==(const MembershipEvent&,
                         const MembershipEvent&) = default;
};

/// What one heartbeat window concluded.
struct PollResult {
  std::vector<int> evicted;       ///< ranks evicted this poll
  std::vector<int> rejoin_ready;  ///< recovered ranks awaiting rejoin
};

/// Outcome of a rejoin parameter fetch.
struct FetchResult {
  double comm_s = 0;
  std::uint64_t wire_bytes = 0;
  bool failed = false;
};

class Membership {
 public:
  /// `sim` and the hosts must outlive the membership. rank_hosts[r] carries
  /// rank r; the heartbeat sink is bound at the coordinator's host.
  Membership(net::Simulator& sim, std::vector<net::Host*> rank_hosts,
             MembershipConfig cfg);
  ~Membership();

  /// Run one heartbeat window (advances the simulated clock by
  /// cfg().heartbeat_s) and apply the detection policy.
  PollResult poll(std::uint64_t round);

  /// Model a rejoining rank pulling `param_floats` parameters from a live
  /// peer as a reliable flow on the fabric (runs the simulator to drain).
  FetchResult fetch_params(int from_rank, int to_rank,
                           std::size_t param_floats);

  /// Re-admit a recovered rank (new view version). The caller has already
  /// restored its state; from the next round it participates again.
  void complete_rejoin(int rank, std::uint64_t round);

  // --- checkpoint custody ----------------------------------------------
  /// Serialize and retain `ck` as rank's latest checkpoint (replacing any
  /// previous one). The blob is stored, not the struct — restore() goes
  /// back through the CRC-verified parse, like a store that survived a
  /// process boundary.
  void store_checkpoint(const Checkpoint& ck);
  bool has_checkpoint(int rank) const;
  /// Parse rank's stored blob. Throws if absent or damaged.
  Checkpoint restore_checkpoint(int rank) const;

  // --- observers --------------------------------------------------------
  const collective::WorldView& view() const noexcept { return view_; }
  const MembershipConfig& cfg() const noexcept { return cfg_; }
  const std::vector<MembershipEvent>& events() const noexcept {
    return events_;
  }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t rejoins() const noexcept { return rejoins_; }
  std::uint64_t heartbeat_misses() const noexcept { return misses_total_; }
  /// Misses currently accrued against a live rank.
  unsigned misses(int rank) const { return misses_.at(rank); }
  /// Simulated seconds from a rank's eviction to its rejoin, summed over
  /// all completed recoveries (the bench's time-to-recover).
  double total_recovery_s() const noexcept { return recovery_s_total_; }
  /// Total serialized checkpoint bytes currently held.
  std::uint64_t checkpoint_bytes() const noexcept;
  std::uint64_t checkpoint_saves() const noexcept { return ckpt_saves_; }
  /// Wall-clock seconds spent serializing checkpoints (bench reporting
  /// only — never feeds back into simulated time or compared state).
  double checkpoint_save_wall_s() const noexcept { return ckpt_wall_s_; }

  /// The reserved flow id heartbeats ride on.
  static constexpr std::uint32_t kHeartbeatFlowId = 0xfeed0000u;

  /// Attach an invariant monitor (net/invariants.h); nullptr detaches.
  /// Reports every view-version change (monotonicity) and re-verifies each
  /// checkpoint blob's CRC at store and restore (custody). The monitor must
  /// outlive the membership while attached.
  void set_invariant_monitor(net::InvariantMonitor* monitor) noexcept {
    monitor_ = monitor;
  }

 private:
  class HeartbeatSink;

  net::Simulator& sim_;
  std::vector<net::Host*> hosts_;
  MembershipConfig cfg_;
  net::InvariantMonitor* monitor_ = nullptr;
  collective::WorldView view_;
  std::unique_ptr<HeartbeatSink> sink_;

  /// View version each rank's agent believes is current. Live ranks track
  /// the real view (they see every round); an evicted rank keeps the stale
  /// version it last saw until complete_rejoin — which is exactly what its
  /// post-restart heartbeats carry.
  std::vector<std::uint64_t> agent_view_;
  std::vector<unsigned> misses_;
  std::vector<double> evicted_at_;  ///< sim-time of eviction, -1 when live

  std::vector<MembershipEvent> events_;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t misses_total_ = 0;
  double recovery_s_total_ = 0;

  /// Per-rank checkpoint blobs; an empty blob means "never saved".
  std::vector<std::vector<std::uint8_t>> ckpt_blobs_;
  std::uint64_t ckpt_saves_ = 0;
  double ckpt_wall_s_ = 0;

  std::uint32_t next_fetch_flow_ = 1u << 24;
  std::uint32_t hb_seq_ = 0;
};

}  // namespace trimgrad::ddp
