file(REMOVE_RECURSE
  "CMakeFiles/test_net_agg.dir/net/agg_switch_test.cpp.o"
  "CMakeFiles/test_net_agg.dir/net/agg_switch_test.cpp.o.d"
  "test_net_agg"
  "test_net_agg.pdb"
  "test_net_agg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
