// Neural-network layers with explicit forward/backward.
//
// Enough to build the VGG-style convnet and the MLP used by the training
// benches: Linear, ReLU, Conv2d (3×3, stride 1, pad 1, im2col), MaxPool2d
// (2×2), Flatten. Parameters expose (weights, grads) views so the DDP
// trainer can fuse all gradients into one flat bucket — the analogue of
// PyTorch DDP's 25 MB gradient buckets the paper hooks into.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/prng.h"
#include "ml/tensor.h"

namespace trimgrad::ml {

/// A parameter buffer paired with its gradient accumulator.
struct ParamView {
  std::vector<float>* values;
  std::vector<float>* grads;
};

class Layer {
 public:
  virtual ~Layer() = default;
  /// x: [B, ...]; returns the layer output, caching whatever backward needs.
  virtual Tensor forward(const Tensor& x) = 0;
  /// grad wrt output -> grad wrt input; accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::vector<ParamView> params() { return {}; }
  virtual const char* name() const = 0;
};

/// Fully connected: y = xW^T + b, W stored [out, in].
class Linear : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, core::Xoshiro256& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override {
    return {{&w_, &gw_}, {&b_, &gb_}};
  }
  const char* name() const override { return "linear"; }

  std::size_t in() const noexcept { return in_; }
  std::size_t out() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  std::vector<float> w_, b_, gw_, gb_;
  Tensor x_cache_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "relu"; }

 private:
  std::vector<std::uint8_t> mask_;
};

/// 3×3 convolution, stride 1, pad 1 (spatial size preserved), via im2col.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_ch, std::size_t out_ch, core::Xoshiro256& rng);
  Tensor forward(const Tensor& x) override;  ///< x: [B, C, H, W]
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override {
    return {{&w_, &gw_}, {&b_, &gb_}};
  }
  const char* name() const override { return "conv2d"; }

 private:
  std::size_t cin_, cout_;
  std::vector<float> w_, b_, gw_, gb_;  ///< w: [cout, cin*9]
  Tensor x_cache_;
  std::vector<float> cols_cache_;  ///< im2col of the whole batch
};

/// 2×2 max pooling, stride 2. Requires even H, W.
class MaxPool2d : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "maxpool2d"; }

 private:
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// [B, C, H, W] -> [B, C*H*W]; data untouched (row-major).
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Layer pipeline with flat parameter access for gradient bucketing.
class Sequential {
 public:
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  std::vector<ParamView> params();
  std::size_t param_count();
  void zero_grads();

  /// Concatenate every parameter gradient into one flat bucket (the DDP
  /// communication payload) / scatter a bucket back into the grads.
  std::vector<float> flat_grads();
  void set_flat_grads(std::span<const float> flat);
  /// Same for the parameters themselves (used to replicate models exactly).
  std::vector<float> flat_params();
  void set_flat_params(std::span<const float> flat);

  std::size_t layer_count() const noexcept { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace trimgrad::ml
