# Empty compiler generated dependencies file for replay_transcript.
# This may be replaced when dependencies are built.
