file(REMOVE_RECURSE
  "CMakeFiles/test_net_ecn.dir/net/ecn_transport_test.cpp.o"
  "CMakeFiles/test_net_ecn.dir/net/ecn_transport_test.cpp.o.d"
  "test_net_ecn"
  "test_net_ecn.pdb"
  "test_net_ecn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
