// Low-rank gradient compression with a rank-ordered trimmable layout
// (paper §5.2 + §5.3's open question, built out).
//
// PowerSGD-style factorization: a layer's gradient matrix M (n×m) is
// approximated by P·Qᵀ with rank-r factors obtained by subspace iteration.
// The paper asks for "a certain encoding format for laying out different
// ranks in the packet payload, such that trimming arbitrary packets always
// affects only the ranks with the least importance (smallest eigenvalue)".
//
// Our layout delivers exactly that property:
//  * components (columns of P/Q) are sorted by importance (‖p_k‖, the
//    singular-value proxy);
//  * the small Q factor rides the reliable metadata channel (like the
//    codec's scales);
//  * P is sliced row-wise across packets, and *within every packet* the
//    slice stores component 0's values first, then component 1's, ... so a
//    switch trim cuts the least-important components of that slice — any
//    subset of packets can be trimmed to any depth and the damage is always
//    confined to the smallest-singular-value ranks.
//
// Per-packet trim points at component granularity give r effective trim
// levels per packet (§5.1 multi-level trimming, realized through rank
// structure instead of bit depth).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/packet.h"
#include "core/prng.h"

namespace trimgrad::core {

/// Rank-r factorization M ≈ P·Qᵀ, components sorted by importance.
struct LowRankFactors {
  std::size_t rows = 0;  ///< n
  std::size_t cols = 0;  ///< m
  std::size_t rank = 0;  ///< r
  std::vector<float> p;  ///< n×r, column-major by component: p[k*n + i]
  std::vector<float> q;  ///< m×r, column-major by component, orthonormal
  std::vector<float> importance;  ///< ‖p_k‖ per component, descending

  /// Reconstruct M̂ = P·Qᵀ using only the first `use_rank` components.
  std::vector<float> reconstruct(std::size_t use_rank) const;
};

/// PowerSGD-style subspace iteration (deterministic given the seed).
/// `iters` power iterations; 1–2 suffice for gradient matrices.
LowRankFactors power_factorize(std::span<const float> m, std::size_t rows,
                               std::size_t cols, std::size_t rank,
                               unsigned iters, std::uint64_t seed);

/// One trimmable low-rank packet: a row-slice of P, components in
/// importance order. Trimming keeps the first `kept_components`.
struct LowRankPacket {
  std::uint32_t msg_id = 0;
  std::uint32_t row_base = 0;    ///< first P row carried
  std::uint16_t n_rows = 0;      ///< rows in this slice
  std::uint16_t rank = 0;        ///< components encoded at full depth
  std::uint16_t kept = 0;        ///< components surviving (== rank if untrimmed)
  std::uint16_t seq = 0;
  std::vector<float> values;     ///< kept*n_rows floats, component-major

  std::size_t wire_bytes() const noexcept {
    return kTransportHeaderBytes + values.size() * sizeof(float);
  }
  /// Trim to the given component depth (monotone).
  void trim_to_rank(std::uint16_t keep) noexcept;
};

/// Reliable metadata: the Q factor + importance ordering.
struct LowRankMeta {
  std::uint32_t msg_id = 0;
  std::uint32_t rows = 0, cols = 0;
  std::uint16_t rank = 0;
  std::vector<float> q;  ///< m×r column-major

  std::size_t wire_bytes() const noexcept {
    return kTransportHeaderBytes + 12 + q.size() * sizeof(float);
  }
};

struct LowRankEncoded {
  std::vector<LowRankPacket> packets;
  LowRankMeta meta;
};

class LowRankCodec {
 public:
  struct Config {
    std::size_t rank = 4;
    unsigned power_iters = 2;
    std::uint64_t seed = 17;
    PacketLayout layout{};  ///< mtu/header only
  };

  explicit LowRankCodec(Config cfg) : cfg_(cfg) {}

  LowRankEncoded encode(std::span<const float> m, std::size_t rows,
                        std::size_t cols, std::uint32_t msg_id) const;

  /// Decode from surviving packets (any per-packet trim depth). Rows not
  /// covered by any packet reconstruct as zero.
  std::vector<float> decode(std::span<const LowRankPacket> packets,
                            const LowRankMeta& meta) const;

  /// P rows per packet for the configured MTU and rank.
  std::size_t rows_per_packet() const noexcept;

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
};

}  // namespace trimgrad::core
