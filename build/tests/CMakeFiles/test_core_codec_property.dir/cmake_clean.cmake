file(REMOVE_RECURSE
  "CMakeFiles/test_core_codec_property.dir/core/codec_property_test.cpp.o"
  "CMakeFiles/test_core_codec_property.dir/core/codec_property_test.cpp.o.d"
  "test_core_codec_property"
  "test_core_codec_property.pdb"
  "test_core_codec_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_codec_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
