// Closed-loop chaos: DDP training over the simulated fabric while the fault
// plane flaps the fan-in link, corrupts ~1% of data frames, and slows one
// seed-chosen rank per epoch. The run must complete every epoch trim-aware,
// drain the event queue, stay bit-identical across thread counts for a
// fixed fault seed, and never aggregate a mangled frame as a gradient.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collective/sim_channel.h"
#include "core/metrics.h"
#include "core/threadpool.h"
#include "ddp/trainer.h"
#include "net/fault_plane.h"
#include "net/topology.h"

namespace trimgrad::ddp {
namespace {

std::uint64_t counter_value(const std::string& name) {
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

struct ChaosResult {
  std::vector<EpochRecord> records;
  net::FaultLog fault_log;
  std::uint64_t corrupt_detected = 0;  ///< counter delta over the run
  std::uint64_t corrupted = 0;         ///< frames the plane actually mangled
  std::uint64_t retransmits = 0;       ///< summed over epochs
  std::size_t missing_ranks = 0;
  std::size_t degraded_rounds = 0;
  bool queue_drained = false;
};

struct ChaosOptions {
  bool reliable = false;
  std::uint64_t fault_seed = 7;
  std::size_t epochs = 4;
  std::size_t eval_every = 0;
  /// When > 0, rank 3's host is periodically dead for this long every
  /// 60 ms. Longer than the round deadline, so rounds caught inside the
  /// window cannot recover by retransmission — they must degrade.
  net::SimTime dead_rank_window = 0;
};

ChaosResult run_chaos(const ChaosOptions& opt) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  const std::vector<net::NodeId> ranks = {
      topo.left_hosts[0], topo.left_hosts[1], topo.right_hosts[0],
      topo.right_hosts[1]};

  net::FaultPlaneConfig pcfg;
  pcfg.seed = opt.fault_seed;
  pcfg.corrupt_rate = 0.01;
  net::LinkFault flap;  // flap the fan-in port: core egress of the left switch
  flap.node = topo.left_switch;
  flap.port = 0;
  flap.start = 50e-6;
  flap.duration = 20e-6;
  flap.period = 500e-6;
  flap.repeats = std::size_t{1} << 30;
  pcfg.link_faults.push_back(flap);
  if (opt.dead_rank_window > 0) {
    net::NodeFault dead;  // rank 3 (never the PS server, which is rank 0)
    dead.node = topo.right_hosts[1];
    dead.start = 1e-3;
    dead.duration = opt.dead_rank_window;
    dead.period = 60e-3;
    dead.repeats = std::size_t{1} << 30;
    pcfg.node_faults.push_back(dead);
  }
  net::FaultPlane plane(pcfg);
  sim.set_fault_plane(&plane);

  collective::SimChannel::Config ccfg;
  ccfg.transport = opt.reliable ? "reliable" : "trim";
  ccfg.tuning.rto = 100e-6;
  ccfg.tuning.rto_cap = 1e-3;
  ccfg.tuning.retransmit_budget = 400;
  ccfg.round_deadline = 10e-3;
  collective::SimChannel channel(sim, ranks, ccfg);

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  dcfg.proto_grid = 3;
  ml::SynthCifar data(dcfg);

  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 32;
  tcfg.epochs = opt.epochs;
  tcfg.eval_every = opt.eval_every;
  tcfg.sgd.lr = 0.05f;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  tcfg.straggler_factor = 3.0;
  tcfg.fault_seed = opt.fault_seed;
  DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  });

  ChaosResult out;
  const std::uint64_t det0 = counter_value("net.fault.corrupt_detected");
  const std::uint64_t cor0 = counter_value("net.fault.corrupted");
  out.records = trainer.train();
  out.corrupt_detected = counter_value("net.fault.corrupt_detected") - det0;
  out.corrupted = counter_value("net.fault.corrupted") - cor0;
  out.fault_log = plane.log();
  for (const auto& r : out.records) {
    out.retransmits += r.retransmits;
    out.missing_ranks += r.missing_ranks;
    out.degraded_rounds += r.degraded_rounds;
  }
  // Liveness: after train() returns, nothing may still be in flight — a
  // run() from here must not advance the clock.
  const net::SimTime t_end = sim.now();
  out.queue_drained = sim.run() == t_end;
  return out;
}

void expect_records_identical(const std::vector<EpochRecord>& a,
                              const std::vector<EpochRecord>& b,
                              std::size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    EXPECT_EQ(x.epoch, y.epoch);
    EXPECT_EQ(x.sim_time_s, y.sim_time_s) << "epoch " << i << " @" << threads;
    EXPECT_EQ(x.train_loss, y.train_loss) << "epoch " << i << " @" << threads;
    EXPECT_EQ(x.top1, y.top1) << "epoch " << i << " @" << threads;
    EXPECT_EQ(x.trimmed_packets, y.trimmed_packets) << "epoch " << i;
    EXPECT_EQ(x.dropped_packets, y.dropped_packets) << "epoch " << i;
    EXPECT_EQ(x.retransmits, y.retransmits) << "epoch " << i;
    EXPECT_EQ(x.wire_bytes, y.wire_bytes) << "epoch " << i;
    EXPECT_EQ(x.replica_divergence, y.replica_divergence) << "epoch " << i;
    EXPECT_EQ(x.missing_ranks, y.missing_ranks) << "epoch " << i;
    EXPECT_EQ(x.degraded_rounds, y.degraded_rounds) << "epoch " << i;
    EXPECT_EQ(x.straggler_rank, y.straggler_rank) << "epoch " << i;
  }
}

TEST(Chaos, TrimAwareRunCompletesEveryEpochAndDrains) {
  ChaosOptions opt;
  opt.epochs = 5;
  opt.eval_every = 2;
  const ChaosResult res = run_chaos(opt);

  ASSERT_EQ(res.records.size(), 5u);
  EXPECT_TRUE(res.queue_drained) << "events left in the queue after train()";
  for (const auto& r : res.records) {
    EXPECT_GT(r.sim_time_s, 0.0);
    EXPECT_GE(r.straggler_rank, 0) << "straggler injection is on";
    EXPECT_LT(r.straggler_rank, 4);
  }
  // The shallow fan-in still trims; chaos must not turn trims into hangs.
  std::size_t trimmed = 0;
  for (const auto& r : res.records) trimmed += r.trimmed_packets;
  EXPECT_GT(trimmed, 0u);
  // Corruption was injected, detected by checksums, and recovered: mangled
  // frames are NACKed + retransmitted, never delivered as gradients.
  EXPECT_GT(res.corrupted, 0u);
  EXPECT_GT(res.corrupt_detected, 0u);
  EXPECT_GT(res.retransmits, 0u) << "flap + corruption must cost recoveries";
  // And it still learns (10 classes, chance = 0.1).
  EXPECT_GT(res.records.back().top1, 0.2);
  EXPECT_LT(res.records.back().train_loss, res.records.front().train_loss);
}

TEST(Chaos, EpochRecordsAreBitIdenticalAcrossThreadCounts) {
  // The fault plane's stateless coins + the single-threaded event queue
  // must keep a chaos run invariant to TRIMGRAD_THREADS. Also pins
  // seed-replayability: the reference run's fault log equals each rerun's.
  ChaosOptions opt;
  opt.epochs = 3;
  core::ThreadPool::set_global_threads(1);
  const ChaosResult ref = run_chaos(opt);
  ASSERT_EQ(ref.records.size(), 3u);
  ASSERT_GT(ref.fault_log.size(), 0u);
  for (const std::size_t threads : {2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    const ChaosResult got = run_chaos(opt);
    expect_records_identical(ref.records, got.records, threads);
    EXPECT_EQ(ref.fault_log, got.fault_log)
        << "fault decisions differ at " << threads << " threads";
  }
  core::ThreadPool::set_global_threads(1);
}

TEST(Chaos, ReliableBaselinePaysMoreRecoveriesThanTrimAware) {
  ChaosOptions trim_opt;
  const ChaosResult trim = run_chaos(trim_opt);
  ChaosOptions rel_opt;
  rel_opt.reliable = true;
  const ChaosResult rel = run_chaos(rel_opt);

  ASSERT_EQ(trim.records.size(), rel.records.size());
  // Same fault schedule, same seed: the reliable transport must also NACK
  // every trimmed arrival, so it pays measurably more retransmissions.
  EXPECT_GT(rel.retransmits, trim.retransmits)
      << "reliable should retransmit trims on top of faults";
  EXPECT_GE(rel.degraded_rounds, trim.degraded_rounds);
}

TEST(Chaos, DeadRankDegradesRoundsInsteadOfHangingThem) {
  // Periodically kill rank 3's host outright. Its flows fail (budget or
  // round deadline), the reduce proceeds with the contributions that
  // arrived, and EpochRecord says so.
  ChaosOptions opt;
  opt.dead_rank_window = 30e-3;
  opt.epochs = 4;
  const ChaosResult res = run_chaos(opt);

  ASSERT_EQ(res.records.size(), 4u);
  EXPECT_TRUE(res.queue_drained);
  EXPECT_GT(res.missing_ranks, 0u) << "a dead host must cost contributions";
  EXPECT_GT(res.degraded_rounds, 0u);
  for (const auto& r : res.records) {
    EXPECT_GT(r.sim_time_s, 0.0) << "every epoch still completes";
  }
}

}  // namespace
}  // namespace trimgrad::ddp
