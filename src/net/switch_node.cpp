#include "net/switch_node.h"

#include "core/metrics.h"
#include "core/prng.h"
#include "net/invariants.h"

namespace trimgrad::net {
namespace {

struct SwitchTelemetry {
  core::Counter forwarded, unroutable;

  static const SwitchTelemetry& get() {
    static const SwitchTelemetry t{
        core::MetricsRegistry::global().counter("net.switch.forwarded"),
        core::MetricsRegistry::global().counter("net.switch.unroutable"),
    };
    return t;
  }
};

}  // namespace

std::ptrdiff_t SwitchNode::egress_for(NodeId dst,
                                      std::uint32_t flow_id) const noexcept {
  const auto it = routes_.find(dst);
  const std::vector<std::size_t>* group = nullptr;
  if (it != routes_.end() && !it->second.empty()) {
    group = &it->second;
  } else if (!default_group_.empty()) {
    group = &default_group_;
  } else {
    return -1;
  }
  if (group->size() == 1) return static_cast<std::ptrdiff_t>((*group)[0]);
  // Per-flow ECMP: deterministic hash keeps a flow on one path.
  const std::uint64_t h = core::mix64(flow_id, dst);
  return static_cast<std::ptrdiff_t>((*group)[h % group->size()]);
}

void SwitchNode::on_frame(Frame frame) {
  const std::ptrdiff_t out = egress_for(frame.dst, frame.flow_id);
  if (out < 0) {
    ++unroutable_;
    SwitchTelemetry::get().unroutable.add();
    if (auto* m = sim_.invariant_monitor()) {
      m->resolve_delivery(InvariantMonitor::Outcome::kUnroutable);
    }
    return;
  }
  SwitchTelemetry::get().forwarded.add();
  sim_.transmit(id(), static_cast<std::size_t>(out), std::move(frame));
}

}  // namespace trimgrad::net
