#include "net/topology.h"

#include <stdexcept>
#include <string>

namespace trimgrad::net {

namespace {

/// "p3-e1"-style names, built with += to sidestep GCC 12's false-positive
/// -Wrestrict on `literal + to_string(...)` (PR 105651).
std::string tiered_name(const char* prefix, std::size_t a, const char* infix,
                        std::size_t b) {
  std::string name = prefix;
  name += std::to_string(a);
  name += infix;
  name += std::to_string(b);
  return name;
}

}  // namespace

std::vector<NodeId> LeafSpine::all_hosts() const {
  std::vector<NodeId> out;
  for (const auto& rack : hosts) out.insert(out.end(), rack.begin(), rack.end());
  return out;
}

Dumbbell build_dumbbell(Simulator& sim, std::size_t n_left,
                        std::size_t n_right, const FabricConfig& cfg) {
  Dumbbell d;
  auto& sl = sim.add_node<SwitchNode>("switch-L");
  auto& sr = sim.add_node<SwitchNode>("switch-R");
  d.left_switch = sl.id();
  d.right_switch = sr.id();

  // Bottleneck link between the two switches.
  const auto [sl_core, sr_core] =
      sim.connect(sl.id(), sr.id(), cfg.core_link, cfg.switch_queue);

  for (std::size_t i = 0; i < n_left; ++i) {
    auto& h = sim.add_node<Host>("hL" + std::to_string(i));
    const auto [h_port, sw_port] = sim.connect(
        h.id(), sl.id(), cfg.edge_link, cfg.host_queue, cfg.switch_queue);
    (void)h_port;
    d.left_hosts.push_back(h.id());
    sl.set_route(h.id(), sw_port);
  }
  for (std::size_t i = 0; i < n_right; ++i) {
    auto& h = sim.add_node<Host>("hR" + std::to_string(i));
    const auto [h_port, sw_port] = sim.connect(
        h.id(), sr.id(), cfg.edge_link, cfg.host_queue, cfg.switch_queue);
    (void)h_port;
    d.right_hosts.push_back(h.id());
    sr.set_route(h.id(), sw_port);
  }
  // Anything not local goes across the bottleneck.
  sl.set_default_route(sl_core);
  sr.set_default_route(sr_core);
  return d;
}

LeafSpine build_leaf_spine(Simulator& sim, std::size_t n_leaves,
                           std::size_t n_spines, std::size_t hosts_per_leaf,
                           const FabricConfig& cfg) {
  LeafSpine t;
  for (std::size_t s = 0; s < n_spines; ++s) {
    auto& spine = sim.add_node<SwitchNode>("spine" + std::to_string(s));
    t.spines.push_back(spine.id());
  }
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = sim.add_node<SwitchNode>("leaf" + std::to_string(l));
    t.leaves.push_back(leaf.id());
  }

  // Leaf <-> spine mesh. Remember the port indices for routing.
  // spine_ports[s][l] = port on spine s toward leaf l;
  // leaf_uplinks[l][s] = port on leaf l toward spine s.
  std::vector<std::vector<std::size_t>> spine_ports(n_spines);
  std::vector<std::vector<std::size_t>> leaf_uplinks(n_leaves);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    for (std::size_t s = 0; s < n_spines; ++s) {
      const auto [leaf_port, spine_port] = sim.connect(
          t.leaves[l], t.spines[s], cfg.core_link, cfg.switch_queue);
      leaf_uplinks[l].push_back(leaf_port);
      spine_ports[s].push_back(spine_port);
    }
  }

  // Hosts under each leaf.
  t.hosts.resize(n_leaves);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = static_cast<SwitchNode&>(sim.node(t.leaves[l]));
    for (std::size_t h = 0; h < hosts_per_leaf; ++h) {
      // Built up with += (not operator+ chaining) to sidestep GCC 12's
      // false-positive -Wrestrict on `literal + to_string(...)` (PR 105651).
      std::string host_name = "h";
      host_name += std::to_string(l);
      host_name += '-';
      host_name += std::to_string(h);
      auto& host = sim.add_node<Host>(std::move(host_name));
      const auto [host_port, leaf_port] = sim.connect(
          host.id(), t.leaves[l], cfg.edge_link, cfg.host_queue,
          cfg.switch_queue);
      (void)host_port;
      t.hosts[l].push_back(host.id());
      leaf.set_route(host.id(), leaf_port);
      // Every spine knows which leaf owns this host.
      for (std::size_t s = 0; s < n_spines; ++s) {
        auto& spine = static_cast<SwitchNode&>(sim.node(t.spines[s]));
        spine.set_route(host.id(), spine_ports[s][l]);
      }
    }
  }
  // Non-local traffic ECMPs up to the spines.
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = static_cast<SwitchNode&>(sim.node(t.leaves[l]));
    for (std::size_t other = 0; other < n_leaves; ++other) {
      if (other == l) continue;
      for (NodeId host : t.hosts[other]) {
        leaf.set_ecmp_route(host, leaf_uplinks[l]);
      }
    }
  }
  return t;
}

std::vector<NodeId> FatTree::all_hosts() const {
  std::vector<NodeId> out;
  out.reserve(host_count());
  for (const auto& pod : pod_hosts) out.insert(out.end(), pod.begin(), pod.end());
  return out;
}

FatTree build_fat_tree(Simulator& sim, std::size_t k, const FabricConfig& cfg) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("build_fat_tree: k must be even and >= 2");
  }
  const std::size_t half = k / 2;
  FatTree ft;
  ft.k = k;
  ft.pod_hosts.resize(k);
  ft.edges.resize(k);
  ft.aggs.resize(k);
  ft.cores.resize(half);

  // Switch layer first so the wiring loops can reference every id.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < half; ++e) {
      ft.edges[p].push_back(
          sim.add_node<SwitchNode>(tiered_name("p", p, "-e", e)).id());
    }
    for (std::size_t a = 0; a < half; ++a) {
      ft.aggs[p].push_back(
          sim.add_node<SwitchNode>(tiered_name("p", p, "-a", a)).id());
    }
  }
  for (std::size_t g = 0; g < half; ++g) {
    for (std::size_t i = 0; i < half; ++i) {
      ft.cores[g].push_back(
          sim.add_node<SwitchNode>(tiered_name("c", g, "-", i)).id());
    }
  }

  // Pod-internal mesh: every edge to every agg in the pod.
  // agg_down[p][a][e] = port on agg a of pod p toward edge e;
  // edge_up[p][e][a] = port on edge e of pod p toward agg a.
  std::vector<std::vector<std::vector<std::size_t>>> agg_down(k);
  std::vector<std::vector<std::vector<std::size_t>>> edge_up(k);
  for (std::size_t p = 0; p < k; ++p) {
    agg_down[p].resize(half);
    edge_up[p].resize(half);
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        const auto [ep, ap] = sim.connect(ft.edges[p][e], ft.aggs[p][a],
                                          cfg.core_link, cfg.switch_queue);
        edge_up[p][e].push_back(ep);
        agg_down[p][a].push_back(ap);
      }
    }
  }

  // Agg j of every pod to all k/2 cores of group j — the only links that
  // cross pods, hence the only inter-domain links of the partition.
  // core_down[g][i][p] = port on core (g, i) toward pod p.
  std::vector<std::vector<std::vector<std::size_t>>> core_down(half);
  for (std::size_t g = 0; g < half; ++g) {
    core_down[g].resize(half);
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t i = 0; i < half; ++i) {
        const auto [ap, cp] = sim.connect(ft.aggs[p][g], ft.cores[g][i],
                                          cfg.core_link, cfg.switch_queue);
        (void)ap;  // agg uplinks are contiguous after the k/2 downlinks
        core_down[g][i].push_back(cp);
      }
    }
  }

  // Hosts under each edge switch, with routes installed bottom-up: the
  // edge knows its hosts, every agg in the pod routes down to the right
  // edge, every core routes down to the host's pod.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < half; ++e) {
      auto& edge = static_cast<SwitchNode&>(sim.node(ft.edges[p][e]));
      for (std::size_t h = 0; h < half; ++h) {
        auto& host = sim.add_node<Host>(
            tiered_name("p", p, "-h", e * half + h));
        const auto [host_port, edge_port] =
            sim.connect(host.id(), ft.edges[p][e], cfg.edge_link,
                        cfg.host_queue, cfg.switch_queue);
        (void)host_port;
        ft.pod_hosts[p].push_back(host.id());
        edge.set_route(host.id(), edge_port);
        for (std::size_t a = 0; a < half; ++a) {
          static_cast<SwitchNode&>(sim.node(ft.aggs[p][a]))
              .set_route(host.id(), agg_down[p][a][e]);
        }
        for (std::size_t g = 0; g < half; ++g) {
          for (std::size_t i = 0; i < half; ++i) {
            static_cast<SwitchNode&>(sim.node(ft.cores[g][i]))
                .set_route(host.id(), core_down[g][i][p]);
          }
        }
      }
    }
  }

  // Unmatched traffic ECMPs upward: edges across their pod's aggs, aggs
  // across their core group. (Aggs match intra-pod hosts in the table
  // first, so only inter-pod traffic climbs to the cores.)
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t e = 0; e < half; ++e) {
      static_cast<SwitchNode&>(sim.node(ft.edges[p][e]))
          .set_default_ecmp(edge_up[p][e]);
    }
    for (std::size_t a = 0; a < half; ++a) {
      auto& agg = static_cast<SwitchNode&>(sim.node(ft.aggs[p][a]));
      std::vector<std::size_t> uplinks;
      for (std::size_t i = 0; i < half; ++i) uplinks.push_back(half + i);
      agg.set_default_ecmp(std::move(uplinks));
    }
  }
  return ft;
}

void partition_fat_tree(Simulator& sim, const FatTree& ft) {
  for (std::size_t p = 0; p < ft.k; ++p) {
    const auto d = static_cast<std::uint32_t>(p);
    for (NodeId id : ft.edges[p]) sim.set_node_domain(id, d);
    for (NodeId id : ft.aggs[p]) sim.set_node_domain(id, d);
    for (NodeId id : ft.pod_hosts[p]) sim.set_node_domain(id, d);
  }
  for (std::size_t g = 0; g < ft.cores.size(); ++g) {
    const auto d = static_cast<std::uint32_t>(ft.k + g);
    for (NodeId id : ft.cores[g]) sim.set_node_domain(id, d);
  }
}

}  // namespace trimgrad::net
