#include "net/switch_node.h"

#include "core/metrics.h"
#include "core/prng.h"

namespace trimgrad::net {
namespace {

struct SwitchTelemetry {
  core::Counter forwarded, unroutable;

  static const SwitchTelemetry& get() {
    static const SwitchTelemetry t{
        core::MetricsRegistry::global().counter("net.switch.forwarded"),
        core::MetricsRegistry::global().counter("net.switch.unroutable"),
    };
    return t;
  }
};

}  // namespace

void SwitchNode::on_frame(Frame frame) {
  std::size_t out;
  const auto it = routes_.find(frame.dst);
  if (it != routes_.end() && !it->second.empty()) {
    const auto& group = it->second;
    if (group.size() == 1) {
      out = group[0];
    } else {
      // Per-flow ECMP: deterministic hash keeps a flow on one path.
      const std::uint64_t h = core::mix64(frame.flow_id, frame.dst);
      out = group[h % group.size()];
    }
  } else if (default_port_ >= 0) {
    out = static_cast<std::size_t>(default_port_);
  } else {
    ++unroutable_;
    SwitchTelemetry::get().unroutable.add();
    return;
  }
  SwitchTelemetry::get().forwarded.add();
  sim_.transmit(id(), out, std::move(frame));
}

}  // namespace trimgrad::net
