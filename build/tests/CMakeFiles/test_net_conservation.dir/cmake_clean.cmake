file(REMOVE_RECURSE
  "CMakeFiles/test_net_conservation.dir/net/conservation_test.cpp.o"
  "CMakeFiles/test_net_conservation.dir/net/conservation_test.cpp.o.d"
  "test_net_conservation"
  "test_net_conservation.pdb"
  "test_net_conservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
