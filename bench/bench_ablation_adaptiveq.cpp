// Experiment X5: §5.3 ablation — ahead-of-time Q adaptation composed with
// just-in-time trimming.
//
// Closed loop against a fixed-capacity bottleneck: each round the sender
// encodes a gradient at its current Q, the bottleneck trims whatever
// exceeds capacity (oldest-tail-first, like a shallow queue), the receiver
// decodes, and the controller observes the trim fraction. We compare three
// sender policies under a capacity sweep:
//   fixedQ31  — always full tails: maximal trimming, but every surviving
//               tail is exact;
//   fixedQ7   — always minimal tails: never trimmed, but permanently low
//               precision (the "over-compressing" CC coupling the paper
//               warns about);
//   adaptive  — AIMD targeting a small positive trim rate (§5.3's
//               "slightly under-compress and over-send").
#include <cstdio>
#include <vector>

#include "core/adaptive.h"
#include "core/codec.h"
#include "core/prng.h"
#include "core/stats.h"

using namespace trimgrad;

namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

struct RoundOutcome {
  double trim_fraction;
  double nmse;
  std::size_t bytes;
};

/// One round: encode at q, trim packets beyond the byte capacity, decode.
RoundOutcome run_round(const std::vector<float>& grad, unsigned q,
                       std::size_t capacity_bytes, std::uint32_t msg_id) {
  core::CodecConfig cfg;
  cfg.scheme = core::Scheme::kRHT;
  cfg.rht_row_len = std::size_t{1} << 12;
  cfg.layout.q_bits = q;
  core::TrimmableEncoder enc(cfg);
  core::TrimmableDecoder dec(cfg);
  auto msg = enc.encode(grad, msg_id, 1);

  std::size_t total = 0;
  for (const auto& p : msg.packets) total += p.wire_bytes();
  std::size_t trimmed = 0;
  // Queue-like behaviour: the frames at the back of the burst overflow.
  for (auto it = msg.packets.rbegin();
       it != msg.packets.rend() && total > capacity_bytes; ++it) {
    const std::size_t before = it->wire_bytes();
    it->trim();
    total -= before - it->wire_bytes();
    ++trimmed;
  }
  RoundOutcome out;
  out.trim_fraction =
      msg.packets.empty()
          ? 0.0
          : static_cast<double>(trimmed) / static_cast<double>(msg.packets.size());
  out.bytes = total;
  out.nmse = core::nmse(dec.decode(msg.packets, msg.meta).values, grad);
  return out;
}

}  // namespace

int main() {
  const std::size_t n = 1 << 16;
  const std::size_t full_bytes = n * 4;  // raw gradient volume

  std::printf("# Sec 5.3 ablation: ahead-of-time Q + just-in-time trim\n");
  std::printf("# capacity as fraction of raw gradient volume; 40 rounds "
              "per cell, last-10 averages\n");
  std::printf("%10s %10s | %9s %8s | %9s %8s | %9s %8s %6s\n", "capacity%",
              "", "q31_NMSE", "q31_trim", "q7_NMSE", "q7_trim", "ad_NMSE",
              "ad_trim", "ad_Q");

  for (double cap_frac : {1.1, 0.9, 0.7, 0.5, 0.3, 0.15}) {
    const auto capacity =
        static_cast<std::size_t>(cap_frac * static_cast<double>(full_bytes));
    core::AdaptiveQController ctl;
    double stats[3][2] = {{0, 0}, {0, 0}, {0, 0}};  // [policy][nmse,trim]
    unsigned final_q = ctl.q();
    const int rounds = 40, tail = 10;
    for (int r = 0; r < rounds; ++r) {
      const auto grad = gaussian_vec(n, 100 + r);
      const RoundOutcome fixed31 = run_round(grad, 31, capacity, r);
      const RoundOutcome fixed7 = run_round(grad, 7, capacity, r);
      const RoundOutcome adaptive = run_round(grad, ctl.q(), capacity, r);
      ctl.observe(adaptive.trim_fraction);
      final_q = ctl.q();
      if (r >= rounds - tail) {
        stats[0][0] += fixed31.nmse / tail;
        stats[0][1] += fixed31.trim_fraction / tail;
        stats[1][0] += fixed7.nmse / tail;
        stats[1][1] += fixed7.trim_fraction / tail;
        stats[2][0] += adaptive.nmse / tail;
        stats[2][1] += adaptive.trim_fraction / tail;
      }
    }
    std::printf("%9.0f%% %10s | %9.4f %7.1f%% | %9.4f %7.1f%% | %9.4f "
                "%7.1f%% %6u\n",
                cap_frac * 100, "", stats[0][0], stats[0][1] * 100,
                stats[1][0], stats[1][1] * 100, stats[2][0],
                stats[2][1] * 100, final_q);
  }
  std::printf("# (expected: at loose capacity adaptive ~ q31 and beats q7's "
              "precision floor; under tight capacity adaptive approaches q7 "
              "and beats q31's heavy-trim error — tracking the better fixed "
              "policy at every operating point)\n");
  return 0;
}
