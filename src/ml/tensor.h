// Minimal dense float tensor for the CPU training substrate.
//
// This library exists so the reproduction can *train a real model through
// the trimmable-gradient pipeline* without PyTorch/CUDA (see DESIGN.md
// substitutions). It is deliberately simple: row-major float storage,
// explicit shapes, no autograd graph — layers implement their own backward.
#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <vector>

namespace trimgrad::ml {

struct Tensor {
  std::vector<std::size_t> shape;
  std::vector<float> data;

  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> s) : shape(std::move(s)) {
    data.assign(count(shape), 0.0f);
  }
  Tensor(std::vector<std::size_t> s, std::vector<float> d)
      : shape(std::move(s)), data(std::move(d)) {
    assert(data.size() == count(shape));
  }

  static std::size_t count(const std::vector<std::size_t>& s) noexcept {
    std::size_t n = 1;
    for (std::size_t d : s) n *= d;
    return n;
  }

  std::size_t size() const noexcept { return data.size(); }
  std::size_t dim(std::size_t i) const { return shape.at(i); }

  /// Reinterpret as a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> s) const {
    assert(count(s) == size());
    return Tensor{std::move(s), data};
  }

  float* ptr() noexcept { return data.data(); }
  const float* ptr() const noexcept { return data.data(); }
};

/// C = A(m×k) · B(k×n), row-major, accumulating into C (caller zeroes).
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) noexcept;

/// C = Aᵀ(k×m→m×k? no:) — convenience variants used by conv/linear backward:
/// C(m×n) += A(k×m)ᵀ · B(k×n).
void gemm_at_b(const float* a, const float* b, float* c, std::size_t k,
               std::size_t m, std::size_t n) noexcept;

/// C(m×n) += A(m×k) · B(n×k)ᵀ.
void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) noexcept;

}  // namespace trimgrad::ml
