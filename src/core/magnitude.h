// Magnitude-ordered coordinate placement (paper §2, second paragraph).
//
// Before introducing the head/tail split, the paper discusses the
// MLT-inspired strawman: place large-magnitude coordinates near the packet
// front so that trimming discards the small ones. That only buys ~20 %
// trimming headroom (hence the head/tail design), but we implement it so
// the ablation bench can quantify exactly that limitation.
//
// The receiver needs the placement permutation to restore coordinate order;
// in this model it rides the reliable metadata channel, and
// `permutation_overhead_bytes` makes the cost explicit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace trimgrad::core {

/// Permutation that sorts coordinates by descending |v| (stable in index
/// for ties, so it is reproducible).
std::vector<std::uint32_t> magnitude_order(std::span<const float> values);

/// out[i] = values[perm[i]] — gather into placement order.
std::vector<float> apply_permutation(std::span<const float> values,
                                     std::span<const std::uint32_t> perm);

/// Inverse of apply_permutation: restores original coordinate order.
/// survived[i] == 0 marks placement slots whose value was discarded by
/// trimming; the corresponding original coordinates decode to 0.
std::vector<float> invert_permutation(std::span<const float> placed,
                                      std::span<const std::uint32_t> perm,
                                      std::span<const std::uint8_t> survived);

/// Bytes needed to ship the permutation reliably (ceil(log2(n)) bits each).
std::size_t permutation_overhead_bytes(std::size_t n) noexcept;

}  // namespace trimgrad::core
