#include "core/wire.h"

#include <bit>
#include <cstring>

#include "core/simd.h"

#if defined(__x86_64__) || defined(_M_X64)
#define TRIMGRAD_WIRE_X86 1
#include <nmmintrin.h>
#if defined(__SSE4_2__)
#define TG_SSE42
#else
#define TG_SSE42 __attribute__((target("sse4.2")))
#endif
#endif

namespace trimgrad::core {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  put_u32(out, b);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool has(std::size_t n) const noexcept { return off_ + n <= data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - off_; }

  std::uint16_t u16() noexcept {
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[off_] | (static_cast<std::uint16_t>(data_[off_ + 1]) << 8));
    off_ += 2;
    return v;
  }
  std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
  }
  std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
  }
  float f32() noexcept {
    const std::uint32_t b = u32();
    float v;
    std::memcpy(&v, &b, 4);
    return v;
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(data_.begin() + off_,
                                  data_.begin() + off_ + n);
    off_ += n;
    return out;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
};

/// Offset of the head_crc field (the non-CRC header prefix it covers).
constexpr std::size_t kCrcFieldOffset = 28;

/// Overwrite 4 bytes at `at` with a little-endian u32 (CRC field patching).
void patch_u32(std::vector<std::uint8_t>& out, std::size_t at,
               std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i)
    out[at + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

/// Slice-by-8 lookup tables: t[0] is the classic per-byte table; t[k]
/// advances a byte's contribution k more bytes through the shift register,
/// so eight parallel lookups retire a 64-bit word per step.
struct Crc32cTables {
  std::uint32_t t[8][256];
};

constexpr Crc32cTables make_crc32c_tables() {
  Crc32cTables tb{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t c = b;
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ (0x82f63b78u & (0u - (c & 1u)));
    }
    tb.t[0][b] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      tb.t[k][b] = (tb.t[k - 1][b] >> 8) ^ tb.t[0][tb.t[k - 1][b] & 0xffu];
    }
  }
  return tb;
}

constexpr Crc32cTables kCrcTables = make_crc32c_tables();

#if TRIMGRAD_WIRE_X86

TG_SSE42 std::uint32_t crc32c_hw_impl(std::span<const std::uint8_t> data,
                                      std::uint32_t seed) noexcept {
  std::uint64_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  for (; n >= 8; n -= 8, p += 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    crc = _mm_crc32_u64(crc, w);
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
  for (; n != 0; --n, ++p) crc32 = _mm_crc32_u8(crc32, *p);
  return ~crc32;
}

bool cpu_has_crc32() noexcept {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}

#endif  // TRIMGRAD_WIRE_X86

}  // namespace

std::uint32_t crc32c_reference(std::span<const std::uint8_t> data,
                               std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : data) {
    crc ^= b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

std::uint32_t crc32c_table(std::span<const std::uint8_t> data,
                           std::uint32_t seed) noexcept {
  const auto& t = kCrcTables.t;
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    for (; n >= 8; n -= 8, p += 8) {
      std::uint64_t w;
      std::memcpy(&w, p, 8);
      w ^= crc;
      crc = t[7][w & 0xff] ^ t[6][(w >> 8) & 0xff] ^ t[5][(w >> 16) & 0xff] ^
            t[4][(w >> 24) & 0xff] ^ t[3][(w >> 32) & 0xff] ^
            t[2][(w >> 40) & 0xff] ^ t[1][(w >> 48) & 0xff] ^
            t[0][(w >> 56) & 0xff];
    }
  }
  for (; n != 0; --n, ++p) crc = (crc >> 8) ^ t[0][(crc ^ *p) & 0xffu];
  return ~crc;
}

std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                        std::uint32_t seed) noexcept {
#if TRIMGRAD_WIRE_X86
  if (cpu_has_crc32()) return crc32c_hw_impl(data, seed);
#endif
  return crc32c_table(data, seed);
}

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
#if TRIMGRAD_WIRE_X86
  // Honor the simd-layer scalar override so TRIMGRAD_SIMD=scalar runs the
  // whole wire path through portable code (checksums are byte-identical
  // either way — this is a testing/diagnostics knob, not a behavior switch).
  if (simd::active_isa() != simd::Isa::kScalar && cpu_has_crc32())
    return crc32c_hw_impl(data, seed);
#endif
  return crc32c_table(data, seed);
}

const char* to_string(WireVerdict v) noexcept {
  switch (v) {
    case WireVerdict::kFull: return "full";
    case WireVerdict::kTrimmed: return "trimmed";
    case WireVerdict::kCorrupt: return "corrupt";
    case WireVerdict::kMalformed: return "malformed";
  }
  return "?";
}

std::vector<std::uint8_t> serialize_packet(const GradientPacket& pkt) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderBytes + pkt.head_region.size() +
              pkt.tail_region.size());
  put_u32(out, kWireMagic);
  put_u32(out, pkt.msg_id);
  put_u32(out, pkt.row_id);
  put_u32(out, pkt.coord_base);
  put_u16(out, pkt.n_coords);
  put_u16(out, pkt.seq);
  out.push_back(static_cast<std::uint8_t>(pkt.scheme));
  out.push_back(pkt.p_bits);
  out.push_back(pkt.q_bits);
  out.push_back(pkt.trimmed ? 1 : 0);
  put_u16(out, static_cast<std::uint16_t>(pkt.head_region.size()));
  put_u16(out, static_cast<std::uint16_t>(pkt.tail_region.size()));
  put_u32(out, 0);  // head_crc, patched below
  put_u32(out, 0);  // tail_crc, patched below
  out.insert(out.end(), pkt.head_region.begin(), pkt.head_region.end());
  out.insert(out.end(), pkt.tail_region.begin(), pkt.tail_region.end());
  // Fused encode+CRC: checksum the assembled wire bytes while they are
  // still cache-hot, then patch the two CRC fields in place. head_crc
  // chains the header prefix [0, 28) with the head region (skipping the
  // zeroed CRC fields themselves); tail_crc covers the tail alone, so a
  // trim (which removes exactly the tail) invalidates neither.
  const std::size_t head_at = kWireHeaderBytes;
  const std::size_t tail_at = head_at + pkt.head_region.size();
  const std::uint32_t head_crc =
      crc32c({out.data() + head_at, pkt.head_region.size()},
             crc32c({out.data(), kCrcFieldOffset}));
  const std::uint32_t tail_crc =
      crc32c({out.data() + tail_at, pkt.tail_region.size()});
  patch_u32(out, kCrcFieldOffset, head_crc);
  patch_u32(out, kCrcFieldOffset + 4, tail_crc);
  return out;
}

std::size_t wire_trim_point(const GradientPacket& pkt) noexcept {
  return kWireHeaderBytes + pkt.head_region.size();
}

ParsedPacket parse_packet_verified(std::span<const std::uint8_t> data) {
  Cursor c(data);
  if (!c.has(kWireHeaderBytes)) return {};
  if (c.u32() != kWireMagic) return {};

  GradientPacket pkt;
  pkt.msg_id = c.u32();
  pkt.row_id = c.u32();
  pkt.coord_base = c.u32();
  pkt.n_coords = c.u16();
  pkt.seq = c.u16();
  const std::uint8_t scheme = data[20];
  if (scheme > kMaxSchemeValue) return {};
  pkt.scheme = static_cast<Scheme>(scheme);
  pkt.p_bits = data[21];
  pkt.q_bits = data[22];
  const bool flagged_trimmed = (data[23] & 1) != 0;
  c.bytes(4);  // skip scheme/p/q/flags already read positionally
  const std::uint16_t head_bytes = c.u16();
  const std::uint16_t tail_bytes = c.u16();
  const std::uint32_t head_crc = c.u32();
  const std::uint32_t tail_crc = c.u32();

  // The head region must be intact — switches never cut into it.
  if (!c.has(head_bytes)) return {};
  pkt.head_region = c.bytes(head_bytes);
  if (crc32c(pkt.head_region, crc32c(data.first(kCrcFieldOffset))) !=
      head_crc) {
    return {WireVerdict::kCorrupt, std::nullopt};
  }

  WireVerdict verdict = WireVerdict::kFull;
  if (c.remaining() >= tail_bytes) {
    pkt.tail_region = c.bytes(tail_bytes);
    if (c.remaining() != 0) return {};  // trailing garbage
    if (crc32c(pkt.tail_region) != tail_crc) {
      return {WireVerdict::kCorrupt, std::nullopt};
    }
    pkt.trimmed = flagged_trimmed && pkt.tail_region.empty();
    if (flagged_trimmed && !pkt.tail_region.empty()) {
      // Inconsistent flag: treat the bytes as authoritative.
      pkt.trimmed = false;
    }
    if (pkt.trimmed) verdict = WireVerdict::kTrimmed;
  } else {
    // Byte-truncated in the tail region: this is what a trimming switch
    // produces (head_crc above already vouched for everything kept).
    // Whatever partial tail survived is unusable (tails are only decodable
    // in full), so drop it.
    pkt.trimmed = true;
    pkt.tail_region.clear();
    if (pkt.scheme == Scheme::kBaseline) pkt.head_region.clear();
    verdict = WireVerdict::kTrimmed;
  }
  return {verdict, std::move(pkt)};
}

std::optional<GradientPacket> parse_packet(
    std::span<const std::uint8_t> data) {
  return parse_packet_verified(data).packet;
}

std::vector<std::uint8_t> serialize_meta(const MessageMeta& meta) {
  std::vector<std::uint8_t> out;
  put_u32(out, kWireMagic ^ 0xffffffffu);  // distinct magic for metadata
  put_u32(out, meta.msg_id);
  put_u64(out, meta.epoch);
  out.push_back(static_cast<std::uint8_t>(meta.scheme));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);  // padding
  put_u32(out, meta.total_coords);
  put_u32(out, meta.row_len);
  put_f32(out, meta.scalar_scale);
  put_u32(out, static_cast<std::uint32_t>(meta.row_scales.size()));
  for (float f : meta.row_scales) put_f32(out, f);
  // Composed-scheme extensions: the magnitude placement permutation and the
  // low-rank reliable factor. Always present (zero-length for the schemes
  // that do not use them) so the layout stays positional.
  put_u32(out, static_cast<std::uint32_t>(meta.perm.size()));
  for (std::uint32_t v : meta.perm) put_u32(out, v);
  put_u32(out, meta.lr_rows);
  put_u32(out, meta.lr_cols);
  put_u16(out, meta.lr_rank);
  put_u16(out, meta.lr_head);
  put_u32(out, static_cast<std::uint32_t>(meta.lr_q.size()));
  for (float f : meta.lr_q) put_f32(out, f);
  put_u32(out, crc32c({out.data(), out.size()}));  // trailing checksum
  return out;
}

std::optional<MessageMeta> parse_meta(std::span<const std::uint8_t> data) {
  // Verify the trailing CRC first: metadata is never trimmed, so any
  // mismatch means damage and the whole buffer is rejected.
  if (data.size() < 36) return std::nullopt;
  const auto body = data.first(data.size() - 4);
  Cursor crc_c(data.subspan(body.size()));
  if (crc32c(body) != crc_c.u32()) return std::nullopt;
  data = body;
  Cursor c(data);
  if (!c.has(32)) return std::nullopt;
  if (c.u32() != (kWireMagic ^ 0xffffffffu)) return std::nullopt;
  MessageMeta meta;
  meta.msg_id = c.u32();
  meta.epoch = c.u64();
  const std::uint8_t scheme = data[16];
  if (scheme > kMaxSchemeValue) return std::nullopt;
  meta.scheme = static_cast<Scheme>(scheme);
  c.bytes(4);  // scheme + padding
  meta.total_coords = c.u32();
  meta.row_len = c.u32();
  meta.scalar_scale = c.f32();
  const std::uint32_t n_scales = c.u32();
  if (!c.has(static_cast<std::size_t>(n_scales) * 4)) return std::nullopt;
  meta.row_scales.reserve(n_scales);
  for (std::uint32_t i = 0; i < n_scales; ++i)
    meta.row_scales.push_back(c.f32());
  if (!c.has(4)) return std::nullopt;
  const std::uint32_t n_perm = c.u32();
  if (!c.has(static_cast<std::size_t>(n_perm) * 4)) return std::nullopt;
  meta.perm.reserve(n_perm);
  for (std::uint32_t i = 0; i < n_perm; ++i) meta.perm.push_back(c.u32());
  if (!c.has(16)) return std::nullopt;
  meta.lr_rows = c.u32();
  meta.lr_cols = c.u32();
  meta.lr_rank = c.u16();
  meta.lr_head = c.u16();
  const std::uint32_t n_q = c.u32();
  if (!c.has(static_cast<std::size_t>(n_q) * 4)) return std::nullopt;
  meta.lr_q.reserve(n_q);
  for (std::uint32_t i = 0; i < n_q; ++i) meta.lr_q.push_back(c.f32());
  if (c.remaining() != 0) return std::nullopt;
  return meta;
}

}  // namespace trimgrad::core
