file(REMOVE_RECURSE
  "libtrimgrad_ddp.a"
)
