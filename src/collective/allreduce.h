// Gradient all-reduce over trimmable channels — the *ccl substitute.
//
// Two algorithms:
//
//  * Parameter-server (kPs): every worker sends its full gradient to rank 0,
//    which decodes, averages, re-encodes, and broadcasts. Two batched
//    phases; the fan-in to rank 0 is the incast that trimming absorbs.
//  * Ring (kRing): classic bandwidth-optimal 2(W−1)-step ring. Each step
//    re-encodes the partial sums, so trimming noise enters at most twice
//    per chunk (once during reduce-scatter, once during all-gather) — the
//    same property the paper's receiver-side aggregation has.
//
// The decoded average is identical at every rank (the channel delivers each
// message once; rank-local decode is deterministic given the shared seeds).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "collective/channel.h"
#include "collective/world_view.h"
#include "core/codec.h"

namespace trimgrad::collective {

enum class Algorithm : std::uint8_t { kPs = 0, kRing = 1 };

const char* to_string(Algorithm a) noexcept;

struct AllReduceStats {
  net::SimTime comm_time = 0;       ///< simulated wall time on the fabric
  double encode_seconds = 0;        ///< measured CPU time in the encoder
  double decode_seconds = 0;        ///< measured CPU time in the decoder
  std::uint64_t wire_bytes = 0;
  std::size_t packets = 0;
  std::size_t trimmed_packets = 0;
  std::size_t dropped_packets = 0;
  std::uint64_t retransmits = 0;
  /// Graceful degradation under faults: failed flows (budget / deadline
  /// exhausted) are excluded from the reduction instead of hanging it.
  std::size_t missing_ranks = 0;    ///< failed contributions, summed over rounds
  std::size_t degraded_rounds = 0;  ///< transfer rounds with >=1 failed flow
  core::DecodeStats coord_stats;    ///< aggregated coordinate-level fates
};

struct AllReduceResult {
  /// The averaged gradient as seen by each rank (outputs[r]); with a
  /// broadcast-style algorithm all ranks hold identical values.
  std::vector<std::vector<float>> outputs;
  AllReduceStats stats;
};

class AllReducer {
 public:
  AllReducer(Channel& channel, core::CodecConfig codec,
             Algorithm algo = Algorithm::kPs);

  /// grads[r] = rank r's local gradient; all must have equal length.
  /// msg_id/epoch key the shared randomness — both sides of every transfer
  /// derive dithers/rotations from them.
  AllReduceResult run(const std::vector<std::vector<float>>& grads,
                      std::uint32_t msg_id, std::uint64_t epoch);

  /// Elastic membership: when a view is set, only its live ranks
  /// participate — evicted ranks neither send nor receive, and their
  /// outputs echo their input gradients. The view is read once per run()
  /// (at round start), so a collective never mixes two views even if the
  /// control plane bumps the version mid-epoch. nullptr restores the
  /// static full-world behaviour.
  void set_view(const WorldView* view) noexcept { view_ = view; }
  const WorldView* view() const noexcept { return view_; }

  const core::CodecConfig& codec() const noexcept { return codec_cfg_; }

  /// Per-round control plane: swap the codec between collectives. Rebuilds
  /// the encoder/decoder pair — the encoder's private stochastic-rounding
  /// stream restarts from config.private_seed, so callers that reconfigure
  /// every round mix the round index into it to keep draws independent.
  void set_codec(const core::CodecConfig& codec);

 private:
  AllReduceResult run_ps(const std::vector<std::vector<float>>& grads,
                         std::uint32_t msg_id, std::uint64_t epoch);
  AllReduceResult run_ring(const std::vector<std::vector<float>>& grads,
                           std::uint32_t msg_id, std::uint64_t epoch);

  core::EncodedMessage encode_timed(std::span<const float> grad,
                                    std::uint32_t msg_id, std::uint64_t epoch,
                                    AllReduceStats& st);
  core::DecodeResult decode_timed(const Delivery& d, AllReduceStats& st);

  /// Participant set of the current view (all ranks when no view is set).
  std::vector<int> participants() const;

  Channel& channel_;
  const WorldView* view_ = nullptr;
  core::CodecConfig codec_cfg_;
  Algorithm algo_;
  core::TrimmableEncoder encoder_;
  core::TrimmableDecoder decoder_;
};

}  // namespace trimgrad::collective
