#include "collective/allreduce.h"

#include <cassert>

namespace trimgrad::collective {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void accumulate(AllReduceStats& st, const Delivery& d) {
  st.wire_bytes += d.wire_bytes;
  st.packets += d.packets.size() + d.dropped_packets;
  st.trimmed_packets += d.trimmed_packets;
  st.dropped_packets += d.dropped_packets;
  st.retransmits += d.retransmits;
}

void accumulate(core::DecodeStats& agg, const core::DecodeStats& one) {
  agg.total_coords += one.total_coords;
  agg.full_coords += one.full_coords;
  agg.trimmed_coords += one.trimmed_coords;
  agg.lost_coords += one.lost_coords;
}

/// Fold a round's failed flows into the degradation stats; returns the
/// failure count so callers can adjust their reduction.
std::size_t note_failed(AllReduceStats& st, const std::vector<Delivery>& ds) {
  std::size_t failed = 0;
  for (const auto& d : ds) failed += d.flow_failed ? 1 : 0;
  st.missing_ranks += failed;
  if (failed > 0) ++st.degraded_rounds;
  return failed;
}

}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kPs: return "ps";
    case Algorithm::kRing: return "ring";
  }
  return "?";
}

AllReducer::AllReducer(Channel& channel, core::CodecConfig codec,
                       Algorithm algo)
    : channel_(channel),
      codec_cfg_(codec),
      algo_(algo),
      encoder_(codec),
      decoder_(codec) {}

void AllReducer::set_codec(const core::CodecConfig& codec) {
  codec_cfg_ = codec;
  encoder_ = core::TrimmableEncoder(codec);
  decoder_ = core::TrimmableDecoder(codec);
}

core::EncodedMessage AllReducer::encode_timed(std::span<const float> grad,
                                              std::uint32_t msg_id,
                                              std::uint64_t epoch,
                                              AllReduceStats& st) {
  const auto t0 = Clock::now();
  auto msg = encoder_.encode(grad, msg_id, epoch);
  st.encode_seconds += seconds_since(t0);
  return msg;
}

core::DecodeResult AllReducer::decode_timed(const Delivery& d,
                                            AllReduceStats& st) {
  const auto t0 = Clock::now();
  auto out = decoder_.decode(d.packets, d.meta);
  st.decode_seconds += seconds_since(t0);
  accumulate(st.coord_stats, out.stats);
  return out;
}

std::vector<int> AllReducer::participants() const {
  if (view_ != nullptr) {
    assert(view_->world() == channel_.world_size());
    return view_->live_ranks();
  }
  std::vector<int> all(static_cast<std::size_t>(channel_.world_size()));
  for (std::size_t r = 0; r < all.size(); ++r) all[r] = static_cast<int>(r);
  return all;
}

AllReduceResult AllReducer::run(const std::vector<std::vector<float>>& grads,
                                std::uint32_t msg_id, std::uint64_t epoch) {
  assert(!grads.empty());
  assert(static_cast<int>(grads.size()) == channel_.world_size());
  for (const auto& g : grads) {
    assert(g.size() == grads[0].size());
    (void)g;
  }
  return algo_ == Algorithm::kPs ? run_ps(grads, msg_id, epoch)
                                 : run_ring(grads, msg_id, epoch);
}

AllReduceResult AllReducer::run_ps(const std::vector<std::vector<float>>& grads,
                                   std::uint32_t msg_id, std::uint64_t epoch) {
  // Participants come from the view at round start (all ranks without a
  // view); the lowest live rank serves. With a full view this reduces
  // bit-exactly to the static server-is-rank-0 behaviour.
  const std::vector<int> parts = participants();
  const std::size_t n = grads[0].size();
  AllReduceResult result;
  auto& st = result.stats;

  // Evicted ranks neither send nor receive: their outputs echo their
  // input gradients (the trainer ignores them anyway).
  result.outputs = grads;
  if (parts.empty()) return result;
  const int server = parts.front();
  const std::size_t server_idx = static_cast<std::size_t>(server);

  // Phase 1: live workers send to the server. Message ids are unique per
  // (collective, sender) so shared-randomness streams differ.
  std::vector<TransferRequest> gather;
  for (std::size_t p = 1; p < parts.size(); ++p) {
    const int r = parts[p];
    TransferRequest req;
    req.src = r;
    req.dst = server;
    req.message = encode_timed(grads[static_cast<std::size_t>(r)],
                               msg_id * 64 + static_cast<std::uint32_t>(r),
                               epoch, st);
    gather.push_back(std::move(req));
  }
  auto arrivals = channel_.transfer(std::move(gather));
  const net::SimTime gather_time = batch_time(arrivals);
  note_failed(st, arrivals);

  // Server average: its own gradient plus each decoded arrival. A failed
  // flow contributes nothing; the divisor is the contributor count, so the
  // mean stays unbiased over whoever actually arrived.
  std::vector<double> acc(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) acc[i] = grads[server_idx][i];
  int contributors = 1;  // the server's own gradient
  for (const auto& d : arrivals) {
    accumulate(st, d);
    if (d.flow_failed) continue;
    const auto dec = decode_timed(d, st);
    for (std::size_t i = 0; i < n; ++i) acc[i] += dec.values[i];
    ++contributors;
  }
  std::vector<float> mean(n);
  for (std::size_t i = 0; i < n; ++i)
    mean[i] = static_cast<float>(acc[i] / contributors);

  // Phase 2: broadcast the mean back to the live workers.
  std::vector<TransferRequest> scatter;
  for (std::size_t p = 1; p < parts.size(); ++p) {
    const int r = parts[p];
    TransferRequest req;
    req.src = server;
    req.dst = r;
    req.message = encode_timed(
        mean, msg_id * 64 + 32 + static_cast<std::uint32_t>(r), epoch, st);
    scatter.push_back(std::move(req));
  }
  auto returns = channel_.transfer(std::move(scatter));
  const net::SimTime scatter_time = batch_time(returns);
  note_failed(st, returns);

  result.outputs[server_idx] = mean;
  for (const auto& d : returns) {
    accumulate(st, d);
    if (d.flow_failed) {
      // The broadcast never reached this rank: fall back to its local
      // gradient so the step still makes (rank-local) progress.
      result.outputs[static_cast<std::size_t>(d.dst)] =
          grads[static_cast<std::size_t>(d.dst)];
      continue;
    }
    result.outputs[static_cast<std::size_t>(d.dst)] =
        decode_timed(d, st).values;
  }
  st.comm_time = gather_time + scatter_time;
  return result;
}

AllReduceResult AllReducer::run_ring(
    const std::vector<std::vector<float>>& grads, std::uint32_t msg_id,
    std::uint64_t epoch) {
  // The ring is built over the live participants (all ranks without a
  // view): k participants, k chunks, 2(k−1) steps. Positions on the ring
  // are participant indices; message ids stay keyed by the *actual* rank,
  // so a full view reproduces the static behaviour bit-exactly.
  const int world = channel_.world_size();
  const std::vector<int> parts = participants();
  const int k = static_cast<int>(parts.size());
  const std::size_t n = grads[0].size();
  AllReduceResult result;
  auto& st = result.stats;

  // Evicted ranks sit out; their outputs echo their input gradients. A
  // one-rank ring has nothing to exchange: its own gradient is the mean.
  result.outputs = grads;
  if (k <= 1) return result;
  const std::size_t kz = static_cast<std::size_t>(k);
  // Participant index of rank `parts[i]` is i; pos_of inverts that.
  auto rank_pos = [&](int rank) {
    for (int i = 0; i < k; ++i) {
      if (parts[static_cast<std::size_t>(i)] == rank) return i;
    }
    assert(false && "delivery from a non-participant");
    return 0;
  };

  // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
  std::vector<std::size_t> bounds(kz + 1);
  for (std::size_t c = 0; c <= kz; ++c) bounds[c] = n * c / kz;
  auto chunk_of = [&](const std::vector<float>& v, std::size_t c) {
    return std::vector<float>(v.begin() + bounds[c], v.begin() + bounds[c + 1]);
  };

  // working[i] = participant i's current accumulation buffer.
  std::vector<std::vector<float>> working(kz);
  for (std::size_t i = 0; i < kz; ++i)
    working[i] = grads[static_cast<std::size_t>(parts[i])];
  std::uint32_t step_id = msg_id * 64;

  // Reduce-scatter: k-1 steps. In step s, participant i sends chunk
  // (i - s) mod k to participant (i+1) mod k, which adds it into its copy.
  for (int s = 0; s < k - 1; ++s) {
    std::vector<TransferRequest> batch;
    for (int i = 0; i < k; ++i) {
      const std::size_t c =
          static_cast<std::size_t>(((i - s) % k + k) % k);
      TransferRequest req;
      req.src = parts[static_cast<std::size_t>(i)];
      req.dst = parts[static_cast<std::size_t>((i + 1) % k)];
      req.message = encode_timed(
          chunk_of(working[static_cast<std::size_t>(i)], c),
          step_id + static_cast<std::uint32_t>(req.src), epoch, st);
      batch.push_back(std::move(req));
    }
    step_id += static_cast<std::uint32_t>(world);
    auto deliveries = channel_.transfer(std::move(batch));
    st.comm_time += batch_time(deliveries);
    note_failed(st, deliveries);
    for (const auto& d : deliveries) {
      accumulate(st, d);
      if (d.flow_failed) continue;  // chunk keeps its partial sum
      const auto dec = decode_timed(d, st);
      const int src_pos = rank_pos(d.src);
      const std::size_t c =
          static_cast<std::size_t>(((src_pos - s) % k + k) % k);
      auto& buf = working[static_cast<std::size_t>(rank_pos(d.dst))];
      for (std::size_t i = 0; i < dec.values.size(); ++i)
        buf[bounds[c] + i] += dec.values[i];
    }
  }

  // All-gather: k-1 steps. In step s, participant i sends its *final*
  // chunk (i + 1 - s) mod k onward; receivers overwrite.
  for (int s = 0; s < k - 1; ++s) {
    std::vector<TransferRequest> batch;
    for (int i = 0; i < k; ++i) {
      const std::size_t c =
          static_cast<std::size_t>(((i + 1 - s) % k + k) % k);
      TransferRequest req;
      req.src = parts[static_cast<std::size_t>(i)];
      req.dst = parts[static_cast<std::size_t>((i + 1) % k)];
      req.message = encode_timed(
          chunk_of(working[static_cast<std::size_t>(i)], c),
          step_id + static_cast<std::uint32_t>(req.src), epoch, st);
      batch.push_back(std::move(req));
    }
    step_id += static_cast<std::uint32_t>(world);
    auto deliveries = channel_.transfer(std::move(batch));
    st.comm_time += batch_time(deliveries);
    note_failed(st, deliveries);
    for (const auto& d : deliveries) {
      accumulate(st, d);
      if (d.flow_failed) continue;  // keep the stale (local) chunk value
      const auto dec = decode_timed(d, st);
      const int src_pos = rank_pos(d.src);
      const std::size_t c =
          static_cast<std::size_t>(((src_pos + 1 - s) % k + k) % k);
      auto& buf = working[static_cast<std::size_t>(rank_pos(d.dst))];
      for (std::size_t i = 0; i < dec.values.size(); ++i)
        buf[bounds[c] + i] = dec.values[i];
    }
  }

  // Normalize the sums into means.
  const float inv = 1.0f / static_cast<float>(k);
  for (auto& buf : working)
    for (auto& x : buf) x *= inv;
  for (std::size_t i = 0; i < kz; ++i)
    result.outputs[static_cast<std::size_t>(parts[i])] =
        std::move(working[i]);
  return result;
}

}  // namespace trimgrad::collective
