#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/traffic.h"
#include "net/transport.h"

namespace trimgrad::net {
namespace {

FabricConfig default_cfg() {
  FabricConfig cfg;
  cfg.edge_link = {100e9, 1e-6};
  cfg.core_link = {100e9, 1e-6};
  return cfg;
}

TEST(Dumbbell, NodeCountsAndIds) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 3, 5, default_cfg());
  EXPECT_EQ(d.left_hosts.size(), 3u);
  EXPECT_EQ(d.right_hosts.size(), 5u);
  EXPECT_EQ(sim.node_count(), 3u + 5u + 2u);
  std::set<NodeId> ids(d.left_hosts.begin(), d.left_hosts.end());
  ids.insert(d.right_hosts.begin(), d.right_hosts.end());
  ids.insert(d.left_switch);
  ids.insert(d.right_switch);
  EXPECT_EQ(ids.size(), 10u);  // all distinct
}

TEST(Dumbbell, CrossTrafficReachesEitherDirection) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 2, 2, default_cfg());
  ManagedFlow l2r(sim, d.left_hosts[0], d.right_hosts[1], 1,
                  TransportConfig::reliable(), 4);
  ManagedFlow r2l(sim, d.right_hosts[0], d.left_hosts[1], 2,
                  TransportConfig::reliable(), 4);
  l2r.start_at(0.0, make_bulk_items(4, 1500, 0));
  r2l.start_at(0.0, make_bulk_items(4, 1500, 0));
  sim.run();
  EXPECT_TRUE(l2r.done());
  EXPECT_TRUE(r2l.done());
}

TEST(Dumbbell, SameSideTrafficDoesNotCrossBottleneck) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 2, 1, default_cfg());
  ManagedFlow local(sim, d.left_hosts[0], d.left_hosts[1], 1,
                    TransportConfig::reliable(), 4);
  local.start_at(0.0, make_bulk_items(4, 1500, 0));
  sim.run();
  EXPECT_TRUE(local.done());
  // The bottleneck port (core port was created first on each switch) must
  // have carried nothing.
  auto& sw = sim.node(d.left_switch);
  EXPECT_EQ(sw.port(0).queue().counters().enqueued, 0u);
}

TEST(LeafSpine, StructureAndCounts) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 3, 2, 4, default_cfg());
  EXPECT_EQ(t.leaves.size(), 3u);
  EXPECT_EQ(t.spines.size(), 2u);
  EXPECT_EQ(t.all_hosts().size(), 12u);
  EXPECT_EQ(sim.node_count(), 3u + 2u + 12u);
  // Each leaf: 2 uplinks + 4 host ports.
  for (NodeId leaf : t.leaves) EXPECT_EQ(sim.node(leaf).port_count(), 6u);
  // Each spine: 3 leaf ports.
  for (NodeId spine : t.spines) EXPECT_EQ(sim.node(spine).port_count(), 3u);
}

TEST(LeafSpine, AnyPairCanCommunicate) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 2, 2, 2, default_cfg());
  std::uint32_t flow_id = 1;
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  const auto hosts = t.all_hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      auto f = std::make_unique<ManagedFlow>(sim, a, b, flow_id++,
                                             TransportConfig::reliable(), 2);
      f->start_at(0.0, make_bulk_items(2, 1500, 0));
      flows.push_back(std::move(f));
    }
  }
  sim.run();
  for (const auto& f : flows) EXPECT_TRUE(f->done());
  // Nothing unroutable anywhere.
  for (NodeId s : t.spines)
    EXPECT_EQ(static_cast<SwitchNode&>(sim.node(s)).unroutable(), 0u);
  for (NodeId l : t.leaves)
    EXPECT_EQ(static_cast<SwitchNode&>(sim.node(l)).unroutable(), 0u);
}

TEST(LeafSpine, EcmpSpreadsFlowsAcrossSpines) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 2, 4, 2, default_cfg());
  // Many flows from leaf 0 to leaf 1; count how many spines carried data.
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  for (std::uint32_t i = 0; i < 64; ++i) {
    auto f = std::make_unique<ManagedFlow>(
        sim, t.hosts[0][i % 2], t.hosts[1][i % 2], 100 + i,
        TransportConfig::reliable(), 2);
    f->start_at(0.0, make_bulk_items(2, 1500, 0));
    flows.push_back(std::move(f));
  }
  sim.run();
  int spines_used = 0;
  for (NodeId s : t.spines) {
    auto& spine = sim.node(s);
    std::uint64_t carried = 0;
    for (std::size_t p = 0; p < spine.port_count(); ++p)
      carried += spine.port(p).queue().counters().enqueued;
    if (carried > 0) ++spines_used;
  }
  EXPECT_GE(spines_used, 3) << "64 flows should hash across >= 3 of 4 spines";
}

/// Number of links a frame for (dst, flow_id) traverses from src, walked
/// through the exact datapath egress selection. Returns -1 on a routing
/// loop or an unroutable hop.
int walk_path(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id) {
  NodeId cur = sim.node(src).port(0).peer();  // host's single uplink
  int hops = 1;
  while (cur != dst) {
    if (hops > 10) return -1;
    auto& sw = static_cast<SwitchNode&>(sim.node(cur));
    const std::ptrdiff_t out = sw.egress_for(dst, flow_id);
    if (out < 0) return -1;
    cur = sim.node(cur).port(static_cast<std::size_t>(out)).peer();
    ++hops;
  }
  return hops;
}

/// Construction invariants for a k-ary fat-tree, checked at k = 4/8/16 so
/// the 1024-host default cannot silently miswire.
void check_fat_tree_invariants(std::size_t k) {
  SCOPED_TRACE("k=" + std::to_string(k));
  const std::size_t half = k / 2;
  Simulator sim;
  const FatTree ft = build_fat_tree(sim, k, default_cfg());

  // --- Counts ---------------------------------------------------------
  ASSERT_EQ(ft.k, k);
  EXPECT_EQ(ft.all_hosts().size(), k * k * k / 4);
  EXPECT_EQ(ft.host_count(), k * k * k / 4);
  ASSERT_EQ(ft.edges.size(), k);
  ASSERT_EQ(ft.aggs.size(), k);
  ASSERT_EQ(ft.cores.size(), half);
  for (std::size_t p = 0; p < k; ++p) {
    EXPECT_EQ(ft.edges[p].size(), half);
    EXPECT_EQ(ft.aggs[p].size(), half);
    EXPECT_EQ(ft.pod_hosts[p].size(), half * half);
  }
  for (const auto& group : ft.cores) EXPECT_EQ(group.size(), half);
  EXPECT_EQ(sim.node_count(), k * k * k / 4 + k * k + half * half);

  // --- Port counts: every switch radix is exactly k, hosts have one NIC.
  std::set<NodeId> core_ids;
  for (const auto& group : ft.cores)
    core_ids.insert(group.begin(), group.end());
  for (std::size_t p = 0; p < k; ++p) {
    for (NodeId e : ft.edges[p]) EXPECT_EQ(sim.node(e).port_count(), k);
    for (NodeId a : ft.aggs[p]) EXPECT_EQ(sim.node(a).port_count(), k);
    for (NodeId h : ft.pod_hosts[p]) EXPECT_EQ(sim.node(h).port_count(), 1u);
  }
  for (NodeId c : core_ids) EXPECT_EQ(sim.node(c).port_count(), k);

  // --- Bisection: agg->core links must number k^3/4 (full bisection,
  // one per host), and every agg uplink must land on a core in the agg's
  // own group.
  std::size_t bisection_links = 0;
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t a = 0; a < half; ++a) {
      const Node& agg = sim.node(ft.aggs[p][a]);
      for (std::size_t port = half; port < k; ++port) {
        const NodeId peer = agg.port(port).peer();
        EXPECT_TRUE(core_ids.count(peer)) << "agg uplink not to a core";
        EXPECT_TRUE(std::count(ft.cores[a].begin(), ft.cores[a].end(), peer))
            << "agg " << a << " wired outside core group " << a;
        ++bisection_links;
      }
    }
  }
  EXPECT_EQ(bisection_links, k * k * k / 4);

  // --- Path lengths through the real datapath: 2 links under one edge,
  // 4 within a pod, 6 across pods — for several ECMP hash inputs.
  const NodeId src = ft.pod_hosts[0][0];
  const NodeId same_edge = ft.pod_hosts[0][1];
  const NodeId same_pod = ft.pod_hosts[0][half * half - 1];  // last edge
  const NodeId other_pod = ft.pod_hosts[k - 1][0];
  for (std::uint32_t flow = 1; flow <= 16; ++flow) {
    EXPECT_EQ(walk_path(sim, src, same_edge, flow), 2);
    EXPECT_EQ(walk_path(sim, src, same_pod, flow), 4);
    EXPECT_EQ(walk_path(sim, src, other_pod, flow), 6);
    EXPECT_EQ(walk_path(sim, other_pod, src, flow), 6);
  }

  // --- Partition: the canonical sharding must cross domains only on
  // agg <-> core links, and the sealed lookahead is the core-link latency.
  partition_fat_tree(sim, ft);
  for (std::size_t id = 0; id < sim.node_count(); ++id) {
    const Node& n = sim.node(static_cast<NodeId>(id));
    for (std::size_t port = 0; port < n.port_count(); ++port) {
      const NodeId peer = n.port(port).peer();
      if (sim.node_domain(n.id()) == sim.node_domain(peer)) continue;
      const bool n_is_core = core_ids.count(n.id()) > 0;
      const bool peer_is_core = core_ids.count(peer) > 0;
      EXPECT_TRUE(n_is_core != peer_is_core)
          << "inter-domain link not agg<->core: " << n.name();
    }
  }
  sim.seal_partition();
  EXPECT_EQ(sim.domain_count(), k + half);
  EXPECT_DOUBLE_EQ(sim.lookahead(), default_cfg().core_link.latency_s);
}

TEST(FatTree, InvariantsK4) { check_fat_tree_invariants(4); }
TEST(FatTree, InvariantsK8) { check_fat_tree_invariants(8); }
TEST(FatTree, InvariantsK16) { check_fat_tree_invariants(16); }

TEST(FatTree, RejectsOddOrTinyK) {
  Simulator sim;
  FabricConfig cfg;
  EXPECT_THROW(build_fat_tree(sim, 3, cfg), std::invalid_argument);
  EXPECT_THROW(build_fat_tree(sim, 0, cfg), std::invalid_argument);
}

TEST(FatTree, AnyPairCommunicatesAndEcmpSpreadsAcrossCores) {
  Simulator sim;
  const FatTree ft = build_fat_tree(sim, 4, default_cfg());
  const auto hosts = ft.all_hosts();
  // A sampled all-pairs sweep (full 16x16 would be slow for no extra
  // coverage): every pod pair appears.
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  std::uint32_t flow_id = 1;
  for (std::size_t i = 0; i < hosts.size(); i += 3) {
    for (std::size_t j = 0; j < hosts.size(); j += 5) {
      if (hosts[i] == hosts[j]) continue;
      auto f = std::make_unique<ManagedFlow>(sim, hosts[i], hosts[j],
                                             flow_id++,
                                             TransportConfig::reliable(), 2);
      f->start_at(0.0, make_bulk_items(2, 1500, 0));
      flows.push_back(std::move(f));
    }
  }
  sim.run();
  for (const auto& f : flows) EXPECT_TRUE(f->done());
  int cores_used = 0;
  for (const auto& group : ft.cores) {
    for (NodeId c : group) {
      auto& core_sw = sim.node(c);
      std::uint64_t carried = 0;
      for (std::size_t p = 0; p < core_sw.port_count(); ++p)
        carried += core_sw.port(p).queue().counters().enqueued;
      if (carried > 0) ++cores_used;
      EXPECT_EQ(static_cast<SwitchNode&>(core_sw).unroutable(), 0u);
    }
  }
  EXPECT_GE(cores_used, 2) << "inter-pod flows should use multiple cores";
}

TEST(Poisson, BackgroundFlowsLaunchAndComplete) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 4, 4, default_cfg());
  std::vector<NodeId> hosts = d.left_hosts;
  hosts.insert(hosts.end(), d.right_hosts.begin(), d.right_hosts.end());
  PoissonTraffic::Config cfg;
  cfg.flows_per_sec = 2e5;
  cfg.stop = 0.5e-3;
  cfg.packets_per_flow = 4;
  cfg.transport = TransportConfig::reliable();
  PoissonTraffic bg(sim, hosts, cfg);
  sim.run();
  EXPECT_GT(bg.launched(), 20u);   // ~100 expected
  EXPECT_LT(bg.launched(), 500u);
  EXPECT_EQ(bg.completed(), bg.launched());
  for (SimTime fct : bg.fcts()) EXPECT_GT(fct, 0.0);
}

TEST(Poisson, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    const Dumbbell d = build_dumbbell(sim, 2, 2, default_cfg());
    std::vector<NodeId> hosts = d.left_hosts;
    hosts.insert(hosts.end(), d.right_hosts.begin(), d.right_hosts.end());
    PoissonTraffic::Config cfg;
    cfg.flows_per_sec = 1e5;
    cfg.stop = 0.5e-3;
    cfg.seed = seed;
    PoissonTraffic bg(sim, hosts, cfg);
    sim.run();
    return bg.launched();
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace trimgrad::net
