#include "ddp/membership.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/metrics.h"
#include "net/invariants.h"

namespace trimgrad::ddp {

namespace {
struct MembershipTelemetry {
  core::Counter evictions, rejoins, heartbeat_misses, stale_heartbeats;

  static const MembershipTelemetry& get() {
    auto& reg = core::MetricsRegistry::global();
    static const MembershipTelemetry t{
        reg.counter("net.membership.evictions"),
        reg.counter("net.membership.rejoins"),
        reg.counter("net.membership.heartbeat_misses"),
        reg.counter("net.membership.stale_heartbeats"),
    };
    return t;
  }
};
}  // namespace

/// Terminates heartbeat frames at the coordinator's host. Arrivals are
/// collected per window; poll() consumes and clears them.
class Membership::HeartbeatSink : public net::FlowEndpoint {
 public:
  void on_frame(net::Frame frame) override {
    if (frame.kind != net::FrameKind::kHeartbeat) return;
    heard_.push_back({frame.hb_rank, frame.hb_view});
  }

  struct Arrival {
    std::uint32_t rank;
    std::uint64_t view;
  };
  std::vector<Arrival> take() { return std::exchange(heard_, {}); }

 private:
  std::vector<Arrival> heard_;
};

Membership::Membership(net::Simulator& sim,
                       std::vector<net::Host*> rank_hosts,
                       MembershipConfig cfg)
    : sim_(sim),
      hosts_(std::move(rank_hosts)),
      cfg_(std::move(cfg)),
      view_(collective::WorldView::full(static_cast<int>(hosts_.size()))),
      sink_(std::make_unique<HeartbeatSink>()),
      agent_view_(hosts_.size(), 0),
      misses_(hosts_.size(), 0),
      evicted_at_(hosts_.size(), -1.0),
      ckpt_blobs_(hosts_.size()) {
  assert(hosts_.size() >= 2);
  assert(cfg_.coordinator >= 0 &&
         static_cast<std::size_t>(cfg_.coordinator) < hosts_.size());
  assert(cfg_.evict_after >= 1);
  assert(cfg_.heartbeat_s > 0);
  net::TransportRegistry::global().at(cfg_.fetch_transport);  // fail fast
  hosts_[static_cast<std::size_t>(cfg_.coordinator)]->bind(kHeartbeatFlowId,
                                                           sink_.get());
}

Membership::~Membership() {
  hosts_[static_cast<std::size_t>(cfg_.coordinator)]->unbind(
      kHeartbeatFlowId);
}

PollResult Membership::poll(std::uint64_t round) {
  const auto& tel = MembershipTelemetry::get();
  const auto coord = static_cast<std::size_t>(cfg_.coordinator);
  const net::NodeId coord_host = hosts_[coord]->id();

  // Live ranks' agents track the real view (they participate in every
  // round); evicted ranks keep whatever they last saw.
  for (std::size_t r = 0; r < hosts_.size(); ++r) {
    if (view_.is_live(static_cast<int>(r))) agent_view_[r] = view_.version;
  }

  // Every non-coordinator rank attempts a heartbeat — a dead host's frame
  // is dropped by the fault plane at transmit, which is the signal.
  ++hb_seq_;
  for (std::size_t r = 0; r < hosts_.size(); ++r) {
    if (r == coord) continue;
    net::Frame hb;
    hb.id = sim_.next_frame_id();
    hb.src = hosts_[r]->id();
    hb.dst = coord_host;
    hb.flow_id = kHeartbeatFlowId;
    hb.seq = hb_seq_;
    hb.kind = net::FrameKind::kHeartbeat;
    hb.size_bytes = net::kControlFrameBytes;
    hb.hb_rank = static_cast<std::uint32_t>(r);
    hb.hb_view = agent_view_[r];
    hosts_[r]->send(hb);
  }
  sim_.run_until(sim_.now() + cfg_.heartbeat_s);

  // Tally the window. A heartbeat stamped with the current view counts as
  // liveness; a stale stamp means the sender missed at least one view
  // change — i.e. it was evicted and has come back.
  std::vector<std::uint8_t> heard_current(hosts_.size(), 0);
  std::vector<std::uint8_t> heard_stale(hosts_.size(), 0);
  for (const auto& a : sink_->take()) {
    if (a.rank >= hosts_.size()) continue;
    if (a.view == view_.version) {
      heard_current[a.rank] = 1;
    } else {
      heard_stale[a.rank] = 1;
    }
  }

  PollResult result;
  for (std::size_t r = 0; r < hosts_.size(); ++r) {
    const int rank = static_cast<int>(r);
    if (r == coord) continue;
    if (view_.is_live(rank)) {
      if (heard_current[r]) {
        misses_[r] = 0;
        continue;
      }
      ++misses_[r];
      ++misses_total_;
      tel.heartbeat_misses.add();
      if (misses_[r] >= cfg_.evict_after) {
        view_.evict(rank);
        evicted_at_[r] = sim_.now();
        ++evictions_;
        tel.evictions.add();
        events_.push_back({MembershipEvent::Kind::kEvict, sim_.now(), rank,
                           view_.version, round});
        result.evicted.push_back(rank);
        if (monitor_ != nullptr) {
          monitor_->on_view_version(view_.version, sim_.now());
        }
      }
    } else if (heard_stale[r] || heard_current[r]) {
      // An evicted rank we can hear again: it survived its fault window
      // and is asking back in (its view stamp is stale by construction —
      // eviction itself bumped the version past what it knows).
      tel.stale_heartbeats.add();
      result.rejoin_ready.push_back(rank);
    }
  }
  return result;
}

FetchResult Membership::fetch_params(int from_rank, int to_rank,
                                     std::size_t param_floats) {
  assert(view_.is_live(from_rank));
  const net::Transport& transport =
      net::TransportRegistry::global().at(cfg_.fetch_transport);

  const std::size_t total_bytes = param_floats * sizeof(float);
  const std::size_t frame_bytes =
      std::max<std::size_t>(cfg_.fetch_frame_bytes, 64);
  std::vector<net::SendItem> items;
  items.reserve(total_bytes / frame_bytes + 1);
  for (std::size_t off = 0; off < total_bytes; off += frame_bytes) {
    net::SendItem it;
    it.size_bytes = std::min(frame_bytes, total_bytes - off);
    it.trim_size_bytes = 0;  // a model snapshot must arrive bit-exact
    items.push_back(it);
  }
  if (items.empty()) items.push_back({64, 0, nullptr});

  FetchResult out;
  const net::SimTime t0 = sim_.now();
  net::FlowOptions options;
  options.expected_packets = items.size();
  auto flow = transport.make_flow(
      sim_, hosts_.at(static_cast<std::size_t>(from_rank))->id(),
      hosts_.at(static_cast<std::size_t>(to_rank))->id(), next_fetch_flow_++,
      cfg_.fetch_tuning, std::move(options));
  flow->send_message(std::move(items),
                     [&out, t0](const net::FlowStats& st) {
                       out.comm_s = st.end_time - t0;
                       out.wire_bytes = st.bytes_sent;
                       out.failed = st.failed;
                     });
  sim_.run();
  return out;
}

void Membership::complete_rejoin(int rank, std::uint64_t round) {
  assert(!view_.is_live(rank));
  view_.admit(rank);
  const auto r = static_cast<std::size_t>(rank);
  agent_view_[r] = view_.version;
  misses_[r] = 0;
  if (evicted_at_[r] >= 0) {
    recovery_s_total_ += sim_.now() - evicted_at_[r];
    evicted_at_[r] = -1.0;
  }
  ++rejoins_;
  MembershipTelemetry::get().rejoins.add();
  events_.push_back({MembershipEvent::Kind::kRejoin, sim_.now(), rank,
                     view_.version, round});
  if (monitor_ != nullptr) {
    monitor_->on_view_version(view_.version, sim_.now());
  }
}

void Membership::store_checkpoint(const Checkpoint& ck) {
  const auto t0 = std::chrono::steady_clock::now();
  auto blob = ck.to_bytes();
  ckpt_wall_s_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ckpt_blobs_.at(static_cast<std::size_t>(ck.rank)) = std::move(blob);
  ++ckpt_saves_;
  if (monitor_ != nullptr) {
    // Custody check: the blob we just stored must survive its CRC-verified
    // parse — a store that can't be restored is a silent data-loss bug.
    bool ok = true;
    try {
      (void)Checkpoint::from_bytes(
          ckpt_blobs_.at(static_cast<std::size_t>(ck.rank)));
    } catch (const std::exception&) {
      ok = false;
    }
    monitor_->on_checkpoint_custody(ck.rank, ok, sim_.now());
  }
}

bool Membership::has_checkpoint(int rank) const {
  return !ckpt_blobs_.at(static_cast<std::size_t>(rank)).empty();
}

Checkpoint Membership::restore_checkpoint(int rank) const {
  const auto& blob = ckpt_blobs_.at(static_cast<std::size_t>(rank));
  if (blob.empty()) {
    throw std::runtime_error("Membership: no checkpoint stored for rank " +
                             std::to_string(rank));
  }
  if (monitor_ != nullptr) {
    try {
      Checkpoint ck = Checkpoint::from_bytes(blob);
      monitor_->on_checkpoint_custody(rank, true, sim_.now());
      return ck;
    } catch (const std::exception&) {
      monitor_->on_checkpoint_custody(rank, false, sim_.now());
      throw;
    }
  }
  return Checkpoint::from_bytes(blob);
}

std::uint64_t Membership::checkpoint_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : ckpt_blobs_) n += b.size();
  return n;
}

}  // namespace trimgrad::ddp
