// Transport behaviour over a live simulated fabric.
#include "net/transport.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

/// 2-host dumbbell with a configurable bottleneck queue policy.
struct Bench {
  Simulator sim;
  Dumbbell topo;

  /// Default queues are deep (no loss); congestion tests pass a shallow
  /// queue_kb explicitly. Header queues are NDP-style generous so trims
  /// themselves are never dropped.
  explicit Bench(QueuePolicy policy, double core_gbps = 10.0,
                 std::size_t queue_kb = 2048) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {core_gbps * 1e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = queue_kb * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 4, 4, cfg);
  }
};

TEST(Transport, SingleFlowCompletesAndDeliversEverything) {
  Bench b(QueuePolicy::kDropTail);
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::reliable(), 32);
  flow.start_at(0.0, make_bulk_items(32, 1500, 0));
  b.sim.run();
  EXPECT_TRUE(flow.done());
  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(flow.stats().acked_full, 32u);
  EXPECT_EQ(flow.stats().retransmits, 0u);
  EXPECT_EQ(flow.receiver_stats().delivered_full, 32u);
}

TEST(Transport, FctMatchesBandwidthDelayArithmetic) {
  Bench b(QueuePolicy::kDropTail, /*core_gbps=*/10.0);
  const std::size_t n = 100;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::reliable(), n);
  flow.start_at(0.0, make_bulk_items(n, 1500, 0));
  b.sim.run();
  // 100 x 1500B over the 10 Gbps bottleneck = 120 us serialization, plus
  // a handful of microseconds of propagation and ACK return.
  const SimTime lower = n * 1500 * 8.0 / 10e9;
  EXPECT_GE(flow.stats().fct(), lower);
  EXPECT_LT(flow.stats().fct(), lower * 1.5 + 20e-6);
}

TEST(Transport, WindowLimitsInFlight) {
  Bench b(QueuePolicy::kDropTail);
  TransportConfig cfg = TransportConfig::reliable();
  cfg.window = 2;  // tiny window => ack-clocked, slower but correct
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   16);
  flow.start_at(0.0, make_bulk_items(16, 1500, 0));
  b.sim.run();
  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(flow.stats().acked_full, 16u);
}

TEST(Transport, ReliableRecoversFromCongestionDrops) {
  // 8-to-1 incast through a shallow drop-tail bottleneck: drops happen,
  // retransmissions recover every byte.
  Bench b(QueuePolicy::kDropTail, 10.0, /*queue_kb=*/15);
  IncastPattern::Config cfg;
  cfg.packets_per_sender = 64;
  cfg.trim_size = 0;
  cfg.transport = TransportConfig::reliable();
  std::vector<NodeId> senders = b.topo.left_hosts;
  IncastPattern incast(b.sim, senders, b.topo.right_hosts[0], cfg);
  b.sim.run();
  EXPECT_EQ(incast.completed_count(), senders.size());
  std::uint64_t total_retx = 0;
  for (const auto& st : incast.flow_stats()) {
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.acked_full, 64u);
    total_retx += st.retransmits;
  }
  EXPECT_GT(total_retx, 0u) << "incast through 15 KB buffer must drop";
}

TEST(Transport, TrimAwareCompletesWithoutRetransmits) {
  Bench b(QueuePolicy::kTrim, 10.0, /*queue_kb=*/15);
  IncastPattern::Config cfg;
  cfg.packets_per_sender = 64;
  cfg.trim_size = 88;
  cfg.transport = TransportConfig::trim_aware();
  IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0], cfg);
  b.sim.run();
  EXPECT_EQ(incast.completed_count(), b.topo.left_hosts.size());
  std::uint64_t total_retx = 0, total_trimmed = 0;
  for (const auto& st : incast.flow_stats()) {
    EXPECT_TRUE(st.completed);
    total_retx += st.retransmits;
    total_trimmed += st.acked_trimmed;
  }
  EXPECT_GT(total_trimmed, 0u) << "incast must cause trimming";
  EXPECT_EQ(total_retx, 0u) << "trimmed packets are never retransmitted";
}

TEST(Transport, TrimmingBeatsDropTailOnTailLatency) {
  // The paper's headline mechanism claim: under incast, trimming keeps the
  // slowest flow's completion time far below the retransmission-bound
  // drop-tail baseline.
  const std::size_t kSenders = 4;
  SimTime droptail_fct, trim_fct;
  {
    Bench b(QueuePolicy::kDropTail, 10.0, 15);
    IncastPattern::Config cfg;
    cfg.packets_per_sender = 128;
    cfg.trim_size = 0;
    cfg.transport = TransportConfig::reliable();
    IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0], cfg);
    b.sim.run();
    EXPECT_EQ(incast.completed_count(), kSenders);
    droptail_fct = incast.max_fct();
  }
  {
    Bench b(QueuePolicy::kTrim, 10.0, 15);
    IncastPattern::Config cfg;
    cfg.packets_per_sender = 128;
    cfg.trim_size = 88;
    cfg.transport = TransportConfig::trim_aware();
    IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0], cfg);
    b.sim.run();
    EXPECT_EQ(incast.completed_count(), kSenders);
    trim_fct = incast.max_fct();
  }
  EXPECT_LT(trim_fct, droptail_fct);
}

TEST(Transport, ReliableNacksTrimmedArrivals) {
  // A reliable flow crossing a *trimming* fabric: trimmed arrivals are
  // useless, the receiver NACKs, the sender retransmits, and the flow still
  // completes with every payload intact.
  Bench b(QueuePolicy::kTrim, 10.0, 15);
  IncastPattern::Config cfg;
  cfg.packets_per_sender = 64;
  cfg.trim_size = 88;  // frames are trimmable, but transport wants payloads
  cfg.transport = TransportConfig::reliable();
  IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0], cfg);
  b.sim.run();
  EXPECT_EQ(incast.completed_count(), b.topo.left_hosts.size());
  std::uint64_t retx = 0;
  for (const auto& st : incast.flow_stats()) {
    EXPECT_EQ(st.acked_full, 64u);  // all eventually delivered in full
    retx += st.retransmits;
  }
  EXPECT_GT(retx, 0u);
}

// Empty-message, RTO-backoff/budget, deadline, and abort semantics are
// covered for every registry transport at once in
// transport_conformance_test.cpp.

TEST(Transport, DataPlaneCargoArrivesAtReceiver) {
  Bench b(QueuePolicy::kDropTail);
  auto cargo = std::make_shared<core::GradientPacket>();
  cargo->msg_id = 42;
  cargo->tail_region.assign(1456, 7);
  std::vector<std::uint32_t> seen;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                   TransportConfig::trim_aware(), 1,
                   [&](const Frame& f) {
                     ASSERT_TRUE(f.cargo);
                     seen.push_back(f.cargo->msg_id);
                   });
  std::vector<SendItem> items(1);
  items[0].size_bytes = 1500;
  items[0].trim_size_bytes = 88;
  items[0].cargo = cargo;
  flow.start_at(0.0, std::move(items));
  b.sim.run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{42}));
}

TEST(Transport, UntrimmableMetadataSurvivesTrimmingFabric) {
  // Codec metadata (trim_size = 0) must cross a congested trimming fabric
  // intact — dropped if unlucky, then retransmitted, never trimmed.
  Bench b(QueuePolicy::kTrim, 10.0, 15);
  IncastPattern::Config cfg;
  cfg.packets_per_sender = 64;
  cfg.trim_size = 0;  // every frame untrimmable => drops + retransmits
  cfg.transport = TransportConfig::trim_aware();
  IncastPattern incast(b.sim, b.topo.left_hosts, b.topo.right_hosts[0], cfg);
  b.sim.run();
  for (const auto& st : incast.flow_stats()) {
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.acked_full, 64u);
    EXPECT_EQ(st.acked_trimmed, 0u);
  }
}

}  // namespace
}  // namespace trimgrad::net
