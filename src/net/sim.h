// Discrete-event simulation kernel.
//
// Single-threaded event queue with a monotone simulated clock, plus the node
// registry and link wiring for the fabric. This is the ns-3 substitute the
// reproduction needs: the paper defers closed-loop trimming studies to
// "full-scale simulations" (§5.1); this kernel runs them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/queue.h"

namespace trimgrad::net {

class Node;
class FaultPlane;

/// Physical link parameters (one direction; connect() wires both).
struct LinkSpec {
  double bandwidth_bps = 100e9;  ///< 100 Gbps default, per the paper's testbed
  SimTime latency_s = 1e-6;      ///< propagation delay

  /// Serialization delay for a frame of `bytes`.
  SimTime tx_time(std::size_t bytes) const noexcept {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// An egress port: queue + attached unidirectional link to a peer node.
/// Owned by its node; drained by the simulator's event loop.
class Port {
 public:
  Port(LinkSpec link, QueueConfig qcfg, NodeId peer)
      : link_(link), queue_(qcfg), peer_(peer) {}

  const LinkSpec& link() const noexcept { return link_; }
  NodeId peer() const noexcept { return peer_; }
  EgressQueue& queue() noexcept { return queue_; }
  const EgressQueue& queue() const noexcept { return queue_; }

 private:
  friend class Simulator;
  LinkSpec link_;
  EgressQueue queue_;
  NodeId peer_;
  bool transmitting_ = false;
};

/// The simulation engine: event queue, clock, node registry, link wiring.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule(SimTime delay, std::function<void()> fn);

  /// Run until the event queue drains. Returns the final clock value.
  SimTime run();

  /// Run until the clock reaches `t` (events at > t stay queued).
  void run_until(SimTime t);

  /// Construct a node of type T (T : public Node) and register it.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(*this, next_node_id(),
                                    std::forward<Args>(args)...);
    T& ref = *node;
    register_node(std::move(node));
    return ref;
  }

  Node& node(NodeId id);
  std::size_t node_count() const noexcept;

  /// Wire a bidirectional link between two nodes: adds one egress port on
  /// each side. Returns the port indices {on_a, on_b}.
  std::pair<std::size_t, std::size_t> connect(NodeId a, NodeId b,
                                              LinkSpec link,
                                              QueueConfig qcfg_a,
                                              QueueConfig qcfg_b);
  std::pair<std::size_t, std::size_t> connect(NodeId a, NodeId b,
                                              LinkSpec link,
                                              QueueConfig qcfg) {
    return connect(a, b, link, qcfg, qcfg);
  }

  /// Hand a frame to a node's egress port: enqueue and kick the drain loop.
  /// Returns false if the queue dropped the frame.
  bool transmit(NodeId from, std::size_t port_idx, Frame frame);

  /// Fresh frame id for tracing.
  std::uint64_t next_frame_id() noexcept { return ++frame_counter_; }

  /// Total frames delivered to nodes (for conservation checks in tests).
  std::uint64_t delivered_frames() const noexcept { return delivered_; }

  /// Attach a fault plane (net/fault_plane.h); nullptr detaches. The plane
  /// must outlive every run while attached. Consulted at transmit (origin
  /// link/node up?), dequeue (degradation, corruption, dead-link flush),
  /// and delivery (destination node up?).
  void set_fault_plane(FaultPlane* plane) noexcept { fault_plane_ = plane; }
  FaultPlane* fault_plane() const noexcept { return fault_plane_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t order;  ///< FIFO tiebreaker for equal times
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  NodeId next_node_id() noexcept {
    return static_cast<NodeId>(nodes_.size());
  }
  void register_node(std::unique_ptr<Node> node);
  void drain_port(NodeId node_id, std::size_t port_idx);

  SimTime now_ = 0.0;
  FaultPlane* fault_plane_ = nullptr;
  std::uint64_t event_counter_ = 0;
  std::uint64_t frame_counter_ = 0;
  std::uint64_t delivered_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Base class for everything attached to the fabric.
class Node {
 public:
  Node(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A frame has fully arrived at this node.
  virtual void on_frame(Frame frame) = 0;

  NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Simulator& sim() noexcept { return sim_; }

  std::size_t port_count() const noexcept { return ports_.size(); }
  Port& port(std::size_t i) { return *ports_.at(i); }
  const Port& port(std::size_t i) const { return *ports_.at(i); }

  /// Index of the port whose link points at `peer`, or port_count() if none.
  std::size_t port_to(NodeId peer) const noexcept;

 protected:
  Simulator& sim_;

 private:
  friend class Simulator;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace trimgrad::net
