file(REMOVE_RECURSE
  "CMakeFiles/test_core_misc.dir/core/misc_test.cpp.o"
  "CMakeFiles/test_core_misc.dir/core/misc_test.cpp.o.d"
  "test_core_misc"
  "test_core_misc.pdb"
  "test_core_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
