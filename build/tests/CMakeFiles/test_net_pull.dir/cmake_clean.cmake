file(REMOVE_RECURSE
  "CMakeFiles/test_net_pull.dir/net/pull_transport_test.cpp.o"
  "CMakeFiles/test_net_pull.dir/net/pull_transport_test.cpp.o.d"
  "test_net_pull"
  "test_net_pull.pdb"
  "test_net_pull[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
