#include "ml/tensor.h"

#include <algorithm>

#include "core/threadpool.h"

namespace trimgrad::ml {

namespace {

/// Cache block over the reduction dimension: a kKc×n slab of B stays hot
/// across every output row of a chunk. Blocking only regroups the kk loop —
/// for any output element the accumulation still runs in ascending kk
/// order, so results are bit-identical to the unblocked kernels for every
/// thread count (see threadpool.h's determinism contract).
constexpr std::size_t kKc = 128;

/// Minimum multiply-adds per parallel chunk; below this the dispatch
/// overhead dominates and parallel_for degrades to an inline call. Retuned
/// upward after the FunctionRef/latch pool rework: dispatch itself got
/// cheaper, but splitting a sub-128k-flop GEMM still loses more to cold B
/// slabs per chunk than it gains in parallelism.
constexpr std::size_t kGrainFlops = std::size_t{1} << 17;

std::size_t row_grain(std::size_t flops_per_row) noexcept {
  return std::max<std::size_t>(1, kGrainFlops / std::max<std::size_t>(1, flops_per_row));
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) noexcept {
  // Row-parallel: each chunk owns a contiguous block of C rows. Within a
  // chunk, i-k-j order with k blocking: unit-stride inner loop over both B
  // and C, B slab reused across the chunk's rows.
  core::ThreadPool::global().parallel_for(
      m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
          const std::size_t k1 = std::min(k, k0 + kKc);
          for (std::size_t i = i0; i < i1; ++i) {
            float* crow = c + i * n;
            for (std::size_t kk = k0; kk < k1; ++kk) {
              const float av = a[i * k + kk];
              if (av == 0.0f) continue;
              const float* brow = b + kk * n;
              for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      });
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t k,
               std::size_t m, std::size_t n) noexcept {
  // C(m×n) += Aᵀ·B with A stored k×m. Parallel over C rows: each chunk
  // reads its own column strip of A, so no two chunks touch the same C row.
  core::ThreadPool::global().parallel_for(
      m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
          const std::size_t k1 = std::min(k, k0 + kKc);
          for (std::size_t i = i0; i < i1; ++i) {
            float* crow = c + i * n;
            for (std::size_t kk = k0; kk < k1; ++kk) {
              const float av = a[kk * m + i];
              if (av == 0.0f) continue;
              const float* brow = b + kk * n;
              for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      });
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) noexcept {
  // C(m×n) += A(m×k)·Bᵀ with B stored n×k: per-element dot products.
  // 2×2 register tile reuses each loaded A/B value twice; every element
  // keeps its own single accumulator running in ascending kk order.
  core::ThreadPool::global().parallel_for(
      m, row_grain(k * n), [&](std::size_t i0, std::size_t i1) {
        std::size_t i = i0;
        for (; i + 1 < i1; i += 2) {
          const float* ar0 = a + i * k;
          const float* ar1 = ar0 + k;
          float* cr0 = c + i * n;
          float* cr1 = cr0 + n;
          std::size_t j = 0;
          for (; j + 1 < n; j += 2) {
            const float* br0 = b + j * k;
            const float* br1 = br0 + k;
            float s00 = 0.0f, s01 = 0.0f, s10 = 0.0f, s11 = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
              const float a0 = ar0[kk];
              const float a1 = ar1[kk];
              const float b0 = br0[kk];
              const float b1 = br1[kk];
              s00 += a0 * b0;
              s01 += a0 * b1;
              s10 += a1 * b0;
              s11 += a1 * b1;
            }
            cr0[j] += s00;
            cr0[j + 1] += s01;
            cr1[j] += s10;
            cr1[j + 1] += s11;
          }
          for (; j < n; ++j) {
            const float* brow = b + j * k;
            float s0 = 0.0f, s1 = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
              s0 += ar0[kk] * brow[kk];
              s1 += ar1[kk] * brow[kk];
            }
            cr0[j] += s0;
            cr1[j] += s1;
          }
        }
        for (; i < i1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] += acc;
          }
        }
      });
}

}  // namespace trimgrad::ml
