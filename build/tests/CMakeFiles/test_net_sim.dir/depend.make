# Empty dependencies file for test_net_sim.
# This may be replaced when dependencies are built.
