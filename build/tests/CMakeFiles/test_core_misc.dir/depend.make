# Empty dependencies file for test_core_misc.
# This may be replaced when dependencies are built.
