// Collective correctness over both channel types.
#include "collective/allreduce.h"

#include <gtest/gtest.h>

#include "collective/allgather.h"
#include "collective/inject_channel.h"
#include "collective/sim_channel.h"
#include "core/stats.h"
#include "net/topology.h"

namespace trimgrad::collective {
namespace {

std::vector<std::vector<float>> random_grads(int world, std::size_t n,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> out(world);
  core::Xoshiro256 rng(seed);
  for (auto& g : out) {
    g.resize(n);
    for (auto& x : g) x = static_cast<float>(rng.gaussian());
  }
  return out;
}

std::vector<float> exact_mean(const std::vector<std::vector<float>>& grads) {
  std::vector<float> mean(grads[0].size(), 0.0f);
  for (const auto& g : grads) {
    for (std::size_t i = 0; i < g.size(); ++i) mean[i] += g[i];
  }
  for (auto& x : mean) x /= static_cast<float>(grads.size());
  return mean;
}

core::CodecConfig codec_cfg(core::Scheme scheme) {
  core::CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = 1 << 10;
  return cfg;
}

InjectChannel clean_channel(int world) {
  InjectChannel::Config cfg;
  cfg.world = world;
  cfg.injector.trim_rate = 0.0;
  return InjectChannel(cfg);
}

class AlgoSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgoSweep, NoCongestionReproducesExactMean) {
  auto channel = clean_channel(4);
  AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT), GetParam());
  const auto grads = random_grads(4, 5000, 1);
  const auto mean = exact_mean(grads);
  const auto result = reducer.run(grads, 1, 1);
  ASSERT_EQ(result.outputs.size(), 4u);
  for (const auto& out : result.outputs) {
    EXPECT_LT(core::nmse(out, mean), 1e-9);
  }
}

TEST_P(AlgoSweep, TrimmedAllReduceErrorMatchesAlgorithmStructure) {
  // At 50 % trim the PS algorithm pays trim noise twice per gradient
  // (gather + broadcast); the ring re-encodes partial sums at every hop, so
  // noise *compounds* across 2(W−1) steps. Both bounds below are the
  // analytic estimates ±50 %; the ring's is higher by design — the reason
  // the paper's Fig. 1 aggregates at the receiver instead of hop-by-hop.
  InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = 0.5;
  InjectChannel channel(ccfg);
  AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT), GetParam());
  const auto grads = random_grads(4, 8192, 2);
  const auto mean = exact_mean(grads);
  const auto result = reducer.run(grads, 1, 1);
  EXPECT_GT(result.stats.trimmed_packets, 0u);
  const double bound = GetParam() == Algorithm::kPs ? 1.0 : 3.0;
  for (const auto& out : result.outputs) {
    EXPECT_LT(core::nmse(out, mean), bound) << to_string(GetParam());
    EXPECT_GT(core::nmse(out, mean), 0.0);
  }
}

TEST(AlgoComparison, RingCompoundsTrimNoiseBeyondPs) {
  const auto grads = random_grads(4, 8192, 22);
  const auto mean = exact_mean(grads);
  auto run_algo = [&](Algorithm algo) {
    InjectChannel::Config ccfg;
    ccfg.world = 4;
    ccfg.injector.trim_rate = 0.5;
    ccfg.injector.seed = 99;
    InjectChannel channel(ccfg);
    AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT), algo);
    double worst = 0;
    for (const auto& out : reducer.run(grads, 1, 1).outputs) {
      worst = std::max(worst, core::nmse(out, mean));
    }
    return worst;
  };
  EXPECT_GT(run_algo(Algorithm::kRing), run_algo(Algorithm::kPs));
}

TEST_P(AlgoSweep, StatsAccountForTraffic) {
  auto channel = clean_channel(4);
  AllReducer reducer(channel, codec_cfg(core::Scheme::kSign), GetParam());
  const auto grads = random_grads(4, 4000, 3);
  const auto result = reducer.run(grads, 1, 1);
  EXPECT_GT(result.stats.wire_bytes, 4000u * 4 / 2);  // nontrivial traffic
  EXPECT_GT(result.stats.comm_time, 0.0);
  EXPECT_GT(result.stats.encode_seconds, 0.0);
  EXPECT_GT(result.stats.decode_seconds, 0.0);
  EXPECT_GT(result.stats.coord_stats.full_coords, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algos, AlgoSweep,
                         ::testing::Values(Algorithm::kPs, Algorithm::kRing),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return to_string(info.param);
                         });

TEST(InjectChannelTest, ReliableModeDeliversEverythingButPaysTime) {
  InjectChannel::Config ccfg;
  ccfg.world = 2;
  ccfg.injector.trim_rate = 0.3;
  ccfg.injector.drop_rate = 0.1;
  ccfg.reliable = true;
  InjectChannel channel(ccfg);
  AllReducer reducer(channel, codec_cfg(core::Scheme::kBaseline));
  const auto grads = random_grads(2, 8192, 4);
  const auto mean = exact_mean(grads);
  const auto result = reducer.run(grads, 1, 1);
  // Baseline reliable: exact mean despite coins...
  for (const auto& out : result.outputs) EXPECT_LT(core::nmse(out, mean), 1e-12);
  // ...but retransmissions cost time and bytes.
  EXPECT_GT(result.stats.retransmits, 0u);
}

TEST(InjectChannelTest, ReliableSlowerThanTrimmableUnderSameCongestion) {
  const auto grads = random_grads(2, 65536, 5);
  auto run = [&](bool reliable, core::Scheme scheme) {
    InjectChannel::Config ccfg;
    ccfg.world = 2;
    ccfg.injector.trim_rate = 0.2;
    ccfg.injector.seed = 777;
    ccfg.reliable = reliable;
    ccfg.time.drop_penalty = 1e-3;
    InjectChannel channel(ccfg);
    AllReducer reducer(channel, codec_cfg(scheme));
    return reducer.run(grads, 1, 1).stats.comm_time;
  };
  const double reliable_time = run(true, core::Scheme::kBaseline);
  const double trim_time = run(false, core::Scheme::kRHT);
  EXPECT_GT(reliable_time, trim_time);
}

TEST(InjectChannelTest, EpochFeedsTranscriptRecording) {
  InjectChannel::Config ccfg;
  ccfg.world = 2;
  ccfg.injector.trim_rate = 0.5;
  InjectChannel channel(ccfg);
  channel.enable_recording();
  channel.set_epoch(7);
  AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT));
  reducer.run(random_grads(2, 4096, 6), 1, 7);
  EXPECT_GT(channel.recorded().size(), 0u);
  for (const auto& e : channel.recorded().events()) EXPECT_EQ(e.epoch, 7u);
}

TEST(SimChannelTest, AllReduceOverRealFabric) {
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  std::vector<net::NodeId> ranks = {topo.left_hosts[0], topo.left_hosts[1],
                                    topo.right_hosts[0], topo.right_hosts[1]};
  SimChannel channel(sim, ranks, SimChannel::Config{});
  AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT));
  const auto grads = random_grads(4, 20000, 7);
  const auto mean = exact_mean(grads);
  const auto result = reducer.run(grads, 1, 1);
  EXPECT_GT(result.stats.comm_time, 0.0);
  for (const auto& out : result.outputs) {
    EXPECT_LT(core::nmse(out, mean), 0.6);
  }
}

TEST(SimChannelTest, CongestedFabricTrimsEmergently) {
  // Shallow queues + concurrent fan-in to rank 0: trimming must *emerge*
  // from queue overflow rather than a coin flip.
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};  // tight bottleneck
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 10 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 1, 3, fcfg);
  std::vector<net::NodeId> ranks = {topo.left_hosts[0], topo.right_hosts[0],
                                    topo.right_hosts[1], topo.right_hosts[2]};
  SimChannel channel(sim, ranks, SimChannel::Config{});
  AllReducer reducer(channel, codec_cfg(core::Scheme::kRHT));
  const auto result = reducer.run(random_grads(4, 60000, 8), 1, 1);
  EXPECT_GT(result.stats.trimmed_packets, 0u);
  // Trimmed data is never retransmitted; only rare header-queue overflows
  // or untrimmable metadata drops may be (a tiny fraction of the traffic).
  EXPECT_LT(result.stats.retransmits, result.stats.trimmed_packets / 10);
}

TEST(AllGatherTest, CleanGatherAssemblesAllShards) {
  auto channel = clean_channel(3);
  AllGatherer gatherer(channel, codec_cfg(core::Scheme::kRHT));
  std::vector<std::vector<float>> shards = {
      {1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
  const auto result = gatherer.run(shards, 1, 1);
  const std::vector<float> expected = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_EQ(result.outputs.size(), 3u);
  for (const auto& out : result.outputs) {
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_NEAR(out[i], expected[i], 1e-4) << i;
  }
}

TEST(AllGatherTest, TrimmedGatherKeepsWeightsUsable) {
  InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = 0.3;
  InjectChannel channel(ccfg);
  AllGatherer gatherer(channel, codec_cfg(core::Scheme::kRHT));
  core::Xoshiro256 rng(9);
  std::vector<std::vector<float>> shards(4, std::vector<float>(4096));
  for (auto& s : shards)
    for (auto& x : s) x = static_cast<float>(rng.gaussian());
  const auto result = gatherer.run(shards, 2, 3);
  EXPECT_GT(result.trimmed_packets, 0u);
  std::vector<float> full;
  for (const auto& s : shards) full.insert(full.end(), s.begin(), s.end());
  for (const auto& out : result.outputs) {
    EXPECT_LT(core::nmse(out, full), 0.6);
  }
}

}  // namespace
}  // namespace trimgrad::collective
