// Shared machinery for the Figure 3/4/5 reproductions: run the DDP trainer
// for one (scheme, trim-rate) cell and return its epoch records.
//
// Scale knob: TRIMGRAD_BENCH_SCALE (default 1). Scale 2 doubles epochs and
// dataset size for smoother curves at the cost of runtime.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "collective/inject_channel.h"
#include "core/codec_registry.h"
#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/trace.h"
#include "ddp/experiment.h"
#include "ddp/trainer.h"

namespace trimgrad::bench {

inline int bench_scale() {
  const char* env = std::getenv("TRIMGRAD_BENCH_SCALE");
  const int v = env ? std::atoi(env) : 1;
  return v >= 1 ? v : 1;
}

struct SweepConfig {
  std::size_t classes = 20;
  std::size_t image = 16;          ///< height = width
  std::size_t train_per_class = 30;
  std::size_t test_per_class = 25;
  std::size_t epochs = 16;
  std::size_t global_batch = 60;
  int world = 4;
  float lr = 0.03f;
  /// Pixel-noise level: high enough that the task has a real noise floor —
  /// gradient corruption must cost accuracy for Fig. 3/4 to be measurable.
  float noise = 1.2f;
  /// VGG width: a *conv* net matters here — the paper's sign-magnitude
  /// divergence comes from one message-wide sigma hitting layers whose
  /// gradient scales differ by orders of magnitude, which an MLP hides.
  std::size_t vgg_width = 6;
  /// Reliable-baseline time model: per-drop recovery penalty. 100 us ~ a
  /// fast-retransmit RTT at datacenter scale; the §4.4 5-10x blowup at
  /// 1-2 % drops emerges from it at paper-scale message sizes.
  double drop_penalty = 100e-6;
  std::uint64_t data_seed = 1234;
};

inline SweepConfig scaled_sweep() {
  SweepConfig cfg;
  const int s = bench_scale();
  cfg.epochs *= static_cast<std::size_t>(s);
  cfg.train_per_class *= static_cast<std::size_t>(s);
  return cfg;
}

struct CellResult {
  core::Scheme scheme;
  double trim_rate;
  std::vector<ddp::EpochRecord> records;
  /// Global-registry snapshot covering exactly this cell's run, serialized
  /// with core::metrics_to_json (the registry is reset at cell start).
  std::string metrics_json;
  /// Spec-derived cell name ("transport=trim,scheme=rht,trim=0.25") —
  /// stable under grid reordering, unlike positional indices.
  std::string label;
};

/// The ExperimentSpec for one (scheme, rate) cell of the paper grid: the
/// baseline scheme rides the reliable transport (drops/trims retransmitted
/// and charged as time); the encodings ride the lossy trim transport.
inline ddp::ExperimentSpec sweep_spec(const SweepConfig& cfg,
                                      core::Scheme scheme, double trim_rate) {
  ddp::ExperimentSpec spec;
  spec.transport =
      scheme == core::Scheme::kBaseline ? "reliable" : "trim";
  spec.scheme = core::CodecRegistry::global().name_of(scheme);
  spec.topology = "inject";
  spec.trim = trim_rate;
  spec.world = cfg.world;
  spec.epochs = cfg.epochs;
  spec.batch = cfg.global_batch;
  spec.lr = cfg.lr;
  spec.seed = 2024 + static_cast<std::uint64_t>(trim_rate * 1e6);
  return spec;
}

/// Train one cell described by `spec` (dataset/model shape from `cfg`).
inline CellResult run_cell(const SweepConfig& cfg,
                           const ddp::ExperimentSpec& spec) {
  // Scope the registry and trace to this cell so its snapshot measures one
  // (scheme, rate) run, not the whole sweep.
  core::MetricsRegistry::global().reset_values();
  core::TraceLog::global().clear();

  ml::SynthCifarConfig dcfg;
  dcfg.classes = cfg.classes;
  dcfg.height = dcfg.width = cfg.image;
  dcfg.train_per_class = cfg.train_per_class;
  dcfg.test_per_class = cfg.test_per_class;
  dcfg.noise = cfg.noise;
  dcfg.seed = cfg.data_seed;
  ml::SynthCifar data(dcfg);

  collective::InjectChannel::Config ccfg = spec.inject_channel_config();
  ccfg.time.drop_penalty = cfg.drop_penalty;
  collective::InjectChannel channel(ccfg);

  ddp::TrainerConfig tcfg = spec.trainer_config();
  tcfg.codec.rht_row_len = std::size_t{1} << 12;
  tcfg.eval_every = 1;

  ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg, &cfg] {
    ml::ModelConfig mcfg;
    mcfg.classes = dcfg.classes;
    mcfg.height = dcfg.height;
    mcfg.width = dcfg.width;
    return ml::make_mini_vgg(mcfg, cfg.vgg_width);
  });
  CellResult result{tcfg.codec.scheme, spec.trim, trainer.train(), {},
                    spec.label()};
  result.metrics_json = core::metrics_to_json(core::MetricsRegistry::global());
  return result;
}

/// Enum-flavored convenience wrapper over the spec-driven run_cell.
inline CellResult run_cell(const SweepConfig& cfg, core::Scheme scheme,
                           double trim_rate) {
  return run_cell(cfg, sweep_spec(cfg, scheme, trim_rate));
}

inline const std::vector<core::Scheme>& all_schemes() {
  static const std::vector<core::Scheme> schemes = {
      core::Scheme::kBaseline, core::Scheme::kSign, core::Scheme::kSQ,
      core::Scheme::kSD, core::Scheme::kRHT};
  return schemes;
}

inline const std::vector<double>& paper_trim_rates() {
  // §4.2: "drop/trim packet percentages ranging from 0.1% to 50%".
  static const std::vector<double> rates = {0.001, 0.01, 0.02,
                                            0.1,   0.25, 0.5};
  return rates;
}

}  // namespace trimgrad::bench
