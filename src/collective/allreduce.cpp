#include "collective/allreduce.h"

#include <cassert>

namespace trimgrad::collective {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void accumulate(AllReduceStats& st, const Delivery& d) {
  st.wire_bytes += d.wire_bytes;
  st.packets += d.packets.size() + d.dropped_packets;
  st.trimmed_packets += d.trimmed_packets;
  st.dropped_packets += d.dropped_packets;
  st.retransmits += d.retransmits;
}

void accumulate(core::DecodeStats& agg, const core::DecodeStats& one) {
  agg.total_coords += one.total_coords;
  agg.full_coords += one.full_coords;
  agg.trimmed_coords += one.trimmed_coords;
  agg.lost_coords += one.lost_coords;
}

/// Fold a round's failed flows into the degradation stats; returns the
/// failure count so callers can adjust their reduction.
std::size_t note_failed(AllReduceStats& st, const std::vector<Delivery>& ds) {
  std::size_t failed = 0;
  for (const auto& d : ds) failed += d.flow_failed ? 1 : 0;
  st.missing_ranks += failed;
  if (failed > 0) ++st.degraded_rounds;
  return failed;
}

}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kPs: return "ps";
    case Algorithm::kRing: return "ring";
  }
  return "?";
}

AllReducer::AllReducer(Channel& channel, core::CodecConfig codec,
                       Algorithm algo)
    : channel_(channel),
      codec_cfg_(codec),
      algo_(algo),
      encoder_(codec),
      decoder_(codec) {}

core::EncodedMessage AllReducer::encode_timed(std::span<const float> grad,
                                              std::uint32_t msg_id,
                                              std::uint64_t epoch,
                                              AllReduceStats& st) {
  const auto t0 = Clock::now();
  auto msg = encoder_.encode(grad, msg_id, epoch);
  st.encode_seconds += seconds_since(t0);
  return msg;
}

core::DecodeResult AllReducer::decode_timed(const Delivery& d,
                                            AllReduceStats& st) {
  const auto t0 = Clock::now();
  auto out = decoder_.decode(d.packets, d.meta);
  st.decode_seconds += seconds_since(t0);
  accumulate(st.coord_stats, out.stats);
  return out;
}

AllReduceResult AllReducer::run(const std::vector<std::vector<float>>& grads,
                                std::uint32_t msg_id, std::uint64_t epoch) {
  assert(!grads.empty());
  assert(static_cast<int>(grads.size()) == channel_.world_size());
  for (const auto& g : grads) {
    assert(g.size() == grads[0].size());
    (void)g;
  }
  return algo_ == Algorithm::kPs ? run_ps(grads, msg_id, epoch)
                                 : run_ring(grads, msg_id, epoch);
}

AllReduceResult AllReducer::run_ps(const std::vector<std::vector<float>>& grads,
                                   std::uint32_t msg_id, std::uint64_t epoch) {
  const int world = channel_.world_size();
  const std::size_t n = grads[0].size();
  AllReduceResult result;
  auto& st = result.stats;

  // Phase 1: workers 1..W-1 send to the server (rank 0). Message ids are
  // unique per (collective, sender) so shared-randomness streams differ.
  std::vector<TransferRequest> gather;
  for (int r = 1; r < world; ++r) {
    TransferRequest req;
    req.src = r;
    req.dst = 0;
    req.message = encode_timed(grads[static_cast<std::size_t>(r)],
                               msg_id * 64 + static_cast<std::uint32_t>(r),
                               epoch, st);
    gather.push_back(std::move(req));
  }
  auto arrivals = channel_.transfer(std::move(gather));
  const net::SimTime gather_time = batch_time(arrivals);
  note_failed(st, arrivals);

  // Server average: its own gradient plus each decoded arrival. A failed
  // flow contributes nothing; the divisor is the contributor count, so the
  // mean stays unbiased over whoever actually arrived.
  std::vector<double> acc(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) acc[i] = grads[0][i];
  int contributors = 1;  // the server's own gradient
  for (const auto& d : arrivals) {
    accumulate(st, d);
    if (d.flow_failed) continue;
    const auto dec = decode_timed(d, st);
    for (std::size_t i = 0; i < n; ++i) acc[i] += dec.values[i];
    ++contributors;
  }
  std::vector<float> mean(n);
  for (std::size_t i = 0; i < n; ++i)
    mean[i] = static_cast<float>(acc[i] / contributors);

  // Phase 2: broadcast the mean back.
  std::vector<TransferRequest> scatter;
  for (int r = 1; r < world; ++r) {
    TransferRequest req;
    req.src = 0;
    req.dst = r;
    req.message = encode_timed(
        mean, msg_id * 64 + 32 + static_cast<std::uint32_t>(r), epoch, st);
    scatter.push_back(std::move(req));
  }
  auto returns = channel_.transfer(std::move(scatter));
  const net::SimTime scatter_time = batch_time(returns);
  note_failed(st, returns);

  result.outputs.assign(static_cast<std::size_t>(world), {});
  result.outputs[0] = mean;
  for (const auto& d : returns) {
    accumulate(st, d);
    if (d.flow_failed) {
      // The broadcast never reached this rank: fall back to its local
      // gradient so the step still makes (rank-local) progress.
      result.outputs[static_cast<std::size_t>(d.dst)] =
          grads[static_cast<std::size_t>(d.dst)];
      continue;
    }
    result.outputs[static_cast<std::size_t>(d.dst)] =
        decode_timed(d, st).values;
  }
  st.comm_time = gather_time + scatter_time;
  return result;
}

AllReduceResult AllReducer::run_ring(
    const std::vector<std::vector<float>>& grads, std::uint32_t msg_id,
    std::uint64_t epoch) {
  const int world = channel_.world_size();
  const std::size_t n = grads[0].size();
  const std::size_t w = static_cast<std::size_t>(world);
  AllReduceResult result;
  auto& st = result.stats;

  // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
  std::vector<std::size_t> bounds(w + 1);
  for (std::size_t c = 0; c <= w; ++c) bounds[c] = n * c / w;
  auto chunk_of = [&](const std::vector<float>& v, std::size_t c) {
    return std::vector<float>(v.begin() + bounds[c], v.begin() + bounds[c + 1]);
  };

  // working[r] = rank r's current accumulation buffer.
  std::vector<std::vector<float>> working = grads;
  std::uint32_t step_id = msg_id * 64;

  // Reduce-scatter: W-1 steps. In step s, rank r sends chunk (r - s) mod W
  // to rank (r+1) mod W, which adds it into its copy of that chunk.
  for (int s = 0; s < world - 1; ++s) {
    std::vector<TransferRequest> batch;
    for (int r = 0; r < world; ++r) {
      const std::size_t c =
          static_cast<std::size_t>(((r - s) % world + world) % world);
      TransferRequest req;
      req.src = r;
      req.dst = (r + 1) % world;
      req.message = encode_timed(
          chunk_of(working[static_cast<std::size_t>(r)], c),
          step_id + static_cast<std::uint32_t>(r), epoch, st);
      batch.push_back(std::move(req));
    }
    step_id += static_cast<std::uint32_t>(world);
    auto deliveries = channel_.transfer(std::move(batch));
    st.comm_time += batch_time(deliveries);
    note_failed(st, deliveries);
    for (const auto& d : deliveries) {
      accumulate(st, d);
      if (d.flow_failed) continue;  // chunk keeps its partial sum
      const auto dec = decode_timed(d, st);
      const std::size_t c =
          static_cast<std::size_t>(((d.src - s) % world + world) % world);
      auto& buf = working[static_cast<std::size_t>(d.dst)];
      for (std::size_t i = 0; i < dec.values.size(); ++i)
        buf[bounds[c] + i] += dec.values[i];
    }
  }

  // All-gather: W-1 steps. In step s, rank r sends its *final* chunk
  // (r + 1 - s) mod W onward; receivers overwrite.
  for (int s = 0; s < world - 1; ++s) {
    std::vector<TransferRequest> batch;
    for (int r = 0; r < world; ++r) {
      const std::size_t c =
          static_cast<std::size_t>(((r + 1 - s) % world + world) % world);
      TransferRequest req;
      req.src = r;
      req.dst = (r + 1) % world;
      req.message = encode_timed(
          chunk_of(working[static_cast<std::size_t>(r)], c),
          step_id + static_cast<std::uint32_t>(r), epoch, st);
      batch.push_back(std::move(req));
    }
    step_id += static_cast<std::uint32_t>(world);
    auto deliveries = channel_.transfer(std::move(batch));
    st.comm_time += batch_time(deliveries);
    note_failed(st, deliveries);
    for (const auto& d : deliveries) {
      accumulate(st, d);
      if (d.flow_failed) continue;  // keep the stale (local) chunk value
      const auto dec = decode_timed(d, st);
      const std::size_t c =
          static_cast<std::size_t>(((d.src + 1 - s) % world + world) % world);
      auto& buf = working[static_cast<std::size_t>(d.dst)];
      for (std::size_t i = 0; i < dec.values.size(); ++i)
        buf[bounds[c] + i] = dec.values[i];
    }
  }

  // Normalize the sums into means.
  const float inv = 1.0f / static_cast<float>(world);
  for (auto& buf : working)
    for (auto& x : buf) x *= inv;
  result.outputs = std::move(working);
  return result;
}

}  // namespace trimgrad::collective
