// FaultScript: byte-exact serialization round-trips, parse diagnostics, the
// canonical sort, and the seeded generator's determinism.
#include "net/fault_script.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace trimgrad::net {
namespace {

FaultScript sample_script() {
  FaultScript s;
  s.plane.seed = 42;
  s.plane.corrupt_rate = 0.01;
  s.straggler_factor = 3.0;
  s.plane.corrupt_overrides.push_back({7, 2, 0.1});
  LinkFault l;
  l.node = 5;
  l.port = 1;
  l.start = 50e-6;
  l.duration = 20e-6;
  l.bandwidth_scale = 0.0;
  l.latency_scale = 1.0;
  l.period = 500e-6;
  l.repeats = 4;
  s.plane.link_faults.push_back(l);
  LinkFault brown = l;
  brown.node = 3;
  brown.bandwidth_scale = 1.0 / 3.0;  // a double that needs 17 digits
  brown.latency_scale = 2.5;
  s.plane.link_faults.push_back(brown);
  NodeFault n;
  n.node = 9;
  n.start = 1e-3;
  n.duration = 2e-4;
  n.repeats = 1;
  s.plane.node_faults.push_back(n);
  return s;
}

TEST(FaultScript, SerializeParseRoundTripsExactly) {
  const FaultScript s = sample_script();
  const std::string text = s.serialize();
  const FaultScript parsed = FaultScript::parse(text);
  EXPECT_EQ(parsed, s);
  EXPECT_EQ(parsed.serialize(), text)
      << "serialize(parse(s)) must be byte-identical for canonical output";
}

TEST(FaultScript, StreamSaveLoadRoundTrips) {
  const FaultScript s = sample_script();
  std::stringstream ss;
  s.save(ss);
  EXPECT_EQ(FaultScript::load(ss), s);
}

TEST(FaultScript, ParseToleratesCommentsAndBlankLines) {
  const FaultScript s = FaultScript::parse(
      "# a chaos repro\n"
      "faultscript v1\n"
      "\n"
      "seed 9\n"
      "# straggler next\n"
      "straggler 2\n");
  EXPECT_EQ(s.plane.seed, 9u);
  EXPECT_DOUBLE_EQ(s.straggler_factor, 2.0);
}

TEST(FaultScript, ParseRejectsMalformedInput) {
  EXPECT_THROW(FaultScript::parse("seed 1\n"), std::invalid_argument)
      << "header is mandatory";
  EXPECT_THROW(FaultScript::parse("faultscript v2\nseed 1\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultScript::parse("faultscript v1\nwobble 3\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultScript::parse("faultscript v1\nseed banana\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultScript::parse("faultscript v1\nlink 1 2 3\n"),
               std::invalid_argument)
      << "wrong field count";
  EXPECT_THROW(FaultScript::parse("faultscript v1\ncorrupt_rate 0.5x\n"),
               std::invalid_argument)
      << "trailing junk after a number";
}

TEST(FaultScript, ParseErrorNamesTheOffendingLine) {
  try {
    FaultScript::parse("faultscript v1\nnode 1 0.1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("node 1 0.1"), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(FaultScript, LoadFileThrowsOnMissingPath) {
  EXPECT_THROW(FaultScript::load_file("/nonexistent/chaos.txt"),
               std::runtime_error);
}

TEST(FaultScript, EventCountCountsEveryFaultSource) {
  FaultScript s;
  EXPECT_EQ(s.event_count(), 0u);
  s.plane.corrupt_rate = 0.01;
  EXPECT_EQ(s.event_count(), 1u);
  s.straggler_factor = 2.0;
  EXPECT_EQ(s.event_count(), 2u);
  s.plane.link_faults.emplace_back();
  s.plane.node_faults.emplace_back();
  s.plane.corrupt_overrides.emplace_back();
  EXPECT_EQ(s.event_count(), 5u);
}

TEST(FaultScript, SortedIsInsertionOrderInvariant) {
  FaultScript a = sample_script();
  FaultScript b = sample_script();
  std::swap(b.plane.link_faults[0], b.plane.link_faults[1]);
  EXPECT_NE(a, b) << "serialization order differs before normalization";
  EXPECT_EQ(a.sorted(), b.sorted());
  EXPECT_EQ(a.sorted().serialize(), b.sorted().serialize());
}

TEST(FaultScript, GeneratorIsDeterministicInItsConfig) {
  ScriptGenConfig cfg;
  cfg.seed = 123;
  cfg.intensity = 0.8;
  for (NodeId n = 0; n < 6; ++n) {
    cfg.links.push_back({n, 0});
    cfg.links.push_back({n, 1});
    cfg.nodes.push_back(n);
  }
  const FaultScript a = generate_fault_script(cfg);
  const FaultScript b = generate_fault_script(cfg);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.event_count(), 0u);

  cfg.seed = 124;
  const FaultScript c = generate_fault_script(cfg);
  EXPECT_NE(a, c) << "different seeds must decorrelate the draw";

  // Generated scripts are valid serialized artifacts.
  EXPECT_EQ(FaultScript::parse(a.serialize()), a);
}

TEST(FaultScript, ZeroIntensityYieldsQuietScript) {
  ScriptGenConfig cfg;
  cfg.seed = 5;
  cfg.intensity = 0.0;
  cfg.links.push_back({1, 0});
  cfg.nodes.push_back(1);
  const FaultScript s = generate_fault_script(cfg);
  EXPECT_EQ(s.event_count(), 0u);
  EXPECT_EQ(s.plane.seed, 5u);
}

TEST(FaultScript, GeneratedFaultsRespectCandidatesAndHorizon) {
  ScriptGenConfig cfg;
  cfg.seed = 77;
  cfg.intensity = 1.0;
  cfg.horizon = 5e-3;
  cfg.links = {{10, 0}, {11, 2}};
  cfg.nodes = {10, 11};
  const FaultScript s = generate_fault_script(cfg);
  for (const auto& l : s.plane.link_faults) {
    EXPECT_TRUE((l.node == 10 && l.port == 0) || (l.node == 11 && l.port == 2))
        << "link fault targets a non-candidate port";
    EXPECT_GE(l.start, 0.0);
    EXPECT_LT(l.start, cfg.horizon);
    EXPECT_GT(l.duration, 0.0);
  }
  for (const auto& n : s.plane.node_faults) {
    EXPECT_TRUE(n.node == 10 || n.node == 11);
    EXPECT_LT(n.start, cfg.horizon);
  }
}

}  // namespace
}  // namespace trimgrad::net
