// Deterministic pseudo-random number generation with *shared randomness*.
//
// The trimmable-gradient schemes in the paper (subtractive dithering, §3.1,
// and the Randomized Hadamard Transform, §3.2) require the sender and the
// receiver to derive identical random values without exchanging them. The
// paper does this by seeding both sides with a combination of the training
// epoch number and the collective-communication message id. `SharedRng`
// reproduces that contract: it is a small counter-based generator keyed by
// (seed, epoch, message id, row id) so any party holding the same key tuple
// generates the same stream, and streams for different tuples are
// statistically independent.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace trimgrad::core {

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
/// Used both as a standalone mixer and to seed the larger generators.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two words (used to derive stream keys).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality general-purpose generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept {
    // Seed the full 256-bit state through SplitMix64, per Vigna's guidance.
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Random sign in {-1.0f, +1.0f} from one state bit.
  constexpr float random_sign() noexcept {
    return ((*this)() & 1u) != 0 ? 1.0f : -1.0f;
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire-style rejection-free multiply-shift; bias < 2^-64 * n,
    // negligible for every use in this library.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Standard normal via Marsaglia polar method (no cached spare: the
  /// gradient paths consume gaussians in bulk, so simplicity wins).
  double gaussian() noexcept;

  /// The full 256-bit state, exposed so checkpoints (ddp/checkpoint.h) can
  /// persist and restore the exact stream position ("PRNG cursor").
  constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  constexpr void set_state(
      const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Key identifying one shared-randomness stream. Sender and receiver build
/// identical keys from training-loop coordinates they both already know, so
/// no random bits ever cross the network (paper §3.1/§3.2).
struct StreamKey {
  std::uint64_t seed = 0;     ///< per-job base seed (torch.cuda.manual_seed analogue)
  std::uint64_t epoch = 0;    ///< training epoch / round number
  std::uint64_t message = 0;  ///< collective-communication message id
  std::uint64_t row = 0;      ///< RHT row index within the message

  friend constexpr bool operator==(const StreamKey&, const StreamKey&) = default;

  /// Collapse the tuple into a single 64-bit stream seed.
  constexpr std::uint64_t derive() const noexcept {
    return mix64(mix64(mix64(seed, epoch), message), row);
  }
};

/// Shared-randomness stream: a Xoshiro256 deterministically derived from a
/// StreamKey. Two parties constructing SharedRng from equal keys observe
/// identical sequences.
class SharedRng : public Xoshiro256 {
 public:
  explicit constexpr SharedRng(const StreamKey& key) noexcept
      : Xoshiro256(key.derive()) {}
};

}  // namespace trimgrad::core
