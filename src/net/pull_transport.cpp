#include "net/pull_transport.h"

#include <algorithm>
#include <cassert>

#include "core/metrics.h"
#include "net/fault_plane.h"

namespace trimgrad::net {
namespace {

struct PullTelemetry {
  core::Counter pulls_emitted;

  static const PullTelemetry& get() {
    static const PullTelemetry t{
        core::MetricsRegistry::global().counter("net.pull.pulls_emitted"),
    };
    return t;
  }
};

}  // namespace

// ------------------------------------------------------------ PullSender --

PullSender::PullSender(Host& host, NodeId dst, std::uint32_t flow_id,
                       PullConfig cfg)
    : host_(host), dst_(dst), flow_id_(flow_id), cfg_(cfg) {
  host_.bind(flow_id_, this);
}

PullSender::~PullSender() { host_.unbind(flow_id_); }

void PullSender::send_message(
    std::vector<SendItem> items,
    std::function<void(const FlowStats&)> on_complete) {
  assert(!active_);
  items_ = std::move(items);
  acked_.assign(items_.size(), 0);
  last_sent_.assign(items_.size(), -1.0);
  next_new_ = 0;
  acked_count_ = 0;
  rto_cur_ = cfg_.rto;
  active_ = true;
  stats_ = FlowStats{};
  stats_.start_time = host_.sim().now();
  stats_.packets = items_.size();
  on_complete_ = std::move(on_complete);
  ++msg_epoch_;
  if (items_.empty()) {
    complete();
    return;
  }
  if (cfg_.flow_deadline > 0) {
    host_.sim().schedule(cfg_.flow_deadline, [this, me = msg_epoch_] {
      if (active_ && me == msg_epoch_) fail();
    });
  }
  // First-RTT burst; everything after is pull-granted.
  const std::size_t burst = std::min(cfg_.initial_burst, items_.size());
  for (std::size_t i = 0; i < burst; ++i) send_next_new();
  arm_timer();
}

void PullSender::abort() {
  if (active_) fail();
}

void PullSender::send_next_new() {
  if (next_new_ >= items_.size()) return;
  send_packet(static_cast<std::uint32_t>(next_new_), false);
  ++next_new_;
}

void PullSender::send_packet(std::uint32_t seq, bool is_retransmit) {
  const SendItem& item = items_[seq];
  Frame f;
  f.id = host_.sim().next_frame_id();
  f.src = host_.id();
  f.dst = dst_;
  f.flow_id = flow_id_;
  f.seq = seq;
  f.kind = FrameKind::kData;
  f.size_bytes = item.size_bytes;
  f.trim_size_bytes = item.trim_size_bytes;
  f.cargo = item.cargo;
  last_sent_[seq] = host_.sim().now();
  ++stats_.frames_sent;
  stats_.bytes_sent += f.size_bytes;
  if (is_retransmit) ++stats_.retransmits;
  host_.send(std::move(f));
}

void PullSender::on_frame(Frame frame) {
  if (!active_) return;
  if (frame.kind == FrameKind::kPull) {
    send_next_new();
    return;
  }
  if (frame.kind == FrameKind::kNack) {
    // Mangled arrival (checksum mismatch at the receiver): retransmit,
    // paced at half an RTO like the window transports.
    const std::uint32_t seq = frame.ack_echo;
    if (seq < items_.size() && acked_[seq] == 0 &&
        host_.sim().now() - last_sent_[seq] >= cfg_.rto * 0.5) {
      if (budget_exhausted()) {
        fail();
        return;
      }
      send_packet(seq, true);
    }
    return;
  }
  if (frame.kind != FrameKind::kAck) return;
  const std::uint32_t seq = frame.ack_echo;
  if (seq < items_.size() && acked_[seq] == 0) {
    acked_[seq] = 1;
    ++acked_count_;
    if (frame.ack_was_trimmed) ++stats_.acked_trimmed;
    else ++stats_.acked_full;
    rto_cur_ = cfg_.rto;
    arm_timer();
  }
  if (acked_count_ == items_.size()) complete();
}

void PullSender::arm_timer() {
  const std::uint64_t epoch = ++timer_epoch_;
  host_.sim().schedule(rto_cur_, [this, epoch] { on_timeout(epoch); });
}

void PullSender::on_timeout(std::uint64_t epoch) {
  if (!active_ || epoch != timer_epoch_) return;
  if (budget_exhausted()) {
    // Not recovering (dead link, black hole): fail so the queue drains.
    fail();
    return;
  }
  for (std::size_t seq = 0; seq < next_new_; ++seq) {
    if (acked_[seq] == 0) {
      send_packet(static_cast<std::uint32_t>(seq), true);
      break;
    }
  }
  // If the pull stream stalled (lost pulls), nudge a new packet too.
  if (next_new_ < items_.size()) send_next_new();
  rto_cur_ = std::min(rto_cur_ * 2.0, cfg_.rto_cap);
  arm_timer();
}

void PullSender::complete() {
  active_ = false;
  ++timer_epoch_;
  stats_.completed = true;
  stats_.end_time = host_.sim().now();
  record_flow_telemetry(stats_);
  if (on_complete_) on_complete_(stats_);
}

void PullSender::fail() {
  active_ = false;
  ++timer_epoch_;
  stats_.completed = false;
  stats_.failed = true;
  stats_.end_time = host_.sim().now();
  record_flow_telemetry(stats_);
  if (on_complete_) on_complete_(stats_);
}

// ------------------------------------------------------------- PullPacer --

void PullPacer::request(std::uint32_t flow_id, NodeId sender) {
  queue_.emplace_back(flow_id, sender);
  if (!armed_) {
    armed_ = true;
    host_.sim().schedule(interval_, [this] { fire(); });
  }
}

void PullPacer::fire() {
  if (queue_.empty()) {
    armed_ = false;
    return;
  }
  const auto [flow_id, sender] = queue_.front();
  queue_.pop_front();
  Frame pull;
  pull.id = host_.sim().next_frame_id();
  pull.src = host_.id();
  pull.dst = sender;
  pull.flow_id = flow_id;
  pull.kind = FrameKind::kPull;
  pull.size_bytes = kControlFrameBytes;
  host_.send(std::move(pull));
  ++emitted_;
  PullTelemetry::get().pulls_emitted.add();
  host_.sim().schedule(interval_, [this] { fire(); });
}

// ---------------------------------------------------------- PullReceiver --

PullReceiver::PullReceiver(
    Host& host, NodeId peer, std::uint32_t flow_id,
    std::size_t expected_packets, PullConfig cfg,
    std::function<void(const Frame&)> on_data,
    std::function<void(const ReceiverStats&)> on_complete, PullPacer* pacer)
    : host_(host),
      peer_(peer),
      flow_id_(flow_id),
      cfg_(cfg),
      delivered_(expected_packets, 0),
      pacer_(pacer),
      on_data_(std::move(on_data)),
      on_complete_(std::move(on_complete)) {
  if (pacer_ == nullptr) {
    own_pacer_ = std::make_unique<PullPacer>(host_,
                                             cfg_.effective_pull_interval());
    pacer_ = own_pacer_.get();
  }
  stats_.expected = expected_packets;
  host_.bind(flow_id_, this);
}

PullReceiver::~PullReceiver() { host_.unbind(flow_id_); }

void PullReceiver::send_ack(const Frame& data, bool was_trimmed) {
  Frame ack;
  ack.id = host_.sim().next_frame_id();
  ack.src = host_.id();
  ack.dst = data.src;
  ack.flow_id = flow_id_;
  ack.kind = FrameKind::kAck;
  ack.size_bytes = kControlFrameBytes;
  ack.ack_echo = data.seq;
  ack.ack_was_trimmed = was_trimmed;
  host_.send(std::move(ack));
}

void PullReceiver::send_nack(const Frame& data) {
  Frame nack;
  nack.id = host_.sim().next_frame_id();
  nack.src = host_.id();
  nack.dst = data.src;
  nack.flow_id = flow_id_;
  nack.kind = FrameKind::kNack;
  nack.size_bytes = kControlFrameBytes;
  nack.ack_echo = data.seq;
  ++stats_.nacks_sent;
  host_.send(std::move(nack));
}

void PullReceiver::grant_pull() {
  // One pull per delivered packet, but never more pulls than packets the
  // sender still has to emit beyond its initial burst.
  if (granted_ + cfg_.initial_burst >= delivered_.size()) return;
  ++granted_;
  pacer_->request(flow_id_, peer_);
}

void PullReceiver::on_frame(Frame frame) {
  if (frame.kind != FrameKind::kData) return;
  if (frame.seq >= delivered_.size()) return;
  if (stats_.delivered_full + stats_.delivered_trimmed == 0) {
    stats_.first_frame_time = host_.sim().now();
  }
  if (delivered_[frame.seq] != 0) {
    ++stats_.duplicate_frames;
    send_ack(frame, delivered_[frame.seq] == 2);
    return;
  }
  if (frame.corrupted) {
    // Checksum mismatch (core/wire.* head_crc/tail_crc): mangled, not
    // trimmed — never deliver; NACK. A pull is still granted so the
    // retransmission has credit to ride on.
    ++stats_.corrupt_frames;
    count_corrupt_detected();
    send_nack(frame);
    return;
  }
  delivered_[frame.seq] = frame.trimmed ? 2 : 1;
  ++delivered_count_;
  if (frame.trimmed) ++stats_.delivered_trimmed;
  else ++stats_.delivered_full;
  if (on_data_) on_data_(frame);
  send_ack(frame, frame.trimmed);
  grant_pull();
  if (complete()) {
    stats_.complete_time = host_.sim().now();
    if (on_complete_) on_complete_(stats_);
  }
}

// -------------------------------------------------------------- PullFlow --

PullFlow::PullFlow(Simulator& sim, NodeId src, NodeId dst,
                   std::uint32_t flow_id, PullConfig cfg,
                   std::size_t n_packets,
                   std::function<void(const Frame&)> on_data,
                   PullPacer* pacer)
    : sim_(sim) {
  auto& src_host = static_cast<Host&>(sim.node(src));
  auto& dst_host = static_cast<Host&>(sim.node(dst));
  sender_ = std::make_unique<PullSender>(src_host, dst, flow_id, cfg);
  receiver_ = std::make_unique<PullReceiver>(
      dst_host, src, flow_id, n_packets, cfg, std::move(on_data),
      /*on_complete=*/nullptr, pacer);
}

void PullFlow::start_at(SimTime when, std::vector<SendItem> items,
                        std::function<void(const FlowStats&)> on_complete) {
  assert(when >= sim_.now());
  sim_.schedule(when - sim_.now(), [this, items = std::move(items),
                                    cb = std::move(on_complete)]() mutable {
    sender_->send_message(std::move(items), [this, cb = std::move(cb)](
                                                const FlowStats& st) {
      done_ = true;
      if (cb) cb(st);
    });
  });
}

}  // namespace trimgrad::net
