// Discrete-event simulation kernel, shardable across the thread pool.
//
// The engine keeps a monotone simulated clock, the node registry, and the
// link wiring for the fabric. Events live in per-domain priority heaps; a
// *domain* is a set of nodes (default: everything in domain 0). With one
// domain the engine is the classic single-queue sequential simulator. With
// a multi-domain partition it can additionally run *parallel*: each pool
// worker drains its domains' heaps between conservative synchronization
// horizons (barrier windows of width `lookahead()`, the minimum latency of
// any inter-domain link), which is what lets 1024-host closed-loop runs use
// every core. See DESIGN.md "Parallel simulation" for the determinism
// argument; the short version is that the event order is defined by the
// partition-aware key (time, scheduling domain, per-domain sequence) — never
// by thread scheduling — so sequential and parallel execution of the same
// partitioned fabric are bit-identical, for any TRIMGRAD_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/queue.h"

namespace trimgrad::net {

class Node;
class FaultPlane;
class InvariantMonitor;

/// Physical link parameters (one direction; connect() wires both).
struct LinkSpec {
  double bandwidth_bps = 100e9;  ///< 100 Gbps default, per the paper's testbed
  SimTime latency_s = 1e-6;      ///< propagation delay

  /// Serialization delay for a frame of `bytes`.
  SimTime tx_time(std::size_t bytes) const noexcept {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// An egress port: queue + attached unidirectional link to a peer node.
/// Owned by its node; drained by the simulator's event loop.
class Port {
 public:
  Port(LinkSpec link, QueueConfig qcfg, NodeId peer)
      : link_(link), queue_(qcfg), peer_(peer) {}

  const LinkSpec& link() const noexcept { return link_; }
  NodeId peer() const noexcept { return peer_; }
  EgressQueue& queue() noexcept { return queue_; }
  const EgressQueue& queue() const noexcept { return queue_; }

 private:
  friend class Simulator;
  LinkSpec link_;
  EgressQueue queue_;
  NodeId peer_;
  bool transmitting_ = false;
};

/// The simulation engine: event heaps, clock, node registry, link wiring,
/// and (optionally) a sharded-execution plan over a node partition.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Simulated now. Inside an event handler this is the executing domain's
  /// clock (domains advance independently within a synchronization window);
  /// outside a run it is the global high-water mark.
  SimTime now() const noexcept;

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0). The event
  /// executes in the domain of the node whose handler is currently running
  /// (node-local timers inherit their node), or domain 0 when scheduled
  /// from outside any event.
  void schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` anchored at `node`: it executes in `node`'s domain, with
  /// that node as the current context (so nested schedules and frame ids
  /// stay with the node). This is how traffic generators start flows on
  /// partitioned fabrics without violating domain confinement.
  void schedule_at(NodeId node, SimTime delay, std::function<void()> fn);

  /// Run until every event heap drains. Returns the final clock value.
  SimTime run();

  /// Run until the clock reaches `t` (events at > t stay queued).
  void run_until(SimTime t);

  // --- Partitioning & parallel execution -----------------------------------

  /// Assign `node` to `domain`. Call after the topology is built and before
  /// any traffic is scheduled. Domain ids must be dense (0..D-1 all used).
  void set_node_domain(NodeId node, std::uint32_t domain);

  /// Domain of a node (0 unless assigned).
  std::uint32_t node_domain(NodeId node) const noexcept;

  /// Freeze the partition: computes the conservative lookahead (minimum
  /// latency over links that cross domains) and allocates per-domain state.
  /// Throws std::invalid_argument if any inter-domain link has zero latency
  /// (no lookahead -> no safe window), and std::logic_error if events are
  /// already queued or the clock has advanced.
  void seal_partition();

  /// Execute sharded across ThreadPool::global() (requires a sealed
  /// partition with >= 2 domains). Off by default: the engine runs
  /// sequentially, which is also the bit-identical reference the parallel
  /// mode is tested against. Throws std::logic_error if unsealed.
  void set_parallel_execution(bool on);
  bool parallel_execution() const noexcept { return parallel_; }

  std::uint32_t domain_count() const noexcept {
    return static_cast<std::uint32_t>(domains_.size());
  }
  /// Conservative lookahead of the sealed partition (0 before sealing or
  /// with a single domain).
  SimTime lookahead() const noexcept { return lookahead_; }

  /// Events executed so far, summed over domains (bench bookkeeping).
  std::uint64_t executed_events() const noexcept;

  // --- Topology ------------------------------------------------------------

  /// Construct a node of type T (T : public Node) and register it.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(*this, next_node_id(),
                                    std::forward<Args>(args)...);
    T& ref = *node;
    register_node(std::move(node));
    return ref;
  }

  Node& node(NodeId id);
  std::size_t node_count() const noexcept;

  /// Wire a bidirectional link between two nodes: adds one egress port on
  /// each side. Returns the port indices {on_a, on_b}.
  std::pair<std::size_t, std::size_t> connect(NodeId a, NodeId b,
                                              LinkSpec link,
                                              QueueConfig qcfg_a,
                                              QueueConfig qcfg_b);
  std::pair<std::size_t, std::size_t> connect(NodeId a, NodeId b,
                                              LinkSpec link,
                                              QueueConfig qcfg) {
    return connect(a, b, link, qcfg, qcfg);
  }

  /// Hand a frame to a node's egress port: enqueue and kick the drain loop.
  /// Returns false if the queue dropped the frame.
  bool transmit(NodeId from, std::size_t port_idx, Frame frame);

  /// Fresh frame id for tracing and the fault plane's stateless coins.
  /// Drawn from the current domain's counter (domain 0 outside events), so
  /// ids are deterministic under any execution mode; ids from different
  /// domains live in disjoint ranges.
  std::uint64_t next_frame_id() noexcept;

  /// Total frames delivered to nodes (for conservation checks in tests).
  std::uint64_t delivered_frames() const noexcept;

  /// Attach a fault plane (net/fault_plane.h); nullptr detaches. The plane
  /// must outlive every run while attached. Consulted at transmit (origin
  /// link/node up?), dequeue (degradation, corruption, dead-link flush),
  /// and delivery (destination node up?).
  void set_fault_plane(FaultPlane* plane) noexcept { fault_plane_ = plane; }
  FaultPlane* fault_plane() const noexcept { return fault_plane_; }

  /// Attach an invariant monitor (net/invariants.h); nullptr detaches. The
  /// monitor must outlive every run while attached. Hooked at frame-id
  /// allocation, transmit, dead-link flush, and delivery dispatch; nodes and
  /// flow machinery consult it through this accessor for their own hooks.
  void set_invariant_monitor(InvariantMonitor* monitor) noexcept {
    monitor_ = monitor;
  }
  InvariantMonitor* invariant_monitor() const noexcept { return monitor_; }

 private:
  struct Event {
    SimTime time;
    std::uint32_t key_domain;  ///< scheduling domain (tiebreaker, part 1)
    std::uint64_t key_seq;     ///< per-domain sequence (tiebreaker, part 2)
    NodeId exec_node;          ///< node context the event runs as
    std::function<void()> fn;
  };
  /// a after b in execution order? Key = (time, key_domain, key_seq): with
  /// one domain this is exactly time-then-FIFO; the key never depends on
  /// thread scheduling, which is the whole determinism argument.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.key_domain != b.key_domain) return a.key_domain > b.key_domain;
      return a.key_seq > b.key_seq;
    }
  };

  /// Per-domain execution state. Padded: in parallel windows each domain is
  /// owned by exactly one worker, and neighbors must not share cache lines.
  struct alignas(64) Domain {
    std::vector<Event> heap;    ///< binary heap via std::push_heap/pop_heap
    std::vector<Event> outbox;  ///< cross-domain events emitted this window
    SimTime now = 0.0;
    std::uint64_t seq = 0;        ///< event-key sequence for this scheduler
    std::uint64_t frame_seq = 0;  ///< frame-id counter for this scheduler
    std::uint64_t delivered = 0;
    std::uint64_t executed = 0;
  };

  NodeId next_node_id() noexcept {
    return static_cast<NodeId>(nodes_.size());
  }
  void register_node(std::unique_ptr<Node> node);
  void drain_port(NodeId node_id, std::size_t port_idx);

  std::uint32_t exec_domain_of(NodeId node) const noexcept;
  void schedule_event(NodeId exec_node, SimTime delay,
                      std::function<void()> fn);
  void push_event(Event ev);
  /// Execute ready events of `d` with time < bound and <= until.
  void run_domain(std::uint32_t d, SimTime bound, SimTime until);
  void run_sequential(SimTime until);
  void run_parallel(SimTime until);
  bool next_event_time(SimTime* t) const noexcept;

  SimTime now_ = 0.0;
  FaultPlane* fault_plane_ = nullptr;
  InvariantMonitor* monitor_ = nullptr;
  bool sealed_ = false;
  bool parallel_ = false;
  /// True while a parallel window is in flight (ordered by the pool's job
  /// publish/latch, so plain bool suffices); cross-domain pushes divert to
  /// the scheduler's outbox.
  bool in_window_ = false;
  SimTime lookahead_ = 0.0;
  std::vector<Domain> domains_;            ///< always >= 1 (domain 0)
  std::vector<std::uint32_t> node_domain_; ///< by node id; empty -> all 0
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Base class for everything attached to the fabric.
class Node {
 public:
  Node(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// A frame has fully arrived at this node.
  virtual void on_frame(Frame frame) = 0;

  NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Simulator& sim() noexcept { return sim_; }

  std::size_t port_count() const noexcept { return ports_.size(); }
  Port& port(std::size_t i) { return *ports_.at(i); }
  const Port& port(std::size_t i) const { return *ports_.at(i); }

  /// Index of the port whose link points at `peer`, or port_count() if none.
  std::size_t port_to(NodeId peer) const noexcept;

 protected:
  Simulator& sim_;

 private:
  friend class Simulator;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace trimgrad::net
