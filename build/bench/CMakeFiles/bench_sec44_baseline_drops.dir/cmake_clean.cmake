file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_baseline_drops.dir/bench_sec44_baseline_drops.cpp.o"
  "CMakeFiles/bench_sec44_baseline_drops.dir/bench_sec44_baseline_drops.cpp.o.d"
  "bench_sec44_baseline_drops"
  "bench_sec44_baseline_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_baseline_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
