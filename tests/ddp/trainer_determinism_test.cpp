// Thread-count invariance of the parallel DDP trainer: one round must
// produce bit-identical losses and updated weights whether the W replicas'
// forward/backward passes run on 1, 2, or 8 pool threads. This is the
// ISSUE 2 contract that makes the parallel trainer a drop-in replacement
// for the sequential one in every figure reproduction.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collective/inject_channel.h"
#include "core/threadpool.h"
#include "ddp/trainer.h"
#include "ml/data.h"
#include "ml/model.h"

namespace trimgrad::ddp {
namespace {

ml::SynthCifar& small_data() {
  static ml::SynthCifar* data = [] {
    ml::SynthCifarConfig dcfg;
    dcfg.classes = 10;
    dcfg.height = dcfg.width = 8;
    dcfg.train_per_class = 16;
    dcfg.test_per_class = 2;
    return new ml::SynthCifar(dcfg);
  }();
  return *data;
}

struct EpochResult {
  double loss = 0;
  std::vector<std::vector<float>> params;  // one per replica
};

EpochResult run_one_epoch(core::Scheme scheme) {
  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 32;
  tcfg.epochs = 1;
  tcfg.eval_every = 0;
  tcfg.codec.scheme = scheme;
  tcfg.codec.rht_row_len = std::size_t{1} << 10;

  collective::InjectChannel::Config chcfg;
  chcfg.world = tcfg.world;
  // Congest the channel so trims/drops feed back into the weights: the
  // determinism claim has to hold through the lossy path, not just the
  // clean one.
  chcfg.injector.trim_rate = 0.2;
  chcfg.injector.drop_rate = 0.02;
  collective::InjectChannel channel(chcfg);

  DdpTrainer trainer(small_data(), channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 32);
  });
  EpochResult res;
  res.loss = trainer.run_epoch(0).train_loss;
  for (int r = 0; r < tcfg.world; ++r) {
    res.params.push_back(trainer.replica(r).flat_params());
  }
  return res;
}

void expect_bit_identical(const EpochResult& a, const EpochResult& b,
                          std::size_t threads) {
  EXPECT_EQ(a.loss, b.loss) << "loss differs at " << threads << " threads";
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t r = 0; r < a.params.size(); ++r) {
    ASSERT_EQ(a.params[r].size(), b.params[r].size());
    EXPECT_EQ(0, std::memcmp(a.params[r].data(), b.params[r].data(),
                             a.params[r].size() * sizeof(float)))
        << "replica " << r << " weights differ at " << threads << " threads";
  }
}

TEST(TrainerDeterminism, RhtEpochInvariantAcrossPoolSizes) {
  core::ThreadPool::set_global_threads(1);
  const auto ref = run_one_epoch(core::Scheme::kRHT);
  ASSERT_GT(ref.params[0].size(), 0u);
  for (const std::size_t threads : {2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    expect_bit_identical(ref, run_one_epoch(core::Scheme::kRHT), threads);
  }
  core::ThreadPool::set_global_threads(1);
}

TEST(TrainerDeterminism, SignEpochInvariantAcrossPoolSizes) {
  core::ThreadPool::set_global_threads(1);
  const auto ref = run_one_epoch(core::Scheme::kSign);
  for (const std::size_t threads : {2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    expect_bit_identical(ref, run_one_epoch(core::Scheme::kSign), threads);
  }
  core::ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace trimgrad::ddp
