#include "net/pull_transport.h"

#include <algorithm>
#include <cassert>

#include "core/metrics.h"

namespace trimgrad::net {
namespace {

struct PullTelemetry {
  core::Counter pulls_emitted;

  static const PullTelemetry& get() {
    static const PullTelemetry t{
        core::MetricsRegistry::global().counter("net.pull.pulls_emitted"),
    };
    return t;
  }
};

}  // namespace

// ------------------------------------------------------------ PullSender --

PullSender::PullSender(Host& host, NodeId dst, std::uint32_t flow_id,
                       PullConfig cfg)
    : host_(host), flow_id_(flow_id), cfg_(cfg), core_(host, dst, flow_id) {
  host_.bind(flow_id_, this);
}

PullSender::~PullSender() { host_.unbind(flow_id_); }

void PullSender::send_message(
    std::vector<SendItem> items,
    std::function<void(const FlowStats&)> on_complete) {
  assert(!core_.active());
  const FlowCore::Limits limits{cfg_.rto, cfg_.rto_cap, cfg_.retransmit_budget,
                                cfg_.flow_deadline};
  // If the pull stream stalled (lost pulls), each RTO nudges a new packet
  // too; the nudge is fresh data, not a retransmission.
  if (core_.begin(std::move(items), limits, std::move(on_complete),
                  [this] { core_.send_next_new(); })) {
    return;
  }
  // First-RTT burst; everything after is pull-granted.
  const std::size_t burst = std::min(cfg_.initial_burst, core_.size());
  for (std::size_t i = 0; i < burst; ++i) core_.send_next_new();
  core_.arm_timer();
}

void PullSender::abort() { core_.abort(); }

void PullSender::on_frame(Frame frame) {
  if (!core_.active()) return;
  if (frame.kind == FrameKind::kPull) {
    core_.send_next_new();
    return;
  }
  if (frame.kind == FrameKind::kNack) {
    core_.handle_nack(frame.ack_echo);
    return;
  }
  if (frame.kind != FrameKind::kAck) return;
  if (core_.mark_acked(frame.ack_echo, frame.ack_was_trimmed)) {
    core_.arm_timer();
  }
  if (core_.all_acked()) core_.complete();
}

// ------------------------------------------------------------- PullPacer --

void PullPacer::request(std::uint32_t flow_id, NodeId sender) {
  queue_.emplace_back(flow_id, sender);
  if (!armed_) {
    armed_ = true;
    host_.sim().schedule(interval_, [this] { fire(); });
  }
}

void PullPacer::fire() {
  if (queue_.empty()) {
    armed_ = false;
    return;
  }
  const auto [flow_id, sender] = queue_.front();
  queue_.pop_front();
  Frame pull;
  pull.id = host_.sim().next_frame_id();
  pull.src = host_.id();
  pull.dst = sender;
  pull.flow_id = flow_id;
  pull.kind = FrameKind::kPull;
  pull.size_bytes = kControlFrameBytes;
  host_.send(std::move(pull));
  ++emitted_;
  PullTelemetry::get().pulls_emitted.add();
  host_.sim().schedule(interval_, [this] { fire(); });
}

// ---------------------------------------------------------- PullReceiver --

PullReceiver::PullReceiver(
    Host& host, NodeId peer, std::uint32_t flow_id,
    std::size_t expected_packets, PullConfig cfg,
    std::function<void(const Frame&)> on_data,
    std::function<void(const ReceiverStats&)> on_complete, PullPacer* pacer)
    : host_(host),
      peer_(peer),
      flow_id_(flow_id),
      cfg_(cfg),
      core_(host, flow_id, expected_packets,
            ReceiverCore::Policy{/*trimmed_is_delivered=*/true,
                                 /*cumulative_ack=*/false,
                                 /*echo_ecn=*/false},
            std::move(on_data), std::move(on_complete)),
      pacer_(pacer) {
  if (pacer_ == nullptr) {
    own_pacer_ = std::make_unique<PullPacer>(host_,
                                             cfg_.effective_pull_interval());
    pacer_ = own_pacer_.get();
  }
  host_.bind(flow_id_, this);
}

PullReceiver::~PullReceiver() { host_.unbind(flow_id_); }

void PullReceiver::grant_pull() {
  // One pull per delivered packet, but never more pulls than packets the
  // sender still has to emit beyond its initial burst. Corrupt arrivals do
  // not grant: the retransmission replaces a frame that already consumed
  // credit, so granting again would over-clock the sender.
  if (granted_ + cfg_.initial_burst >= core_.stats().expected) return;
  ++granted_;
  pacer_->request(flow_id_, peer_);
}

void PullReceiver::on_frame(Frame frame) {
  if (!core_.pre_deliver(frame)) return;
  core_.deliver(frame);
  grant_pull();
  core_.maybe_complete();
}

// -------------------------------------------------------------- PullFlow --

PullFlow::PullFlow(Simulator& sim, NodeId src, NodeId dst,
                   std::uint32_t flow_id, PullConfig cfg,
                   std::size_t n_packets,
                   std::function<void(const Frame&)> on_data,
                   PullPacer* pacer)
    : sim_(sim) {
  auto& src_host = static_cast<Host&>(sim.node(src));
  auto& dst_host = static_cast<Host&>(sim.node(dst));
  sender_ = std::make_unique<PullSender>(src_host, dst, flow_id, cfg);
  receiver_ = std::make_unique<PullReceiver>(
      dst_host, src, flow_id, n_packets, cfg, std::move(on_data),
      /*on_complete=*/nullptr, pacer);
}

void PullFlow::start_at(SimTime when, std::vector<SendItem> items,
                        std::function<void(const FlowStats&)> on_complete) {
  assert(when >= sim_.now());
  sim_.schedule(when - sim_.now(), [this, items = std::move(items),
                                    cb = std::move(on_complete)]() mutable {
    sender_->send_message(std::move(items), [this, cb = std::move(cb)](
                                                const FlowStats& st) {
      done_ = true;
      if (cb) cb(st);
    });
  });
}

}  // namespace trimgrad::net
