// SimChannel: transfers run as real flows on the discrete-event fabric.
//
// Ranks are pinned to hosts of a topology built by the caller; each
// TransferRequest becomes a flow whose data frames carry the actual encoded
// gradient packets (trimmable at their §2 trim point) plus one untrimmable
// metadata frame. Trimming happens where it would in deployment: in the
// switch queue, only when the queue actually overflows. Cross traffic can
// share the same fabric.
#pragma once

#include <memory>
#include <string>

#include "collective/channel.h"
#include "collective/world_view.h"
#include "net/host.h"
#include "net/sim.h"
#include "net/transport_registry.h"

namespace trimgrad::collective {

class SimChannel : public Channel {
 public:
  struct Config {
    /// TransportRegistry name: "trim" (paper), "reliable" (NACKs trimmed
    /// arrivals), "pull", or "ecn".
    std::string transport = "trim";
    /// Transport-agnostic overrides (0 keeps each native default).
    net::FlowTuning tuning;
    /// Per-round deadline: if > 0, any flow still in flight this long after
    /// the batch starts is aborted (Delivery::flow_failed) and the round
    /// proceeds with the contributions that arrived. Keeps a dead link or
    /// node from hanging the collective forever.
    net::SimTime round_deadline = 0;
  };

  /// `sim` and `rank_hosts` must outlive the channel. rank_hosts[r] is the
  /// host node carrying rank r.
  SimChannel(net::Simulator& sim, std::vector<net::NodeId> rank_hosts,
             Config cfg);

  std::vector<Delivery> transfer(std::vector<TransferRequest> batch) override;
  int world_size() const override {
    return static_cast<int>(rank_hosts_.size());
  }

  /// The per-delivery counters, enriched with fabric telemetry the inject
  /// channel cannot see: the last DCTCP alpha gauge, the round's corrupt
  /// NACKs, and the fraction of queue-depth samples in the hot (>= 64 KiB)
  /// buckets — all deltas against the previous snapshot of the process-wide
  /// metrics registry, so consecutive rounds see disjoint windows.
  core::NetFeedback take_feedback() override;

  net::Simulator& sim() { return sim_; }

  /// Elastic membership: with a view attached, a transfer whose source or
  /// destination rank is not live in the *current* view is refused — it
  /// completes immediately as a failed delivery without putting a single
  /// frame on the fabric. This is the channel-level half of the
  /// "collectives never mix views" rule: a request staged under an old
  /// view cannot leak frames into the new one. nullptr detaches.
  void set_view(const WorldView* view) noexcept { view_ = view; }

 private:
  net::Simulator& sim_;
  std::vector<net::NodeId> rank_hosts_;
  Config cfg_;
  const WorldView* view_ = nullptr;
  std::uint32_t next_flow_id_ = 1 << 20;
  // Metric cursors for take_feedback deltas.
  std::uint64_t seen_corrupt_ = 0;
  std::uint64_t seen_depth_total_ = 0;
  std::uint64_t seen_depth_hot_ = 0;
};

}  // namespace trimgrad::collective
