// Model builders: the scaled-down VGG used by the figure reproductions and
// an MLP for fast benches.
//
// The paper trains VGG-19 on CIFAR-100 (§4.1). MiniVGG keeps the VGG shape
// (3×3 conv blocks with doubling widths, max-pool between blocks, FC head)
// scaled to CPU budgets; the claims under reproduction are about gradient
// encodings, not architecture capacity (DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <memory>

#include "ml/layers.h"

namespace trimgrad::ml {

struct ModelConfig {
  std::size_t classes = 100;
  std::size_t channels = 3;
  std::size_t height = 32;
  std::size_t width = 32;
  std::uint64_t init_seed = 7;
};

/// VGG-style convnet: [conv-relu ×2, pool] ×2, conv-relu-pool, FC head.
std::unique_ptr<Sequential> make_mini_vgg(const ModelConfig& cfg,
                                          std::size_t base_width = 16);

/// Two-hidden-layer MLP (used where conv compute would dominate a bench).
std::unique_ptr<Sequential> make_mlp(const ModelConfig& cfg,
                                     std::size_t hidden = 256);

}  // namespace trimgrad::ml
