# Empty dependencies file for trimgrad_collective.
# This may be replaced when dependencies are built.
