// Ahead-of-time precision control + just-in-time trimming (paper §5.3).
//
//   $ ./examples/adaptive_precision
//
// A sender repeatedly ships a gradient through a bottleneck whose capacity
// swings between quiet and congested phases. The AIMD controller watches
// the trim fraction and retunes the tail width Q each round — "slightly
// under-compress and over-send" — so the link stays saturated while decode
// error stays near the best achievable at each phase.
#include <cstdio>
#include <vector>

#include "core/adaptive.h"
#include "core/codec.h"
#include "core/prng.h"
#include "core/stats.h"

int main() {
  using namespace trimgrad;

  const std::size_t n = 1 << 15;
  core::Xoshiro256 rng(3);
  core::AdaptiveQController controller;

  std::printf("%6s %10s %6s %8s %8s %10s\n", "round", "capacity%", "Q",
              "trim%", "NMSE", "phase");
  for (int round = 0; round < 24; ++round) {
    // Capacity schedule: quiet -> congested -> quiet.
    const double capacity_frac = round < 8 ? 1.2 : (round < 16 ? 0.35 : 1.2);
    const char* phase = round < 8 ? "quiet" : (round < 16 ? "CONGESTED" : "quiet");

    std::vector<float> grad(n);
    for (auto& g : grad) g = static_cast<float>(rng.gaussian());

    core::CodecConfig cfg;
    cfg.scheme = core::Scheme::kRHT;
    cfg.rht_row_len = std::size_t{1} << 12;
    cfg.layout.q_bits = controller.q();
    core::TrimmableEncoder enc(cfg);
    core::TrimmableDecoder dec(cfg);
    auto msg = enc.encode(grad, static_cast<std::uint32_t>(round), 1);

    // The bottleneck trims whatever exceeds capacity this round.
    std::size_t total = 0;
    for (const auto& p : msg.packets) total += p.wire_bytes();
    const auto budget =
        static_cast<std::size_t>(capacity_frac * static_cast<double>(n * 4));
    std::size_t trimmed = 0;
    for (auto it = msg.packets.rbegin();
         it != msg.packets.rend() && total > budget; ++it) {
      const std::size_t before = it->wire_bytes();
      it->trim();
      total -= before - it->wire_bytes();
      ++trimmed;
    }
    const double trim_frac =
        static_cast<double>(trimmed) / static_cast<double>(msg.packets.size());

    const auto out = dec.decode(msg.packets, msg.meta);
    std::printf("%6d %9.0f%% %6u %7.1f%% %8.4f %10s\n", round,
                capacity_frac * 100, controller.q(), trim_frac * 100,
                core::nmse(out.values, grad), phase);

    controller.observe(trim_frac);
  }
  std::printf("\n(the controller dives to short tails during the congested "
              "phase and climbs back to full precision afterwards)\n");
  return 0;
}
