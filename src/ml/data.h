// SynthCIFAR: a deterministic procedurally generated image-classification
// dataset standing in for CIFAR-100 (see DESIGN.md substitutions).
//
// Each class has a smooth random prototype image (a low-resolution gaussian
// grid bilinearly upsampled, per channel); samples are the prototype plus
// pixel noise and data augmentation (random horizontal flip and ±2 px
// shifts, matching the paper's "standard training setup with data
// augmentation"). The signal-to-noise ratio is chosen so a small convnet
// must actually learn the prototypes — accuracy improves over epochs and
// degrades under gradient corruption, which is what the Fig. 3/4
// reproductions measure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.h"
#include "ml/tensor.h"

namespace trimgrad::ml {

struct SynthCifarConfig {
  std::size_t classes = 100;
  std::size_t channels = 3;
  std::size_t height = 32;
  std::size_t width = 32;
  std::size_t train_per_class = 50;
  std::size_t test_per_class = 10;
  float noise = 0.6f;       ///< pixel noise stddev (signal is ~unit scale)
  std::size_t proto_grid = 4;  ///< low-res grid size for prototypes
  std::uint64_t seed = 1234;
  bool augment = true;
};

class SynthCifar {
 public:
  explicit SynthCifar(SynthCifarConfig cfg);

  const SynthCifarConfig& config() const noexcept { return cfg_; }
  std::size_t train_size() const noexcept { return train_labels_.size(); }
  std::size_t test_size() const noexcept { return test_labels_.size(); }
  std::size_t sample_floats() const noexcept {
    return cfg_.channels * cfg_.height * cfg_.width;
  }

  /// Assemble a training batch tensor [B, C, H, W] + labels from dataset
  /// indices (augmentation applied with the provided rng).
  Tensor train_batch(std::span<const std::uint32_t> indices,
                     std::vector<std::uint32_t>& labels,
                     core::Xoshiro256& rng) const;

  /// Full test tensor in index order [offset, offset+count).
  Tensor test_batch(std::size_t offset, std::size_t count,
                    std::vector<std::uint32_t>& labels) const;

 private:
  std::vector<float> make_prototype(core::Xoshiro256& rng) const;
  std::vector<float> make_sample(const std::vector<float>& proto,
                                 core::Xoshiro256& rng) const;
  void augment_into(std::span<const float> src, float* dst,
                    core::Xoshiro256& rng) const;

  SynthCifarConfig cfg_;
  std::vector<std::vector<float>> train_images_;
  std::vector<std::uint32_t> train_labels_;
  std::vector<std::vector<float>> test_images_;
  std::vector<std::uint32_t> test_labels_;
};

/// Deterministic per-epoch shuffling batcher.
class Batcher {
 public:
  Batcher(std::size_t dataset_size, std::size_t batch_size,
          std::uint64_t seed);

  /// Number of batches per epoch (partial last batch dropped, as in the
  /// common PyTorch drop_last=True setup).
  std::size_t batches_per_epoch() const noexcept;

  /// Indices of batch `b` of epoch `e` (same (e,b) always gives the same
  /// batch — needed for exact DDP replication across workers).
  std::vector<std::uint32_t> batch(std::size_t epoch, std::size_t b) const;

  /// Worker shard of a batch: worker w of W takes an equal contiguous slice.
  std::vector<std::uint32_t> worker_shard(std::size_t epoch, std::size_t b,
                                          std::size_t worker,
                                          std::size_t world) const;

 private:
  std::size_t n_;
  std::size_t batch_size_;
  std::uint64_t seed_;
};

}  // namespace trimgrad::ml
