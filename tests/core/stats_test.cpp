#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"

namespace trimgrad::core {
namespace {

TEST(Stats, SumAndMean) {
  std::vector<float> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(v), 10.0);
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, EmptyInputsAreZero) {
  std::vector<float> v;
  EXPECT_DOUBLE_EQ(sum(v), 0.0);
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
  EXPECT_DOUBLE_EQ(l1_norm(v), 0.0);
  EXPECT_DOUBLE_EQ(l2_norm(v), 0.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  std::vector<float> v(100, 3.5f);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, StddevKnownValue) {
  std::vector<float> v = {2, 4, 4, 4, 5, 5, 7, 9};  // classic σ=2 example
  EXPECT_NEAR(stddev(v), 2.0, 1e-9);
}

TEST(Stats, Norms) {
  std::vector<float> v = {3, -4};
  EXPECT_DOUBLE_EQ(l1_norm(v), 7.0);
  EXPECT_DOUBLE_EQ(l2_norm_sq(v), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(v), 5.0);
}

TEST(Nmse, ZeroForPerfectEstimate) {
  std::vector<float> v = {1, -2, 3};
  EXPECT_DOUBLE_EQ(nmse(v, v), 0.0);
}

TEST(Nmse, NormalizesByReferenceEnergy) {
  std::vector<float> ref = {2, 0};
  std::vector<float> est = {0, 0};
  EXPECT_DOUBLE_EQ(nmse(est, ref), 1.0);  // ‖0−ref‖²/‖ref‖² = 1
}

TEST(Nmse, BothZeroIsZero) {
  std::vector<float> z = {0, 0};
  EXPECT_DOUBLE_EQ(nmse(z, z), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Xoshiro256 rng(4);
  std::vector<float> v(5000);
  for (auto& x : v) x = rng.uniform(-3.f, 5.f);
  RunningStats rs;
  for (float x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-6);
}

TEST(RunningStats, TracksMinMax) {
  RunningStats rs;
  for (double x : {3.0, -1.0, 7.0, 2.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace trimgrad::core
