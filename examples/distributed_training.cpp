// Distributed data-parallel training under heavy trimming.
//
//   $ ./examples/distributed_training [experiment-spec]
//     e.g. ./examples/distributed_training "scheme=sq,trim=0.5"
//          ./examples/distributed_training "transport=reliable,scheme=baseline"
//
// The spec is an ddp::ExperimentSpec string (key=value, comma-separated);
// unset keys keep their defaults (transport=trim, scheme=rht, trim=0.25,
// world=4, epochs=10). Four workers train a small convnet on SynthCIFAR
// while the configured fraction of gradient packets is trimmed in flight —
// the paper's §4 setup at laptop scale. Watch top-1 accuracy climb despite
// the congestion.
#include <cstdio>
#include <exception>

#include "collective/inject_channel.h"
#include "ddp/experiment.h"
#include "ddp/trainer.h"

int main(int argc, char** argv) {
  using namespace trimgrad;

  ddp::ExperimentSpec spec;
  try {
    spec = ddp::ExperimentSpec::parse(argc > 1 ? argv[1] : "");
    spec.apply_threads();

    ml::SynthCifarConfig dcfg;
    dcfg.classes = 20;
    dcfg.height = dcfg.width = 16;
    dcfg.train_per_class = 40;
    dcfg.test_per_class = 10;
    ml::SynthCifar data(dcfg);

    // Baseline cannot use trimmed packets; select the reliable transport to
    // retransmit them: "transport=reliable,scheme=baseline".
    collective::InjectChannel channel(spec.inject_channel_config());

    ddp::TrainerConfig tcfg = spec.trainer_config();
    tcfg.codec.rht_row_len = std::size_t{1} << 12;

    ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg] {
      ml::ModelConfig mcfg;
      mcfg.classes = dcfg.classes;
      mcfg.channels = dcfg.channels;
      mcfg.height = dcfg.height;
      mcfg.width = dcfg.width;
      return ml::make_mini_vgg(mcfg, 8);
    });

    std::printf("spec: %s\n", spec.serialize().c_str());
    std::printf("%5s %10s %9s %8s %8s %12s %10s\n", "epoch", "sim_time_s",
                "loss", "top1", "top5", "trimmed_pkts", "retx");
    const auto records = trainer.train();
    for (const auto& r : records) {
      std::printf("%5zu %10.3f %9.4f %8.3f %8.3f %12zu %10llu\n", r.epoch,
                  r.sim_time_s, r.train_loss, r.top1, r.top5,
                  r.trimmed_packets,
                  static_cast<unsigned long long>(r.retransmits));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
