# Empty dependencies file for fsdp_allgather.
# This may be replaced when dependencies are built.
