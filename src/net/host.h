// Host node: demultiplexes arriving frames to transport endpoints by flow.
//
// Hosts are single-homed in all of our topologies (one NIC port); the
// endpoint registry is how senders/receivers (src/net/transport.h) and
// application generators (src/net/traffic.h) attach to the fabric.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/invariants.h"
#include "net/sim.h"

namespace trimgrad::net {

/// Anything that terminates frames for one flow at a host.
class FlowEndpoint {
 public:
  virtual ~FlowEndpoint() = default;
  virtual void on_frame(Frame frame) = 0;
};

class Host : public Node {
 public:
  Host(Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, std::move(name)) {}

  /// Register the endpoint handling `flow_id` at this host. The endpoint
  /// must outlive the simulation (experiments own endpoints by value).
  void bind(std::uint32_t flow_id, FlowEndpoint* endpoint) {
    endpoints_[flow_id] = endpoint;
  }
  void unbind(std::uint32_t flow_id) { endpoints_.erase(flow_id); }

  void on_frame(Frame frame) override {
    const auto it = endpoints_.find(frame.flow_id);
    if (it == endpoints_.end()) {
      ++unclaimed_;
      if (auto* m = sim_.invariant_monitor()) {
        m->resolve_delivery(InvariantMonitor::Outcome::kUnclaimed);
      }
      return;
    }
    it->second->on_frame(std::move(frame));
  }

  /// Send a frame out of the host's (single) NIC port.
  /// Returns false if the NIC queue dropped it (effectively never for
  /// correctly sized host queues).
  bool send(Frame frame) { return sim_.transmit(id(), 0, std::move(frame)); }

  /// Frames that arrived for unknown flows (test diagnostics).
  std::uint64_t unclaimed() const noexcept { return unclaimed_; }

 private:
  std::unordered_map<std::uint32_t, FlowEndpoint*> endpoints_;
  std::uint64_t unclaimed_ = 0;
};

}  // namespace trimgrad::net
