# Empty compiler generated dependencies file for test_core_lowrank.
# This may be replaced when dependencies are built.
