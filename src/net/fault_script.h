// FaultScript: a serializable superset of the fault plane's configuration,
// plus a seeded random generator over it.
//
// A FaultLog records what a run's faults *did*; a FaultScript says what the
// fault plane *will do* — the corruption seed and rates, every link and node
// fault window, and the straggler factor — in one text artifact that
// round-trips byte-identically through serialize()/parse(). That makes a
// chaos scenario a file: `ExperimentSpec faults=file:<path>` loads one, the
// chaos-search shrinker (ddp/chaos_search.h) writes minimal repros as one,
// and CI uploads them as replayable artifacts.
//
// Text form (one directive per line, '#' comments, doubles printed with the
// shortest representation that round-trips exactly):
//
//   faultscript v1
//   seed 7
//   corrupt_rate 0.01
//   straggler 3
//   corrupt <node> <port> <rate>
//   link <node> <port> <start> <duration> <bw_scale> <lat_scale> <period> <reps>
//   node <node> <start> <duration> <period> <reps>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/fault_plane.h"

namespace trimgrad::net {

struct FaultScript {
  FaultPlaneConfig plane;
  /// net::StragglerSchedule factor; 1.0 disables straggler injection.
  double straggler_factor = 1.0;

  bool operator==(const FaultScript&) const = default;

  /// Number of fault "events" the script describes: one per link fault, node
  /// fault, and corrupt override, plus one each for a positive global
  /// corrupt rate and an enabled straggler. The shrinker's minimality and
  /// the mutation test's "<= 3 events" bound count in this unit.
  std::size_t event_count() const noexcept;

  /// Canonical text form; parse(serialize()) == *this and
  /// serialize(parse(s)) == s for any serialize() output.
  std::string serialize() const;
  /// Throws std::invalid_argument naming the offending line on malformed
  /// input (unknown directive, wrong field count, bad number, bad header).
  static FaultScript parse(const std::string& text);

  void save(std::ostream& os) const;
  static FaultScript load(std::istream& is);
  /// Convenience: parse the file at `path`; throws std::runtime_error when
  /// the file cannot be read, std::invalid_argument when it is malformed.
  static FaultScript load_file(const std::string& path);

  /// Copy with link/node faults and corrupt overrides in a canonical order
  /// (serialization is order-sensitive; comparisons across generators or
  /// shrink paths go through this normal form).
  FaultScript sorted() const;
};

/// Inputs for the seeded script generator. Candidates come from a concrete
/// topology (switch egress ports, killable nodes); the generator never
/// invents ids, so a generated script replays against any identically built
/// fabric.
struct ScriptGenConfig {
  std::uint64_t seed = 1;
  /// 0..1: scales how many fault windows are drawn, how long they last, and
  /// how aggressive rates get. 0 yields an all-quiet script (seed only).
  double intensity = 0.5;
  /// Fault windows are placed in [0, horizon) on the simulated clock.
  SimTime horizon = 20e-3;
  /// Candidate (node, egress port) pairs for link faults.
  std::vector<std::pair<NodeId, std::size_t>> links;
  /// Candidate nodes for whole-node kill windows.
  std::vector<NodeId> nodes;
};

/// Draw one script. Deterministic in cfg (same cfg -> identical script);
/// different seeds decorrelate every choice.
FaultScript generate_fault_script(const ScriptGenConfig& cfg);

}  // namespace trimgrad::net
