// Ahead-of-time sparsification composed with just-in-time trimming
// (paper §5.2/§5.3 extension).
//
// The sender can react to coarse-grained congestion-control feedback by
// discarding a ratio of the smallest-magnitude gradient coordinates (the
// MLT observation: the smallest ~20 % are nearly free to lose), *then*
// encode the result trimmably so switches can still compress further under
// unpredicted congestion. This module provides the top-k primitive and the
// composition helper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace trimgrad::core {

/// Zero out all but the ceil(keep_ratio * n) largest-|v| coordinates,
/// in place. keep_ratio is clamped to [0, 1]. Deterministic (stable
/// nth_element by magnitude, ties kept arbitrarily but reproducibly).
void topk_sparsify_inplace(std::span<float> values, double keep_ratio);

/// Indices of the k largest-magnitude coordinates (unsorted order).
std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k);

/// Fraction of L2 mass retained by keeping the top-`keep_ratio` share of
/// coordinates — the quantity behind MLT's "smallest 20 % are droppable".
double topk_energy_fraction(std::span<const float> values, double keep_ratio);

}  // namespace trimgrad::core
