#include "core/eden.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

TEST(Codebook, OneBitMatchesKnownOptimum) {
  // Lloyd-Max 1-bit for N(0,1): ±sqrt(2/pi) ≈ ±0.7979, distortion 1−2/π.
  const auto& cb = GaussianCodebook::get(1);
  ASSERT_EQ(cb.centroids.size(), 2u);
  EXPECT_NEAR(cb.centroids[1], std::sqrt(2.0 / 3.14159265), 1e-4);
  EXPECT_NEAR(cb.centroids[0], -cb.centroids[1], 1e-6);
  EXPECT_NEAR(cb.distortion(), 1.0 - 2.0 / 3.14159265, 1e-4);
}

TEST(Codebook, TwoBitMatchesMaxTable) {
  // Max (1960) 4-level gaussian quantizer: centroids ±0.4528, ±1.510;
  // boundary ±0.9816; distortion ≈ 0.1175.
  const auto& cb = GaussianCodebook::get(2);
  ASSERT_EQ(cb.centroids.size(), 4u);
  EXPECT_NEAR(cb.centroids[2], 0.4528, 2e-3);
  EXPECT_NEAR(cb.centroids[3], 1.510, 2e-3);
  EXPECT_NEAR(cb.boundaries[2], 0.9816, 2e-3);
  EXPECT_NEAR(cb.distortion(), 0.1175, 2e-3);
}

TEST(Codebook, FourBitDistortionMatchesMaxTable) {
  // 16-level gaussian Lloyd-Max distortion ≈ 0.009497.
  EXPECT_NEAR(GaussianCodebook::get(4).distortion(), 0.009497, 5e-4);
}

TEST(Codebook, DistortionDecreasesWithBits) {
  double prev = 1.0;
  for (unsigned b = 1; b <= 6; ++b) {
    const double d = GaussianCodebook::get(b).distortion();
    EXPECT_LT(d, prev) << b;
    prev = d;
  }
}

TEST(Codebook, QuantizeRoundsToNearestCentroid) {
  const auto& cb = GaussianCodebook::get(2);
  for (float x : {-3.0f, -0.7f, -0.1f, 0.2f, 1.2f, 4.0f}) {
    const auto q = cb.quantize(x);
    for (std::size_t i = 0; i < cb.centroids.size(); ++i) {
      EXPECT_LE(std::fabs(cb.centroids[q] - x),
                std::fabs(cb.centroids[i] - x) + 1e-6)
          << x;
    }
  }
}

TEST(Codebook, SymmetricAroundZero) {
  for (unsigned b : {1u, 2u, 3u, 4u}) {
    const auto& cb = GaussianCodebook::get(b);
    const std::size_t n = cb.centroids.size();
    for (std::size_t i = 0; i < n / 2; ++i) {
      EXPECT_NEAR(cb.centroids[i], -cb.centroids[n - 1 - i], 1e-4);
    }
  }
}

class EdenBitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(EdenBitSweep, RoundTripNmseTracksCodebookDistortion) {
  const unsigned bits = GetParam();
  const std::size_t n = 1 << 14;
  const auto v = gaussian_vec(n, bits);
  const StreamKey key{3, 1, 4, 0};
  const auto enc = eden_encode_row(v, key, bits);
  const auto dec = eden_decode_row(enc, n, key);
  // Unbiased scaling inflates the MSE-optimal distortion D to ~D/(1−D).
  const double d = GaussianCodebook::get(bits).distortion();
  const double expected = d / (1.0 - d);
  EXPECT_NEAR(nmse(dec, v), expected, expected * 0.25 + 0.003) << bits;
}

TEST_P(EdenBitSweep, CodesFitInBits) {
  const unsigned bits = GetParam();
  const auto v = gaussian_vec(1 << 10, 7);
  const auto enc = eden_encode_row(v, StreamKey{1, 1, 1, 0}, bits);
  for (auto code : enc.codes) EXPECT_LT(code, 1u << bits);
}

INSTANTIATE_TEST_SUITE_P(Bits, EdenBitSweep, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Eden, OneBitMatchesRhtSignScheme) {
  // At b=1 EDEN degenerates to DRIVE's sign encoding: NMSE ≈ π/2 − 1.
  const std::size_t n = 1 << 14;
  const auto v = gaussian_vec(n, 9);
  const StreamKey key{5, 5, 5, 0};
  const auto enc = eden_encode_row(v, key, 1);
  const auto dec = eden_decode_row(enc, n, key);
  EXPECT_NEAR(nmse(dec, v), 3.14159265 / 2 - 1, 0.05);
}

TEST(Eden, SharedKeyRequiredForDecode) {
  const std::size_t n = 1 << 10;
  const auto v = gaussian_vec(n, 10);
  const auto enc = eden_encode_row(v, StreamKey{1, 2, 3, 0}, 4);
  const auto good = eden_decode_row(enc, n, StreamKey{1, 2, 3, 0});
  const auto bad = eden_decode_row(enc, n, StreamKey{1, 2, 3, 1});
  EXPECT_LT(nmse(good, v), 0.05);
  EXPECT_GT(nmse(bad, v), 0.5);
}

TEST(Eden, ZeroRowStaysZero) {
  const std::vector<float> zeros(256, 0.0f);
  const auto enc = eden_encode_row(zeros, StreamKey{1, 1, 1, 0}, 2);
  EXPECT_FLOAT_EQ(enc.scale, 0.0f);
  const auto dec = eden_decode_row(enc, 256, StreamKey{1, 1, 1, 0});
  for (float x : dec) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(Eden, SkewedInputStillDecodesWell) {
  // The rotation normalizes skew: an all-positive input works as well as a
  // centered one at 4 bits.
  std::vector<float> v(1 << 12);
  Xoshiro256 rng(11);
  for (auto& x : v) x = 2.0f + 0.1f * static_cast<float>(rng.gaussian());
  const StreamKey key{7, 7, 7, 0};
  const auto enc = eden_encode_row(v, key, 4);
  const auto dec = eden_decode_row(enc, v.size(), key);
  EXPECT_LT(nmse(dec, v), 0.03);
}

}  // namespace
}  // namespace trimgrad::core
