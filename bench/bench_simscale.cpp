// Sim-scale benchmark: closed-loop traffic on the 1024-host k=16 fat-tree
// (smoke: k=8, 128 hosts), timed sequentially and sharded across the pool
// at 1/2/4/8 threads. Reports events/sec, the number of hosts the engine
// could carry at real time (hosts * sim_seconds / wall_seconds), and the
// scaling curve — and cross-checks that every execution mode produces the
// same workload digest, the determinism contract the simscale unit tests
// pin at small scale, re-verified here at full scale.
//
// Emits a human-readable table on stdout plus two files:
//   BENCH_simscale.json         timing + scaling (gated by check_bench.py
//                               --simscale against the committed baseline)
//   BENCH_simscale_digest.json  deterministic bytes only (digest, event and
//                               delivery counts, sorted counters) — the CI
//                               determinism matrix diffs this file
//                               byte-for-byte across TRIMGRAD_THREADS and
//                               TRIMGRAD_SIMD settings.
//
// TRIMGRAD_DIGEST_ONLY=1 skips the timing sweep: one parallel run on the
// ambient pool (TRIMGRAD_THREADS-sized), digest file written, exit. That is
// the mode the CI matrix uses, so the pool size under test is the one from
// the environment, not the bench's internal sweep.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/simd.h"
#include "core/threadpool.h"
#include "net/fault_plane.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace {

using Clock = std::chrono::steady_clock;
using trimgrad::core::ThreadPool;
using namespace trimgrad::net;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b + i, 8);
    h = (h ^ w) * 1099511628211ULL;
  }
  for (; i < n; ++i) h = (h ^ b[i]) * 1099511628211ULL;
  return h;
}

template <typename T>
std::uint64_t fnv_pod(std::uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv_bytes(h, &v, sizeof(v));
}

struct RunResult {
  double wall_s = 0;
  double sim_s = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::size_t flows_completed = 0;
  std::uint64_t digest = 0;
};

// Full size targets ~3M events so each 1 us lookahead window carries enough
// work per domain (~50 events) to amortize the barrier on real multicore
// hardware; smoke shrinks to a fast CI-sized run.
struct Workload {
  std::size_t k = 16;
  double poisson_rate = 5e6;  ///< flows/sec across the whole fabric
  SimTime stop = 2e-3;        ///< stop launching background flows
};

/// One full closed-loop run. Builds the fabric fresh (topology construction
/// is outside the timed region), attaches incast bursts + Poisson
/// background, runs to quiescence, and folds every deterministic observable
/// into the digest.
RunResult run_once(const Workload& w, bool parallel) {
  trimgrad::core::MetricsRegistry::global().reset_values();
  Simulator sim;
  FabricConfig fcfg;
  fcfg.edge_link = {100e9, 1e-6};
  fcfg.core_link = {100e9, 1e-6};
  fcfg.switch_queue.policy = QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 30 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const FatTree ft = build_fat_tree(sim, w.k, fcfg);
  partition_fat_tree(sim, ft);
  sim.seal_partition();

  const std::vector<NodeId> hosts = ft.all_hosts();
  TransportConfig tcfg;
  tcfg.retransmit_budget = 64;
  tcfg.flow_deadline = 10e-3;

  // One cross-pod incast per pod: 8 senders dump trimmable bulk at host 0
  // of the pod, staggered so bursts overlap the background load.
  std::vector<std::unique_ptr<IncastPattern>> incasts;
  for (std::size_t p = 0; p < w.k; ++p) {
    IncastPattern::Config icfg;
    icfg.packets_per_sender = 64;
    icfg.trim_size = 88;
    icfg.transport = tcfg;
    icfg.start = 50e-6 * static_cast<double>(p);
    icfg.base_flow_id = static_cast<std::uint32_t>(1000 + 100 * p);
    std::vector<NodeId> senders;
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t pod = (p + 1 + s % (w.k - 1)) % w.k;
      senders.push_back(ft.pod_hosts[pod][s % ft.pod_hosts[pod].size()]);
    }
    incasts.push_back(std::make_unique<IncastPattern>(
        sim, senders, ft.pod_hosts[p][0], icfg));
  }

  PoissonTraffic::Config pcfg;
  pcfg.flows_per_sec = w.poisson_rate;
  pcfg.packets_per_flow = 8;
  pcfg.stop = w.stop;
  pcfg.transport = tcfg;
  PoissonTraffic poisson(sim, hosts, pcfg);

  sim.set_parallel_execution(parallel);
  const auto t0 = Clock::now();
  const SimTime end = sim.run();
  const auto t1 = Clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.sim_s = end;
  r.events = sim.executed_events();
  r.delivered = sim.delivered_frames();
  r.flows_completed = poisson.completed();
  for (const auto& ic : incasts) r.flows_completed += ic->completed_count();

  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& ic : incasts) {
    for (const FlowStats& st : ic->flow_stats()) {
      h = fnv_pod(h, st.end_time);
      h = fnv_pod(h, st.frames_sent);
      h = fnv_pod(h, st.retransmits);
      h = fnv_pod(h, st.acked_full);
      h = fnv_pod(h, st.acked_trimmed);
      h = fnv_pod(h, st.completed);
    }
  }
  for (SimTime fct : poisson.fcts()) h = fnv_pod(h, fct);
  h = fnv_pod(h, r.events);
  h = fnv_pod(h, r.delivered);
  h = fnv_pod(h, sim.now());
  // Counters sorted by name: registration order is first-touch order,
  // which varies across pool sizes; the value set does not.
  auto snap = trimgrad::core::MetricsRegistry::global().snapshot();
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  for (const auto& c : snap.counters) {
    h = fnv_bytes(h, c.name.data(), c.name.size());
    h = fnv_pod(h, c.value);
  }
  r.digest = h;
  return r;
}

void write_digest_json(const Workload& w, const RunResult& r) {
  FILE* f = std::fopen("BENCH_simscale_digest.json", "w");
  if (f == nullptr) return;
  // Deterministic observables only — this file must be byte-identical
  // across TRIMGRAD_THREADS and TRIMGRAD_SIMD settings.
  std::fprintf(f,
               "{\n  \"k\": %zu,\n  \"hosts\": %zu,\n"
               "  \"digest\": \"%016llx\",\n  \"events\": %llu,\n"
               "  \"delivered\": %llu,\n  \"flows_completed\": %zu\n}\n",
               w.k, w.k * w.k * w.k / 4,
               static_cast<unsigned long long>(r.digest),
               static_cast<unsigned long long>(r.events),
               static_cast<unsigned long long>(r.delivered),
               r.flows_completed);
  std::fclose(f);
}

}  // namespace

int main() {
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  const bool digest_only = std::getenv("TRIMGRAD_DIGEST_ONLY") != nullptr;

  Workload w;
  if (smoke || digest_only) {
    w.k = 8;
    w.poisson_rate = 2e5;
    w.stop = 1e-3;
  }
  const std::size_t hosts = w.k * w.k * w.k / 4;

  if (digest_only) {
    // One parallel run on the ambient pool (TRIMGRAD_THREADS-sized): the
    // CI determinism matrix invokes this under each env combination and
    // byte-diffs the digest file.
    const RunResult r = run_once(w, /*parallel=*/true);
    write_digest_json(w, r);
    std::printf("digest %016llx  events %llu  flows %zu  (k=%zu, %zu hosts)\n",
                static_cast<unsigned long long>(r.digest),
                static_cast<unsigned long long>(r.events), r.flows_completed,
                w.k, hosts);
    return 0;
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  // Sequential reference first: warms metric registration and anchors the
  // determinism cross-check.
  ThreadPool::set_global_threads(1);
  const RunResult ref = run_once(w, /*parallel=*/false);

  std::vector<RunResult> runs;
  for (const std::size_t t : thread_counts) {
    ThreadPool::set_global_threads(t);
    runs.push_back(run_once(w, /*parallel=*/true));
  }
  ThreadPool::set_global_threads(1);

  bool deterministic = true;
  for (const RunResult& r : runs) {
    if (r.digest != ref.digest || r.events != ref.events) {
      deterministic = false;
    }
  }

  std::printf("# Sim-scale: k=%zu fat-tree, %zu hosts, %llu events, "
              "%.3f sim ms\n",
              w.k, hosts, static_cast<unsigned long long>(ref.events),
              ref.sim_s * 1e3);
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("# simd isa: %s\n",
              trimgrad::core::simd::to_string(
                  trimgrad::core::simd::active_isa()));
  std::printf("%-12s %10s %12s %10s %14s\n", "mode", "wall s", "events/s",
              "speedup", "hosts@realtime");
  const double seq_eps = ref.events / ref.wall_s;
  std::printf("%-12s %10.4f %12.0f %10s %14.1f\n", "sequential", ref.wall_s,
              seq_eps, "-", hosts * ref.sim_s / ref.wall_s);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::printf("%-12zuT %9.4f %12.0f %9.2fx %14.1f\n", thread_counts[i],
                r.wall_s, r.events / r.wall_s, runs[0].wall_s / r.wall_s,
                hosts * r.sim_s / r.wall_s);
  }
  std::printf("# bit-exact across modes and thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  FILE* f = std::fopen("BENCH_simscale.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"hardware_threads\": %u,\n  \"isa\": \"%s\",\n"
                 "  \"smoke\": %s,\n  \"deterministic\": %s,\n"
                 "  \"k\": %zu,\n  \"hosts\": %zu,\n"
                 "  \"events\": %llu,\n  \"sim_seconds\": %.9f,\n",
                 std::thread::hardware_concurrency(),
                 trimgrad::core::simd::to_string(
                     trimgrad::core::simd::active_isa()),
                 smoke ? "true" : "false", deterministic ? "true" : "false",
                 w.k, hosts, static_cast<unsigned long long>(ref.events),
                 ref.sim_s);
    std::fprintf(f, "  \"sequential\": {\"seconds\": %.6f, "
                 "\"events_per_sec\": %.1f},\n",
                 ref.wall_s, seq_eps);
    std::fprintf(f, "  \"thread_counts\": [");
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", thread_counts[i]);
    }
    std::fprintf(f, "],\n  \"seconds\": [");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f, "%s%.6f", i ? ", " : "", runs[i].wall_s);
    }
    std::fprintf(f, "],\n  \"events_per_sec\": [");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f, "%s%.1f", i ? ", " : "", runs[i].events / runs[i].wall_s);
    }
    std::fprintf(f, "],\n  \"speedup\": [");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f, "%s%.3f", i ? ", " : "", runs[0].wall_s / runs[i].wall_s);
    }
    std::fprintf(f, "],\n  \"hosts_realtime\": [");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f, "%s%.1f", i ? ", " : "",
                   hosts * runs[i].sim_s / runs[i].wall_s);
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_simscale.json\n");
  }
  write_digest_json(w, runs.back());
  std::printf("# wrote BENCH_simscale_digest.json\n");
  return deterministic ? 0 : 1;
}
