file(REMOVE_RECURSE
  "CMakeFiles/test_net_injector.dir/net/injector_test.cpp.o"
  "CMakeFiles/test_net_injector.dir/net/injector_test.cpp.o.d"
  "test_net_injector"
  "test_net_injector.pdb"
  "test_net_injector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
