#include "core/rht_codec.h"

#include <cassert>

#include "core/bitpack.h"
#include "core/hadamard.h"
#include "core/metrics.h"
#include "core/simd.h"
#include "core/stats.h"

namespace trimgrad::core {

namespace {
constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kMagMask = 0x7fffffffu;

// Row codecs run inside parallel_for workers — counter increments go to
// per-thread shards, whose integer reduction keeps snapshots bit-identical
// for any pool size.
struct RhtTelemetry {
  Counter rows_encoded, rows_decoded;

  static const RhtTelemetry& get() {
    static const RhtTelemetry t{
        MetricsRegistry::global().counter("codec.rht.rows_encoded"),
        MetricsRegistry::global().counter("codec.rht.rows_decoded"),
    };
    return t;
  }
};

}  // namespace

float rht_coord_from_parts(bool head, std::uint32_t tail) noexcept {
  // head = 1 means non-negative; tail carries exponent+mantissa.
  return bits_float((head ? 0u : kSignMask) | (tail & kMagMask));
}

float rht_coord_trimmed(bool head, float scale_f) noexcept {
  return head ? scale_f : -scale_f;
}

RhtEncodedRow rht_encode_row(std::span<const float> row, const StreamKey& key) {
  std::vector<float> rotated(row.begin(), row.end());
  RhtEncodedRow out;
  rht_encode_row_inplace(rotated, key, out);
  return out;
}

void rht_encode_row_inplace(std::span<float> row, const StreamKey& key,
                            RhtEncodedRow& out) {
  assert(is_pow2(row.size()));
  // ‖V‖₂² before the in-place rotation clobbers V. The rotation is
  // orthonormal so ‖V‖₂² = ‖R‖₂²; using the pre-rotation norm follows the
  // paper exactly. (Scalar double-accumulator reduction: order-sensitive
  // rounding, deliberately not vectorized — see simd.h.)
  const double l2_sq = l2_norm_sq(row);
  SharedRng rng(key);
  rht_inplace(row, rng);

  out.heads.resize(row.size());
  out.tails.resize(row.size());
  simd::split_sign_mag(row.data(), row.size(), out.heads.data(),
                       out.tails.data());

  // Unbiased scale f = ‖V‖₂² / ‖R‖₁.
  const double l1 = l1_norm(row);
  out.scale_f = l1 > 0.0 ? static_cast<float>(l2_sq / l1) : 0.0f;
  RhtTelemetry::get().rows_encoded.add();
}

std::vector<float> rht_decode_row(std::span<const std::uint8_t> heads,
                                  std::span<const std::uint32_t> tails,
                                  std::span<const std::uint8_t> trimmed,
                                  float scale_f, const StreamKey& key) {
  std::vector<float> r_hat;
  rht_decode_row_into(heads, tails, trimmed, scale_f, key, r_hat);
  return r_hat;
}

void rht_decode_row_into(std::span<const std::uint8_t> heads,
                         std::span<const std::uint32_t> tails,
                         std::span<const std::uint8_t> trimmed, float scale_f,
                         const StreamKey& key, std::vector<float>& r_hat) {
  r_hat.resize(heads.size());
  rht_decode_row_to(heads, tails, trimmed, scale_f, key, r_hat);
}

void rht_decode_row_to(std::span<const std::uint8_t> heads,
                       std::span<const std::uint32_t> tails,
                       std::span<const std::uint8_t> trimmed, float scale_f,
                       const StreamKey& key, std::span<float> r_hat) {
  assert(heads.size() == tails.size());
  assert(heads.size() == trimmed.size());
  assert(heads.size() == r_hat.size());
  assert(is_pow2(heads.size()));

  // scale_f = ‖V‖₂²/‖R‖₁ >= 0, so the kernel's sign-bit composition of
  // ±scale is bit-identical to rht_coord_trimmed's arithmetic negate.
  simd::join_sign_mag(heads.data(), tails.data(), trimmed.data(), scale_f,
                      r_hat.data(), heads.size());
  SharedRng rng(key);
  irht_inplace(r_hat, rng);
  RhtTelemetry::get().rows_decoded.add();
}

}  // namespace trimgrad::core
