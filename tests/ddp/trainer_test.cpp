// DDP trainer integration: distributed training through the full trimmable
// pipeline must learn, and must degrade in the paper's ordering.
#include "ddp/trainer.h"

#include <gtest/gtest.h>

#include "collective/inject_channel.h"
#include "collective/sim_channel.h"
#include "net/topology.h"

namespace trimgrad::ddp {
namespace {

ml::SynthCifarConfig tiny_data() {
  ml::SynthCifarConfig cfg;
  cfg.classes = 10;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 16;
  cfg.test_per_class = 8;
  cfg.proto_grid = 3;
  return cfg;
}

TrainerConfig tiny_trainer(core::Scheme scheme) {
  TrainerConfig cfg;
  cfg.world = 4;
  cfg.global_batch = 32;
  cfg.epochs = 6;
  cfg.sgd.lr = 0.05f;
  cfg.codec.scheme = scheme;
  cfg.codec.rht_row_len = 1 << 10;
  cfg.eval_every = 1;
  return cfg;
}

DdpTrainer::ModelFactory mlp_factory() {
  return [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  };
}

collective::InjectChannel make_channel(int world, double trim_rate,
                                       bool reliable = false) {
  collective::InjectChannel::Config ccfg;
  ccfg.world = world;
  ccfg.injector.trim_rate = trim_rate;
  ccfg.reliable = reliable;
  return collective::InjectChannel(ccfg);
}

TEST(DdpTrainer, CleanChannelMatchesAccuracyOfTrimFreeRun) {
  auto channel = make_channel(4, 0.0);
  ml::SynthCifar data(tiny_data());
  DdpTrainer trainer(data, channel, tiny_trainer(core::Scheme::kRHT),
                     mlp_factory());
  const auto records = trainer.train();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_GT(records.back().top1, 0.35);  // 10 classes, random = 0.1
  EXPECT_GT(records.back().top1, records.front().top1);
}

TEST(DdpTrainer, SimTimeIsMonotone) {
  auto channel = make_channel(4, 0.0);
  ml::SynthCifar data(tiny_data());
  auto cfg = tiny_trainer(core::Scheme::kSQ);
  cfg.epochs = 3;
  DdpTrainer trainer(data, channel, cfg, mlp_factory());
  const auto records = trainer.train();
  double prev = 0;
  for (const auto& r : records) {
    EXPECT_GT(r.sim_time_s, prev);
    prev = r.sim_time_s;
    EXPECT_GT(r.mean_round.compute_s, 0.0);
    EXPECT_GT(r.mean_round.comm_s, 0.0);
  }
}

TEST(DdpTrainer, ReplicasStayIdenticalWithoutTrimming) {
  auto channel = make_channel(4, 0.0);
  ml::SynthCifar data(tiny_data());
  auto cfg = tiny_trainer(core::Scheme::kRHT);
  cfg.epochs = 2;
  DdpTrainer trainer(data, channel, cfg, mlp_factory());
  const auto records = trainer.train();
  // Untrimmed RHT decodes near-exactly, so replicas stay in lockstep.
  EXPECT_LT(records.back().replica_divergence, 1e-3);
}

TEST(DdpTrainer, TrimmingCausesBoundedReplicaDrift) {
  auto channel = make_channel(4, 0.3);
  ml::SynthCifar data(tiny_data());
  auto cfg = tiny_trainer(core::Scheme::kRHT);
  cfg.epochs = 2;
  DdpTrainer trainer(data, channel, cfg, mlp_factory());
  const auto records = trainer.train();
  EXPECT_GT(records.back().trimmed_packets, 0u);
  EXPECT_GT(records.back().replica_divergence, 0.0);
  EXPECT_LT(records.back().replica_divergence, 1.0);
}

// Run one (scheme, trim-rate) cell on the *heterogeneous* setup that
// exposes the paper's scheme ordering: a conv net (whose per-layer gradient
// scales differ widely, so one message-wide sigma is destructive) on a task
// with a real noise floor. Mirrors bench/ddp_sweep.h.
std::vector<EpochRecord> run_hetero_cell(core::Scheme scheme,
                                         double trim_rate) {
  ml::SynthCifarConfig dcfg;
  dcfg.classes = 20;
  dcfg.height = dcfg.width = 16;
  dcfg.train_per_class = 30;
  dcfg.test_per_class = 10;
  dcfg.noise = 1.5f;
  ml::SynthCifar data(dcfg);

  collective::InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = trim_rate;
  collective::InjectChannel channel(ccfg);

  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 60;
  tcfg.epochs = 8;
  tcfg.sgd.lr = 0.03f;
  tcfg.codec.scheme = scheme;
  tcfg.codec.rht_row_len = std::size_t{1} << 12;
  DdpTrainer trainer(data, channel, tcfg, [&dcfg] {
    ml::ModelConfig mcfg;
    mcfg.classes = dcfg.classes;
    mcfg.height = dcfg.height;
    mcfg.width = dcfg.width;
    return ml::make_mini_vgg(mcfg, 6);
  });
  return trainer.train();
}

TEST(DdpTrainer, RhtSurvivesHeavyTrimmingWhereSignAndSqDegrade) {
  // The core Fig. 3 claim at the test scale: at 50 % trimming, RHT keeps
  // learning while sign-magnitude and SQ fall toward chance (5 %).
  const auto rht = run_hetero_cell(core::Scheme::kRHT, 0.5);
  const auto sign = run_hetero_cell(core::Scheme::kSign, 0.5);
  const auto sq = run_hetero_cell(core::Scheme::kSQ, 0.5);
  EXPECT_GT(rht.back().top1, 0.15);
  EXPECT_GT(rht.back().top1, sign.back().top1 + 0.05);
  EXPECT_GT(rht.back().top1, sq.back().top1 + 0.05);
  EXPECT_LT(rht.back().train_loss, sign.back().train_loss);
  EXPECT_LT(rht.back().train_loss, sq.back().train_loss);
}

TEST(DdpTrainer, TrainsEndToEndOverTheSimulatedFabric) {
  // Full-stack integration: DDP where every gradient transfer is a real
  // flow through trimming switches (SimChannel) — trimming *emerges* from
  // queue overflow, and training still learns.
  net::Simulator sim;
  net::FabricConfig fcfg;
  fcfg.core_link = {10e9, 1e-6};
  fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const net::Dumbbell topo = net::build_dumbbell(sim, 2, 2, fcfg);
  std::vector<net::NodeId> ranks = {topo.left_hosts[0], topo.left_hosts[1],
                                    topo.right_hosts[0], topo.right_hosts[1]};
  collective::SimChannel channel(sim, ranks, collective::SimChannel::Config{});

  ml::SynthCifar data(tiny_data());
  auto cfg = tiny_trainer(core::Scheme::kRHT);
  cfg.epochs = 5;
  DdpTrainer trainer(data, channel, cfg, mlp_factory());
  const auto records = trainer.train();

  EXPECT_GT(records.back().top1, 0.3);
  EXPECT_GT(records.back().trimmed_packets, 0u)
      << "the shallow fabric should have trimmed emergently";
  EXPECT_GT(records.back().sim_time_s, 0.0);
}

TEST(DdpTrainer, SignDegradesAtTwoPercentTrim) {
  // §3.1: "this simple method severely affects training convergence, even
  // with only 2% of packets being trimmed". At test scale: a measurable
  // top-5 drop vs its own clean run.
  const auto clean = run_hetero_cell(core::Scheme::kSign, 0.0);
  const auto trimmed = run_hetero_cell(core::Scheme::kSign, 0.02);
  EXPECT_LT(trimmed.back().top5, clean.back().top5 - 0.05);
}

TEST(DdpTrainer, BaselineReliableLearnsButPaysCommTime) {
  ml::SynthCifar data(tiny_data());
  auto clean = make_channel(4, 0.0, /*reliable=*/true);
  auto cfg = tiny_trainer(core::Scheme::kBaseline);
  cfg.epochs = 3;
  DdpTrainer no_drop(data, clean, cfg, mlp_factory());
  const auto quiet = no_drop.train();

  auto congested = make_channel(4, 0.05, /*reliable=*/true);
  DdpTrainer dropping(data, congested, cfg, mlp_factory());
  const auto noisy = dropping.train();

  // Identical learning (retransmission restores every gradient bit)...
  EXPECT_NEAR(quiet.back().train_loss, noisy.back().train_loss, 1e-6);
  // ...but congestion inflates communication time.
  EXPECT_GT(noisy.back().sim_time_s, quiet.back().sim_time_s);
  EXPECT_GT(noisy.back().retransmits, 0u);
}

TEST(DdpTrainer, BucketingSplitsTheMessageWithoutChangingResults) {
  ml::SynthCifar data(tiny_data());
  auto c1 = make_channel(4, 0.0);
  auto cfg1 = tiny_trainer(core::Scheme::kSD);
  cfg1.epochs = 2;
  DdpTrainer one_bucket(data, c1, cfg1, mlp_factory());
  const auto r1 = one_bucket.train();

  auto c2 = make_channel(4, 0.0);
  auto cfg2 = cfg1;
  cfg2.bucket_floats = 1024;  // many buckets
  DdpTrainer many_buckets(data, c2, cfg2, mlp_factory());
  const auto r2 = many_buckets.train();

  // Same data, same seeds, no trimming: training should track closely
  // (bucket boundaries change SD dither streams, hence not bit-identical).
  EXPECT_NEAR(r1.back().train_loss, r2.back().train_loss, 0.15);
}

}  // namespace
}  // namespace trimgrad::ddp
