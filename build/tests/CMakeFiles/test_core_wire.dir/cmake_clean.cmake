file(REMOVE_RECURSE
  "CMakeFiles/test_core_wire.dir/core/wire_test.cpp.o"
  "CMakeFiles/test_core_wire.dir/core/wire_test.cpp.o.d"
  "test_core_wire"
  "test_core_wire.pdb"
  "test_core_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
