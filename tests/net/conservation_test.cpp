// Fabric-wide invariants under randomized load: nothing is silently lost,
// queue accounting balances, and completion implies delivery.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

struct QueueTotals {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  bool all_empty = true;
};

QueueTotals totals(Simulator& sim, std::size_t node_count) {
  QueueTotals t;
  for (NodeId id = 0; id < node_count; ++id) {
    auto& node = sim.node(id);
    for (std::size_t p = 0; p < node.port_count(); ++p) {
      const auto& q = node.port(p).queue();
      t.enqueued += q.counters().enqueued;
      t.dequeued += q.counters().dequeued;
      t.dropped += q.counters().dropped;
      t.trimmed += q.counters().trimmed;
      t.all_empty = t.all_empty && q.empty();
    }
  }
  return t;
}

class PolicySweep : public ::testing::TestWithParam<QueuePolicy> {};

TEST_P(PolicySweep, QueueAccountingBalancesUnderRandomLoad) {
  Simulator sim;
  FabricConfig cfg;
  cfg.core_link = {20e9, 1e-6};
  cfg.switch_queue.policy = GetParam();
  cfg.switch_queue.capacity_bytes = 20 * 1024;
  const Dumbbell topo = build_dumbbell(sim, 4, 4, cfg);
  std::vector<NodeId> hosts = topo.left_hosts;
  hosts.insert(hosts.end(), topo.right_hosts.begin(), topo.right_hosts.end());

  PoissonTraffic::Config pcfg;
  pcfg.flows_per_sec = 5e5;
  pcfg.stop = 1e-3;
  pcfg.packets_per_flow = 12;
  pcfg.trim_size = GetParam() == QueuePolicy::kTrim ? 88 : 0;
  pcfg.transport = GetParam() == QueuePolicy::kTrim
                       ? TransportConfig::trim_aware()
                       : TransportConfig::reliable();
  PoissonTraffic bg(sim, hosts, pcfg);
  sim.run();

  const QueueTotals t = totals(sim, sim.node_count());
  // At quiescence every accepted frame was transmitted.
  EXPECT_TRUE(t.all_empty);
  EXPECT_EQ(t.enqueued, t.dequeued);
  // Every launched flow completed (reliable: retransmits; trim-aware:
  // trims count as delivery).
  EXPECT_EQ(bg.completed(), bg.launched());
  EXPECT_GT(bg.launched(), 50u);
}

TEST_P(PolicySweep, DropTailNeverTrimsAndTrimPolicyRarelyDrops) {
  Simulator sim;
  FabricConfig cfg;
  cfg.core_link = {10e9, 1e-6};
  cfg.switch_queue.policy = GetParam();
  cfg.switch_queue.capacity_bytes = 15 * 1024;
  const Dumbbell topo = build_dumbbell(sim, 6, 1, cfg);

  IncastPattern::Config icfg;
  icfg.packets_per_sender = 128;
  icfg.trim_size = GetParam() == QueuePolicy::kTrim ? 88 : 0;
  icfg.transport = GetParam() == QueuePolicy::kTrim
                       ? TransportConfig::trim_aware()
                       : TransportConfig::reliable();
  IncastPattern incast(sim, topo.left_hosts, topo.right_hosts[0], icfg);
  sim.run();
  EXPECT_EQ(incast.completed_count(), topo.left_hosts.size());

  const QueueTotals t = totals(sim, sim.node_count());
  if (GetParam() == QueuePolicy::kDropTail) {
    EXPECT_EQ(t.trimmed, 0u);
    EXPECT_GT(t.dropped, 0u);  // 6-to-1 incast must overflow 15 KB
  } else {
    EXPECT_GT(t.trimmed, 0u);
    // Headers queue is sized to absorb the trims of this incast.
    EXPECT_EQ(t.dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(QueuePolicy::kDropTail,
                                           QueuePolicy::kTrim),
                         [](const ::testing::TestParamInfo<QueuePolicy>& i) {
                           return to_string(i.param);
                         });

TEST(Conservation, DeliveredFramesMatchesDequeues) {
  // Every dequeued frame is delivered to exactly one node after its link
  // delay (no duplication, no loss in flight).
  Simulator sim;
  FabricConfig cfg;
  const Dumbbell topo = build_dumbbell(sim, 2, 2, cfg);
  ManagedFlow flow(sim, topo.left_hosts[0], topo.right_hosts[0], 1,
                   TransportConfig::reliable(), 50);
  flow.start_at(0.0, make_bulk_items(50, 1500, 0));
  sim.run();
  const QueueTotals t = totals(sim, sim.node_count());
  EXPECT_EQ(sim.delivered_frames(), t.dequeued);
}

TEST(Conservation, EcnMarksPropagateEndToEnd) {
  Simulator sim;
  FabricConfig cfg;
  cfg.core_link = {10e9, 1e-6};
  cfg.switch_queue.policy = QueuePolicy::kEcn;
  cfg.switch_queue.capacity_bytes = 60 * 1024;
  cfg.switch_queue.ecn_threshold_bytes = 10 * 1024;
  const Dumbbell topo = build_dumbbell(sim, 4, 1, cfg);

  std::size_t marked = 0;
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  for (std::size_t i = 0; i < 4; ++i) {
    auto f = std::make_unique<ManagedFlow>(
        sim, topo.left_hosts[i], topo.right_hosts[0],
        static_cast<std::uint32_t>(i + 1), TransportConfig::reliable(), 64,
        [&](const Frame& fr) { marked += fr.ecn ? 1 : 0; });
    f->start_at(0.0, make_bulk_items(64, 1500, 0));
    flows.push_back(std::move(f));
  }
  sim.run();
  EXPECT_GT(marked, 0u) << "4-to-1 incast above the ECN threshold must mark";
}

}  // namespace
}  // namespace trimgrad::net
