// Thread-count invariance of the parallelized codecs (the ISSUE 2
// contract): the wire bytes an encoder emits and the floats a decoder
// recovers must be byte-identical whether the global pool has 1, 2, or 8
// threads. Trimmed and dropped packets are part of the check — trimming is
// where coordinate accounting is easiest to get wrong under reordering.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/codec.h"
#include "core/eden.h"
#include "core/multilevel.h"
#include "core/prng.h"
#include "core/threadpool.h"

namespace trimgrad::core {
namespace {

const std::vector<std::size_t> kPoolSizes = {1, 2, 8};

std::vector<float> test_gradient(std::size_t n) {
  Xoshiro256 rng(42);
  std::vector<float> g(n);
  for (auto& x : g) x = rng.uniform(-2.0f, 2.0f);
  return g;
}

/// Every header field and payload byte of a packet, flattened — "what went
/// on the wire", so byte-equality means wire-equality.
std::vector<std::uint8_t> wire_image(const std::vector<GradientPacket>& pkts) {
  std::vector<std::uint8_t> out;
  for (const auto& p : pkts) {
    const std::uint32_t hdr[4] = {p.msg_id, p.row_id, p.coord_base,
                                  (std::uint32_t(p.n_coords) << 16) | p.seq};
    const auto* hb = reinterpret_cast<const std::uint8_t*>(hdr);
    out.insert(out.end(), hb, hb + sizeof(hdr));
    out.push_back(static_cast<std::uint8_t>(p.scheme));
    out.push_back(p.p_bits);
    out.push_back(p.q_bits);
    out.push_back(p.trimmed ? 1 : 0);
    out.insert(out.end(), p.head_region.begin(), p.head_region.end());
    out.insert(out.end(), p.tail_region.begin(), p.tail_region.end());
  }
  return out;
}

std::vector<std::uint8_t> float_image(const std::vector<float>& v) {
  std::vector<std::uint8_t> out(v.size() * sizeof(float));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

TEST(Determinism, RhtEncodeTrimDecodeInvariantAcrossPoolSizes) {
  // 100k coords at row_len 4096 → 25 rows, enough to split across 8 threads.
  const auto grad = test_gradient(100000);
  CodecConfig cfg;
  cfg.scheme = Scheme::kRHT;
  cfg.rht_row_len = std::size_t{1} << 12;

  std::vector<std::uint8_t> ref_wire, ref_values;
  std::vector<float> ref_scales;
  for (const std::size_t threads : kPoolSizes) {
    ThreadPool::set_global_threads(threads);
    TrimmableEncoder enc(cfg);
    auto msg = enc.encode(grad, /*msg_id=*/3, /*epoch=*/2);

    // Congestion: trim every 3rd packet, drop every 7th.
    std::vector<GradientPacket> delivered;
    for (std::size_t i = 0; i < msg.packets.size(); ++i) {
      if (i % 7 == 0) continue;
      if (i % 3 == 0) msg.packets[i].trim();
      delivered.push_back(msg.packets[i]);
    }
    const auto wire = wire_image(delivered);

    TrimmableDecoder dec(cfg);
    const auto result = dec.decode(delivered, msg.meta);
    const auto values = float_image(result.values);

    if (threads == kPoolSizes.front()) {
      ref_wire = wire;
      ref_values = values;
      ref_scales = msg.meta.row_scales;
      ASSERT_GT(msg.packets.size(), 8u);
    } else {
      EXPECT_EQ(wire, ref_wire) << "wire bytes differ at " << threads;
      EXPECT_EQ(values, ref_values) << "decoded floats differ at " << threads;
      EXPECT_EQ(msg.meta.row_scales, ref_scales);
    }
  }
  ThreadPool::set_global_threads(1);
}

TEST(Determinism, RhtPacketSeqMatchesSequentialOrder) {
  const auto grad = test_gradient(50000);
  CodecConfig cfg;
  cfg.scheme = Scheme::kRHT;
  cfg.rht_row_len = std::size_t{1} << 12;
  ThreadPool::set_global_threads(8);
  TrimmableEncoder enc(cfg);
  const auto msg = enc.encode(grad, 1, 1);
  // Rows are encoded in parallel into pre-sized slots; the emitted order
  // must still be the sequential one: seq == position, rows ascending.
  for (std::size_t i = 0; i < msg.packets.size(); ++i) {
    EXPECT_EQ(msg.packets[i].seq, static_cast<std::uint16_t>(i));
    if (i > 0) {
      EXPECT_GE(msg.packets[i].row_id, msg.packets[i - 1].row_id);
    }
  }
  ThreadPool::set_global_threads(1);
}

TEST(Determinism, MultilevelInvariantAcrossPoolSizes) {
  const auto grad = test_gradient(60000);
  MultilevelCodec::Config cfg;
  cfg.row_len = std::size_t{1} << 12;

  std::vector<std::uint8_t> ref_wire, ref_values;
  for (const std::size_t threads : kPoolSizes) {
    ThreadPool::set_global_threads(threads);
    MultilevelCodec codec(cfg);
    auto msg = codec.encode(grad, 5, 1);

    std::vector<MlPacket> delivered;
    for (std::size_t i = 0; i < msg.packets.size(); ++i) {
      if (i % 11 == 0) continue;
      if (i % 3 == 0) msg.packets[i].trim_to(TrimLevel::kMid);
      if (i % 5 == 0) msg.packets[i].trim_to(TrimLevel::kHead);
      delivered.push_back(msg.packets[i]);
    }
    std::vector<std::uint8_t> wire;
    for (const auto& p : delivered) {
      wire.push_back(static_cast<std::uint8_t>(p.level));
      wire.insert(wire.end(), p.region_a.begin(), p.region_a.end());
      wire.insert(wire.end(), p.region_b.begin(), p.region_b.end());
      wire.insert(wire.end(), p.region_c.begin(), p.region_c.end());
    }
    const auto values = float_image(codec.decode(delivered, msg.meta));

    if (threads == kPoolSizes.front()) {
      ref_wire = wire;
      ref_values = values;
    } else {
      EXPECT_EQ(wire, ref_wire) << "wire bytes differ at " << threads;
      EXPECT_EQ(values, ref_values) << "decoded floats differ at " << threads;
    }
  }
  ThreadPool::set_global_threads(1);
}

TEST(Determinism, EdenMessageInvariantAcrossPoolSizes) {
  const auto grad = test_gradient(70000);

  std::vector<std::vector<std::uint32_t>> ref_codes;
  std::vector<float> ref_scales;
  std::vector<std::uint8_t> ref_values;
  for (const std::size_t threads : kPoolSizes) {
    ThreadPool::set_global_threads(threads);
    const auto msg =
        eden_encode_message(grad, /*seed=*/9, /*epoch=*/1, /*msg_id=*/2,
                            /*bits=*/4, /*row_len=*/std::size_t{1} << 12);
    std::vector<std::vector<std::uint32_t>> codes;
    std::vector<float> scales;
    for (const auto& r : msg.rows) {
      codes.push_back(r.codes);
      scales.push_back(r.scale);
    }
    const auto values = float_image(eden_decode_message(msg, 9, 1, 2));

    if (threads == kPoolSizes.front()) {
      ref_codes = codes;
      ref_scales = scales;
      ref_values = values;
    } else {
      EXPECT_EQ(codes, ref_codes) << "codes differ at " << threads;
      EXPECT_EQ(scales, ref_scales) << "scales differ at " << threads;
      EXPECT_EQ(values, ref_values) << "decoded floats differ at " << threads;
    }
  }
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace trimgrad::core
