// Distributed data-parallel training under heavy trimming.
//
//   $ ./examples/distributed_training [trim_rate] [scheme]
//     trim_rate: fraction of gradient packets trimmed (default 0.25)
//     scheme:    baseline | sign | sq | sd | rht   (default rht)
//
// Four workers train a small convnet on SynthCIFAR while the configured
// fraction of gradient packets is trimmed in flight — the paper's §4 setup
// at laptop scale. Watch top-1 accuracy climb despite the congestion.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "collective/inject_channel.h"
#include "ddp/trainer.h"

namespace {

trimgrad::core::Scheme parse_scheme(const char* s) {
  using trimgrad::core::Scheme;
  if (std::strcmp(s, "baseline") == 0) return Scheme::kBaseline;
  if (std::strcmp(s, "sign") == 0) return Scheme::kSign;
  if (std::strcmp(s, "sq") == 0) return Scheme::kSQ;
  if (std::strcmp(s, "sd") == 0) return Scheme::kSD;
  return Scheme::kRHT;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trimgrad;

  const double trim_rate = argc > 1 ? std::atof(argv[1]) : 0.25;
  const core::Scheme scheme = parse_scheme(argc > 2 ? argv[2] : "rht");

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 20;
  dcfg.height = dcfg.width = 16;
  dcfg.train_per_class = 40;
  dcfg.test_per_class = 10;
  ml::SynthCifar data(dcfg);

  collective::InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = trim_rate;
  // Baseline cannot use trimmed packets: the reliable transport retransmits.
  ccfg.reliable = scheme == core::Scheme::kBaseline;
  collective::InjectChannel channel(ccfg);

  ddp::TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 64;
  tcfg.epochs = 10;
  tcfg.sgd.lr = 0.02f;
  tcfg.codec.scheme = scheme;
  tcfg.codec.rht_row_len = std::size_t{1} << 12;

  ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg] {
    ml::ModelConfig mcfg;
    mcfg.classes = dcfg.classes;
    mcfg.channels = dcfg.channels;
    mcfg.height = dcfg.height;
    mcfg.width = dcfg.width;
    return ml::make_mini_vgg(mcfg, 8);
  });

  std::printf("4 workers, scheme=%s, trim_rate=%.0f%%\n",
              core::to_string(scheme), trim_rate * 100);
  std::printf("%5s %10s %9s %8s %8s %12s %10s\n", "epoch", "sim_time_s",
              "loss", "top1", "top5", "trimmed_pkts", "retx");
  const auto records = trainer.train();
  for (const auto& r : records) {
    std::printf("%5zu %10.3f %9.4f %8.3f %8.3f %12zu %10llu\n", r.epoch,
                r.sim_time_s, r.train_loss, r.top1, r.top5, r.trimmed_packets,
                static_cast<unsigned long long>(r.retransmits));
  }
  return 0;
}
