// Shared per-flow machinery composed by every sender/receiver transport.
//
// The window (net/transport.h), pull (net/pull_transport.h), and ECN
// (net/ecn_transport.h) transports differ only in how they *clock* new
// packets onto the wire (fixed window, receiver pulls, DCTCP window).
// Everything else — the sequence bookkeeping, RTO exponential backoff to
// `rto_cap`, the retransmit budget and flow deadline give-up paths,
// abort(), `FlowStats`, and metrics/trace emission — is one state machine.
// `FlowCore` is that state machine; transports own one and drive it from
// their frame handlers instead of reimplementing it.
//
// `ReceiverCore` is the matching receive side: in-order reassembly,
// duplicate re-ACK, corrupt-frame NACK (core/wire.* checksum verdicts),
// and the trim-accept/trim-reject policy, parameterized by what the
// transport's ACKs must carry (cumulative ack, ECN echo).
//
// Semantics note (the merge fixed a drift): `FlowStats::retransmits`
// counts retransmission *attempts* (frames re-sent), not unique sequence
// numbers — a packet retransmitted three times contributes three. The
// retransmit budget is therefore a cap on recovery work, not on distinct
// losses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host.h"
#include "net/sim.h"

namespace trimgrad::net {

struct FlowStats {
  SimTime start_time = 0;
  SimTime end_time = 0;
  std::size_t packets = 0;          ///< message size in packets
  std::uint64_t frames_sent = 0;    ///< data frames incl. retransmissions
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;    ///< retransmission attempts (see above)
  std::uint64_t acked_full = 0;     ///< packets delivered with tails intact
  std::uint64_t acked_trimmed = 0;  ///< packets delivered trimmed
  bool completed = false;
  bool failed = false;  ///< gave up: budget/deadline exhausted or aborted

  SimTime fct() const noexcept { return end_time - start_time; }
};

struct ReceiverStats {
  std::size_t expected = 0;
  std::size_t delivered_full = 0;
  std::size_t delivered_trimmed = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t corrupt_frames = 0;  ///< checksum-mismatch arrivals, NACKed
  SimTime first_frame_time = 0;
  SimTime complete_time = 0;
};

/// Test-only mutation hook: while set, ReceiverCore silently swallows
/// corrupt frames instead of NACKing them. Exists so the invariants tests
/// can prove the conservation monitor catches a broken recovery path; never
/// set outside tests.
void test_set_swallow_corrupt_frames(bool on) noexcept;
bool test_swallow_corrupt_frames() noexcept;

/// Fold a completed flow's stats into the global MetricsRegistry
/// (net.transport.* counters) and record a "flow" complete event spanning
/// start_time..end_time on the global trace. FlowCore calls this from its
/// complete()/fail() paths, so every transport reports uniformly.
void record_flow_telemetry(const FlowStats& stats);

/// One packet of an outgoing message.
struct SendItem {
  std::size_t size_bytes = 1500;
  std::size_t trim_size_bytes = 0;  ///< 0 = never trimmable (e.g. metadata)
  std::shared_ptr<const core::GradientPacket> cargo;  ///< optional data plane
};

/// Sender-side flow state machine. A transport owns one FlowCore per flow
/// and layers its clocking discipline (window, pulls, ECN window) on top.
class FlowCore {
 public:
  /// Recovery limits shared by all transports. 0 disables budget/deadline;
  /// without them a flow crossing a dead link re-arms its RTO timer forever
  /// and the event queue never drains.
  struct Limits {
    SimTime rto = 0;                    ///< initial retransmission timeout
    SimTime rto_cap = 0;                ///< exponential backoff ceiling
    std::size_t retransmit_budget = 0;  ///< max retransmissions before failing
    SimTime flow_deadline = 0;          ///< max flow age before failing
  };

  FlowCore(Host& host, NodeId dst, std::uint32_t flow_id)
      : host_(host), dst_(dst), flow_id_(flow_id) {}

  /// Reset per-message state, arm the flow deadline (if limited), and take
  /// ownership of the completion callback. Returns true when the message
  /// was empty and the flow already completed — the caller must not send.
  /// `timeout_extra` (optional) runs inside the RTO handler after the
  /// oldest-unacked retransmission, before backoff (the pull transport
  /// nudges a new packet there in case the pull stream stalled).
  bool begin(std::vector<SendItem> items, const Limits& limits,
             std::function<void(const FlowStats&)> on_complete,
             std::function<void()> timeout_extra = {});

  /// Give up on the in-flight message now. No-op when not active.
  void abort();

  // -- transmission -------------------------------------------------------
  /// Emit the data frame for `seq` (fresh or retransmission), updating
  /// last-sent time and frame/byte/retransmit stats. Returns true when this
  /// was the first-ever transmission of `seq` (window transports count it
  /// into their in-flight tally).
  bool emit_data(std::uint32_t seq, bool is_retransmit);
  /// Emit the next never-sent packet, if any.
  void send_next_new();
  /// Retransmit the oldest sent-but-unacked packet, if any.
  void retransmit_oldest();

  // -- acknowledgement ----------------------------------------------------
  /// Mark `seq` acknowledged. Returns true only for a fresh ACK (in-range,
  /// not yet acked), in which case the trimmed/full tally is updated and
  /// the backed-off RTO resets to its base (forward progress). The caller
  /// re-arms the timer — explicitly, so its event lands in transport order.
  bool mark_acked(std::uint32_t seq, bool was_trimmed);
  /// Handle a NACK for `seq`: retransmit iff unacked and at least half an
  /// RTO has passed since the last send — an immediate resend into a
  /// still-congested queue would just be trimmed again (livelock). Fails
  /// the flow instead when the retransmit budget is exhausted.
  void handle_nack(std::uint32_t seq);
  /// Fast retransmit of cumulative-ACK hole `seq` (same half-RTO pacing).
  void fast_retransmit(std::uint32_t seq);

  // -- timers -------------------------------------------------------------
  /// (Re)arm the RTO timer at the current backed-off value. The previous
  /// timer, if any, is invalidated (epoch bump).
  void arm_timer();

  // -- terminal states ----------------------------------------------------
  void complete();
  void fail();

  // -- observers ----------------------------------------------------------
  bool active() const noexcept { return active_; }
  const FlowStats& stats() const noexcept { return stats_; }
  /// Current backed-off RTO (tests pin the rto_cap ceiling through this).
  SimTime current_rto() const noexcept { return rto_cur_; }
  bool budget_exhausted() const noexcept {
    return limits_.retransmit_budget > 0 &&
           stats_.retransmits >= limits_.retransmit_budget;
  }
  std::size_t size() const noexcept { return items_.size(); }
  bool all_acked() const noexcept { return acked_count_ == items_.size(); }
  bool has_unsent() const noexcept { return next_new_ < items_.size(); }
  bool in_range(std::uint32_t seq) const noexcept {
    return seq < items_.size();
  }
  bool is_acked(std::uint32_t seq) const noexcept {
    return acked_[seq] != 0;
  }

 private:
  void on_timeout(std::uint64_t epoch);

  Host& host_;
  NodeId dst_;
  std::uint32_t flow_id_;
  Limits limits_;

  std::vector<SendItem> items_;
  std::vector<std::uint8_t> acked_;
  std::vector<SimTime> last_sent_;
  std::size_t next_new_ = 0;
  std::size_t acked_count_ = 0;
  SimTime rto_cur_ = 0;
  std::uint64_t timer_epoch_ = 0;
  std::uint64_t msg_epoch_ = 0;  ///< guards the per-message deadline timer
  bool active_ = false;
  FlowStats stats_;
  std::function<void(const FlowStats&)> on_complete_;
  std::function<void()> timeout_extra_;
};

/// Receiver-side flow machinery: in-order reassembly bitmap, duplicate
/// re-ACK, corrupt-frame NACK, trim policy, ACK construction. Transports
/// own one and call pre_deliver / deliver / maybe_complete from their
/// frame handler — split in three so a transport can interleave its own
/// work (the pull transport grants a pull credit between the ACK and the
/// completion callback, preserving NDP's event order).
class ReceiverCore {
 public:
  /// What this transport's ACKs carry beyond the per-packet echo.
  struct Policy {
    bool trimmed_is_delivered = true;  ///< false: NACK trimmed arrivals
    bool cumulative_ack = false;  ///< fill ack_seq (window fast-retransmit)
    bool echo_ecn = false;        ///< echo the CE mark (DCTCP)
  };

  ReceiverCore(Host& host, std::uint32_t flow_id, std::size_t expected_packets,
               Policy policy, std::function<void(const Frame&)> on_data,
               std::function<void(const ReceiverStats&)> on_complete);

  /// Triage an arriving frame. Returns true when the frame is a fresh,
  /// intact, acceptable data packet the caller should deliver(); consumes
  /// the frame otherwise (non-data and malformed are dropped; duplicates
  /// are re-ACKed; corrupt and policy-rejected trimmed arrivals are
  /// NACKed).
  bool pre_deliver(const Frame& frame);
  /// Record the delivery, invoke on_data, and ACK the sender.
  void deliver(const Frame& frame);
  /// Invoke the completion callback when the last packet just landed.
  void maybe_complete();

  bool complete() const noexcept { return delivered_count_ == stats_.expected; }
  const ReceiverStats& stats() const noexcept { return stats_; }

 private:
  void send_ack(const Frame& data, bool was_trimmed);
  void send_nack(const Frame& data);
  std::uint32_t cumulative_ack() const noexcept;

  Host& host_;
  std::uint32_t flow_id_;
  Policy policy_;
  std::vector<std::uint8_t> delivered_;  ///< 0 = no, 1 = full, 2 = trimmed
  std::size_t delivered_count_ = 0;
  mutable std::size_t cum_cache_ = 0;
  ReceiverStats stats_;
  std::function<void(const Frame&)> on_data_;
  std::function<void(const ReceiverStats&)> on_complete_;
};

}  // namespace trimgrad::net
