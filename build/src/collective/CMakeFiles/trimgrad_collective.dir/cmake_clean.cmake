file(REMOVE_RECURSE
  "CMakeFiles/trimgrad_collective.dir/allgather.cpp.o"
  "CMakeFiles/trimgrad_collective.dir/allgather.cpp.o.d"
  "CMakeFiles/trimgrad_collective.dir/allreduce.cpp.o"
  "CMakeFiles/trimgrad_collective.dir/allreduce.cpp.o.d"
  "CMakeFiles/trimgrad_collective.dir/inject_channel.cpp.o"
  "CMakeFiles/trimgrad_collective.dir/inject_channel.cpp.o.d"
  "CMakeFiles/trimgrad_collective.dir/sim_channel.cpp.o"
  "CMakeFiles/trimgrad_collective.dir/sim_channel.cpp.o.d"
  "libtrimgrad_collective.a"
  "libtrimgrad_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trimgrad_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
