#!/usr/bin/env python3
"""Validate bench JSON outputs and gate on regressions.

Usage:
    check_bench.py CANDIDATE [--baseline BENCH_parallel.json]
                   [--max-slowdown 2.0] [--min-speedup 3.0]
    check_bench.py --elastic BENCH_elastic.json
    check_bench.py --simscale BENCH_simscale.json
                   [--baseline BENCH_simscale.json]
                   [--max-slowdown 2.0] [--min-speedup 3.0]
    check_bench.py --chaos-search BENCH_chaos_search.json
                   [--min-scripts 200] [--min-cells 4]
    check_bench.py --adaptive BENCH_adaptive.json

Default mode validates the BENCH_parallel.json produced by
bench_parallel_scaling (smoke or full size).  The committed baseline holds
full-size numbers; comparisons use per-section throughput (items processed
per second), which is roughly size-invariant, so a smoke run can be compared
against a full-size baseline.

--min-speedup gates parallel *scaling* inside the candidate itself: the
row-parallel codec sections must reach the requested speedup over their own
single-thread time at some measured thread count.  The floor is capped by
the cores the machine actually has (hardware_threads in the JSON), so the
same invocation demands ~3x on an 8-core CI runner and degrades to a plain
no-regression check on a single-core container.

--simscale mode validates the BENCH_simscale.json produced by
bench_simscale (the sharded-simulator scale benchmark).  The run must be
bit-exact across execution modes (deterministic: true), its events/sec must
not regress more than --max-slowdown below the baseline, and -- on machines
with enough cores and a full-size (non-smoke) workload -- the sharded
engine's best speedup over its own single-thread time must clear the
hardware-capped --min-speedup floor.  Smoke workloads are too small to
amortize window barriers, so they degrade to determinism + regression
checks with a printed notice.

--chaos-search mode validates the BENCH_chaos_search.json produced by
bench_chaos_search (property-checked chaos search).  The search must have
run to completion over at least --min-scripts fault scripts across at least
--min-cells {transport x codec x queue} cells, with the invariant monitor
demonstrably wired (checks > 0 in every cell), every cell's event queue
drained, and zero violations.  A violation is a red build by definition:
the gate fails and names the shrunk REPRO_chaos_*.txt artifacts (which CI
uploads) -- or reports how many violations the shrinker could not reduce.

--adaptive mode validates the BENCH_adaptive.json produced by
bench_adaptive_policy (the per-round compression control plane under phased
capacity congestion).  The aimd-trim cell must have reached the accuracy
target at all and before every fixed {codec x Q} cell that reached it, its
control trajectory and trained parameters must be bit-identical across
thread counts (deterministic: true), the policy must actually have acted
(switches > 0), and the run must be clean (zero invariant violations, every
loss finite).

--elastic mode validates the BENCH_elastic.json produced by
bench_soak_elastic: the run must have drained its event queue, kept every
epoch loss finite, advanced view versions monotonically, completed at least
one evict->rejoin cycle, and converged back to within its own stated
loss_tolerance of the uninterrupted baseline.

Exit codes: 0 ok, 1 malformed candidate, 2 regression beyond the threshold.
Only the Python standard library is used.
"""

import argparse
import json
import sys


def fail(code, msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(1, f"cannot parse {path}: {exc}")


def validate(doc, path):
    """Structural checks on a bench_parallel_scaling JSON document."""
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    for key in ("thread_counts", "sections", "deterministic"):
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    if doc["deterministic"] is not True:
        fail(1, f"{path}: deterministic is not true -- parallel results "
                "diverged from single-threaded reference")
    n_threads = len(doc["thread_counts"])
    if n_threads == 0:
        fail(1, f"{path}: empty thread_counts")
    sections = doc["sections"]
    if not isinstance(sections, dict) or not sections:
        fail(1, f"{path}: sections must be a non-empty object")
    for name, sec in sections.items():
        for key in ("seconds", "items", "throughput"):
            if key not in sec:
                fail(1, f"{path}: section {name!r} missing {key!r}")
        secs = sec["seconds"]
        if len(secs) != n_threads:
            fail(1, f"{path}: section {name!r} has {len(secs)} timings for "
                    f"{n_threads} thread counts")
        if any(not isinstance(s, (int, float)) or s <= 0 for s in secs):
            fail(1, f"{path}: section {name!r} has non-positive timings")
        if not isinstance(sec["items"], int) or sec["items"] <= 0:
            fail(1, f"{path}: section {name!r} has invalid items count")
        if sec["throughput"] <= 0:
            fail(1, f"{path}: section {name!r} has non-positive throughput")


# Sections that run through ThreadPool::parallel_for row-parallelism and are
# therefore expected to scale with cores.  The per-kernel sections (fwht,
# quantize, bitpack, crc32c) are single-thread SIMD primitives and flat by
# construction; gemm/trainer_round scale but saturate memory bandwidth well
# below the codec curves, so the scaling gate covers the codecs only.
SCALING_SECTIONS = ("rht_encode_decode", "eden_encode_decode")


def check_scaling(doc, path, min_speedup):
    """Gate parallel speedup of the codec sections within one bench run."""
    hw = doc.get("hardware_threads") or 1
    tmax = max(doc["thread_counts"])
    # A machine can only deliver speedup up to its core count; allow ~0.4x
    # per usable core (memory-bandwidth saturation eats the rest) and never
    # demand more than the caller's floor.  On a single-core machine this
    # degrades to 0.8, i.e. "threading must not make the codecs slower".
    allowance = max(0.8, 0.4 * min(hw, tmax))
    floor = min(min_speedup, allowance)
    print(f"check_bench: scaling gate: floor {floor:.2f}x "
          f"(requested {min_speedup:.2f}x, hardware_threads={hw})")
    for name in SCALING_SECTIONS:
        sec = doc["sections"].get(name)
        if sec is None:
            fail(1, f"{path}: scaling section {name!r} missing")
        secs = sec["seconds"]
        best = max(secs[0] / s for s in secs)
        best_t = doc["thread_counts"][max(range(len(secs)),
                                          key=lambda i: secs[0] / secs[i])]
        print(f"check_bench: {name}: best speedup {best:.2f}x "
              f"at {best_t} threads")
        if best < floor:
            fail(2, f"section {name!r} scaled only {best:.2f}x, below the "
                    f"{floor:.2f}x floor")


def validate_simscale(doc, path):
    """Structural checks on a bench_simscale JSON document."""
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    required = ("hardware_threads", "deterministic", "k", "hosts", "events",
                "thread_counts", "seconds", "events_per_sec", "speedup",
                "sequential")
    for key in required:
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    if doc["deterministic"] is not True:
        fail(1, f"{path}: deterministic is not true -- sharded runs diverged "
                "from the sequential reference")
    n = len(doc["thread_counts"])
    if n == 0:
        fail(1, f"{path}: empty thread_counts")
    for key in ("seconds", "events_per_sec", "speedup"):
        vals = doc[key]
        if len(vals) != n:
            fail(1, f"{path}: {key} has {len(vals)} entries for {n} "
                    "thread counts")
        if any(not isinstance(v, (int, float)) or v <= 0 for v in vals):
            fail(1, f"{path}: {key} has non-positive entries")
    if not isinstance(doc["events"], int) or doc["events"] <= 0:
        fail(1, f"{path}: invalid events count")
    seq = doc["sequential"]
    if not isinstance(seq, dict) or "events_per_sec" not in seq:
        fail(1, f"{path}: sequential is missing events_per_sec")


def check_simscale(args):
    """Gate a bench_simscale run: determinism, scaling, regression."""
    cand = load_json(args.candidate)
    validate_simscale(cand, args.candidate)
    hw = cand.get("hardware_threads") or 1
    best_i = max(range(len(cand["speedup"])), key=lambda i: cand["speedup"][i])
    best = cand["speedup"][best_i]
    best_eps = max(cand["events_per_sec"])
    print(f"check_bench: {args.candidate} is well-formed -- "
          f"{cand['hosts']} hosts (k={cand['k']}), {cand['events']} events, "
          f"bit-exact, best {best_eps:.3g} events/s, best speedup "
          f"{best:.2f}x at {cand['thread_counts'][best_i]} threads")

    if args.min_speedup is not None:
        tmax = max(cand["thread_counts"])
        if cand.get("smoke"):
            print("check_bench: smoke workload -- too small to amortize "
                  "window barriers; scaling gate skipped "
                  "(determinism + regression gates still apply)")
        else:
            allowance = max(0.8, 0.4 * min(hw, tmax))
            floor = min(args.min_speedup, allowance)
            print(f"check_bench: scaling gate: floor {floor:.2f}x "
                  f"(requested {args.min_speedup:.2f}x, "
                  f"hardware_threads={hw})")
            if best < floor:
                fail(2, f"sharded simulator scaled only {best:.2f}x, below "
                        f"the {floor:.2f}x floor")

    if args.baseline is None:
        return
    base = load_json(args.baseline)
    validate_simscale(base, args.baseline)
    base_eps = max(base["events_per_sec"])
    ratio = base_eps / best_eps
    print(f"check_bench: events/sec: baseline {base_eps:.3g}, "
          f"candidate {best_eps:.3g} (slowdown {ratio:.2f}x)")
    if ratio > args.max_slowdown:
        fail(2, f"events/sec regressed {ratio:.2f}x vs baseline "
                f"(threshold {args.max_slowdown}x)")
    print(f"check_bench: OK -- simscale within {args.max_slowdown}x "
          "of baseline")


def check_elastic(path):
    """Invariant gate on a bench_soak_elastic JSON document."""
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    required = ("label", "loss_gap", "loss_tolerance", "evictions", "rejoins",
                "time_to_recover_s", "rounds_degraded", "checkpoint_bytes",
                "checkpoint_saves", "views_monotone", "drained", "loss_finite")
    for key in required:
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    for key in ("views_monotone", "drained", "loss_finite"):
        if doc[key] is not True:
            fail(2, f"{path}: invariant {key!r} is {doc[key]!r}, not true")
    if not isinstance(doc["rejoins"], int) or doc["rejoins"] < 1:
        fail(2, f"{path}: no evict->rejoin cycle completed "
                f"(rejoins={doc['rejoins']!r})")
    if doc["evictions"] < doc["rejoins"]:
        fail(1, f"{path}: more rejoins ({doc['rejoins']}) than evictions "
                f"({doc['evictions']})")
    gap, tol = doc["loss_gap"], doc["loss_tolerance"]
    if not (isinstance(gap, (int, float)) and isinstance(tol, (int, float))):
        fail(1, f"{path}: loss_gap/loss_tolerance are not numbers")
    if gap > tol:
        fail(2, f"{path}: healed run did not reconverge -- loss_gap {gap:.4f} "
                f"exceeds tolerance {tol:.4f}")
    if doc["rejoins"] > 0 and doc["time_to_recover_s"] <= 0:
        fail(1, f"{path}: rejoins happened but time_to_recover_s is "
                f"{doc['time_to_recover_s']!r}")
    if doc["checkpoint_saves"] > 0 and doc["checkpoint_bytes"] <= 0:
        fail(1, f"{path}: checkpoints saved but zero bytes recorded")
    print(f"check_bench: {path} OK -- {doc['evictions']} evictions, "
          f"{doc['rejoins']} rejoins, recovered in "
          f"{doc['time_to_recover_s']:.4f}s sim-time, loss gap {gap:.4f} "
          f"<= {tol:.4f}")


def check_chaos_search(args):
    """Gate a bench_chaos_search run: coverage, wiring, zero violations."""
    path = args.candidate
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    required = ("smoke", "k", "scripts_total", "violations_total",
                "unshrunk_violations", "checks_total", "drained_all",
                "search_completed", "repros", "cells")
    for key in required:
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    cells = doc["cells"]
    if not isinstance(cells, list) or not cells:
        fail(1, f"{path}: cells must be a non-empty array")
    cell_scripts = 0
    for cell in cells:
        for key in ("transport", "scheme", "queue", "scripts", "violations",
                    "checks", "repros", "drained"):
            if key not in cell:
                fail(1, f"{path}: cell missing key {key!r}")
        label = f"{cell['transport']}/{cell['scheme']}/{cell['queue']}"
        if not isinstance(cell["scripts"], int) or cell["scripts"] <= 0:
            fail(1, f"{path}: cell {label} ran no scripts")
        if cell["checks"] <= 0:
            fail(1, f"{path}: cell {label} reports zero invariant checks -- "
                    "the monitor was not wired into the closed loop")
        cell_scripts += cell["scripts"]
    if cell_scripts != doc["scripts_total"]:
        fail(1, f"{path}: cells sum to {cell_scripts} scripts but "
                f"scripts_total is {doc['scripts_total']}")
    if doc["checks_total"] <= 0:
        fail(1, f"{path}: zero invariant checks across the whole search")

    if doc["search_completed"] is not True:
        fail(2, f"{path}: the search did not run to completion")
    if doc["scripts_total"] < args.min_scripts:
        fail(2, f"{path}: only {doc['scripts_total']} fault scripts searched, "
                f"below the {args.min_scripts} floor")
    if len(cells) < args.min_cells:
        fail(2, f"{path}: only {len(cells)} cells searched, below the "
                f"{args.min_cells} floor")
    if doc["drained_all"] is not True:
        undrained = [f"{c['transport']}/{c['scheme']}/{c['queue']}"
                     for c in cells if c["drained"] is not True]
        fail(2, f"{path}: event queues not drained in cells {undrained}")
    if doc["violations_total"] != 0 or doc["unshrunk_violations"] != 0:
        repros = doc["repros"]
        detail = (f"minimal repros: {', '.join(repros)}" if repros
                  else "no shrunk repro was produced")
        fail(2, f"{path}: {doc['violations_total']} invariant violations "
                f"({doc['unshrunk_violations']} unshrunk) -- {detail}")
    print(f"check_bench: {path} OK -- {doc['scripts_total']} fault scripts "
          f"across {len(cells)} cells (k={doc['k']}, "
          f"smoke={doc['smoke']}), {doc['checks_total']} invariant checks, "
          "0 violations, all drained")


def check_adaptive(path):
    """Gate a bench_adaptive_policy run: wins, determinism, cleanliness."""
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    required = ("label", "smoke", "target_loss", "adaptive",
                "beats_all_fixed", "deterministic", "decision_digest",
                "violations", "loss_finite", "fixed")
    for key in required:
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    ad = doc["adaptive"]
    if not isinstance(ad, dict):
        fail(1, f"{path}: adaptive must be an object")
    for key in ("name", "tta_s", "final_top1", "mean_q", "switches"):
        if key not in ad:
            fail(1, f"{path}: adaptive missing key {key!r}")
    fixed = doc["fixed"]
    if not isinstance(fixed, list) or not fixed:
        fail(1, f"{path}: fixed must be a non-empty array")
    for cell in fixed:
        for key in ("name", "tta_s", "final_top1"):
            if key not in cell:
                fail(1, f"{path}: fixed cell missing key {key!r}")
    if not isinstance(doc["target_loss"], (int, float)) \
            or doc["target_loss"] <= 0:
        fail(1, f"{path}: target_loss must be a positive number")

    if doc["deterministic"] is not True:
        fail(2, f"{path}: deterministic is not true -- the adaptive control "
                "trajectory or trained parameters diverged across thread "
                "counts")
    if doc["loss_finite"] is not True:
        fail(2, f"{path}: a train loss went non-finite")
    if doc["violations"] != 0:
        fail(2, f"{path}: {doc['violations']} invariant violations")
    if not isinstance(ad["switches"], int) or ad["switches"] < 1:
        fail(2, f"{path}: the policy never switched "
                f"(switches={ad['switches']!r}) -- the control plane is not "
                "wired into the round loop")
    tta = ad["tta_s"]
    if not isinstance(tta, (int, float)) or tta < 0:
        fail(2, f"{path}: the adaptive cell never reached the target loss "
                f"(tta_s={tta!r})")
    # Recompute the verdict from the per-cell numbers; a mismatch with the
    # emitted flag means the producer and this gate disagree on semantics.
    losers = [c for c in fixed if c["tta_s"] >= 0 and tta >= c["tta_s"]]
    recomputed = not losers
    if recomputed != (doc["beats_all_fixed"] is True):
        fail(1, f"{path}: beats_all_fixed={doc['beats_all_fixed']!r} does "
                f"not match the per-cell tta_s values")
    if losers:
        names = ", ".join(f"{c['name']} ({c['tta_s']:.4f}s)" for c in losers)
        fail(2, f"{path}: adaptive tta {tta:.4f}s did not beat: {names}")
    reached = sum(1 for c in fixed if c["tta_s"] >= 0)
    print(f"check_bench: {path} OK -- aimd-trim reached the target in "
          f"{tta:.4f}s sim-time, beating all {len(fixed)} fixed cells "
          f"({reached} reached at all); mean_q {ad['mean_q']:.1f}, "
          f"{ad['switches']} switches, bit-identical across thread counts")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--baseline", default=None,
                    help="committed full-size BENCH_parallel.json; skip the "
                         "regression gate when omitted")
    ap.add_argument("--max-slowdown", type=float, default=2.0,
                    help="fail if candidate throughput is more than this "
                         "factor below baseline (default 2.0)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail if the codec sections' parallel speedup "
                         "(within the candidate run) stays below this floor, "
                         "capped by the machine's hardware_threads")
    ap.add_argument("--elastic", action="store_true",
                    help="treat CANDIDATE as BENCH_elastic.json from "
                         "bench_soak_elastic and gate its invariants")
    ap.add_argument("--simscale", action="store_true",
                    help="treat CANDIDATE as BENCH_simscale.json from "
                         "bench_simscale and gate determinism, scaling, "
                         "and events/sec regression")
    ap.add_argument("--chaos-search", action="store_true",
                    help="treat CANDIDATE as BENCH_chaos_search.json from "
                         "bench_chaos_search and gate coverage, monitor "
                         "wiring, drain, and zero invariant violations")
    ap.add_argument("--min-scripts", type=int, default=200,
                    help="--chaos-search: minimum fault scripts the search "
                         "must have covered (default 200)")
    ap.add_argument("--min-cells", type=int, default=4,
                    help="--chaos-search: minimum {transport x codec x "
                         "queue} cells searched (default 4)")
    ap.add_argument("--adaptive", action="store_true",
                    help="treat CANDIDATE as BENCH_adaptive.json from "
                         "bench_adaptive_policy and gate the adaptive "
                         "policy's win, determinism, and cleanliness")
    args = ap.parse_args()

    if args.elastic:
        check_elastic(args.candidate)
        return
    if args.simscale:
        check_simscale(args)
        return
    if args.chaos_search:
        check_chaos_search(args)
        return
    if args.adaptive:
        check_adaptive(args.candidate)
        return

    cand = load_json(args.candidate)
    validate(cand, args.candidate)
    print(f"check_bench: {args.candidate} is well-formed "
          f"({len(cand['sections'])} sections, smoke={cand.get('smoke')}, "
          f"isa={cand.get('isa')})")

    if args.min_speedup is not None:
        check_scaling(cand, args.candidate, args.min_speedup)

    if args.baseline is None:
        return

    base = load_json(args.baseline)
    validate(base, args.baseline)

    # Diff the section sets both ways before touching any values: a fresh
    # bench run that grew a section the committed baseline lacks must fail
    # with a regenerate-the-baseline message, not a lookup error.
    missing_in_base = sorted(set(cand["sections"]) - set(base["sections"]))
    if missing_in_base:
        fail(1, f"{args.baseline}: baseline is missing sections "
                f"{missing_in_base} that the candidate run produced -- "
                "regenerate and commit the baseline")
    missing_in_cand = sorted(set(base["sections"]) - set(cand["sections"]))
    if missing_in_cand:
        fail(1, f"{args.candidate}: candidate is missing sections "
                f"{missing_in_cand} present in the baseline")

    worst = None
    for name, bsec in base["sections"].items():
        csec = cand["sections"][name]
        ratio = bsec["throughput"] / csec["throughput"]
        print(f"check_bench: {name}: baseline {bsec['throughput']:.3g} items/s, "
              f"candidate {csec['throughput']:.3g} items/s "
              f"(slowdown {ratio:.2f}x)")
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)
        if ratio > args.max_slowdown:
            fail(2, f"section {name!r} regressed {ratio:.2f}x vs baseline "
                    f"(threshold {args.max_slowdown}x)")
    print(f"check_bench: OK -- worst slowdown {worst[1]:.2f}x ({worst[0]})")


if __name__ == "__main__":
    main()
