// In-network aggregation switch: data-plane correctness and the
// trimming-interplay fallback. Frames are injected raw (ATP-style switch
// ACKing is out of scope; transports are exercised elsewhere).
#include "net/agg_switch.h"

#include <gtest/gtest.h>

#include "core/codec.h"
#include "core/stats.h"
#include "net/host.h"

namespace trimgrad::net {
namespace {

using core::CodecConfig;
using core::Scheme;

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

/// Endpoint that collects arriving cargo packets.
class Collector : public FlowEndpoint {
 public:
  void on_frame(Frame frame) override {
    frames.push_back(std::move(frame));
  }
  std::vector<Frame> frames;
};

struct Rig {
  Simulator sim;
  std::vector<Host*> workers;
  Host* server = nullptr;
  AggSwitchNode* sw = nullptr;
  Collector collector;

  explicit Rig(std::size_t n_workers, std::uint32_t output_flow = 100) {
    auto& s = sim.add_node<AggSwitchNode>("agg-switch");
    sw = &s;
    QueueConfig qcfg;
    qcfg.policy = QueuePolicy::kTrim;
    for (std::size_t i = 0; i < n_workers; ++i) {
      auto& h = sim.add_node<Host>("w" + std::to_string(i));
      const auto [hp, sp] = sim.connect(h.id(), s.id(), LinkSpec{}, qcfg);
      (void)hp;
      s.set_route(h.id(), sp);
      workers.push_back(&h);
    }
    auto& srv = sim.add_node<Host>("server");
    const auto [hp, sp] = sim.connect(srv.id(), s.id(), LinkSpec{}, qcfg);
    (void)hp;
    s.set_route(srv.id(), sp);
    server = &srv;
    std::vector<std::uint32_t> flows;
    for (std::size_t i = 0; i < n_workers; ++i)
      flows.push_back(static_cast<std::uint32_t>(i + 1));
    s.register_group(flows, output_flow, srv.id());
    srv.bind(output_flow, &collector);
    for (std::uint32_t f : flows) srv.bind(f, &collector);  // bypass path
  }

  void send_message(std::size_t worker, const core::EncodedMessage& msg,
                    bool trim_first_packet = false) {
    for (std::size_t i = 0; i < msg.packets.size(); ++i) {
      Frame f;
      f.id = sim.next_frame_id();
      f.src = workers[worker]->id();
      f.dst = server->id();
      f.flow_id = static_cast<std::uint32_t>(worker + 1);
      f.seq = msg.packets[i].seq;
      f.kind = FrameKind::kData;
      auto cargo = std::make_shared<core::GradientPacket>(msg.packets[i]);
      if (trim_first_packet && i == 0) cargo->trim();
      f.size_bytes = cargo->wire_bytes();
      f.trim_size_bytes = cargo->trimmed_wire_bytes();
      f.trimmed = cargo->trimmed;
      f.cargo = std::move(cargo);
      workers[worker]->send(std::move(f));
    }
  }
};

CodecConfig cfg_of(Scheme s) {
  CodecConfig cfg;
  cfg.scheme = s;
  cfg.rht_row_len = 1 << 10;
  cfg.shared_seed = 77;
  return cfg;
}

class AggSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AggSchemes, AggregateDecodesToSumOfWorkers) {
  const Scheme scheme = GetParam();
  const std::size_t world = 3, n = 3000;
  Rig rig(world);

  // All workers encode with the SAME keys (msg_id/epoch/seed), as INA
  // requires: identical rotations make rotated payloads additive.
  std::vector<std::vector<float>> grads;
  core::TrimmableEncoder enc(cfg_of(scheme));
  for (std::size_t w = 0; w < world; ++w) {
    grads.push_back(gaussian_vec(n, 10 + w));
    rig.send_message(w, enc.encode(grads.back(), 1, 1));
  }
  rig.sim.run();

  // Server received exactly one aggregate per seq, not 3 constituents.
  core::EncodedMessage probe = enc.encode(grads[0], 1, 1);
  ASSERT_EQ(rig.collector.frames.size(), probe.packets.size());
  EXPECT_EQ(rig.sw->agg_counters().aggregated_frames, probe.packets.size());
  EXPECT_EQ(rig.sw->agg_counters().bypassed_frames, 0u);

  // Decode the aggregates with the common metadata: equals the exact sum.
  std::vector<core::GradientPacket> pkts;
  for (const auto& f : rig.collector.frames) pkts.push_back(*f.cargo);
  core::TrimmableDecoder dec(cfg_of(scheme));
  const auto out = dec.decode(pkts, probe.meta);
  std::vector<float> expected(n, 0.0f);
  for (const auto& g : grads) {
    for (std::size_t i = 0; i < n; ++i) expected[i] += g[i];
  }
  EXPECT_LT(core::nmse(out.values, expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Schemes, AggSchemes,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSign,
                                           Scheme::kRHT),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return to_string(info.param);
                         });

TEST(AggSwitch, ReducesServerIngressByWorldFactor) {
  const std::size_t world = 4, n = 5000;
  Rig rig(world);
  core::TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  std::uint64_t sent_bytes = 0;
  for (std::size_t w = 0; w < world; ++w) {
    const auto msg = enc.encode(gaussian_vec(n, w), 1, 1);
    for (const auto& p : msg.packets) sent_bytes += p.wire_bytes();
    rig.send_message(w, msg);
  }
  rig.sim.run();
  std::uint64_t received_bytes = 0;
  for (const auto& f : rig.collector.frames) received_bytes += f.size_bytes;
  EXPECT_NEAR(static_cast<double>(received_bytes) / sent_bytes, 1.0 / world,
              0.05);
}

TEST(AggSwitch, TrimmedConstituentPoisonsOnlyItsSeq) {
  const std::size_t world = 2, n = 2500;
  Rig rig(world);
  core::TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto g0 = gaussian_vec(n, 1);
  const auto g1 = gaussian_vec(n, 2);
  rig.send_message(0, enc.encode(g0, 1, 1), /*trim_first_packet=*/true);
  rig.send_message(1, enc.encode(g1, 1, 1));
  rig.sim.run();

  const auto& c = rig.sw->agg_counters();
  EXPECT_GT(c.bypassed_frames, 0u);
  EXPECT_GT(c.aggregated_frames, 0u);
  // seq 0 bypassed (both constituents forwarded or one absorbed-then-lost),
  // all other seqs aggregated.
  const auto probe = enc.encode(g0, 1, 1);
  EXPECT_EQ(c.aggregated_frames, probe.packets.size() - 1);
}

TEST(AggSwitch, NonGroupTrafficRoutesNormally) {
  Rig rig(2);
  Collector other;
  rig.server->bind(999, &other);
  Frame f;
  f.id = rig.sim.next_frame_id();
  f.src = rig.workers[0]->id();
  f.dst = rig.server->id();
  f.flow_id = 999;
  f.kind = FrameKind::kData;
  f.size_bytes = 500;
  rig.workers[0]->send(std::move(f));
  rig.sim.run();
  ASSERT_EQ(other.frames.size(), 1u);
  EXPECT_EQ(rig.sw->agg_counters().absorbed_frames, 0u);
}

TEST(AggSupport, SqSdAreNotAggregatable) {
  EXPECT_FALSE(core::is_aggregatable(Scheme::kSQ));
  EXPECT_FALSE(core::is_aggregatable(Scheme::kSD));
  core::TrimmableEncoder enc(cfg_of(Scheme::kSD));
  const auto msg = enc.encode(gaussian_vec(100, 3), 1, 1);
  EXPECT_FALSE(core::packet_values(msg.packets[0]).has_value());
}

TEST(AggSupport, TrimmedPacketHasNoValues) {
  core::TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  auto msg = enc.encode(gaussian_vec(100, 4), 1, 1);
  EXPECT_TRUE(core::packet_values(msg.packets[0]).has_value());
  msg.packets[0].trim();
  EXPECT_FALSE(core::packet_values(msg.packets[0]).has_value());
}

TEST(AggSupport, RebuildRoundTrips) {
  core::TrimmableEncoder enc(cfg_of(Scheme::kRHT));
  const auto msg = enc.encode(gaussian_vec(500, 5), 2, 3);
  const auto vals = core::packet_values(msg.packets[0]);
  ASSERT_TRUE(vals.has_value());
  const auto rebuilt = core::rebuild_packet(msg.packets[0], *vals);
  EXPECT_EQ(rebuilt.head_region, msg.packets[0].head_region);
  EXPECT_EQ(rebuilt.tail_region, msg.packets[0].tail_region);
}

}  // namespace
}  // namespace trimgrad::net
