#include "core/threadpool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace trimgrad::core {

namespace {

/// Set while a pool worker executes chunks, so nested parallel_for calls
/// (e.g. GEMMs inside a parallelized trainer round) degrade to inline
/// execution instead of deadlocking on the pool.
thread_local bool tls_in_pool_worker = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("TRIMGRAD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Spin budgets before falling back to the condition variables. Idle
/// workers spin this long for the next job (covers back-to-back
/// parallel_for bursts, e.g. per-row codec loops); the caller spins for
/// stragglers after finishing its own chunks.
constexpr int kIdleSpins = 1 << 12;
constexpr int kDoneSpins = 1 << 14;

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;

  // Job publication. The plain fields are written first, then job_seq is
  // store-released (under mu, so a worker between its predicate check and
  // its sleep cannot miss the bump); workers acquire-load job_seq — either
  // in their spin loop or inside cv_start's predicate — and the fields are
  // visible by release/acquire ordering. One job at a time (busy flag), so
  // the fields are stable until every worker has finished.
  std::atomic<std::uint64_t> job_seq{0};
  ParallelForFn job_fn;
  std::size_t job_n = 0;
  std::size_t job_chunks = 0;
  std::atomic<bool> stop{false};

  std::atomic<std::size_t> next_chunk{0};

  // Completion latch: workers that have not finished the current job. The
  // last worker down notifies cv_done (taking mu only for the handoff);
  // the caller usually observes 0 in its spin and never touches mu.
  std::atomic<std::size_t> pending{0};

  /// True while a job is in flight. The pool runs one job at a time, so any
  /// parallel_for that arrives while busy — a nested call from the caller's
  /// own chunk (the caller participates but is not a pool worker, so the
  /// tls flag does not cover it), or a second thread sharing the global
  /// pool — must run inline rather than clobber the published job state.
  std::atomic<bool> busy{false};

  /// Chunk c of the balanced partition of [0, n) into `chunks` pieces.
  static void chunk_bounds(std::size_t n, std::size_t chunks, std::size_t c,
                           std::size_t& begin, std::size_t& end) noexcept {
    begin = n * c / chunks;
    end = n * (c + 1) / chunks;
  }

  void run_chunks(std::size_t n, std::size_t chunks, ParallelForFn fn) {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      std::size_t b, e;
      chunk_bounds(n, chunks, c, b, e);
      if (b < e) fn(b, e);
    }
  }

  /// Wait for job_seq to move past `seen`: spin first, then sleep on
  /// cv_start. Returns `seen` itself only when stopping.
  std::uint64_t wait_for_job(std::uint64_t seen) {
    for (int spins = 0; spins < kIdleSpins; ++spins) {
      if (stop.load(std::memory_order_relaxed)) return seen;
      const std::uint64_t s = job_seq.load(std::memory_order_acquire);
      if (s != seen) return s;
      cpu_pause();
    }
    std::unique_lock<std::mutex> lk(mu);
    cv_start.wait(lk, [&] {
      return stop.load(std::memory_order_relaxed) ||
             job_seq.load(std::memory_order_acquire) != seen;
    });
    return stop.load(std::memory_order_relaxed)
               ? seen
               : job_seq.load(std::memory_order_acquire);
  }

  void worker_loop() {
    tls_in_pool_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      const std::uint64_t seq = wait_for_job(seen);
      if (seq == seen) return;  // stop
      seen = seq;
      run_chunks(job_n, job_chunks, job_fn);
      if (pending.fetch_sub(1, std::memory_order_release) == 1) {
        // Last worker down. Take mu so a caller past its spin and inside
        // cv_done.wait cannot miss the notification.
        std::lock_guard<std::mutex> lk(mu);
        cv_done.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  const std::size_t extra = threads > 1 ? threads - 1 : 0;
  impl_->workers.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->cv_start.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

std::size_t ThreadPool::thread_count() const noexcept {
  return impl_->workers.size() + 1;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              ParallelForFn fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t threads = thread_count();
  // Inline when there is nothing to split, nobody to split it across, or we
  // are already on a pool worker (nested call).
  if (threads <= 1 || n <= grain || tls_in_pool_worker) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(threads, n / grain);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  bool expected = false;
  if (!impl_->busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
    fn(0, n);
    return;
  }
  impl_->job_fn = fn;
  impl_->job_n = n;
  impl_->job_chunks = chunks;
  impl_->next_chunk.store(0, std::memory_order_relaxed);
  impl_->pending.store(impl_->workers.size(), std::memory_order_relaxed);
  {
    // Publish under mu (see Impl::job_seq) so sleeping workers can't miss
    // it; spinning workers pick the release-store up without the lock.
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job_seq.fetch_add(1, std::memory_order_release);
  }
  impl_->cv_start.notify_all();
  impl_->run_chunks(n, chunks, fn);
  // Completion latch: spin for stragglers first — for codec-sized chunks
  // the workers finish within the budget and no futex is touched.
  bool done = false;
  for (int spins = 0; spins < kDoneSpins; ++spins) {
    if (impl_->pending.load(std::memory_order_acquire) == 0) {
      done = true;
      break;
    }
    cpu_pause();
  }
  if (!done) {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->cv_done.wait(lk, [&] {
      return impl_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  impl_->job_fn = ParallelForFn();
  impl_->busy.store(false, std::memory_order_release);
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_thread_count());
  return *g_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(threads > 0 ? threads : 1);
}

void parallel_for(std::size_t n, std::size_t grain, ParallelForFn fn) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

}  // namespace trimgrad::core
