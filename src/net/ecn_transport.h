// DCTCP-style ECN-reactive transport (paper §5.3's congestion-control
// feedback loop).
//
// §5.3: a coarse congestion-control signal should drive *ahead-of-time*
// compression (the sender's Q), while trimming handles what the control
// loop cannot predict. This sender provides that loop: receivers echo ECN
// marks on their ACKs; the sender maintains the DCTCP EWMA of the marked
// fraction (alpha) and scales its window down by alpha/2 per marked round,
// growing additively otherwise. The smoothed mark fraction is exported so
// an AdaptiveQController (core/adaptive.h) can consume it as the §5.3
// signal — see the EcnAwareTrainingLoop test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/host.h"
#include "net/transport.h"

namespace trimgrad::net {

struct EcnConfig {
  std::size_t initial_window = 16;
  std::size_t min_window = 2;
  std::size_t max_window = 256;
  double gain = 1.0 / 16.0;  ///< DCTCP alpha EWMA gain g
  SimTime rto = 500e-6;
  SimTime rto_cap = 5e-3;
  bool trimmed_is_delivered = true;
};

class EcnSender : public FlowEndpoint {
 public:
  EcnSender(Host& host, NodeId dst, std::uint32_t flow_id, EcnConfig cfg);
  ~EcnSender() override;

  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete);
  void on_frame(Frame frame) override;

  const FlowStats& stats() const noexcept { return stats_; }
  /// DCTCP alpha: EWMA of the per-window ECN-marked fraction in [0, 1].
  double alpha() const noexcept { return alpha_; }
  std::size_t window() const noexcept { return window_; }
  bool active() const noexcept { return active_; }

 private:
  void try_send_new();
  void send_packet(std::uint32_t seq, bool is_retransmit);
  void end_of_window_round();
  void arm_timer();
  void on_timeout(std::uint64_t epoch);
  void complete();
  std::size_t in_flight() const noexcept { return sent_unacked_; }

  Host& host_;
  NodeId dst_;
  std::uint32_t flow_id_;
  EcnConfig cfg_;

  std::vector<SendItem> items_;
  std::vector<std::uint8_t> acked_;
  std::vector<SimTime> last_sent_;
  std::size_t next_new_ = 0;
  std::size_t acked_count_ = 0;
  std::size_t sent_unacked_ = 0;
  std::size_t window_ = 0;
  // Per-round mark accounting (a "round" = one window's worth of ACKs).
  std::size_t round_acks_ = 0;
  std::size_t round_marks_ = 0;
  double alpha_ = 0.0;
  SimTime rto_cur_ = 0;
  std::uint64_t timer_epoch_ = 0;
  bool active_ = false;
  FlowStats stats_;
  std::function<void(const FlowStats&)> on_complete_;
};

/// Receiver: the trim-aware Receiver already echoes delivery; ECN needs the
/// mark echoed too, which the base Receiver's ACKs do not carry. This thin
/// subclass-by-composition forwards data handling and sets `ecn` on ACKs.
class EcnReceiver : public FlowEndpoint {
 public:
  EcnReceiver(Host& host, NodeId peer, std::uint32_t flow_id,
              std::size_t expected_packets, EcnConfig cfg,
              std::function<void(const Frame&)> on_data = {});
  ~EcnReceiver() override;

  void on_frame(Frame frame) override;
  const ReceiverStats& stats() const noexcept { return stats_; }
  bool complete() const noexcept {
    return delivered_count_ == delivered_.size();
  }

 private:
  void send_ack(const Frame& data, bool was_trimmed);

  Host& host_;
  NodeId peer_;
  std::uint32_t flow_id_;
  EcnConfig cfg_;
  std::vector<std::uint8_t> delivered_;
  std::size_t delivered_count_ = 0;
  ReceiverStats stats_;
  std::function<void(const Frame&)> on_data_;
};

/// ManagedFlow-style wiring for the ECN transport.
class EcnFlow {
 public:
  EcnFlow(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
          EcnConfig cfg, std::size_t n_packets,
          std::function<void(const Frame&)> on_data = {});

  void start_at(SimTime when, std::vector<SendItem> items,
                std::function<void(const FlowStats&)> on_complete = {});

  const FlowStats& stats() const noexcept { return sender_->stats(); }
  const EcnSender& sender() const noexcept { return *sender_; }
  bool done() const noexcept { return done_; }

 private:
  Simulator& sim_;
  std::unique_ptr<EcnSender> sender_;
  std::unique_ptr<EcnReceiver> receiver_;
  bool done_ = false;
};

}  // namespace trimgrad::net
