#include "core/transcript.h"

#include <istream>
#include <ostream>

#include "core/prng.h"

namespace trimgrad::core {

std::uint64_t TrimTranscript::key(std::uint64_t epoch, std::uint32_t msg_id,
                                  std::uint16_t seq) noexcept {
  return mix64(epoch, (static_cast<std::uint64_t>(msg_id) << 16) | seq);
}

void TrimTranscript::record(std::uint64_t epoch, std::uint32_t msg_id,
                            std::uint16_t seq, std::uint8_t level) {
  events_.push_back(TrimEvent{epoch, msg_id, seq, level});
  index_[key(epoch, msg_id, seq)] = level;
  epochs_.insert(epoch);
}

std::optional<std::uint8_t> TrimTranscript::lookup(std::uint64_t epoch,
                                                   std::uint32_t msg_id,
                                                   std::uint16_t seq) const {
  const auto it = index_.find(key(epoch, msg_id, seq));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void TrimTranscript::save(std::ostream& os) const {
  for (const auto& e : events_) {
    os << e.epoch << ' ' << e.msg_id << ' ' << e.seq << ' '
       << static_cast<unsigned>(e.level) << '\n';
  }
}

TrimTranscript TrimTranscript::load(std::istream& is) {
  TrimTranscript t;
  std::uint64_t epoch;
  std::uint32_t msg_id;
  unsigned seq, level;
  while (is >> epoch >> msg_id >> seq >> level) {
    t.record(epoch, msg_id, static_cast<std::uint16_t>(seq),
             static_cast<std::uint8_t>(level));
  }
  return t;
}

}  // namespace trimgrad::core
