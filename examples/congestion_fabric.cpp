// Trimming vs drop-tail on a leaf-spine fabric under incast + cross traffic.
//
//   $ ./examples/congestion_fabric
//
// Builds a 2-tier leaf-spine fabric, fires an 8-to-1 incast of gradient
// traffic through it alongside Poisson background flows, and compares flow
// completion times with drop-tail (retransmitting baseline) vs trimming
// switches. This is the mechanism-level experiment behind §1/§4.4: trimming
// keeps tail FCT bounded where drop-tail collapses into retransmissions.
#include <cstdio>
#include <vector>

#include "net/topology.h"
#include "net/traffic.h"

namespace {

struct Outcome {
  double max_fct_us;
  double mean_fct_us;
  unsigned long long retransmits;
  unsigned long long trims;
  unsigned long long drops;
};

Outcome run(trimgrad::net::QueuePolicy policy) {
  using namespace trimgrad::net;
  Simulator sim;
  FabricConfig cfg;
  cfg.edge_link = {100e9, 1e-6};
  cfg.core_link = {40e9, 2e-6};  // oversubscribed core
  cfg.switch_queue.policy = policy;
  cfg.switch_queue.capacity_bytes = 50 * 1024;  // shallow buffers
  cfg.switch_queue.header_capacity_bytes = 16 * 1024;
  const LeafSpine fabric = build_leaf_spine(sim, 3, 2, 4, cfg);

  // Gradient incast: 8 workers across two leaves -> one parameter server.
  std::vector<NodeId> senders;
  for (std::size_t i = 0; i < 4; ++i) senders.push_back(fabric.hosts[0][i]);
  for (std::size_t i = 0; i < 4; ++i) senders.push_back(fabric.hosts[1][i]);
  const NodeId server = fabric.hosts[2][0];

  IncastPattern::Config icfg;
  icfg.packets_per_sender = 256;
  const bool trimming = policy == QueuePolicy::kTrim;
  icfg.trim_size = trimming ? 88 : 0;
  icfg.transport = trimming ? TransportConfig::trim_aware()
                            : TransportConfig::reliable();
  IncastPattern incast(sim, senders, server, icfg);

  // Background cross traffic over the whole fabric.
  PoissonTraffic::Config pcfg;
  pcfg.flows_per_sec = 4e5;
  pcfg.stop = 2e-3;
  pcfg.packets_per_flow = 8;
  pcfg.transport = icfg.transport;
  pcfg.trim_size = icfg.trim_size;
  PoissonTraffic background(sim, fabric.all_hosts(), pcfg);

  sim.run();

  Outcome out{};
  out.max_fct_us = incast.max_fct() * 1e6;
  out.mean_fct_us = incast.mean_fct() * 1e6;
  for (const auto& st : incast.flow_stats()) out.retransmits += st.retransmits;
  for (NodeId id : fabric.leaves) {
    auto& node = sim.node(id);
    for (std::size_t p = 0; p < node.port_count(); ++p) {
      out.trims += node.port(p).queue().counters().trimmed;
      out.drops += node.port(p).queue().counters().dropped;
    }
  }
  for (NodeId id : fabric.spines) {
    auto& node = sim.node(id);
    for (std::size_t p = 0; p < node.port_count(); ++p) {
      out.trims += node.port(p).queue().counters().trimmed;
      out.drops += node.port(p).queue().counters().dropped;
    }
  }
  std::printf(
      "  incast max FCT %9.1f us | mean %9.1f us | retx %6llu | switch "
      "trims %6llu | drops %6llu | background flows %zu/%zu done\n",
      out.max_fct_us, out.mean_fct_us, out.retransmits, out.trims, out.drops,
      background.completed(), background.launched());
  return out;
}

}  // namespace

int main() {
  using trimgrad::net::QueuePolicy;
  std::printf("drop-tail fabric (reliable transport, retransmissions):\n");
  const Outcome droptail = run(QueuePolicy::kDropTail);
  std::printf("trimming fabric (trim-aware transport, no retransmissions):\n");
  const Outcome trim = run(QueuePolicy::kTrim);
  std::printf("\ntail-latency ratio (droptail / trim): %.1fx\n",
              droptail.max_fct_us / trim.max_fct_us);
  return 0;
}
