// Topology builders: dumbbell and two-tier leaf-spine fabrics.
//
// The dumbbell isolates one bottleneck link (baseline-vs-trimming FCT
// studies, §4.4's in-text numbers). The leaf-spine models the shared,
// oversubscribable fabric of the paper's motivating scenarios (§1): GPU
// hosts scattered across racks behind an oversubscribed second tier.
#pragma once

#include <cstddef>
#include <vector>

#include "net/host.h"
#include "net/sim.h"
#include "net/switch_node.h"

namespace trimgrad::net {

struct FabricConfig {
  LinkSpec edge_link{};              ///< host <-> first switch
  LinkSpec core_link{};              ///< switch <-> switch
  QueueConfig switch_queue{};        ///< applied to every switch egress port
  QueueConfig host_queue{
      QueuePolicy::kDropTail,
      // Hosts get deep NIC queues: the fabric, not the NIC, is under test.
      static_cast<std::size_t>(16) * 1024 * 1024,
      64 * 1024,
      8 * 1024 * 1024,
  };
};

/// Dumbbell: `n_left` hosts — switch L — bottleneck — switch R — `n_right`
/// hosts. Routes installed both ways.
struct Dumbbell {
  std::vector<NodeId> left_hosts;
  std::vector<NodeId> right_hosts;
  NodeId left_switch = kInvalidNode;
  NodeId right_switch = kInvalidNode;
};

Dumbbell build_dumbbell(Simulator& sim, std::size_t n_left,
                        std::size_t n_right, const FabricConfig& cfg);

/// Two-tier leaf-spine: `hosts_per_leaf` hosts under each of `n_leaves`
/// leaves, all leaves connected to every one of `n_spines` spines; per-flow
/// ECMP across spines. Oversubscription = (hosts_per_leaf·edge_bw) /
/// (n_spines·core_bw), controlled via FabricConfig link specs.
struct LeafSpine {
  std::vector<std::vector<NodeId>> hosts;  ///< [leaf][i]
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;

  /// Flattened host list.
  std::vector<NodeId> all_hosts() const;
};

LeafSpine build_leaf_spine(Simulator& sim, std::size_t n_leaves,
                           std::size_t n_spines, std::size_t hosts_per_leaf,
                           const FabricConfig& cfg);

}  // namespace trimgrad::net
