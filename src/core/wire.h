// Wire-format serialization of trimmable packets and metadata.
//
// Everything else in the library models packets as structs; this module
// pins down the actual byte layout, so that (a) a real implementation could
// interoperate, and (b) the defining property of the design can be tested
// literally: *truncating the serialized bytes at the trim point and parsing
// what remains yields exactly the trimmed packet*.
//
// Packet layout (application header; rides inside the paper's modeled
// 42-byte Ethernet/IP/UDP envelope, which is accounted separately):
//
//   offset  size  field
//   0       4     magic "TGP1"
//   4       4     msg_id        (little-endian u32)
//   8       4     row_id
//   12      4     coord_base
//   16      2     n_coords      (u16)
//   18      2     seq
//   20      1     scheme
//   21      1     p_bits
//   22      1     q_bits
//   23      1     flags         (bit 0: trimmed)
//   24      2     head_bytes    (u16; length of the head region)
//   26      2     tail_bytes    (u16; length of the tail region AS SENT)
//   28      4     head_crc      (CRC32C over bytes [0,28) + head region)
//   32      4     tail_crc      (CRC32C over the tail region as sent)
//   36      —     head region bytes, then tail region bytes
//
// The trim point of a serialized packet is 36 + head_bytes: a switch that
// cuts the buffer there produces a shorter, still-parsable packet (the
// parser infers trimming from the missing tail; it does not trust flags).
//
// The two checksums split exactly at the trim point so a receiver can
// distinguish the two ways a packet loses bytes: a *trimmed* packet (cut at
// or beyond the trim point) still verifies head_crc and is a legitimate
// §2/§3 delivery, while a *mangled* packet (bit flips anywhere) fails a CRC
// and must be NACKed — without the split, trimming would be
// indistinguishable from corruption and the whole substrate would have to
// retransmit. parse_packet_verified() returns the four-way verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/codec.h"

namespace trimgrad::core {

inline constexpr std::size_t kWireHeaderBytes = 36;
inline constexpr std::uint32_t kWireMagic = 0x31504754;  // "TGP1" LE

/// CRC32C (Castagnoli). Chain regions by passing the previous return value
/// as `seed`. Dispatches to the x86 crc32 instruction when the CPU has it
/// (and core/simd.h's active ISA is not forced to scalar), else to the
/// slice-by-8 table implementation; all paths are byte-identical, verified
/// against the RFC 3720 test vectors in tests/core/wire_test.cpp.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0) noexcept;

/// Bitwise reference implementation (1 bit per step). The ground truth the
/// fast paths are tested against; not used on any hot path.
std::uint32_t crc32c_reference(std::span<const std::uint8_t> data,
                               std::uint32_t seed = 0) noexcept;

/// Table-driven slice-by-8 implementation (8 bytes per step).
std::uint32_t crc32c_table(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0) noexcept;

/// Hardware crc32-instruction implementation; falls back to crc32c_table
/// when the CPU lacks SSE4.2 (or on non-x86 builds).
std::uint32_t crc32c_hw(std::span<const std::uint8_t> data,
                        std::uint32_t seed = 0) noexcept;

/// Serialize a packet to its exact wire bytes (application layer).
std::vector<std::uint8_t> serialize_packet(const GradientPacket& pkt);

/// Trim point of a serialized packet: keep this many bytes to keep the
/// whole head region.
std::size_t wire_trim_point(const GradientPacket& pkt) noexcept;

/// How a received buffer relates to what the sender put on the wire.
enum class WireVerdict : std::uint8_t {
  kFull = 0,      ///< intact: both regions present and CRC-verified
  kTrimmed = 1,   ///< head intact + verified, tail (partially) cut away
  kCorrupt = 2,   ///< well-formed framing but a CRC mismatch: NACK it
  kMalformed = 3, ///< not parsable at all (bad magic, cut mid-head, ...)
};

const char* to_string(WireVerdict v) noexcept;

struct ParsedPacket {
  WireVerdict verdict = WireVerdict::kMalformed;
  /// Present for kFull and kTrimmed only.
  std::optional<GradientPacket> packet;
};

/// Parse + verify a (possibly byte-truncated) buffer. A buffer cut anywhere
/// in the tail region parses as a trimmed packet with the tail dropped
/// (what a trimming switch produces); bit-exact tails require the full
/// buffer. Flipped bytes anywhere in the header, head, or a fully present
/// tail yield kCorrupt (or kMalformed when the framing itself breaks).
ParsedPacket parse_packet_verified(std::span<const std::uint8_t> data);

/// Convenience wrapper: the packet for kFull/kTrimmed verdicts, nullopt for
/// kCorrupt/kMalformed.
std::optional<GradientPacket> parse_packet(std::span<const std::uint8_t> data);

/// Serialize / parse the reliable metadata (never trimmed, so symmetric; a
/// trailing CRC32C over the preceding bytes rejects any in-flight damage).
std::vector<std::uint8_t> serialize_meta(const MessageMeta& meta);
std::optional<MessageMeta> parse_meta(std::span<const std::uint8_t> data);

}  // namespace trimgrad::core
