file(REMOVE_RECURSE
  "CMakeFiles/test_net_sim.dir/net/sim_test.cpp.o"
  "CMakeFiles/test_net_sim.dir/net/sim_test.cpp.o.d"
  "test_net_sim"
  "test_net_sim.pdb"
  "test_net_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
