#include "net/transport_registry.h"

#include <algorithm>
#include <stdexcept>

#include "net/ecn_transport.h"
#include "net/host.h"
#include "net/pull_transport.h"
#include "net/transport.h"

namespace trimgrad::net {
namespace {

Host& host_at(Simulator& sim, NodeId id) {
  return static_cast<Host&>(sim.node(id));
}

// ------------------------------------------------------- window transports --

class WindowFlow final : public Flow {
 public:
  WindowFlow(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
             const TransportConfig& cfg, FlowOptions options) {
    receiver_ = std::make_unique<Receiver>(
        host_at(sim, dst), src, flow_id, options.expected_packets, cfg,
        std::move(options.on_data), std::move(options.on_receiver_complete));
    sender_ = std::make_unique<Sender>(host_at(sim, src), dst, flow_id, cfg);
  }

  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete) override {
    sender_->send_message(std::move(items), std::move(on_complete));
  }
  void abort() override { sender_->abort(); }
  bool sender_active() const override { return sender_->active(); }
  SimTime current_rto() const override { return sender_->current_rto(); }
  const FlowStats& stats() const override { return sender_->stats(); }
  const ReceiverStats& receiver_stats() const override {
    return receiver_->stats();
  }

 private:
  std::unique_ptr<Receiver> receiver_;
  std::unique_ptr<Sender> sender_;
};

class WindowTransport final : public Transport {
 public:
  WindowTransport(std::string name, const char* summary, bool trim_delivered)
      : name_(std::move(name)),
        summary_(summary),
        trim_delivered_(trim_delivered) {}

  const std::string& name() const override { return name_; }
  const char* summary() const override { return summary_; }
  bool delivers_trimmed() const override { return trim_delivered_; }

  std::unique_ptr<Flow> make_flow(Simulator& sim, NodeId src, NodeId dst,
                                  std::uint32_t flow_id,
                                  const FlowTuning& tuning,
                                  FlowOptions options) const override {
    TransportConfig cfg = trim_delivered_ ? TransportConfig::trim_aware()
                                          : TransportConfig::reliable();
    if (tuning.window > 0) cfg.window = tuning.window;
    if (tuning.rto > 0) cfg.rto = tuning.rto;
    if (tuning.rto_cap > 0) cfg.rto_cap = tuning.rto_cap;
    cfg.retransmit_budget = tuning.retransmit_budget;
    cfg.flow_deadline = tuning.flow_deadline;
    return std::make_unique<WindowFlow>(sim, src, dst, flow_id, cfg,
                                        std::move(options));
  }

 private:
  std::string name_;
  const char* summary_;
  bool trim_delivered_;
};

// --------------------------------------------------------- pull transport --

class PullFlowImpl final : public Flow {
 public:
  PullFlowImpl(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
               const PullConfig& cfg, FlowOptions options) {
    receiver_ = std::make_unique<PullReceiver>(
        host_at(sim, dst), src, flow_id, options.expected_packets, cfg,
        std::move(options.on_data), std::move(options.on_receiver_complete));
    sender_ = std::make_unique<PullSender>(host_at(sim, src), dst, flow_id,
                                           cfg);
  }

  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete) override {
    sender_->send_message(std::move(items), std::move(on_complete));
  }
  void abort() override { sender_->abort(); }
  bool sender_active() const override { return sender_->active(); }
  SimTime current_rto() const override { return sender_->current_rto(); }
  const FlowStats& stats() const override { return sender_->stats(); }
  const ReceiverStats& receiver_stats() const override {
    return receiver_->stats();
  }

 private:
  std::unique_ptr<PullReceiver> receiver_;
  std::unique_ptr<PullSender> sender_;
};

class PullTransport final : public Transport {
 public:
  const std::string& name() const override { return name_; }
  const char* summary() const override {
    return "NDP-style receiver-paced pull transport, trim-aware";
  }
  bool delivers_trimmed() const override { return true; }

  std::unique_ptr<Flow> make_flow(Simulator& sim, NodeId src, NodeId dst,
                                  std::uint32_t flow_id,
                                  const FlowTuning& tuning,
                                  FlowOptions options) const override {
    PullConfig cfg;
    if (tuning.window > 0) cfg.initial_burst = tuning.window;
    if (tuning.rto > 0) cfg.rto = tuning.rto;
    if (tuning.rto_cap > 0) cfg.rto_cap = tuning.rto_cap;
    cfg.retransmit_budget = tuning.retransmit_budget;
    cfg.flow_deadline = tuning.flow_deadline;
    return std::make_unique<PullFlowImpl>(sim, src, dst, flow_id, cfg,
                                          std::move(options));
  }

 private:
  std::string name_ = "pull";
};

// ---------------------------------------------------------- ECN transport --

class EcnFlowImpl final : public Flow {
 public:
  EcnFlowImpl(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
              const EcnConfig& cfg, FlowOptions options) {
    receiver_ = std::make_unique<EcnReceiver>(
        host_at(sim, dst), src, flow_id, options.expected_packets, cfg,
        std::move(options.on_data), std::move(options.on_receiver_complete));
    sender_ = std::make_unique<EcnSender>(host_at(sim, src), dst, flow_id,
                                          cfg);
  }

  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete) override {
    sender_->send_message(std::move(items), std::move(on_complete));
  }
  void abort() override { sender_->abort(); }
  bool sender_active() const override { return sender_->active(); }
  SimTime current_rto() const override { return sender_->current_rto(); }
  const FlowStats& stats() const override { return sender_->stats(); }
  const ReceiverStats& receiver_stats() const override {
    return receiver_->stats();
  }

 private:
  std::unique_ptr<EcnReceiver> receiver_;
  std::unique_ptr<EcnSender> sender_;
};

class EcnTransport final : public Transport {
 public:
  const std::string& name() const override { return name_; }
  const char* summary() const override {
    return "DCTCP ECN-reactive window transport, trim-aware";
  }
  bool delivers_trimmed() const override { return true; }

  std::unique_ptr<Flow> make_flow(Simulator& sim, NodeId src, NodeId dst,
                                  std::uint32_t flow_id,
                                  const FlowTuning& tuning,
                                  FlowOptions options) const override {
    EcnConfig cfg;
    if (tuning.window > 0) cfg.initial_window = tuning.window;
    if (tuning.rto > 0) cfg.rto = tuning.rto;
    if (tuning.rto_cap > 0) cfg.rto_cap = tuning.rto_cap;
    cfg.retransmit_budget = tuning.retransmit_budget;
    cfg.flow_deadline = tuning.flow_deadline;
    return std::make_unique<EcnFlowImpl>(sim, src, dst, flow_id, cfg,
                                         std::move(options));
  }

 private:
  std::string name_ = "ecn";
};

}  // namespace

// ---------------------------------------------------------------- registry --

const TransportRegistry& TransportRegistry::global() {
  static const TransportRegistry* reg = [] {
    auto* r = new TransportRegistry();
    r->add(std::make_unique<WindowTransport>(
        "trim", "window/ACK-clocked, trimmed arrivals delivered (the paper)",
        /*trim_delivered=*/true));
    r->add(std::make_unique<WindowTransport>(
        "reliable", "window/ACK-clocked, trimmed arrivals NACKed (baseline)",
        /*trim_delivered=*/false));
    r->add(std::make_unique<PullTransport>());
    r->add(std::make_unique<EcnTransport>());
    return r;
  }();
  return *reg;
}

const Transport* TransportRegistry::find(const std::string& name) const {
  for (const auto& t : transports_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

const Transport& TransportRegistry::at(const std::string& name) const {
  if (const Transport* t = find(name)) return *t;
  std::string msg = "unknown transport '" + name + "'; registered:";
  for (const auto& n : names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> TransportRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(transports_.size());
  for (const auto& t : transports_) out.push_back(t->name());
  std::sort(out.begin(), out.end());
  return out;
}

void TransportRegistry::add(std::unique_ptr<Transport> transport) {
  transports_.push_back(std::move(transport));
}

}  // namespace trimgrad::net
