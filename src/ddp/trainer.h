// Distributed data-parallel trainer — the PyTorch-DDP substitute that the
// figure reproductions drive.
//
// W model replicas train on worker shards of each global batch. After the
// backward pass, flat gradient buckets (the analogue of DDP's 25 MB fusion
// buckets the paper hooks, §3.2) go through a trimmable-codec all-reduce
// over the configured Channel. The simulated wall clock for a round is
//
//   round = max_w(compute_w) + encode + comm + decode
//
// where compute is measured CPU time for forward+backward, encode/decode
// are measured codec time (the paper's Fig. 5 "encoding overhead"), and
// comm is the channel's simulated transfer time (trim/drop penalties for
// the reliable baseline included). Per-epoch records give accuracy vs
// simulated time — exactly the axes of Figures 3 and 4.
//
// The W replicas' forward/backward passes run concurrently on the global
// ThreadPool (see core/threadpool.h): batches are assembled sequentially
// first (one augmentation RNG stream, consumed in rank order, identical to
// the fully sequential trainer), then each rank's compute runs on the pool
// into per-rank slots, with loss/compute-time reductions in rank order
// afterwards — so one round produces bit-identical losses, gradients, and
// updated weights for any thread count. The simulated clock model (max
// over per-rank compute, then encode + comm + decode) is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "collective/allreduce.h"
#include "core/policy.h"
#include "ddp/checkpoint.h"
#include "ml/data.h"
#include "ml/loss.h"
#include "ml/model.h"
#include "ml/optim.h"

namespace trimgrad::net {
class InvariantMonitor;
}  // namespace trimgrad::net

namespace trimgrad::ddp {

class Membership;

struct TrainerConfig {
  int world = 4;
  std::size_t global_batch = 64;  ///< paper §4.1: batch size 64
  std::size_t epochs = 20;
  ml::SgdConfig sgd{};            ///< defaults match §4.1
  core::CodecConfig codec{};
  collective::Algorithm algo = collective::Algorithm::kPs;
  /// Gradient bucket size in floats (25 MB / 4 B ≈ 6.5 M in PyTorch; scaled
  /// to model size here). 0 = single bucket.
  std::size_t bucket_floats = 0;
  std::uint64_t shuffle_seed = 99;
  std::uint64_t augment_seed = 17;
  /// Deterministic clock (see ddp/clock_model.h): charge a fixed modeled
  /// accelerator time per round plus calibrated per-coordinate codec costs,
  /// instead of live CPU measurements that vary with machine load. Set
  /// false to measure everything live (Fig. 5 part 1 does both).
  bool modeled_clock = true;
  double compute_round_s = 10e-3;  ///< modeled fwd+bwd time per round
  std::size_t eval_every = 1;  ///< epochs between test-set evaluations
  std::size_t eval_batch = 256;
  /// Straggler injection (net::StragglerSchedule): when > 1, one
  /// seed-chosen rank per epoch has its compute time scaled by this factor
  /// — the host-pause half of the fault plane.
  double straggler_factor = 1.0;
  std::uint64_t fault_seed = 1;  ///< keys the per-epoch straggler choice
  /// Error feedback: accumulate each rank's local quantization error
  /// (sent − decode(encode(sent))) into a residual added to the next
  /// round's gradient. The residual is part of a rank's checkpointed state.
  bool error_feedback = false;
  /// Per-round compression control plane (core/policy.h). The policy's base
  /// codec and tail depth are always re-seeded from `codec` at construction
  /// (whatever `policy.codec`/`policy.q_bits` say), so the default "fixed"
  /// policy reproduces the pinned-codec path bit-exactly.
  core::PolicyConfig policy{};
};

/// Per-round time breakdown (Fig. 5's bars).
struct RoundBreakdown {
  double compute_s = 0;
  double encode_s = 0;
  double comm_s = 0;
  double decode_s = 0;
  double total() const noexcept {
    return compute_s + encode_s + comm_s + decode_s;
  }
};

struct EpochRecord {
  std::size_t epoch = 0;
  double sim_time_s = 0;  ///< cumulative simulated wall clock
  double train_loss = 0;
  double top1 = -1;       ///< −1 when the epoch was not evaluated
  double top5 = -1;
  RoundBreakdown mean_round;
  std::size_t trimmed_packets = 0;
  std::size_t dropped_packets = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t wire_bytes = 0;
  /// Max L∞ distance between rank-0 and other replicas' parameters —
  /// quantifies the drift lossy broadcast introduces.
  double replica_divergence = 0;
  /// Fault-plane visibility: contributions lost to failed flows and rounds
  /// that proceeded degraded (collective::AllReduceStats, summed), plus
  /// which rank (if any) was the injected straggler this epoch.
  std::size_t missing_ranks = 0;
  std::size_t degraded_rounds = 0;
  int straggler_rank = -1;  ///< −1 when no straggler was injected
  /// Elastic membership (ddp/membership.h): ranks re-admitted this epoch
  /// and the view version in force when the epoch ended. 0 recovered with
  /// a stable view is the answer to "did missing_ranks ever heal": with a
  /// membership attached, recovery is now visible per epoch.
  std::size_t recovered_ranks = 0;
  std::uint64_t view_version = 0;
};

class DdpTrainer {
 public:
  using ModelFactory = std::function<std::unique_ptr<ml::Sequential>()>;

  DdpTrainer(const ml::SynthCifar& data, collective::Channel& channel,
             TrainerConfig cfg, const ModelFactory& factory);

  /// Run the full schedule; one record per epoch.
  std::vector<EpochRecord> train();

  /// Run a single epoch (exposed for fine-grained benches/tests).
  EpochRecord run_epoch(std::size_t epoch);

  /// Evaluate rank-0's replica on the test set.
  void evaluate(EpochRecord& rec);

  double sim_time() const noexcept { return sim_time_s_; }
  ml::Sequential& replica(int rank) { return *replicas_.at(rank); }

  /// Attach the elastic control plane (nullptr detaches). Each round then
  /// starts with a heartbeat poll; evicted ranks stop computing, the
  /// collective runs over the membership's view (the reducer is pointed at
  /// it here — point the channel at it separately via SimChannel::set_view),
  /// checkpoints are stored every cfg ckpt_every rounds, and recovered
  /// ranks are rejoined at round boundaries. The membership must outlive
  /// the trainer while attached.
  void attach_membership(Membership* membership);

  /// Attach an invariant monitor (net/invariants.h); nullptr detaches. The
  /// trainer reports each epoch's cumulative simulated time so the monitor
  /// can assert the clock advances every epoch. The monitor must outlive
  /// the trainer while attached.
  void set_invariant_monitor(net::InvariantMonitor* monitor) noexcept {
    monitor_ = monitor;
  }

  /// Capture rank's full training state (see ddp/checkpoint.h).
  Checkpoint make_checkpoint(int rank, std::size_t epoch,
                             std::uint64_t round) const;
  /// Apply a checkpoint to rank: parameters, optimizer, residual. (The
  /// augment RNG cursor and the compression control plane are whole-trainer
  /// state, restored only by a full restart via restore_control_plane, not
  /// a single-rank rejoin — the live trainer's controller keeps steering.)
  void restore_rank(int rank, const Checkpoint& ck);

  /// The decision the policy made for each round run so far, in order.
  /// Comparing two runs' decision sequences is the cheap digest for "the
  /// control trajectory is bit-identical across TRIMGRAD_THREADS".
  const std::vector<core::PolicyDecision>& decisions() const noexcept {
    return decisions_;
  }
  /// The feedback snapshot the next round's decision will see.
  const core::NetFeedback& last_feedback() const noexcept { return last_fb_; }
  /// The codec configuration currently on the wire.
  const core::CodecConfig& active_codec() const noexcept {
    return active_codec_;
  }

  /// Serialized control-plane state (policy controller + last feedback) —
  /// what make_checkpoint embeds as Checkpoint::policy_state.
  std::vector<std::uint8_t> policy_state_blob() const;
  /// Full-restart restore at a round boundary: re-seats the policy
  /// controller, the feedback snapshot, and the augment-RNG cursor from a
  /// checkpoint, so the restarted trainer replays the same decision
  /// sequence bit-identically. Throws std::runtime_error on a malformed
  /// blob; a v1 checkpoint (empty blob) restores only the RNG cursor.
  void restore_control_plane(const Checkpoint& ck);

  const std::vector<float>& residual(int rank) const {
    return residuals_.at(rank);
  }

 private:
  std::vector<std::vector<float>> all_reduce_buckets(
      const std::vector<std::vector<float>>& grads, std::size_t epoch,
      std::uint32_t round, EpochRecord& rec, RoundBreakdown& rb);
  void apply_error_feedback(std::vector<std::vector<float>>& grads,
                            const std::vector<std::uint8_t>& live_mask,
                            std::size_t epoch, std::uint32_t round);
  void try_rejoin(int rank, std::uint64_t round, EpochRecord& rec,
                  RoundBreakdown& rb);
  /// Consult the policy for `round` and, when the decision changed, swap
  /// the reducer's codec (and the EF encoders) to match.
  void apply_policy(std::uint64_t round);
  /// Project a decision onto the run's codec config: scheme + tail depth
  /// change, everything else (layout, seeds, codec knobs) is inherited.
  core::CodecConfig codec_for(const core::PolicyDecision& d,
                              std::uint64_t round) const;
  void rebuild_ef_encoders();

  const ml::SynthCifar& data_;
  collective::Channel& channel_;
  TrainerConfig cfg_;
  collective::AllReducer reducer_;
  ml::Batcher batcher_;
  std::vector<std::unique_ptr<ml::Sequential>> replicas_;
  std::vector<std::unique_ptr<ml::SgdMomentum>> optims_;
  core::Xoshiro256 augment_rng_;
  double sim_time_s_ = 0;
  Membership* membership_ = nullptr;
  net::InvariantMonitor* monitor_ = nullptr;
  /// Per-rank error-feedback residuals (empty vectors until first use;
  /// always sized `world` so checkpoints can serialize them).
  std::vector<std::vector<float>> residuals_;
  /// Per-rank encoders for the local EF round-trip (each owns its own
  /// private stochastic-rounding stream, like the reducer's senders).
  std::vector<std::unique_ptr<core::TrimmableEncoder>> ef_encoders_;
  /// The compression control plane: policy, the decision currently in
  /// force, the codec config it projects to, and the feedback the next
  /// decision will see. All deterministic; decisions_ is the audit trail.
  std::unique_ptr<core::CompressionPolicy> policy_;
  core::PolicyDecision active_;
  core::CodecConfig active_codec_;
  core::NetFeedback last_fb_{};
  std::vector<core::PolicyDecision> decisions_;
};

}  // namespace trimgrad::ddp
