file(REMOVE_RECURSE
  "CMakeFiles/trimgrad_ml.dir/data.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/data.cpp.o.d"
  "CMakeFiles/trimgrad_ml.dir/layers.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/layers.cpp.o.d"
  "CMakeFiles/trimgrad_ml.dir/loss.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/loss.cpp.o.d"
  "CMakeFiles/trimgrad_ml.dir/model.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/model.cpp.o.d"
  "CMakeFiles/trimgrad_ml.dir/optim.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/optim.cpp.o.d"
  "CMakeFiles/trimgrad_ml.dir/tensor.cpp.o"
  "CMakeFiles/trimgrad_ml.dir/tensor.cpp.o.d"
  "libtrimgrad_ml.a"
  "libtrimgrad_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trimgrad_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
