#include "core/magnitude.h"

#include <algorithm>
#include <cmath>

namespace trimgrad::core {

std::vector<std::uint32_t> magnitude_order(std::span<const float> values) {
  std::vector<std::uint32_t> perm(values.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::fabs(values[a]) > std::fabs(values[b]);
  });
  return perm;
}

std::vector<float> apply_permutation(std::span<const float> values,
                                     std::span<const std::uint32_t> perm) {
  std::vector<float> out(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = values[perm[i]];
  return out;
}

std::vector<float> invert_permutation(std::span<const float> placed,
                                      std::span<const std::uint32_t> perm,
                                      std::span<const std::uint8_t> survived) {
  std::vector<float> out(perm.size(), 0.0f);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (i < survived.size() && survived[i] == 0) continue;
    out[perm[i]] = placed[i];
  }
  return out;
}

std::size_t permutation_overhead_bytes(std::size_t n) noexcept {
  if (n <= 1) return 0;
  unsigned bits = 0;
  std::size_t v = n - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return (static_cast<std::size_t>(bits) * n + 7) / 8;
}

}  // namespace trimgrad::core
