#include "core/wire.h"

#include <cstring>

namespace trimgrad::core {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  put_u32(out, b);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool has(std::size_t n) const noexcept { return off_ + n <= data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - off_; }

  std::uint16_t u16() noexcept {
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[off_] | (static_cast<std::uint16_t>(data_[off_ + 1]) << 8));
    off_ += 2;
    return v;
  }
  std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[off_ + i]) << (8 * i);
    off_ += 4;
    return v;
  }
  std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[off_ + i]) << (8 * i);
    off_ += 8;
    return v;
  }
  float f32() noexcept {
    const std::uint32_t b = u32();
    float v;
    std::memcpy(&v, &b, 4);
    return v;
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(data_.begin() + off_,
                                  data_.begin() + off_ + n);
    off_ += n;
    return out;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
};

/// Offset of the head_crc field (the non-CRC header prefix it covers).
constexpr std::size_t kCrcFieldOffset = 28;

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : data) {
    crc ^= b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

const char* to_string(WireVerdict v) noexcept {
  switch (v) {
    case WireVerdict::kFull: return "full";
    case WireVerdict::kTrimmed: return "trimmed";
    case WireVerdict::kCorrupt: return "corrupt";
    case WireVerdict::kMalformed: return "malformed";
  }
  return "?";
}

std::vector<std::uint8_t> serialize_packet(const GradientPacket& pkt) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderBytes + pkt.head_region.size() +
              pkt.tail_region.size());
  put_u32(out, kWireMagic);
  put_u32(out, pkt.msg_id);
  put_u32(out, pkt.row_id);
  put_u32(out, pkt.coord_base);
  put_u16(out, pkt.n_coords);
  put_u16(out, pkt.seq);
  out.push_back(static_cast<std::uint8_t>(pkt.scheme));
  out.push_back(pkt.p_bits);
  out.push_back(pkt.q_bits);
  out.push_back(pkt.trimmed ? 1 : 0);
  put_u16(out, static_cast<std::uint16_t>(pkt.head_region.size()));
  put_u16(out, static_cast<std::uint16_t>(pkt.tail_region.size()));
  // head_crc chains the header prefix with the head region; tail_crc covers
  // the tail alone, so a trim (which removes exactly the tail) invalidates
  // neither.
  const std::uint32_t head_crc =
      crc32c(pkt.head_region, crc32c({out.data(), kCrcFieldOffset}));
  put_u32(out, head_crc);
  put_u32(out, crc32c(pkt.tail_region));
  out.insert(out.end(), pkt.head_region.begin(), pkt.head_region.end());
  out.insert(out.end(), pkt.tail_region.begin(), pkt.tail_region.end());
  return out;
}

std::size_t wire_trim_point(const GradientPacket& pkt) noexcept {
  return kWireHeaderBytes + pkt.head_region.size();
}

ParsedPacket parse_packet_verified(std::span<const std::uint8_t> data) {
  Cursor c(data);
  if (!c.has(kWireHeaderBytes)) return {};
  if (c.u32() != kWireMagic) return {};

  GradientPacket pkt;
  pkt.msg_id = c.u32();
  pkt.row_id = c.u32();
  pkt.coord_base = c.u32();
  pkt.n_coords = c.u16();
  pkt.seq = c.u16();
  const std::uint8_t scheme = data[20];
  if (scheme > static_cast<std::uint8_t>(Scheme::kRHT)) return {};
  pkt.scheme = static_cast<Scheme>(scheme);
  pkt.p_bits = data[21];
  pkt.q_bits = data[22];
  const bool flagged_trimmed = (data[23] & 1) != 0;
  c.bytes(4);  // skip scheme/p/q/flags already read positionally
  const std::uint16_t head_bytes = c.u16();
  const std::uint16_t tail_bytes = c.u16();
  const std::uint32_t head_crc = c.u32();
  const std::uint32_t tail_crc = c.u32();

  // The head region must be intact — switches never cut into it.
  if (!c.has(head_bytes)) return {};
  pkt.head_region = c.bytes(head_bytes);
  if (crc32c(pkt.head_region, crc32c(data.first(kCrcFieldOffset))) !=
      head_crc) {
    return {WireVerdict::kCorrupt, std::nullopt};
  }

  WireVerdict verdict = WireVerdict::kFull;
  if (c.remaining() >= tail_bytes) {
    pkt.tail_region = c.bytes(tail_bytes);
    if (c.remaining() != 0) return {};  // trailing garbage
    if (crc32c(pkt.tail_region) != tail_crc) {
      return {WireVerdict::kCorrupt, std::nullopt};
    }
    pkt.trimmed = flagged_trimmed && pkt.tail_region.empty();
    if (flagged_trimmed && !pkt.tail_region.empty()) {
      // Inconsistent flag: treat the bytes as authoritative.
      pkt.trimmed = false;
    }
    if (pkt.trimmed) verdict = WireVerdict::kTrimmed;
  } else {
    // Byte-truncated in the tail region: this is what a trimming switch
    // produces (head_crc above already vouched for everything kept).
    // Whatever partial tail survived is unusable (tails are only decodable
    // in full), so drop it.
    pkt.trimmed = true;
    pkt.tail_region.clear();
    if (pkt.scheme == Scheme::kBaseline) pkt.head_region.clear();
    verdict = WireVerdict::kTrimmed;
  }
  return {verdict, std::move(pkt)};
}

std::optional<GradientPacket> parse_packet(
    std::span<const std::uint8_t> data) {
  return parse_packet_verified(data).packet;
}

std::vector<std::uint8_t> serialize_meta(const MessageMeta& meta) {
  std::vector<std::uint8_t> out;
  put_u32(out, kWireMagic ^ 0xffffffffu);  // distinct magic for metadata
  put_u32(out, meta.msg_id);
  put_u64(out, meta.epoch);
  out.push_back(static_cast<std::uint8_t>(meta.scheme));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);  // padding
  put_u32(out, meta.total_coords);
  put_u32(out, meta.row_len);
  put_f32(out, meta.scalar_scale);
  put_u32(out, static_cast<std::uint32_t>(meta.row_scales.size()));
  for (float f : meta.row_scales) put_f32(out, f);
  put_u32(out, crc32c({out.data(), out.size()}));  // trailing checksum
  return out;
}

std::optional<MessageMeta> parse_meta(std::span<const std::uint8_t> data) {
  // Verify the trailing CRC first: metadata is never trimmed, so any
  // mismatch means damage and the whole buffer is rejected.
  if (data.size() < 36) return std::nullopt;
  const auto body = data.first(data.size() - 4);
  Cursor crc_c(data.subspan(body.size()));
  if (crc32c(body) != crc_c.u32()) return std::nullopt;
  data = body;
  Cursor c(data);
  if (!c.has(32)) return std::nullopt;
  if (c.u32() != (kWireMagic ^ 0xffffffffu)) return std::nullopt;
  MessageMeta meta;
  meta.msg_id = c.u32();
  meta.epoch = c.u64();
  const std::uint8_t scheme = data[16];
  if (scheme > static_cast<std::uint8_t>(Scheme::kRHT)) return std::nullopt;
  meta.scheme = static_cast<Scheme>(scheme);
  c.bytes(4);  // scheme + padding
  meta.total_coords = c.u32();
  meta.row_len = c.u32();
  meta.scalar_scale = c.f32();
  const std::uint32_t n_scales = c.u32();
  if (!c.has(static_cast<std::size_t>(n_scales) * 4)) return std::nullopt;
  meta.row_scales.reserve(n_scales);
  for (std::uint32_t i = 0; i < n_scales; ++i)
    meta.row_scales.push_back(c.f32());
  if (c.remaining() != 0) return std::nullopt;
  return meta;
}

}  // namespace trimgrad::core
