#include "core/rht_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bitpack.h"
#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

TEST(RhtCoordParts, RoundTripExact) {
  for (float r : {0.0f, 1.0f, -1.0f, 3.4e-12f, -9.9e20f, 0.333f}) {
    const bool head = !std::signbit(r);
    const std::uint32_t tail = float_bits(r) & 0x7fffffffu;
    EXPECT_EQ(rht_coord_from_parts(head, tail), r);
  }
}

TEST(RhtCoordTrimmed, IsSignTimesScale) {
  EXPECT_FLOAT_EQ(rht_coord_trimmed(true, 0.25f), 0.25f);
  EXPECT_FLOAT_EQ(rht_coord_trimmed(false, 0.25f), -0.25f);
}

TEST(RhtRow, UntrimmedDecodeRecoversInput) {
  // §3.2: "for the non-trimming case we achieved precise encoding of the
  // original 32-bit number" — modulo IRHT float rounding.
  const auto v = gaussian_vec(1024, 1);
  const StreamKey key{5, 1, 2, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);
  const std::vector<std::uint8_t> untrimmed(v.size(), 0);
  const auto dec = rht_decode_row(enc.heads, enc.tails, untrimmed,
                                  enc.scale_f, key);
  EXPECT_LT(nmse(dec, v), 1e-10);
}

TEST(RhtRow, WrongKeyFailsToRecover) {
  const auto v = gaussian_vec(512, 2);
  const RhtEncodedRow enc = rht_encode_row(v, StreamKey{5, 1, 2, 0});
  const std::vector<std::uint8_t> untrimmed(v.size(), 0);
  const auto dec = rht_decode_row(enc.heads, enc.tails, untrimmed,
                                  enc.scale_f, StreamKey{5, 1, 2, 1});
  EXPECT_GT(nmse(dec, v), 0.1);
}

TEST(RhtRow, ScaleMatchesPaperFormula) {
  const auto v = gaussian_vec(256, 3);
  const StreamKey key{9, 0, 0, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);
  // f = ‖V‖₂² / ‖R(V)‖₁: recompute R from the heads/tails.
  std::vector<float> rotated(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    rotated[i] = rht_coord_from_parts(enc.heads[i] != 0, enc.tails[i]);
  EXPECT_NEAR(enc.scale_f, l2_norm_sq(v) / l1_norm(rotated), 1e-6);
}

TEST(RhtRow, FullyTrimmedDecodeIsNearUnbiasedLowError) {
  // All tails trimmed: decode from sign bits + f alone. With the paper's
  // *unbiased* scale f = ‖V‖₂²/‖R‖₁ the NMSE on gaussian-like rows is
  // π/2 − 1 ≈ 0.571 (DRIVE's MSE-minimizing scale would give 1 − 2/π ≈
  // 0.363, but unbiasedness is what gradient averaging needs).
  const std::size_t n = 1 << 14;
  const auto v = gaussian_vec(n, 4);
  const StreamKey key{11, 3, 7, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);
  const std::vector<std::uint8_t> all_trimmed(n, 1);
  const auto dec = rht_decode_row(enc.heads, enc.tails, all_trimmed,
                                  enc.scale_f, key);
  const double e = nmse(dec, v);
  EXPECT_NEAR(e, 3.14159265 / 2.0 - 1.0, 0.05);
}

TEST(RhtRow, FullyTrimmedBeatsSignSigmaOnSkewedInput) {
  // The rotation's raison d'être: on a non-symmetric input, RHT+sign+f
  // decodes far better than naive sign·σ.
  const std::size_t n = 1 << 12;
  Xoshiro256 rng(5);
  std::vector<float> v(n);
  for (auto& x : v) x = 1.0f + 0.1f * static_cast<float>(rng.gaussian());

  const StreamKey key{13, 0, 0, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);
  const std::vector<std::uint8_t> all_trimmed(n, 1);
  const auto dec = rht_decode_row(enc.heads, enc.tails, all_trimmed,
                                  enc.scale_f, key);
  const double rht_err = nmse(dec, v);

  // Naive sign·σ on the raw input: every coordinate is ±σ = ±0.1-ish while
  // the truth is ≈1.0 — NMSE ≈ 0.8+.
  const float sigma = static_cast<float>(stddev(v));
  std::vector<float> naive(n);
  for (std::size_t i = 0; i < n; ++i) naive[i] = v[i] >= 0 ? sigma : -sigma;
  const double naive_err = nmse(naive, v);

  EXPECT_LT(rht_err, 0.65);
  EXPECT_GT(naive_err, 0.7);
  EXPECT_LT(rht_err, naive_err * 0.85);
}

TEST(RhtRow, PartialTrimErrorScalesWithTrimFraction) {
  const std::size_t n = 1 << 13;
  const auto v = gaussian_vec(n, 6);
  const StreamKey key{17, 1, 1, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);

  double prev_err = -1.0;
  for (double rate : {0.0, 0.1, 0.5, 1.0}) {
    std::vector<std::uint8_t> mask(n, 0);
    Xoshiro256 rng(static_cast<std::uint64_t>(rate * 1000) + 71);
    for (auto& m : mask) m = rng.bernoulli(rate) ? 1 : 0;
    const auto dec = rht_decode_row(enc.heads, enc.tails, mask, enc.scale_f, key);
    const double e = nmse(dec, v);
    EXPECT_GT(e, prev_err) << "rate=" << rate;
    prev_err = e;
  }
}

TEST(RhtRow, ZeroRowEncodesAndDecodesToZero) {
  const std::vector<float> zeros(64, 0.0f);
  const StreamKey key{1, 1, 1, 0};
  const RhtEncodedRow enc = rht_encode_row(zeros, key);
  EXPECT_FLOAT_EQ(enc.scale_f, 0.0f);
  const std::vector<std::uint8_t> all_trimmed(64, 1);
  const auto dec = rht_decode_row(enc.heads, enc.tails, all_trimmed,
                                  enc.scale_f, key);
  for (float x : dec) EXPECT_FLOAT_EQ(x, 0.0f);
}

class RhtTrimRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RhtTrimRateSweep, NmseBoundedByFullTrimError) {
  const double rate = GetParam();
  const std::size_t n = 1 << 12;
  const auto v = gaussian_vec(n, 42);
  const StreamKey key{23, 2, 2, 0};
  const RhtEncodedRow enc = rht_encode_row(v, key);
  std::vector<std::uint8_t> mask(n, 0);
  Xoshiro256 rng(static_cast<std::uint64_t>(rate * 10000) + 3);
  for (auto& m : mask) m = rng.bernoulli(rate) ? 1 : 0;
  const auto dec = rht_decode_row(enc.heads, enc.tails, mask, enc.scale_f, key);
  // Per-coordinate trim error is independent; expected NMSE ≈ rate·(π/2−1).
  EXPECT_LT(nmse(dec, v), rate * 0.75 + 0.02) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, RhtTrimRateSweep,
                         ::testing::Values(0.001, 0.01, 0.02, 0.1, 0.25, 0.5,
                                           0.9));

}  // namespace
}  // namespace trimgrad::core
