#include "net/ecn_transport.h"

#include <cassert>
#include <cmath>

#include "core/metrics.h"

namespace trimgrad::net {
namespace {

struct EcnTelemetry {
  core::Counter marked_acks;
  core::Gauge alpha;

  static const EcnTelemetry& get() {
    static const EcnTelemetry t{
        core::MetricsRegistry::global().counter("net.ecn.marked_acks"),
        core::MetricsRegistry::global().gauge("net.ecn.alpha"),
    };
    return t;
  }
};

}  // namespace

// ------------------------------------------------------------- EcnSender --

EcnSender::EcnSender(Host& host, NodeId dst, std::uint32_t flow_id,
                     EcnConfig cfg)
    : host_(host), flow_id_(flow_id), cfg_(cfg), core_(host, dst, flow_id) {
  host_.bind(flow_id_, this);
}

EcnSender::~EcnSender() { host_.unbind(flow_id_); }

void EcnSender::send_message(
    std::vector<SendItem> items,
    std::function<void(const FlowStats&)> on_complete) {
  assert(!core_.active());
  sent_unacked_ = 0;
  window_ = cfg_.initial_window;
  round_acks_ = 0;
  round_marks_ = 0;
  const FlowCore::Limits limits{cfg_.rto, cfg_.rto_cap, cfg_.retransmit_budget,
                                cfg_.flow_deadline};
  if (core_.begin(std::move(items), limits, std::move(on_complete))) return;
  try_send_new();
  core_.arm_timer();
}

void EcnSender::abort() { core_.abort(); }

void EcnSender::try_send_new() {
  while (sent_unacked_ < window_ && core_.has_unsent()) {
    core_.send_next_new();
    ++sent_unacked_;
  }
}

void EcnSender::end_of_window_round() {
  // DCTCP: alpha <- (1-g)·alpha + g·F, window scaled by (1 − alpha/2) when
  // any marks arrived this round, +1 otherwise.
  const double fraction =
      round_acks_ > 0
          ? static_cast<double>(round_marks_) / static_cast<double>(round_acks_)
          : 0.0;
  alpha_ = (1.0 - cfg_.gain) * alpha_ + cfg_.gain * fraction;
  EcnTelemetry::get().alpha.set(alpha_);
  if (round_marks_ > 0) {
    const auto cut = static_cast<std::size_t>(
        std::floor(static_cast<double>(window_) * (1.0 - alpha_ / 2.0)));
    window_ = std::max(cfg_.min_window, cut);
  } else {
    window_ = std::min(cfg_.max_window, window_ + 1);
  }
  round_acks_ = 0;
  round_marks_ = 0;
}

void EcnSender::on_frame(Frame frame) {
  if (!core_.active()) return;
  if (frame.kind == FrameKind::kNack) {
    core_.handle_nack(frame.ack_echo);
    return;
  }
  if (frame.kind != FrameKind::kAck) return;

  if (core_.mark_acked(frame.ack_echo, frame.ack_was_trimmed)) {
    assert(sent_unacked_ > 0);
    --sent_unacked_;
    ++round_acks_;
    if (frame.ecn) {
      ++round_marks_;
      EcnTelemetry::get().marked_acks.add();
    }
    if (round_acks_ >= window_) end_of_window_round();
    core_.arm_timer();
  }
  if (core_.all_acked()) {
    core_.complete();
  } else {
    try_send_new();
  }
}

// ----------------------------------------------------------- EcnReceiver --

EcnReceiver::EcnReceiver(Host& host, NodeId peer, std::uint32_t flow_id,
                         std::size_t expected_packets, EcnConfig cfg,
                         std::function<void(const Frame&)> on_data,
                         std::function<void(const ReceiverStats&)> on_complete)
    : host_(host),
      flow_id_(flow_id),
      core_(host, flow_id, expected_packets,
            ReceiverCore::Policy{cfg.trimmed_is_delivered,
                                 /*cumulative_ack=*/false,
                                 /*echo_ecn=*/true},
            std::move(on_data), std::move(on_complete)) {
  (void)peer;
  host_.bind(flow_id_, this);
}

EcnReceiver::~EcnReceiver() { host_.unbind(flow_id_); }

void EcnReceiver::on_frame(Frame frame) {
  if (!core_.pre_deliver(frame)) return;
  core_.deliver(frame);
  core_.maybe_complete();
}

// ---------------------------------------------------------------- EcnFlow --

EcnFlow::EcnFlow(Simulator& sim, NodeId src, NodeId dst,
                 std::uint32_t flow_id, EcnConfig cfg, std::size_t n_packets,
                 std::function<void(const Frame&)> on_data)
    : sim_(sim) {
  auto& src_host = static_cast<Host&>(sim.node(src));
  auto& dst_host = static_cast<Host&>(sim.node(dst));
  sender_ = std::make_unique<EcnSender>(src_host, dst, flow_id, cfg);
  receiver_ = std::make_unique<EcnReceiver>(dst_host, src, flow_id,
                                            n_packets, cfg,
                                            std::move(on_data));
}

void EcnFlow::start_at(SimTime when, std::vector<SendItem> items,
                       std::function<void(const FlowStats&)> on_complete) {
  assert(when >= sim_.now());
  sim_.schedule(when - sim_.now(), [this, items = std::move(items),
                                    cb = std::move(on_complete)]() mutable {
    sender_->send_message(std::move(items), [this, cb = std::move(cb)](
                                                const FlowStats& st) {
      done_ = true;
      if (cb) cb(st);
    });
  });
}

}  // namespace trimgrad::net
