// Experiment X7: simulator-kernel microbenchmarks (google-benchmark).
//
// Event throughput bounds how large a fabric/duration the closed-loop
// experiments can afford; these numbers put the "full-scale simulations"
// the paper calls for (§5.1) into engineering context.
#include <benchmark/benchmark.h>

#include "net/topology.h"
#include "net/traffic.h"

using namespace trimgrad::net;

namespace {

void BM_EventQueue(benchmark::State& state) {
  // Pure scheduling throughput: chains of self-rescheduling events.
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule(1e-9, tick);
    };
    sim.schedule(1e-9, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void BM_IncastSimulation(benchmark::State& state) {
  const auto senders = static_cast<std::size_t>(state.range(0));
  std::uint64_t frames = 0;
  for (auto _ : state) {
    Simulator sim;
    FabricConfig cfg;
    cfg.core_link = {10e9, 1e-6};
    cfg.switch_queue.policy = QueuePolicy::kTrim;
    cfg.switch_queue.capacity_bytes = 30 * 1024;
    const Dumbbell topo = build_dumbbell(sim, senders, 1, cfg);
    IncastPattern::Config icfg;
    icfg.packets_per_sender = 64;
    icfg.trim_size = 88;
    icfg.transport = TransportConfig::trim_aware();
    IncastPattern incast(sim, topo.left_hosts, topo.right_hosts[0], icfg);
    sim.run();
    frames += sim.delivered_frames();
    benchmark::DoNotOptimize(incast.max_fct());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.SetLabel("frames delivered");
}
BENCHMARK(BM_IncastSimulation)->Arg(4)->Arg(16)->Arg(64);

void BM_LeafSpineBackground(benchmark::State& state) {
  std::uint64_t frames = 0;
  for (auto _ : state) {
    Simulator sim;
    FabricConfig cfg;
    cfg.core_link = {40e9, 2e-6};
    cfg.switch_queue.policy = QueuePolicy::kTrim;
    const LeafSpine fabric = build_leaf_spine(sim, 3, 2, 4, cfg);
    PoissonTraffic::Config pcfg;
    pcfg.flows_per_sec = 5e5;
    pcfg.stop = 1e-3;
    pcfg.packets_per_flow = 8;
    pcfg.trim_size = 88;
    pcfg.transport = TransportConfig::trim_aware();
    PoissonTraffic bg(sim, fabric.all_hosts(), pcfg);
    sim.run();
    frames += sim.delivered_frames();
    benchmark::DoNotOptimize(bg.completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.SetLabel("frames delivered");
}
BENCHMARK(BM_LeafSpineBackground);

}  // namespace

BENCHMARK_MAIN();
