#include "core/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed,
                                float sigma = 1.0f) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = sigma * static_cast<float>(rng.gaussian());
  return v;
}

TEST(ScalarScale, SignUsesSigma) {
  auto v = gaussian_vec(50000, 1, 2.0f);
  const float s = scalar_scale(ScalarScheme::kSign, v);
  EXPECT_NEAR(s, 2.0f, 0.05f);
}

TEST(ScalarScale, SqSdUseTwoPointFiveSigma) {
  auto v = gaussian_vec(50000, 2, 1.0f);
  EXPECT_NEAR(scalar_scale(ScalarScheme::kSQ, v), 2.5f, 0.1f);
  EXPECT_NEAR(scalar_scale(ScalarScheme::kSD, v), 2.5f, 0.1f);
}

TEST(Dithers, SharedKeysAgree) {
  SharedRng a(StreamKey{1, 2, 3, 0});
  SharedRng b(StreamKey{1, 2, 3, 0});
  auto da = make_dithers(100, 2.0f, a);
  auto db = make_dithers(100, 2.0f, b);
  EXPECT_EQ(da, db);
}

TEST(Dithers, BoundedByFullStep) {
  auto d = make_dithers(10000, 3.0f, SharedRng(StreamKey{5, 0, 0, 0}));
  for (float x : d) {
    EXPECT_GE(x, -3.0f);
    EXPECT_LT(x, 3.0f);
  }
}

// ---- sign-magnitude ----

TEST(SignScheme, UntrimmedDecodeIsBitExact) {
  Xoshiro256 rng(1);
  for (float v : {0.0f, -0.0f, 1.5f, -1.5f, 3.14159e-10f, -2.7e20f}) {
    const HeadTail ht = scalar_encode(ScalarScheme::kSign, v, 1.0f, rng, 0.0f);
    EXPECT_EQ(scalar_decode_full(ScalarScheme::kSign, ht.head, ht.tail), v);
  }
}

TEST(SignScheme, TrimmedDecodeIsSignTimesSigma) {
  Xoshiro256 rng(1);
  const float sigma = 0.7f;
  const HeadTail pos = scalar_encode(ScalarScheme::kSign, 2.0f, sigma, rng, 0);
  const HeadTail neg = scalar_encode(ScalarScheme::kSign, -0.1f, sigma, rng, 0);
  EXPECT_FLOAT_EQ(scalar_decode_trimmed(ScalarScheme::kSign, pos.head, sigma, 0), sigma);
  EXPECT_FLOAT_EQ(scalar_decode_trimmed(ScalarScheme::kSign, neg.head, sigma, 0), -sigma);
}

// ---- stochastic quantization ----

TEST(SqScheme, UnbiasedForInRangeValues) {
  // E[decode] = v for v in [-L, L] — the paper's key property for SQ.
  Xoshiro256 rng(42);
  const float l = 2.5f;
  for (float v : {-2.0f, -0.5f, 0.0f, 0.3f, 1.7f}) {
    double acc = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const HeadTail ht = scalar_encode(ScalarScheme::kSQ, v, l, rng, 0);
      acc += scalar_decode_trimmed(ScalarScheme::kSQ, ht.head, l, 0);
    }
    EXPECT_NEAR(acc / n, v, 0.02) << "v=" << v;
  }
}

TEST(SqScheme, ClipsOutOfRangeValues) {
  Xoshiro256 rng(43);
  const float l = 1.0f;
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const HeadTail ht = scalar_encode(ScalarScheme::kSQ, 50.0f, l, rng, 0);
    plus += ht.head ? 1 : 0;
  }
  EXPECT_EQ(plus, 1000);  // clipped to +L -> always +1
}

TEST(SqScheme, UntrimmedDecodeWithinOneUlp) {
  // SQ tails drop the mantissa LSB: relative error bounded by 2^-23.
  Xoshiro256 rng(44);
  for (float v : {1.0f, -1.0f, 0.12345f, -9.87e-5f, 3.4e15f}) {
    const HeadTail ht = scalar_encode(ScalarScheme::kSQ, v, 1.0f, rng, 0);
    const float back = scalar_decode_full(ScalarScheme::kSQ, ht.head, ht.tail);
    EXPECT_NEAR(back, v, std::fabs(v) * 2.4e-7f) << v;
  }
}

TEST(SqScheme, ZeroScaleDegradesGracefully) {
  Xoshiro256 rng(45);
  const HeadTail ht = scalar_encode(ScalarScheme::kSQ, 0.0f, 0.0f, rng, 0);
  EXPECT_FLOAT_EQ(scalar_decode_trimmed(ScalarScheme::kSQ, ht.head, 0.0f, 0), 0.0f);
}

// ---- subtractive dithering ----

TEST(SdScheme, UnbiasedViaSharedDither) {
  // E_ε[L·sign(v+ε) − ε] = v for |v| ≤ L with full-step ε ~ U(−L, L).
  const float l = 2.0f;
  Xoshiro256 enc_rng(46);
  SharedRng dither_rng(StreamKey{9, 9, 9, 0});
  for (float v : {-0.9f, -0.2f, 0.0f, 0.4f, 0.95f}) {
    auto dithers = make_dithers(400000, l, SharedRng(StreamKey{9, 9, 9, 0}));
    double acc = 0;
    for (float d : dithers) {
      const HeadTail ht = scalar_encode(ScalarScheme::kSD, v, l, enc_rng, d);
      acc += scalar_decode_trimmed(ScalarScheme::kSD, ht.head, l, d);
    }
    EXPECT_NEAR(acc / static_cast<double>(dithers.size()), v, 0.02) << v;
  }
}

TEST(SdScheme, ErrorIsUniformOverStepAndInputIndependent) {
  // In the no-overload region |v| ≤ L the subtractive-dither error is
  // U(−L, L) regardless of the input (Schuchman condition): check both the
  // hard bound and that mean |error| ≈ L/2 at two different inputs.
  const float l = 1.0f;
  Xoshiro256 enc_rng(47);
  for (float v : {0.0f, 0.49f, -0.8f}) {
    auto dithers = make_dithers(100000, l, SharedRng(StreamKey{1, 2, 3, 0}));
    double worst = 0, mean_abs = 0;
    for (float d : dithers) {
      const HeadTail ht = scalar_encode(ScalarScheme::kSD, v, l, enc_rng, d);
      const float dec = scalar_decode_trimmed(ScalarScheme::kSD, ht.head, l, d);
      const double err = std::fabs(static_cast<double>(dec) - v);
      worst = std::max(worst, err);
      mean_abs += err;
    }
    EXPECT_LE(worst, l + 1e-5) << "v=" << v;
    EXPECT_NEAR(mean_abs / 100000, l / 2.0, 0.02) << "v=" << v;
  }
}

TEST(SdScheme, DeterministicGivenDither) {
  Xoshiro256 rng_a(48), rng_b(49);  // private rngs differ: SD must not care
  const HeadTail a = scalar_encode(ScalarScheme::kSD, 0.3f, 1.0f, rng_a, 0.1f);
  const HeadTail b = scalar_encode(ScalarScheme::kSD, 0.3f, 1.0f, rng_b, 0.1f);
  EXPECT_EQ(a.head, b.head);
  EXPECT_EQ(a.tail, b.tail);
}

// ---- vector encode ----

TEST(EncodeAll, ProducesOneHeadTailPerCoordinate) {
  auto v = gaussian_vec(1000, 50);
  Xoshiro256 rng(51);
  std::vector<std::uint8_t> heads;
  std::vector<std::uint32_t> tails;
  scalar_encode_all(ScalarScheme::kSign, v, 1.0f, rng, {}, heads, tails);
  EXPECT_EQ(heads.size(), v.size());
  EXPECT_EQ(tails.size(), v.size());
}

TEST(EncodeAll, SignHeadsMatchSigns) {
  std::vector<float> v = {1.0f, -2.0f, 0.5f, -0.1f};
  Xoshiro256 rng(52);
  std::vector<std::uint8_t> heads;
  std::vector<std::uint32_t> tails;
  scalar_encode_all(ScalarScheme::kSign, v, 1.0f, rng, {}, heads, tails);
  EXPECT_EQ(heads, (std::vector<std::uint8_t>{1, 0, 1, 0}));
}

// ---- cross-scheme property sweep ----

struct SchemeCase {
  ScalarScheme scheme;
  double trim_nmse_bound;  // loose sanity bound on trimmed-decode NMSE
};

class TrimmedNmseSweep : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(TrimmedNmseSweep, FullyTrimmedNmseWithinBound) {
  const auto param = GetParam();
  auto v = gaussian_vec(20000, 60);
  const float scale = scalar_scale(param.scheme, v);
  auto dithers = param.scheme == ScalarScheme::kSD
                     ? make_dithers(v.size(), scale, SharedRng(StreamKey{4, 4, 4, 0}))
                     : std::vector<float>(v.size(), 0.0f);
  Xoshiro256 rng(61);
  std::vector<float> dec(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const HeadTail ht = scalar_encode(param.scheme, v[i], scale, rng, dithers[i]);
    dec[i] = scalar_decode_trimmed(param.scheme, ht.head, scale, dithers[i]);
  }
  EXPECT_LT(nmse(dec, v), param.trim_nmse_bound)
      << to_string(param.scheme);
}

INSTANTIATE_TEST_SUITE_P(
    AllScalarSchemes, TrimmedNmseSweep,
    ::testing::Values(
        // sign→±σ on gaussians: E[(σ·s−v)²]/σ² = 2−2E|v|/σ = 2−2√(2/π) ≈ 0.40
        SchemeCase{ScalarScheme::kSign, 0.5},
        // SQ at L=2.5σ has variance ≈ L² − v² per coord; NMSE ≈ 5.25
        SchemeCase{ScalarScheme::kSQ, 6.5},
        // SD error uniform-ish with var ≤ L²·(13/12)-ish; keep loose
        SchemeCase{ScalarScheme::kSD, 8.0}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return to_string(info.param.scheme);
    });

}  // namespace
}  // namespace trimgrad::core
