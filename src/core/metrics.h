// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms — the uniform instrumentation substrate every layer reports
// through (queues, switches, transports, codecs, the DDP trainer).
//
// Determinism contract (extends the threading contract in threadpool.h):
// counter and histogram increments land in lock-free per-thread shards and
// are reduced at snapshot time. Because every shard cell is an integer, the
// reduction is a sum of uint64s — associative and commutative — so the
// snapshot is bit-identical for any thread count and any scheduling, as
// long as the *multiset* of increments is thread-count-independent (which
// the parallel_for contract guarantees). Snapshots list metrics in
// registration order, which is itself deterministic because registration
// only happens from sequential phases. Histograms therefore store only
// integer bucket counts (no floating-point sums, whose reduction order
// would leak the shard count into the low bits).
//
// Hot-path cost: one thread-local lookup + one uint64 add. Registration,
// gauges, snapshots, and resets take a mutex and belong in sequential
// phases only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace trimgrad::core {

class MetricsRegistry;

/// Monotone counter handle. Cheap to copy; valid for the registry's
/// lifetime. A default-constructed handle is a no-op sink.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
};

/// Last-write-wins gauge. Set from sequential phases only (takes the
/// registry mutex; there is no per-thread shard for doubles because a
/// floating-point reduction would not be order-independent).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
};

/// Fixed-bucket histogram handle. A value v lands in the first bucket whose
/// upper bound satisfies v <= bound ("le" semantics, Prometheus-style);
/// values above the last bound land in the implicit overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::size_t id,
            const std::vector<double>* bounds)
      : reg_(reg), id_(id), bounds_(bounds) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
  const std::vector<double>* bounds_ = nullptr;
};

class MetricsRegistry {
 public:
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;          ///< upper bounds, ascending
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
    std::uint64_t total = 0;             ///< sum of counts
  };
  /// Deterministic reduction of all shards, metrics in registration order.
  struct Snapshot {
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
  };

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up — registration is idempotent by name) a metric.
  /// Sequential phases only. histogram() with a name that already exists
  /// returns the existing metric and ignores the new bounds.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> upper_bounds);

  /// Reduce every shard. Call only while no parallel work is in flight.
  Snapshot snapshot() const;

  /// Zero all values (counters, gauges, histogram buckets) while keeping
  /// every registration — existing handles stay valid. Sequential only.
  void reset_values();

  /// The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    std::vector<std::uint64_t> counters;              // by counter id
    std::vector<std::vector<std::uint64_t>> hists;    // by histogram id
  };
  struct HistInfo {
    std::string name;
    std::vector<double> bounds;
  };

  Shard& local_shard() noexcept;

  mutable std::mutex mu_;
  std::uint64_t instance_id_ = 0;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;
  std::vector<std::unique_ptr<HistInfo>> hists_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace trimgrad::core
