#include "ddp/trainer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "core/codec_registry.h"
#include "core/metrics.h"
#include "core/prng.h"
#include "core/threadpool.h"
#include "core/trace.h"
#include "ddp/clock_model.h"
#include "ddp/membership.h"
#include "net/fault_plane.h"
#include "net/invariants.h"

namespace trimgrad::ddp {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TrainerTelemetry {
  core::Counter rounds, raw_bytes, wire_bytes, policy_switches;
  core::Gauge compression_ratio, policy_q;

  static const TrainerTelemetry& get() {
    auto& reg = core::MetricsRegistry::global();
    static const TrainerTelemetry t{
        reg.counter("ddp.rounds"),
        reg.counter("ddp.raw_bytes"),
        reg.counter("ddp.wire_bytes"),
        reg.counter("ddp.policy.switches"),
        reg.gauge("ddp.compression_ratio"),
        reg.gauge("ddp.policy.q_bits"),
    };
    return t;
  }
};
}  // namespace

DdpTrainer::DdpTrainer(const ml::SynthCifar& data,
                       collective::Channel& channel, TrainerConfig cfg,
                       const ModelFactory& factory)
    : data_(data),
      channel_(channel),
      cfg_(cfg),
      reducer_(channel, cfg.codec, cfg.algo),
      batcher_(data.train_size(), cfg.global_batch, cfg.shuffle_seed),
      augment_rng_(cfg.augment_seed) {
  assert(cfg_.world >= 2);
  assert(channel_.world_size() == cfg_.world);
  replicas_.reserve(cfg_.world);
  optims_.reserve(cfg_.world);
  for (int r = 0; r < cfg_.world; ++r) {
    replicas_.push_back(factory());
    optims_.push_back(std::make_unique<ml::SgdMomentum>(cfg_.sgd));
  }
  // Exact replication: every rank starts from rank 0's parameters.
  const auto flat = replicas_[0]->flat_params();
  for (int r = 1; r < cfg_.world; ++r) replicas_[r]->set_flat_params(flat);

  residuals_.resize(static_cast<std::size_t>(cfg_.world));

  // Control plane: the policy's action space is seeded from the run's
  // pinned codec — whatever cfg.policy says for codec/q — so the default
  // "fixed" policy replays the pinned-codec path bit-exactly (the round-0
  // decision equals the active codec and no rebuild ever happens).
  core::PolicyConfig pc = cfg_.policy;
  pc.codec = core::CodecRegistry::global().name_of(cfg_.codec.scheme);
  pc.q_bits = cfg_.codec.layout.q_bits;
  policy_ = core::PolicyRegistry::global().make(pc);
  active_ = core::PolicyDecision{pc.codec, pc.q_bits};
  active_codec_ = cfg_.codec;
  rebuild_ef_encoders();
}

void DdpTrainer::rebuild_ef_encoders() {
  if (!cfg_.error_feedback) return;
  // One encoder per rank for the local EF round-trip, each with its own
  // stochastic-rounding stream (mirrors the reducer's per-sender setup).
  ef_encoders_.clear();
  ef_encoders_.reserve(static_cast<std::size_t>(cfg_.world));
  for (int r = 0; r < cfg_.world; ++r) {
    core::CodecConfig cc = active_codec_;
    cc.private_seed = core::mix64(active_codec_.private_seed,
                                  static_cast<std::uint64_t>(r) + 1);
    ef_encoders_.push_back(std::make_unique<core::TrimmableEncoder>(cc));
  }
}

core::CodecConfig DdpTrainer::codec_for(const core::PolicyDecision& d,
                                        std::uint64_t round) const {
  core::CodecConfig cc = cfg_.codec;
  cc.scheme = core::CodecRegistry::global().at(d.codec).scheme;
  cc.layout.q_bits = d.q_bits;
  // Swapping codecs restarts the encoders' private stochastic-rounding
  // streams (AllReducer::set_codec); mixing the switch round into the seed
  // keeps the restarted draws independent of every earlier stream.
  cc.private_seed = core::mix64(cfg_.codec.private_seed, round + 1);
  return cc;
}

void DdpTrainer::apply_policy(std::uint64_t round) {
  const core::PolicyDecision d = policy_->decide(round, last_fb_);
  decisions_.push_back(d);
  if (d == active_) return;
  active_ = d;
  active_codec_ = codec_for(d, round);
  reducer_.set_codec(active_codec_);
  rebuild_ef_encoders();
  const TrainerTelemetry& tel = TrainerTelemetry::get();
  tel.policy_switches.add();
  tel.policy_q.set(static_cast<double>(d.q_bits));
}

std::vector<std::uint8_t> DdpTrainer::policy_state_blob() const {
  // u32 policy-state length + bytes, then the last feedback snapshot —
  // everything decide() consumes besides the round index.
  std::vector<std::uint8_t> blob;
  const auto ps = policy_->state();
  for (int i = 0; i < 4; ++i)
    blob.push_back(static_cast<std::uint8_t>(ps.size() >> (8 * i)));
  blob.insert(blob.end(), ps.begin(), ps.end());
  core::append_feedback(blob, last_fb_);
  return blob;
}

void DdpTrainer::restore_control_plane(const Checkpoint& ck) {
  augment_rng_.set_state(ck.augment_rng);
  if (ck.policy_state.empty()) return;  // v1 blob: no control plane captured
  const std::span<const std::uint8_t> b{ck.policy_state};
  if (b.size() < 4) throw std::runtime_error("policy_state: blob truncated");
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  if (b.size() - 4 < n)
    throw std::runtime_error("policy_state: blob truncated");
  policy_->restore(b.subspan(4, n));
  last_fb_ = core::parse_feedback(b.subspan(4 + n));
  // The next apply_policy() call re-derives the decision from the restored
  // controller and swaps the wire codec if it differs from the fresh
  // trainer's base — replaying the interrupted run's trajectory.
}

void DdpTrainer::attach_membership(Membership* membership) {
  membership_ = membership;
  reducer_.set_view(membership != nullptr ? &membership->view() : nullptr);
}

Checkpoint DdpTrainer::make_checkpoint(int rank, std::size_t epoch,
                                       std::uint64_t round) const {
  const auto r = static_cast<std::size_t>(rank);
  Checkpoint ck;
  ck.rank = rank;
  ck.epoch = epoch;
  ck.round = round;
  ck.view_version = membership_ != nullptr ? membership_->view().version : 0;
  ck.params = replicas_.at(r)->flat_params();
  ck.lr = optims_.at(r)->lr();
  ck.opt_epoch = optims_.at(r)->epoch();
  ck.velocity = optims_.at(r)->velocity();
  ck.residual = residuals_.at(r);
  ck.augment_rng = augment_rng_.state();
  ck.policy_state = policy_state_blob();
  return ck;
}

void DdpTrainer::restore_rank(int rank, const Checkpoint& ck) {
  const auto r = static_cast<std::size_t>(rank);
  replicas_.at(r)->set_flat_params(ck.params);
  optims_.at(r)->restore(ck.lr, ck.opt_epoch, ck.velocity);
  residuals_.at(r) = ck.residual;
}

void DdpTrainer::apply_error_feedback(
    std::vector<std::vector<float>>& grads,
    const std::vector<std::uint8_t>& live_mask, std::size_t epoch,
    std::uint32_t round) {
  if (!cfg_.error_feedback) return;
  const core::TrimmableDecoder decoder(active_codec_);
  for (std::size_t r = 0; r < grads.size(); ++r) {
    if (live_mask[r] == 0) continue;
    auto& res = residuals_[r];
    if (res.size() != grads[r].size()) res.assign(grads[r].size(), 0.0f);
    for (std::size_t i = 0; i < grads[r].size(); ++i) grads[r][i] += res[i];
    // The residual is the local quantization error: what this rank is about
    // to send minus what its own codec round-trip reconstructs. Network
    // loss (trims/drops) stays out of the residual, as in standard EF.
    const auto enc =
        ef_encoders_[r]->encode(grads[r], 0xef000000u + round, epoch);
    const auto dec = decoder.decode(enc.packets, enc.meta);
    for (std::size_t i = 0; i < grads[r].size(); ++i) {
      res[i] = grads[r][i] - dec.values[i];
    }
  }
}

void DdpTrainer::try_rejoin(int rank, std::uint64_t round, EpochRecord& rec,
                            RoundBreakdown& rb) {
  // Restore the rank's last checkpointed state (optimizer momentum,
  // residual, stale params) ...
  if (membership_->has_checkpoint(rank)) {
    restore_rank(rank, membership_->restore_checkpoint(rank));
  }
  // ... then pull current parameters from a live peer over the fabric. If
  // the fetch fails (donor's link is down too), stay evicted; the next
  // poll offers another chance.
  const auto live = membership_->view().live_ranks();
  if (live.empty()) return;
  const int donor = live.front();
  const auto fetch = membership_->fetch_params(
      donor, rank, replicas_.at(static_cast<std::size_t>(donor))->param_count());
  rb.comm_s += fetch.comm_s;
  rec.wire_bytes += fetch.wire_bytes;
  if (fetch.failed) return;
  replicas_.at(static_cast<std::size_t>(rank))
      ->set_flat_params(replicas_.at(static_cast<std::size_t>(donor))
                            ->flat_params());
  // Momentum comes from the checkpoint; the lr schedule position comes
  // from the collective (the checkpoint's may lag if the outage spanned an
  // epoch boundary).
  auto vel = optims_.at(static_cast<std::size_t>(rank))->velocity();
  optims_.at(static_cast<std::size_t>(rank))
      ->restore(optims_.at(static_cast<std::size_t>(donor))->lr(),
                optims_.at(static_cast<std::size_t>(donor))->epoch(),
                std::move(vel));
  membership_->complete_rejoin(rank, round);
  ++rec.recovered_ranks;
}

std::vector<std::vector<float>> DdpTrainer::all_reduce_buckets(
    const std::vector<std::vector<float>>& grads, std::size_t epoch,
    std::uint32_t round, EpochRecord& rec, RoundBreakdown& rb) {
  const std::size_t n = grads[0].size();
  const std::size_t bucket =
      cfg_.bucket_floats == 0 ? n : std::min(cfg_.bucket_floats, n);
  std::vector<std::vector<float>> out(grads.size(), std::vector<float>(n));

  std::uint32_t msg_id = round * 1024;
  for (std::size_t off = 0; off < n; off += bucket) {
    const std::size_t len = std::min(bucket, n - off);
    std::vector<std::vector<float>> slice(grads.size());
    for (std::size_t r = 0; r < grads.size(); ++r) {
      slice[r].assign(grads[r].begin() + off, grads[r].begin() + off + len);
    }
    auto result = reducer_.run(slice, msg_id++, epoch);
    if (cfg_.modeled_clock) {
      // Deterministic codec-time model: per-coordinate costs calibrated
      // once per process; coords decoded == coords encoded for both
      // algorithms.
      const CodecCosts& costs = calibrated_costs(active_codec_.scheme);
      const auto coords =
          static_cast<double>(result.stats.coord_stats.total_coords);
      rb.encode_s += costs.encode_per_coord_s * coords;
      rb.decode_s += costs.decode_per_coord_s * coords;
    } else {
      rb.encode_s += result.stats.encode_seconds;
      rb.decode_s += result.stats.decode_seconds;
    }
    rb.comm_s += result.stats.comm_time;
    rec.trimmed_packets += result.stats.trimmed_packets;
    rec.dropped_packets += result.stats.dropped_packets;
    rec.retransmits += result.stats.retransmits;
    rec.wire_bytes += result.stats.wire_bytes;
    rec.missing_ranks += result.stats.missing_ranks;
    rec.degraded_rounds += result.stats.degraded_rounds;
    for (std::size_t r = 0; r < grads.size(); ++r) {
      std::copy(result.outputs[r].begin(), result.outputs[r].end(),
                out[r].begin() + off);
    }
  }
  return out;
}

EpochRecord DdpTrainer::run_epoch(std::size_t epoch) {
  EpochRecord rec;
  rec.epoch = epoch;
  const net::StragglerSchedule straggle{cfg_.fault_seed,
                                        cfg_.straggler_factor};
  rec.straggler_rank =
      straggle.enabled() ? straggle.straggler_rank(epoch, cfg_.world) : -1;
  const std::size_t n_batches = batcher_.batches_per_epoch();
  double loss_sum = 0;
  RoundBreakdown total_rb;
  std::uint64_t epoch_raw_bytes = 0;

  const bool elastic = membership_ != nullptr;

  for (std::size_t b = 0; b < n_batches; ++b) {
    RoundBreakdown rb;
    const std::size_t world = static_cast<std::size_t>(cfg_.world);
    const std::uint64_t global_round =
        static_cast<std::uint64_t>(epoch) * n_batches + b;
    std::vector<std::vector<float>> grads(world);
    std::vector<double> rank_loss(world, 0.0);
    std::vector<double> rank_compute(world, 0.0);

    // Control plane: decide this round's codec from last round's feedback
    // before anything is encoded (the EF round-trip uses the same codec).
    apply_policy(global_round);

    // Control plane first: one heartbeat window, then any pending rejoins —
    // so a recovered rank is back in the view before this round's
    // collective forms its participant set. The window and any parameter
    // fetch run on the simulated clock and bill into comm time.
    if (elastic) {
      const PollResult pr = membership_->poll(global_round);
      rb.comm_s += membership_->cfg().heartbeat_s;
      for (const int r : pr.rejoin_ready) {
        try_rejoin(r, global_round, rec, rb);
      }
    }
    std::vector<std::uint8_t> live_mask(world, 1);
    int live_count = cfg_.world;
    if (elastic) {
      for (std::size_t r = 0; r < world; ++r) {
        live_mask[r] =
            membership_->view().is_live(static_cast<int>(r)) ? 1 : 0;
      }
      live_count = membership_->view().live_count();
    }
    const double loss_div = static_cast<double>(live_count);

    // Assemble every rank's augmented batch sequentially first: the
    // augmentation RNG is one stream consumed in rank order, and keeping
    // that on the calling thread makes the training trajectory identical
    // to the sequential trainer for every thread count. Batch assembly is
    // data movement (copy + flip + shift), a sliver of the round next to
    // forward/backward.
    std::vector<ml::Tensor> inputs(world);
    std::vector<std::vector<std::uint32_t>> labels(world);
    for (std::size_t r = 0; r < world; ++r) {
      const auto shard = batcher_.worker_shard(epoch, b, r, world);
      inputs[r] = data_.train_batch(shard, labels[r], augment_rng_);
    }

    // The W replicas' forward/backward are independent, so run them on the
    // pool — this is where DDP's "workers compute in parallel" becomes
    // literal. Every result lands in a per-rank slot; losses and the max
    // over compute times are then reduced in rank order afterwards, so the
    // round is bit-exact for any thread count.
    const std::size_t n_params = replicas_[0]->param_count();
    core::parallel_for(world, 1, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        // An evicted rank computes nothing; its (zero) gradient slot keeps
        // the bucket shapes uniform but never reaches the collective — the
        // view-aware reducer excludes it from the participant set.
        if (live_mask[r] == 0) {
          grads[r].assign(n_params, 0.0f);
          continue;
        }
        const auto t0 = Clock::now();
        replicas_[r]->zero_grads();
        const ml::Tensor logits = replicas_[r]->forward(inputs[r]);
        const auto lr = ml::softmax_cross_entropy(logits, labels[r]);
        replicas_[r]->backward(lr.grad);
        rank_compute[r] = seconds_since(t0);
        rank_loss[r] = lr.loss / loss_div;
        grads[r] = replicas_[r]->flat_grads();
      }
    });
    double worst_compute = 0;
    double round_loss = 0;
    for (std::size_t r = 0; r < world; ++r) {
      // DDP: workers compute in parallel; the round waits for the slowest —
      // which is why a single injected straggler stretches the whole round.
      worst_compute = std::max(
          worst_compute,
          rank_compute[r] * straggle.compute_scale(
                                epoch, static_cast<int>(r), cfg_.world));
      round_loss += rank_loss[r];
    }
    rb.compute_s = cfg_.modeled_clock
                       ? cfg_.compute_round_s *
                             (rec.straggler_rank >= 0 ? cfg_.straggler_factor
                                                      : 1.0)
                       : worst_compute;

    apply_error_feedback(grads, live_mask,
                         epoch, static_cast<std::uint32_t>(global_round));

    const std::uint64_t wire_before = rec.wire_bytes;
    const auto averaged = all_reduce_buckets(
        grads, epoch, static_cast<std::uint32_t>(global_round), rec, rb);
    // Drain the channel's telemetry window once per round, right after the
    // collective: this is the snapshot the next round's decision sees.
    last_fb_ = channel_.take_feedback();
    last_fb_.round = global_round;
    for (int r = 0; r < cfg_.world; ++r) {
      if (live_mask[static_cast<std::size_t>(r)] == 0) continue;
      optims_[r]->step_flat(replicas_[r]->params(), averaged[r]);
    }

    // Periodic checkpoints of every live rank, after the round's update so
    // a restore lands on a round boundary. Serialization is pure reads —
    // the training trajectory is identical with or without it.
    if (elastic && membership_->cfg().ckpt_every > 0 &&
        (global_round + 1) % membership_->cfg().ckpt_every == 0) {
      for (int r = 0; r < cfg_.world; ++r) {
        if (live_mask[static_cast<std::size_t>(r)] == 0) continue;
        membership_->store_checkpoint(make_checkpoint(r, epoch, global_round));
      }
    }

    // Per-round telemetry on the trainer's own simulated clock: the four
    // stages chain back-to-back from the round's start, matching how
    // sim_time_s_ advances. (With modeled_clock these durations — and so
    // the trace — are fully deterministic.)
    const std::uint64_t round_raw =
        static_cast<std::uint64_t>(world) * grads[0].size() * sizeof(float);
    const TrainerTelemetry& tel = TrainerTelemetry::get();
    tel.rounds.add();
    tel.raw_bytes.add(round_raw);
    epoch_raw_bytes += round_raw;
    tel.wire_bytes.add(rec.wire_bytes - wire_before);
    auto& tl = core::TraceLog::global();
    double t = sim_time_s_;
    tl.complete("ddp.compute", "ddp", t, rb.compute_s, /*tid=*/1);
    t += rb.compute_s;
    tl.complete("ddp.encode", "ddp", t, rb.encode_s, /*tid=*/1);
    t += rb.encode_s;
    tl.complete("ddp.comm", "ddp", t, rb.comm_s, /*tid=*/1);
    t += rb.comm_s;
    tl.complete("ddp.decode", "ddp", t, rb.decode_s, /*tid=*/1);

    loss_sum += round_loss;
    total_rb.compute_s += rb.compute_s;
    total_rb.encode_s += rb.encode_s;
    total_rb.comm_s += rb.comm_s;
    total_rb.decode_s += rb.decode_s;
    sim_time_s_ += rb.total();
  }

  for (auto& opt : optims_) opt->end_epoch();

  // Achieved compression over this epoch: raw gradient bytes / wire bytes.
  if (rec.wire_bytes > 0) {
    TrainerTelemetry::get().compression_ratio.set(
        static_cast<double>(epoch_raw_bytes) /
        static_cast<double>(rec.wire_bytes));
  }

  rec.sim_time_s = sim_time_s_;
  rec.train_loss = loss_sum / static_cast<double>(n_batches);
  rec.mean_round = {total_rb.compute_s / n_batches,
                    total_rb.encode_s / n_batches,
                    total_rb.comm_s / n_batches,
                    total_rb.decode_s / n_batches};

  if (elastic) rec.view_version = membership_->view().version;

  // Replica drift from lossy per-rank decodes. Evicted replicas are frozen
  // at pre-fault parameters — excluded, they'd swamp the live drift.
  const auto ref = replicas_[0]->flat_params();
  for (int r = 1; r < cfg_.world; ++r) {
    if (elastic && !membership_->view().is_live(r)) continue;
    const auto other = replicas_[r]->flat_params();
    double worst = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      worst = std::max(worst,
                       std::fabs(static_cast<double>(ref[i]) - other[i]));
    }
    rec.replica_divergence = std::max(rec.replica_divergence, worst);
  }
  return rec;
}

void DdpTrainer::evaluate(EpochRecord& rec) {
  const std::size_t n = data_.test_size();
  std::size_t done = 0;
  double top1 = 0, top5 = 0;
  while (done < n) {
    const std::size_t count = std::min(cfg_.eval_batch, n - done);
    std::vector<std::uint32_t> labels;
    const ml::Tensor x = data_.test_batch(done, count, labels);
    const ml::Tensor logits = replicas_[0]->forward(x);
    top1 += ml::top_k_accuracy(logits, labels, 1) * count;
    top5 += ml::top_k_accuracy(logits, labels, 5) * count;
    done += count;
  }
  rec.top1 = top1 / static_cast<double>(n);
  rec.top5 = top5 / static_cast<double>(n);
}

std::vector<EpochRecord> DdpTrainer::train() {
  std::vector<EpochRecord> records;
  records.reserve(cfg_.epochs);
  for (std::size_t e = 0; e < cfg_.epochs; ++e) {
    EpochRecord rec = run_epoch(e);
    if (monitor_ != nullptr) monitor_->on_epoch_time(e, rec.sim_time_s);
    if (cfg_.eval_every > 0 &&
        (e % cfg_.eval_every == 0 || e + 1 == cfg_.epochs)) {
      evaluate(rec);
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace trimgrad::ddp
