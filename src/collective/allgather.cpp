#include "collective/allgather.h"

#include <cassert>

namespace trimgrad::collective {

AllGatherer::AllGatherer(Channel& channel, core::CodecConfig codec)
    : channel_(channel), encoder_(codec), decoder_(codec) {}

AllGatherResult AllGatherer::run(const std::vector<std::vector<float>>& shards,
                                 std::uint32_t msg_id, std::uint64_t epoch) {
  const int world = channel_.world_size();
  const std::size_t w = static_cast<std::size_t>(world);
  assert(shards.size() == w);

  AllGatherResult result;
  // held[r][c] = rank r's current copy of shard c (empty if not yet seen).
  std::vector<std::vector<std::vector<float>>> held(w);
  for (std::size_t r = 0; r < w; ++r) {
    held[r].resize(w);
    held[r][r] = shards[r];
  }

  std::uint32_t step_id = msg_id * 64;
  for (int s = 0; s < world - 1; ++s) {
    std::vector<TransferRequest> batch;
    for (int r = 0; r < world; ++r) {
      // Forward the shard received last step (own shard at step 0).
      const std::size_t c =
          static_cast<std::size_t>(((r - s) % world + world) % world);
      TransferRequest req;
      req.src = r;
      req.dst = (r + 1) % world;
      req.message =
          encoder_.encode(held[static_cast<std::size_t>(r)][c],
                          step_id + static_cast<std::uint32_t>(r), epoch);
      batch.push_back(std::move(req));
    }
    step_id += static_cast<std::uint32_t>(world);
    auto deliveries = channel_.transfer(std::move(batch));
    result.comm_time += batch_time(deliveries);
    for (const auto& d : deliveries) {
      result.wire_bytes += d.wire_bytes;
      result.trimmed_packets += d.trimmed_packets;
      result.dropped_packets += d.dropped_packets;
      const std::size_t c =
          static_cast<std::size_t>(((d.src - s) % world + world) % world);
      held[static_cast<std::size_t>(d.dst)][c] =
          decoder_.decode(d.packets, d.meta).values;
    }
  }

  result.outputs.resize(w);
  for (std::size_t r = 0; r < w; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      result.outputs[r].insert(result.outputs[r].end(), held[r][c].begin(),
                               held[r][c].end());
    }
  }
  return result;
}

}  // namespace trimgrad::collective
