#include "core/sparsify.h"

#include <algorithm>
#include <cmath>

#include "core/stats.h"

namespace trimgrad::core {

namespace {
std::size_t keep_count(std::size_t n, double keep_ratio) {
  const double r = std::clamp(keep_ratio, 0.0, 1.0);
  return static_cast<std::size_t>(std::ceil(r * static_cast<double>(n)));
}
}  // namespace

void topk_sparsify_inplace(std::span<float> values, double keep_ratio) {
  const std::size_t k = keep_count(values.size(), keep_ratio);
  if (k >= values.size()) return;
  if (k == 0) {
    std::fill(values.begin(), values.end(), 0.0f);
    return;
  }
  std::vector<float> mags(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) mags[i] = std::fabs(values[i]);
  std::vector<float> sorted = mags;
  std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end(),
                   std::greater<float>());
  const float threshold = sorted[k - 1];
  // Keep everything strictly above the threshold, then fill remaining slots
  // with threshold-equal entries (handles ties deterministically by index).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mags[i] > threshold) ++kept;
  }
  std::size_t ties_to_keep = k - kept;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (mags[i] > threshold) continue;
    if (mags[i] == threshold && ties_to_keep > 0) {
      --ties_to_keep;
      continue;
    }
    values[i] = 0.0f;
  }
}

std::vector<std::uint32_t> topk_indices(std::span<const float> values,
                                        std::size_t k) {
  std::vector<std::uint32_t> idx(values.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<std::uint32_t>(i);
  if (k >= values.size()) return idx;
  std::nth_element(idx.begin(), idx.begin() + k, idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return std::fabs(values[a]) > std::fabs(values[b]);
                   });
  idx.resize(k);
  return idx;
}

double topk_energy_fraction(std::span<const float> values, double keep_ratio) {
  const double total = l2_norm_sq(values);
  if (total == 0.0) return 1.0;
  const std::size_t k = keep_count(values.size(), keep_ratio);
  auto idx = topk_indices(values, k);
  double kept = 0.0;
  for (std::uint32_t i : idx) kept += static_cast<double>(values[i]) * values[i];
  return kept / total;
}

}  // namespace trimgrad::core
