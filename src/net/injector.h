// Probabilistic trim/drop injection — the paper's own evaluation mode.
//
// §4: "we simulate the effect of congestion using pre-set random
// probabilistic dropping/trimming, both in the software layer and on our
// SmartNIC." TrimInjector is that software layer: a Bernoulli coin per
// packet, applied directly to an encoded message without running the
// fabric. It can record its decisions into a TrimTranscript (§5.4) and
// replay a previous run's transcript for reproducibility.
#pragma once

#include <cstdint>
#include <vector>

#include "core/codec.h"
#include "core/multilevel.h"
#include "core/prng.h"
#include "core/transcript.h"

namespace trimgrad::net {

struct InjectorConfig {
  double trim_rate = 0.0;  ///< P(packet is trimmed)
  double drop_rate = 0.0;  ///< P(packet is lost outright), applied first
  std::uint64_t seed = 2024;
};

struct InjectionStats {
  std::size_t packets = 0;
  std::size_t trimmed = 0;
  std::size_t dropped = 0;
};

class TrimInjector {
 public:
  explicit TrimInjector(InjectorConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Apply congestion to a message in place: some packets trimmed, dropped
  /// packets removed from the vector. If `record` is non-null, every trim
  /// is logged (drops are logged with level 0xff).
  InjectionStats apply(std::vector<core::GradientPacket>& packets,
                       std::uint64_t epoch,
                       core::TrimTranscript* record = nullptr);

  /// Multi-level variant: severe congestion trims to 1-bit heads, mild
  /// congestion to 8-bit; `mid_fraction` of trims are mild.
  InjectionStats apply_multilevel(std::vector<core::MlPacket>& packets,
                                  std::uint64_t epoch, double mid_fraction,
                                  core::TrimTranscript* record = nullptr);

  /// Reproduce a recorded run (§5.4): the coin flips are ignored and the
  /// transcript dictates exactly which packets are trimmed/dropped.
  ///
  /// Throws std::invalid_argument if the (non-empty) transcript has no
  /// events for `epoch` — replaying against the wrong epoch would silently
  /// reproduce the wrong run. An entirely empty transcript is legal (a
  /// recorded run can have zero trims).
  static InjectionStats replay(std::vector<core::GradientPacket>& packets,
                               std::uint64_t epoch,
                               const core::TrimTranscript& transcript);

  const InjectorConfig& config() const noexcept { return cfg_; }

 private:
  InjectorConfig cfg_;
  core::Xoshiro256 rng_;
};

}  // namespace trimgrad::net
