// Transport conformance: one parameterized scenario suite, every registry
// entry. These are the behaviours a transport must share to be selectable
// by name — clean delivery, trim-storm policy, corrupt-frame NACK recovery,
// budget give-up against a dead fabric, deadline abort, RTO cap pinning —
// replacing the per-transport copies these tests grew out of. A new
// transport registered in transport_registry.cpp is picked up here
// automatically.
#include "net/transport_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fault_plane.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

/// 4x4-host dumbbell with a configurable bottleneck queue.
struct Bench {
  Simulator sim;
  Dumbbell topo;

  explicit Bench(QueuePolicy policy, std::size_t queue_kb = 2048) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {10e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = queue_kb * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 4, 4, cfg);
  }
};

class TransportConformance : public ::testing::TestWithParam<std::string> {
 protected:
  const Transport& transport() const {
    return TransportRegistry::global().at(GetParam());
  }
};

TEST_P(TransportConformance, CleanFabricDeliversEverythingInFull) {
  Bench b(QueuePolicy::kDropTail);
  const std::size_t n = 48;
  FlowOptions options;
  options.expected_packets = n;
  int rx_fires = 0;
  options.on_receiver_complete = [&](const ReceiverStats& st) {
    ++rx_fires;
    EXPECT_EQ(st.delivered_full, n);
  };
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 1, {},
                                    std::move(options));
  bool done = false;
  flow->send_message(make_bulk_items(n, 1500, 88),
                     [&](const FlowStats& st) {
                       done = true;
                       EXPECT_TRUE(st.completed);
                     });
  b.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rx_fires, 1);
  EXPECT_EQ(flow->stats().acked_full, n);
  EXPECT_EQ(flow->stats().retransmits, 0u);
  EXPECT_EQ(flow->receiver_stats().delivered_full, n);
}

TEST_P(TransportConformance, TrimStormMatchesDeclaredDeliveryPolicy) {
  // 4-to-1 incast through a shallow trimming bottleneck. Trim-delivering
  // transports finish on trimmed arrivals without a single retransmit; the
  // reliable policy NACKs every trim and retransmits until all payloads
  // arrive in full.
  Bench b(QueuePolicy::kTrim, /*queue_kb=*/15);
  const std::size_t n = 96;
  std::vector<std::unique_ptr<Flow>> flows;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < b.topo.left_hosts.size(); ++i) {
    FlowOptions options;
    options.expected_packets = n;
    auto flow = transport().make_flow(
        b.sim, b.topo.left_hosts[i], b.topo.right_hosts[0],
        static_cast<std::uint32_t>(i + 1), {}, std::move(options));
    flow->send_message(make_bulk_items(n, 1500, 88),
                       [&](const FlowStats& st) {
                         if (st.completed) ++completed;
                       });
    flows.push_back(std::move(flow));
  }
  b.sim.run();
  EXPECT_EQ(completed, flows.size());
  std::uint64_t trimmed = 0, retx = 0, full = 0;
  for (const auto& f : flows) {
    trimmed += f->stats().acked_trimmed;
    retx += f->stats().retransmits;
    full += f->stats().acked_full;
  }
  if (transport().delivers_trimmed()) {
    EXPECT_GT(trimmed, 0u) << "incast must cause trimming";
    EXPECT_EQ(retx, 0u) << "trimmed packets are never retransmitted";
  } else {
    EXPECT_EQ(full, n * flows.size()) << "every payload delivered in full";
    EXPECT_GT(retx, 0u) << "trimmed arrivals must be NACKed and resent";
  }
}

TEST_P(TransportConformance, CorruptedFramesAreNackedAndRecovered) {
  Bench b(QueuePolicy::kDropTail);
  FaultPlaneConfig pcfg;
  pcfg.seed = 5;
  pcfg.corrupt_rate = 0.02;
  FaultPlane plane(pcfg);
  b.sim.set_fault_plane(&plane);

  const std::size_t n = 256;
  FlowOptions options;
  options.expected_packets = n;
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 31, {},
                                    std::move(options));
  bool done = false;
  flow->send_message(make_bulk_items(n, 1500, 88),
                     [&](const FlowStats& st) {
                       done = true;
                       EXPECT_TRUE(st.completed);
                     });
  b.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(flow->receiver_stats().corrupt_frames, 0u);
  EXPECT_GT(flow->receiver_stats().nacks_sent, 0u);
  EXPECT_GT(flow->stats().retransmits, 0u);
  EXPECT_EQ(flow->receiver_stats().delivered_full, n);
}

TEST_P(TransportConformance, DeadFabricBudgetGivesUp) {
  // The destination node is down for the whole run: no frame ever returns.
  // The RTO must double up to rto_cap and the retransmit budget must then
  // fail the flow, leaving the event queue drainable.
  Bench b(QueuePolicy::kDropTail);
  FaultPlaneConfig pcfg;
  NodeFault dead;
  dead.node = b.topo.right_hosts[0];
  dead.start = 0;
  dead.duration = 10.0;
  pcfg.node_faults.push_back(dead);
  FaultPlane plane(pcfg);
  b.sim.set_fault_plane(&plane);

  FlowTuning tuning;
  tuning.rto = 100e-6;
  tuning.rto_cap = 400e-6;
  tuning.retransmit_budget = 6;
  FlowOptions options;
  options.expected_packets = 4;
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 41, tuning,
                                    std::move(options));
  int fires = 0;
  FlowStats fst;
  flow->send_message(make_bulk_items(4, 1500, 0), [&](const FlowStats& st) {
    ++fires;
    fst = st;
  });
  b.sim.run();  // terminates only because the budget fails the flow
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(fst.failed);
  EXPECT_FALSE(fst.completed);
  EXPECT_GE(fst.retransmits, 6u);
  EXPECT_DOUBLE_EQ(flow->current_rto(), tuning.rto_cap)
      << "backoff must stop doubling at rto_cap";
}

TEST_P(TransportConformance, FlowDeadlineFailsExactlyOnTime) {
  Bench b(QueuePolicy::kDropTail);
  FaultPlaneConfig pcfg;
  NodeFault dead;
  dead.node = b.topo.right_hosts[0];
  dead.start = 0;
  dead.duration = 10.0;
  pcfg.node_faults.push_back(dead);
  FaultPlane plane(pcfg);
  b.sim.set_fault_plane(&plane);

  FlowTuning tuning;
  tuning.rto = 100e-6;
  tuning.rto_cap = 400e-6;
  tuning.retransmit_budget = 1000;  // deadline, not budget, must fire first
  tuning.flow_deadline = 1.5e-3;
  FlowOptions options;
  options.expected_packets = 2;
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 42, tuning,
                                    std::move(options));
  FlowStats fst;
  flow->send_message(make_bulk_items(2, 1500, 0),
                     [&](const FlowStats& st) { fst = st; });
  b.sim.run();
  EXPECT_TRUE(fst.failed);
  EXPECT_DOUBLE_EQ(fst.fct(), tuning.flow_deadline);
}

TEST_P(TransportConformance, RtoPinsAtCapAndAbortIsIdempotent) {
  Bench b(QueuePolicy::kDropTail);
  FaultPlaneConfig pcfg;
  NodeFault dead;
  dead.node = b.topo.right_hosts[0];
  dead.start = 0;
  dead.duration = 10.0;
  pcfg.node_faults.push_back(dead);
  FaultPlane plane(pcfg);
  b.sim.set_fault_plane(&plane);

  FlowTuning tuning;
  tuning.rto = 100e-6;
  tuning.rto_cap = 400e-6;  // no budget, no deadline: would retry forever
  FlowOptions options;
  options.expected_packets = 2;
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 43, tuning,
                                    std::move(options));
  int fires = 0;
  flow->send_message(make_bulk_items(2, 1500, 0),
                     [&](const FlowStats& st) {
                       ++fires;
                       EXPECT_TRUE(st.failed);
                     });
  b.sim.run_until(5e-3);
  EXPECT_TRUE(flow->sender_active());
  EXPECT_DOUBLE_EQ(flow->current_rto(), tuning.rto_cap);
  flow->abort();
  flow->abort();  // idempotent
  EXPECT_FALSE(flow->sender_active());
  b.sim.run();  // aborted sender's stale timers must be inert
  EXPECT_EQ(fires, 1);
}

TEST_P(TransportConformance, EmptyMessageCompletesImmediately) {
  Bench b(QueuePolicy::kDropTail);
  FlowOptions options;
  options.expected_packets = 0;
  auto flow = transport().make_flow(b.sim, b.topo.left_hosts[0],
                                    b.topo.right_hosts[0], 51, {},
                                    std::move(options));
  bool fired = false;
  flow->send_message({}, [&](const FlowStats& st) {
    fired = true;
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.packets, 0u);
  });
  b.sim.run();
  EXPECT_TRUE(fired);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, TransportConformance,
    ::testing::ValuesIn(TransportRegistry::global().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(TransportRegistry, UnknownNameListsRegisteredTransports) {
  try {
    TransportRegistry::global().at("tcp");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ecn"), std::string::npos);
    EXPECT_NE(msg.find("pull"), std::string::npos);
    EXPECT_NE(msg.find("reliable"), std::string::npos);
    EXPECT_NE(msg.find("trim"), std::string::npos);
  }
}

}  // namespace
}  // namespace trimgrad::net
