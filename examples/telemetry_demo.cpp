// Telemetry tour: run a small congested incast on the simulated fabric plus
// one codec round trip, then dump the run's metrics registry as JSON and the
// event log as a Chrome-trace file.
//
//   $ ./examples/telemetry_demo
//   $ # open chrome://tracing (or https://ui.perfetto.dev) and load
//   $ # telemetry_trace.json; telemetry_metrics.json is plain JSON.
//
// Every layer reports through the same two globals — core::MetricsRegistry
// and core::TraceLog — so this file contains *no* instrumentation of its
// own: the counters, histograms, and spans below come from the queue,
// switch, transport, and codec code paths themselves.
#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/metrics.h"
#include "core/metrics_export.h"
#include "core/prng.h"
#include "core/trace.h"
#include "net/topology.h"
#include "net/traffic.h"

int main() {
  using namespace trimgrad;

  core::MetricsRegistry::global().reset_values();
  core::TraceLog::global().clear();

  // --- A congested incast on a 2-leaf/2-spine fabric ----------------------
  {
    net::Simulator sim;  // installs the simulated clock as the trace source
    net::FabricConfig fcfg;
    fcfg.edge_link = {100e9, 1e-6};
    fcfg.core_link = {40e9, 2e-6};
    fcfg.switch_queue.policy = net::QueuePolicy::kTrim;
    fcfg.switch_queue.capacity_bytes = 48 * 1024;
    fcfg.switch_queue.header_capacity_bytes = 16 * 1024;
    const net::LeafSpine fabric = net::build_leaf_spine(sim, 2, 2, 4, fcfg);

    std::vector<net::NodeId> workers = {fabric.hosts[0][0], fabric.hosts[0][1],
                                        fabric.hosts[1][0]};
    net::IncastPattern::Config icfg;
    icfg.packets_per_sender = 256;
    icfg.trim_size = 88;
    icfg.transport = net::TransportConfig::trim_aware();
    icfg.transport.window = 32;  // deliberately oversized: forces trims
    net::IncastPattern incast(sim, workers, fabric.hosts[1][1], icfg);

    const double end = sim.run();
    std::printf("incast finished at t=%.1f us (max FCT %.1f us)\n", end * 1e6,
                incast.max_fct() * 1e6);
  }

  // --- One codec round trip under 50%% trimming ----------------------------
  core::Xoshiro256 rng(42);
  std::vector<float> grad(1 << 16);
  for (auto& g : grad) g = 0.01f * static_cast<float>(rng.gaussian());
  core::CodecConfig ccfg;
  ccfg.scheme = core::Scheme::kRHT;
  core::TrimmableEncoder encoder(ccfg);
  core::EncodedMessage msg = encoder.encode(grad, /*msg_id=*/1, /*epoch=*/0);
  for (std::size_t i = 0; i < msg.packets.size(); i += 2) msg.packets[i].trim();
  core::TrimmableDecoder decoder(ccfg);
  const core::DecodeResult out = decoder.decode(msg.packets, msg.meta);
  std::printf("codec round trip: %zu full / %zu trimmed coords\n",
              out.stats.full_coords, out.stats.trimmed_coords);

  // --- Dump both telemetry surfaces ---------------------------------------
  if (!core::write_metrics_json("telemetry_metrics.json",
                                core::MetricsRegistry::global())) {
    std::fprintf(stderr, "failed to write telemetry_metrics.json\n");
    return 1;
  }
  if (!core::TraceLog::global().write_json("telemetry_trace.json")) {
    std::fprintf(stderr, "failed to write telemetry_trace.json\n");
    return 1;
  }
  std::printf("wrote telemetry_metrics.json (%zu trace events -> "
              "telemetry_trace.json)\n",
              core::TraceLog::global().event_count());
  std::printf("load telemetry_trace.json in chrome://tracing or "
              "ui.perfetto.dev\n");
  return 0;
}
