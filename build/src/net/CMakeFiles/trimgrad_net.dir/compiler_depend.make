# Empty compiler generated dependencies file for trimgrad_net.
# This may be replaced when dependencies are built.
