file(REMOVE_RECURSE
  "CMakeFiles/test_core_lowrank.dir/core/lowrank_test.cpp.o"
  "CMakeFiles/test_core_lowrank.dir/core/lowrank_test.cpp.o.d"
  "test_core_lowrank"
  "test_core_lowrank.pdb"
  "test_core_lowrank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
