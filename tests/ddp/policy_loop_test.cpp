// The per-round compression control plane closed through the trainer:
// aimd-trim decisions must be bit-identical across thread counts, a policy
// switch must actually change the wire codec, the default fixed policy must
// be byte-for-byte the old pinned path, and a checkpointed run must replay
// the interrupted trajectory exactly after restore.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collective/inject_channel.h"
#include "core/policy.h"
#include "core/threadpool.h"
#include "ddp/trainer.h"
#include "ml/data.h"
#include "ml/model.h"

namespace trimgrad::ddp {
namespace {

ml::SynthCifarConfig small_data_config() {
  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 2;
  dcfg.proto_grid = 3;
  return dcfg;
}

TrainerConfig policy_trainer_config(const std::string& policy) {
  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 32;
  tcfg.epochs = 3;
  tcfg.eval_every = 0;
  tcfg.sgd.lr = 0.05f;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  tcfg.error_feedback = true;
  tcfg.policy.policy = policy;
  tcfg.policy.aimd.min_q = 7;
  tcfg.policy.aimd.max_q = 31;
  tcfg.policy.aimd.target_trim = 0.05;
  return tcfg;
}

/// A channel whose per-batch byte budget congests every round: feedback
/// carries real trim counts, and those counts are deterministic (the budget
/// cuts from the back of the burst, no coins involved).
collective::InjectChannel::Config congested_channel_config() {
  collective::InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = 0.0;
  ccfg.injector.drop_rate = 0.0;
  ccfg.capacity_bytes = 40000;  // well under a q=31 burst for the 48-MLP
  return ccfg;
}

struct RunResult {
  std::vector<core::PolicyDecision> decisions;
  std::vector<std::vector<float>> params;  // one per replica
  double last_loss = 0;
};

RunResult run_policy_epochs(const std::string& policy, std::size_t epochs) {
  ml::SynthCifar data(small_data_config());
  collective::InjectChannel channel(congested_channel_config());
  TrainerConfig tcfg = policy_trainer_config(policy);
  DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  });
  RunResult res;
  for (std::size_t e = 0; e < epochs; ++e) {
    res.last_loss = trainer.run_epoch(e).train_loss;
  }
  res.decisions = trainer.decisions();
  for (int r = 0; r < tcfg.world; ++r) {
    res.params.push_back(trainer.replica(r).flat_params());
  }
  return res;
}

void expect_bit_identical(const RunResult& a, const RunResult& b,
                          std::size_t threads) {
  EXPECT_EQ(a.decisions, b.decisions)
      << "decision trajectory differs at " << threads << " threads";
  EXPECT_EQ(a.last_loss, b.last_loss);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t r = 0; r < a.params.size(); ++r) {
    EXPECT_EQ(0, std::memcmp(a.params[r].data(), b.params[r].data(),
                             a.params[r].size() * sizeof(float)))
        << "replica " << r << " weights differ at " << threads << " threads";
  }
}

TEST(PolicyLoop, AimdTrimBitIdenticalAcrossPoolSizes) {
  core::ThreadPool::set_global_threads(1);
  const RunResult ref = run_policy_epochs("aimd-trim", 2);
  // The congested budget must have forced at least one actual switch —
  // otherwise this test would pass vacuously with the policy unwired.
  bool switched = false;
  for (std::size_t i = 1; i < ref.decisions.size(); ++i) {
    switched = switched || !(ref.decisions[i] == ref.decisions[i - 1]);
  }
  ASSERT_TRUE(switched) << "budget congestion never moved the controller";
  for (const std::size_t threads : {2, 8}) {
    core::ThreadPool::set_global_threads(threads);
    expect_bit_identical(ref, run_policy_epochs("aimd-trim", 2), threads);
  }
  core::ThreadPool::set_global_threads(1);
}

TEST(PolicyLoop, FixedPolicyNeverSwitches) {
  core::ThreadPool::set_global_threads(1);
  const RunResult res = run_policy_epochs("fixed", 1);
  ASSERT_FALSE(res.decisions.empty());
  const core::PolicyDecision base{"rht", 31};
  for (const auto& d : res.decisions) EXPECT_EQ(d, base);
}

TEST(PolicyLoop, AimdDivergesFromFixedUnderCongestion) {
  // Not just bookkeeping: once the controller cuts Q, the wire traffic and
  // therefore the trained weights must actually differ from the pinned run.
  core::ThreadPool::set_global_threads(1);
  const RunResult fixed = run_policy_epochs("fixed", 2);
  const RunResult aimd = run_policy_epochs("aimd-trim", 2);
  EXPECT_NE(fixed.params[0], aimd.params[0]);
}

TEST(PolicyLoop, CheckpointRestoreReplaysInterruptedTrajectory) {
  core::ThreadPool::set_global_threads(1);
  const std::size_t total_epochs = 3, cut_epoch = 2;
  const RunResult uninterrupted = run_policy_epochs("aimd-trim", total_epochs);

  // Train to the cut, checkpoint every rank (each carries the shared
  // control-plane state), then "kill" the trainer.
  ml::SynthCifar data(small_data_config());
  TrainerConfig tcfg = policy_trainer_config("aimd-trim");
  const auto make_model = [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  };
  std::vector<Checkpoint> saved;
  {
    collective::InjectChannel channel(congested_channel_config());
    DdpTrainer trainer(data, channel, tcfg, make_model);
    for (std::size_t e = 0; e < cut_epoch; ++e) trainer.run_epoch(e);
    for (int r = 0; r < tcfg.world; ++r) {
      saved.push_back(trainer.make_checkpoint(r, cut_epoch - 1, 0));
    }
  }

  // Byte round-trip, as a real restart would see them.
  for (auto& ck : saved) ck = Checkpoint::from_bytes(ck.to_bytes());

  // A fresh process: restore every rank plus the control plane, resume.
  collective::InjectChannel channel(congested_channel_config());
  DdpTrainer resumed(data, channel, tcfg, make_model);
  for (int r = 0; r < tcfg.world; ++r) {
    resumed.restore_rank(r, saved[static_cast<std::size_t>(r)]);
  }
  resumed.restore_control_plane(saved[0]);
  double last_loss = 0;
  for (std::size_t e = cut_epoch; e < total_epochs; ++e) {
    last_loss = resumed.run_epoch(e).train_loss;
  }

  // The resumed decisions are the uninterrupted run's tail, the weights
  // and loss land bit-identically.
  const auto& all = uninterrupted.decisions;
  const auto& tail = resumed.decisions();
  ASSERT_LT(tail.size(), all.size());
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                         all.end() - static_cast<std::ptrdiff_t>(tail.size())))
      << "restored controller diverged from the uninterrupted trajectory";
  EXPECT_EQ(last_loss, uninterrupted.last_loss);
  for (int r = 0; r < tcfg.world; ++r) {
    const auto& want = uninterrupted.params[static_cast<std::size_t>(r)];
    const auto got = resumed.replica(r).flat_params();
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(float)))
        << "replica " << r << " weights diverged after restore";
  }
}

TEST(PolicyLoop, SchedulePolicySwapsCodecOnCue) {
  // A scripted mid-run swap to the sparsify codec: the decision log shows
  // the swap and the active codec config follows it.
  ml::SynthCifar data(small_data_config());
  collective::InjectChannel::Config ccfg;
  ccfg.world = 4;
  collective::InjectChannel channel(ccfg);
  TrainerConfig tcfg = policy_trainer_config("schedule");
  tcfg.policy.schedule = "3:sparsify@15";
  core::ThreadPool::set_global_threads(1);
  DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  });
  trainer.run_epoch(0);
  const auto& ds = trainer.decisions();
  ASSERT_GT(ds.size(), 3u);
  EXPECT_EQ(ds[2], (core::PolicyDecision{"rht", 31}));
  EXPECT_EQ(ds[3], (core::PolicyDecision{"sparsify", 15}));
  EXPECT_EQ(trainer.active_codec().scheme, core::Scheme::kTopK);
  EXPECT_EQ(trainer.active_codec().layout.q_bits, 15u);
}

}  // namespace
}  // namespace trimgrad::ddp
