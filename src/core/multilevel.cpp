#include "core/multilevel.h"

#include <algorithm>
#include <cassert>

#include "core/bitpack.h"
#include "core/hadamard.h"
#include "core/metrics.h"
#include "core/rht_codec.h"
#include "core/threadpool.h"
#include "core/trace.h"

namespace trimgrad::core {

namespace {
constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kMagMask = 0x7fffffffu;
constexpr std::uint32_t kLowMask = 0x00ffffffu;  // low 24 bits

struct MlTelemetry {
  Counter messages_encoded, messages_decoded, packets_encoded;

  static const MlTelemetry& get() {
    auto& reg = MetricsRegistry::global();
    static const MlTelemetry t{
        reg.counter("codec.multilevel.messages_encoded"),
        reg.counter("codec.multilevel.messages_decoded"),
        reg.counter("codec.multilevel.packets_encoded"),
    };
    return t;
  }
};

}  // namespace

const char* to_string(TrimLevel lv) noexcept {
  switch (lv) {
    case TrimLevel::kFull: return "full";
    case TrimLevel::kMid: return "mid";
    case TrimLevel::kHead: return "head";
  }
  return "?";
}

MlParts ml_split(float r) noexcept {
  const std::uint32_t b = float_bits(r);
  MlParts p;
  p.sign = (b & kSignMask) == 0;
  const std::uint32_t exp = (b >> 23) & 0xffu;
  const std::uint32_t man = b & 0x007fffffu;
  // B: low-6 exponent bits + top mantissa bit (7 bits).
  p.mid = static_cast<std::uint8_t>(((exp & 0x3fu) << 1) | (man >> 22));
  // C: high-2 exponent bits + low 22 mantissa bits (24 bits).
  p.low = ((exp >> 6) << 22) | (man & 0x003fffffu);
  return p;
}

float ml_join_full(const MlParts& p) noexcept {
  const std::uint32_t exp =
      (((p.low >> 22) & 0x3u) << 6) | ((p.mid >> 1) & 0x3fu);
  const std::uint32_t man = (static_cast<std::uint32_t>(p.mid & 1u) << 22) |
                            (p.low & 0x003fffffu);
  return bits_float((p.sign ? 0u : kSignMask) | (exp << 23) | man);
}

float ml_join_mid(bool sign, std::uint8_t mid, float scale_f) noexcept {
  // Note: exact zeros (exp = 0) share mid = 0 with exponents ≡ 0 (mod 64);
  // the candidate search below resolves them naturally, because a zero row
  // scale (all-zero input) drives exp_f to 0 and selects the denormal
  // candidate, while a normal row scale never sits 32+ octaves away from a
  // real coordinate.
  const std::uint32_t exp_low6 = (mid >> 1) & 0x3fu;
  const std::uint32_t man_msb = mid & 1u;
  // Infer the two high exponent bits: pick the candidate exponent nearest
  // the row scale's exponent. Rotated coordinates sit within a few octaves
  // of f, far less than the 64-octave candidate spacing.
  const std::uint32_t exp_f = (float_bits(scale_f) >> 23) & 0xffu;
  std::uint32_t best_exp = exp_low6;
  std::uint32_t best_dist = ~0u;
  for (std::uint32_t hi = 0; hi < 4; ++hi) {
    const std::uint32_t cand = (hi << 6) | exp_low6;
    const std::uint32_t dist =
        cand > exp_f ? cand - exp_f : exp_f - cand;
    if (dist < best_dist) {
      best_dist = dist;
      best_exp = cand;
    }
  }
  // Unknown low 22 mantissa bits -> linear bucket midpoint.
  const std::uint32_t man = (man_msb << 22) | (1u << 21);
  return bits_float((sign ? 0u : kSignMask) | (best_exp << 23) | man);
}

float ml_join_head(bool sign, float scale_f) noexcept {
  return sign ? scale_f : -scale_f;
}

std::size_t MlPacket::wire_bytes_at(TrimLevel lv) const noexcept {
  switch (lv) {
    case TrimLevel::kFull: return wire_bytes();
    case TrimLevel::kMid:
      return kTransportHeaderBytes + region_a.size() + region_b.size();
    case TrimLevel::kHead:
      return kTransportHeaderBytes + region_a.size();
  }
  return wire_bytes();
}

void MlPacket::trim_to(TrimLevel lv) noexcept {
  if (static_cast<std::uint8_t>(lv) <= static_cast<std::uint8_t>(level)) return;
  level = lv;
  if (lv == TrimLevel::kMid || lv == TrimLevel::kHead) {
    region_c.clear();
    region_c.shrink_to_fit();
  }
  if (lv == TrimLevel::kHead) {
    region_b.clear();
    region_b.shrink_to_fit();
  }
}

MultilevelCodec::MultilevelCodec(Config cfg) : cfg_(std::move(cfg)) {
  assert(is_pow2(cfg_.row_len));
}

std::size_t MultilevelCodec::coords_per_packet() const noexcept {
  // 32 bits per coordinate across the three regions.
  return cfg_.layout.payload_bytes() * 8 / 32;
}

MlEncodedMessage MultilevelCodec::encode(std::span<const float> grad,
                                         std::uint32_t msg_id,
                                         std::uint64_t epoch) const {
  TraceLog::Span trace_span =
      TraceLog::global().span("multilevel.encode", "codec");
  trace_span.arg("coords", static_cast<double>(grad.size()));
  MlEncodedMessage out;
  out.meta.msg_id = msg_id;
  out.meta.epoch = epoch;
  out.meta.total_coords = static_cast<std::uint32_t>(grad.size());
  out.meta.row_len = static_cast<std::uint32_t>(cfg_.row_len);

  const RowSplit split = make_row_split(grad.size(), cfg_.row_len);
  const std::size_t per_pkt = coords_per_packet();

  // Same row-parallel layout as TrimmableEncoder: rows are keyed
  // independently, packet counts are known up front, each row fills its own
  // pre-sized slice so seq numbering matches the sequential order.
  out.meta.row_scales.assign(split.n_rows, 0.0f);
  std::vector<std::size_t> pkt_base(split.n_rows + 1, 0);
  for (std::size_t r = 0; r < split.n_rows; ++r) {
    pkt_base[r + 1] =
        pkt_base[r] + (split.padded_len(r) + per_pkt - 1) / per_pkt;
  }
  out.packets.resize(pkt_base[split.n_rows]);
  parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
    // Per-chunk scratch reused across rows and packets.
    std::vector<float> row;
    RhtEncodedRow enc;
    std::vector<std::uint8_t> signs;
    std::vector<std::uint32_t> mids, lows;
    for (std::size_t r = r0; r < r1; ++r) {
      extract_padded_row_into(grad, split, r, row);
      const StreamKey key{cfg_.shared_seed, epoch, msg_id, r};
      // Reuse the 1-bit RHT encoder for rotation + scale, then re-split the
      // rotated coordinates into the three regions.
      rht_encode_row_inplace(row, key, enc);
      out.meta.row_scales[r] = enc.scale_f;

      const std::size_t row_base = split.offset(r);
      std::size_t slot = pkt_base[r];
      for (std::size_t off = 0; off < enc.heads.size(); off += per_pkt) {
        const std::size_t n = std::min(per_pkt, enc.heads.size() - off);
        MlPacket pkt;
        pkt.msg_id = msg_id;
        pkt.row_id = static_cast<std::uint32_t>(r);
        pkt.coord_base = static_cast<std::uint32_t>(row_base + off);
        pkt.n_coords = static_cast<std::uint16_t>(n);
        pkt.seq = static_cast<std::uint16_t>(slot);
        signs.resize(n);
        mids.resize(n);
        lows.resize(n);
        for (std::size_t j = 0; j < n; ++j) {
          const MlParts parts = ml_split(rht_coord_from_parts(
              enc.heads[off + j] != 0, enc.tails[off + j]));
          signs[j] = parts.sign ? 1 : 0;
          mids[j] = parts.mid;
          lows[j] = parts.low;
        }
        BitWriter a, b, c;
        a.put_bits8(signs.data(), n);
        b.put_run(mids.data(), n, 7);
        c.put_run(lows.data(), n, 24);
        pkt.region_a = std::move(a).finish();
        pkt.region_b = std::move(b).finish();
        pkt.region_c = std::move(c).finish();
        out.packets[slot] = std::move(pkt);
        ++slot;
      }
    }
  });
  const MlTelemetry& t = MlTelemetry::get();
  t.messages_encoded.add();
  t.packets_encoded.add(out.packets.size());
  return out;
}

std::vector<float> MultilevelCodec::decode(std::span<const MlPacket> packets,
                                           const MlMessageMeta& meta) const {
  TraceLog::Span trace_span =
      TraceLog::global().span("multilevel.decode", "codec");
  trace_span.arg("coords", static_cast<double>(meta.total_coords));
  MlTelemetry::get().messages_decoded.add();
  const RowSplit split = make_row_split(meta.total_coords, meta.row_len);
  std::vector<float> out(meta.total_coords, 0.0f);

  // Bucket packets by row once, then decode rows across the pool — each
  // row writes a disjoint slice of `out`.
  std::vector<std::vector<const MlPacket*>> by_row(split.n_rows);
  for (const auto& pkt : packets) {
    if (pkt.row_id < split.n_rows) by_row[pkt.row_id].push_back(&pkt);
  }
  parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
    // Per-chunk scratch reused across rows and packets.
    std::vector<float> r_hat;
    std::vector<std::uint8_t> signs;
    std::vector<std::uint32_t> mids, lows;
    for (std::size_t r = r0; r < r1; ++r) {
      const std::size_t padded = split.padded_len(r);
      const std::size_t row_base = split.offset(r);
      const float f = r < meta.row_scales.size() ? meta.row_scales[r] : 0.0f;
      r_hat.assign(padded, 0.0f);
      for (const MlPacket* pkt : by_row[r]) {
        // Bulk unpack with the same in-range clamping as the reference
        // per-coordinate loop (see TrimmableDecoder::decode): sign bits are
        // consumed for every j, mid/low bits only for in-range coords.
        const std::size_t start = pkt->coord_base - row_base;
        std::size_t j0 = 0;
        std::size_t local0 = start;
        if (start >= padded) {
          j0 = std::size_t{0} - start;
          if (j0 >= pkt->n_coords) continue;
          local0 = 0;
        }
        const std::size_t n_ok =
            std::min<std::size_t>(pkt->n_coords - j0, padded - local0);
        signs.resize(n_ok);
        BitReader a(pkt->region_a);
        a.skip(j0);
        a.get_bits8(signs.data(), n_ok);
        BitReader b(pkt->region_b);
        BitReader c(pkt->region_c);
        switch (pkt->level) {
          case TrimLevel::kFull:
            mids.resize(n_ok);
            lows.resize(n_ok);
            b.get_run(mids.data(), n_ok, 7);
            c.get_run(lows.data(), n_ok, 24);
            for (std::size_t k = 0; k < n_ok; ++k) {
              MlParts p{signs[k] != 0, static_cast<std::uint8_t>(mids[k]),
                        lows[k]};
              r_hat[local0 + k] = ml_join_full(p);
            }
            break;
          case TrimLevel::kMid:
            mids.resize(n_ok);
            b.get_run(mids.data(), n_ok, 7);
            for (std::size_t k = 0; k < n_ok; ++k) {
              r_hat[local0 + k] = ml_join_mid(
                  signs[k] != 0, static_cast<std::uint8_t>(mids[k]), f);
            }
            break;
          case TrimLevel::kHead:
            for (std::size_t k = 0; k < n_ok; ++k) {
              r_hat[local0 + k] = ml_join_head(signs[k] != 0, f);
            }
            break;
        }
      }
      SharedRng rng(StreamKey{cfg_.shared_seed, meta.epoch, meta.msg_id, r});
      irht_inplace(r_hat, rng);
      const std::size_t real = split.real_len(r);
      for (std::size_t i = 0; i < real; ++i) out[row_base + i] = r_hat[i];
    }
  });
  return out;
}

}  // namespace trimgrad::core
