// Property-checked chaos search with minimal-repro shrinking.
//
// One *chaos cell* is a closed training loop — DDP over SimChannel flows on
// a partitioned fat-tree — run under a FaultScript with an InvariantMonitor
// (net/invariants.h) attached to every layer. run_chaos_cell() executes one
// cell and returns the canonical violation report; the search driver
// (bench/bench_chaos_search.cpp) samples hundreds of generated scripts
// across {transport × codec × queue-policy} cells and calls shrink_repro()
// on any violation to delta-debug the script down to a 1-minimal
// deterministic repro: greedily drop fault events, then halve windows and
// shrink the experiment shape (epochs, world, batch), keeping every step
// only if the violation survives. The result serializes to a FaultScript
// file replayable via `ExperimentSpec faults=file:<path>` — the artifact CI
// uploads when a property ever breaks.
#pragma once

#include <cstdint>
#include <vector>

#include "ddp/experiment.h"
#include "net/fault_script.h"
#include "net/invariants.h"
#include "net/queue.h"

namespace trimgrad::ddp {

/// Fixed (non-searched) parameters of a chaos cell.
struct ChaosCellConfig {
  /// Fat-tree arity; k*k*k/4 hosts, partitioned pod-per-domain and run with
  /// parallel execution, so a cell exercises the sharded engine too.
  std::size_t fat_tree_k = 4;
  /// Switch egress policy for the cell (the "trim" axis of the cell grid).
  net::QueuePolicy queue_policy = net::QueuePolicy::kTrim;
  /// InvariantMonitor stuck-flow deadline, in simulated seconds.
  net::SimTime flow_progress_deadline = 1.0;
  /// Violation retention cap per run.
  std::size_t max_violations = 64;
};

struct ChaosCellResult {
  /// Canonically sorted (bit-comparable across TRIMGRAD_THREADS).
  std::vector<net::InvariantViolation> violations;
  std::uint64_t total_violations = 0;
  std::uint64_t checks = 0;       ///< monitor hook invocations (> 0 == wired)
  std::size_t epochs = 0;         ///< epochs the trainer completed
  std::uint64_t fault_events = 0; ///< FaultLog entries the plane recorded
  bool drained = false;           ///< no events left after training finished
};

/// Run one invariant-checked closed loop: build the fat-tree, attach the
/// script's fault plane and a fresh monitor, train spec.epochs epochs, then
/// finalize() the monitor (queues drained, custody empty, no live flows).
/// Deterministic in (spec, script, cfg) for any TRIMGRAD_THREADS.
/// spec.world must fit the k^3/4 hosts; ranks are spread across pods.
ChaosCellResult run_chaos_cell(const ExperimentSpec& spec,
                               const net::FaultScript& script,
                               const ChaosCellConfig& cfg = {});

/// Candidate pools for generate_fault_script on the cell's fabric: every
/// switch egress port (edge, agg, core) and every switch node of a k-ary
/// fat-tree built the way run_chaos_cell builds it. Host nodes are excluded
/// from kill candidates — killing a rank's host tests the elastic layer
/// (bench_soak_elastic), not the invariants under churn.
net::ScriptGenConfig chaos_candidates(std::size_t fat_tree_k,
                                      std::uint64_t seed, double intensity);

/// A shrunk failing case: the smallest (spec, script) pair this search found
/// that still violates an invariant.
struct ChaosRepro {
  ExperimentSpec spec;
  net::FaultScript script;
  std::vector<net::InvariantViolation> violations;  ///< of the minimal pair
  std::size_t probes = 0;  ///< cell runs spent shrinking
};

/// Delta-debug (spec, script) to a 1-minimal repro: remove fault events one
/// at a time to fixpoint (the result stays failing, and removing any single
/// remaining event makes it pass), then try halving durations/repeats,
/// zeroing the corrupt rate, disabling the straggler, and shrinking
/// epochs/world/batch — keeping each step only if a violation survives.
/// Precondition: run_chaos_cell(spec, script, cfg) reports a violation.
ChaosRepro shrink_repro(const ExperimentSpec& spec,
                        const net::FaultScript& script,
                        const ChaosCellConfig& cfg = {});

}  // namespace trimgrad::ddp
