#include "core/packet.h"

#include <gtest/gtest.h>

namespace trimgrad::core {
namespace {

TEST(PacketLayout, PaperMtuArithmetic) {
  // §2's worked example: 1500-byte MTU, 42-byte header, P=1/Q=31.
  PacketLayout layout;
  EXPECT_EQ(layout.payload_bytes(), 1458u);
  // "about n = 365 coordinates": floor(1458·8 / 32) = 364.
  EXPECT_EQ(layout.coords_per_packet(), 364u);
  // Head region ceil(364/8) = 46 bytes; paper rounds to "45 bytes".
  EXPECT_EQ(layout.head_region_bytes(layout.coords_per_packet()), 46u);
  // Trim point 42 + 46 = 88 bytes; paper's is 87 (same rounding).
  EXPECT_EQ(layout.trim_point_bytes(), 88u);
  // Compression ratio ≈ 94 % ("achieving a compression ratio of 94.2%").
  EXPECT_NEAR(layout.trim_ratio(), 0.94, 0.01);
}

TEST(PacketLayout, TrimRatioApproachesQOverPQ) {
  // §2: trimming shrinks the packet by approximately Q/(P+Q).
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    PacketLayout layout;
    layout.p_bits = p;
    layout.q_bits = 32 - p;
    const double expected = static_cast<double>(layout.q_bits) / 32.0;
    EXPECT_NEAR(layout.trim_ratio(), expected, 0.05) << "P=" << p;
  }
}

TEST(PacketLayout, SmallMtu) {
  PacketLayout layout;
  layout.mtu_bytes = 256;
  EXPECT_EQ(layout.payload_bytes(), 214u);
  EXPECT_EQ(layout.coords_per_packet(), 53u);
  EXPECT_GT(layout.trim_ratio(), 0.8);
}

TEST(PacketLayout, BaselineLayoutHasNoHeadRegion) {
  PacketLayout layout;
  layout.p_bits = 0;
  layout.q_bits = 32;
  EXPECT_EQ(layout.coords_per_packet(), 364u);
  EXPECT_EQ(layout.head_region_bytes(364), 0u);
}

TEST(GradientPacket, WireBytesSumsRegions) {
  GradientPacket pkt;
  pkt.head_region.assign(46, 0);
  pkt.tail_region.assign(1412, 0);
  EXPECT_EQ(pkt.wire_bytes(), 42u + 46u + 1412u);
}

TEST(GradientPacket, TrimDropsTailAndSetsFlag) {
  GradientPacket pkt;
  pkt.scheme = Scheme::kRHT;
  pkt.head_region.assign(46, 0xaa);
  pkt.tail_region.assign(1412, 0xbb);
  const auto expected_trimmed = pkt.trimmed_wire_bytes();
  pkt.trim();
  EXPECT_TRUE(pkt.trimmed);
  EXPECT_TRUE(pkt.tail_region.empty());
  EXPECT_EQ(pkt.head_region.size(), 46u);
  EXPECT_EQ(pkt.wire_bytes(), expected_trimmed);
}

TEST(GradientPacket, TrimIsIdempotent) {
  GradientPacket pkt;
  pkt.scheme = Scheme::kSign;
  pkt.head_region.assign(10, 1);
  pkt.tail_region.assign(100, 2);
  pkt.trim();
  const auto size_after_first = pkt.wire_bytes();
  pkt.trim();
  EXPECT_EQ(pkt.wire_bytes(), size_after_first);
}

TEST(GradientPacket, BaselineTrimLosesEverything) {
  // Fig. 2a: no head/tail split, so trimming a baseline packet leaves only
  // the header — all coordinates are gone.
  GradientPacket pkt;
  pkt.scheme = Scheme::kBaseline;
  pkt.tail_region.assign(1456, 3);
  pkt.trim();
  EXPECT_EQ(pkt.wire_bytes(), kTransportHeaderBytes);
}

TEST(SchemeNames, AllDistinct) {
  EXPECT_STREQ(to_string(Scheme::kBaseline), "baseline");
  EXPECT_STREQ(to_string(Scheme::kSign), "sign");
  EXPECT_STREQ(to_string(Scheme::kSQ), "sq");
  EXPECT_STREQ(to_string(Scheme::kSD), "sd");
  EXPECT_STREQ(to_string(Scheme::kRHT), "rht");
}

TEST(SchemeNames, IsScalarClassification) {
  EXPECT_FALSE(is_scalar(Scheme::kBaseline));
  EXPECT_TRUE(is_scalar(Scheme::kSign));
  EXPECT_TRUE(is_scalar(Scheme::kSQ));
  EXPECT_TRUE(is_scalar(Scheme::kSD));
  EXPECT_FALSE(is_scalar(Scheme::kRHT));
}

}  // namespace
}  // namespace trimgrad::core
