# Empty dependencies file for test_core_quantizer.
# This may be replaced when dependencies are built.
