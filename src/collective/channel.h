// Channels: how encoded gradient messages move between ranks.
//
// The collective algorithms (allreduce/allgather) are written against this
// interface so the same code runs over:
//
//  * InjectChannel — the paper's own evaluation mode (§4): per-packet
//    Bernoulli trim/drop plus an analytic time model (serialization at the
//    bottleneck + RTT + retransmission penalties for reliable flows). Fast:
//    used by the training benches.
//  * SimChannel — the full discrete-event fabric: ranks pinned to hosts,
//    every transfer a real flow through trimming/drop-tail switches, with
//    optional cross traffic. Trim rates *emerge* from congestion here.
//    Used by the closed-loop benches (§5.1's future-work experiment).
//
// A batch of transfers is semantically concurrent — that is how ring or
// parameter-server steps overlap on the fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "core/codec.h"
#include "core/policy.h"
#include "net/frame.h"

namespace trimgrad::collective {

using Rank = int;

struct TransferRequest {
  Rank src = 0;
  Rank dst = 0;
  core::EncodedMessage message;
};

struct Delivery {
  Rank src = 0;
  Rank dst = 0;
  std::vector<core::GradientPacket> packets;  ///< as received (some trimmed)
  core::MessageMeta meta;                     ///< via the reliable channel
  net::SimTime comm_time = 0;                 ///< transfer completion time
  std::uint64_t wire_bytes = 0;               ///< bytes that crossed the wire
  std::size_t trimmed_packets = 0;
  std::size_t dropped_packets = 0;
  std::uint64_t retransmits = 0;
  /// The flow gave up (retransmit budget / deadline exhausted, or the round
  /// deadline aborted it). `packets` holds whatever arrived before that —
  /// the collective degrades gracefully instead of hanging.
  bool flow_failed = false;
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Execute a batch of concurrent transfers; returns one Delivery per
  /// request, same order. comm_time of the batch = max over deliveries.
  virtual std::vector<Delivery> transfer(std::vector<TransferRequest> batch) = 0;

  virtual int world_size() const = 0;

  /// The control plane's telemetry surface: everything the channel did to
  /// packets since the last call, folded into one deterministic snapshot
  /// (per-delivery integer counters; implementations may enrich it with
  /// fabric signals such as ECN alpha). Resets the accumulator — the
  /// trainer drains it once per round and hands it to the policy.
  virtual core::NetFeedback take_feedback() {
    core::NetFeedback fb = pending_feedback_;
    pending_feedback_ = core::NetFeedback{};
    return fb;
  }

 protected:
  /// Fold one transfer batch into the pending snapshot. Implementations
  /// call this at the end of transfer(); offered = delivered + dropped.
  void note_batch(const std::vector<Delivery>& deliveries) {
    auto& fb = pending_feedback_;
    for (const Delivery& d : deliveries) {
      fb.packets += d.packets.size() + d.dropped_packets;
      fb.trimmed += d.trimmed_packets;
      fb.dropped += d.dropped_packets;
      fb.retransmits += d.retransmits;
      fb.wire_bytes += d.wire_bytes;
      if (d.flow_failed) ++fb.flow_failures;
    }
    double worst = 0;
    for (const Delivery& d : deliveries)
      worst = worst < d.comm_time ? d.comm_time : worst;
    fb.comm_s += worst;
  }

  core::NetFeedback pending_feedback_{};
};

/// Batch completion time: the straggler-defining maximum.
net::SimTime batch_time(const std::vector<Delivery>& deliveries);

}  // namespace trimgrad::collective
