#include "collective/inject_channel.h"

#include <algorithm>

namespace trimgrad::collective {

net::SimTime batch_time(const std::vector<Delivery>& deliveries) {
  net::SimTime worst = 0;
  for (const auto& d : deliveries) worst = std::max(worst, d.comm_time);
  return worst;
}

std::vector<Delivery> InjectChannel::transfer(
    std::vector<TransferRequest> batch) {
  std::vector<Delivery> out;
  out.reserve(batch.size());

  for (auto& req : batch) {
    Delivery d;
    d.src = req.src;
    d.dst = req.dst;
    d.meta = req.message.meta;

    const std::size_t n_before = req.message.packets.size();
    std::uint64_t full_bytes = 0;
    for (const auto& p : req.message.packets) full_bytes += p.wire_bytes();

    if (cfg_.reliable) {
      // Baseline semantics: every packet eventually arrives intact. Coins
      // decide the *time* penalty only.
      net::InjectionStats st{};
      st.packets = n_before;
      // Use the injector's RNG stream for the coins so the same seeds give
      // the same congestion pattern across schemes.
      std::vector<core::GradientPacket> scratch = req.message.packets;
      st = injector_.apply(scratch, epoch_, nullptr);
      d.packets = std::move(req.message.packets);  // delivered intact
      d.dropped_packets = st.dropped;
      d.trimmed_packets = st.trimmed;  // trims count as losses for baseline
      d.retransmits = st.dropped + st.trimmed;
      // Retransmitted bytes cross the wire twice (at least).
      std::uint64_t avg_pkt = n_before > 0 ? full_bytes / n_before : 0;
      d.wire_bytes = full_bytes + d.retransmits * avg_pkt;
    } else {
      net::InjectionStats st = injector_.apply(
          req.message.packets, epoch_, record_ ? &transcript_ : nullptr);
      d.packets = std::move(req.message.packets);
      d.trimmed_packets = st.trimmed;
      d.dropped_packets = st.dropped;
      d.wire_bytes = 0;
      for (const auto& p : d.packets) d.wire_bytes += p.wire_bytes();
    }
    d.wire_bytes += d.meta.wire_bytes();
    out.push_back(std::move(d));
  }

  // Capacity congestion: when the batch's data bytes exceed the budget,
  // trim from the back of the burst until it fits — deterministically, so
  // the control loop sees the same congestion at every thread count. In
  // reliable mode the payload still arrives intact but each cut costs a
  // retransmission (the baseline's §4.4 penalty).
  if (cfg_.capacity_bytes > 0) {
    std::uint64_t data_bytes = 0;
    for (const auto& d : out) {
      for (const auto& p : d.packets) data_bytes += p.wire_bytes();
    }
    for (auto it = out.rbegin();
         it != out.rend() && data_bytes > cfg_.capacity_bytes; ++it) {
      for (auto pit = it->packets.rbegin();
           pit != it->packets.rend() && data_bytes > cfg_.capacity_bytes;
           ++pit) {
        if (pit->trimmed) continue;
        const std::uint64_t saved =
            pit->wire_bytes() - pit->trimmed_wire_bytes();
        if (saved == 0) continue;
        data_bytes -= saved;
        if (cfg_.reliable) {
          ++it->retransmits;
          it->wire_bytes += pit->wire_bytes();
        } else {
          pit->trim();
          ++it->trimmed_packets;
          it->wire_bytes -= saved;
        }
      }
    }
  }

  // Timing: transfers in a batch share the bottleneck if configured.
  std::uint64_t batch_bytes = 0;
  for (const auto& d : out) batch_bytes += d.wire_bytes;
  for (auto& d : out) {
    const std::uint64_t serialized =
        cfg_.time.shared_bottleneck ? batch_bytes : d.wire_bytes;
    d.comm_time = static_cast<double>(serialized) * 8.0 /
                      cfg_.time.bottleneck_bps +
                  cfg_.time.base_rtt +
                  static_cast<double>(d.retransmits) * cfg_.time.drop_penalty;
  }
  note_batch(out);
  return out;
}

}  // namespace trimgrad::collective
