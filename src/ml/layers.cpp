#include "ml/layers.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>

namespace trimgrad::ml {

namespace {

/// He-normal initialization, the standard choice for ReLU nets.
void he_init(std::vector<float>& w, std::size_t fan_in,
             core::Xoshiro256& rng) {
  const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& x : w) x = scale * static_cast<float>(rng.gaussian());
}

}  // namespace

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::size_t in, std::size_t out, core::Xoshiro256& rng)
    : in_(in), out_(out), w_(in * out), b_(out, 0.0f), gw_(in * out, 0.0f),
      gb_(out, 0.0f) {
  he_init(w_, in, rng);
}

Tensor Linear::forward(const Tensor& x) {
  const std::size_t batch = x.dim(0);
  x_cache_ = x;
  Tensor y({batch, out_});
  for (std::size_t i = 0; i < batch; ++i) {
    float* row = y.ptr() + i * out_;
    for (std::size_t o = 0; o < out_; ++o) row[o] = b_[o];
  }
  // y(B×out) += x(B×in) · Wᵀ, W stored out×in.
  gemm_a_bt(x.ptr(), w_.data(), y.ptr(), batch, in_, out_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0);
  // dW(out×in) += gradᵀ(out×B) · x(B×in)  ==  gemm_at_b(grad, x) with
  // grad stored B×out.
  gemm_at_b(grad_out.ptr(), x_cache_.ptr(), gw_.data(), batch, out_, in_);
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = grad_out.ptr() + i * out_;
    for (std::size_t o = 0; o < out_; ++o) gb_[o] += row[o];
  }
  // dx(B×in) = grad(B×out) · W(out×in).
  Tensor dx({batch, in_});
  gemm_accumulate(grad_out.ptr(), w_.data(), dx.ptr(), batch, out_, in_);
  return dx;
}

// ------------------------------------------------------------------ ReLU --

Tensor ReLU::forward(const Tensor& x) {
  Tensor y = x;
  mask_.assign(x.size(), 0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data[i] > 0.0f) {
      mask_[i] = 1;
    } else {
      y.data[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (mask_[i] == 0) dx.data[i] = 0.0f;
  }
  return dx;
}

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(std::size_t in_ch, std::size_t out_ch, core::Xoshiro256& rng)
    : cin_(in_ch), cout_(out_ch), w_(out_ch * in_ch * 9), b_(out_ch, 0.0f),
      gw_(w_.size(), 0.0f), gb_(out_ch, 0.0f) {
  he_init(w_, in_ch * 9, rng);
}

namespace {

/// im2col for 3×3/stride1/pad1: cols[(c*9 + k)][h*W + w] = x[c][h+dh][w+dw].
void im2col_3x3(const float* x, std::size_t c_in, std::size_t h,
                std::size_t w, float* cols) {
  const std::size_t hw = h * w;
  for (std::size_t c = 0; c < c_in; ++c) {
    const float* plane = x + c * hw;
    for (int dh = -1; dh <= 1; ++dh) {
      for (int dw = -1; dw <= 1; ++dw) {
        const std::size_t k = static_cast<std::size_t>((dh + 1) * 3 + (dw + 1));
        float* crow = cols + (c * 9 + k) * hw;
        for (std::size_t y = 0; y < h; ++y) {
          const int sy = static_cast<int>(y) + dh;
          if (sy < 0 || sy >= static_cast<int>(h)) {
            std::memset(crow + y * w, 0, w * sizeof(float));
            continue;
          }
          for (std::size_t xx = 0; xx < w; ++xx) {
            const int sx = static_cast<int>(xx) + dw;
            crow[y * w + xx] =
                (sx < 0 || sx >= static_cast<int>(w))
                    ? 0.0f
                    : plane[static_cast<std::size_t>(sy) * w +
                            static_cast<std::size_t>(sx)];
          }
        }
      }
    }
  }
}

/// Transpose of im2col: scatter-add column gradients back to the image.
void col2im_3x3(const float* cols, std::size_t c_in, std::size_t h,
                std::size_t w, float* dx) {
  const std::size_t hw = h * w;
  for (std::size_t c = 0; c < c_in; ++c) {
    float* plane = dx + c * hw;
    for (int dh = -1; dh <= 1; ++dh) {
      for (int dw = -1; dw <= 1; ++dw) {
        const std::size_t k = static_cast<std::size_t>((dh + 1) * 3 + (dw + 1));
        const float* crow = cols + (c * 9 + k) * hw;
        for (std::size_t y = 0; y < h; ++y) {
          const int sy = static_cast<int>(y) + dh;
          if (sy < 0 || sy >= static_cast<int>(h)) continue;
          for (std::size_t xx = 0; xx < w; ++xx) {
            const int sx = static_cast<int>(xx) + dw;
            if (sx < 0 || sx >= static_cast<int>(w)) continue;
            plane[static_cast<std::size_t>(sy) * w +
                  static_cast<std::size_t>(sx)] += crow[y * w + xx];
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Conv2d::forward(const Tensor& x) {
  const std::size_t batch = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t hw = h * w;
  const std::size_t ck = cin_ * 9;
  x_cache_ = x;
  cols_cache_.assign(batch * ck * hw, 0.0f);
  Tensor y({batch, cout_, h, w});
  for (std::size_t bidx = 0; bidx < batch; ++bidx) {
    float* cols = cols_cache_.data() + bidx * ck * hw;
    im2col_3x3(x.ptr() + bidx * cin_ * hw, cin_, h, w, cols);
    float* out = y.ptr() + bidx * cout_ * hw;
    for (std::size_t f = 0; f < cout_; ++f) {
      float* plane = out + f * hw;
      const float bias = b_[f];
      for (std::size_t i = 0; i < hw; ++i) plane[i] = bias;
    }
    // out(cout×hw) += W(cout×ck) · cols(ck×hw).
    gemm_accumulate(w_.data(), cols, out, cout_, ck, hw);
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.dim(0);
  const std::size_t h = grad_out.dim(2);
  const std::size_t w = grad_out.dim(3);
  const std::size_t hw = h * w;
  const std::size_t ck = cin_ * 9;
  Tensor dx({batch, cin_, h, w});
  std::vector<float> dcols(ck * hw);
  for (std::size_t bidx = 0; bidx < batch; ++bidx) {
    const float* gout = grad_out.ptr() + bidx * cout_ * hw;
    const float* cols = cols_cache_.data() + bidx * ck * hw;
    // dW(cout×ck) += gout(cout×hw) · colsᵀ(hw×ck).
    gemm_a_bt(gout, cols, gw_.data(), cout_, hw, ck);
    for (std::size_t f = 0; f < cout_; ++f) {
      const float* plane = gout + f * hw;
      float acc = 0.0f;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      gb_[f] += acc;
    }
    // dcols(ck×hw) = Wᵀ(ck×cout) · gout(cout×hw).
    std::fill(dcols.begin(), dcols.end(), 0.0f);
    gemm_at_b(w_.data(), gout, dcols.data(), cout_, ck, hw);
    col2im_3x3(dcols.data(), cin_, h, w, dx.ptr() + bidx * cin_ * hw);
  }
  return dx;
}

// ------------------------------------------------------------- MaxPool2d --

Tensor MaxPool2d::forward(const Tensor& x) {
  const std::size_t batch = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  in_shape_ = x.shape;
  Tensor y({batch, c, oh, ow});
  argmax_.assign(y.size(), 0);
  for (std::size_t bc = 0; bc < batch * c; ++bc) {
    const float* in = x.ptr() + bc * h * w;
    float* out = y.ptr() + bc * oh * ow;
    std::size_t* amax = argmax_.data() + bc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::size_t best_idx = (2 * oy) * w + 2 * ox;
        float best = in[best_idx];
        for (int dy = 0; dy < 2; ++dy) {
          for (int dxx = 0; dxx < 2; ++dxx) {
            const std::size_t idx = (2 * oy + dy) * w + 2 * ox + dxx;
            if (in[idx] > best) {
              best = in[idx];
              best_idx = idx;
            }
          }
        }
        out[oy * ow + ox] = best;
        amax[oy * ow + ox] = best_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_[0];
  const std::size_t c = in_shape_[1];
  const std::size_t h = in_shape_[2];
  const std::size_t w = in_shape_[3];
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  Tensor dx({batch, c, h, w});
  for (std::size_t bc = 0; bc < batch * c; ++bc) {
    const float* g = grad_out.ptr() + bc * oh * ow;
    const std::size_t* amax = argmax_.data() + bc * oh * ow;
    float* out = dx.ptr() + bc * h * w;
    for (std::size_t i = 0; i < oh * ow; ++i) out[amax[i]] += g[i];
  }
  return dx;
}

// --------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape;
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// ------------------------------------------------------------ Sequential --

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (auto& layer : layers_) {
    for (const auto& p : layer->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.values->size();
  return n;
}

void Sequential::zero_grads() {
  for (const auto& p : params())
    std::fill(p.grads->begin(), p.grads->end(), 0.0f);
}

std::vector<float> Sequential::flat_grads() {
  std::vector<float> out;
  out.reserve(param_count());
  for (const auto& p : params())
    out.insert(out.end(), p.grads->begin(), p.grads->end());
  return out;
}

void Sequential::set_flat_grads(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : params()) {
    std::copy(flat.begin() + off, flat.begin() + off + p.grads->size(),
              p.grads->begin());
    off += p.grads->size();
  }
}

std::vector<float> Sequential::flat_params() {
  std::vector<float> out;
  out.reserve(param_count());
  for (const auto& p : params())
    out.insert(out.end(), p.values->begin(), p.values->end());
  return out;
}

void Sequential::set_flat_params(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& p : params()) {
    std::copy(flat.begin() + off, flat.begin() + off + p.values->size(),
              p.values->begin());
    off += p.values->size();
  }
}

}  // namespace trimgrad::ml
