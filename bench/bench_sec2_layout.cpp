// Experiment T2 (DESIGN.md): the §2 packet-layout arithmetic.
//
// Paper's worked example: MTU 1500 B, 42 B Ethernet/IP/UDP header, P = 1,
// Q = 31 => "about n = 365 coordinates", trim at "87 bytes", "compression
// ratio of 94.2%". We print our exact integer arithmetic next to the
// paper's rounded figures, plus the P sweep behind §5.1's 25 % / 3 % levels.
#include <cstdio>

#include "core/packet.h"

int main() {
  using trimgrad::core::PacketLayout;

  std::printf("=== paper worked example (MTU 1500, header 42, P=1/Q=31) ===\n");
  PacketLayout base;
  std::printf("coords per packet : %zu   (paper: ~365)\n",
              base.coords_per_packet());
  std::printf("head region bytes : %zu   (paper: ~45)\n",
              base.head_region_bytes(base.coords_per_packet()));
  std::printf("trim point bytes  : %zu   (paper: 87)\n",
              base.trim_point_bytes());
  std::printf("compression ratio : %.1f%% (paper: 94.2%%)\n\n",
              base.trim_ratio() * 100);

  std::printf("=== P sweep at MTU 1500 (multi-level trim targets, Sec 5.1) ===\n");
  std::printf("%4s %6s %10s %12s %14s %12s\n", "P", "Q", "coords/pkt",
              "trim_point", "trimmed_size%", "~Q/(P+Q)%");
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    PacketLayout l;
    l.p_bits = p;
    l.q_bits = 32 - p;
    const double trimmed_frac = 1.0 - l.trim_ratio();
    std::printf("%4u %6u %10zu %12zu %13.1f%% %11.1f%%\n", p, l.q_bits,
                l.coords_per_packet(), l.trim_point_bytes(),
                trimmed_frac * 100,
                100.0 * l.q_bits / (l.p_bits + l.q_bits));
  }

  std::printf("\n=== MTU sweep at P=1 ===\n");
  std::printf("%6s %10s %12s %12s\n", "MTU", "coords/pkt", "trim_point",
              "ratio%");
  for (std::size_t mtu : {256u, 512u, 1500u, 4096u, 9000u}) {
    PacketLayout l;
    l.mtu_bytes = mtu;
    std::printf("%6zu %10zu %12zu %11.1f%%\n", mtu, l.coords_per_packet(),
                l.trim_point_bytes(), l.trim_ratio() * 100);
  }
  return 0;
}
