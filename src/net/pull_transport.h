// NDP-style receiver-driven (pull-paced) transport.
//
// The window transports in net/transport.h are ACK-clocked; under N-to-1
// incast every sender's initial window collides at the fan-in switch, which
// is exactly when trimming fires. NDP's remedy — and the reason the paper's
// §1 cites it as the trimming substrate — is receiver pacing: after the
// first-RTT burst, the receiver hands out PULL credits spaced at its access
// link rate, so the aggregate arrival rate at the bottleneck never exceeds
// line rate and the queue stays near-empty in steady state.
//
// PullSender/PullReceiver implement that discipline on top of the shared
// FlowCore/ReceiverCore machinery (net/flow_core.h): trimmed arrivals
// still count as delivered (the gradient decodes from heads), drops are
// still recovered by RTO, but new transmissions beyond the initial burst
// are granted one-per-PULL.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/flow_core.h"
#include "net/host.h"

namespace trimgrad::net {

struct PullConfig {
  std::size_t initial_burst = 12;  ///< first-RTT window (BDP-ish)
  SimTime rto = 500e-6;
  SimTime rto_cap = 5e-3;
  /// Give-up knobs (see TransportConfig): 0 disables each.
  std::size_t retransmit_budget = 0;
  SimTime flow_deadline = 0;
  /// Pull spacing; receivers default it to the access-link serialization
  /// time of one MTU frame when left at 0.
  SimTime pull_interval = 0.0;
  std::size_t mtu_bytes = 1500;
  double access_bandwidth_bps = 100e9;

  SimTime effective_pull_interval() const noexcept {
    return pull_interval > 0.0
               ? pull_interval
               : static_cast<double>(mtu_bytes) * 8.0 / access_bandwidth_bps;
  }
};

/// Host-wide pull pacer. NDP paces pulls at the *receiver host's* access
/// link rate across ALL of its inbound flows — per-flow pacers would let an
/// N-flow incast demand N× line rate. Receivers enqueue credits; the pacer
/// emits them FIFO, one per interval.
class PullPacer {
 public:
  PullPacer(Host& host, SimTime interval) : host_(host), interval_(interval) {}

  /// Queue one pull credit addressed to `sender` for `flow_id`.
  void request(std::uint32_t flow_id, NodeId sender);

  std::size_t emitted() const noexcept { return emitted_; }

 private:
  void fire();

  Host& host_;
  SimTime interval_;
  std::deque<std::pair<std::uint32_t, NodeId>> queue_;
  bool armed_ = false;
  std::size_t emitted_ = 0;
};

class PullSender : public FlowEndpoint {
 public:
  PullSender(Host& host, NodeId dst, std::uint32_t flow_id, PullConfig cfg);
  ~PullSender() override;

  /// `on_complete` fires exactly once: on full acknowledgement or on
  /// failure (stats().failed).
  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete);

  /// Give up on the in-flight message now. No-op when not active.
  void abort();

  void on_frame(Frame frame) override;

  const FlowStats& stats() const noexcept { return core_.stats(); }
  bool active() const noexcept { return core_.active(); }
  /// Current backed-off RTO (tests pin the rto_cap ceiling through this).
  SimTime current_rto() const noexcept { return core_.current_rto(); }

 private:
  Host& host_;
  std::uint32_t flow_id_;
  PullConfig cfg_;
  FlowCore core_;
};

class PullReceiver : public FlowEndpoint {
 public:
  /// `on_complete` fires once, when the last expected packet is delivered —
  /// symmetric with Receiver, so chaos tests can detect flow completion
  /// uniformly across transports. `pacer` may be shared by every receiver
  /// on the host (the NDP model); nullptr gives this flow a private pacer
  /// at the configured interval.
  PullReceiver(Host& host, NodeId peer, std::uint32_t flow_id,
               std::size_t expected_packets, PullConfig cfg,
               std::function<void(const Frame&)> on_data = {},
               std::function<void(const ReceiverStats&)> on_complete = {},
               PullPacer* pacer = nullptr);
  ~PullReceiver() override;

  void on_frame(Frame frame) override;

  const ReceiverStats& stats() const noexcept { return core_.stats(); }
  bool complete() const noexcept { return core_.complete(); }

 private:
  void grant_pull();

  Host& host_;
  NodeId peer_;
  std::uint32_t flow_id_;
  PullConfig cfg_;
  ReceiverCore core_;
  std::size_t granted_ = 0;  ///< pull credits issued to a pacer
  PullPacer* pacer_ = nullptr;
  std::unique_ptr<PullPacer> own_pacer_;
};

/// Convenience wiring mirroring ManagedFlow for the pull transport.
class PullFlow {
 public:
  PullFlow(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
           PullConfig cfg, std::size_t n_packets,
           std::function<void(const Frame&)> on_data = {},
           PullPacer* pacer = nullptr);

  void start_at(SimTime when, std::vector<SendItem> items,
                std::function<void(const FlowStats&)> on_complete = {});

  const FlowStats& stats() const noexcept { return sender_->stats(); }
  const ReceiverStats& receiver_stats() const noexcept {
    return receiver_->stats();
  }
  bool done() const noexcept { return done_; }

 private:
  Simulator& sim_;
  std::unique_ptr<PullSender> sender_;
  std::unique_ptr<PullReceiver> receiver_;
  bool done_ = false;
};

}  // namespace trimgrad::net
