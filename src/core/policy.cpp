#include "core/policy.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "core/codec_registry.h"

namespace trimgrad::core {

namespace {

double rate(std::uint64_t part, std::uint64_t whole) noexcept {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

struct ByteReader {
  std::span<const std::uint8_t> data;

  std::uint64_t u64() {
    if (data.size() < 8)
      throw std::runtime_error("NetFeedback blob truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data[i]} << (8 * i);
    data = data.subspan(8);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

/// Validate that `name` is a registered packet-train codec (training runs
/// cannot select "eden"/"multilevel"); throws listing registered names.
void require_packet_train(const std::string& name) {
  const CodecInfo& info = CodecRegistry::global().at(name);
  if (!info.packet_train) {
    throw std::invalid_argument("policy codec '" + name +
                                "' does not encode packet trains");
  }
}

unsigned clamp_q(unsigned q) noexcept {
  return std::clamp(q, 1u, 31u);
}

// ---- fixed --------------------------------------------------------------

class FixedPolicy final : public CompressionPolicy {
 public:
  explicit FixedPolicy(const PolicyConfig& cfg)
      : decision_{cfg.codec, clamp_q(cfg.q_bits)} {
    require_packet_train(decision_.codec);
  }

  const char* name() const noexcept override { return "fixed"; }
  PolicyDecision decide(std::uint64_t, const NetFeedback&) override {
    return decision_;
  }
  void restore(std::span<const std::uint8_t> blob) override {
    if (!blob.empty())
      throw std::runtime_error("fixed policy carries no state");
  }

 private:
  PolicyDecision decision_;
};

// ---- aimd-trim ----------------------------------------------------------

/// AdaptiveQController (core/adaptive.h) closed over live feedback: every
/// round observes the previous round's congestion pressure and AIMDs the
/// tail depth Q — multiplicative cut when trimming runs hot, additive
/// recovery toward full precision when the fabric has headroom. The codec
/// itself stays fixed; Q is the paper's §5.3 ahead-of-time knob.
class AimdTrimPolicy final : public CompressionPolicy {
 public:
  explicit AimdTrimPolicy(const PolicyConfig& cfg)
      : codec_(cfg.codec), controller_(cfg.aimd) {
    require_packet_train(codec_);
  }

  const char* name() const noexcept override { return "aimd-trim"; }

  PolicyDecision decide(std::uint64_t round, const NetFeedback& prev) override {
    if (round > 0) controller_.observe(prev.pressure());
    return {codec_, controller_.q()};
  }

  std::vector<std::uint8_t> state() const override {
    std::vector<std::uint8_t> out;
    put_u64(out, controller_.q());
    return out;
  }

  void restore(std::span<const std::uint8_t> blob) override {
    ByteReader r{blob};
    const std::uint64_t q = r.u64();
    if (!r.data.empty() || q < 1 || q > 31)
      throw std::runtime_error("aimd-trim policy state malformed");
    // Re-seat the controller at the checkpointed Q; the AIMD rules are
    // memoryless beyond it.
    AdaptiveQConfig cfg = controller_.config();
    cfg.initial_q = static_cast<unsigned>(q);
    controller_ = AdaptiveQController(cfg);
  }

 private:
  std::string codec_;
  AdaptiveQController controller_;
};

// ---- schedule -----------------------------------------------------------

/// Scripted switches: ';'-separated "round:codec@q" entries, sorted by
/// round at parse time; decide() applies the last entry at or before the
/// round and the base codec/Q before the first entry. Stateless.
class SchedulePolicy final : public CompressionPolicy {
 public:
  explicit SchedulePolicy(const PolicyConfig& cfg)
      : base_{cfg.codec, clamp_q(cfg.q_bits)} {
    require_packet_train(base_.codec);
    parse_script(cfg.schedule);
  }

  const char* name() const noexcept override { return "schedule"; }

  PolicyDecision decide(std::uint64_t round, const NetFeedback&) override {
    PolicyDecision d = base_;
    for (const auto& e : entries_) {
      if (e.round > round) break;
      d = e.decision;
    }
    return d;
  }

  void restore(std::span<const std::uint8_t> blob) override {
    if (!blob.empty())
      throw std::runtime_error("schedule policy carries no state");
  }

 private:
  struct Entry {
    std::uint64_t round = 0;
    PolicyDecision decision;
  };

  [[noreturn]] static void bad_entry(const std::string& entry) {
    throw std::invalid_argument(
        "policy schedule entry '" + entry +
        "' is not 'round:codec@q' (example: 8:sparsify@15)");
  }

  void parse_script(const std::string& script) {
    std::size_t i = 0;
    while (i < script.size()) {
      std::size_t j = script.find(';', i);
      if (j == std::string::npos) j = script.size();
      const std::string entry = script.substr(i, j - i);
      i = j + 1;
      if (entry.empty()) continue;
      const std::size_t colon = entry.find(':');
      const std::size_t at = entry.find('@');
      if (colon == std::string::npos || at == std::string::npos || at < colon)
        bad_entry(entry);
      Entry e;
      char* end = nullptr;
      const std::string round_s = entry.substr(0, colon);
      e.round = std::strtoull(round_s.c_str(), &end, 10);
      if (end == round_s.c_str() || *end != '\0') bad_entry(entry);
      e.decision.codec = entry.substr(colon + 1, at - colon - 1);
      const std::string q_s = entry.substr(at + 1);
      const unsigned long q = std::strtoul(q_s.c_str(), &end, 10);
      if (end == q_s.c_str() || *end != '\0' || q < 1 || q > 31)
        bad_entry(entry);
      e.decision.q_bits = static_cast<unsigned>(q);
      require_packet_train(e.decision.codec);
      entries_.push_back(std::move(e));
    }
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.round < b.round;
                     });
  }

  PolicyDecision base_;
  std::vector<Entry> entries_;
};

template <typename P>
std::unique_ptr<CompressionPolicy> make_policy(const PolicyConfig& cfg) {
  return std::make_unique<P>(cfg);
}

}  // namespace

double NetFeedback::trim_rate() const noexcept { return rate(trimmed, packets); }
double NetFeedback::drop_rate() const noexcept { return rate(dropped, packets); }
double NetFeedback::retransmit_rate() const noexcept {
  return rate(retransmits, packets);
}

double NetFeedback::pressure() const noexcept {
  const double p = trim_rate() + drop_rate() + retransmit_rate() +
                   0.5 * dctcp_alpha + 0.5 * queue_depth_frac;
  return std::min(1.0, std::max(0.0, p));
}

void append_feedback(std::vector<std::uint8_t>& out, const NetFeedback& fb) {
  put_u64(out, fb.round);
  put_u64(out, fb.packets);
  put_u64(out, fb.trimmed);
  put_u64(out, fb.dropped);
  put_u64(out, fb.retransmits);
  put_u64(out, fb.corrupt_nacks);
  put_u64(out, fb.flow_failures);
  put_u64(out, fb.wire_bytes);
  put_f64(out, fb.comm_s);
  put_f64(out, fb.dctcp_alpha);
  put_f64(out, fb.queue_depth_frac);
}

NetFeedback parse_feedback(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  NetFeedback fb;
  fb.round = r.u64();
  fb.packets = r.u64();
  fb.trimmed = r.u64();
  fb.dropped = r.u64();
  fb.retransmits = r.u64();
  fb.corrupt_nacks = r.u64();
  fb.flow_failures = r.u64();
  fb.wire_bytes = r.u64();
  fb.comm_s = r.f64();
  fb.dctcp_alpha = r.f64();
  fb.queue_depth_frac = r.f64();
  if (!r.data.empty())
    throw std::runtime_error("NetFeedback blob has trailing bytes");
  return fb;
}

std::string to_string(const PolicyDecision& d) {
  return d.codec + "@" + std::to_string(d.q_bits);
}

void CompressionPolicy::restore(std::span<const std::uint8_t> blob) {
  if (!blob.empty())
    throw std::runtime_error("policy carries no state");
}

const PolicyRegistry& PolicyRegistry::global() {
  static const PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry();
    r->add({"fixed", "one codec and tail depth for the whole run",
            &make_policy<FixedPolicy>});
    r->add({"aimd-trim",
            "AdaptiveQController: AIMD the tail depth on observed congestion "
            "pressure, targeting a small positive trim rate",
            &make_policy<AimdTrimPolicy>});
    r->add({"schedule",
            "scripted switches: ';'-separated round:codec@q entries",
            &make_policy<SchedulePolicy>});
    return r;
  }();
  return *reg;
}

const PolicyRegistry::PolicyInfo* PolicyRegistry::find(
    const std::string& name) const {
  for (const auto& p : policies_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const PolicyRegistry::PolicyInfo& PolicyRegistry::at(
    const std::string& name) const {
  if (const PolicyInfo* p = find(name)) return *p;
  std::string msg = "unknown policy '" + name + "'; registered:";
  for (const auto& n : names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& p : policies_) out.push_back(p.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<CompressionPolicy> PolicyRegistry::make(
    const PolicyConfig& cfg) const {
  return at(cfg.policy).make(cfg);
}

void PolicyRegistry::add(PolicyInfo info) {
  policies_.push_back(std::move(info));
}

}  // namespace trimgrad::core
