// Deterministic round-time model for the DDP trainer.
//
// Figures 3/4 plot accuracy against wall-clock time. Measuring live CPU
// time per cell makes the time axis depend on machine load, so sweep cells
// become incomparable. Instead the trainer charges:
//
//   round = compute_round_s                       (modeled accelerator step)
//         + encode_cost/coord × coords encoded    (calibrated once/process)
//         + simulated comm time                   (channel)
//         + decode_cost/coord × coords decoded
//
// The per-coordinate codec costs are measured once per (scheme, process) on
// a fixed-size probe and then reused for every cell, so relative overheads
// (RHT slower than scalar, baseline cheapest — the Fig. 5 shape) are real
// measurements while the time axis stays reproducible within a run.
#pragma once

#include "core/codec.h"

namespace trimgrad::ddp {

struct CodecCosts {
  double encode_per_coord_s = 0;  ///< seconds per coordinate encoded
  double decode_per_coord_s = 0;  ///< seconds per coordinate decoded
};

/// Calibrated costs for a scheme; first call per scheme measures (three
/// repetitions over a 2^16-coordinate probe, best-of), later calls hit a
/// process-wide cache.
const CodecCosts& calibrated_costs(core::Scheme scheme);

}  // namespace trimgrad::ddp
