// Sharded-simulator determinism: a partitioned fat-tree under closed-loop
// traffic (and under active fault injection) must produce bit-identical
// results whether the engine runs sequentially (K-way merge) or in parallel
// windows — and the parallel results must not depend on TRIMGRAD_THREADS.
// This is the net-layer analogue of the codec determinism suite: the digest
// covers per-flow stats bit patterns, delivery/execution counts, metrics
// counters, and the (canonically sorted) fault log.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/threadpool.h"
#include "net/fault_plane.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_pod(std::uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t hash_flow(std::uint64_t h, const FlowStats& st) {
  h = fnv_pod(h, st.start_time);
  h = fnv_pod(h, st.end_time);
  h = fnv_pod(h, st.frames_sent);
  h = fnv_pod(h, st.bytes_sent);
  h = fnv_pod(h, st.retransmits);
  h = fnv_pod(h, st.acked_full);
  h = fnv_pod(h, st.acked_trimmed);
  h = fnv_pod(h, st.completed);
  h = fnv_pod(h, st.failed);
  return h;
}

/// Counters only: gauges are last-write-wins (excluded from the parallel
/// contract) and histogram shards reduce deterministically like counters
/// but the counter set is plenty to pin the workload.
std::uint64_t hash_counters(std::uint64_t h) {
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    h = fnv1a(h, c.name.data(), c.name.size());
    h = fnv_pod(h, c.value);
  }
  return h;
}

enum class Mode { kSequential, kParallel };

struct WorkloadResult {
  std::uint64_t digest = 0;
  std::uint64_t delivered = 0;
  std::uint64_t executed = 0;
  std::size_t incast_completed = 0;
  std::size_t poisson_completed = 0;
  FaultLog fault_log;  ///< canonically sorted
};

/// Closed-loop workload on a partitioned k=4 fat-tree: an 8-to-1 incast of
/// trimmable flows crossing pods plus Poisson background over all 16 hosts.
/// Every flow is deadline/budget-limited so faulted runs always drain.
WorkloadResult run_workload(Mode mode, const FaultPlaneConfig* fault_cfg) {
  core::MetricsRegistry::global().reset_values();
  Simulator sim;
  FabricConfig fcfg;
  fcfg.edge_link = {10e9, 1e-6};
  fcfg.core_link = {10e9, 2e-6};
  fcfg.switch_queue.policy = QueuePolicy::kTrim;
  fcfg.switch_queue.capacity_bytes = 30 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const FatTree ft = build_fat_tree(sim, 4, fcfg);
  partition_fat_tree(sim, ft);
  sim.seal_partition();
  EXPECT_EQ(sim.domain_count(), ft.domain_count());
  EXPECT_DOUBLE_EQ(sim.lookahead(), 2e-6);

  FaultPlane plane{fault_cfg != nullptr ? *fault_cfg : FaultPlaneConfig{}};
  if (fault_cfg != nullptr) sim.set_fault_plane(&plane);

  const std::vector<NodeId> hosts = ft.all_hosts();
  TransportConfig tcfg;
  tcfg.retransmit_budget = 64;
  tcfg.flow_deadline = 200e-3;

  IncastPattern::Config icfg;
  icfg.packets_per_sender = 48;
  icfg.transport = tcfg;
  std::vector<NodeId> senders;
  for (std::size_t p = 1; p < 4; ++p) {
    senders.push_back(ft.pod_hosts[p][0]);
    senders.push_back(ft.pod_hosts[p][1]);
  }
  senders.push_back(ft.pod_hosts[0][2]);
  senders.push_back(ft.pod_hosts[0][3]);
  IncastPattern incast(sim, senders, hosts[0], icfg);

  PoissonTraffic::Config pcfg;
  pcfg.flows_per_sec = 2e5;
  pcfg.packets_per_flow = 8;
  pcfg.stop = 2e-3;
  pcfg.transport = tcfg;
  PoissonTraffic poisson(sim, hosts, pcfg);

  sim.set_parallel_execution(mode == Mode::kParallel);
  sim.run();

  WorkloadResult r;
  r.delivered = sim.delivered_frames();
  r.executed = sim.executed_events();
  r.incast_completed = incast.completed_count();
  r.poisson_completed = poisson.completed();
  if (fault_cfg != nullptr) r.fault_log = plane.log().sorted();

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const FlowStats& st : incast.flow_stats()) h = hash_flow(h, st);
  for (SimTime fct : poisson.fcts()) h = fnv_pod(h, fct);
  h = fnv_pod(h, r.delivered);
  h = fnv_pod(h, r.executed);
  h = fnv_pod(h, r.incast_completed);
  h = fnv_pod(h, r.poisson_completed);
  h = hash_counters(h);
  r.digest = h;
  return r;
}

class SimScaleDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { core::ThreadPool::set_global_threads(1); }
};

TEST_F(SimScaleDeterminism, ParallelMatchesSequentialAcrossThreadCounts) {
  core::ThreadPool::set_global_threads(1);
  const WorkloadResult ref = run_workload(Mode::kSequential, nullptr);
  EXPECT_GT(ref.delivered, 0u);
  EXPECT_GT(ref.executed, ref.delivered);
  EXPECT_EQ(ref.incast_completed, 8u);
  EXPECT_GT(ref.poisson_completed, 0u);
  for (std::size_t threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    core::ThreadPool::set_global_threads(threads);
    const WorkloadResult got = run_workload(Mode::kParallel, nullptr);
    EXPECT_EQ(got.digest, ref.digest);
    EXPECT_EQ(got.delivered, ref.delivered);
    EXPECT_EQ(got.executed, ref.executed);
    EXPECT_EQ(got.poisson_completed, ref.poisson_completed);
  }
}

TEST_F(SimScaleDeterminism, FaultedRunBitIdenticalAcrossModes) {
  FaultPlaneConfig fpc;
  fpc.seed = 11;
  fpc.corrupt_rate = 0.01;
  // Flap a pod-0 agg uplink (a cross-domain link) while traffic is live.
  LinkFault flap;
  flap.node = 0;  // first node created is p0-e0... resolved below
  fpc.link_faults.push_back(flap);

  // Resolve the agg node id from a throwaway build so the fault targets a
  // real agg->core port (port k/2 = first uplink).
  {
    Simulator probe;
    FabricConfig fcfg;
    const FatTree ft = build_fat_tree(probe, 4, fcfg);
    fpc.link_faults[0].node = ft.aggs[0][0];
    fpc.link_faults[0].port = 2;  // k/2 downlinks first; port 2 = uplink 0
    fpc.link_faults[0].start = 100e-6;
    fpc.link_faults[0].duration = 150e-6;
    fpc.link_faults[0].period = 500e-6;
    fpc.link_faults[0].repeats = 3;
  }

  core::ThreadPool::set_global_threads(1);
  const WorkloadResult ref = run_workload(Mode::kSequential, &fpc);
  EXPECT_GT(ref.fault_log.size(), 0u)
      << "fault plane never fired; the scenario is vacuous";
  for (std::size_t threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    core::ThreadPool::set_global_threads(threads);
    const WorkloadResult got = run_workload(Mode::kParallel, &fpc);
    EXPECT_EQ(got.digest, ref.digest);
    EXPECT_TRUE(got.fault_log == ref.fault_log)
        << "fault decisions diverged: " << got.fault_log.size() << " vs "
        << ref.fault_log.size() << " events";
  }
}

TEST(SimScalePartition, SealRejectsZeroLatencyInterDomainLink) {
  Simulator sim;
  auto& a = sim.add_node<Host>("a");
  auto& b = sim.add_node<Host>("b");
  sim.connect(a.id(), b.id(), LinkSpec{100e9, 0.0}, QueueConfig{});
  sim.set_node_domain(a.id(), 0);
  sim.set_node_domain(b.id(), 1);
  EXPECT_THROW(sim.seal_partition(), std::invalid_argument);
}

TEST(SimScalePartition, SealRejectsSparseDomainIds) {
  Simulator sim;
  auto& a = sim.add_node<Host>("a");
  auto& b = sim.add_node<Host>("b");
  sim.connect(a.id(), b.id(), LinkSpec{}, QueueConfig{});
  sim.set_node_domain(b.id(), 2);  // domain 1 unused
  EXPECT_THROW(sim.seal_partition(), std::invalid_argument);
}

TEST(SimScalePartition, SealRejectsQueuedEventsAndAdvancedClock) {
  {
    Simulator sim;
    sim.schedule(1e-6, [] {});
    EXPECT_THROW(sim.seal_partition(), std::logic_error);
  }
  {
    Simulator sim;
    sim.run_until(1e-3);
    EXPECT_THROW(sim.seal_partition(), std::logic_error);
  }
}

TEST(SimScalePartition, ParallelRequiresSealedPartition) {
  Simulator sim;
  EXPECT_THROW(sim.set_parallel_execution(true), std::logic_error);
  sim.seal_partition();
  EXPECT_NO_THROW(sim.set_parallel_execution(true));
  EXPECT_NO_THROW(sim.set_parallel_execution(false));
}

TEST(SimScalePartition, TopologyIsFrozenAfterSeal) {
  Simulator sim;
  auto& a = sim.add_node<Host>("a");
  auto& b = sim.add_node<Host>("b");
  sim.connect(a.id(), b.id(), LinkSpec{}, QueueConfig{});
  sim.seal_partition();
  EXPECT_THROW(sim.add_node<Host>("c"), std::logic_error);
  EXPECT_THROW(sim.connect(a.id(), b.id(), LinkSpec{}, QueueConfig{}),
               std::logic_error);
  EXPECT_THROW(sim.set_node_domain(a.id(), 0), std::logic_error);
  EXPECT_THROW(sim.seal_partition(), std::logic_error);
}

TEST(SimScalePartition, FrameIdsStayDisjointAcrossDomains) {
  // Domain 0 hands out the classic sequential ids (seed compatibility);
  // other domains live in disjoint tagged ranges.
  Simulator sim;
  EXPECT_EQ(sim.next_frame_id(), 1u);
  EXPECT_EQ(sim.next_frame_id(), 2u);
  FabricConfig fcfg;
  const FatTree ft = build_fat_tree(sim, 4, fcfg);
  partition_fat_tree(sim, ft);
  EXPECT_EQ(sim.next_frame_id(), 3u);  // still pre-seal, still domain 0
}

}  // namespace
}  // namespace trimgrad::net
