# Empty dependencies file for test_collective_allreduce.
# This may be replaced when dependencies are built.
