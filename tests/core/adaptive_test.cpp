// Variable-Q tails (§5.3 ahead-of-time compression) and the AIMD Q
// controller.
#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/codec.h"
#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

CodecConfig cfg_with_q(Scheme scheme, unsigned q) {
  CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = 1 << 10;
  cfg.layout.q_bits = q;
  return cfg;
}

class QSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(QSweep, UntrimmedDecodeErrorShrinksWithQ) {
  const unsigned q = GetParam();
  const auto v = gaussian_vec(4000, 1);
  for (Scheme s : {Scheme::kSign, Scheme::kRHT}) {
    TrimmableEncoder enc(cfg_with_q(s, q));
    TrimmableDecoder dec(cfg_with_q(s, q));
    const auto msg = enc.encode(v, 1, 1);
    const auto out = dec.decode(msg.packets, msg.meta);
    // Keeping the top q of 31 bits keeps the exponent once q >= 9; the
    // mantissa truncation error is then <= 2^-(q-9) relative.
    const double bound =
        q >= 31 ? 1e-10 : 2.0 * std::pow(2.0, -2.0 * (q - 9.0));
    EXPECT_LT(nmse(out.values, v), bound) << to_string(s) << " q=" << q;
  }
}

TEST_P(QSweep, PacketsShrinkWithQ) {
  const unsigned q = GetParam();
  const auto v = gaussian_vec(4000, 2);
  TrimmableEncoder full(cfg_with_q(Scheme::kRHT, 31));
  TrimmableEncoder reduced(cfg_with_q(Scheme::kRHT, q));
  const std::size_t full_bytes = full.encode(v, 1, 1).total_wire_bytes();
  const std::size_t red_bytes = reduced.encode(v, 1, 1).total_wire_bytes();
  if (q < 31) {
    EXPECT_LT(red_bytes, full_bytes);
    // Payload scales roughly with (1+q)/32.
    const double expected = (1.0 + q) / 32.0;
    EXPECT_NEAR(static_cast<double>(red_bytes) / full_bytes, expected,
                expected * 0.25 + 0.05);
  } else {
    EXPECT_EQ(red_bytes, full_bytes);
  }
}

TEST_P(QSweep, TrimmingStillWorksAtReducedQ) {
  const unsigned q = GetParam();
  const auto v = gaussian_vec(8192, 3);
  TrimmableEncoder enc(cfg_with_q(Scheme::kRHT, q));
  TrimmableDecoder dec(cfg_with_q(Scheme::kRHT, q));
  auto msg = enc.encode(v, 1, 1);
  for (auto& p : msg.packets) p.trim();
  const auto out = dec.decode(msg.packets, msg.meta);
  // Fully trimmed decode only uses heads + f: independent of Q.
  EXPECT_NEAR(nmse(out.values, v), 3.14159265 / 2 - 1, 0.06) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(TailWidths, QSweep,
                         ::testing::Values(15u, 23u, 31u));

TEST(QSweepScalar, SqSdWorkAtReducedQ) {
  const auto v = gaussian_vec(4000, 4);
  for (Scheme s : {Scheme::kSQ, Scheme::kSD}) {
    TrimmableEncoder enc(cfg_with_q(s, 15));
    TrimmableDecoder dec(cfg_with_q(s, 15));
    const auto msg = enc.encode(v, 1, 1);
    const auto out = dec.decode(msg.packets, msg.meta);
    // sign(1) + exp(8) + ~5 mantissa bits: ~3 % worst-case relative error.
    EXPECT_LT(nmse(out.values, v), 1e-3) << to_string(s);
  }
}

TEST(AdaptiveQ, StartsAtInitial) {
  AdaptiveQController ctl;
  EXPECT_EQ(ctl.q(), 31u);
}

TEST(AdaptiveQ, HeavyCongestionCutsQMultiplicatively) {
  AdaptiveQController ctl;
  ctl.observe(0.5);  // way over the 5 % target
  EXPECT_EQ(ctl.q(), 15u);
  ctl.observe(0.5);
  EXPECT_EQ(ctl.q(), 7u);
  ctl.observe(0.9);
  EXPECT_EQ(ctl.q(), 7u);  // floor
}

TEST(AdaptiveQ, MildCongestionDecreasesGently) {
  AdaptiveQController ctl;
  ctl.observe(0.08);  // between target and 3x target
  EXPECT_EQ(ctl.q(), 29u);
}

TEST(AdaptiveQ, QuietNetworkRecoversAdditively) {
  AdaptiveQConfig cfg;
  cfg.initial_q = 7;
  AdaptiveQController ctl(cfg);
  for (int i = 0; i < 20; ++i) ctl.observe(0.0);
  EXPECT_EQ(ctl.q(), 31u);  // capped at max
}

TEST(AdaptiveQ, TargetsPositiveTrimRateNotZero) {
  // §5.3: under-compress and over-send. A trim rate at exactly the target
  // must NOT reduce Q — the controller tolerates (seeks) residual trimming.
  AdaptiveQConfig cfg;
  cfg.initial_q = 21;
  AdaptiveQController ctl(cfg);
  ctl.observe(cfg.target_trim);
  EXPECT_GE(ctl.q(), 21u);
}

TEST(AdaptiveQ, ConvergesUnderStaticCongestionModel) {
  // Closed loop against a toy bottleneck: trim fraction = excess share of
  // offered bytes. The controller should settle near the Q whose offered
  // load sits just above capacity (small positive trim).
  AdaptiveQController ctl;
  const double capacity = 0.55;  // in units of full-precision message size
  double last_trim = 0;
  for (int round = 0; round < 60; ++round) {
    const double offered = (1.0 + ctl.q()) / 32.0;
    last_trim = offered > capacity ? (offered - capacity) / offered : 0.0;
    ctl.observe(last_trim);
  }
  const double offered = (1.0 + ctl.q()) / 32.0;
  EXPECT_GT(offered, capacity * 0.8);  // saturates the link
  EXPECT_LT(last_trim, 0.3);           // without drowning it
}

}  // namespace
}  // namespace trimgrad::core
