// SGD with momentum + StepLR — the paper's §4.1 training setup
// ("SGD with momentum 0.9, initial learning rate 1e-3 with StepLR").
#pragma once

#include <span>
#include <vector>

#include "ml/layers.h"

namespace trimgrad::ml {

struct SgdConfig {
  float lr = 1e-3f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// StepLR: multiply lr by `gamma` every `step_epochs` epochs.
  std::size_t step_epochs = 30;
  float gamma = 0.5f;
};

class SgdMomentum {
 public:
  explicit SgdMomentum(SgdConfig cfg) : cfg_(cfg), lr_(cfg.lr) {}

  /// Apply one update using the gradients currently in the param views.
  void step(const std::vector<ParamView>& params);

  /// Apply one update from a flat (e.g. all-reduced) gradient bucket.
  void step_flat(const std::vector<ParamView>& params,
                 std::span<const float> flat_grads);

  /// Advance the StepLR schedule; call once per epoch.
  void end_epoch();

  float lr() const noexcept { return lr_; }
  std::size_t epoch() const noexcept { return epoch_; }

  /// Checkpoint access (ddp/checkpoint.h): the full mutable state beyond
  /// the config — momentum buffers, current lr, and the StepLR position.
  const std::vector<std::vector<float>>& velocity() const noexcept {
    return velocity_;
  }
  void restore(float lr, std::size_t epoch,
               std::vector<std::vector<float>> velocity);

 private:
  void update_buffer(std::vector<float>& values, std::span<const float> grads,
                     std::vector<float>& velocity);

  SgdConfig cfg_;
  float lr_;
  std::size_t epoch_ = 0;
  std::vector<std::vector<float>> velocity_;  ///< lazily sized per buffer
};

}  // namespace trimgrad::ml
