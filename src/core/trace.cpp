#include "core/trace.h"

#include <cstdio>
#include <fstream>

namespace trimgrad::core {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

void TraceLog::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool TraceLog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TraceLog::set_time_source(TimeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  time_fn_ = std::move(fn);
}

void TraceLog::set_max_events(std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  max_events_ = max_events;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tick_ = 0;
}

double TraceLog::now_seconds() {
  std::lock_guard<std::mutex> lock(mu_);
  if (time_fn_) return time_fn_();
  // Logical clock: one microsecond per query, so un-simulated programs
  // still get strictly ordered, reproducible timestamps.
  return static_cast<double>(tick_++) * 1e-6;
}

void TraceLog::instant(std::string_view name, std::string_view cat,
                       std::uint32_t tid,
                       std::vector<std::pair<std::string, double>> args) {
  const double now = now_seconds();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (max_events_ != 0 && events_.size() >= max_events_) return;
  Event& ev = events_.emplace_back();
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'i';
  ev.ts_us = now * 1e6;
  ev.tid = tid;
  ev.args = std::move(args);
}

void TraceLog::complete(std::string_view name, std::string_view cat,
                        double start_s, double dur_s, std::uint32_t tid,
                        std::vector<std::pair<std::string, double>> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (max_events_ != 0 && events_.size() >= max_events_) return;
  Event& ev = events_.emplace_back();
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = 'X';
  ev.ts_us = start_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  ev.tid = tid;
  ev.args = std::move(args);
}

TraceLog::Span::Span(TraceLog* log, std::string_view name, std::string_view cat)
    : log_(log), name_(name), cat_(cat), start_s_(log->now_seconds()) {}

TraceLog::Span::Span(Span&& other) noexcept
    : log_(other.log_),
      name_(std::move(other.name_)),
      cat_(std::move(other.cat_)),
      start_s_(other.start_s_),
      args_(std::move(other.args_)) {
  other.log_ = nullptr;
}

TraceLog::Span::~Span() {
  if (log_ == nullptr) return;
  const double end_s = log_->now_seconds();
  log_->complete(name_, cat_, start_s_, end_s - start_s_, /*tid=*/0,
                 std::move(args_));
}

void TraceLog::Span::arg(std::string_view key, double value) {
  args_.emplace_back(std::string(key), value);
}

TraceLog::Span TraceLog::span(std::string_view name, std::string_view cat) {
  return Span(this, name, cat);
}

std::size_t TraceLog::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceLog::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.cat);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"ts\":";
    append_number(out, ev.ts_us, "%.6f");
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      append_number(out, ev.dur_us, "%.6f");
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        append_escaped(out, key);
        out += "\":";
        append_number(out, value, "%.9g");
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceLog::write_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string json = to_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

TraceLog& TraceLog::global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

}  // namespace trimgrad::core
