#include "net/traffic.h"

#include <cassert>
#include <cmath>

#include "core/stats.h"

namespace trimgrad::net {

std::vector<SendItem> make_bulk_items(std::size_t n_packets,
                                      std::size_t mtu_bytes,
                                      std::size_t trim_size) {
  std::vector<SendItem> items(n_packets);
  for (auto& it : items) {
    it.size_bytes = mtu_bytes;
    it.trim_size_bytes = trim_size;
  }
  return items;
}

ManagedFlow::ManagedFlow(Simulator& sim, NodeId src, NodeId dst,
                         std::uint32_t flow_id, TransportConfig cfg,
                         std::size_t n_packets,
                         std::function<void(const Frame&)> on_data)
    : sim_(sim), src_(src) {
  auto& src_host = static_cast<Host&>(sim.node(src));
  auto& dst_host = static_cast<Host&>(sim.node(dst));
  sender_ = std::make_unique<Sender>(src_host, dst, flow_id, cfg);
  receiver_ = std::make_unique<Receiver>(dst_host, src, flow_id, n_packets,
                                         cfg, std::move(on_data));
}

void ManagedFlow::start_at(SimTime when, std::vector<SendItem> items,
                           std::function<void(const FlowStats&)> on_complete) {
  assert(when >= sim_.now());
  // Anchored at the source host so the start event (and everything the
  // sender schedules from it) runs in the source's domain.
  sim_.schedule_at(src_, when - sim_.now(),
                   [this, items = std::move(items),
                    cb = std::move(on_complete)]() mutable {
    sender_->send_message(std::move(items), [this, cb = std::move(cb)](
                                                const FlowStats& st) {
      done_ = true;
      if (cb) cb(st);
    });
  });
}

IncastPattern::IncastPattern(Simulator& sim, std::vector<NodeId> senders,
                             NodeId receiver, const Config& cfg) {
  std::uint32_t flow_id = cfg.base_flow_id;
  for (NodeId src : senders) {
    auto flow = std::make_unique<ManagedFlow>(sim, src, receiver, flow_id++,
                                              cfg.transport,
                                              cfg.packets_per_sender);
    flow->start_at(cfg.start, make_bulk_items(cfg.packets_per_sender,
                                              cfg.mtu_bytes, cfg.trim_size));
    flows_.push_back(std::move(flow));
  }
}

std::vector<FlowStats> IncastPattern::flow_stats() const {
  std::vector<FlowStats> out;
  out.reserve(flows_.size());
  for (const auto& f : flows_) out.push_back(f->stats());
  return out;
}

SimTime IncastPattern::max_fct() const {
  SimTime worst = 0;
  for (const auto& f : flows_) {
    if (f->stats().completed && f->stats().fct() > worst)
      worst = f->stats().fct();
  }
  return worst;
}

double IncastPattern::mean_fct() const {
  core::RunningStats rs;
  for (const auto& f : flows_) {
    if (f->stats().completed) rs.add(f->stats().fct());
  }
  return rs.mean();
}

std::size_t IncastPattern::completed_count() const {
  std::size_t n = 0;
  for (const auto& f : flows_) n += f->done() ? 1 : 0;
  return n;
}

PoissonTraffic::PoissonTraffic(Simulator& sim, std::vector<NodeId> hosts,
                               const Config& cfg)
    : sim_(sim), hosts_(std::move(hosts)), cfg_(cfg) {
  assert(hosts_.size() >= 2);
  // Draw the whole arrival process up front — same draw order as the old
  // launch-as-you-go generator (gap, src, dst, gap, ...), so a given seed
  // produces the identical schedule. Every flow's endpoints exist before
  // the run starts; the only mid-run work is the per-flow start event,
  // anchored at its source host.
  core::Xoshiro256 rng(cfg_.seed);
  std::uint32_t next_flow_id = cfg_.base_flow_id;
  SimTime t = std::max(cfg_.start, sim_.now());
  while (t < cfg_.stop) {
    const double gap = -std::log(1.0 - rng.uniform()) / cfg_.flows_per_sec;
    t += gap;
    if (t >= cfg_.stop) break;
    const std::size_t a = rng.below(hosts_.size());
    std::size_t b = rng.below(hosts_.size() - 1);
    if (b >= a) ++b;  // distinct src/dst, uniform over ordered pairs
    auto flow = std::make_unique<ManagedFlow>(sim_, hosts_[a], hosts_[b],
                                              next_flow_id++, cfg_.transport,
                                              cfg_.packets_per_flow);
    flow->start_at(t, make_bulk_items(cfg_.packets_per_flow, cfg_.mtu_bytes,
                                      cfg_.trim_size));
    flows_.push_back(std::move(flow));
  }
}

std::size_t PoissonTraffic::completed() const {
  std::size_t n = 0;
  for (const auto& f : flows_) n += f->done() ? 1 : 0;
  return n;
}

std::vector<SimTime> PoissonTraffic::fcts() const {
  std::vector<SimTime> out;
  for (const auto& f : flows_) {
    if (f->done()) out.push_back(f->stats().fct());
  }
  return out;
}

}  // namespace trimgrad::net
