#include "core/bitpack.h"

#include <bit>
#include <cassert>

namespace trimgrad::core {

void BitWriter::put(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  // Bulk fast path: a byte-aligned write of a whole number of bytes emits
  // them directly, MSB-first. This covers the head/tail packetization hot
  // cases (32-bit baseline floats, 24-bit multilevel low regions, 8/16-bit
  // tails) without touching the bit-shuffling loop below.
  if (bit_count_ % 8 == 0 && width % 8 == 0) {
    for (unsigned shift = width; shift != 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(value >> (shift - 8)));
    }
    bit_count_ += width;
    return;
  }
  // Write bits from the most significant end of the value.
  unsigned remaining = width;
  while (remaining > 0) {
    const unsigned bit_in_byte = bit_count_ % 8;
    if (bit_in_byte == 0) buf_.push_back(0);
    const unsigned space = 8 - bit_in_byte;
    const unsigned take = remaining < space ? remaining : space;
    const std::uint64_t chunk = (value >> (remaining - take)) &
                                ((std::uint64_t{1} << take) - 1);
    buf_.back() |= static_cast<std::uint8_t>(chunk << (space - take));
    bit_count_ += take;
    remaining -= take;
  }
}

std::vector<std::uint8_t> BitWriter::finish() && {
  return std::move(buf_);
}

std::uint64_t BitReader::get(unsigned width) noexcept {
  assert(width >= 1 && width <= 64);
  assert(bits_remaining() >= width);
  // Bulk fast path mirroring BitWriter::put: byte-aligned whole-byte reads.
  if (cursor_ % 8 == 0 && width % 8 == 0) {
    std::uint64_t out = 0;
    std::size_t byte_idx = cursor_ / 8;
    for (unsigned got = 0; got < width; got += 8) {
      out = (out << 8) | data_[byte_idx++];
    }
    cursor_ += width;
    return out;
  }
  std::uint64_t out = 0;
  unsigned remaining = width;
  while (remaining > 0) {
    const std::size_t byte_idx = cursor_ / 8;
    const unsigned bit_in_byte = cursor_ % 8;
    const unsigned avail = 8 - bit_in_byte;
    const unsigned take = remaining < avail ? remaining : avail;
    const std::uint8_t byte = data_[byte_idx];
    const std::uint64_t chunk =
        (byte >> (avail - take)) & ((std::uint64_t{1} << take) - 1);
    out = (out << take) | chunk;
    cursor_ += take;
    remaining -= take;
  }
  return out;
}

std::uint32_t float_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

float bits_float(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}

}  // namespace trimgrad::core
