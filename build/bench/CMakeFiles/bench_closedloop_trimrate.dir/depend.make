# Empty dependencies file for bench_closedloop_trimrate.
# This may be replaced when dependencies are built.
