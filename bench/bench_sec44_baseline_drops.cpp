// Experiment T3 (DESIGN.md): §4.4's in-text claim, on the real simulated
// fabric — "the baseline cannot tolerate much congestion: 0.15-0.25 %
// drops without disproportional slowdown; 1-2 % drops => 5-10x slower".
//
// We sweep bottleneck queue depth on a dumbbell incast so the *fabric*
// produces the loss, then report measured drop rate vs flow-completion-time
// inflation for (a) the reliable baseline on drop-tail switches and (b) the
// trim-aware transport on trimming switches at the same queue depths.
#include <cstdio>
#include <vector>

#include "net/topology.h"
#include "net/traffic.h"

using namespace trimgrad::net;

namespace {

struct RunResult {
  double drop_pct;
  double trim_pct;
  double max_fct_us;
  unsigned long long retx;
};

RunResult run(QueuePolicy policy, std::size_t queue_kb, std::size_t senders,
              std::size_t packets) {
  Simulator sim;
  FabricConfig cfg;
  cfg.edge_link = {100e9, 1e-6};
  cfg.core_link = {100e9, 1e-6};
  cfg.switch_queue.policy = policy;
  cfg.switch_queue.capacity_bytes = queue_kb * 1024;
  cfg.switch_queue.header_capacity_bytes = 32 * 1024;
  const Dumbbell topo = build_dumbbell(sim, senders, 1, cfg);

  IncastPattern::Config icfg;
  icfg.packets_per_sender = packets;
  const bool trimming = policy == QueuePolicy::kTrim;
  icfg.trim_size = trimming ? 88 : 0;
  icfg.transport =
      trimming ? TransportConfig::trim_aware() : TransportConfig::reliable();
  IncastPattern incast(sim, topo.left_hosts, topo.right_hosts[0], icfg);
  sim.run();

  RunResult out{};
  std::uint64_t enq = 0, dropped = 0, trimmed = 0;
  for (NodeId sw : {topo.left_switch, topo.right_switch}) {
    auto& node = sim.node(sw);
    for (std::size_t p = 0; p < node.port_count(); ++p) {
      const auto& c = node.port(p).queue().counters();
      enq += c.enqueued;
      dropped += c.dropped;
      trimmed += c.trimmed;
    }
  }
  const double offered = static_cast<double>(enq + dropped);
  out.drop_pct = offered > 0 ? 100.0 * dropped / offered : 0;
  out.trim_pct = offered > 0 ? 100.0 * trimmed / offered : 0;
  out.max_fct_us = incast.max_fct() * 1e6;
  for (const auto& st : incast.flow_stats()) out.retx += st.retransmits;
  return out;
}

}  // namespace

int main() {
  const std::size_t senders = 8;
  const std::size_t packets = 256;

  std::printf("# Sec 4.4 on the simulated fabric: 8-to-1 incast, 256 MTU "
              "packets per sender, queue depth sweep\n\n");
  std::printf("=== reliable baseline on drop-tail switches ===\n");
  std::printf("%9s %8s %12s %10s %9s\n", "queue_KB", "drop%", "max_fct_us",
              "slowdown", "retx");
  double base_fct = 0;
  for (std::size_t kb : {2048u, 512u, 256u, 128u, 64u, 32u, 16u}) {
    const RunResult r = run(QueuePolicy::kDropTail, kb, senders, packets);
    if (base_fct == 0) base_fct = r.max_fct_us;
    std::printf("%9zu %7.2f%% %12.1f %9.2fx %9llu\n", kb, r.drop_pct,
                r.max_fct_us, r.max_fct_us / base_fct, r.retx);
  }

  std::printf("\n=== trim-aware transport on trimming switches ===\n");
  std::printf("%9s %8s %12s %10s %9s\n", "queue_KB", "trim%", "max_fct_us",
              "slowdown", "retx");
  double trim_base_fct = 0;
  for (std::size_t kb : {2048u, 512u, 256u, 128u, 64u, 32u, 16u}) {
    const RunResult r = run(QueuePolicy::kTrim, kb, senders, packets);
    if (trim_base_fct == 0) trim_base_fct = r.max_fct_us;
    std::printf("%9zu %7.2f%% %12.1f %9.2fx %9llu\n", kb, r.trim_pct,
                r.max_fct_us, r.max_fct_us / trim_base_fct, r.retx);
  }
  std::printf("\n# (expected shape: drop-tail FCT inflates steeply once "
              "drops exceed ~0.25%%; trimming stays near 1x with zero "
              "retransmissions)\n");
  return 0;
}
