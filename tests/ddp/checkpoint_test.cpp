// Checkpoint blob discipline: save/load round-trips are exact, blobs are
// bit-identical across thread counts, and a damaged blob (truncated or
// bit-flipped) fails its CRC with a clear error instead of loading garbage.
#include "ddp/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "collective/inject_channel.h"
#include "core/threadpool.h"
#include "core/wire.h"
#include "ddp/trainer.h"

namespace trimgrad::ddp {
namespace {

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.rank = 2;
  ck.epoch = 7;
  ck.round = 91;
  ck.view_version = 3;
  ck.params = {1.5f, -2.25f, 0.0f, 3e-7f, -1e8f};
  ck.lr = 0.0125f;
  ck.opt_epoch = 7;
  ck.velocity = {{0.5f, -0.5f}, {}, {1e-3f, 2e-3f, 3e-3f}};
  ck.residual = {0.25f, -0.125f};
  ck.augment_rng = {0x1234, 0x5678, 0x9abc, 0xdef0};
  ck.policy_state = {0x01, 0x02, 0x03, 0xff, 0x00, 0x7f};
  return ck;
}

/// Rewrite a (format v2, empty policy_state) blob as the byte-exact v1 blob
/// the previous release would have written: version field 1, no trailing
/// policy_state length, CRC recomputed over the shortened body.
std::vector<std::uint8_t> as_v1_blob(std::vector<std::uint8_t> blob) {
  blob[4] = 1;                                   // version field, LE
  blob.erase(blob.end() - 12, blob.end());       // u64 length(0) + old CRC
  const std::uint32_t crc = core::crc32c({blob.data(), blob.size()});
  for (int i = 0; i < 4; ++i)
    blob.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  return blob;
}

TEST(Checkpoint, ToBytesFromBytesRoundTripsExactly) {
  const Checkpoint ck = sample_checkpoint();
  const auto blob = ck.to_bytes();
  const Checkpoint back = Checkpoint::from_bytes(blob);
  EXPECT_EQ(ck, back);
}

TEST(Checkpoint, SaveLoadSaveIsByteIdentical) {
  const Checkpoint ck = sample_checkpoint();
  std::stringstream first;
  ck.save(first);
  std::stringstream stream(first.str());
  const Checkpoint loaded = Checkpoint::load(stream);
  EXPECT_EQ(ck, loaded);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Checkpoint, EmptySectionsRoundTrip) {
  Checkpoint ck;  // all defaults: no params, no velocity, no residual
  const Checkpoint back = Checkpoint::from_bytes(ck.to_bytes());
  EXPECT_EQ(ck, back);
}

TEST(Checkpoint, VersionOneBlobStillParses) {
  // Blobs written before the control plane existed (format v1) must load
  // with an empty policy_state, not fail on the missing section.
  Checkpoint ck = sample_checkpoint();
  ck.policy_state.clear();
  const auto v1 = as_v1_blob(ck.to_bytes());
  const Checkpoint back = Checkpoint::from_bytes(v1);
  EXPECT_EQ(ck, back);
  EXPECT_TRUE(back.policy_state.empty());
}

TEST(Checkpoint, FutureVersionIsRejectedByNumber) {
  auto blob = sample_checkpoint().to_bytes();
  blob[4] = static_cast<std::uint8_t>(Checkpoint::kFormatVersion + 1);
  const std::uint32_t crc =
      core::crc32c({blob.data(), blob.size() - 4});
  for (int i = 0; i < 4; ++i)
    blob[blob.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  try {
    Checkpoint::from_bytes(blob);
    FAIL() << "future-version blob parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, TruncationAtEveryPointFailsWithClearError) {
  const auto blob = sample_checkpoint().to_bytes();
  ASSERT_GT(blob.size(), 16u);
  for (std::size_t keep = 0; keep < blob.size(); ++keep) {
    try {
      Checkpoint::from_bytes(std::span(blob.data(), keep));
      FAIL() << "truncation to " << keep << " bytes parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("Checkpoint"), std::string::npos)
          << "error at keep=" << keep << " names the format: " << e.what();
    }
  }
}

TEST(Checkpoint, EveryBitFlipFailsVerification) {
  const auto blob = sample_checkpoint().to_bytes();
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    auto bad = blob;
    bad[byte] ^= 0x40;
    EXPECT_THROW(Checkpoint::from_bytes(bad), std::runtime_error)
        << "flip at byte " << byte << " loaded anyway";
  }
}

TEST(Checkpoint, MidPayloadFlipReportsCrcMismatch) {
  const auto blob = sample_checkpoint().to_bytes();
  auto bad = blob;
  bad[blob.size() / 2] ^= 0x01;
  try {
    Checkpoint::from_bytes(bad);
    FAIL() << "damaged blob parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, BadMagicIsNamedNotCrc) {
  auto blob = sample_checkpoint().to_bytes();
  blob[0] ^= 0xff;
  try {
    Checkpoint::from_bytes(blob);
    FAIL() << "foreign blob parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

// --- thread-count bit-identity over real trainer state -------------------

std::vector<std::uint8_t> train_and_checkpoint(std::size_t threads) {
  core::ThreadPool::set_global_threads(threads);
  collective::InjectChannel::Config ccfg;
  ccfg.world = 4;
  ccfg.injector.trim_rate = 0.3;
  collective::InjectChannel channel(ccfg);

  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 8;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  dcfg.proto_grid = 3;
  ml::SynthCifar data(dcfg);

  TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 32;
  tcfg.epochs = 2;
  tcfg.eval_every = 0;
  tcfg.sgd.lr = 0.05f;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = 1 << 10;
  tcfg.error_feedback = true;  // residual must serialize identically too
  DdpTrainer trainer(data, channel, tcfg, [] {
    ml::ModelConfig mcfg;
    mcfg.classes = 10;
    mcfg.height = mcfg.width = 8;
    return ml::make_mlp(mcfg, 48);
  });
  trainer.run_epoch(0);
  trainer.run_epoch(1);
  return trainer.make_checkpoint(/*rank=*/1, /*epoch=*/1, /*round=*/9)
      .to_bytes();
}

TEST(Checkpoint, BlobIsBitIdenticalAcrossThreadCounts) {
  const auto ref = train_and_checkpoint(1);
  ASSERT_FALSE(ref.empty());
  for (const std::size_t threads : {2, 8}) {
    EXPECT_EQ(ref, train_and_checkpoint(threads))
        << "checkpoint bytes differ at " << threads << " threads";
  }
  core::ThreadPool::set_global_threads(1);
  // And the captured state survives the byte round-trip.
  const Checkpoint ck = Checkpoint::from_bytes(ref);
  EXPECT_EQ(ck.rank, 1);
  EXPECT_EQ(ck.epoch, 1u);
  EXPECT_FALSE(ck.params.empty());
  EXPECT_FALSE(ck.residual.empty()) << "error feedback was on";
}

}  // namespace
}  // namespace trimgrad::ddp
