// A/B bit-identity tests for the SIMD kernel dispatch layer (core/simd.h).
//
// Every kernel is run through each ISA the binary+CPU can execute (scalar
// always; AVX2/NEON when available) on the same inputs, and the outputs are
// compared with memcmp — the determinism contract says vector and scalar
// paths are *bit-identical*, not merely close. On machines without vector
// units the A/B collapses to scalar-vs-scalar and the tests pass trivially;
// CI's native-SIMD leg runs the real comparison.
#include "core/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/codec.h"
#include "core/eden.h"
#include "core/prng.h"
#include "core/wire.h"

namespace trimgrad::core {
namespace {

/// Restore the process-wide ISA on scope exit so a failing test doesn't
/// leak a forced-scalar setting into later tests.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }

 private:
  simd::Isa saved_;
};

/// All ISAs the current binary+CPU can actually execute.
std::vector<simd::Isa> runnable_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  const simd::Isa best = simd::set_isa(simd::compiled_isa());
  if (best != simd::Isa::kScalar) isas.push_back(best);
  return isas;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

template <typename T>
void expect_bytes_eq(const std::vector<T>& a, const std::vector<T>& b,
                     const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
      << what << ": outputs differ bitwise";
}

TEST(SimdDispatch, ForcedScalarSticksAndClamps) {
  IsaGuard guard;
  EXPECT_EQ(simd::set_isa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  // Requests above what the binary/CPU supports clamp instead of failing.
  const simd::Isa granted = simd::set_isa(simd::Isa::kAvx2);
  EXPECT_LE(static_cast<int>(granted),
            static_cast<int>(simd::compiled_isa()));
  EXPECT_EQ(simd::active_isa(), granted);
  EXPECT_STRNE(simd::to_string(granted), "");
}

TEST(SimdFwht, BitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                        std::size_t{16}, std::size_t{64}, std::size_t{256},
                        std::size_t{4096}}) {
    const auto input = random_vec(n, 0x5eed + n);
    std::vector<std::vector<float>> outs;
    for (simd::Isa isa : runnable_isas()) {
      simd::set_isa(isa);
      auto v = input;
      simd::fwht(v.data(), v.size());
      outs.push_back(std::move(v));
    }
    for (std::size_t i = 1; i < outs.size(); ++i) {
      expect_bytes_eq(outs[0], outs[i], "fwht");
    }
  }
}

TEST(SimdFwht, OrthonormalBitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{32},
                        std::size_t{1024}, std::size_t{32768}}) {
    const auto input = random_vec(n, 0xfade + n);
    std::vector<std::vector<float>> outs;
    for (simd::Isa isa : runnable_isas()) {
      simd::set_isa(isa);
      auto v = input;
      simd::fwht_orthonormal(v.data(), v.size());
      outs.push_back(std::move(v));
    }
    for (std::size_t i = 1; i < outs.size(); ++i) {
      expect_bytes_eq(outs[0], outs[i], "fwht_orthonormal");
    }
  }
}

TEST(SimdSplitJoin, BitIdenticalAcrossIsasAllTailLengths) {
  IsaGuard guard;
  // Every length 1..33 exercises the vector body plus all tail remainders.
  for (std::size_t n = 1; n <= 33; ++n) {
    auto input = random_vec(n, 0xab1e + n);
    if (n > 2) input[1] = 0.0f;
    if (n > 3) input[2] = -0.0f;  // signed zero: head must follow the sign bit
    std::vector<std::uint8_t> trimmed(n);
    for (std::size_t i = 0; i < n; ++i) trimmed[i] = (i % 3 == 0) ? 1 : 0;

    std::vector<std::vector<std::uint8_t>> heads_by_isa;
    std::vector<std::vector<std::uint32_t>> mags_by_isa;
    std::vector<std::vector<float>> joined_by_isa;
    for (simd::Isa isa : runnable_isas()) {
      simd::set_isa(isa);
      std::vector<std::uint8_t> heads(n);
      std::vector<std::uint32_t> mags(n);
      simd::split_sign_mag(input.data(), n, heads.data(), mags.data());
      std::vector<float> joined(n);
      simd::join_sign_mag(heads.data(), mags.data(), trimmed.data(), 0.75f,
                          joined.data(), n);
      heads_by_isa.push_back(std::move(heads));
      mags_by_isa.push_back(std::move(mags));
      joined_by_isa.push_back(std::move(joined));
    }
    for (std::size_t i = 1; i < heads_by_isa.size(); ++i) {
      expect_bytes_eq(heads_by_isa[0], heads_by_isa[i], "split heads");
      expect_bytes_eq(mags_by_isa[0], mags_by_isa[i], "split mags");
      expect_bytes_eq(joined_by_isa[0], joined_by_isa[i], "join");
    }
    // Untrimmed coordinates round-trip bit-exactly through split+join.
    for (std::size_t i = 0; i < n; ++i) {
      if (trimmed[i]) continue;
      EXPECT_EQ(0, std::memcmp(&joined_by_isa[0][i], &input[i], 4)) << i;
    }
  }
}

TEST(SimdEncodeSd, BitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{1000}}) {
    const auto v = random_vec(n, 0xd17e + n);
    const auto dither = random_vec(n, 0x0d17 + n);
    std::vector<std::vector<std::uint8_t>> heads_by_isa;
    std::vector<std::vector<std::uint32_t>> tails_by_isa;
    for (simd::Isa isa : runnable_isas()) {
      simd::set_isa(isa);
      std::vector<std::uint8_t> heads(n);
      std::vector<std::uint32_t> tails(n);
      simd::encode_sd(v.data(), dither.data(), n, heads.data(), tails.data());
      heads_by_isa.push_back(std::move(heads));
      tails_by_isa.push_back(std::move(tails));
    }
    for (std::size_t i = 1; i < heads_by_isa.size(); ++i) {
      expect_bytes_eq(heads_by_isa[0], heads_by_isa[i], "sd heads");
      expect_bytes_eq(tails_by_isa[0], tails_by_isa[i], "sd tails");
    }
  }
}

TEST(SimdEdenQuantize, MatchesScalarForAllCodebookSizes) {
  IsaGuard guard;
  // bits 1..5 keep n_boundaries <= 31 (vector path); 6..8 exercise the
  // large-codebook fallback inside the dispatcher.
  for (unsigned bits = 1; bits <= 8; ++bits) {
    const GaussianCodebook& cb = GaussianCodebook::get(bits);
    for (std::size_t n : {std::size_t{1}, std::size_t{9}, std::size_t{256}}) {
      const auto r = random_vec(n, 0xede0 + bits * 64 + n);
      double ss = 0.0;
      for (float x : r) ss += static_cast<double>(x) * x;
      const double rms = std::sqrt(ss / static_cast<double>(n));
      ASSERT_GT(rms, 0.0);
      std::vector<std::vector<std::uint32_t>> codes_by_isa;
      for (simd::Isa isa : runnable_isas()) {
        simd::set_isa(isa);
        std::vector<std::uint32_t> codes(n);
        simd::eden_quantize(r.data(), n, rms, cb.boundaries.data(),
                            cb.boundaries.size(), codes.data());
        codes_by_isa.push_back(std::move(codes));
      }
      for (std::size_t i = 1; i < codes_by_isa.size(); ++i) {
        expect_bytes_eq(codes_by_isa[0], codes_by_isa[i], "eden codes");
      }
      // Cross-check against the codebook's own scalar quantize().
      for (std::size_t i = 0; i < n; ++i) {
        const float norm =
            static_cast<float>(static_cast<double>(r[i]) / rms);
        EXPECT_EQ(codes_by_isa[0][i], cb.quantize(norm)) << "i=" << i;
      }
    }
  }
}

TEST(SimdEndToEnd, RhtEncoderProducesIdenticalWireBytesAcrossIsas) {
  IsaGuard guard;
  const auto grad = random_vec(5000, 0xe2e);
  CodecConfig cfg;
  cfg.scheme = Scheme::kRHT;
  std::vector<std::vector<std::uint8_t>> wire_by_isa;
  for (simd::Isa isa : runnable_isas()) {
    simd::set_isa(isa);
    TrimmableEncoder enc(cfg);
    const auto msg = enc.encode(grad, /*round=*/3, /*layer=*/1);
    std::vector<std::uint8_t> wire;
    for (const auto& pkt : msg.packets) {
      const auto bytes = serialize_packet(pkt);
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    wire_by_isa.push_back(std::move(wire));
  }
  for (std::size_t i = 1; i < wire_by_isa.size(); ++i) {
    expect_bytes_eq(wire_by_isa[0], wire_by_isa[i], "rht wire bytes");
  }
}

TEST(SimdEndToEnd, EdenMessageBitIdenticalAcrossIsas) {
  IsaGuard guard;
  const auto grad = random_vec(3000, 0xede2);
  std::vector<std::vector<float>> decoded_by_isa;
  for (simd::Isa isa : runnable_isas()) {
    simd::set_isa(isa);
    const auto msg = eden_encode_message(grad, 1, 2, 3, /*bits=*/4);
    decoded_by_isa.push_back(eden_decode_message(msg, 1, 2, 3));
  }
  for (std::size_t i = 1; i < decoded_by_isa.size(); ++i) {
    expect_bytes_eq(decoded_by_isa[0], decoded_by_isa[i], "eden decode");
  }
}

TEST(SimdCrc32c, AllImplementationsAgree) {
  IsaGuard guard;
  Xoshiro256 rng(0xc2c);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{63},
                        std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::uint32_t ref = crc32c_reference(data, 0x12345678u);
    EXPECT_EQ(crc32c_table(data, 0x12345678u), ref) << "n=" << n;
    EXPECT_EQ(crc32c_hw(data, 0x12345678u), ref) << "n=" << n;
    for (simd::Isa isa : runnable_isas()) {
      simd::set_isa(isa);
      EXPECT_EQ(crc32c(data, 0x12345678u), ref)
          << "n=" << n << " isa=" << simd::to_string(isa);
    }
  }
}

}  // namespace
}  // namespace trimgrad::core
