file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ttba.dir/bench_fig4_ttba.cpp.o"
  "CMakeFiles/bench_fig4_ttba.dir/bench_fig4_ttba.cpp.o.d"
  "bench_fig4_ttba"
  "bench_fig4_ttba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ttba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
