#include "ddp/clock_model.h"

#include <chrono>
#include <map>
#include <mutex>
#include <vector>

#include "core/prng.h"

namespace trimgrad::ddp {

namespace {
using Clock = std::chrono::steady_clock;

CodecCosts measure(core::Scheme scheme) {
  const std::size_t n = std::size_t{1} << 16;
  core::Xoshiro256 rng(1);
  std::vector<float> probe(n);
  for (auto& x : probe) x = static_cast<float>(rng.gaussian());

  core::CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = std::size_t{1} << 12;
  core::TrimmableEncoder enc(cfg);
  core::TrimmableDecoder dec(cfg);

  CodecCosts costs;
  double best_enc = 1e9, best_dec = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    auto msg = enc.encode(probe, static_cast<std::uint32_t>(rep), 1);
    const double te = std::chrono::duration<double>(Clock::now() - t0).count();
    t0 = Clock::now();
    auto out = dec.decode(msg.packets, msg.meta);
    const double td = std::chrono::duration<double>(Clock::now() - t0).count();
    best_enc = std::min(best_enc, te);
    best_dec = std::min(best_dec, td);
  }
  costs.encode_per_coord_s = best_enc / static_cast<double>(n);
  costs.decode_per_coord_s = best_dec / static_cast<double>(n);
  return costs;
}

}  // namespace

const CodecCosts& calibrated_costs(core::Scheme scheme) {
  static std::mutex mu;
  static std::map<core::Scheme, CodecCosts> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(scheme);
  if (it == cache.end()) {
    it = cache.emplace(scheme, measure(scheme)).first;
  }
  return it->second;
}

}  // namespace trimgrad::ddp
