// Experiment X2 (DESIGN.md): estimator-quality ablation behind §3.
//
// Series printed:
//  (a) decode NMSE vs trim rate for each scheme — the estimator-level
//      explanation of Figure 3's ordering (sign >> sq/sd > rht error).
//  (b) RHT row-length sweep — why the paper's 2^15 row split is safe: the
//      estimator barely cares, while smaller rows mean more parallelism.
//  (c) the §2 magnitude-ordered layout strawman vs the head/tail split:
//      equal surviving-byte budgets, very different errors + the strawman's
//      permutation overhead.
#include <cstdio>
#include <vector>

#include "core/codec.h"
#include "core/magnitude.h"
#include "core/prng.h"
#include "core/stats.h"
#include "net/injector.h"

using namespace trimgrad;

namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

double scheme_nmse(core::Scheme scheme, double rate, std::size_t n,
                   std::size_t row_len = 1 << 12) {
  core::CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = row_len;
  core::TrimmableEncoder enc(cfg);
  core::TrimmableDecoder dec(cfg);
  const auto v = gaussian_vec(n, 7);
  auto msg = enc.encode(v, 1, 1);
  net::TrimInjector inj({rate, 0.0, 99});
  inj.apply(msg.packets, 1);
  return core::nmse(dec.decode(msg.packets, msg.meta).values, v);
}

}  // namespace

int main() {
  const std::size_t n = 1 << 17;

  std::printf("=== (a) decode NMSE vs trim rate (n=%zu gaussian coords) ===\n",
              n);
  std::printf("%8s", "rate%");
  for (auto s : {core::Scheme::kSign, core::Scheme::kSQ, core::Scheme::kSD,
                 core::Scheme::kRHT}) {
    std::printf(" %10s", core::to_string(s));
  }
  std::printf("\n");
  for (double rate : {0.001, 0.01, 0.02, 0.1, 0.25, 0.5, 1.0}) {
    std::printf("%7.1f%%", rate * 100);
    for (auto s : {core::Scheme::kSign, core::Scheme::kSQ, core::Scheme::kSD,
                   core::Scheme::kRHT}) {
      std::printf(" %10.4f", scheme_nmse(s, rate, n));
    }
    std::printf("\n");
  }
  std::printf(
      "(expected: sign has the LOWEST NMSE yet trains worst — its error is\n"
      " biased (every trimmed coord snaps to ±sigma), while rht pays a\n"
      " slightly higher but unbiased error; sd < sq among the unbiased\n"
      " scalar schemes. MSE alone does not predict training survival.)\n\n");

  std::printf("=== (b) RHT row-length sweep (fully trimmed) ===\n");
  std::printf("%10s %10s\n", "row_len", "NMSE");
  for (unsigned lg : {10u, 12u, 14u, 15u, 16u, 17u}) {
    std::printf("%10zu %10.4f\n", std::size_t{1} << lg,
                scheme_nmse(core::Scheme::kRHT, 1.0, n, std::size_t{1} << lg));
  }
  std::printf("(expected: flat near pi/2-1 = 0.5708 — the 2^15 split is "
              "about parallelism, not accuracy)\n\n");

  std::printf("=== (c) magnitude-ordered layout strawman (Sec 2) ===\n");
  const auto v = gaussian_vec(n, 13);
  const auto perm = core::magnitude_order(v);
  const auto placed = core::apply_permutation(v, perm);
  std::printf("%12s %18s %14s\n", "keep_top%", "magnitude_NMSE", "rht_NMSE");
  for (double keep : {0.95, 0.9, 0.8, 0.5, 0.25, 0.06}) {
    std::vector<std::uint8_t> survived(n, 0);
    const std::size_t k = static_cast<std::size_t>(keep * n);
    for (std::size_t i = 0; i < k; ++i) survived[i] = 1;
    const auto back = core::invert_permutation(placed, perm, survived);
    // RHT comparison at the same surviving-byte budget: keeping top k of n
    // 32-bit floats ~ trimming (1-k/n) of packets fully to 1-bit heads
    // costs (1-keep)*31/32 of the bytes; approximate with trim rate chosen
    // to discard the same byte volume.
    const double equivalent_trim = (1.0 - keep) * 32.0 / 31.0;
    const double rht =
        scheme_nmse(core::Scheme::kRHT, std::min(equivalent_trim, 1.0), n);
    std::printf("%11.0f%% %18.4f %14.4f\n", keep * 100,
                core::nmse(back, v), rht);
  }
  std::printf("permutation overhead for n=%zu coords: %zu bytes "
              "(%.1f%% of the message) — the strawman's hidden cost\n",
              n, core::permutation_overhead_bytes(n),
              100.0 * core::permutation_overhead_bytes(n) / (n * 4));
  std::printf("(expected: magnitude layout fine down to ~80%% kept, "
              "collapses below; rht degrades gracefully to 0.57)\n");
  return 0;
}
