// Deterministic fault plane: link flaps, brown-outs, node failures, and
// Bernoulli corruption — plus the recovery paths that keep flows (and the
// event queue) alive through all of them.
#include "net/fault_plane.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/threadpool.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

std::uint64_t counter_value(const std::string& name) {
  const auto snap = core::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

struct Bench {
  Simulator sim;
  Dumbbell topo;

  explicit Bench(QueuePolicy policy = QueuePolicy::kDropTail,
                 double core_gbps = 10.0, std::size_t queue_kb = 2048) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {core_gbps * 1e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = queue_kb * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 4, 4, cfg);
  }
};

TEST(FaultWindows, PeriodicLinkFlapCoversEachRepeat) {
  LinkFault f;
  f.start = 10.0;
  f.duration = 2.0;
  f.period = 100.0;
  f.repeats = 3;
  for (const double base : {10.0, 110.0, 210.0}) {
    EXPECT_TRUE(f.active_at(base));
    EXPECT_TRUE(f.active_at(base + 1.9));
    EXPECT_FALSE(f.active_at(base + 2.0));  // half-open interval
    EXPECT_FALSE(f.active_at(base - 0.1));
  }
  EXPECT_FALSE(f.active_at(310.0)) << "only 3 repeats";
  EXPECT_FALSE(f.active_at(0.0));
}

TEST(FaultPlane, LinkDownRefusesTransmissionsThenFlowRecovers) {
  Bench b;
  FaultPlaneConfig fcfg;
  LinkFault down;
  down.node = b.topo.left_hosts[0];
  down.port = 0;  // hosts are single-homed
  down.start = 0.0;
  down.duration = 120e-6;
  fcfg.link_faults.push_back(down);
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  const std::uint64_t refused0 = counter_value("net.fault.link_refused");
  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 50e-6;
  cfg.rto_cap = 200e-6;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   4);
  flow.start_at(0.0, make_bulk_items(4, 1500, 0));
  b.sim.run();

  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(flow.receiver_stats().delivered_full, 4u);
  EXPECT_GT(flow.stats().retransmits, 0u) << "initial window was refused";
  EXPECT_GE(counter_value("net.fault.link_refused") - refused0, 4u);
  std::size_t refusals = 0;
  for (const auto& ev : plane.log().events()) {
    refusals += ev.kind == FaultEvent::Kind::kLinkRefused ? 1 : 0;
  }
  EXPECT_GE(refusals, 4u);
}

TEST(FaultPlane, LinkDownFlushesQueuedFramesThenFlowRecovers) {
  // Packets pile up at the bottleneck egress; when that link goes hard
  // down mid-drain, the queued frames are lost with it.
  Bench b;
  FaultPlaneConfig fcfg;
  LinkFault down;
  down.node = b.topo.left_switch;
  down.port = 0;  // dumbbell builder wires the core link first
  down.start = 5e-6;
  down.duration = 60e-6;
  fcfg.link_faults.push_back(down);
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  const std::uint64_t flushed0 = counter_value("net.fault.queue_flushed");
  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 50e-6;
  cfg.rto_cap = 100e-6;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   16);
  flow.start_at(0.0, make_bulk_items(16, 1500, 0));
  b.sim.run();

  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(flow.receiver_stats().delivered_full, 16u);
  EXPECT_GT(counter_value("net.fault.queue_flushed") - flushed0, 0u);
  EXPECT_GT(flow.stats().retransmits, 0u);
}

TEST(FaultPlane, DeadNodeDropsDeliveriesThenFlowRecovers) {
  Bench b;
  FaultPlaneConfig fcfg;
  NodeFault dead;
  dead.node = b.topo.right_hosts[0];
  dead.start = 0.0;
  dead.duration = 100e-6;
  fcfg.node_faults.push_back(dead);
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  const std::uint64_t drops0 = counter_value("net.fault.node_drops");
  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 60e-6;
  cfg.rto_cap = 200e-6;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   4);
  flow.start_at(0.0, make_bulk_items(4, 1500, 0));
  b.sim.run();

  EXPECT_TRUE(flow.stats().completed);
  EXPECT_GT(counter_value("net.fault.node_drops") - drops0, 0u);
  EXPECT_GT(flow.stats().retransmits, 0u);
}

TEST(FaultPlane, BrownOutStretchesFlowCompletionTime) {
  SimTime clean_fct = 0, degraded_fct = 0;
  {
    Bench b;
    ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                     TransportConfig::reliable(), 64);
    flow.start_at(0.0, make_bulk_items(64, 1500, 0));
    b.sim.run();
    ASSERT_TRUE(flow.stats().completed);
    clean_fct = flow.stats().fct();
  }
  {
    Bench b;
    FaultPlaneConfig fcfg;
    LinkFault slow;
    slow.node = b.topo.left_switch;
    slow.port = 0;
    slow.start = 0.0;
    slow.duration = 1.0;  // the whole run
    slow.bandwidth_scale = 0.1;
    slow.latency_scale = 4.0;
    fcfg.link_faults.push_back(slow);
    FaultPlane plane(fcfg);
    b.sim.set_fault_plane(&plane);
    ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                     TransportConfig::reliable(), 64);
    flow.start_at(0.0, make_bulk_items(64, 1500, 0));
    b.sim.run();
    ASSERT_TRUE(flow.stats().completed);
    degraded_fct = flow.stats().fct();
  }
  // 10% of the bottleneck bandwidth: the transfer takes several times
  // longer, with zero losses — a brown-out, not an outage.
  EXPECT_GT(degraded_fct, clean_fct * 3.0);
}

TEST(FaultPlane, CorruptedFramesAreNackedNeverDeliveredAndRecovered) {
  Bench b;
  FaultPlaneConfig fcfg;
  fcfg.seed = 7;
  fcfg.corrupt_rate = 0.2;
  FaultPlane plane(fcfg);
  b.sim.set_fault_plane(&plane);

  const std::uint64_t detected0 = counter_value("net.fault.corrupt_detected");

  // Every packet carries cargo with a known byte pattern; the fault plane
  // flips a byte in the copies it corrupts, so any corrupted frame that
  // slipped through to delivery would fail the pattern check below.
  std::vector<SendItem> items;
  for (std::size_t i = 0; i < 32; ++i) {
    auto pkt = std::make_shared<core::GradientPacket>();
    pkt->msg_id = static_cast<std::uint32_t>(i);
    pkt->head_region.assign(64, 0xAB);
    SendItem it;
    it.size_bytes = 1500;
    it.trim_size_bytes = 0;
    it.cargo = std::move(pkt);
    items.push_back(std::move(it));
  }
  std::size_t delivered = 0;
  bool all_intact = true;
  TransportConfig cfg = TransportConfig::reliable();
  cfg.rto = 50e-6;
  cfg.rto_cap = 200e-6;
  ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1, cfg,
                   32, [&](const Frame& f) {
                     ++delivered;
                     ASSERT_TRUE(f.cargo);
                     for (const std::uint8_t byte : f.cargo->head_region) {
                       all_intact &= byte == 0xAB;
                     }
                   });
  flow.start_at(0.0, std::move(items));
  b.sim.run();

  EXPECT_TRUE(flow.stats().completed);
  EXPECT_EQ(delivered, 32u);
  EXPECT_TRUE(all_intact) << "a mangled payload was delivered as valid";
  EXPECT_GT(flow.receiver_stats().corrupt_frames, 0u);
  EXPECT_GT(flow.receiver_stats().nacks_sent, 0u);
  EXPECT_GT(flow.stats().retransmits, 0u);
  EXPECT_GE(counter_value("net.fault.corrupt_detected") - detected0,
            flow.receiver_stats().corrupt_frames);
}

TEST(FaultPlane, FaultLogIsBitReplayableAndRoundTrips) {
  auto run_once = [](FaultLog& out) {
    Bench b;
    FaultPlaneConfig fcfg;
    fcfg.seed = 99;
    fcfg.corrupt_rate = 0.15;
    LinkFault flap;
    flap.node = b.topo.left_switch;
    flap.port = 0;
    flap.start = 10e-6;
    flap.duration = 30e-6;
    flap.period = 100e-6;
    flap.repeats = 2;
    fcfg.link_faults.push_back(flap);
    FaultPlane plane(fcfg);
    b.sim.set_fault_plane(&plane);
    TransportConfig cfg = TransportConfig::reliable();
    cfg.rto = 50e-6;
    cfg.rto_cap = 100e-6;
    ManagedFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
                     cfg, 24);
    flow.start_at(0.0, make_bulk_items(24, 1500, 0));
    b.sim.run();
    EXPECT_TRUE(flow.stats().completed);
    out = plane.log();
  };

  FaultLog a, c;
  run_once(a);
  run_once(c);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a, c) << "same seed + schedule must make identical decisions";

  std::stringstream ss;
  a.save(ss);
  const FaultLog loaded = FaultLog::load(ss);
  EXPECT_EQ(a, loaded);
}

TEST(FaultPlane, CorruptionCoinIsStateless) {
  // The per-frame coin must not depend on evaluation order: two planes with
  // the same seed asked about the same (frame, hop) in different orders
  // agree on every decision.
  FaultPlaneConfig fcfg;
  fcfg.seed = 5;
  fcfg.corrupt_rate = 0.5;
  FaultPlane p1(fcfg), p2(fcfg);
  auto make_frame = [](std::uint64_t id) {
    Frame f;
    f.id = id;
    f.kind = FrameKind::kData;
    return f;
  };
  std::vector<bool> forward, backward;
  for (std::uint64_t id = 0; id < 64; ++id) {
    Frame f = make_frame(id);
    forward.push_back(p1.maybe_corrupt(3, 1, 0.0, f));
  }
  for (std::uint64_t id = 64; id-- > 0;) {
    Frame f = make_frame(id);
    backward.push_back(p2.maybe_corrupt(3, 1, 0.0, f));
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(forward[i], backward[63 - i]) << "frame " << i;
  }
}

/// One faulted, sharded run: cross-pod flows on a partitioned k=4 fat-tree
/// under corruption plus a flapping agg core-uplink, executed with `threads`
/// pool workers. Returns the plane's log.
FaultLog sharded_faulted_log(std::size_t threads) {
  core::ThreadPool::set_global_threads(threads);
  Simulator sim;
  FabricConfig cfg;
  cfg.edge_link = {100e9, 1e-6};
  cfg.core_link = {10e9, 2e-6};
  cfg.switch_queue.policy = QueuePolicy::kDropTail;
  cfg.switch_queue.capacity_bytes = 2048 * 1024;
  cfg.switch_queue.header_capacity_bytes = 64 * 1024;
  const FatTree ft = build_fat_tree(sim, 4, cfg);
  partition_fat_tree(sim, ft);
  sim.seal_partition();
  sim.set_parallel_execution(true);

  FaultPlaneConfig fcfg;
  fcfg.seed = 31;
  fcfg.corrupt_rate = 0.05;
  LinkFault flap;
  flap.node = ft.aggs[0][0];
  flap.port = 2;  // first core uplink (ports 0..1 are edge downlinks)
  flap.start = 20e-6;
  flap.duration = 30e-6;
  flap.period = 150e-6;
  flap.repeats = 4;
  fcfg.link_faults.push_back(flap);
  FaultPlane plane(fcfg);
  sim.set_fault_plane(&plane);

  TransportConfig tcfg = TransportConfig::reliable();
  tcfg.rto = 100e-6;
  tcfg.rto_cap = 1e-3;
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  for (std::uint32_t i = 0; i < 4; ++i) {
    // Cross-pod pairs so every flow rides the (faulted) core layer.
    flows.push_back(std::make_unique<ManagedFlow>(
        sim, ft.pod_hosts[i][0], ft.pod_hosts[(i + 1) % 4][0], i + 1, tcfg,
        32));
    flows.back()->start_at(0.0, make_bulk_items(32, 1500, 0));
  }
  sim.run();
  for (const auto& f : flows) EXPECT_TRUE(f->stats().completed);
  return plane.log();
}

TEST(FaultLog, SortedIsStableAcrossWorkerCounts) {
  // The append order of a sharded run's log follows worker interleaving;
  // the sorted() normal form must erase that so chaos repros replay
  // bit-identically at any TRIMGRAD_THREADS.
  const FaultLog one = sharded_faulted_log(1);
  const FaultLog two = sharded_faulted_log(2);
  const FaultLog eight = sharded_faulted_log(8);
  core::ThreadPool::set_global_threads(std::thread::hardware_concurrency());
  ASSERT_GT(one.size(), 0u) << "the faults never fired";
  EXPECT_EQ(one.sorted(), two.sorted()) << "1 vs 2 workers diverged";
  EXPECT_EQ(one.sorted(), eight.sorted()) << "1 vs 8 workers diverged";
}

TEST(FaultLog, SaveLoadSaveIsByteIdentical) {
  const FaultLog log = sharded_faulted_log(2).sorted();
  core::ThreadPool::set_global_threads(std::thread::hardware_concurrency());
  ASSERT_GT(log.size(), 0u);
  std::stringstream first;
  log.save(first);
  std::stringstream replay(first.str());
  const FaultLog loaded = FaultLog::load(replay);
  EXPECT_EQ(loaded, log);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(second.str(), first.str())
      << "serialize -> parse -> serialize must be byte-identical";
}

TEST(FaultPlane, StragglerScheduleIsDeterministicAndInRange) {
  StragglerSchedule s{42, 3.0};
  EXPECT_TRUE(s.enabled());
  for (std::uint64_t e = 0; e < 16; ++e) {
    const int r = s.straggler_rank(e, 8);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 8);
    const StragglerSchedule same{42, 3.0};
    EXPECT_EQ(r, same.straggler_rank(e, 8));
    EXPECT_DOUBLE_EQ(s.compute_scale(e, r, 8), 3.0);
    EXPECT_DOUBLE_EQ(s.compute_scale(e, (r + 1) % 8, 8), 1.0);
  }
  StragglerSchedule off{42, 1.0};
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.compute_scale(0, off.straggler_rank(0, 8), 8), 1.0);
}

}  // namespace
}  // namespace trimgrad::net
