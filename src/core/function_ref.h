// Non-owning, trivially copyable callable reference (two words: object
// pointer + call trampoline). The parallel_for hot path takes one of these
// instead of a std::function so dispatching a job never heap-allocates or
// copies a closure — the referenced callable only has to outlive the call,
// which parallel_for's blocking semantics guarantee.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace trimgrad::core {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace trimgrad::core
