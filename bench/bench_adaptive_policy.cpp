// Experiment X11: the per-round compression control plane (core/policy.h)
// under phased capacity congestion.
//
// Training runs on the reliable (retransmitting) transport against an
// inject channel whose per-batch byte budget alternates between loose and
// tight thirds. The budget is keyed so a q=7 burst fits and deeper tails do
// not: every over-budget packet costs a retransmission (wire bytes twice +
// the drop penalty), so a pinned (codec, Q) cell is badly wrong in one
// phase on a *wall-clock* axis — full tails (q=31) stall on retransmits
// whenever the budget bites, shallow tails (q=7) dodge the congestion but
// pay a permanent precision floor that keeps their loss curve above the
// target. The aimd-trim policy observes each round's NetFeedback
// (retransmit rate counts toward pressure) and re-tunes Q, so it rides
// q=31 precision in the loose phases and drops to the floor while the
// budget is tight — reaching the accuracy target sooner than every fixed
// cell ("slightly under-compress and over-send", paper §5.3 — closed
// through the trainer instead of a standalone loop).
//
// Emitted gate (tools/check_bench.py --adaptive, BENCH_adaptive.json):
//   * the adaptive cell's time-to-accuracy beats every fixed cell that
//     reached the target at all;
//   * the adaptive run's decision sequence and final parameters are
//     bit-identical at TRIMGRAD_THREADS = 1, 2, 8;
//   * the invariant monitor saw no violations and every loss was finite.
//
// Usage: bench_adaptive_policy            (full sweep)
//        TRIMGRAD_SMOKE=1 bench_adaptive_policy   (CI-sized)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collective/inject_channel.h"
#include "core/codec_registry.h"
#include "core/prng.h"
#include "core/threadpool.h"
#include "ddp/experiment.h"
#include "ddp/trainer.h"
#include "net/invariants.h"

using namespace trimgrad;

namespace {

struct BenchShape {
  std::size_t epochs = 12;
  std::size_t classes = 10;
  std::size_t image = 8;
  std::size_t train_per_class = 24;
  std::size_t test_per_class = 12;
  std::size_t mlp_hidden = 48;
  /// Low enough that the class clusters are cleanly separable and the late
  /// loss floor is set by gradient precision, not label noise — this is
  /// what makes a shallow fixed tail pay for its missing bits.
  float noise = 0.45f;
  std::uint64_t batch = 32;
  double lr = 0.05;
  int world = 4;
  /// Middle third of the run: the byte budget is this factor times the
  /// q=7 burst, so the adaptive sender fits at its Q floor with headroom
  /// while q=15 and q=31 bursts overflow and retransmit.
  double q7_headroom = 1.15;
};

struct CellOutcome {
  std::string name;                      ///< "rht@31", "aimd-trim", ...
  std::vector<ddp::EpochRecord> records;
  std::vector<core::PolicyDecision> decisions;
  std::vector<float> final_params;       ///< rank 0, for determinism checks
  double final_top1 = 0;
  double mean_q = 0;
  std::uint64_t switches = 0;
  std::uint64_t violations = 0;
  bool loss_finite = true;
};

ml::SynthCifarConfig data_config(const BenchShape& shape) {
  ml::SynthCifarConfig dcfg;
  dcfg.classes = shape.classes;
  dcfg.height = dcfg.width = shape.image;
  dcfg.train_per_class = shape.train_per_class;
  dcfg.test_per_class = shape.test_per_class;
  dcfg.noise = shape.noise;
  dcfg.proto_grid = 3;
  return dcfg;
}

/// The burst the channel sees per collective phase: world-1 messages of the
/// full gradient encoded at the given tail depth.
std::uint64_t burst_bytes(const BenchShape& shape, std::size_t param_count,
                          unsigned q_bits) {
  core::CodecConfig cc;
  cc.scheme = core::Scheme::kRHT;
  cc.rht_row_len = std::size_t{1} << 10;
  cc.layout.q_bits = q_bits;
  core::Xoshiro256 rng(7);
  std::vector<float> probe(param_count);
  for (auto& x : probe) x = static_cast<float>(rng.gaussian());
  core::TrimmableEncoder enc(cc);
  std::uint64_t bytes = 0;
  for (const auto& p : enc.encode(probe, 1, 1).packets)
    bytes += p.wire_bytes();
  return static_cast<std::uint64_t>(shape.world - 1) * bytes;
}

ddp::ExperimentSpec cell_spec(const BenchShape& shape,
                              const std::string& policy) {
  ddp::ExperimentSpec spec;
  spec.transport = "reliable";  // over-budget packets retransmit, not trim
  spec.scheme = "rht";
  spec.topology = "inject";
  spec.trim = 0.0;  // congestion comes from the capacity budget only
  spec.drop = 0.0;
  spec.world = shape.world;
  spec.epochs = shape.epochs;
  spec.batch = shape.batch;
  spec.lr = shape.lr;
  spec.policy = policy;
  return spec;
}

/// One cell: train under the phased budget, with the invariant monitor's
/// epoch-clock check live and every epoch evaluated.
CellOutcome run_cell(const BenchShape& shape, const std::string& name,
                     const ddp::ExperimentSpec& spec, unsigned q_bits,
                     std::uint64_t tight_capacity) {
  ml::SynthCifar data(data_config(shape));

  collective::InjectChannel::Config ccfg = spec.inject_channel_config();
  // Fast links: serialization is cheap, so time-to-accuracy is decided by
  // gradient quality per round plus the per-retransmission penalty — not by
  // who ships the fewest tail bits.
  ccfg.time.bottleneck_bps = 20e9;
  collective::InjectChannel channel(ccfg);

  ddp::TrainerConfig tcfg = spec.trainer_config();
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  tcfg.codec.layout.q_bits = q_bits;
  tcfg.compute_round_s = 2e-3;
  tcfg.eval_every = 1;

  const ml::SynthCifarConfig dcfg = data_config(shape);
  ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg, &shape] {
    ml::ModelConfig mcfg;
    mcfg.classes = dcfg.classes;
    mcfg.height = dcfg.height;
    mcfg.width = dcfg.width;
    return ml::make_mlp(mcfg, shape.mlp_hidden);
  });

  net::InvariantMonitor monitor;
  trainer.set_invariant_monitor(&monitor);

  CellOutcome out;
  out.name = name;
  for (std::size_t e = 0; e < shape.epochs; ++e) {
    // Loose -> tight -> loose thirds.
    const bool tight =
        e >= shape.epochs / 3 && e < 2 * shape.epochs / 3;
    channel.set_capacity(tight ? tight_capacity : 0);
    ddp::EpochRecord rec = trainer.run_epoch(e);
    monitor.on_epoch_time(e, rec.sim_time_s);
    trainer.evaluate(rec);
    out.loss_finite = out.loss_finite && std::isfinite(rec.train_loss);
    out.records.push_back(rec);
  }
  monitor.finalize();
  out.violations = monitor.total_violations();

  out.decisions = trainer.decisions();
  for (std::size_t i = 0; i < out.decisions.size(); ++i) {
    out.mean_q += out.decisions[i].q_bits;
    if (i > 0 && !(out.decisions[i] == out.decisions[i - 1]))
      ++out.switches;
  }
  if (!out.decisions.empty()) {
    out.mean_q /= static_cast<double>(out.decisions.size());
  }
  out.final_params = trainer.replica(0).flat_params();
  out.final_top1 = out.records.back().top1;
  return out;
}

/// First cumulative sim time at which the train loss crosses below
/// `target`, linearly interpolated between epoch boundaries (sub-epoch
/// resolution keeps same-epoch arrivals from degenerating into ties);
/// -1 if the run never gets there.
double time_to_loss(const std::vector<ddp::EpochRecord>& records,
                    double target) {
  double prev_loss = 0, prev_t = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const double loss = records[i].train_loss;
    const double t = records[i].sim_time_s;
    if (loss <= target) {
      if (i == 0 || prev_loss <= loss) return t;
      const double frac = (prev_loss - target) / (prev_loss - loss);
      return prev_t + frac * (t - prev_t);
    }
    prev_loss = loss;
    prev_t = t;
  }
  return -1.0;
}

std::string decision_digest(const std::vector<core::PolicyDecision>& ds) {
  // FNV-1a over the rendered decisions: a short, order-sensitive digest.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& d : ds) {
    for (const char c : core::to_string(d)) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  BenchShape shape;
  if (smoke) {
    shape.epochs = 9;
    shape.train_per_class = 16;
    shape.test_per_class = 10;
  }

  // The tight budget is derived from the actual model size: a q=7 burst
  // fits with headroom, deeper tails overflow and pay retransmissions.
  const std::size_t param_count = [&shape] {
    ml::ModelConfig mcfg;
    mcfg.classes = shape.classes;
    mcfg.height = mcfg.width = shape.image;
    return ml::make_mlp(mcfg, shape.mlp_hidden)->param_count();
  }();
  const std::uint64_t burst31 = burst_bytes(shape, param_count, 31);
  const std::uint64_t burst7 = burst_bytes(shape, param_count, 7);
  const auto tight_capacity = static_cast<std::uint64_t>(
      shape.q7_headroom * static_cast<double>(burst7));

  std::printf("# adaptive policy vs fixed {codec x Q} under phased capacity\n"
              "# params=%zu q31_burst=%llu q7_burst=%llu tight_budget=%llu "
              "smoke=%d\n",
              param_count, static_cast<unsigned long long>(burst31),
              static_cast<unsigned long long>(burst7),
              static_cast<unsigned long long>(tight_capacity), smoke);

  // Fixed competitors: the pinned-codec grid the policy must beat.
  const unsigned fixed_qs[] = {31, 15, 7};
  std::vector<CellOutcome> fixed;
  for (const unsigned q : fixed_qs) {
    const std::string name = "rht@" + std::to_string(q);
    fixed.push_back(run_cell(shape, name, cell_spec(shape, "fixed"), q,
                             tight_capacity));
  }

  // The adaptive cell, run at three thread counts: the control trajectory
  // and the trained parameters must be bit-identical across all of them.
  ddp::ExperimentSpec aspec = cell_spec(shape, "aimd-trim");
  aspec.policy_min_q = 7;
  aspec.policy_max_q = 31;
  aspec.policy_target = 0.05;
  CellOutcome adaptive;
  bool deterministic = true;
  std::string digest;
  const std::size_t threads[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    core::ThreadPool::set_global_threads(threads[i]);
    CellOutcome run =
        run_cell(shape, "aimd-trim", aspec, 31, tight_capacity);
    if (i == 0) {
      adaptive = std::move(run);
      digest = decision_digest(adaptive.decisions);
    } else {
      deterministic = deterministic &&
                      run.decisions == adaptive.decisions &&
                      run.final_params == adaptive.final_params;
    }
  }

  // Target: 3% above the best train loss any fixed cell touches — set by
  // the competition, not by the adaptive run. Keying off the fixed grid's
  // best point puts the target in the late, separated region of the curves
  // (past the common early descent), where the squeeze-phase noise a fixed
  // cell accumulated and a shallow Q's precision floor both cost time.
  double best_fixed = 1e30;
  for (const auto& c : fixed) {
    for (const auto& r : c.records) {
      best_fixed = std::min(best_fixed, r.train_loss);
    }
  }
  const double target = 1.03 * best_fixed;

  const double adaptive_tta = time_to_loss(adaptive.records, target);
  bool beats_all = adaptive_tta >= 0;
  std::printf("# per-epoch train loss / top1 (middle third is tight):\n");
  const auto print_curve = [](const CellOutcome& c) {
    std::printf("# %12s loss:", c.name.c_str());
    for (const auto& r : c.records) std::printf(" %.3f", r.train_loss);
    std::printf("\n# %12s top1:", c.name.c_str());
    for (const auto& r : c.records) std::printf(" %.3f", r.top1);
    std::printf("\n");
  };
  for (const auto& c : fixed) print_curve(c);
  print_curve(adaptive);
  std::printf("# target train loss = %.4f\n", target);
  std::printf("%12s %10s %10s %8s %10s\n", "cell", "tta_s", "final_top1",
              "mean_q", "switches");
  std::ostringstream cells;
  for (const auto& c : fixed) {
    const double tta = time_to_loss(c.records, target);
    if (tta >= 0 && adaptive_tta >= 0) {
      beats_all = beats_all && adaptive_tta < tta;
    }
    std::printf("%12s %10.4f %10.4f %8.1f %10llu\n", c.name.c_str(), tta,
                c.final_top1, c.mean_q,
                static_cast<unsigned long long>(c.switches));
    if (cells.tellp() > 0) cells << ',';
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"tta_s\":%.6f,\"final_top1\":%.4f}",
                  c.name.c_str(), tta, c.final_top1);
    cells << buf;
  }
  std::printf("%12s %10.4f %10.4f %8.1f %10llu\n", adaptive.name.c_str(),
              adaptive_tta, adaptive.final_top1, adaptive.mean_q,
              static_cast<unsigned long long>(adaptive.switches));

  bool loss_finite = adaptive.loss_finite;
  std::uint64_t violations = adaptive.violations;
  for (const auto& c : fixed) {
    loss_finite = loss_finite && c.loss_finite;
    violations += c.violations;
  }

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"%s\",\"smoke\":%s,\"target_loss\":%.6f,"
      "\"adaptive\":{\"name\":\"aimd-trim\",\"tta_s\":%.6f,"
      "\"final_top1\":%.4f,\"mean_q\":%.2f,\"switches\":%llu},"
      "\"beats_all_fixed\":%s,\"deterministic\":%s,"
      "\"decision_digest\":\"%s\",\"violations\":%llu,\"loss_finite\":%s,",
      aspec.label().c_str(), smoke ? "true" : "false", target, adaptive_tta,
      adaptive.final_top1, adaptive.mean_q,
      static_cast<unsigned long long>(adaptive.switches),
      beats_all ? "true" : "false", deterministic ? "true" : "false",
      digest.c_str(), static_cast<unsigned long long>(violations),
      loss_finite ? "true" : "false");
  {
    std::ofstream out("BENCH_adaptive.json", std::ios::binary);
    out << buf << "\"fixed\":[" << cells.str() << "]}\n";
    if (out) std::printf("wrote BENCH_adaptive.json\n");
  }
  std::printf("# (expected: adaptive reaches the target before every fixed "
              "cell, with a bit-identical trajectory at 1/2/8 threads)\n");
  return 0;
}
